// Command exdrad is the standing ExDRa coordinator daemon: one process
// multiplexing many concurrent exploratory sessions over a shared fleet of
// federated workers (ExDRa §4.1's control program, grown into a service).
//
// Where cmd/exdra runs a single batch pipeline and exits, exdrad stays up:
// clients open sessions over a small HTTP JSON API, run federated work under
// per-session object namespaces, and close (or are idle-reaped). Admission
// control bounds sessions and per-session in-flight work; SIGTERM drains
// in-flight batches before tearing every session's worker-side state down.
//
// Usage:
//
//	exdrad -workers 127.0.0.1:7001,127.0.0.1:7002 -addr 127.0.0.1:8080
//
// API:
//
//	POST   /v1/sessions            → 201 {"id":"s1","namespace":1}
//	GET    /v1/sessions            → 200 [{"id":...,"namespace":...,"in_flight":...}]
//	DELETE /v1/sessions/{id}       → 204
//	POST   /v1/sessions/{id}/lm    → 200 {"weights":[...]}   body: {"rows":240,"features":8,"noise":0.01,"seed":7}
//	GET    /v1/status              → 200 {"sessions":...,"pools":{...}}
//
// Admission rejections map to 429 Too Many Requests; a draining service
// answers 503 Service Unavailable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/fedserve"
	"exdra/internal/obs"
	"exdra/internal/privacy"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP session API listen address")
	workers := flag.String("workers", "", "comma-separated fedworker addresses (required)")
	poolSize := flag.Int("pool-size", 4, "pooled connections per worker address")
	rpcWindow := flag.Int("rpc-window", 8,
		"pipelined in-flight RPCs per worker connection (1 = legacy lock-step)")
	maxSessions := flag.Int("max-sessions", 64, "admission cap on concurrently open sessions (0 = unlimited)")
	maxInFlight := flag.Int("max-inflight", 4, "per-session cap on in-flight batches (0 = unlimited)")
	maxInFlightBytes := flag.Int64("max-inflight-bytes", 0, "per-session cap on summed in-flight payload bytes (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 15*time.Minute,
		"reap sessions with no in-flight work and no activity for this long (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"SIGTERM grace: how long to wait for in-flight batches before forced teardown")
	callTimeout := flag.Duration("call-timeout", 0, "per-attempt RPC time budget for session coordinators (0 = none)")
	retries := flag.Int("retries", 3, "max RPC attempts per call for session coordinators")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9090; empty disables)")
	flag.Parse()

	addrs := splitAddrs(*workers)
	if len(addrs) == 0 {
		log.Fatal("exdrad: -workers is required (comma-separated fedworker addresses)")
	}

	fleet := federated.NewFleet(fedrpc.Options{Window: *rpcWindow}, *poolSize)
	svc := fedserve.New(fleet, fedserve.Config{
		MaxSessions:      *maxSessions,
		MaxInFlight:      *maxInFlight,
		MaxInFlightBytes: *maxInFlightBytes,
		IdleTimeout:      *idleTimeout,
		Retry:            federated.RetryPolicy{Attempts: *retries, Backoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second},
		CallTimeout:      *callTimeout,
		Recover:          true,
	})

	d := &daemon{svc: svc, addrs: addrs}
	httpSrv := &http.Server{Handler: d.mux()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("exdrad: %v", err)
	}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("exdrad: http: %v", err)
		}
	}()
	fmt.Printf("exdrad: session API on http://%s\n", ln.Addr())
	fmt.Printf("exdrad: fleet of %d workers, pool size %d, max sessions %d\n",
		len(addrs), *poolSize, *maxSessions)
	if *metricsAddr != "" {
		ms, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			log.Fatalf("exdrad: metrics endpoint: %v", err)
		}
		defer ms.Close()
		fmt.Printf("exdrad: metrics on http://%s/metrics\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("exdrad: draining")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	if err := svc.Drain(ctx); err != nil {
		fmt.Printf("exdrad: %v\n", err)
	}
	cancel()
	svc.Close()
	fleet.Close()
	_ = httpSrv.Close()
	fmt.Println("exdrad: shut down")
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// daemon carries the request handlers' shared state.
type daemon struct {
	svc   *fedserve.Service
	addrs []string
}

func (d *daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", d.openSession)
	mux.HandleFunc("GET /v1/sessions", d.listSessions)
	mux.HandleFunc("DELETE /v1/sessions/{id}", d.closeSession)
	mux.HandleFunc("POST /v1/sessions/{id}/lm", d.runLM)
	mux.HandleFunc("GET /v1/status", d.status)
	return mux
}

// writeErr maps service errors onto HTTP status codes: admission rejections
// are load shedding (429, retry later), drain is shutdown (503), a missing
// or closed session is the client's stale handle (404/409).
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, fedserve.ErrAdmissionRejected):
		code = http.StatusTooManyRequests
	case errors.Is(err, fedserve.ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, fedserve.ErrSessionClosed):
		code = http.StatusConflict
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("exdrad: writing response: %v", err)
	}
}

type sessionInfo struct {
	ID        string `json:"id"`
	Namespace int64  `json:"namespace"`
	InFlight  int    `json:"in_flight"`
}

func (d *daemon) openSession(w http.ResponseWriter, r *http.Request) {
	sess, err := d.svc.Open()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sessionInfo{ID: sess.ID(), Namespace: sess.Namespace()})
}

func (d *daemon) listSessions(w http.ResponseWriter, r *http.Request) {
	sessions := d.svc.Sessions()
	out := make([]sessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sessionInfo{ID: sess.ID(), Namespace: sess.Namespace(), InFlight: sess.InFlight()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (d *daemon) closeSession(w http.ResponseWriter, r *http.Request) {
	sess := d.svc.Session(r.PathValue("id"))
	if sess == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such session"})
		return
	}
	sess.Close()
	w.WriteHeader(http.StatusNoContent)
}

// lmRequest is the demo workload: train a seeded linear model over
// synthetic regression data distributed row-partitioned across the fleet.
// It exists so the service can be driven end to end (ci smoke, manual
// curl) without a separate client binary.
type lmRequest struct {
	Rows     int     `json:"rows"`
	Features int     `json:"features"`
	Noise    float64 `json:"noise"`
	Seed     int64   `json:"seed"`
}

func (d *daemon) runLM(w http.ResponseWriter, r *http.Request) {
	sess := d.svc.Session(r.PathValue("id"))
	if sess == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such session"})
		return
	}
	var req lmRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	if req.Rows <= 0 {
		req.Rows = 240
	}
	if req.Features <= 0 {
		req.Features = 8
	}
	if req.Noise <= 0 {
		req.Noise = 0.01
	}

	// One LM run is one admitted batch: the X matrix dominates the payload.
	release, err := sess.Begin(int64(req.Rows) * int64(req.Features) * 8)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	x, y := data.Regression(req.Seed, req.Rows, req.Features, req.Noise)
	fx, err := federated.Distribute(sess.Coordinator(), x, d.addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer fx.Free()
	res, err := algo.LM(fx, y, algo.LMConfig{})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"weights":    res.Weights.Data(),
		"iterations": res.Iterations,
	})
}

func (d *daemon) status(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"sessions": d.svc.NumSessions(),
		"workers":  d.addrs,
		"pools":    d.svc.Fleet().PoolStats(),
	})
}
