package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"exdra/internal/lint"
)

func TestParseArgsDefaults(t *testing.T) {
	var stderr bytes.Buffer
	opts, err := parseArgs(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if opts.json {
		t.Error("json should default to false")
	}
	if len(opts.patterns) != 1 || opts.patterns[0] != "./..." {
		t.Errorf("default patterns = %v, want [./...]", opts.patterns)
	}
}

func TestParseArgsJSONAndPatterns(t *testing.T) {
	var stderr bytes.Buffer
	opts, err := parseArgs([]string{"-json", "./internal/fedrpc", "./internal/worker"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !opts.json {
		t.Error("-json not parsed")
	}
	want := []string{"./internal/fedrpc", "./internal/worker"}
	if len(opts.patterns) != 2 || opts.patterns[0] != want[0] || opts.patterns[1] != want[1] {
		t.Errorf("patterns = %v, want %v", opts.patterns, want)
	}
}

func TestParseArgsBadFlag(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseArgs([]string{"-nope"}, &stderr); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(stderr.String(), "usage: exdralint") {
		t.Errorf("usage not printed on bad flag; stderr: %q", stderr.String())
	}
}

func TestWriteJSON(t *testing.T) {
	findings := []lint.Finding{
		{Rule: "lockhold", Pos: token.Position{Filename: "a/b.go", Line: 12}, Msg: "send on ch while holding s.mu"},
		{Rule: "guardedby", Pos: token.Position{Filename: "c.go", Line: 3}, Msg: "x.n accessed without holding x.mu"},
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	var got []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d findings, want 2", len(got))
	}
	if got[0].Rule != "lockhold" || got[0].File != "a/b.go" || got[0].Line != 12 ||
		got[0].Message != "send on ch while holding s.mu" {
		t.Errorf("first finding round-tripped as %+v", got[0])
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty findings rendered as %q, want []", buf.String())
	}
}

func TestFindModuleRoot(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("returned root %s has no go.mod", root)
	}
	if !strings.HasPrefix(wd, root) {
		t.Errorf("root %s is not an ancestor of %s", root, wd)
	}
}

func TestFindModuleRootOutsideModule(t *testing.T) {
	t.Chdir(t.TempDir())
	if _, err := findModuleRoot(); err == nil {
		t.Fatal("expected an error outside any module")
	}
}
