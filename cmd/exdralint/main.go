// Command exdralint runs the ExDRa project-specific static-analysis pass
// over the repository. It enforces the federation-runtime invariants that
// go vet cannot know about (see DESIGN.md, "Static analysis"):
//
//	netdeadline  conn I/O in fedrpc/worker/netem must arm deadlines
//	nopanic      library code returns errors instead of panicking
//	goberr       Encode/Decode/Flush errors must be checked
//	goroleak     go func literals in libraries must be joined
//	sleepcancel  library waits must be cancellable (no bare time.Sleep)
//	ctxflow      a received context.Context must propagate, not be dropped
//	obsreg       constant obs histogram names registered at one call site
//	guardedby    fields annotated "guarded by <mu>" accessed under that lock
//	lockhold     no blocking op (RPC, channel, conn I/O) while a lock is held
//
// Usage:
//
//	exdralint [-json] [packages]
//
// Packages are go-style patterns relative to the module root ("./..." by
// default). Findings print as "file:line: rule: message", or with -json as
// a JSON array of {rule, file, line, message} objects; the exit status is 1
// when there are findings, 2 on load errors, 0 on a clean tree. Suppress an
// individual finding with a justification:
//
//	//lint:ignore <rule> <reason>
//
// on the flagged line or the line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"exdra/internal/lint"
)

// options are the parsed command-line settings.
type options struct {
	json     bool
	patterns []string
}

// parseArgs parses argv (without the program name) into options. Usage and
// flag errors are written to stderr.
func parseArgs(argv []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("exdralint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: exdralint [-json] [packages]\n")
		fs.PrintDefaults()
	}
	var opts options
	fs.BoolVar(&opts.json, "json", false, "emit findings as a JSON array of {rule, file, line, message}")
	if err := fs.Parse(argv); err != nil {
		return options{}, err
	}
	opts.patterns = fs.Args()
	if len(opts.patterns) == 0 {
		opts.patterns = []string{"./..."}
	}
	return opts, nil
}

// jsonFinding is the machine-readable form of one finding.
type jsonFinding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Message string `json:"message"`
}

// writeJSON renders findings as an indented JSON array (an empty array on a
// clean tree, so consumers always get valid JSON).
func writeJSON(w io.Writer, findings []lint.Finding) error {
	out := make([]jsonFinding, len(findings))
	for i, f := range findings {
		out[i] = jsonFinding{Rule: f.Rule, File: f.Pos.Filename, Line: f.Pos.Line, Message: f.Msg}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parse, load, analyze, print. It returns
// the process exit status (0 clean, 1 findings, 2 usage or load errors).
func run(argv []string, stdout, stderr io.Writer) int {
	opts, err := parseArgs(argv, stderr)
	if err != nil {
		return 2
	}

	modDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "exdralint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modDir)
	if err != nil {
		fmt.Fprintln(stderr, "exdralint:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(opts.patterns)
	if err != nil {
		fmt.Fprintln(stderr, "exdralint:", err)
		return 2
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(stderr, "exdralint: %s: type warning: %v\n", p.Path, terr)
		}
	}
	findings := lint.Run(pkgs, lint.DefaultAnalyzers())
	if opts.json {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "exdralint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "exdralint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
