// Command exdralint runs the ExDRa project-specific static-analysis pass
// over the repository. It enforces the federation-runtime invariants that
// go vet cannot know about (see DESIGN.md, "Static analysis"):
//
//	netdeadline  conn I/O in fedrpc/worker/netem must arm deadlines
//	nopanic      library code returns errors instead of panicking
//	goberr       Encode/Decode/Flush errors must be checked
//	goroleak     go func literals in libraries must be joined
//	sleepcancel  library waits must be cancellable (no bare time.Sleep)
//	ctxflow      a received context.Context must propagate, not be dropped
//	obsreg       constant obs histogram names registered at one call site
//
// Usage:
//
//	exdralint [packages]
//
// Packages are go-style patterns relative to the module root ("./..." by
// default). Findings print as "file:line: rule: message"; the exit status
// is 1 when there are findings, 2 on load errors, 0 on a clean tree.
// Suppress an individual finding with a justification:
//
//	//lint:ignore <rule> <reason>
//
// on the flagged line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"exdra/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: exdralint [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	modDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "exdralint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(modDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exdralint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exdralint:", err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "exdralint: %s: type warning: %v\n", p.Path, terr)
		}
	}
	findings := lint.Run(pkgs, lint.DefaultAnalyzers())
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "exdralint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
