// Command expbench regenerates the tables and figures of the ExDRa
// evaluation (§6) as result tables on stdout — the full benchmark harness
// of DESIGN.md's experiment index.
//
// Usage:
//
//	expbench -exp fig5|fig6|fig7|fig8|table1|wire|pipeline|all [-workers 1,2,3,5]
//	         [-rows N -cols N -cnnrows N -piperows N]
//	expbench -smoke [-gob] [-json BENCH_smoke.json]
//	expbench -compare baseline.json,current.json [-max-ratio 2] [-floor 0.025]
//	expbench -check-pipeline BENCH_pipeline.json [-max-rtts 3.5] [-min-speedup 2]
//
// Sizes default to laptop scale; raise them to approach the paper's
// 1M x 1,050 setting. -smoke runs the fixed-scale CI smoke and -compare
// gates the encode+decode phase seconds of a fresh snapshot against a
// committed baseline (see BENCH_*.json and ci.sh); -exp wire emits the
// wire-format comparison rows, with -gob measuring the legacy pure-gob
// encoding; -exp pipeline emits the pipelined-vs-lock-step burst rows at a
// fixed 35 ms RTT and -check-pipeline gates them (see BENCH_pipeline.json).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"exdra/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5, fig6, fig7, fig8, table1, wire, or all")
	workersFlag := flag.String("workers", "1,2,3", "comma-separated worker counts for scaling sweeps")
	rows := flag.Int("rows", 0, "override feature-matrix rows")
	cols := flag.Int("cols", 0, "override feature-matrix cols")
	cnnRows := flag.Int("cnnrows", 0, "override CNN dataset rows")
	pipeRows := flag.Int("piperows", 0, "override pipeline table rows")
	smoke := flag.Bool("smoke", false, "run the fixed-scale CI bench smoke (FedLAN transfer + LM) instead of -exp")
	gob := flag.Bool("gob", false, "measure the legacy pure-gob wire format (with -smoke or -exp wire)")
	jsonPath := flag.String("json", "", "also write the run's rows as a BENCH_*.json snapshot (with -smoke or -exp wire)")
	compare := flag.String("compare", "", "baseline.json,current.json: gate enc+dec phase seconds and exit")
	maxRatio := flag.Float64("max-ratio", 2, "allowed enc+dec regression ratio for -compare")
	floor := flag.Float64("floor", 0.025, "absolute enc+dec seconds below which -compare never fails")
	checkPipeline := flag.String("check-pipeline", "", "BENCH_pipeline.json: gate the pipelined burst rows and exit")
	maxRTTs := flag.Float64("max-rtts", 3.5, "allowed pipelined round trips per depth-8 burst for -check-pipeline")
	minSpeedup := flag.Float64("min-speedup", 2, "required lock-step/pipelined wall-time ratio for -check-pipeline")
	flag.Parse()

	if *checkPipeline != "" {
		snap, err := bench.ReadSnapshot(*checkPipeline)
		if err != nil {
			log.Fatalf("expbench: %v", err)
		}
		if err := bench.CheckPipeline(snap, *maxRTTs, *minSpeedup); err != nil {
			log.Fatalf("expbench: %v", err)
		}
		fmt.Printf("pipeline gate ok: %s within %.1f RTTs and >= %.1fx over lock-step\n",
			snap.Name, *maxRTTs, *minSpeedup)
		return
	}

	if *compare != "" {
		parts := strings.Split(*compare, ",")
		if len(parts) != 2 {
			log.Fatalf("expbench: -compare wants baseline.json,current.json, got %q", *compare)
		}
		base, err := bench.ReadSnapshot(strings.TrimSpace(parts[0]))
		if err != nil {
			log.Fatalf("expbench: %v", err)
		}
		cur, err := bench.ReadSnapshot(strings.TrimSpace(parts[1]))
		if err != nil {
			log.Fatalf("expbench: %v", err)
		}
		if err := bench.CompareEncDec(base, cur, *maxRatio, *floor); err != nil {
			log.Fatalf("expbench: %v", err)
		}
		fmt.Printf("bench compare ok: %s within %.1fx of %s\n", cur.Name, *maxRatio, base.Name)
		return
	}

	emit := func(name string, ms []bench.Measurement, err error) {
		if err != nil {
			log.Fatalf("expbench: %s: %v", name, err)
		}
		for _, m := range ms {
			fmt.Println(m.Row())
		}
		if *jsonPath != "" {
			snap := bench.NewSnapshot(name, bench.WireName(*gob), ms)
			if err := snap.WriteFile(*jsonPath); err != nil {
				log.Fatalf("expbench: write %s: %v", *jsonPath, err)
			}
			fmt.Printf("wrote %s (%d rows, wire=%s)\n", *jsonPath, len(snap.Rows), snap.Wire)
		}
	}

	if *smoke {
		ms, err := bench.Smoke(*gob)
		emit("smoke", ms, err)
		return
	}
	if *exp == "wire" {
		ms, err := bench.WireBench(*gob)
		emit("wire", ms, err)
		return
	}
	if *exp == "pipeline" {
		ms, err := bench.PipelineBench()
		emit("pipeline", ms, err)
		return
	}

	sc := bench.DefaultScale()
	if *rows > 0 {
		sc.Rows = *rows
	}
	if *cols > 0 {
		sc.Cols = *cols
	}
	if *cnnRows > 0 {
		sc.CNNRows = *cnnRows
	}
	if *pipeRows > 0 {
		sc.PipeRows = *pipeRows
	}
	var workers []int
	for _, part := range strings.Split(*workersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			log.Fatalf("expbench: bad -workers entry %q", part)
		}
		workers = append(workers, n)
	}
	midWorkers := workers[len(workers)/2]

	run := func(name string) error {
		switch name {
		case "table1":
			bench.Table1(os.Stdout)
			return nil
		case "fig5":
			return bench.Fig5(os.Stdout, sc, workers)
		case "fig6":
			return bench.Fig6(os.Stdout, sc, midWorkers)
		case "fig7":
			return bench.Fig7(os.Stdout, sc, midWorkers)
		case "fig8":
			return bench.Fig8(os.Stdout, sc, workers)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	targets := []string{*exp}
	if *exp == "all" {
		targets = []string{"table1", "fig5", "fig6", "fig7", "fig8"}
	}
	for _, t := range targets {
		if err := run(t); err != nil {
			log.Fatalf("expbench: %s: %v", t, err)
		}
		fmt.Println()
	}
}
