// Command expbench regenerates the tables and figures of the ExDRa
// evaluation (§6) as result tables on stdout — the full benchmark harness
// of DESIGN.md's experiment index.
//
// Usage:
//
//	expbench -exp fig5|fig6|fig7|fig8|table1|all [-workers 1,2,3,5]
//	         [-rows N -cols N -cnnrows N -piperows N]
//
// Sizes default to laptop scale; raise them to approach the paper's
// 1M x 1,050 setting.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"exdra/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5, fig6, fig7, fig8, table1, or all")
	workersFlag := flag.String("workers", "1,2,3", "comma-separated worker counts for scaling sweeps")
	rows := flag.Int("rows", 0, "override feature-matrix rows")
	cols := flag.Int("cols", 0, "override feature-matrix cols")
	cnnRows := flag.Int("cnnrows", 0, "override CNN dataset rows")
	pipeRows := flag.Int("piperows", 0, "override pipeline table rows")
	flag.Parse()

	sc := bench.DefaultScale()
	if *rows > 0 {
		sc.Rows = *rows
	}
	if *cols > 0 {
		sc.Cols = *cols
	}
	if *cnnRows > 0 {
		sc.CNNRows = *cnnRows
	}
	if *pipeRows > 0 {
		sc.PipeRows = *pipeRows
	}
	var workers []int
	for _, part := range strings.Split(*workersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			log.Fatalf("expbench: bad -workers entry %q", part)
		}
		workers = append(workers, n)
	}
	midWorkers := workers[len(workers)/2]

	run := func(name string) error {
		switch name {
		case "table1":
			bench.Table1(os.Stdout)
			return nil
		case "fig5":
			return bench.Fig5(os.Stdout, sc, workers)
		case "fig6":
			return bench.Fig6(os.Stdout, sc, midWorkers)
		case "fig7":
			return bench.Fig7(os.Stdout, sc, midWorkers)
		case "fig8":
			return bench.Fig8(os.Stdout, sc, workers)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	targets := []string{*exp}
	if *exp == "all" {
		targets = []string{"table1", "fig5", "fig6", "fig7", "fig8"}
	}
	for _, t := range targets {
		if err := run(t); err != nil {
			log.Fatalf("expbench: %s: %v", t, err)
		}
		fmt.Println()
	}
}
