package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFormatsFindings(t *testing.T) {
	in := strings.NewReader(`[
  {"rule": "lockhold", "file": "a/b.go", "line": 12, "message": "send on ch while holding s.mu"},
  {"rule": "guardedby", "file": "c.go", "line": 3, "message": "x.n accessed without holding x.mu"}
]`)
	var out, errb bytes.Buffer
	if code := run(in, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (findings present); stderr: %s", code, errb.String())
	}
	want := "a/b.go:12: lockhold: send on ch while holding s.mu\n" +
		"c.go:3: guardedby: x.n accessed without holding x.mu\n"
	if out.String() != want {
		t.Errorf("output:\n%s\nwant:\n%s", out.String(), want)
	}
}

func TestRunCleanTree(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(strings.NewReader("[]\n"), &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 on empty findings", code)
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output on clean tree: %q", out.String())
	}
}

func TestRunBadInput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(strings.NewReader("not json"), &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2 on malformed input", code)
	}
	if !strings.Contains(errb.String(), "lintfmt:") {
		t.Errorf("no diagnostic on malformed input; stderr: %q", errb.String())
	}
}
