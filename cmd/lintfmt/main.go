// Command lintfmt converts exdralint -json output back into the canonical
// "file:line: rule: message" text form. CI pipes the linter through it:
//
//	exdralint -json ./... | lintfmt
//
// so the machine-readable stream is exercised on every run while the log
// stays grep-able. Exit status is 1 when the stream contains findings
// (mirroring exdralint itself), 2 when stdin is not a valid findings array.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

type finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

func run(stdin io.Reader, stdout, stderr io.Writer) int {
	var findings []finding
	if err := json.NewDecoder(stdin).Decode(&findings); err != nil {
		fmt.Fprintln(stderr, "lintfmt: decoding findings:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s:%d: %s: %s\n", f.File, f.Line, f.Rule, f.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
