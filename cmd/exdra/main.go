// Command exdra is the workbench backend CLI of ExDRa-Go (the stand-in for
// the Siemens ML workbench of §3.1): it runs ML pipelines on local or
// federated raw data, tracks runs in an ExperimentDB directory, lists and
// compares tracked runs, and prints the supported federated instruction
// classes.
//
// Usage:
//
//	exdra p2      -algo lm|ffn [-workers addr1,addr2 | -spawn 3] [-rows N] [-track dir]
//	              [-retries N -retry-backoff 50ms] [-fault-resets N -fault-reset-after 16384]
//	              [-recover] [-health-interval 5s]
//	              [-call-timeout 5s] [-breaker-threshold 3 -breaker-cooldown 10s]
//	exdra runs    -track dir [-metric r2]
//	exdra table1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"exdra/internal/bench"
	"exdra/internal/data"
	"exdra/internal/engine"
	"exdra/internal/expdb"
	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/fedtest"
	"exdra/internal/netem"
	"exdra/internal/obs"
	"exdra/internal/pipeline"
	"exdra/internal/privacy"

	// Parameter-server UDFs for in-process spawned workers.
	_ "exdra/internal/paramserv"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "p2":
		runP2(os.Args[2:])
	case "runs":
		listRuns(os.Args[2:])
	case "recommend":
		recommend(os.Args[2:])
	case "impute":
		imputeDemo(os.Args[2:])
	case "table1":
		bench.Table1(os.Stdout)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: exdra <p2|runs|recommend|impute|table1> [flags]")
	os.Exit(2)
}

// imputeDemo runs the federated missing-value imputation of §4.4 Example 4
// over a synthetic paper-production table with NULL quality classes.
func imputeDemo(args []string) {
	fs := flag.NewFlagSet("impute", flag.ExitOnError)
	rows := fs.Int("rows", 2000, "synthetic paper-production rows")
	spawn := fs.Int("spawn", 3, "in-process federated workers")
	method := fs.String("method", "fd", "imputation method: mode or fd (recipe -> quality)")
	fs.Parse(args)

	full := data.PaperProduction(data.PaperProductionConfig{
		Rows: *rows, ContinuousCols: 8, RecipeCategories: 25, NullRate: 0.08, Seed: 13,
	})
	fr, _, err := pipeline.SplitTarget(full, "zstrength")
	if err != nil {
		log.Fatalf("exdra: %v", err)
	}
	nulls := 0
	q := fr.ColumnByName("quality")
	for i := 0; i < q.Len(); i++ {
		if q.IsNA(i) {
			nulls++
		}
	}
	cl, err := fedtest.Start(fedtest.Config{Workers: *spawn})
	if err != nil {
		log.Fatalf("exdra: %v", err)
	}
	defer cl.Close()
	ff, err := federated.DistributeFrame(cl.Coord, fr, cl.Addrs, privacy.PrivateAggregation)
	if err != nil {
		log.Fatalf("exdra: %v", err)
	}
	fmt.Printf("federated frame: %d rows across %d sites, %d NULL quality classes\n",
		ff.Rows(), *spawn, nulls)
	switch *method {
	case "mode":
		_, mode, err := ff.ImputeMode("quality")
		if err != nil {
			log.Fatalf("exdra: %v", err)
		}
		fmt.Printf("imputed all NULLs with the global mode %q (only aggregate counts were exchanged)\n", mode)
	case "fd":
		_, mapping, err := ff.ImputeFD("recipe", "quality", 0.5)
		if err != nil {
			log.Fatalf("exdra: %v", err)
		}
		fmt.Printf("imputed via robust functional dependency recipe -> quality (%d mapped recipes; only co-occurrence counts were exchanged)\n", len(mapping))
	default:
		log.Fatalf("exdra: unknown imputation method %q", *method)
	}
}

// recommend ranks candidate pipelines from the tracked run history — the
// ExperimentDB recommendation engine of §3.3.
func recommend(args []string) {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	trackDir := fs.String("track", "", "ExperimentDB directory")
	metric := fs.String("metric", "r2", "metric the recommender optimizes")
	fs.Parse(args)
	if *trackDir == "" {
		log.Fatal("exdra recommend: -track is required")
	}
	store, err := expdb.Open(*trackDir)
	if err != nil {
		log.Fatalf("exdra: %v", err)
	}
	rec, err := expdb.NewRecommender(store, *metric, 0.01)
	if err != nil {
		log.Fatalf("exdra: %v (run some tracked pipelines first)", err)
	}
	candidates := []expdb.Candidate{
		{PipelineID: "P2_lm", Steps: []expdb.Step{
			{Name: "transformencode"}, {Name: "clip_scale"}, {Name: "normalize_cols"},
			{Name: "train_test_split"}, {Name: "lm_train"}}},
		{PipelineID: "P2_ffn", Steps: []expdb.Step{
			{Name: "transformencode"}, {Name: "clip_scale"}, {Name: "normalize_cols"},
			{Name: "train_test_split"}, {Name: "ffn_train"}}},
		{PipelineID: "P2_lm_imputed", Steps: []expdb.Step{
			{Name: "transformencode"}, {Name: "mice_impute"}, {Name: "normalize_cols"},
			{Name: "train_test_split"}, {Name: "lm_train"}}},
	}
	stats := map[string]float64{"rows": 3000, "cols": 70}
	fmt.Printf("recommended pipelines by predicted %s (best first):\n", *metric)
	for _, r := range rec.Recommend(candidates, stats) {
		fmt.Printf("  %-16s predicted %s = %.4f\n", r.Candidate.PipelineID, *metric, r.Score)
	}
}

// logRecoveryStats prints the coordinator's restart/health counters after a
// federated run when recovery or probing was active.
func logRecoveryStats(coord *federated.Coordinator, recovering bool, healthInterval time.Duration) {
	if !recovering && healthInterval <= 0 {
		return
	}
	s := coord.Stats()
	fmt.Printf("exdra: recovery stats: %d restarts detected, %d objects replayed, %d replay failures, %d/%d probes failed\n",
		s.RestartsDetected, s.ObjectsReplayed, s.ReplayFailures, s.ProbeFailures, s.Probes)
}

func runP2(args []string) {
	fs := flag.NewFlagSet("p2", flag.ExitOnError)
	algo := fs.String("algo", "lm", "training algorithm: lm or ffn")
	workersFlag := fs.String("workers", "", "comma-separated federated worker addresses (host:port)")
	spawn := fs.Int("spawn", 0, "spawn N in-process workers instead of connecting to -workers")
	rows := fs.Int("rows", 3000, "synthetic paper-production rows")
	trackDir := fs.String("track", "", "ExperimentDB directory for run tracking")
	retries := fs.Int("retries", 0,
		"retry attempts per idempotent request batch after a transport failure (0 = fail fast)")
	retryBackoff := fs.Duration("retry-backoff", 50*time.Millisecond,
		"base backoff before a retry, doubling per attempt (capped at 2s, jittered)")
	faultResets := fs.Int("fault-resets", 0,
		"with -spawn: inject N connection resets (at most one per worker) to exercise recovery")
	faultResetAfter := fs.Int64("fault-reset-after", 16<<10,
		"with -fault-resets: written-byte threshold that triggers an injected reset")
	faultSeed := fs.Int64("fault-seed", 1, "seed of the deterministic fault schedule")
	recoverFlag := fs.Bool("recover", false,
		"enable restart recovery: log object creations and replay them when a worker comes back with a new instance epoch")
	healthInterval := fs.Duration("health-interval", 0,
		"probe worker liveness every interval (0 = no probing); with -recover, restarted workers are repaired proactively")
	callTimeout := fs.Duration("call-timeout", 0,
		"per-batch deadline propagated to workers over the wire; a stalled worker fails the batch with DEADLINE_EXCEEDED instead of hanging (0 = no deadline)")
	breakerThreshold := fs.Int("breaker-threshold", 0,
		"open a worker's circuit breaker after N consecutive transport/deadline failures; while open, calls fail fast with ErrWorkerUnavailable until a health probe succeeds (0 = breaker disabled)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0,
		"with -breaker-threshold: also allow a half-open trial after this much time open, even without a health probe (0 = probe-driven recovery only)")
	metricsAddr := fs.String("metrics-addr", "",
		"serve /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9091; empty disables)")
	slowRPC := fs.Duration("slow-rpc", 0,
		"log every RPC slower than this threshold with its phase breakdown (0 disables)")
	fs.Parse(args)

	if *metricsAddr != "" {
		ms, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			log.Fatalf("exdra: metrics endpoint: %v", err)
		}
		defer ms.Close()
		engine.SetInstrumentation(engine.OpTimer(obs.Default(), "engine.op_seconds."))
		defer engine.SetInstrumentation(nil)
		fmt.Printf("exdra: metrics on http://%s/metrics\n", ms.Addr())
	}

	retry := federated.RetryPolicy{}
	if *retries > 0 {
		retry = federated.RetryPolicy{
			Attempts: *retries + 1, Backoff: *retryBackoff, MaxBackoff: 2 * time.Second, Seed: *faultSeed,
		}
	}
	var faults *netem.Faults
	if *faultResets > 0 {
		faults = netem.NewFaults(netem.FaultConfig{
			Seed: *faultSeed, ConnResets: *faultResets,
			ResetAfterBytes: *faultResetAfter, ResetPerAddr: true,
		})
	}

	var store *expdb.Store
	var err error
	if *trackDir != "" {
		if store, err = expdb.Open(*trackDir); err != nil {
			log.Fatalf("exdra: open experiment store: %v", err)
		}
	}
	full := data.PaperProduction(data.PaperProductionConfig{
		Rows: *rows, ContinuousCols: 20, RecipeCategories: 40, NullRate: 0.01, Seed: 7,
	})
	fr, y, err := pipeline.SplitTarget(full, "zstrength")
	if err != nil {
		log.Fatalf("exdra: %v", err)
	}
	cfg := pipeline.P2Config{
		Spec: data.PaperProductionSpec(), TrainAlgo: *algo, Track: store, Seed: 7,
		FFNEpochs: 5, FFNBatch: 256, FFNHidden: 64,
	}

	var res *pipeline.P2Result
	switch {
	case *spawn > 0:
		cl, err := fedtest.Start(fedtest.Config{
			Workers: *spawn, Faults: faults, Retry: retry,
			Recover: *recoverFlag, Health: federated.HealthPolicy{Interval: *healthInterval},
			SlowRPC: *slowRPC, CallTimeout: *callTimeout,
			Breaker: federated.BreakerPolicy{Threshold: *breakerThreshold, Cooldown: *breakerCooldown},
		})
		if err != nil {
			log.Fatalf("exdra: spawn workers: %v", err)
		}
		defer cl.Close()
		fmt.Printf("exdra: spawned %d in-process federated workers: %v\n", *spawn, cl.Addrs)
		ff, err := federated.DistributeFrame(cl.Coord, fr, cl.Addrs, privacy.PrivateAggregation)
		if err != nil {
			log.Fatalf("exdra: distribute: %v", err)
		}
		res, err = pipeline.RunP2Federated(ff, y, fr.Names(), cfg)
		if err != nil {
			log.Fatalf("exdra: pipeline: %v", err)
		}
		if faults != nil {
			s := faults.Stats()
			fmt.Printf("exdra: injected faults survived: %d resets, %d drops, %d stalls\n",
				s.Resets, s.Drops, s.Stalls)
		}
		logRecoveryStats(cl.Coord, *recoverFlag, *healthInterval)
	case *workersFlag != "":
		addrs := strings.Split(*workersFlag, ",")
		coord := federated.NewCoordinator(fedrpc.Options{SlowRPC: *slowRPC})
		defer coord.Close()
		if retry.Attempts > 0 {
			coord.SetRetryPolicy(retry)
		}
		coord.SetCallTimeout(*callTimeout)
		if *breakerThreshold > 0 {
			coord.SetBreakerPolicy(federated.BreakerPolicy{Threshold: *breakerThreshold, Cooldown: *breakerCooldown})
		}
		coord.EnableRecovery(*recoverFlag)
		coord.StartHealth(federated.HealthPolicy{Interval: *healthInterval})
		ff, err := federated.DistributeFrame(coord, fr, addrs, privacy.PrivateAggregation)
		if err != nil {
			log.Fatalf("exdra: distribute to %v: %v", addrs, err)
		}
		res, err = pipeline.RunP2Federated(ff, y, fr.Names(), cfg)
		if err != nil {
			log.Fatalf("exdra: pipeline: %v", err)
		}
		logRecoveryStats(coord, *recoverFlag, *healthInterval)
	default:
		if res, err = pipeline.RunP2Local(fr, y, cfg); err != nil {
			log.Fatalf("exdra: pipeline: %v", err)
		}
	}
	fmt.Printf("P2_%s: test R2 = %.4f (train %d rows, test %d rows, %d encoded features)\n",
		*algo, res.R2, res.TrainRows, res.TestRows, res.Features)
	if res.RunID != "" {
		fmt.Printf("tracked as %s in %s\n", res.RunID, *trackDir)
	}
}

func listRuns(args []string) {
	fs := flag.NewFlagSet("runs", flag.ExitOnError)
	trackDir := fs.String("track", "", "ExperimentDB directory")
	metric := fs.String("metric", "r2", "metric to display")
	fs.Parse(args)
	if *trackDir == "" {
		log.Fatal("exdra runs: -track is required")
	}
	store, err := expdb.Open(*trackDir)
	if err != nil {
		log.Fatalf("exdra: %v", err)
	}
	runs := store.Query(nil)
	if len(runs) == 0 {
		fmt.Println("no tracked runs")
		return
	}
	for _, r := range runs {
		fmt.Printf("%-12s %-10s %v %s=%.4f (%s)\n",
			r.ID, r.PipelineID, stepNames(r), *metric, r.Metrics[*metric], r.Duration.Round(1e6))
	}
	if best, ok := store.Best(*metric); ok {
		fmt.Printf("best %s: %s (%s = %.4f)\n", *metric, best.ID, *metric, best.Metrics[*metric])
	}
}

func stepNames(r *expdb.Run) []string {
	out := make([]string, len(r.Steps))
	for i, s := range r.Steps {
		out[i] = s.Name
	}
	return out
}
