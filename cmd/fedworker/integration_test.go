package main_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"exdra/internal/algo"
	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
	"exdra/internal/privacy"

	"math/rand"
)

// TestMultiProcessFederation exercises the real deployment path: two
// fedworker processes (separate OS processes, not goroutines) serve raw
// files; a coordinator in this process builds a federated matrix over them
// via read-on-demand and trains a model. This is Figure 4's topology with
// genuine process isolation.
func TestMultiProcessFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := filepath.Join(t.TempDir(), "fedworker")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build fedworker: %v\n%s", err, out)
	}

	rng := rand.New(rand.NewSource(71))
	var addrs []string
	var parts []*matrix.Dense
	var procs []*exec.Cmd
	for site := 0; site < 2; site++ {
		dir := t.TempDir()
		part := matrix.Randn(rng, 30+10*site, 5, 0, 1)
		if err := part.WriteBinaryFile(filepath.Join(dir, "data.bin")); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, part)
		addr := freeAddr(t)
		cmd := exec.Command(bin, "-addr", addr, "-data", dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
		addrs = append(addrs, addr)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	})
	for _, addr := range addrs {
		waitReachable(t, addr)
	}

	coord := federated.NewCoordinator(fedrpc.Options{})
	defer coord.Close()
	fx, err := federated.ReadRowPartitioned(coord, []federated.ReadSpec{
		{Addr: addrs[0], Filename: "data.bin", Privacy: privacy.PrivateAggregation},
		{Addr: addrs[1], Filename: "data.bin", Privacy: privacy.PrivateAggregation},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := matrix.RBind(parts...)
	if fx.Rows() != all.Rows() || fx.Cols() != 5 {
		t.Fatalf("federated dims %dx%d", fx.Rows(), fx.Cols())
	}
	// Cross-process privacy enforcement.
	if _, err := fx.Consolidate(); err == nil {
		t.Fatal("cross-process consolidation of private data succeeded")
	}
	// Cross-process training: same script as in-process tests.
	wStar := matrix.Randn(rng, 5, 1, 0, 1)
	y := all.MatMul(wStar)
	fed, err := algo.LM(fx, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := algo.LM(all, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !fed.Weights.EqualApprox(local.Weights, 1e-6) {
		t.Fatal("multi-process federated LM differs from local")
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitReachable(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal(fmt.Sprintf("worker at %s never became reachable", addr))
}
