// Command fedworker starts a standing ExDRa federated worker: a server
// process at a federated site that answers the six federated request types
// over its permissioned raw-data directory (ExDRa §4.1, Figure 4).
//
// Usage:
//
//	fedworker -addr 127.0.0.1:7001 -data /srv/site1 [-tls]
//
// With -tls the worker generates an ephemeral self-signed certificate and
// prints its PEM so coordinators can pin it (production deployments would
// provision real certificates).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"exdra/internal/fedrpc"
	"exdra/internal/worker"

	// Register the parameter-server UDFs so this worker can serve
	// federated FFN/CNN training sessions.
	_ "exdra/internal/paramserv"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	dataDir := flag.String("data", ".", "directory of permissioned raw data files for READ requests")
	useTLS := flag.Bool("tls", false, "serve with an ephemeral self-signed TLS certificate")
	ioTimeout := flag.Duration("io-timeout", fedrpc.DefaultIOTimeout,
		"per-response write deadline (negative disables)")
	idleTimeout := flag.Duration("idle-timeout", fedrpc.DefaultIdleTimeout,
		"per-connection read/idle deadline (negative disables)")
	flag.Parse()

	opts := fedrpc.Options{IOTimeout: *ioTimeout, IdleTimeout: *idleTimeout}
	if *useTLS {
		srvTLS, _, err := fedrpc.NewSelfSignedTLS()
		if err != nil {
			log.Fatalf("fedworker: tls setup: %v", err)
		}
		opts.TLS = srvTLS
	}
	w := worker.New(*dataDir)
	srv, err := fedrpc.Serve(*addr, w, opts)
	if err != nil {
		log.Fatalf("fedworker: %v", err)
	}
	fmt.Printf("fedworker: listening on %s (data dir %s, tls=%v)\n", srv.Addr(), *dataDir, *useTLS)
	fmt.Printf("fedworker: registered UDFs: %v\n", worker.RegisteredUDFs())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("fedworker: shutting down")
	srv.Close()
}
