// Command fedworker starts a standing ExDRa federated worker: a server
// process at a federated site that answers the six federated request types
// over its permissioned raw-data directory (ExDRa §4.1, Figure 4).
//
// Usage:
//
//	fedworker -addr 127.0.0.1:7001 -data /srv/site1 [-tls] [-rtt 45ms -bw 1.7e6]
//
// With -tls the worker generates an ephemeral self-signed certificate and
// prints its PEM so coordinators can pin it (production deployments would
// provision real certificates).
//
// -rtt/-bw shape every accepted connection like the paper's WAN setting;
// -fault-resets injects deterministic connection resets so coordinator-side
// recovery (redial + retry) can be exercised against a real worker process.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"exdra/internal/fedrpc"
	"exdra/internal/netem"
	"exdra/internal/obs"
	"exdra/internal/worker"

	// Register the parameter-server UDFs so this worker can serve
	// federated FFN/CNN training sessions.
	_ "exdra/internal/paramserv"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	dataDir := flag.String("data", ".", "directory of permissioned raw data files for READ requests")
	useTLS := flag.Bool("tls", false, "serve with an ephemeral self-signed TLS certificate")
	ioTimeout := flag.Duration("io-timeout", fedrpc.DefaultIOTimeout,
		"per-response write deadline (negative disables)")
	idleTimeout := flag.Duration("idle-timeout", fedrpc.DefaultIdleTimeout,
		"per-connection read/idle deadline (negative disables)")
	rtt := flag.Duration("rtt", 0, "emulated round-trip latency on accepted connections (e.g. 45ms for the paper's WAN)")
	bw := flag.Float64("bw", 0, "emulated bandwidth in bytes/s on accepted connections (0 = unlimited)")
	faultResets := flag.Int("fault-resets", 0,
		"inject N deterministic connection resets for recovery testing (coordinators need more retry attempts than N)")
	faultResetAfter := flag.Int64("fault-reset-after", 16<<10,
		"written-byte threshold that triggers an injected reset")
	faultSeed := flag.Int64("fault-seed", 1, "seed of the deterministic fault schedule")
	maxConns := flag.Int("max-conns", 0,
		"cap on concurrently served connections; accepts beyond it are rejected with backoff (0 = unlimited). "+
			"Size it to at least coordinators × their pool size, or pooled clients will see rejected checkouts.")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9090; empty disables)")
	flag.Parse()

	opts := fedrpc.Options{IOTimeout: *ioTimeout, IdleTimeout: *idleTimeout, MaxConns: *maxConns}
	opts.Netem = netem.Config{RTT: *rtt, BandwidthBps: *bw}
	if *faultResets > 0 {
		// No ResetPerAddr here: the server sees a fresh ephemeral peer
		// address per redial, so the budget alone bounds the fault count.
		opts.Netem.Faults = netem.NewFaults(netem.FaultConfig{
			Seed: *faultSeed, ConnResets: *faultResets,
			ResetAfterBytes: *faultResetAfter,
		})
	}
	if *useTLS {
		srvTLS, _, err := fedrpc.NewSelfSignedTLS()
		if err != nil {
			log.Fatalf("fedworker: tls setup: %v", err)
		}
		opts.TLS = srvTLS
	}
	w := worker.New(*dataDir)
	srv, err := fedrpc.Serve(*addr, w, opts)
	if err != nil {
		log.Fatalf("fedworker: %v", err)
	}
	fmt.Printf("fedworker: listening on %s (data dir %s, tls=%v, max-conns=%d)\n",
		srv.Addr(), *dataDir, *useTLS, *maxConns)
	// The instance epoch identifies this process incarnation: coordinators
	// compare it across responses to tell a restarted worker (new epoch,
	// empty symbol table) from a flaky connection. Logged so operators can
	// correlate coordinator-side restart detections with worker logs.
	fmt.Printf("fedworker: instance epoch %#016x\n", w.Epoch())
	fmt.Printf("fedworker: registered UDFs: %v\n", worker.RegisteredUDFs())
	if *metricsAddr != "" {
		ms, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			log.Fatalf("fedworker: metrics endpoint: %v", err)
		}
		defer ms.Close()
		fmt.Printf("fedworker: metrics on http://%s/metrics\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("fedworker: shutting down")
	srv.Close()
}
