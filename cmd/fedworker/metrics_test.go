package main_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/obs"
	"exdra/internal/privacy"
)

// TestMetricsEndpointEndToEnd is the observability acceptance test: a real
// fedworker process is started with -metrics-addr, a federated LM is
// trained against it, and the worker's HTTP endpoint must then expose
// non-zero per-request-type RPC counts and execute-latency histograms. The
// coordinator side of the same run must carry byte totals and the
// queue/encode/network/execute/decode phase histograms.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := filepath.Join(t.TempDir(), "fedworker")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build fedworker: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	cmd := exec.Command(bin, "-addr", addr, "-data", t.TempDir(), "-metrics-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The worker announces its resolved metrics address on stdout.
	metricsURL := ""
	scanner := bufio.NewScanner(stdout)
	announce := make(chan string, 1)
	go func() {
		for scanner.Scan() {
			if rest, ok := strings.CutPrefix(scanner.Text(), "fedworker: metrics on "); ok {
				announce <- rest
				return
			}
		}
	}()
	select {
	case metricsURL = <-announce:
	case <-time.After(10 * time.Second):
		t.Fatal("fedworker never announced its metrics endpoint")
	}
	waitReachable(t, addr)

	// Train a small federated LM through the worker so every metric layer
	// (fedrpc client+server, worker dispatch) sees traffic.
	clientReg := obs.New()
	coord := federated.NewCoordinator(fedrpc.Options{Metrics: clientReg})
	defer coord.Close()
	x, y := data.Regression(3, 200, 8, 0.05)
	fx, err := federated.Distribute(coord, x, []string{addr}, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := algo.LM(fx, y, algo.LMConfig{MaxIterations: 5}); err != nil {
		t.Fatal(err)
	}

	// Worker-side metrics over HTTP (JSON form).
	resp, err := http.Get(metricsURL + "?format=json")
	if err != nil {
		t.Fatalf("scrape %s: %v", metricsURL, err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics json: %v", err)
	}
	for _, c := range []string{
		"rpc.server.batches",
		"rpc.server.requests.PUT",
		"rpc.server.requests.EXEC_INST",
		"worker.requests.EXEC_INST",
	} {
		if snap.Counters[c] == 0 {
			t.Errorf("worker /metrics: counter %s is zero: %v", c, snap.Counters)
		}
	}
	if snap.Histograms["rpc.server.execute_seconds"].Count == 0 {
		t.Error("worker /metrics: rpc.server.execute_seconds histogram is empty")
	}

	// Coordinator-side metrics from the same run.
	cs := clientReg.Snapshot()
	if cs.Counters["rpc.client.calls"] == 0 || cs.Counters["rpc.client.requests.EXEC_INST"] == 0 {
		t.Errorf("client metrics missing rpc counts: %v", cs.Counters)
	}
	if cs.Counters["rpc.client.bytes_out"] == 0 || cs.Counters["rpc.client.bytes_in"] == 0 {
		t.Errorf("client metrics missing byte totals: %v", cs.Counters)
	}
	for _, phase := range []string{"queue", "encode", "network", "execute", "decode"} {
		if cs.Histograms["rpc.client.phase."+phase].Count == 0 {
			t.Errorf("client phase histogram %s is empty", phase)
		}
	}
}
