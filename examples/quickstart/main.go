// Quickstart: spin up an in-process federation of three workers, create a
// federated matrix, and train a model without the raw data ever leaving
// its site — the ExDRa §3.2 workflow
//
//	features = Federated(sds, [node1,node2], ([...],[...]))
//	model = features.l2svm(labels).compute()
//
// translated to Go.
package main

import (
	"fmt"
	"log"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/lazy"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

func main() {
	// 1. Start three standing federated workers (in production these are
	//    separate `fedworker` processes at the federated sites).
	cluster, err := fedtest.Start(fedtest.Config{Workers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Println("federated workers:", cluster.Addrs)

	// 2. Create a federated feature matrix. PrivateAggregation means only
	//    aggregates may ever leave a site.
	x, y := data.Classification(7, 3000, 40, 0.01)
	fx, err := federated.Distribute(cluster.Coord, x, cluster.Addrs,
		federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("federated matrix:", fx)

	// 3. Raw data cannot be consolidated ...
	if _, err := fx.Consolidate(); err != nil {
		fmt.Println("consolidation blocked as expected:", err)
	}

	// 4. ... but the same L2SVM script that runs locally trains on it,
	//    exchanging only aggregates (labels stay at the coordinator).
	model, err := algo.L2SVM(fx, y, algo.L2SVMConfig{MaxIterations: 20})
	if err != nil {
		log.Fatal(err)
	}
	scores, err := model.Predict(fx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federated L2SVM: train accuracy %.3f after %d iterations\n",
		algo.Accuracy(scores, y), model.Iterations)

	// 5. The lazy API collects operations into a DAG and generates a
	//    script on compute(), exactly like the Python API of §3.2.
	w := lazy.Wrap(fx).TMatMul(lazy.Wrap(y)).Scale(1 / float64(x.Rows()))
	fmt.Println("generated script for t(X) %*% y / n:")
	fmt.Print(w.Script())
	g, err := w.Compute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean gradient direction norm: %.4f\n", g.Norm2())

	// 6. Aggregates remain available under the privacy constraint.
	mean, err := fx.AggFull(matrix.AggMean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federated mean of %d cells: %.4f (moved %d KB over the wire)\n",
		x.Rows()*x.Cols(), mean, cluster.Coord.BytesSent()/1024)
}
