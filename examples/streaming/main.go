// Streaming: the envisioned deployment of ExDRa Figure 4 — per-site NES
// instances append sensor streams to file sinks with retention periods;
// standing federated workers READ the sink files as raw data on demand; the
// coordinator builds a federated matrix over them and trains iteratively on
// a consistent snapshot, bridging streaming acquisition and multi-pass ML.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/nes"
	"exdra/internal/privacy"
)

func main() {
	const sites = 3
	dirs := make([]string, sites)
	for site := 0; site < sites; site++ {
		dir, err := os.MkdirTemp("", "exdra-site-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		dirs[site] = dir

		// NES acquisition at the site: window means into a CSV file sink
		// the local federated worker can READ (.mcsv = numeric matrix CSV).
		x, _ := data.FertilizerSensors(int64(site+1), 1200, 0.01)
		instance := nes.NewInstance([]*nes.Node{{ID: "edge", Capacity: 4}})
		sink, err := nes.NewFileSink(filepath.Join(dir, "mill.sink"), 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		instance.RegisterSink("mill", sink)
		instance.RegisterSource("sensors", func() nes.Source { return nes.NewMatrixSource(x) })
		if _, err := instance.Deploy(&nes.Query{
			Name: "acquire", Source: "sensors",
			Ops:      []nes.Op{{Kind: nes.OpWindowAgg, Size: 10, Agg: nes.WindowMean}},
			SinkName: "mill",
		}); err != nil {
			log.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			log.Fatal(err)
		}
		// Materialize the consistent snapshot the training session reads
		// (in production the retention-bound sink file itself is read; the
		// snapshot write here makes the example deterministic).
		if err := sink.Snapshot().WriteBinaryFile(filepath.Join(dir, "snapshot.bin")); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("site %d: sink retained %d windows of 68 channels\n", site, sink.Len())
	}

	// Standing workers over the site data directories; the coordinator
	// reads the snapshots on demand — raw windows never consolidate.
	cluster, err := fedtest.Start(fedtest.Config{Workers: sites, BaseDirs: dirs})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	specs := make([]federated.ReadSpec, sites)
	for i, addr := range cluster.Addrs {
		specs[i] = federated.ReadSpec{Addr: addr, Filename: "snapshot.bin", Privacy: privacy.PrivateAggregation}
	}
	fx, err := federated.ReadRowPartitioned(cluster.Coord, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("federated snapshot matrix:", fx)

	// Iterative multi-pass training over the snapshot: PCA then K-Means on
	// the projected features, all federated.
	pcaRes, proj, err := algo.PCA(fx, algo.PCAConfig{K: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCA captured leading eigenvalues: %.1f, %.1f, ...\n",
		pcaRes.Values.At(0, 0), pcaRes.Values.At(1, 0))
	km, err := algo.KMeans(proj, algo.KMeansConfig{K: 3, MaxIterations: 15, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K-Means over federated projections: WCSS %.1f after %d iterations\n",
		km.WCSS, km.Iterations)
	fmt.Printf("coordinator exchanged %d KB total; raw windows stayed at the sites\n",
		cluster.Coord.BytesSent()/1024)
}
