// Fertilizer: the grinding-mill anomaly-detection use case (ExDRa §2.1) —
// 68-channel sensor telemetry is acquired per site through NES continuous
// queries into retention-bound file sinks; task-parallel GMM instances are
// trained on the sink snapshots and flag anomalous seconds.
package main

import (
	"fmt"
	"log"

	"exdra/internal/data"
	"exdra/internal/nes"
	"exdra/internal/pipeline"
)

func main() {
	const sites = 2
	var sinks []*nes.FileSink
	var telemetry []struct {
		x     interface{ Rows() int }
		truth []bool
	}

	for site := 0; site < sites; site++ {
		// One NES instance per federated site: edge nodes run the
		// continuous acquisition query over the mill sensors.
		x, truth := data.FertilizerSensors(int64(100+site), 3600, 0.005) // one hour at 1 Hz
		instance := nes.NewInstance([]*nes.Node{
			{ID: "mill-edge", Capacity: 8},
			{ID: "site-gateway", Capacity: 8},
		})
		sink, err := nes.NewFileSink("", 7200, 0) // retain the last two hours
		if err != nil {
			log.Fatal(err)
		}
		instance.RegisterSink("mill", sink)
		instance.RegisterSource("sensors", func() nes.Source { return nes.NewMatrixSource(x) })
		placement, err := instance.Deploy(&nes.Query{
			Name:   "acquire",
			Source: "sensors",
			Ops: []nes.Op{
				// Drop obviously dead readings, smooth over 5-second windows.
				{Kind: nes.OpFilter, Pred: func(t nes.Tuple) bool { return t.Values[0] != 0 }},
				{Kind: nes.OpWindowAgg, Size: 5, Agg: nes.WindowMean},
			},
			SinkName: "mill",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("site %d: query deployed on nodes %v, sink holds %d windows\n",
			site, placement.Ops, sink.Len())
		sinks = append(sinks, sink)
		telemetry = append(telemetry, struct {
			x     interface{ Rows() int }
			truth []bool
		}{x, truth})
	}

	// Train one GMM per site (task-parallel) on consistent sink snapshots.
	model, err := pipeline.TrainFertilizer(sinks, pipeline.FertilizerConfig{
		Components: 3, Quantile: 0.02, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	for site, sink := range sinks {
		flags, err := model.Score(site, sink.Snapshot())
		if err != nil {
			log.Fatal(err)
		}
		flagged := 0
		for _, f := range flags {
			if f {
				flagged++
			}
		}
		fmt.Printf("site %d: model flagged %d of %d smoothed windows as anomalous (threshold %.2f)\n",
			site, flagged, len(flags), model.Thresholds[site])
	}
	fmt.Println("rare failures are caught from aggregate windows; raw 1 Hz telemetry never left the sites")
}
