// Paperquality: the paper-production use case (ExDRa §2.2 and §6.3) end to
// end — a federated raw frame of process signals and categorical recipes is
// transform-encoded, cleaned, normalized, split, and used to train
// z-strength predictors (P2_LM and P2_FNN) without central data
// consolidation. Runs are tracked in an ExperimentDB and the recommendation
// engine ranks candidate pipelines from the collected history.
package main

import (
	"fmt"
	"log"

	"exdra/internal/data"
	"exdra/internal/expdb"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/pipeline"
	"exdra/internal/privacy"
)

func main() {
	cluster, err := fedtest.Start(fedtest.Config{Workers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Raw production table: 20 continuous signals, recipe IDs, quality
	// classes with NULLs, and the z-strength target.
	table := data.PaperProduction(data.PaperProductionConfig{
		Rows: 4000, ContinuousCols: 20, RecipeCategories: 50, NullRate: 0.02, Seed: 11,
	})
	features, zstrength, err := pipeline.SplitTarget(table, "zstrength")
	if err != nil {
		log.Fatal(err)
	}
	ff, err := federated.DistributeFrame(cluster.Coord, features, cluster.Addrs, privacy.PrivateAggregation)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federated raw frame: %d rows x %d columns across %d sites\n",
		ff.Rows(), ff.Cols(), len(cluster.Addrs))

	store, err := expdb.Open("")
	if err != nil {
		log.Fatal(err)
	}
	for _, algo := range []string{"lm", "ffn"} {
		res, err := pipeline.RunP2Federated(ff, zstrength, features.Names(), pipeline.P2Config{
			Spec: data.PaperProductionSpec(), TrainAlgo: algo, Track: store,
			FFNHidden: 32, FFNEpochs: 5, FFNBatch: 256, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P2_%-3s  encoded %d features, test R2 = %.4f (run %s)\n",
			algo, res.Features, res.R2, res.RunID)
	}

	// Query-based comparison and recommendation over the tracked history.
	for _, rm := range append(store.Compare("P2_lm", "r2"), store.Compare("P2_ffn", "r2")...) {
		fmt.Printf("  tracked %s: r2 = %.4f\n", rm.RunID, rm.Value)
	}
	rec, err := expdb.NewRecommender(store, "r2", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	stats := map[string]float64{"rows": 4000, "cols": 70}
	ranked := rec.Recommend([]expdb.Candidate{
		{PipelineID: "cand_lm", Steps: []expdb.Step{{Name: "transformencode"}, {Name: "normalize_cols"}, {Name: "lm_train"}}},
		{PipelineID: "cand_ffn", Steps: []expdb.Step{{Name: "transformencode"}, {Name: "normalize_cols"}, {Name: "ffn_train"}}},
	}, stats)
	fmt.Println("pipeline recommendation (best first):")
	for _, r := range ranked {
		fmt.Printf("  %-10s predicted r2 %.4f\n", r.Candidate.PipelineID, r.Score)
	}
}
