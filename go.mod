module exdra

go 1.22
