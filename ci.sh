#!/usr/bin/env bash
# ci.sh — the tier-2 gate. Everything here must pass before a change lands:
#
#   1. go build      — the tree compiles;
#   2. gofmt         — every file is canonically formatted;
#   3. go vet        — stock static analysis;
#   4. exdralint     — project-specific federation-runtime invariants
#                      (see DESIGN.md, "Static analysis"); run through its
#                      -json output piped into lintfmt, so the
#                      machine-readable stream is exercised on every CI run
#                      while the log keeps the "file:line: rule: msg" form;
#   5. go test -race — full test suite under the race detector;
#   6. fault tests   — the fault-injection/recovery suites re-run under
#                      -race with -count=1: connection teardown, redial,
#                      retry, and worker-restart/replay interleavings are
#                      exactly where data races hide, so these never run
#                      from cache (the pattern also covers the restart and
#                      health-probing suites: Restart|Health|Epoch|...);
#   7. obs tests     — the observability suites (metrics registry, RPC
#                      spans, concurrent Stats/snapshot reads) re-run
#                      uncached under -race for the same reason;
#   8. chaos + deadline/breaker e2e — the byzantine chaos harness and the
#                      stalled-worker deadline/breaker lifecycle re-run
#                      uncached under -race (covered by the widened fault
#                      pattern in step 6: Chaos|Deadline|Breaker|...);
#   9. wire fuzz smoke — the Go-native fuzz targets for the binary framing
#                      decode paths each run for 10s: forged lengths,
#                      truncation, and corruption must error, never panic
#                      or over-allocate;
#  10. /metrics smoke — a real fedworker process is spawned with
#                      -metrics-addr and its endpoint is scraped once;
#  11. exdrad smoke   — the standing coordinator daemon is spawned over two
#                      real fedworker processes; two concurrent sessions are
#                      opened over its HTTP API, each trains a seeded LM,
#                      and the daemon's /metrics must export the serve.*
#                      series (sessions, pool churn) while a worker exports
#                      the worker.conns gauge;
#  12. bench smoke    — expbench -smoke regenerates BENCH_smoke.json
#                      (FedLAN transfer + LM under the binary wire format)
#                      and -compare gates the fresh encode+decode phase
#                      seconds against the committed snapshot at 2x, so a
#                      serialization regression fails CI before it lands.
#                      On success the committed snapshot is refreshed, so
#                      the baseline tracks the current machine;
#  13. pipeline gate  — expbench -exp pipeline regenerates
#                      BENCH_pipeline.json (a depth-8 burst of GETs at a
#                      35 ms RTT, window 1 vs window 8) and -check-pipeline
#                      requires the pipelined burst within 3.5 RTTs and at
#                      least 2x faster than lock-step, so pipelining can
#                      never silently regress to serialized exchanges.
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
unformatted="$(gofmt -l .)"
[ -z "$unformatted" ] || { echo "ci.sh: gofmt needed:" >&2; echo "$unformatted" >&2; exit 1; }
go vet ./...
go run ./cmd/exdralint -json ./... | go run ./cmd/lintfmt
go test -race ./...
go test -race -count=1 \
  -run 'Reset|Retry|Redial|Fault|Fail|Stall|Drop|Broken|Timeout|Restart|Health|Epoch|Recover|Replay|Closed|Unrecover|CreationLog|Chaos|Deadline|Breaker|Cancel|Queued|Truncation|Corrupt|Session|Admission|Drain|Reap|Namespace|MaxConns|Pool|Pipeline|Window|Tag|Lockstep|OutOfOrder|Duplicate|Reclaim' \
  ./internal/netem/ ./internal/fedrpc/ ./internal/federated/ ./internal/fedtest/ ./internal/worker/ ./internal/fedserve/
go test -race -count=1 \
  -run 'Metrics|Span|Histogram|Snapshot|Slow|Instrument|Stats|Breakdown' \
  ./internal/obs/ ./internal/fedrpc/ ./internal/fedtest/ ./internal/engine/ ./internal/bench/

# Wire-protocol fuzz smoke: 10 seconds per decode path. A finding lands in
# internal/fedrpc/testdata/fuzz/ and fails the run.
go test -run='^$' -fuzz='^FuzzWireEnvelope$' -fuzztime=10s ./internal/fedrpc/
go test -run='^$' -fuzz='^FuzzWireReply$' -fuzztime=10s ./internal/fedrpc/
echo "ci.sh: wire fuzz smoke passed"

# /metrics smoke test: boot a real worker with the endpoint enabled, scrape
# it, and check the process gauges are served.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/fedworker" ./cmd/fedworker
"$tmp/fedworker" -addr 127.0.0.1:0 -data "$tmp" -metrics-addr 127.0.0.1:0 >"$tmp/log" 2>&1 &
worker_pid=$!
trap 'kill "$worker_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
metrics_url=""
for _ in $(seq 1 50); do
  metrics_url="$(sed -n 's#^fedworker: metrics on \(http://.*/metrics\)$#\1#p' "$tmp/log")"
  [ -n "$metrics_url" ] && break
  sleep 0.1
done
[ -n "$metrics_url" ] || { echo "ci.sh: fedworker never announced its metrics endpoint" >&2; cat "$tmp/log" >&2; exit 1; }
scrape="$(curl -fsS "$metrics_url")" || { echo "ci.sh: scraping $metrics_url failed" >&2; exit 1; }
echo "$scrape" | grep -q 'process.uptime_seconds' || { echo "ci.sh: /metrics is missing process.uptime_seconds" >&2; exit 1; }
echo "$scrape" | grep -q 'process.goroutines' || { echo "ci.sh: /metrics is missing process.goroutines" >&2; exit 1; }
kill "$worker_pid"
echo "ci.sh: /metrics smoke test passed ($metrics_url)"

# exdrad smoke test: a standing coordinator daemon over two real workers,
# driven through its HTTP session API by two concurrent sessions. The
# daemon's /metrics must export the serve.* series, and a worker capped
# with -max-conns must export its worker.conns gauge.
go build -o "$tmp/exdrad" ./cmd/exdrad
wait_line() { # wait_line LOGFILE SED_PATTERN → prints the first capture
  local out=""
  for _ in $(seq 1 50); do
    out="$(sed -n "$2" "$1")"
    [ -n "$out" ] && break
    sleep 0.1
  done
  [ -n "$out" ] || { echo "ci.sh: timed out waiting for $2 in $1" >&2; cat "$1" >&2; exit 1; }
  echo "$out"
}
"$tmp/fedworker" -addr 127.0.0.1:0 -data "$tmp" -max-conns 16 -metrics-addr 127.0.0.1:0 >"$tmp/w1.log" 2>&1 &
w1_pid=$!
"$tmp/fedworker" -addr 127.0.0.1:0 -data "$tmp" -max-conns 16 >"$tmp/w2.log" 2>&1 &
w2_pid=$!
trap 'kill "$w1_pid" "$w2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
w1_addr="$(wait_line "$tmp/w1.log" 's#^fedworker: listening on \([0-9.:]*\) .*#\1#p')"
w2_addr="$(wait_line "$tmp/w2.log" 's#^fedworker: listening on \([0-9.:]*\) .*#\1#p')"
w1_metrics="$(wait_line "$tmp/w1.log" 's#^fedworker: metrics on \(http://.*/metrics\)$#\1#p')"
"$tmp/exdrad" -addr 127.0.0.1:0 -workers "$w1_addr,$w2_addr" -metrics-addr 127.0.0.1:0 >"$tmp/d.log" 2>&1 &
exdrad_pid=$!
trap 'kill "$exdrad_pid" "$w1_pid" "$w2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
api="$(wait_line "$tmp/d.log" 's#^exdrad: session API on \(http://.*\)$#\1#p')"
d_metrics="$(wait_line "$tmp/d.log" 's#^exdrad: metrics on \(http://.*/metrics\)$#\1#p')"
s1="$(curl -fsS -X POST "$api/v1/sessions" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
s2="$(curl -fsS -X POST "$api/v1/sessions" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$s1" ] && [ -n "$s2" ] && [ "$s1" != "$s2" ] || { echo "ci.sh: exdrad session open failed ($s1/$s2)" >&2; exit 1; }
curl -fsS -X POST -d '{"seed":7}' "$api/v1/sessions/$s1/lm" >"$tmp/lm1.json" &
lm1_pid=$!
curl -fsS -X POST -d '{"seed":9}' "$api/v1/sessions/$s2/lm" >"$tmp/lm2.json" &
lm2_pid=$!
wait "$lm1_pid" "$lm2_pid" || { echo "ci.sh: concurrent LM runs failed" >&2; cat "$tmp/d.log" >&2; exit 1; }
grep -q '"weights"' "$tmp/lm1.json" && grep -q '"weights"' "$tmp/lm2.json" \
  || { echo "ci.sh: LM responses carry no weights" >&2; exit 1; }
curl -fsS -X DELETE "$api/v1/sessions/$s1" >/dev/null
curl -fsS -X DELETE "$api/v1/sessions/$s2" >/dev/null
serve_scrape="$(curl -fsS "$d_metrics")"
for series in serve.sessions.opened serve.sessions.closed serve.pool.checkouts; do
  echo "$serve_scrape" | grep -q "$series" || { echo "ci.sh: exdrad /metrics is missing $series" >&2; exit 1; }
done
w1_scrape="$(curl -fsS "$w1_metrics")"
echo "$w1_scrape" | grep -q 'worker.conns' \
  || { echo "ci.sh: worker /metrics is missing worker.conns" >&2; exit 1; }
kill -TERM "$exdrad_pid"
wait "$exdrad_pid" 2>/dev/null || true
grep -q '^exdrad: shut down$' "$tmp/d.log" || { echo "ci.sh: exdrad did not drain cleanly" >&2; cat "$tmp/d.log" >&2; exit 1; }
kill "$w1_pid" "$w2_pid"
echo "ci.sh: exdrad smoke test passed (two concurrent sessions over $w1_addr,$w2_addr)"

# Bench smoke: regenerate the serialization snapshot and gate enc+dec
# seconds against the committed baseline (see BENCH_smoke.json).
go run ./cmd/expbench -smoke -json "$tmp/BENCH_smoke.json"
go run ./cmd/expbench -compare "BENCH_smoke.json,$tmp/BENCH_smoke.json" -max-ratio 2
cp "$tmp/BENCH_smoke.json" BENCH_smoke.json
echo "ci.sh: bench smoke gate passed (BENCH_smoke.json refreshed)"

# Pipeline gate: regenerate the pipelined-vs-lock-step burst rows at the
# fixed 35 ms RTT and hold the acceptance bar — a depth-8 pipelined burst
# within 3.5 RTTs and at least 2x faster than lock-step (see
# BENCH_pipeline.json). On success the committed snapshot is refreshed.
go run ./cmd/expbench -exp pipeline -json "$tmp/BENCH_pipeline.json"
go run ./cmd/expbench -check-pipeline "$tmp/BENCH_pipeline.json" -max-rtts 3.5 -min-speedup 2
cp "$tmp/BENCH_pipeline.json" BENCH_pipeline.json
echo "ci.sh: pipeline gate passed (BENCH_pipeline.json refreshed)"
