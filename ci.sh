#!/usr/bin/env bash
# ci.sh — the tier-2 gate. Everything here must pass before a change lands:
#
#   1. go build      — the tree compiles;
#   2. go vet        — stock static analysis;
#   3. exdralint     — project-specific federation-runtime invariants
#                      (see DESIGN.md, "Static analysis");
#   4. go test -race — full test suite under the race detector.
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
go vet ./...
go run ./cmd/exdralint ./...
go test -race ./...
