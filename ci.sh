#!/usr/bin/env bash
# ci.sh — the tier-2 gate. Everything here must pass before a change lands:
#
#   1. go build      — the tree compiles;
#   2. go vet        — stock static analysis;
#   3. exdralint     — project-specific federation-runtime invariants
#                      (see DESIGN.md, "Static analysis");
#   4. go test -race — full test suite under the race detector;
#   5. fault tests   — the fault-injection/recovery suites re-run under
#                      -race with -count=1: connection teardown, redial,
#                      retry, and worker-restart/replay interleavings are
#                      exactly where data races hide, so these never run
#                      from cache (the pattern also covers the restart and
#                      health-probing suites: Restart|Health|Epoch|...).
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
go vet ./...
go run ./cmd/exdralint ./...
go test -race ./...
go test -race -count=1 \
  -run 'Reset|Retry|Redial|Fault|Fail|Stall|Drop|Broken|Timeout|Restart|Health|Epoch|Recover|Replay|Closed|Unrecover|CreationLog' \
  ./internal/netem/ ./internal/fedrpc/ ./internal/federated/ ./internal/fedtest/ ./internal/worker/
