#!/usr/bin/env bash
# ci.sh — the tier-2 gate. Everything here must pass before a change lands:
#
#   1. go build      — the tree compiles;
#   2. go vet        — stock static analysis;
#   3. exdralint     — project-specific federation-runtime invariants
#                      (see DESIGN.md, "Static analysis");
#   4. go test -race — full test suite under the race detector;
#   5. fault tests   — the fault-injection/recovery suites re-run under
#                      -race with -count=1: connection teardown, redial,
#                      and retry interleavings are exactly where data races
#                      hide, so these never run from cache.
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
go vet ./...
go run ./cmd/exdralint ./...
go test -race ./...
go test -race -count=1 -run 'Reset|Retry|Redial|Fault|Fail|Stall|Drop|Broken|Timeout' \
  ./internal/netem/ ./internal/fedrpc/ ./internal/federated/ ./internal/fedtest/
