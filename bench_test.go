// Package exdra_test hosts the repository-level benchmarks: one testing.B
// target per table and figure of the ExDRa evaluation (§6), as indexed in
// DESIGN.md, plus ablation benchmarks for the design choices the federated
// runtime makes (request batching, lineage reuse, broadcast slicing).
//
// Run everything with:
//
//	go test -bench=. -benchmem .
//
// Sizes follow internal/bench.DefaultScale and can be raised via the
// EXDRA_ROWS / EXDRA_COLS / EXDRA_CNN_ROWS / EXDRA_PIPE_ROWS environment
// variables toward the paper's 1M x 1,050 setting. Absolute numbers differ
// from the paper's 8-node cluster; the shapes (who wins, scaling with
// workers, WAN/SSL overhead factors) are the reproduction target — see
// EXPERIMENTS.md.
package exdra_test

import (
	"math/rand"
	"testing"

	"exdra/internal/bench"
	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/fedtest"
	"exdra/internal/lineage"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
	"exdra/internal/worker"
)

// benchScale trims the default scale so the full suite stays minutes, not
// hours; environment overrides still apply.
func benchScale() bench.Scale {
	sc := bench.DefaultScale()
	if sc.Rows == 4000 { // untouched default: trim for the sweep
		sc.Rows = 2000
	}
	return sc
}

func runAlgo(b *testing.B, name string, env bench.Env) {
	b.Helper()
	w := bench.NewWorkloads(benchScale())
	cl, err := env.Cluster()
	if err != nil {
		b.Fatal(err)
	}
	if cl != nil {
		defer cl.Close()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunAlgorithm(name, env, cl); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 5: basic algorithm comparison and scalability ----

func BenchmarkFig5(b *testing.B) {
	for _, name := range bench.AlgorithmNames {
		b.Run(name+"/local", func(b *testing.B) { runAlgo(b, name, bench.Env{Mode: bench.Local}) })
		for _, nw := range []int{1, 2, 3} {
			nw := nw
			b.Run(name+"/fed-lan/"+string(rune('0'+nw))+"w", func(b *testing.B) {
				runAlgo(b, name, bench.Env{Mode: bench.FedLAN, Workers: nw})
			})
		}
	}
}

// BenchmarkFig5_LowerBound measures the Fed LowerBound series for LM: local
// time minus the federated-offloadable kernels.
func BenchmarkFig5_LowerBound(b *testing.B) {
	w := bench.NewWorkloads(benchScale())
	for i := 0; i < b.N; i++ {
		if _, err := w.LMLowerBound(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 6: communication settings (LAN / WAN / WAN+SSL) ----

func BenchmarkFig6(b *testing.B) {
	for _, name := range []string{"lm", "kmeans", "ffn"} {
		for _, mode := range []bench.Mode{bench.FedLAN, bench.FedWAN, bench.FedWANSSL} {
			name, mode := name, mode
			b.Run(name+"/"+string(mode), func(b *testing.B) {
				runAlgo(b, name, bench.Env{Mode: mode, Workers: 2})
			})
		}
	}
}

// ---- Figure 7: comparison with other ML systems ----

func BenchmarkFig7(b *testing.B) {
	w := bench.NewWorkloads(benchScale())
	for _, name := range []string{"kmeans", "pca", "ffn", "cnn"} {
		name := name
		b.Run(name+"/exdra-local", func(b *testing.B) {
			runAlgo(b, name, bench.Env{Mode: bench.Local})
		})
		b.Run(name+"/exdra-fed-lan", func(b *testing.B) {
			runAlgo(b, name, bench.Env{Mode: bench.FedLAN, Workers: 2})
		})
		b.Run(name+"/baseline", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.RunBaseline(name)
			}
		})
	}
}

// ---- Figure 8: ML pipeline scalability ----

func BenchmarkFig8(b *testing.B) {
	w := bench.NewWorkloads(benchScale())
	for _, algo := range []string{"lm", "ffn"} {
		algo := algo
		b.Run("P2_"+algo+"/local", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.RunPipeline(algo, bench.Env{Mode: bench.Local}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, nw := range []int{1, 2, 3} {
			nw := nw
			b.Run("P2_"+algo+"/fed-lan/"+string(rune('0'+nw))+"w", func(b *testing.B) {
				env := bench.Env{Mode: bench.FedLAN, Workers: nw}
				cl, err := env.Cluster()
				if err != nil {
					b.Fatal(err)
				}
				defer cl.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.RunPipeline(algo, env, cl); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- Table 1: federated instruction dispatch cost ----

// BenchmarkTable1_InstructionDispatch measures the per-instruction overhead
// of the six-request-type protocol on a representative instruction mix
// (the functional coverage itself is TestTable1Coverage).
func BenchmarkTable1_InstructionDispatch(b *testing.B) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	x := matrix.Fill(256, 16, 1.5)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.Sum(); err != nil {
			b.Fatal(err)
		}
		u, err := fx.Unary(matrix.USqrt)
		if err != nil {
			b.Fatal(err)
		}
		if err := u.Free(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations ----

// BenchmarkAblation_RPCBatching compares one batched RPC carrying a request
// sequence against issuing the same requests as separate RPCs — the
// protocol design choice of §4.1 ("a single RPC can contain a sequence of
// requests").
func BenchmarkAblation_RPCBatching(b *testing.B) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.Coord.Client(cl.Addrs[0])
	if err != nil {
		b.Fatal(err)
	}
	v := matrix.Fill(64, 8, 2)
	reqs := func(id int64) []fedrpc.Request {
		return []fedrpc.Request{
			{Type: fedrpc.Put, ID: id, Data: fedrpc.MatrixPayload(v)},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "sqrt", Inputs: []int64{id}, Output: id + 1}},
			{Type: fedrpc.Get, ID: id + 1},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{id, id + 1}}},
		}
	}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(reqs(int64(10 + 2*i))...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unbatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range reqs(int64(1e6 + 2*i)) {
				if _, err := c.Call(r); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblation_LineageReuse compares repeated raw-file READs with and
// without the worker's lineage cache (§4.4 reuse of intermediates).
func BenchmarkAblation_LineageReuse(b *testing.B) {
	dir := b.TempDir()
	m := matrix.Fill(500, 100, 1.25)
	if err := m.WriteBinaryFile(dir + "/raw.bin"); err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cacheSize int) {
		w := worker.New(dir)
		w.Lineage = lineage.NewCache(cacheSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp := w.Handle([]fedrpc.Request{{Type: fedrpc.Read, ID: int64(i + 1), Filename: "raw.bin"}})
			if !resp[0].OK {
				b.Fatal(resp[0].Err)
			}
		}
	}
	b.Run("with-reuse", func(b *testing.B) { run(b, 64) })
	b.Run("without-reuse", func(b *testing.B) { run(b, 0) })
}

// BenchmarkAblation_Compression compares dense and dictionary-compressed
// kernels on one-hot-dominated data — the §4.4 compression-of-intermediates
// design choice (compressed matvec reads one code + one add per cell).
func BenchmarkAblation_Compression(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := matrix.NewDense(20000, 64)
	for i := 0; i < x.Rows(); i++ {
		x.Set(i, rng.Intn(64), 1)
	}
	v := matrix.Randn(rng, 64, 1, 0, 1)
	c := matrix.Compress(x)
	b.Logf("compression ratio: %.1fx", c.CompressionRatio())
	b.Run("dense-matvec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x.MatMul(v)
		}
	})
	b.Run("compressed-matvec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.MatVec(v)
		}
	})
	b.Run("dense-colsums", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x.ColSums()
		}
	})
	b.Run("compressed-colsums", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ColSums()
		}
	})
}

// BenchmarkAblation_SlicedBroadcast compares the sliced broadcast of a
// row-aligned operand against broadcasting the full operand to every
// worker (Example 2's sliced broadcast optimization).
func BenchmarkAblation_SlicedBroadcast(b *testing.B) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	x := matrix.Fill(6000, 32, 1)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		b.Fatal(err)
	}
	colVec := matrix.Fill(6000, 1, 2) // sliced per partition
	rowVec := matrix.Fill(1, 32, 2)   // replicated to every partition
	b.Run("sliced-colvec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := fx.BinaryLocal(matrix.OpMul, colVec, false)
			if err != nil {
				b.Fatal(err)
			}
			out.Free()
		}
	})
	b.Run("replicated-rowvec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := fx.BinaryLocal(matrix.OpMul, rowVec, false)
			if err != nil {
				b.Fatal(err)
			}
			out.Free()
		}
	})
}
