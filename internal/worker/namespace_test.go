package worker

import (
	"testing"

	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
)

// TestClearScopedToNamespace proves the worker-side half of session
// isolation: a CLEAR carrying a namespace in its ID field removes only
// that namespace's bindings, and a bare CLEAR keeps the legacy
// wipe-everything semantics.
func TestClearScopedToNamespace(t *testing.T) {
	w := New("")
	m := matrix.FromRows([][]float64{{1}})
	ids := []int64{
		fedrpc.MakeID(1, 1), fedrpc.MakeID(1, 2),
		fedrpc.MakeID(2, 1), fedrpc.MakeID(2, 2),
		5, // legacy unscoped (namespace 0)
	}
	for _, id := range ids {
		resp := w.Handle([]fedrpc.Request{{Type: fedrpc.Put, ID: id, Data: fedrpc.MatrixPayload(m)}})
		if !resp[0].OK {
			t.Fatalf("PUT %d: %s", id, resp[0].Err)
		}
	}

	resp := w.Handle([]fedrpc.Request{{Type: fedrpc.Clear, ID: 1}})
	if !resp[0].OK {
		t.Fatalf("scoped CLEAR: %s", resp[0].Err)
	}
	if n := w.NumObjects(); n != 3 {
		t.Fatalf("after clearing namespace 1: %d objects, want 3", n)
	}
	for _, id := range []int64{fedrpc.MakeID(1, 1), fedrpc.MakeID(1, 2)} {
		if _, err := w.Get(id); err == nil {
			t.Fatalf("namespace-1 object %d survived its CLEAR", id)
		}
	}
	for _, id := range []int64{fedrpc.MakeID(2, 1), fedrpc.MakeID(2, 2), 5} {
		if _, err := w.Get(id); err != nil {
			t.Fatalf("foreign object %d destroyed by namespace-1 CLEAR: %v", id, err)
		}
	}

	resp = w.Handle([]fedrpc.Request{{Type: fedrpc.Clear}})
	if !resp[0].OK {
		t.Fatalf("legacy CLEAR: %s", resp[0].Err)
	}
	if n := w.NumObjects(); n != 0 {
		t.Fatalf("after legacy CLEAR: %d objects, want 0", n)
	}
}
