package worker

import (
	"context"
	"fmt"
	"time"

	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
	"exdra/internal/obs"
	"exdra/internal/privacy"
)

// binaryOps maps DML opcodes to element-wise binary operations.
var binaryOps = map[string]matrix.BinaryOp{
	"+": matrix.OpAdd, "-": matrix.OpSub, "*": matrix.OpMul, "/": matrix.OpDiv,
	"^": matrix.OpPow, "min": matrix.OpMin, "max": matrix.OpMax,
	"%%": matrix.OpMod, "%/%": matrix.OpIntDiv,
	"==": matrix.OpEq, "!=": matrix.OpNe, ">": matrix.OpGt, ">=": matrix.OpGe,
	"<": matrix.OpLt, "<=": matrix.OpLe,
	"&": matrix.OpAnd, "|": matrix.OpOr, "xor": matrix.OpXor, "log_b": matrix.OpLog,
}

// unaryOps maps DML opcodes to element-wise unary operations.
var unaryOps = map[string]matrix.UnaryOp{
	"abs": matrix.UAbs, "cos": matrix.UCos, "exp": matrix.UExp,
	"floor": matrix.UFloor, "ceil": matrix.UCeil, "isNA": matrix.UIsNA,
	"log": matrix.ULog, "!": matrix.UNot, "round": matrix.URound,
	"sin": matrix.USin, "sign": matrix.USign, "sqrt": matrix.USqrt,
	"tan": matrix.UTan, "sigmoid": matrix.USigmoid, "uminus": matrix.UNeg,
	"relu": matrix.URelu,
}

// aggOps maps aggregate suffixes to aggregation operations.
var aggOps = map[string]matrix.AggOp{
	"sum": matrix.AggSum, "min": matrix.AggMin, "max": matrix.AggMax,
	"mean": matrix.AggMean, "var": matrix.AggVar, "sd": matrix.AggSD,
}

// handleInst interprets one EXEC_INST request. Inputs and the output are
// symbol-table IDs; the output privacy level is the propagation of the most
// restrictive input level through the operation kind. The kernels
// themselves run to completion once started — cancellation is checked here,
// at the instruction boundary, so a multi-request EXEC batch whose call
// budget expires stops before launching the next long kernel (the server's
// reply path separately ensures the coordinator is answered on time even
// when a kernel is mid-flight).
func (w *Worker) handleInst(ctx context.Context, req fedrpc.Request) fedrpc.Response {
	inst := req.Inst
	if inst == nil {
		return fedrpc.Errorf("EXEC_INST: missing instruction")
	}
	if err := ctx.Err(); err != nil {
		return abortResponse(err)
	}
	start := time.Now()
	defer func() {
		w.Metrics.Histogram("worker.inst_seconds."+inst.Opcode, obs.LatencyBuckets).
			Observe(time.Since(start).Seconds())
	}()
	// rightIndex propagates fine-grained column constraints: slicing out
	// the public columns of a mixed-constraint object yields a
	// transferable result, while any restricted column keeps its level.
	if inst.Opcode == "rightIndex" && len(inst.Inputs) == 1 {
		if in, err := w.Get(inst.Inputs[0]); err == nil && len(in.ColLevels) > 0 && len(inst.Scalars) >= 4 {
			out, _, err := w.execInst(inst)
			if err != nil {
				return fedrpc.Errorf("EXEC_INST %s: %v", inst.Opcode, err)
			}
			cb, ce := int(inst.Scalars[2]), int(inst.Scalars[3])
			cols := make([]privacy.Level, 0, ce-cb)
			for j := cb; j < ce; j++ {
				if j < len(in.ColLevels) {
					cols = append(cols, in.ColLevels[j])
				} else {
					cols = append(cols, in.Level)
				}
			}
			w.Put(inst.Output, &Entry{Mat: out, Level: in.Level, ColLevels: cols})
			return fedrpc.Response{OK: true}
		}
	}
	// leftIndex mutates its target instead of producing a fresh output, so
	// it bypasses the allocate-and-Put path below.
	if inst.Opcode == "leftIndex" {
		if err := w.execLeftIndex(inst); err != nil {
			return fedrpc.Errorf("EXEC_INST leftIndex: %v", err)
		}
		return fedrpc.Response{OK: true}
	}
	out, level, err := w.execInst(inst)
	if err != nil {
		return fedrpc.Errorf("EXEC_INST %s: %v", inst.Opcode, err)
	}
	if out != nil {
		w.Put(inst.Output, &Entry{Mat: out, Level: level})
	}
	return fedrpc.Response{OK: true}
}

// execLeftIndex implements left indexing, X[rb+1:rb+n, cb+1:cb+m] = Y
// (DML matrix assignment, ExDRa Table 1): inputs are the target and source
// IDs, scalars the zero-based row and column offsets. It is the one
// instruction that mutates an existing binding in place — every other op
// allocates a fresh output — so the write runs under the worker's write
// lock, which excludes the under-lock payload snapshot a concurrent GET
// takes of the same binding (handleGet).
//
// Privacy: an entry's level is set once at creation and read lock-free
// everywhere, so the target's level cannot be raised to absorb a more
// restrictive source; such a write is rejected instead — anything else
// would launder the source's constraint through the laxer target.
func (w *Worker) execLeftIndex(inst *fedrpc.Instruction) error {
	if len(inst.Inputs) < 2 {
		return fmt.Errorf("needs target and source IDs")
	}
	if len(inst.Scalars) < 2 {
		return fmt.Errorf("needs row and column offsets")
	}
	rb, cb := int(inst.Scalars[0]), int(inst.Scalars[1])
	tgt, err := w.Get(inst.Inputs[0])
	if err != nil {
		return err
	}
	srcEnt, err := w.Get(inst.Inputs[1])
	if err != nil {
		return err
	}
	src, err := w.Matrix(inst.Inputs[1])
	if err != nil {
		return err
	}
	if sl, tl := srcEnt.effectiveLevel(), tgt.effectiveLevel(); privacy.Max(sl, tl) != tl {
		return fmt.Errorf("source level %v exceeds target level %v", sl, tl)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// Decompress in place under the write lock: mutating a dense buffer
	// that Compact already unlinked would silently lose the write.
	if tgt.Mat == nil && tgt.Comp != nil {
		tgt.Mat = tgt.Comp.Decompress()
		tgt.Comp = nil
	}
	m := tgt.Mat
	if m == nil {
		return fmt.Errorf("target %d is not a matrix (%s)", inst.Inputs[0], tgt.describe())
	}
	if rb < 0 || cb < 0 || rb+src.Rows() > m.Rows() || cb+src.Cols() > m.Cols() {
		return fmt.Errorf("assignment [%d+%d, %d+%d] out of range for %dx%d",
			rb, src.Rows(), cb, src.Cols(), m.Rows(), m.Cols())
	}
	m.SetSlice(rb, cb, src)
	return nil
}

// inputLevel returns the most restrictive privacy level among instruction
// inputs, folding fine-grained column constraints in conservatively (an
// operation over any restricted column taints its whole output).
func (w *Worker) inputLevel(ids []int64) privacy.Level {
	level := privacy.Public
	for _, id := range ids {
		if e, err := w.Get(id); err == nil {
			level = privacy.Max(level, e.effectiveLevel())
		}
	}
	return level
}

// execInst dispatches on the opcode and returns the result matrix (nil for
// instructions without a matrix output, e.g. rmvar) and its privacy level.
func (w *Worker) execInst(inst *fedrpc.Instruction) (*matrix.Dense, privacy.Level, error) {
	op := inst.Opcode
	inLevel := w.inputLevel(inst.Inputs)
	transparent := func(m *matrix.Dense, err error) (*matrix.Dense, privacy.Level, error) {
		return m, privacy.Propagate(privacy.Transparent, inLevel), err
	}
	aggregating := func(m *matrix.Dense, err error) (*matrix.Dense, privacy.Level, error) {
		return m, privacy.Propagate(privacy.Aggregating, inLevel), err
	}

	// rmvar cleans up intermediates (e.g. broadcast vectors after use).
	if op == "rmvar" {
		w.Remove(inst.Inputs...)
		return nil, privacy.Public, nil
	}

	// Element-wise binary, matrix-matrix or matrix-scalar.
	if bop, ok := binaryOps[op]; ok {
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		if len(inst.Inputs) >= 2 {
			b, err := w.Matrix(inst.Inputs[1])
			if err != nil {
				return nil, 0, err
			}
			return transparent(a.Binary(bop, b), nil)
		}
		if len(inst.Scalars) < 1 {
			return nil, 0, fmt.Errorf("scalar operand missing")
		}
		swap := inst.Attrs["swap"] == "1"
		return transparent(a.BinaryScalar(bop, inst.Scalars[0], swap), nil)
	}

	// Element-wise unary.
	if uop, ok := unaryOps[op]; ok {
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		return transparent(a.Unary(uop), nil)
	}

	// Row aggregates (output stays row-aligned and federated).
	if len(op) > 4 && op[:4] == "uar_" {
		aop, ok := aggOps[op[4:]]
		if !ok && op[4:] == "indexmax" {
			a, err := w.Matrix(inst.Inputs[0])
			if err != nil {
				return nil, 0, err
			}
			return transparent(a.RowIndexMax(), nil)
		}
		if !ok {
			return nil, 0, fmt.Errorf("unknown row aggregate %q", op)
		}
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		return transparent(a.RowAgg(aop), nil)
	}

	switch op {
	case "mm": // X %*% B with broadcast B
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		b, err := w.Matrix(inst.Inputs[1])
		if err != nil {
			return nil, 0, err
		}
		// Matrix-multiplication outputs are inner products over the shared
		// dimension — aggregates in the sense of §2.3 (like gradients).
		// Fine-grained leakage analysis (e.g. unit-vector probes) is
		// explicitly future work in the paper and out of scope here.
		return aggregating(a.MatMul(b), nil)

	case "tsmm": // t(X) %*% X partial
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		return aggregating(a.TSMM(), nil)

	case "mmchain": // t(X) %*% (w * (X %*% v)) partial
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		v, err := w.Matrix(inst.Inputs[1])
		if err != nil {
			return nil, 0, err
		}
		var wt *matrix.Dense
		if len(inst.Inputs) >= 3 {
			if wt, err = w.Matrix(inst.Inputs[2]); err != nil {
				return nil, 0, err
			}
		}
		return aggregating(a.MMChain(v, wt), nil)

	case "tmm": // t(A) %*% B partial (aligned federated matmul, e.g. t(P) %*% X)
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		b, err := w.Matrix(inst.Inputs[1])
		if err != nil {
			return nil, 0, err
		}
		return aggregating(a.Transpose().MatMul(b), nil)

	case "t":
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		return transparent(a.Transpose(), nil)

	case "ua_partial": // full-aggregate partial tuple [sum, sumsq, min, max, n]
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		sum, sumSq, mn, mx, n := a.PartialAgg()
		out := matrix.RowVector([]float64{sum, sumSq, mn, mx, float64(n)})
		return aggregating(out, nil)

	case "uac_partial": // column-aggregate partials, 5 x cols
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		out := matrix.RBind(
			a.ColAgg(matrix.AggSum),
			a.ColAgg(matrix.AggSumSq),
			a.ColAgg(matrix.AggMin),
			a.ColAgg(matrix.AggMax),
			matrix.Fill(1, a.Cols(), float64(a.Rows())),
		)
		return aggregating(out, nil)

	case "softmax":
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		return transparent(a.Softmax(), nil)

	case "ifelse":
		c, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		a, err := w.Matrix(inst.Inputs[1])
		if err != nil {
			return nil, 0, err
		}
		b, err := w.Matrix(inst.Inputs[2])
		if err != nil {
			return nil, 0, err
		}
		return transparent(c.IfElse(a, b), nil)

	case "+*", "-*":
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		b, err := w.Matrix(inst.Inputs[1])
		if err != nil {
			return nil, 0, err
		}
		if len(inst.Scalars) < 1 {
			return nil, 0, fmt.Errorf("missing scalar for %s", op)
		}
		if op == "+*" {
			return transparent(a.PlusMult(inst.Scalars[0], b), nil)
		}
		return transparent(a.MinusMult(inst.Scalars[0], b), nil)

	case "ctable":
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		b, err := w.Matrix(inst.Inputs[1])
		if err != nil {
			return nil, 0, err
		}
		rc, cc := 0, 0
		if len(inst.Scalars) >= 2 {
			rc, cc = int(inst.Scalars[0]), int(inst.Scalars[1])
		}
		return aggregating(matrix.CTable(a, b, rc, cc), nil)

	case "wsloss", "wcemm":
		x, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		u, err := w.Matrix(inst.Inputs[1])
		if err != nil {
			return nil, 0, err
		}
		v, err := w.Matrix(inst.Inputs[2])
		if err != nil {
			return nil, 0, err
		}
		var val float64
		if op == "wsloss" {
			var wt *matrix.Dense
			if len(inst.Inputs) >= 4 {
				if wt, err = w.Matrix(inst.Inputs[3]); err != nil {
					return nil, 0, err
				}
			}
			val = matrix.WSLoss(x, u, v, wt)
		} else {
			val = matrix.WCEMM(x, u, v)
		}
		return aggregating(matrix.Fill(1, 1, val), nil)

	case "wsigmoid":
		x, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		u, err := w.Matrix(inst.Inputs[1])
		if err != nil {
			return nil, 0, err
		}
		v, err := w.Matrix(inst.Inputs[2])
		if err != nil {
			return nil, 0, err
		}
		return transparent(matrix.WSigmoid(x, u, v), nil)

	case "wdivmm":
		x, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		u, err := w.Matrix(inst.Inputs[1])
		if err != nil {
			return nil, 0, err
		}
		v, err := w.Matrix(inst.Inputs[2])
		if err != nil {
			return nil, 0, err
		}
		return aggregating(matrix.WDivMM(x, u, v), nil)

	case "rbind", "cbind":
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		b, err := w.Matrix(inst.Inputs[1])
		if err != nil {
			return nil, 0, err
		}
		if op == "rbind" {
			return transparent(matrix.RBind(a, b), nil)
		}
		return transparent(matrix.CBind(a, b), nil)

	case "rightIndex": // X[rb:re, cb:ce] with partition-relative scalars
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		if len(inst.Scalars) < 4 {
			return nil, 0, fmt.Errorf("rightIndex needs 4 bounds")
		}
		rb, re := int(inst.Scalars[0]), int(inst.Scalars[1])
		cb, ce := int(inst.Scalars[2]), int(inst.Scalars[3])
		return transparent(a.Slice(rb, re, cb, ce), nil)

	case "removeEmpty":
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		if inst.Attrs["margin"] == "cols" {
			m, _ := a.RemoveEmptyCols()
			return transparent(m, nil)
		}
		m, _ := a.RemoveEmptyRows()
		return transparent(m, nil)

	case "replace":
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		if len(inst.Scalars) < 2 {
			return nil, 0, fmt.Errorf("replace needs pattern and replacement")
		}
		return transparent(a.Replace(inst.Scalars[0], inst.Scalars[1]), nil)

	case "reshape":
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		if len(inst.Scalars) < 2 {
			return nil, 0, fmt.Errorf("reshape needs rows and cols")
		}
		return transparent(a.Reshape(int(inst.Scalars[0]), int(inst.Scalars[1])), nil)

	case "fill":
		if len(inst.Scalars) < 3 {
			return nil, 0, fmt.Errorf("fill needs rows, cols, value")
		}
		return matrix.Fill(int(inst.Scalars[0]), int(inst.Scalars[1]), inst.Scalars[2]),
			privacy.Public, nil

	case "diag":
		a, err := w.Matrix(inst.Inputs[0])
		if err != nil {
			return nil, 0, err
		}
		return transparent(a.Diag(), nil)

	default:
		return nil, 0, fmt.Errorf("unsupported opcode %q", op)
	}
}
