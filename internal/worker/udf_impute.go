package worker

import (
	"fmt"

	"exdra/internal/fedrpc"
	"exdra/internal/transform"
)

// Imputation UDFs: the worker-side passes of federated missing-value
// imputation (§4.4, Example 4). Pass one exchanges only aggregate counts;
// pass two applies the coordinator-derived rule locally.

func init() {
	MustRegisterUDF("impute_counts", udfImputeCounts)
	MustRegisterUDF("impute_pairs", udfImputePairs)
	MustRegisterUDF("impute_apply_mode", udfImputeApplyMode)
	MustRegisterUDF("impute_apply_fd", udfImputeApplyFD)
}

// ImputeCountsArgs name the categorical column to count.
type ImputeCountsArgs struct {
	Col string
}

func udfImputeCounts(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args ImputeCountsArgs
	if err := DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	f, err := w.Frame(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	counts, err := transform.CategoryCounts(f, args.Col)
	if err != nil {
		return fedrpc.Payload{}, err
	}
	enc, err := EncodeArgs(counts)
	if err != nil {
		return fedrpc.Payload{}, err
	}
	return fedrpc.BytesPayload(enc), nil
}

// ImputePairsArgs name the dependency columns From -> To.
type ImputePairsArgs struct {
	From, To string
}

func udfImputePairs(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args ImputePairsArgs
	if err := DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	f, err := w.Frame(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	pairs, err := transform.PairCounts(f, args.From, args.To)
	if err != nil {
		return fedrpc.Payload{}, err
	}
	enc, err := EncodeArgs(pairs)
	if err != nil {
		return fedrpc.Payload{}, err
	}
	return fedrpc.BytesPayload(enc), nil
}

// ImputeApplyModeArgs carry the broadcast global mode.
type ImputeApplyModeArgs struct {
	Col   string
	Value string
}

func udfImputeApplyMode(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args ImputeApplyModeArgs
	if err := DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	e, err := w.Get(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	if e.Fr == nil {
		return fedrpc.Payload{}, errNotFrame(call.Inputs[0])
	}
	out, err := transform.ImputeMode(e.Fr, args.Col, args.Value)
	if err != nil {
		return fedrpc.Payload{}, err
	}
	w.Put(call.Output, &Entry{Fr: out, Level: e.Level})
	return fedrpc.ScalarPayload(float64(out.NumRows())), nil
}

// ImputeApplyFDArgs carry the broadcast functional-dependency mapping.
type ImputeApplyFDArgs struct {
	From, To string
	Mapping  map[string]string
}

func udfImputeApplyFD(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args ImputeApplyFDArgs
	if err := DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	e, err := w.Get(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	if e.Fr == nil {
		return fedrpc.Payload{}, errNotFrame(call.Inputs[0])
	}
	out, err := transform.ImputeFD(e.Fr, args.From, args.To, args.Mapping)
	if err != nil {
		return fedrpc.Payload{}, err
	}
	w.Put(call.Output, &Entry{Fr: out, Level: e.Level})
	return fedrpc.ScalarPayload(float64(out.NumRows())), nil
}

func errNotFrame(id int64) error {
	return fmt.Errorf("worker: object %d is not a frame", id)
}
