package worker

import (
	"math/rand"
	"sync"
	"testing"

	"exdra/internal/fedrpc"
	"exdra/internal/privacy"
)

// TestCompactConcurrentAccess ping-pongs Compact against concurrent GET and
// Matrix access on the same binding. Compact swaps Entry.Mat/Entry.Comp in
// place under the worker mutex; readers that skip the lock can catch the
// mid-swap instant where both fields look nil and silently misclassify a
// matrix as a scalar (GET) or read a stale pointer. Run with -race this
// test fails on any unlocked reader; without -race it still catches the
// misclassification when the interleaving hits.
func TestCompactConcurrentAccess(t *testing.T) {
	w := New("")
	rng := rand.New(rand.NewSource(7))
	m := onehot(rng, 200, 8)
	put(t, w, 1, m, privacy.Public)

	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			w.Compact(1.2)                         // dense -> compressed
			if _, err := w.Matrix(1); err != nil { // compressed -> dense
				t.Errorf("Matrix during compaction: %v", err)
				return
			}
		}
	}()

	for i := 0; i < rounds; i++ {
		resp := w.handleGet(fedrpc.Request{Type: fedrpc.Get, ID: 1})
		if !resp.OK {
			t.Fatalf("GET during compaction: %s", resp.Err)
		}
		if resp.Data.Kind != fedrpc.PayloadMatrix {
			t.Fatalf("GET during compaction returned payload kind %d, want matrix", resp.Data.Kind)
		}
		if got := resp.Data.Matrix(); got.Rows() != 200 || got.Cols() != 8 {
			t.Fatalf("GET during compaction returned %dx%d matrix", got.Rows(), got.Cols())
		}
	}
	wg.Wait()
}
