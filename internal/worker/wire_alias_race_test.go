package worker

import (
	"context"
	"sync"
	"testing"

	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
	"exdra/internal/obs"
	"exdra/internal/privacy"
)

// TestGetConcurrentLeftIndex pins the payload/live-buffer aliasing fix: a
// GET reply is serialized by the server's connection goroutine after the
// worker handler (and its lock) returned, so a payload that aliased the
// binding's backing array would race with a concurrent in-place leftIndex
// overwriting the same binding — a torn slab on the wire. With the fix
// (handleGet snapshots the dense buffer under the read lock) every reply
// is a consistent before-or-after image. Run with -race this test fails
// on the aliasing bug directly; without -race it still catches torn
// replies by value (a mix of source values inside one reply).
//
// The matrix is deliberately multi-megabyte: the reply slab then exceeds
// the socket buffers, so the serializing goroutine stays inside the write
// for milliseconds while the in-process mutator loops — plenty of overlap
// for the race detector to observe.
func TestGetConcurrentLeftIndex(t *testing.T) {
	w := New("")
	w.Metrics = obs.New()
	srv, err := fedrpc.Serve("127.0.0.1:0", w, fedrpc.Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := fedrpc.Dial(srv.Addr(), fedrpc.Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const rows, cols = 1024, 512 // 4 MB slab
	w.PutMatrix(1, matrix.Fill(rows, cols, 1), privacy.Public)
	w.PutMatrix(2, matrix.Fill(rows, cols, 2), privacy.Public)
	w.PutMatrix(3, matrix.Fill(rows, cols, 3), privacy.Public)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Ping-pong ID 1 between all-2 and all-3 full overwrites, driven
		// in-process so the mutation loop outpaces the RPC round trips.
		src := int64(2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp := w.handleInst(context.Background(), fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "leftIndex", Inputs: []int64{1, src}, Scalars: []float64{0, 0},
			}})
			if !resp.OK {
				t.Errorf("leftIndex: %s", resp.Err)
				return
			}
			src = 5 - src
		}
	}()

	for i := 0; i < 30; i++ {
		resp, err := c.CallOne(fedrpc.Request{Type: fedrpc.Get, ID: 1})
		if err != nil {
			t.Fatal(err)
		}
		m := resp.Data.Matrix()
		if m == nil {
			t.Fatalf("iter %d: GET returned non-matrix payload kind %d", i, resp.Data.Kind)
		}
		first := m.Data()[0]
		for _, v := range m.Data() {
			if v != first {
				t.Fatalf("iter %d: torn GET reply: saw both %v and %v in one snapshot", i, first, v)
			}
		}
	}
	close(stop)
	wg.Wait()
}
