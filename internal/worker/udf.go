package worker

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"exdra/internal/fedrpc"
)

// UDF is a user-defined function executed at a federated worker via
// EXEC_UDF. It may read and bind symbol-table objects through the worker
// and returns a payload for the coordinator.
//
// Because Go cannot serialize closures, UDFs are registered by name in this
// process-wide registry, which both the coordinator and the worker binaries
// link (see DESIGN.md substitutions). The wire protocol still carries
// "function + gob-encoded arguments" per call, as in the paper.
type UDF func(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error)

var (
	udfMu  sync.RWMutex
	udfReg = map[string]UDF{} // guarded by udfMu
)

// MustRegisterUDF registers fn under name. Registering a duplicate name
// panics — it indicates two subsystems claiming the same UDF identity,
// which is a programming error caught at init time (the http.Handle /
// sql.Register idiom).
func MustRegisterUDF(name string, fn UDF) {
	udfMu.Lock()
	defer udfMu.Unlock()
	if _, dup := udfReg[name]; dup {
		panic(fmt.Sprintf("worker: duplicate UDF %q", name))
	}
	udfReg[name] = fn
}

// RegisteredUDFs returns the sorted names of all registered UDFs.
func RegisteredUDFs() []string {
	udfMu.RLock()
	defer udfMu.RUnlock()
	names := make([]string, 0, len(udfReg))
	for n := range udfReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (w *Worker) handleUDF(req fedrpc.Request) fedrpc.Response {
	call := req.UDF
	if call == nil {
		return fedrpc.Errorf("EXEC_UDF: missing call")
	}
	udfMu.RLock()
	fn, ok := udfReg[call.Name]
	udfMu.RUnlock()
	if !ok {
		return fedrpc.Errorf("EXEC_UDF: unknown UDF %q", call.Name)
	}
	payload, err := fn(w, call)
	if err != nil {
		return fedrpc.Errorf("EXEC_UDF %s: %v", call.Name, err)
	}
	return fedrpc.Response{OK: true, Data: payload}
}

// EncodeArgs gob-encodes a UDF argument value for transport.
func EncodeArgs(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("worker: encode UDF args: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeArgs gob-decodes UDF arguments into out (a pointer).
func DecodeArgs(data []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return fmt.Errorf("worker: decode UDF args: %w", err)
	}
	return nil
}
