package worker

import (
	"testing"

	"exdra/internal/fedrpc"
)

// TestEpochIdentity: each worker process state carries a random, nonzero
// instance epoch, distinct across incarnations — the identity the
// coordinator's restart detection hangs on.
func TestEpochIdentity(t *testing.T) {
	a, b := New(""), New("")
	if a.Epoch() == 0 || b.Epoch() == 0 {
		t.Fatal("worker epoch must be nonzero")
	}
	if a.Epoch() == b.Epoch() {
		t.Fatal("two worker instances share an epoch; restarts would be invisible")
	}
}

// TestEveryResponseCarriesEpoch: the handshake is on every response of
// every request type, so any exchange suffices for restart detection.
func TestEveryResponseCarriesEpoch(t *testing.T) {
	w := New("")
	resps := w.Handle([]fedrpc.Request{
		{Type: fedrpc.Health},
		{Type: fedrpc.Get, ID: 42}, // fails (unknown object) — still stamped
	})
	if !resps[0].OK {
		t.Fatalf("HEALTH failed: %s", resps[0].Err)
	}
	if resps[1].OK {
		t.Fatal("GET of unknown object should fail")
	}
	for i, r := range resps {
		if r.Epoch != w.Epoch() {
			t.Fatalf("response %d epoch = %d, want %d", i, r.Epoch, w.Epoch())
		}
	}
}

// TestHealthTouchesNoState: HEALTH is a pure liveness ping.
func TestHealthTouchesNoState(t *testing.T) {
	w := New("")
	if resp := w.Handle([]fedrpc.Request{{Type: fedrpc.Health}}); !resp[0].OK {
		t.Fatalf("HEALTH failed: %s", resp[0].Err)
	}
	if n := w.NumObjects(); n != 0 {
		t.Fatalf("HEALTH created %d objects", n)
	}
}
