// Package worker implements the ExDRa federated worker (§4.1): a standing
// control program at a federated site that listens for federated requests,
// maintains a symbol table of live data objects, executes instructions and
// UDFs over permissioned raw data, checks privacy constraints on data
// exchange, and caches reusable intermediates across pipeline runs.
package worker

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"exdra/internal/fedrpc"
	"exdra/internal/frame"
	"exdra/internal/lineage"
	"exdra/internal/matrix"
	"exdra/internal/obs"
	"exdra/internal/privacy"
)

// Entry is one symbol-table binding. Exactly one of Mat, Fr, Scalar, or Obj
// is meaningful; Level is the data-exchange constraint of the object. Obj
// holds opaque execution-context state (e.g. a parameter-server worker
// session) that UDFs manage and that is never transferable via GET.
type Entry struct {
	// Mat and Comp are the two representations of a matrix binding and are
	// swapped in place by Compact and Matrix; unlike the other fields (set
	// once before the entry is published) they mutate after Put, so both are
	// guarded by Worker.mu.
	Mat    *matrix.Dense // guarded by Worker.mu
	Fr     *frame.Frame
	Scalar float64
	IsScal bool
	Obj    any
	Level  privacy.Level
	// ColLevels optionally carries fine-grained per-column constraints
	// (§4.1); columns beyond the slice default to Level. Column-subset
	// operations (rightIndex) propagate the relevant slice.
	ColLevels []privacy.Level
	// Comp holds the matrix in compressed form after Compact; Matrix
	// transparently decompresses on access. Guarded by Worker.mu.
	Comp *matrix.Compressed
}

// effectiveLevel returns the most restrictive constraint over the whole
// object (coarse level joined with every column constraint).
func (e *Entry) effectiveLevel() privacy.Level {
	level := e.Level
	for _, l := range e.ColLevels {
		level = privacy.Max(level, l)
	}
	return level
}

// describe renders a short human-readable form of the binding for error
// messages and privacy-violation reports. Callers hold mu (the owning
// Worker's) because Mat and Comp swap under it.
func (e *Entry) describe() string {
	switch {
	case e.Mat != nil:
		return fmt.Sprintf("matrix %dx%d", e.Mat.Rows(), e.Mat.Cols())
	case e.Comp != nil:
		return fmt.Sprintf("compressed matrix %dx%d", e.Comp.Rows(), e.Comp.Cols())
	case e.Fr != nil:
		return fmt.Sprintf("frame %dx%d", e.Fr.NumRows(), e.Fr.NumCols())
	default:
		return "scalar"
	}
}

// Worker is a standing federated worker. It is safe for concurrent use by
// multiple coordinator connections.
type Worker struct {
	baseDir string

	// epoch is this worker instance's identity: a random nonzero value
	// generated at construction and stamped on every response. Two Worker
	// values never share an epoch, so a coordinator seeing the epoch
	// change under one address knows the process (and with it the symbol
	// table) was replaced — the restart-detection handshake of the
	// failure model.
	epoch uint64

	mu     sync.RWMutex
	symtab map[int64]*Entry // guarded by mu (and Entry.Mat/Comp swaps)

	// Lineage caches reusable intermediates (e.g. parsed raw files and
	// recode maps) across pipeline runs, per ExDRa §4.4.
	Lineage *lineage.Cache

	// DefaultLevel is assigned to objects created without an explicit
	// constraint (READ/PUT with Privacy 0 means Public by convention; set
	// DefaultLevel to harden a deployment).
	DefaultLevel privacy.Level

	// Metrics receives per-request counters and handling-latency
	// histograms. New wires it to obs.Default(); replace before serving to
	// isolate a worker's metrics.
	Metrics *obs.Registry
}

// New creates a worker that resolves READ filenames relative to baseDir.
func New(baseDir string) *Worker {
	return &Worker{
		baseDir: baseDir,
		epoch:   newEpoch(),
		symtab:  map[int64]*Entry{},
		Lineage: lineage.NewCache(256),
		Metrics: obs.Default(),
	}
}

// newEpoch draws a random nonzero instance epoch. Randomness (rather than,
// say, a start timestamp alone) makes collisions between successive
// processes on the same port vanishingly unlikely even under clock
// adjustments or rapid crash loops.
func newEpoch() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degraded entropy: a start-time epoch still distinguishes any two
		// processes not born in the same nanosecond.
		return uint64(time.Now().UnixNano()) | 1
	}
	e := binary.LittleEndian.Uint64(b[:])
	if e == 0 {
		e = 1
	}
	return e
}

// Epoch returns the worker's instance epoch.
func (w *Worker) Epoch() uint64 { return w.epoch }

// Get returns the entry bound to id.
func (w *Worker) Get(id int64) (*Entry, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	e, ok := w.symtab[id]
	if !ok {
		return nil, fmt.Errorf("worker: no object with ID %d", id)
	}
	return e, nil
}

// Matrix returns the matrix bound to id, transparently decompressing
// compacted entries (the decompressed form replaces the compressed one, so
// hot objects pay the cost once).
func (w *Worker) Matrix(id int64) (*matrix.Dense, error) {
	e, err := w.Get(id)
	if err != nil {
		return nil, err
	}
	w.mu.RLock()
	m := e.Mat
	w.mu.RUnlock()
	if m != nil {
		return m, nil
	}
	// Slow path: decompress under the write lock and hand back the pointer
	// captured while still holding it — Compact may swap Mat out again the
	// instant the lock drops, but our snapshot stays valid (Compact never
	// mutates the dense buffer, it only unlinks it).
	w.mu.Lock()
	if e.Mat == nil && e.Comp != nil {
		e.Mat = e.Comp.Decompress()
		e.Comp = nil
	}
	m = e.Mat
	w.mu.Unlock()
	if m == nil {
		w.mu.RLock()
		desc := e.describe()
		w.mu.RUnlock()
		return nil, fmt.Errorf("worker: object %d is not a matrix (%s)", id, desc)
	}
	return m, nil
}

// Frame returns the frame bound to id.
func (w *Worker) Frame(id int64) (*frame.Frame, error) {
	e, err := w.Get(id)
	if err != nil {
		return nil, err
	}
	if e.Fr == nil {
		w.mu.RLock()
		desc := e.describe()
		w.mu.RUnlock()
		return nil, fmt.Errorf("worker: object %d is not a frame (%s)", id, desc)
	}
	return e.Fr, nil
}

// Put binds an entry to id, replacing any previous binding. Replace (not
// reject) semantics are load-bearing for fault tolerance: when a
// coordinator loses the connection after the worker executed a PUT but
// before the reply arrived, the retried PUT simply overwrites the binding
// with identical data instead of failing.
func (w *Worker) Put(id int64, e *Entry) {
	w.mu.Lock()
	w.symtab[id] = e
	w.mu.Unlock()
}

// PutMatrix binds a matrix under a privacy level.
func (w *Worker) PutMatrix(id int64, m *matrix.Dense, level privacy.Level) {
	w.Put(id, &Entry{Mat: m, Level: level})
}

// PutFrame binds a frame under a privacy level.
func (w *Worker) PutFrame(id int64, f *frame.Frame, level privacy.Level) {
	w.Put(id, &Entry{Fr: f, Level: level})
}

// Remove deletes bindings. IDs without a binding are ignored, so rmvar is
// idempotent: a retried cleanup, or a best-effort sweep after an aborted
// parallel operation, never fails on work already done.
func (w *Worker) Remove(ids ...int64) {
	w.mu.Lock()
	for _, id := range ids {
		delete(w.symtab, id)
	}
	w.mu.Unlock()
}

// NumObjects returns the number of live symbol-table bindings.
func (w *Worker) NumObjects() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.symtab)
}

// Handle implements fedrpc.Handler: it executes a batch of federated
// requests and returns one response per request. Execution stops semantics:
// requests in a batch execute in order; a failing request yields an error
// response but later requests still run (matching the paper's independent
// request semantics within an RPC).
//
// Handle is the worker half of the coordinator's retry contract
// (federated.RetryableBatch): READ, PUT, GET, EXEC_INST, and CLEAR are
// idempotent at this layer — re-executing them after a lost reply
// reproduces the same symbol-table state (READ is lineage-cached, PUT
// replaces, rmvar of a missing ID is a no-op, other instructions overwrite
// their output binding deterministically). EXEC_UDF makes no such promise;
// the coordinator never retries it.
func (w *Worker) Handle(reqs []fedrpc.Request) []fedrpc.Response {
	return w.HandleContext(context.Background(), reqs)
}

// HandleContext implements fedrpc.ContextHandler: the server hands the
// worker a context scoped to its own lifetime and — when the coordinator
// put a call budget on the wire — bounded by that deadline. A batch caught
// mid-flight by a shutdown fails its remaining requests instead of racing
// teardown; a batch whose budget expires abandons the remaining requests
// with typed DEADLINE_EXCEEDED responses, which the coordinator treats as
// non-retryable (the budget is spent — DESIGN.md §3.5). Each request is
// timed and counted in the worker's metrics registry.
func (w *Worker) HandleContext(ctx context.Context, reqs []fedrpc.Request) []fedrpc.Response {
	resps := make([]fedrpc.Response, len(reqs))
	for i, req := range reqs {
		if err := ctx.Err(); err != nil {
			resps[i] = abortResponse(err)
			resps[i].Epoch = w.epoch
			w.Metrics.Counter("worker.aborted_requests").Inc()
			continue
		}
		start := time.Now()
		resps[i] = w.handleOne(ctx, req)
		w.observe(req, resps[i], time.Since(start))
		// Every response — success or failure — carries the instance
		// epoch, so restart detection needs no extra round trip.
		resps[i].Epoch = w.epoch
	}
	return resps
}

// abortResponse classifies a context failure: a spent call budget gets the
// typed DEADLINE_EXCEEDED code (never retried by coordinators), anything
// else is a shutdown.
func abortResponse(err error) fedrpc.Response {
	if err == context.DeadlineExceeded {
		r := fedrpc.Errorf("deadline exceeded: %v", err)
		r.Code = fedrpc.CodeDeadlineExceeded
		return r
	}
	return fedrpc.Errorf("worker shutting down: %v", err)
}

// observe reports one handled request into the metrics registry.
func (w *Worker) observe(req fedrpc.Request, resp fedrpc.Response, elapsed time.Duration) {
	w.Metrics.Counter("worker.requests." + req.Type.String()).Inc()
	if !resp.OK {
		w.Metrics.Counter("worker.errors").Inc()
	}
	w.Metrics.Histogram("worker.handle_seconds."+req.Type.String(), obs.LatencyBuckets).
		Observe(elapsed.Seconds())
}

func (w *Worker) handleOne(ctx context.Context, req fedrpc.Request) fedrpc.Response {
	switch req.Type {
	case fedrpc.Read:
		return w.handleRead(req)
	case fedrpc.Put:
		return w.handlePut(req)
	case fedrpc.Get:
		return w.handleGet(req)
	case fedrpc.ExecInst:
		return w.handleInst(ctx, req)
	case fedrpc.ExecUDF:
		return w.handleUDF(req)
	case fedrpc.Clear:
		// CLEAR is namespace-aware through its otherwise-unused ID field
		// (fedrpc.MakeID): a session's teardown removes only its own
		// bindings, so one session sharing this worker can never destroy
		// another's state. ID 0 — every pre-session coordinator — keeps
		// the legacy clear-everything semantics.
		w.mu.Lock()
		if req.ID == 0 {
			w.symtab = map[int64]*Entry{}
		} else {
			for id := range w.symtab {
				if fedrpc.IDNamespace(id) == req.ID {
					delete(w.symtab, id)
				}
			}
		}
		w.mu.Unlock()
		return fedrpc.Response{OK: true}
	case fedrpc.Health:
		// A pure liveness ping: no symbol-table access, no payload. The
		// epoch stamped by Handle is the entire answer.
		return fedrpc.Response{OK: true}
	default:
		return fedrpc.Errorf("unknown request type %d", req.Type)
	}
}

// handleRead loads a raw data file from the worker's permissioned data
// directory. Formats: .bin (ExDRa binary matrix), .csv (frame with header),
// .mcsv (headerless numeric matrix CSV). Parsed files are lineage-cached so
// repeated exploratory runs skip re-parsing (query-processing-on-raw-data
// style reuse).
func (w *Worker) handleRead(req fedrpc.Request) fedrpc.Response {
	name := filepath.Clean(req.Filename)
	if strings.Contains(name, "..") || filepath.IsAbs(name) {
		return fedrpc.Errorf("READ: illegal path %q", req.Filename)
	}
	path := filepath.Join(w.baseDir, name)
	trace := lineage.LiteralTrace("file", path)
	v, err := w.Lineage.GetOrCompute(trace, func() (any, error) {
		switch {
		case strings.HasSuffix(name, ".bin"):
			return matrix.ReadBinaryFile(path)
		case strings.HasSuffix(name, ".mcsv"):
			f, err := readMatrixCSV(path)
			return f, err
		case strings.HasSuffix(name, ".csv"):
			return frame.ReadCSVFile(path)
		default:
			return nil, fmt.Errorf("READ: unsupported format %q", name)
		}
	})
	if err != nil {
		return fedrpc.Errorf("READ %s: %v", req.Filename, err)
	}
	e := &Entry{Level: privacy.Level(req.Privacy), ColLevels: colLevels(req.ColPrivacy)}
	switch obj := v.(type) {
	case *matrix.Dense:
		e.Mat = obj
	case *frame.Frame:
		e.Fr = obj
	}
	w.Put(req.ID, e)
	return fedrpc.Response{OK: true}
}

// colLevels converts wire integers into constraint levels (nil when the
// request carries no fine-grained constraints).
func colLevels(vals []int) []privacy.Level {
	if len(vals) == 0 {
		return nil
	}
	out := make([]privacy.Level, len(vals))
	for i, v := range vals {
		out[i] = privacy.Level(v)
	}
	return out
}

func readMatrixCSV(path string) (*matrix.Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return matrix.ReadCSV(f)
}

func (w *Worker) handlePut(req fedrpc.Request) fedrpc.Response {
	e := &Entry{Level: privacy.Level(req.Privacy), ColLevels: colLevels(req.ColPrivacy)}
	switch req.Data.Kind {
	case fedrpc.PayloadMatrix:
		e.Mat = req.Data.Matrix()
	case fedrpc.PayloadFrame:
		f, err := req.Data.ToFrame()
		if err != nil {
			return fedrpc.Errorf("PUT: %v", err)
		}
		e.Fr = f
	case fedrpc.PayloadScalar:
		e.Scalar, e.IsScal = req.Data.Scalar, true
	default:
		return fedrpc.Errorf("PUT: unsupported payload kind %d", req.Data.Kind)
	}
	w.Put(req.ID, e)
	return fedrpc.Response{OK: true}
}

func (w *Worker) handleGet(req fedrpc.Request) fedrpc.Response {
	e, err := w.Get(req.ID)
	if err != nil {
		return fedrpc.Errorf("GET: %v", err)
	}
	// Snapshot the Mat/Comp pair under the lock: Compact swaps them in
	// place, and an unlocked reader can catch the moment where both look
	// nil and misclassify a matrix as a scalar. The dense payload is
	// copied (not aliased) while the lock is still held: the reply is
	// serialized by fedrpc's serveConn long after this handler returns,
	// and an in-place instruction (leftIndex) mutating the same binding
	// in that window would otherwise put a torn slab on the wire. The
	// compressed snapshot stays a pointer — Compact never mutates the
	// compressed buffer, it only unlinks it — so the expensive Decompress
	// runs outside the lock.
	w.mu.RLock()
	comp := e.Comp
	var matPayload fedrpc.Payload
	hasMat := e.Mat != nil
	if hasMat {
		matPayload = fedrpc.MatrixPayloadCopy(e.Mat)
	}
	desc := e.describe()
	w.mu.RUnlock()
	if err := privacy.CheckTransfer(e.effectiveLevel(), desc); err != nil {
		return fedrpc.Errorf("GET %d: %v", req.ID, err)
	}
	switch {
	case hasMat:
		return fedrpc.Response{OK: true, Data: matPayload}
	case comp != nil:
		return fedrpc.Response{OK: true, Data: fedrpc.MatrixPayload(comp.Decompress())}
	case e.Fr != nil:
		return fedrpc.Response{OK: true, Data: fedrpc.FramePayload(e.Fr)}
	case e.Obj != nil:
		return fedrpc.Errorf("GET %d: execution-context objects are not transferable", req.ID)
	default:
		return fedrpc.Response{OK: true, Data: fedrpc.ScalarPayload(e.Scalar)}
	}
}
