package worker

import (
	"math/rand"
	"testing"

	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

func onehot(rng *rand.Rand, rows, cols int) *matrix.Dense {
	m := matrix.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		m.Set(i, rng.Intn(cols), 1)
	}
	return m
}

func TestCompactAndTransparentAccess(t *testing.T) {
	w := New("")
	rng := rand.New(rand.NewSource(1))
	oneHot := onehot(rng, 300, 10)
	dense := matrix.Randn(rng, 50, 10, 0, 1)
	put(t, w, 1, oneHot, privacy.PrivateAggregation)
	put(t, w, 2, dense, privacy.Public)

	n, saved := w.Compact(1.5)
	if n != 1 || saved <= 0 {
		t.Fatalf("compacted %d objects, saved %d", n, saved)
	}
	e, _ := w.Get(1)
	if e.Comp == nil || e.Mat != nil {
		t.Fatal("one-hot entry not swapped to compressed form")
	}
	if e.Level != privacy.PrivateAggregation {
		t.Fatal("compaction changed the privacy constraint")
	}
	e2, _ := w.Get(2)
	if e2.Comp != nil {
		t.Fatal("incompressible entry compacted")
	}

	// Instructions work transparently on compacted objects.
	r := exec(t, w, fedrpc.Instruction{Opcode: "uar_sum", Inputs: []int64{1}, Output: 3})
	if !r.OK {
		t.Fatal(r.Err)
	}
	got, err := w.Matrix(3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(oneHot.RowSums(), 0) {
		t.Fatal("result over compacted data wrong")
	}
	// Access decompressed and re-cached the dense form.
	if e.Mat == nil || e.Comp != nil {
		t.Fatal("transparent decompression did not re-cache")
	}
}

func TestCompactGetDecompresses(t *testing.T) {
	w := New("")
	rng := rand.New(rand.NewSource(2))
	m := onehot(rng, 100, 6)
	put(t, w, 1, m, privacy.Public)
	if n, _ := w.Compact(1.2); n != 1 {
		t.Fatal("not compacted")
	}
	resp := w.Handle([]fedrpc.Request{{Type: fedrpc.Get, ID: 1}})[0]
	if !resp.OK || !resp.Data.Matrix().EqualApprox(m, 0) {
		t.Fatal("GET of compacted object")
	}
}

func TestCompactUDF(t *testing.T) {
	w := New("")
	rng := rand.New(rand.NewSource(3))
	put(t, w, 1, onehot(rng, 200, 8), privacy.Public)
	args, err := EncodeArgs(CompactArgs{MinRatio: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	resp := w.Handle([]fedrpc.Request{{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
		Name: "compact", Args: args}}})[0]
	if !resp.OK || resp.Data.Scalar <= 0 {
		t.Fatalf("compact UDF: %+v", resp)
	}
}
