package worker

import (
	"strings"
	"testing"

	"exdra/internal/fedrpc"
	"exdra/internal/frame"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

func put(t *testing.T, w *Worker, id int64, m *matrix.Dense, lvl privacy.Level) {
	t.Helper()
	resp := w.Handle([]fedrpc.Request{{
		Type: fedrpc.Put, ID: id, Privacy: int(lvl), Data: fedrpc.MatrixPayload(m),
	}})
	if !resp[0].OK {
		t.Fatalf("put: %s", resp[0].Err)
	}
}

func exec(t *testing.T, w *Worker, inst fedrpc.Instruction) fedrpc.Response {
	t.Helper()
	return w.Handle([]fedrpc.Request{{Type: fedrpc.ExecInst, Inst: &inst}})[0]
}

func TestPutGetClear(t *testing.T) {
	w := New("")
	m := matrix.FromRows([][]float64{{1, 2}})
	put(t, w, 1, m, privacy.Public)
	resp := w.Handle([]fedrpc.Request{{Type: fedrpc.Get, ID: 1}})[0]
	if !resp.OK || !resp.Data.Matrix().EqualApprox(m, 0) {
		t.Fatal("get")
	}
	if w.NumObjects() != 1 {
		t.Fatal("object count")
	}
	w.Handle([]fedrpc.Request{{Type: fedrpc.Clear}})
	if w.NumObjects() != 0 {
		t.Fatal("clear")
	}
}

func TestGetPrivacyEnforcement(t *testing.T) {
	w := New("")
	m := matrix.Fill(2, 2, 1)
	put(t, w, 1, m, privacy.Private)
	put(t, w, 2, m, privacy.PrivateAggregation)
	for _, id := range []int64{1, 2} {
		resp := w.Handle([]fedrpc.Request{{Type: fedrpc.Get, ID: id}})[0]
		if resp.OK || !strings.Contains(resp.Err, "privacy") {
			t.Fatalf("GET %d allowed: %+v", id, resp)
		}
	}
	// Aggregates of PrivateAggregation data become Public.
	r := exec(t, w, fedrpc.Instruction{Opcode: "ua_partial", Inputs: []int64{2}, Output: 3})
	if !r.OK {
		t.Fatal(r.Err)
	}
	resp := w.Handle([]fedrpc.Request{{Type: fedrpc.Get, ID: 3}})[0]
	if !resp.OK {
		t.Fatalf("aggregate GET denied: %s", resp.Err)
	}
	// Aggregates of Private data stay Private.
	r = exec(t, w, fedrpc.Instruction{Opcode: "ua_partial", Inputs: []int64{1}, Output: 4})
	if !r.OK {
		t.Fatal(r.Err)
	}
	resp = w.Handle([]fedrpc.Request{{Type: fedrpc.Get, ID: 4}})[0]
	if resp.OK {
		t.Fatal("aggregate of Private data leaked")
	}
}

func TestPrivacyPropagationThroughTransparentOps(t *testing.T) {
	w := New("")
	put(t, w, 1, matrix.Fill(2, 2, 3), privacy.PrivateAggregation)
	r := exec(t, w, fedrpc.Instruction{Opcode: "sqrt", Inputs: []int64{1}, Output: 2})
	if !r.OK {
		t.Fatal(r.Err)
	}
	resp := w.Handle([]fedrpc.Request{{Type: fedrpc.Get, ID: 2}})[0]
	if resp.OK {
		t.Fatal("transparent op declassified data")
	}
}

func TestInstructionErrors(t *testing.T) {
	w := New("")
	put(t, w, 1, matrix.Fill(2, 2, 1), privacy.Public)
	if r := exec(t, w, fedrpc.Instruction{Opcode: "nosuch", Inputs: []int64{1}, Output: 2}); r.OK {
		t.Fatal("unknown opcode accepted")
	}
	if r := exec(t, w, fedrpc.Instruction{Opcode: "sqrt", Inputs: []int64{99}, Output: 2}); r.OK {
		t.Fatal("missing input accepted")
	}
	if r := exec(t, w, fedrpc.Instruction{Opcode: "replace", Inputs: []int64{1}, Output: 2}); r.OK {
		t.Fatal("missing scalars accepted")
	}
	if r := w.Handle([]fedrpc.Request{{Type: fedrpc.ExecInst}})[0]; r.OK {
		t.Fatal("nil instruction accepted")
	}
}

func TestRmvar(t *testing.T) {
	w := New("")
	put(t, w, 1, matrix.Fill(1, 1, 1), privacy.Public)
	if r := exec(t, w, fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{1}}); !r.OK {
		t.Fatal(r.Err)
	}
	if w.NumObjects() != 0 {
		t.Fatal("rmvar left objects")
	}
}

func TestReadPathSecurity(t *testing.T) {
	w := New(t.TempDir())
	for _, bad := range []string{"../etc/passwd", "/etc/passwd", "a/../../x.bin"} {
		r := w.Handle([]fedrpc.Request{{Type: fedrpc.Read, ID: 1, Filename: bad}})[0]
		if r.OK {
			t.Fatalf("path %q accepted", bad)
		}
	}
	r := w.Handle([]fedrpc.Request{{Type: fedrpc.Read, ID: 1, Filename: "missing.bin"}})[0]
	if r.OK {
		t.Fatal("missing file accepted")
	}
	r = w.Handle([]fedrpc.Request{{Type: fedrpc.Read, ID: 1, Filename: "weird.xyz"}})[0]
	if r.OK || !strings.Contains(r.Err, "unsupported format") {
		t.Fatal("unknown format accepted")
	}
}

func TestReadUsesLineageCache(t *testing.T) {
	dir := t.TempDir()
	m := matrix.Fill(4, 4, 2)
	if err := m.WriteBinaryFile(dir + "/x.bin"); err != nil {
		t.Fatal(err)
	}
	w := New(dir)
	for i := 0; i < 3; i++ {
		r := w.Handle([]fedrpc.Request{{Type: fedrpc.Read, ID: int64(i + 1), Filename: "x.bin"}})[0]
		if !r.OK {
			t.Fatal(r.Err)
		}
	}
	hits, misses := w.Lineage.Stats()
	if misses != 1 || hits != 2 {
		t.Fatalf("lineage reuse: hits=%d misses=%d", hits, misses)
	}
}

func TestFramePayloadAndUDFs(t *testing.T) {
	w := New("")
	fr := frame.MustNew(frame.StringColumn("A", []string{"x", "y"}))
	resp := w.Handle([]fedrpc.Request{{Type: fedrpc.Put, ID: 5, Data: fedrpc.FramePayload(fr)}})[0]
	if !resp.OK {
		t.Fatal(resp.Err)
	}
	r := w.Handle([]fedrpc.Request{{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
		Name: "obj_dims", Inputs: []int64{5}}}})[0]
	if !r.OK {
		t.Fatal(r.Err)
	}
	dims := r.Data.Matrix()
	if dims.At(0, 0) != 2 || dims.At(0, 1) != 1 {
		t.Fatalf("obj_dims: %v", dims)
	}
	// Unknown UDF.
	r = w.Handle([]fedrpc.Request{{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{Name: "nope"}}})[0]
	if r.OK {
		t.Fatal("unknown UDF accepted")
	}
}

func TestDuplicateUDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration accepted")
		}
	}()
	MustRegisterUDF("obj_dims", nil)
}

func TestBatchSemantics(t *testing.T) {
	// A failing request must not abort the rest of the batch.
	w := New("")
	m := matrix.Fill(1, 1, 1)
	resps := w.Handle([]fedrpc.Request{
		{Type: fedrpc.Put, ID: 1, Data: fedrpc.MatrixPayload(m)},
		{Type: fedrpc.Get, ID: 404},
		{Type: fedrpc.Get, ID: 1},
	})
	if !resps[0].OK || resps[1].OK || !resps[2].OK {
		t.Fatalf("batch: %+v", resps)
	}
}

// TestReplaySafety pins the worker half of the coordinator's retry
// contract: re-executing a retryable batch after a lost reply reproduces
// the same symbol-table state instead of erroring or duplicating.
func TestReplaySafety(t *testing.T) {
	dir := t.TempDir()
	m := matrix.Fill(4, 4, 2)
	if err := m.WriteBinaryFile(dir + "/x.bin"); err != nil {
		t.Fatal(err)
	}
	w := New(dir)
	batch := []fedrpc.Request{
		{Type: fedrpc.Read, ID: 1, Filename: "x.bin"},
		{Type: fedrpc.Put, ID: 2, Data: fedrpc.MatrixPayload(matrix.Fill(2, 2, 7))},
		{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "t", Inputs: []int64{2}, Output: 3}},
	}
	// Execute twice, as a retry after a lost reply would.
	for round := 0; round < 2; round++ {
		for i, r := range w.Handle(batch) {
			if !r.OK {
				t.Fatalf("round %d request %d: %s", round, i, r.Err)
			}
		}
	}
	if n := w.NumObjects(); n != 3 {
		t.Fatalf("replay duplicated state: %d objects, want 3", n)
	}
	// The re-READ was served from the lineage cache, not re-parsed.
	if hits, misses := w.Lineage.Stats(); misses != 1 || hits != 1 {
		t.Fatalf("re-READ not cached: hits=%d misses=%d", hits, misses)
	}
	got := w.Handle([]fedrpc.Request{{Type: fedrpc.Get, ID: 2}})[0]
	if !got.OK || !got.Data.Matrix().EqualApprox(matrix.Fill(2, 2, 7), 0) {
		t.Fatal("replayed PUT corrupted the binding")
	}
}

// TestRmvarMissingIDIsNoOp pins the cleanup contract: removing an ID that
// was never bound (or was already removed) succeeds silently, so
// best-effort sweeps after aborted parallel operations are always safe.
func TestRmvarMissingIDIsNoOp(t *testing.T) {
	w := New("")
	put(t, w, 1, matrix.Fill(1, 1, 1), privacy.Public)
	r := exec(t, w, fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{1, 404, 405}})
	if !r.OK {
		t.Fatalf("rmvar with missing IDs failed: %s", r.Err)
	}
	if w.NumObjects() != 0 {
		t.Fatal("bound ID not removed")
	}
	// And again: fully idempotent.
	if r := exec(t, w, fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{1}}); !r.OK {
		t.Fatalf("repeated rmvar failed: %s", r.Err)
	}
}
