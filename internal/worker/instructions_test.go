package worker

import (
	"math"
	"math/rand"
	"testing"

	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

// TestInstructionOpcodes exercises every interpreter opcode directly via
// EXEC_INST, complementing the end-to-end Table 1 coverage test in
// internal/federated.
func TestInstructionOpcodes(t *testing.T) {
	w := New("")
	rng := rand.New(rand.NewSource(9))
	x := matrix.Rand(rng, 8, 5, 0.5, 2)
	u := matrix.Rand(rng, 8, 3, 0.5, 1)
	v := matrix.Rand(rng, 5, 3, 0.5, 1)
	wt := matrix.Rand(rng, 8, 5, 0, 1)
	put(t, w, 1, x, privacy.Public)
	put(t, w, 2, u, privacy.Public)
	put(t, w, 3, v, privacy.Public)
	put(t, w, 4, wt, privacy.Public)

	get := func(id int64) *matrix.Dense {
		m, err := w.Matrix(id)
		if err != nil {
			t.Fatalf("get %d: %v", id, err)
		}
		return m
	}
	run := func(inst fedrpc.Instruction) {
		t.Helper()
		if r := exec(t, w, inst); !r.OK {
			t.Fatalf("%s: %s", inst.Opcode, r.Err)
		}
	}

	run(fedrpc.Instruction{Opcode: "wsloss", Inputs: []int64{1, 2, 3, 4}, Output: 10})
	if got := get(10).At(0, 0); math.Abs(got-matrix.WSLoss(x, u, v, wt)) > 1e-9 {
		t.Fatal("wsloss opcode")
	}
	run(fedrpc.Instruction{Opcode: "wcemm", Inputs: []int64{1, 2, 3}, Output: 11})
	if got := get(11).At(0, 0); math.Abs(got-matrix.WCEMM(x, u, v)) > 1e-9 {
		t.Fatal("wcemm opcode")
	}
	run(fedrpc.Instruction{Opcode: "wsigmoid", Inputs: []int64{1, 2, 3}, Output: 12})
	if !get(12).EqualApprox(matrix.WSigmoid(x, u, v), 1e-10) {
		t.Fatal("wsigmoid opcode")
	}
	run(fedrpc.Instruction{Opcode: "wdivmm", Inputs: []int64{1, 2, 3}, Output: 13})
	if !get(13).EqualApprox(matrix.WDivMM(x, u, v), 1e-9) {
		t.Fatal("wdivmm opcode")
	}
	run(fedrpc.Instruction{Opcode: "+*", Inputs: []int64{1, 4}, Output: 14, Scalars: []float64{2}})
	if !get(14).EqualApprox(x.PlusMult(2, wt), 1e-12) {
		t.Fatal("+* opcode")
	}
	run(fedrpc.Instruction{Opcode: "-*", Inputs: []int64{1, 4}, Output: 15, Scalars: []float64{2}})
	if !get(15).EqualApprox(x.MinusMult(2, wt), 1e-12) {
		t.Fatal("-* opcode")
	}
	a := matrix.ColVector([]float64{1, 2, 2})
	b := matrix.ColVector([]float64{1, 1, 2})
	put(t, w, 5, a, privacy.Public)
	put(t, w, 6, b, privacy.Public)
	run(fedrpc.Instruction{Opcode: "ctable", Inputs: []int64{5, 6}, Output: 16})
	if !get(16).EqualApprox(matrix.CTable(a, b, 0, 0), 0) {
		t.Fatal("ctable opcode")
	}
	run(fedrpc.Instruction{Opcode: "rbind", Inputs: []int64{5, 6}, Output: 17})
	if get(17).Rows() != 6 {
		t.Fatal("rbind opcode")
	}
	run(fedrpc.Instruction{Opcode: "cbind", Inputs: []int64{5, 6}, Output: 18})
	if get(18).Cols() != 2 {
		t.Fatal("cbind opcode")
	}
	run(fedrpc.Instruction{Opcode: "reshape", Inputs: []int64{5}, Output: 19, Scalars: []float64{1, 3}})
	if get(19).Rows() != 1 || get(19).Cols() != 3 {
		t.Fatal("reshape opcode")
	}
	run(fedrpc.Instruction{Opcode: "fill", Output: 20, Scalars: []float64{2, 2, 7}})
	if get(20).Sum() != 28 {
		t.Fatal("fill opcode")
	}
	run(fedrpc.Instruction{Opcode: "diag", Inputs: []int64{5}, Output: 21})
	if get(21).Trace() != 5 {
		t.Fatal("diag opcode")
	}
	run(fedrpc.Instruction{Opcode: "removeEmpty", Inputs: []int64{20}, Output: 22,
		Attrs: map[string]string{"margin": "cols"}})
	if get(22).Cols() != 2 {
		t.Fatal("removeEmpty cols opcode")
	}
	run(fedrpc.Instruction{Opcode: "uar_indexmax", Inputs: []int64{1}, Output: 23})
	if !get(23).EqualApprox(x.RowIndexMax(), 0) {
		t.Fatal("uar_indexmax opcode")
	}
	// Column-aggregate partial tuple layout: 5 x cols.
	run(fedrpc.Instruction{Opcode: "uac_partial", Inputs: []int64{1}, Output: 24})
	if p := get(24); p.Rows() != 5 || p.Cols() != x.Cols() {
		t.Fatal("uac_partial layout")
	}
	// Unknown row aggregate rejected.
	if r := exec(t, w, fedrpc.Instruction{Opcode: "uar_nope", Inputs: []int64{1}, Output: 25}); r.OK {
		t.Fatal("unknown row aggregate accepted")
	}
	// log_b binary.
	put(t, w, 7, matrix.Fill(1, 1, 8), privacy.Public)
	put(t, w, 8, matrix.Fill(1, 1, 2), privacy.Public)
	run(fedrpc.Instruction{Opcode: "log_b", Inputs: []int64{7, 8}, Output: 26})
	if math.Abs(get(26).At(0, 0)-3) > 1e-12 {
		t.Fatal("log_b opcode")
	}
}

// TestAllMappedOpcodes sweeps every binary, unary, and aggregate opcode the
// interpreter maps, comparing against the matrix kernels directly.
func TestAllMappedOpcodes(t *testing.T) {
	w := New("")
	rng := rand.New(rand.NewSource(10))
	x := matrix.Rand(rng, 6, 4, 0.5, 2)
	y := matrix.Rand(rng, 6, 4, 0.5, 2)
	put(t, w, 1, x, privacy.Public)
	put(t, w, 2, y, privacy.Public)
	next := int64(100)
	for name, op := range binaryOps {
		next++
		r := exec(t, w, fedrpc.Instruction{Opcode: name, Inputs: []int64{1, 2}, Output: next})
		if !r.OK {
			t.Fatalf("binary %s: %s", name, r.Err)
		}
		got, _ := w.Matrix(next)
		if !got.EqualApprox(x.Binary(op, y), 1e-12) {
			t.Fatalf("binary %s result", name)
		}
		// Scalar form with and without swap.
		next++
		r = exec(t, w, fedrpc.Instruction{Opcode: name, Inputs: []int64{1}, Output: next,
			Scalars: []float64{1.5}, Attrs: map[string]string{"swap": "1"}})
		if !r.OK {
			t.Fatalf("scalar %s: %s", name, r.Err)
		}
		got, _ = w.Matrix(next)
		if !got.EqualApprox(x.BinaryScalar(op, 1.5, true), 1e-12) {
			t.Fatalf("scalar %s result", name)
		}
		// Missing scalar operand is an error, not a panic.
		if r := exec(t, w, fedrpc.Instruction{Opcode: name, Inputs: []int64{1}, Output: next + 1}); r.OK {
			t.Fatalf("binary %s without operand accepted", name)
		}
	}
	for name, op := range unaryOps {
		next++
		r := exec(t, w, fedrpc.Instruction{Opcode: name, Inputs: []int64{1}, Output: next})
		if !r.OK {
			t.Fatalf("unary %s: %s", name, r.Err)
		}
		got, _ := w.Matrix(next)
		if !got.EqualApprox(x.Unary(op), 1e-12) {
			t.Fatalf("unary %s result", name)
		}
	}
	for name, op := range aggOps {
		next++
		r := exec(t, w, fedrpc.Instruction{Opcode: "uar_" + name, Inputs: []int64{1}, Output: next})
		if !r.OK {
			t.Fatalf("uar_%s: %s", name, r.Err)
		}
		got, _ := w.Matrix(next)
		if !got.EqualApprox(x.RowAgg(op), 1e-12) {
			t.Fatalf("uar_%s result", name)
		}
	}
}

// TestLeftIndex covers the one in-place instruction: a successful
// sub-block assignment, bounds rejection, privacy laundering rejection
// (restricted source into a public target), and in-place decompression of
// a compacted target.
func TestLeftIndex(t *testing.T) {
	w := New("")
	put(t, w, 1, matrix.Fill(4, 4, 0), privacy.Public)
	put(t, w, 2, matrix.Fill(2, 2, 7), privacy.Public)

	if r := exec(t, w, fedrpc.Instruction{Opcode: "leftIndex", Inputs: []int64{1, 2}, Scalars: []float64{1, 2}}); !r.OK {
		t.Fatalf("leftIndex: %s", r.Err)
	}
	got, _ := w.Matrix(1)
	want := matrix.Fill(4, 4, 0)
	want.SetSlice(1, 2, matrix.Fill(2, 2, 7))
	if !got.EqualApprox(want, 0) {
		t.Fatalf("leftIndex result %v", got.Data())
	}

	// Out-of-range assignment errors instead of panicking the worker.
	if r := exec(t, w, fedrpc.Instruction{Opcode: "leftIndex", Inputs: []int64{1, 2}, Scalars: []float64{3, 3}}); r.OK {
		t.Fatal("out-of-range leftIndex accepted")
	}
	// Missing operands error.
	if r := exec(t, w, fedrpc.Instruction{Opcode: "leftIndex", Inputs: []int64{1}, Scalars: []float64{0, 0}}); r.OK {
		t.Fatal("leftIndex without source accepted")
	}

	// A restricted source must not launder through a public target: the
	// target's level is fixed at creation, so the write is rejected.
	put(t, w, 3, matrix.Fill(2, 2, 9), privacy.Private)
	if r := exec(t, w, fedrpc.Instruction{Opcode: "leftIndex", Inputs: []int64{1, 3}, Scalars: []float64{0, 0}}); r.OK {
		t.Fatal("Private source written into Public target")
	}

	// A compacted target is decompressed in place and then mutated.
	rng := rand.New(rand.NewSource(3))
	put(t, w, 4, onehot(rng, 64, 4), privacy.Public)
	if n, _ := w.Compact(1.0); n == 0 {
		t.Fatal("compaction did not engage")
	}
	if r := exec(t, w, fedrpc.Instruction{Opcode: "leftIndex", Inputs: []int64{4, 2}, Scalars: []float64{0, 0}}); !r.OK {
		t.Fatalf("leftIndex into compacted target: %s", r.Err)
	}
	got4, _ := w.Matrix(4)
	if got4.Data()[0] != 7 || got4.Data()[1] != 7 {
		t.Fatal("leftIndex into compacted target lost the write")
	}
}
