package worker

import (
	"fmt"
	"math/rand"

	"exdra/internal/fedrpc"
	"exdra/internal/lineage"
	"exdra/internal/matrix"
	"exdra/internal/transform"
)

// Built-in UDFs of the federated runtime. Feature-transformation UDFs
// implement the two passes of federated transformencode (§4.4, Figure 3);
// the shuffle/replicate UDF implements the federated data partitioning of
// the parameter server (§4.3).

func init() {
	MustRegisterUDF("tf_build_partial", udfTFBuildPartial)
	MustRegisterUDF("tf_apply", udfTFApply)
	MustRegisterUDF("shuffle_replicate", udfShuffleReplicate)
	MustRegisterUDF("frame_nrows", udfFrameNumRows)
	MustRegisterUDF("obj_dims", udfObjDims)
	MustRegisterUDF("tf_decode", udfTFDecode)
}

// udfTFDecode decodes an encoded matrix partition back into a raw frame
// under the broadcast global metadata (transformdecode semantics); the
// decoded frame stays at the site under the matrix's constraint.
func udfTFDecode(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args TFApplyArgs
	if err := DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	e, err := w.Get(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	x, err := w.Matrix(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	f, err := transform.Decode(x, args.Meta)
	if err != nil {
		return fedrpc.Payload{}, err
	}
	w.Put(call.Output, &Entry{Fr: f, Level: e.Level})
	return fedrpc.ScalarPayload(float64(f.NumRows())), nil
}

// udfObjDims returns the dimensions of an object as a 1x2 matrix
// [rows, cols] — the metadata the coordinator needs for read-on-demand
// federation maps over raw files it has never seen.
func udfObjDims(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	e, err := w.Get(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	// Snapshot under the lock: Compact swaps Mat/Comp in place, and both
	// carry the dimensions — a compacted matrix must not degrade to the
	// scalar [1,1] answer.
	w.mu.RLock()
	mat, comp := e.Mat, e.Comp
	w.mu.RUnlock()
	switch {
	case mat != nil:
		return fedrpc.MatrixPayload(matrix.RowVector([]float64{
			float64(mat.Rows()), float64(mat.Cols())})), nil
	case comp != nil:
		return fedrpc.MatrixPayload(matrix.RowVector([]float64{
			float64(comp.Rows()), float64(comp.Cols())})), nil
	case e.Fr != nil:
		return fedrpc.MatrixPayload(matrix.RowVector([]float64{
			float64(e.Fr.NumRows()), float64(e.Fr.NumCols())})), nil
	default:
		return fedrpc.MatrixPayload(matrix.RowVector([]float64{1, 1})), nil
	}
}

// TFBuildArgs are the arguments of tf_build_partial.
type TFBuildArgs struct {
	Spec transform.Spec
}

// udfTFBuildPartial computes pass-one partial metadata (distinct items,
// min/max) over a frame. The result is lineage-cached: repeated pipeline
// runs over the same raw frame reuse the scan.
func udfTFBuildPartial(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args TFBuildArgs
	if err := DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	f, err := w.Frame(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	trace := lineage.Item{Op: "tf_build_partial", Inputs: []string{
		lineage.LiteralTrace("obj", call.Inputs[0]),
		lineage.LiteralTrace("spec", fmt.Sprintf("%+v", args.Spec)),
	}}.Trace()
	v, err := w.Lineage.GetOrCompute(trace, func() (any, error) {
		return transform.BuildPartial(f, args.Spec)
	})
	if err != nil {
		return fedrpc.Payload{}, err
	}
	// Partial metadata is aggregate information (distinct sets, min/max);
	// the paper explicitly exchanges it with the coordinator.
	out, err := EncodeArgs(v.(transform.PartialMeta))
	if err != nil {
		return fedrpc.Payload{}, err
	}
	return fedrpc.BytesPayload(out), nil
}

// TFApplyArgs are the arguments of tf_apply.
type TFApplyArgs struct {
	Meta *transform.Meta
}

// udfTFApply encodes the worker's frame partition under the broadcast
// global metadata, binding the federated encoded matrix under the output ID.
// The encoded matrix inherits the frame's privacy constraint.
func udfTFApply(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args TFApplyArgs
	if err := DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	e, err := w.Get(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	if e.Fr == nil {
		return fedrpc.Payload{}, fmt.Errorf("tf_apply: object %d is not a frame", call.Inputs[0])
	}
	x, err := transform.Apply(e.Fr, args.Meta)
	if err != nil {
		return fedrpc.Payload{}, err
	}
	w.Put(call.Output, &Entry{Mat: x, Level: e.Level})
	return fedrpc.ScalarPayload(float64(x.Rows())), nil
}

// ShuffleArgs are the arguments of shuffle_replicate: the parameter
// server's federated data partitioning (local shuffling, optional
// replication to balance worker data sizes).
type ShuffleArgs struct {
	Seed int64
	// Replicate repeats the local partition this many times (>= 1) to
	// balance imbalance across sites; aggregation weights are adjusted at
	// the server.
	Replicate int
	// LabelsID pairs a label matrix that must be shuffled consistently.
	LabelsID    int64
	OutLabelsID int64
}

func udfShuffleReplicate(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args ShuffleArgs
	if err := DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	x, err := w.Matrix(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	var y *matrix.Dense
	if args.LabelsID != 0 {
		if y, err = w.Matrix(args.LabelsID); err != nil {
			return fedrpc.Payload{}, err
		}
		if y.Rows() != x.Rows() {
			return fedrpc.Payload{}, fmt.Errorf("shuffle: %d features vs %d labels", x.Rows(), y.Rows())
		}
	}
	rep := args.Replicate
	if rep < 1 {
		rep = 1
	}
	rng := rand.New(rand.NewSource(args.Seed))
	idx := make([]int, 0, x.Rows()*rep)
	for r := 0; r < rep; r++ {
		perm := rng.Perm(x.Rows())
		idx = append(idx, perm...)
	}
	xe, _ := w.Get(call.Inputs[0])
	w.Put(call.Output, &Entry{Mat: x.SelectRows(idx), Level: xe.Level})
	if y != nil {
		ye, _ := w.Get(args.LabelsID)
		w.Put(args.OutLabelsID, &Entry{Mat: y.SelectRows(idx), Level: ye.Level})
	}
	return fedrpc.ScalarPayload(float64(len(idx))), nil
}

// udfFrameNumRows returns the row count of a frame — metadata the
// coordinator needs to build federation maps over raw files it has never
// seen (read-on-demand).
func udfFrameNumRows(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	e, err := w.Get(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	w.mu.RLock()
	mat, comp := e.Mat, e.Comp
	w.mu.RUnlock()
	switch {
	case e.Fr != nil:
		return fedrpc.ScalarPayload(float64(e.Fr.NumRows())), nil
	case mat != nil:
		return fedrpc.ScalarPayload(float64(mat.Rows())), nil
	case comp != nil:
		return fedrpc.ScalarPayload(float64(comp.Rows())), nil
	default:
		return fedrpc.Payload{}, fmt.Errorf("frame_nrows: object %d has no rows", call.Inputs[0])
	}
}
