package worker

import (
	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
)

// Asynchronous lossless compression of worker intermediates (§4.4: "free
// cycles of federated workers can be used for asynchronous, lossless
// compression such as compression planning and compaction of
// intermediates"). Compact scans the symbol table, compresses matrices
// whose compression ratio clears a threshold, and swaps the dense buffers
// out; access through Matrix transparently decompresses, so instructions
// and UDFs are unaffected.

func init() {
	MustRegisterUDF("compact", udfCompact)
}

// Compact compresses every symbol-table matrix whose dictionary-compressed
// form is at least minRatio times smaller. It returns the number of objects
// compacted and the bytes saved.
func (w *Worker) Compact(minRatio float64) (compacted int, savedBytes int) {
	if minRatio <= 1 {
		minRatio = 1.5
	}
	w.mu.Lock()
	entries := make([]*Entry, 0, len(w.symtab))
	for _, e := range w.symtab {
		entries = append(entries, e)
	}
	w.mu.Unlock()
	for _, e := range entries {
		w.mu.Lock()
		m := e.Mat
		w.mu.Unlock()
		if m == nil {
			continue
		}
		c := matrix.Compress(m)
		if c.CompressionRatio() < minRatio {
			continue
		}
		w.mu.Lock()
		if e.Mat == m { // not replaced concurrently
			e.Comp = c
			e.Mat = nil
			compacted++
			savedBytes += 8*m.Rows()*m.Cols() - c.SizeBytes()
		}
		w.mu.Unlock()
	}
	return compacted, savedBytes
}

// CompactArgs configure the compaction UDF.
type CompactArgs struct {
	MinRatio float64
}

// udfCompact lets a coordinator (or a worker-local idle loop) trigger
// compaction remotely; it returns the bytes saved.
func udfCompact(w *Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args CompactArgs
	if len(call.Args) > 0 {
		if err := DecodeArgs(call.Args, &args); err != nil {
			return fedrpc.Payload{}, err
		}
	}
	_, saved := w.Compact(args.MinRatio)
	return fedrpc.ScalarPayload(float64(saved)), nil
}
