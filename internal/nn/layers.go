package nn

import (
	"math"
	"math/rand"

	"exdra/internal/matrix"
)

// affine is a fully-connected layer: out = x W + b.
type affine struct {
	w, b   *matrix.Dense
	dw, db *matrix.Dense
	x      *matrix.Dense // cached input
}

func newAffine(in, out int, rng *rand.Rand) *affine {
	scale := math.Sqrt(2 / float64(in)) // He initialization
	return &affine{
		w:  matrix.Randn(rng, in, out, 0, scale),
		b:  matrix.NewDense(1, out),
		dw: matrix.NewDense(in, out),
		db: matrix.NewDense(1, out),
	}
}

func (a *affine) Forward(x *matrix.Dense) *matrix.Dense {
	a.x = x
	return x.MatMul(a.w).Add(a.b)
}

func (a *affine) Backward(dout *matrix.Dense) *matrix.Dense {
	a.dw = a.x.Transpose().MatMul(dout)
	a.db = dout.ColSums()
	return dout.MatMul(a.w.Transpose())
}

func (a *affine) Params() []*matrix.Dense { return []*matrix.Dense{a.w, a.b} }
func (a *affine) Grads() []*matrix.Dense  { return []*matrix.Dense{a.dw, a.db} }

// relu is the rectified linear activation.
type relu struct {
	mask *matrix.Dense
}

func (r *relu) Forward(x *matrix.Dense) *matrix.Dense {
	r.mask = x.BinaryScalar(matrix.OpGt, 0, false)
	return x.Mul(r.mask)
}

func (r *relu) Backward(dout *matrix.Dense) *matrix.Dense {
	return dout.Mul(r.mask)
}

func (r *relu) Params() []*matrix.Dense { return nil }
func (r *relu) Grads() []*matrix.Dense  { return nil }

// conv2d is a direct 2-D convolution over rows laid out as C x H x W
// (row-major per example).
type conv2d struct {
	spec   LayerSpec
	w      *matrix.Dense // filters x (C*FS*FS)
	b      *matrix.Dense // 1 x filters
	dw, db *matrix.Dense
	x      *matrix.Dense
	outH   int
	outW   int
}

func newConv2D(ls LayerSpec, rng *rand.Rand) *conv2d {
	fan := ls.Channels * ls.FilterSize * ls.FilterSize
	c := &conv2d{
		spec: ls,
		w:    matrix.Randn(rng, ls.Filters, fan, 0, math.Sqrt(2/float64(fan))),
		b:    matrix.NewDense(1, ls.Filters),
		dw:   matrix.NewDense(ls.Filters, fan),
		db:   matrix.NewDense(1, ls.Filters),
	}
	c.outH = (ls.Height+2*ls.Pad-ls.FilterSize)/ls.Stride + 1
	c.outW = (ls.Width+2*ls.Pad-ls.FilterSize)/ls.Stride + 1
	return c
}

func (c *conv2d) inAt(x *matrix.Dense, ex, ch, i, j int) float64 {
	if i < 0 || j < 0 || i >= c.spec.Height || j >= c.spec.Width {
		return 0
	}
	return x.At(ex, (ch*c.spec.Height+i)*c.spec.Width+j)
}

func (c *conv2d) Forward(x *matrix.Dense) *matrix.Dense {
	c.x = x
	ls := c.spec
	out := matrix.NewDense(x.Rows(), ls.Filters*c.outH*c.outW)
	for ex := 0; ex < x.Rows(); ex++ {
		for f := 0; f < ls.Filters; f++ {
			for oi := 0; oi < c.outH; oi++ {
				for oj := 0; oj < c.outW; oj++ {
					sum := c.b.At(0, f)
					for ch := 0; ch < ls.Channels; ch++ {
						for fi := 0; fi < ls.FilterSize; fi++ {
							for fj := 0; fj < ls.FilterSize; fj++ {
								ii := oi*ls.Stride - ls.Pad + fi
								jj := oj*ls.Stride - ls.Pad + fj
								sum += c.w.At(f, (ch*ls.FilterSize+fi)*ls.FilterSize+fj) *
									c.inAt(x, ex, ch, ii, jj)
							}
						}
					}
					out.Set(ex, (f*c.outH+oi)*c.outW+oj, sum)
				}
			}
		}
	}
	return out
}

func (c *conv2d) Backward(dout *matrix.Dense) *matrix.Dense {
	ls := c.spec
	dx := matrix.NewDense(c.x.Rows(), c.x.Cols())
	c.dw = matrix.NewDense(ls.Filters, ls.Channels*ls.FilterSize*ls.FilterSize)
	c.db = matrix.NewDense(1, ls.Filters)
	for ex := 0; ex < c.x.Rows(); ex++ {
		for f := 0; f < ls.Filters; f++ {
			for oi := 0; oi < c.outH; oi++ {
				for oj := 0; oj < c.outW; oj++ {
					g := dout.At(ex, (f*c.outH+oi)*c.outW+oj)
					if g == 0 {
						continue
					}
					c.db.Set(0, f, c.db.At(0, f)+g)
					for ch := 0; ch < ls.Channels; ch++ {
						for fi := 0; fi < ls.FilterSize; fi++ {
							for fj := 0; fj < ls.FilterSize; fj++ {
								ii := oi*ls.Stride - ls.Pad + fi
								jj := oj*ls.Stride - ls.Pad + fj
								if ii < 0 || jj < 0 || ii >= ls.Height || jj >= ls.Width {
									continue
								}
								wi := (ch*ls.FilterSize + fi) * ls.FilterSize
								c.dw.Set(f, wi+fj, c.dw.At(f, wi+fj)+g*c.inAt(c.x, ex, ch, ii, jj))
								xi := (ch*ls.Height+ii)*ls.Width + jj
								dx.Set(ex, xi, dx.At(ex, xi)+g*c.w.At(f, wi+fj))
							}
						}
					}
				}
			}
		}
	}
	return dx
}

func (c *conv2d) Params() []*matrix.Dense { return []*matrix.Dense{c.w, c.b} }
func (c *conv2d) Grads() []*matrix.Dense  { return []*matrix.Dense{c.dw, c.db} }

// maxpool is a non-overlapping 2-D max pooling layer.
type maxpool struct {
	spec   LayerSpec
	argmax []int
	inCols int
	outH   int
	outW   int
}

func newMaxPool(ls LayerSpec) *maxpool {
	return &maxpool{
		spec: ls,
		outH: ls.Height / ls.PoolSize,
		outW: ls.Width / ls.PoolSize,
	}
}

func (p *maxpool) Forward(x *matrix.Dense) *matrix.Dense {
	ls := p.spec
	p.inCols = x.Cols()
	out := matrix.NewDense(x.Rows(), ls.Channels*p.outH*p.outW)
	p.argmax = make([]int, x.Rows()*out.Cols())
	for ex := 0; ex < x.Rows(); ex++ {
		for ch := 0; ch < ls.Channels; ch++ {
			for oi := 0; oi < p.outH; oi++ {
				for oj := 0; oj < p.outW; oj++ {
					best, bestIdx := math.Inf(-1), 0
					for di := 0; di < ls.PoolSize; di++ {
						for dj := 0; dj < ls.PoolSize; dj++ {
							ii := oi*ls.PoolSize + di
							jj := oj*ls.PoolSize + dj
							idx := (ch*ls.Height+ii)*ls.Width + jj
							if v := x.At(ex, idx); v > best {
								best, bestIdx = v, idx
							}
						}
					}
					oidx := (ch*p.outH+oi)*p.outW + oj
					out.Set(ex, oidx, best)
					p.argmax[ex*out.Cols()+oidx] = bestIdx
				}
			}
		}
	}
	return out
}

func (p *maxpool) Backward(dout *matrix.Dense) *matrix.Dense {
	dx := matrix.NewDense(dout.Rows(), p.inCols)
	for ex := 0; ex < dout.Rows(); ex++ {
		for o := 0; o < dout.Cols(); o++ {
			idx := p.argmax[ex*dout.Cols()+o]
			dx.Set(ex, idx, dx.At(ex, idx)+dout.At(ex, o))
		}
	}
	return dx
}

func (p *maxpool) Params() []*matrix.Dense { return nil }
func (p *maxpool) Grads() []*matrix.Dense  { return nil }
