package nn

import (
	"fmt"

	"exdra/internal/matrix"
)

// OptimizerConfig is a serializable optimizer description, shipped to
// parameter-server workers at setup.
type OptimizerConfig struct {
	// Kind is "sgd" or "nesterov".
	Kind string
	// LR is the learning rate.
	LR float64
	// Mu is the Nesterov momentum (nesterov only).
	Mu float64
}

// Optimizer updates parameters in place from gradients.
type Optimizer interface {
	Step(params, grads []*matrix.Dense)
}

// NewOptimizer instantiates the configured optimizer.
func NewOptimizer(cfg OptimizerConfig) (Optimizer, error) {
	switch cfg.Kind {
	case "", "sgd":
		return &sgd{lr: cfg.LR}, nil
	case "nesterov":
		return &nesterov{lr: cfg.LR, mu: cfg.Mu}, nil
	default:
		return nil, fmt.Errorf("nn: unknown optimizer %q", cfg.Kind)
	}
}

// sgd is plain stochastic gradient descent (the paper's CNN setting).
type sgd struct{ lr float64 }

func (o *sgd) Step(params, grads []*matrix.Dense) {
	for i, p := range params {
		p.AxpyInPlace(-o.lr, grads[i])
	}
}

// nesterov is SGD with Nesterov momentum (the paper's FFN setting).
type nesterov struct {
	lr, mu   float64
	velocity []*matrix.Dense
}

func (o *nesterov) Step(params, grads []*matrix.Dense) {
	if o.velocity == nil {
		o.velocity = make([]*matrix.Dense, len(params))
		for i, p := range params {
			o.velocity[i] = matrix.NewDense(p.Rows(), p.Cols())
		}
	}
	for i, p := range params {
		vPrev := o.velocity[i].Clone()
		// v = mu*v - lr*g;  p += -mu*v_prev + (1+mu)*v
		o.velocity[i].ScaleInPlace(o.mu)
		o.velocity[i].AxpyInPlace(-o.lr, grads[i])
		p.AxpyInPlace(-o.mu, vPrev)
		p.AxpyInPlace(1+o.mu, o.velocity[i])
	}
}
