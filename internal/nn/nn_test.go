package nn

import (
	"math"
	"math/rand"
	"testing"

	"exdra/internal/data"
	"exdra/internal/matrix"
)

func TestAffineForwardBackwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := newAffine(4, 3, rng)
	x := matrix.Randn(rng, 5, 4, 0, 1)
	out := a.Forward(x)
	if out.Rows() != 5 || out.Cols() != 3 {
		t.Fatalf("forward shape %dx%d", out.Rows(), out.Cols())
	}
	dx := a.Backward(matrix.Fill(5, 3, 1))
	if dx.Rows() != 5 || dx.Cols() != 4 {
		t.Fatal("backward shape")
	}
	if a.dw.Rows() != 4 || a.db.Cols() != 3 {
		t.Fatal("grad shapes")
	}
}

// numericGrad checks analytic gradients against central differences.
func numericGrad(t *testing.T, net *Network, x, y *matrix.Dense, param *matrix.Dense, grad *matrix.Dense, tol float64) {
	t.Helper()
	const eps = 1e-5
	idxs := []int{0, param.Size() / 2, param.Size() - 1}
	for _, idx := range idxs {
		orig := param.Data()[idx]
		param.Data()[idx] = orig + eps
		lp := net.Loss(x, y)
		param.Data()[idx] = orig - eps
		lm := net.Loss(x, y)
		param.Data()[idx] = orig
		want := (lp - lm) / (2 * eps)
		net.Loss(x, y) // restore gradients at orig
		got := grad.Data()[idx]
		if math.Abs(got-want) > tol*(math.Abs(want)+1e-4) {
			t.Fatalf("grad[%d]=%g, numeric %g", idx, got, want)
		}
	}
}

func TestFFNGradientsNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, err := NewNetwork(FFNSpec(6, 5, 3, LossSoftmaxCE), rng)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.Randn(rng, 8, 6, 0, 1)
	y := matrix.NewDense(8, 1)
	for i := 0; i < 8; i++ {
		y.Set(i, 0, float64(rng.Intn(3)+1))
	}
	net.Loss(x, y)
	params, grads := net.Params(), net.Grads()
	for i := range params {
		numericGrad(t, net, x, y, params[i], grads[i], 1e-3)
	}
}

func TestMSEGradientsNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := NewNetwork(FFNSpec(4, 6, 1, LossMSE), rng)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.Randn(rng, 7, 4, 0, 1)
	y := matrix.Randn(rng, 7, 1, 0, 1)
	net.Loss(x, y)
	params, grads := net.Params(), net.Grads()
	for i := range params {
		numericGrad(t, net, x, y, params[i], grads[i], 1e-3)
	}
}

func TestCNNGradientsNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Tiny geometry for the finite-difference check.
	spec := Spec{
		Layers: []LayerSpec{
			{Kind: KindConv2D, Channels: 1, Height: 6, Width: 6, Filters: 2, FilterSize: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU},
			{Kind: KindMaxPool, Channels: 2, Height: 6, Width: 6, PoolSize: 2},
			{Kind: KindAffine, In: 2 * 3 * 3, Out: 2},
		},
		Loss:    LossSoftmaxCE,
		Classes: 2,
	}
	net, err := NewNetwork(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.Randn(rng, 3, 36, 0, 1)
	y := matrix.ColVector([]float64{1, 2, 1})
	net.Loss(x, y)
	params, grads := net.Params(), net.Grads()
	for i := range params {
		numericGrad(t, net, x, y, params[i], grads[i], 2e-3)
	}
}

func TestConvOutputGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ls := LayerSpec{Kind: KindConv2D, Channels: 1, Height: 28, Width: 28,
		Filters: 4, FilterSize: 5, Stride: 1, Pad: 2}
	c := newConv2D(ls, rng)
	x := matrix.Randn(rng, 2, 784, 0, 1)
	out := c.Forward(x)
	if out.Cols() != 4*28*28 {
		t.Fatalf("conv output cols %d", out.Cols())
	}
	p := newMaxPool(LayerSpec{Kind: KindMaxPool, Channels: 4, Height: 28, Width: 28, PoolSize: 2})
	pooled := p.Forward(out)
	if pooled.Cols() != 4*14*14 {
		t.Fatalf("pool output cols %d", pooled.Cols())
	}
	dx := p.Backward(matrix.Fill(2, pooled.Cols(), 1))
	if dx.Cols() != out.Cols() {
		t.Fatal("pool backward shape")
	}
}

func TestFFNLearnsMultiClass(t *testing.T) {
	x, y := data.MultiClass(6, 400, 10, 3)
	rng := rand.New(rand.NewSource(7))
	net, err := NewNetwork(FFNSpec(10, 32, 3, LossSoftmaxCE), rng)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimizer(OptimizerConfig{Kind: "nesterov", LR: 0.05, Mu: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	first := net.Loss(x, y)
	for epoch := 0; epoch < 30; epoch++ {
		for b := 0; b < 400; b += 64 {
			e := b + 64
			if e > 400 {
				e = 400
			}
			net.Loss(x.SliceRows(b, e), y.SliceRows(b, e))
			opt.Step(net.Params(), net.Grads())
		}
	}
	last := net.Loss(x, y)
	if last >= first {
		t.Fatalf("loss did not decrease: %g -> %g", first, last)
	}
	if acc := net.Accuracy(x, y); acc < 0.95 {
		t.Fatalf("FFN accuracy %g", acc)
	}
}

func TestSetCloneParams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, _ := NewNetwork(FFNSpec(3, 4, 2, LossSoftmaxCE), rng)
	b, _ := NewNetwork(FFNSpec(3, 4, 2, LossSoftmaxCE), rng)
	if err := b.SetParams(a.CloneParams()); err != nil {
		t.Fatal(err)
	}
	x := matrix.Randn(rng, 5, 3, 0, 1)
	if !a.Forward(x).EqualApprox(b.Forward(x), 0) {
		t.Fatal("SetParams did not copy")
	}
	// Clone is deep: mutating the clone must not affect the source.
	cp := a.CloneParams()
	cp[0].Set(0, 0, 999)
	if a.Params()[0].At(0, 0) == 999 {
		t.Fatal("CloneParams aliases")
	}
	// Mismatched shapes rejected.
	c, _ := NewNetwork(FFNSpec(3, 5, 2, LossSoftmaxCE), rng)
	if err := c.SetParams(a.CloneParams()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestOptimizerConfigs(t *testing.T) {
	if _, err := NewOptimizer(OptimizerConfig{Kind: "adamw"}); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
	// Plain SGD step moves against the gradient.
	p := []*matrix.Dense{matrix.Fill(1, 1, 1)}
	g := []*matrix.Dense{matrix.Fill(1, 1, 2)}
	opt, _ := NewOptimizer(OptimizerConfig{Kind: "sgd", LR: 0.5})
	opt.Step(p, g)
	if p[0].At(0, 0) != 0 {
		t.Fatalf("sgd step: %g", p[0].At(0, 0))
	}
}
