package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"exdra/internal/matrix"
)

// Model persistence: trained networks serialize as their Spec plus the
// parameter matrices, so deployment sites (or the ExperimentDB model store)
// can reload and serve them without retraining.

type networkFile struct {
	Spec   Spec
	Params []wireParam
}

type wireParam struct {
	Rows, Cols int
	Data       []float64
}

// Save writes the network architecture and parameters.
func (n *Network) Save(w io.Writer) error {
	file := networkFile{Spec: n.Spec}
	for _, p := range n.Params() {
		file.Params = append(file.Params, wireParam{Rows: p.Rows(), Cols: p.Cols(), Data: p.Data()})
	}
	return gob.NewEncoder(w).Encode(file)
}

// SaveFile writes the network to path.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := n.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a network saved with Save.
func Load(r io.Reader) (*Network, error) {
	var file networkFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("nn: decode model: %w", err)
	}
	net, err := NewNetwork(file.Spec, rand.New(rand.NewSource(0)))
	if err != nil {
		return nil, err
	}
	params := make([]*matrix.Dense, len(file.Params))
	for i, p := range file.Params {
		params[i] = matrix.NewDenseData(p.Rows, p.Cols, p.Data)
	}
	if err := net.SetParams(params); err != nil {
		return nil, err
	}
	return net, nil
}

// LoadFile reads a network from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
