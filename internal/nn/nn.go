// Package nn implements the neural-network layers and optimizers behind the
// FFN and CNN workloads of the ExDRa evaluation (§6.1): affine, ReLU, 2-D
// convolution, max pooling, softmax cross-entropy and mean-squared-error
// losses, and SGD with optional Nesterov momentum. Networks are described
// by serializable Specs so the federated parameter server can ship the
// architecture to workers (the paper serializes the gradient/update
// functions at setup; see DESIGN.md substitutions).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"exdra/internal/matrix"
)

// LayerKind enumerates the supported layer types.
type LayerKind string

// Supported layer kinds.
const (
	KindAffine  LayerKind = "affine"
	KindReLU    LayerKind = "relu"
	KindConv2D  LayerKind = "conv2d"
	KindMaxPool LayerKind = "maxpool"
)

// LayerSpec describes one layer. Exactly the fields for Kind are used.
type LayerSpec struct {
	Kind LayerKind
	// Affine.
	In, Out int
	// Conv2D / MaxPool: input geometry and filter parameters.
	Channels, Height, Width int
	Filters, FilterSize     int
	Stride, Pad             int
	PoolSize                int
}

// LossKind selects the training loss.
type LossKind string

// Supported losses.
const (
	// LossSoftmaxCE is softmax cross-entropy for 1-based class labels.
	LossSoftmaxCE LossKind = "softmax_ce"
	// LossMSE is mean squared error for regression targets.
	LossMSE LossKind = "mse"
)

// Spec is a serializable network architecture.
type Spec struct {
	Layers []LayerSpec
	Loss   LossKind
	// Classes is the output width (classes for softmax, targets for MSE).
	Classes int
}

// FFNSpec builds the paper's fully-connected feed-forward network:
// in -> hidden (ReLU) -> out.
func FFNSpec(in, hidden, out int, loss LossKind) Spec {
	return Spec{
		Layers: []LayerSpec{
			{Kind: KindAffine, In: in, Out: hidden},
			{Kind: KindReLU},
			{Kind: KindAffine, In: hidden, Out: out},
		},
		Loss:    loss,
		Classes: out,
	}
}

// CNNSpec builds the paper's convolutional network for MNIST-shaped input:
// conv(F filters, 5x5) -> ReLU -> maxpool(2) -> affine -> softmax.
func CNNSpec(channels, height, width, filters, classes int) Spec {
	convH := height // stride 1, pad 2 keeps size with 5x5 filters
	convW := width
	poolH, poolW := convH/2, convW/2
	return Spec{
		Layers: []LayerSpec{
			{Kind: KindConv2D, Channels: channels, Height: height, Width: width,
				Filters: filters, FilterSize: 5, Stride: 1, Pad: 2},
			{Kind: KindReLU},
			{Kind: KindMaxPool, Channels: filters, Height: convH, Width: convW, PoolSize: 2},
			{Kind: KindAffine, In: filters * poolH * poolW, Out: classes},
		},
		Loss:    LossSoftmaxCE,
		Classes: classes,
	}
}

// Layer is a differentiable network layer. Forward caches what Backward
// needs; layers are therefore not safe for concurrent use (each parameter
// server worker owns its own network instance).
type Layer interface {
	Forward(x *matrix.Dense) *matrix.Dense
	Backward(dout *matrix.Dense) *matrix.Dense
	Params() []*matrix.Dense
	Grads() []*matrix.Dense
}

// Network is a feed-forward stack of layers with a loss.
type Network struct {
	Spec   Spec
	Layers []Layer
}

// NewNetwork instantiates a network with freshly initialized parameters
// (He initialization for weight matrices/filters, zero biases).
func NewNetwork(spec Spec, rng *rand.Rand) (*Network, error) {
	switch spec.Loss {
	case LossSoftmaxCE, LossMSE:
	default:
		return nil, fmt.Errorf("nn: unknown loss %q", spec.Loss)
	}
	n := &Network{Spec: spec}
	for _, ls := range spec.Layers {
		switch ls.Kind {
		case KindAffine:
			n.Layers = append(n.Layers, newAffine(ls.In, ls.Out, rng))
		case KindReLU:
			n.Layers = append(n.Layers, &relu{})
		case KindConv2D:
			n.Layers = append(n.Layers, newConv2D(ls, rng))
		case KindMaxPool:
			n.Layers = append(n.Layers, newMaxPool(ls))
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %q", ls.Kind)
		}
	}
	return n, nil
}

// Forward runs the network on a batch (rows are examples).
func (n *Network) Forward(x *matrix.Dense) *matrix.Dense {
	out := x
	for _, l := range n.Layers {
		out = l.Forward(out)
	}
	return out
}

// Loss computes the loss and gradients for a batch: y is a 1-based class
// index vector under softmax cross-entropy, or a real target matrix under
// MSE. Gradients accumulate into Grads().
func (n *Network) Loss(x, y *matrix.Dense) float64 {
	out := n.Forward(x)
	var loss float64
	var dout *matrix.Dense
	switch n.Spec.Loss {
	case LossSoftmaxCE:
		probs := out.Softmax()
		b := float64(x.Rows())
		loss = 0
		dout = probs.Clone()
		for i := 0; i < x.Rows(); i++ {
			c := int(y.At(i, 0)) - 1
			loss += -math.Log(math.Max(probs.At(i, c), 1e-15))
			dout.Set(i, c, dout.At(i, c)-1)
		}
		loss /= b
		dout.ScaleInPlace(1 / b)
	case LossMSE:
		diff := out.Sub(y)
		b := float64(x.Rows())
		loss = diff.Mul(diff).Sum() / (2 * b)
		dout = diff.Scale(1 / b)
	default:
		//lint:ignore nopanic unreachable: NewNetwork validates Spec.Loss at construction
		panic(fmt.Sprintf("nn: unknown loss %q", n.Spec.Loss))
	}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
	return loss
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*matrix.Dense {
	var out []*matrix.Dense
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns the gradients matching Params.
func (n *Network) Grads() []*matrix.Dense {
	var out []*matrix.Dense
	for _, l := range n.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// SetParams copies values into the network's parameters.
func (n *Network) SetParams(params []*matrix.Dense) error {
	own := n.Params()
	if len(own) != len(params) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(own), len(params))
	}
	for i, p := range params {
		if p.Rows() != own[i].Rows() || p.Cols() != own[i].Cols() {
			return fmt.Errorf("nn: parameter %d shape mismatch", i)
		}
		copy(own[i].Data(), p.Data())
	}
	return nil
}

// CloneParams deep-copies the current parameters (the "model" the
// parameter server broadcasts).
func (n *Network) CloneParams() []*matrix.Dense {
	ps := n.Params()
	out := make([]*matrix.Dense, len(ps))
	for i, p := range ps {
		out[i] = p.Clone()
	}
	return out
}

// Predict returns the 1-based argmax class per row (softmax networks).
func (n *Network) Predict(x *matrix.Dense) *matrix.Dense {
	return n.Forward(x).RowIndexMax()
}

// Accuracy computes classification accuracy against 1-based labels.
func (n *Network) Accuracy(x, y *matrix.Dense) float64 {
	pred := n.Predict(x)
	correct := 0
	for i, p := range pred.Data() {
		if p == y.Data()[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred.Data()))
}
