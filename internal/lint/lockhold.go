package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHoldAnalyzer flags blocking operations performed while a mutex is
// held: channel sends and receives, select without a default clause,
// range over a channel, sync.WaitGroup.Wait, fedrpc exchanges
// (Call/CallCtx/CallOne/CallOneCtx on a type named Client), raw conn
// Read/Write, gob Encode/Decode, and anything whose callee name contains
// "dial". At the paper's 35–60 ms WAN RTT, a blocking call inside a
// critical section stretches every contending goroutine's wait to
// network latency; in the coordinator's retry/replay paths it is also a
// deadlock hazard. Holding a lock across I/O that is genuinely the
// type's contract (the fedrpc exchange serializer) carries a justified
// //lint:ignore instead.
//
// Deferred calls are not flagged: defers run at return, where the lock
// order is governed by the defer stack, not the statement position.
func LockHoldAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockhold",
		Doc:  "no blocking operation (network I/O, RPC, channel op, Wait) while a mutex is held",
		Run:  runLockHold,
	}
}

func runLockHold(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkLocks(pass.Pkg, fd, func(n ast.Node, held *heldSet, inDefer bool) {
				if held.empty() || inDefer {
					return
				}
				desc := ""
				switch n := n.(type) {
				case *ast.SendStmt:
					desc = "channel send"
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						desc = "channel receive"
					}
				case *ast.RangeStmt:
					if t := pass.Pkg.TypeOf(n.X); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							desc = "range over channel"
						}
					}
				case *ast.SelectStmt:
					if !hasDefaultClause(n.Body) {
						desc = "blocking select"
					}
				case *ast.CallExpr:
					desc = blockingCall(pass.Pkg, n)
				}
				if desc == "" {
					return
				}
				pass.Reportf(n.Pos(),
					"%s while holding %s; release the lock first, or every contender waits out the blocked peer",
					desc, strings.Join(held.displays(), ", "))
			})
		}
	}
}

// blockingCall classifies call as a potentially unbounded blocking
// operation and returns a description, or "".
func blockingCall(pkg *Package, call *ast.CallExpr) string {
	name := calleeName(call)
	if name == "" {
		return ""
	}
	if strings.Contains(strings.ToLower(name), "dial") {
		return name + " (dials)"
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv := pkg.TypeOf(sel.X)
	if recv == nil {
		return ""
	}
	switch name {
	case "Wait":
		// sync.Cond.Wait is excluded: it requires the lock by contract.
		if isNamedType(recv, "sync", "WaitGroup") {
			return "WaitGroup.Wait"
		}
	case "Call", "CallCtx", "CallOne", "CallOneCtx":
		// Matched by type name, like obsreg's Registry, so fixtures and
		// wrappers with their own Client type are covered too.
		if isTypeNamed(recv, "Client") {
			return "RPC " + name
		}
	case "Read", "Write":
		if isConnLike(recv, pkg) {
			return "conn " + name
		}
	case "Encode", "Decode":
		if isNamedType(recv, "encoding/gob", "Encoder") ||
			isNamedType(recv, "encoding/gob", "Decoder") {
			return "gob " + name
		}
	}
	return ""
}

// isNamedType reports whether t is (a pointer to) the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isTypeNamed reports whether t is (a pointer to) a named type with the
// given bare name, in any package.
func isTypeNamed(t types.Type, name string) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Name() == name
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
