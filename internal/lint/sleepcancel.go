package lint

import (
	"go/ast"
	"go/types"
)

// SleepCancelAnalyzer forbids time.Sleep in library (non-main) packages.
// A bare Sleep has no cancellation path: it ignores Close, shutdown, and
// deadlines, so an emulated WAN delay or a retry backoff built on Sleep
// holds locks and goroutines hostage for its full duration (the netem
// stall bug this repository once had). Library code must wait with
// time.NewTimer (or Ticker) inside a select that also watches a
// cancellation signal — a done/closed channel or a deadline. Binaries
// (package main) are exempt: top-level pacing loops have nothing to
// cancel. Test files are never loaded by the analysis, so test sleeps are
// unaffected.
func SleepCancelAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "sleepcancel",
		Doc:  "library code must not call time.Sleep; wait with a timer in a select that has a cancellation path",
		Run: func(pass *Pass) {
			if pass.Pkg.Name() == "main" {
				return
			}
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if isTimeSleep(pass, call) {
						pass.Reportf(call.Pos(),
							"time.Sleep has no cancellation path; use time.NewTimer in a select watching a done channel or deadline, so Close and shutdown stay prompt")
					}
					return true
				})
			}
		},
	}
}

// isTimeSleep reports whether the call is time.Sleep from the standard
// time package (alias-proof: the receiver identifier is resolved to its
// imported package, not matched by name).
func isTimeSleep(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || pass.Pkg.Info == nil {
		return false
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}
