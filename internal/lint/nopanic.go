package lint

import (
	"go/ast"
	"go/types"
)

// NoPanicAnalyzer forbids panic in library code. A federated worker is a
// standing multi-tenant server: one exploratory pipeline must not be able
// to take it down, so failures travel as errors, not panics.
//
// Exemptions, in the spirit of the standard library:
//   - packages in allowPkgs (the matrix shape-check kernels);
//   - functions whose name starts with "Must" (the regexp.MustCompile
//     idiom — the caller explicitly opted into panicking);
//   - re-panics of a recovered value (panic(r) where r came from recover()
//     in the same function), which preserve foreign panics in recovery
//     shims.
func NoPanicAnalyzer(allowPkgs []string) *Analyzer {
	allowed := map[string]bool{}
	for _, p := range allowPkgs {
		allowed[p] = true
	}
	return &Analyzer{
		Name: "nopanic",
		Doc:  "library code must return errors instead of panicking",
		Run: func(pass *Pass) {
			if allowed[pass.Pkg.Path] {
				return
			}
			for _, file := range pass.Pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					mustOK := len(fd.Name.Name) >= 4 && fd.Name.Name[:4] == "Must"
					checkPanics(pass, fd.Body, mustOK)
				}
			}
		},
	}
}

// checkPanics inspects one function body, recursing into nested function
// literals with a fresh recover scope (recover() only observes panics of
// the goroutine/defer frame it runs in).
func checkPanics(pass *Pass, body *ast.BlockStmt, mustOK bool) {
	recovered := map[string]bool{}
	walkShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || !isRecoverCall(pass, as.Rhs[0]) {
			return
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				recovered[id.Name] = true
			}
		}
	})
	walkShallow(body, func(n ast.Node) {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkPanics(pass, lit.Body, mustOK)
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "panic") {
			return
		}
		if mustOK {
			return
		}
		if len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && recovered[id.Name] {
				return // re-panic of a recovered value
			}
		}
		pass.Reportf(call.Pos(),
			"panic in library code; return an error instead (federated workers must survive bad pipelines)")
	})
}

// walkShallow visits nodes of body without descending into nested
// function literals (their bodies are separate panic/recover scopes).
func walkShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			fn(n)
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func isRecoverCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isBuiltin(pass, call.Fun, "recover")
}

// isBuiltin reports whether fun denotes the named predeclared function,
// falling back to a name match when type information is incomplete.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if pass.Pkg.Info != nil {
		if obj := pass.Pkg.Info.Uses[id]; obj != nil {
			_, isBuiltin := obj.(*types.Builtin)
			return isBuiltin
		}
	}
	return true
}
