package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ObsRegAnalyzer enforces single-site registration of constant-named
// observability histograms. Registry.Histogram(name, buckets) is
// get-or-create and the FIRST registration wins the bucket layout; a
// second call site with the same constant name but different buckets would
// be silently ignored, so every constant histogram name must have exactly
// one call site (shared through a helper if several paths observe it).
// Dynamically built names (per-request-type, per-opcode) are exempt: their
// call sites are the shared helper.
//
// The check is cross-package: the analyzer keeps the first site of every
// constant name across all packages of one exdralint run and reports the
// duplicates where they appear.
func ObsRegAnalyzer() *Analyzer {
	firstSite := map[string]token.Position{}
	return &Analyzer{
		Name: "obsreg",
		Doc:  "constant obs histogram names must be registered at exactly one call site",
		Run: func(pass *Pass) {
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					name, ok := constHistogramName(pass.Pkg, call)
					if !ok {
						return true
					}
					pos := pass.Pkg.Fset.Position(call.Pos())
					if prev, dup := firstSite[name]; dup {
						pass.Reportf(call.Pos(),
							"histogram %q is already registered at %s:%d; the first registration wins the bucket layout, so share one call site",
							name, prev.Filename, prev.Line)
						return true
					}
					firstSite[name] = pos
					return true
				})
			}
		},
	}
}

// constHistogramName reports whether call is Registry.Histogram with a
// compile-time-constant name, returning the folded name. The receiver is
// matched by type name so the rule also applies to fixtures defining their
// own Registry.
func constHistogramName(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Histogram" || len(call.Args) < 1 {
		return "", false
	}
	recv := pkg.TypeOf(sel.X)
	if recv == nil || !isRegistryType(recv) {
		return "", false
	}
	if pkg.Info == nil {
		return "", false
	}
	tv, ok := pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isRegistryType reports whether t is (a pointer to) a named type called
// Registry.
func isRegistryType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Registry"
}
