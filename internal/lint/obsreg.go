package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// ObsRegAnalyzer enforces single-site registration of constant-named
// observability histograms. Registry.Histogram(name, buckets) is
// get-or-create and the FIRST registration wins the bucket layout; a
// second call site with the same constant name but different buckets would
// be silently ignored, so every constant histogram name must have exactly
// one call site (shared through a helper if several paths observe it).
// Dynamically built names (per-request-type, per-opcode) are exempt: their
// call sites are the shared helper.
//
// The check is cross-package: Run (which executes concurrently, one
// goroutine per package) only collects the call sites; Finish sorts them
// and reports every site of a name except the lexicographically first,
// so the output is deterministic regardless of analysis order.
func ObsRegAnalyzer() *Analyzer {
	var mu sync.Mutex
	type site struct {
		name string
		pos  token.Position
	}
	var sites []site
	return &Analyzer{
		Name: "obsreg",
		Doc:  "constant obs histogram names must be registered at exactly one call site",
		Run: func(pass *Pass) {
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					name, ok := constHistogramName(pass.Pkg, call)
					if !ok {
						return true
					}
					pos := pass.Pkg.Fset.Position(call.Pos())
					mu.Lock()
					sites = append(sites, site{name: name, pos: pos})
					mu.Unlock()
					return true
				})
			}
		},
		Finish: func(pass *Pass) {
			sort.Slice(sites, func(i, j int) bool {
				a, b := sites[i], sites[j]
				if a.name != b.name {
					return a.name < b.name
				}
				if a.pos.Filename != b.pos.Filename {
					return a.pos.Filename < b.pos.Filename
				}
				if a.pos.Line != b.pos.Line {
					return a.pos.Line < b.pos.Line
				}
				return a.pos.Column < b.pos.Column
			})
			for i, s := range sites {
				if i == 0 || sites[i-1].name != s.name {
					continue // the first site of each name wins
				}
				first := sites[i-1]
				for j := i - 1; j >= 0 && sites[j].name == s.name; j-- {
					first = sites[j]
				}
				pass.ReportPosf(s.pos,
					"histogram %q is already registered at %s:%d; the first registration wins the bucket layout, so share one call site",
					s.name, first.pos.Filename, first.pos.Line)
			}
		},
	}
}

// constHistogramName reports whether call is Registry.Histogram with a
// compile-time-constant name, returning the folded name. The receiver is
// matched by type name so the rule also applies to fixtures defining their
// own Registry.
func constHistogramName(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Histogram" || len(call.Args) < 1 {
		return "", false
	}
	recv := pkg.TypeOf(sel.X)
	if recv == nil || !isRegistryType(recv) {
		return "", false
	}
	if pkg.Info == nil {
		return "", false
	}
	tv, ok := pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isRegistryType reports whether t is (a pointer to) a named type called
// Registry.
func isRegistryType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Registry"
}
