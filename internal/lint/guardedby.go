package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedByAnalyzer enforces `// guarded by <mu>` field annotations: an
// annotated struct field or package variable may only be read or written
// in a function that holds the named mutex, as computed by the lock-flow
// walk (lockflow.go). The annotation grammar (DESIGN.md §5):
//
//   - `// guarded by mu` on a field means the sibling mutex field of the
//     same struct value: an access x.field requires x.mu held.
//   - `// guarded by Type.mu` (dotted) marks a field guarded by another
//     struct's mutex; it matches any held lock with that mutex name.
//   - `// guarded by mu` on a package var names a package-level mutex.
//
// Escape hatches: functions named *Locked, functions documented
// "callers hold <mu>", constructor-style writes through a local that is
// only ever assigned fresh allocations (&T{...}, T{...}, new(T)) — a
// value no other goroutine can reach yet — and, as everywhere, a
// justified //lint:ignore.
func GuardedByAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "guardedby",
		Doc:  "fields annotated `// guarded by <mu>` are accessed only with the mutex held",
		Run:  runGuardedBy,
	}
}

func runGuardedBy(pass *Pass) {
	guards := collectGuards(pass.Pkg)
	if len(guards) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := freshObjects(pass.Pkg, fd)
			walkLocks(pass.Pkg, fd, func(n ast.Node, held *heldSet, inDefer bool) {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					g, ok := guards[fieldOf(pass.Pkg, n)]
					if !ok || baseIsFresh(pass.Pkg, n.X, fresh) {
						return
					}
					if g.dotted {
						if held.holdsNamed(g.mu) {
							return
						}
					} else if held.holds(exprToken(pass.Pkg, n.X), g.mu) {
						return
					}
					pass.Reportf(n.Sel.Pos(),
						"%s (guarded by %s) accessed without holding %s",
						types.ExprString(n), g.display, g.display)
				case *ast.Ident:
					obj := pass.Pkg.Info.Uses[n]
					// Only package-level vars: field idents reached here
					// are composite-literal keys, and a composite literal
					// constructs a fresh value.
					if v, isVar := obj.(*types.Var); !isVar || v.IsField() {
						return
					}
					g, ok := guards[obj]
					if !ok {
						return
					}
					if held.holds("", g.mu) || held.holdsNamed(g.mu) {
						return
					}
					pass.Reportf(n.Pos(),
						"%s (guarded by %s) accessed without holding %s",
						n.Name, g.display, g.display)
				}
			})
		}
	}
}

// guardSpec is one parsed `// guarded by <mu>` annotation.
type guardSpec struct {
	mu      string // mutex name (last component)
	dotted  bool   // written Type.mu: match by mutex name on any receiver
	display string // annotation text as written
}

// collectGuards gathers guarded-by annotations from struct field and
// package-var declarations of the package under analysis. (Annotations
// on other packages' exported fields are enforced where they are
// declared — the analysis is per-package.)
func collectGuards(pkg *Package) map[types.Object]guardSpec {
	guards := map[types.Object]guardSpec{}
	if pkg.Info == nil {
		return guards
	}
	record := func(names []*ast.Ident, cgs ...*ast.CommentGroup) {
		spec, ok := parseGuard(cgs...)
		if !ok {
			return
		}
		for _, n := range names {
			if obj := pkg.Info.Defs[n]; obj != nil {
				guards[obj] = spec
			}
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				if n.Fields == nil {
					return true
				}
				for _, f := range n.Fields.List {
					record(f.Names, f.Doc, f.Comment)
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, s := range n.Specs {
					if vs, ok := s.(*ast.ValueSpec); ok {
						record(vs.Names, vs.Doc, vs.Comment)
					}
				}
			}
			return true
		})
	}
	return guards
}

// parseGuard extracts the mutex spec from the first comment group
// containing "guarded by <mu>".
func parseGuard(cgs ...*ast.CommentGroup) (guardSpec, bool) {
	for _, cg := range cgs {
		if cg == nil {
			continue
		}
		text := cg.Text()
		i := strings.Index(strings.ToLower(text), "guarded by ")
		if i < 0 {
			continue
		}
		tok := text[i+len("guarded by "):]
		if j := strings.IndexAny(tok, " \t\n,;:()"); j >= 0 {
			tok = tok[:j]
		}
		tok = strings.TrimRight(tok, ".")
		if tok == "" {
			continue
		}
		spec := guardSpec{display: tok, mu: tok}
		if k := strings.LastIndex(tok, "."); k >= 0 {
			spec.mu = tok[k+1:]
			spec.dotted = true
		}
		return spec, true
	}
	return guardSpec{}, false
}

// fieldOf resolves sel to the struct-field object it selects, or nil for
// method selections, package qualifiers, and unresolved expressions.
func fieldOf(pkg *Package, sel *ast.SelectorExpr) types.Object {
	if pkg.Info == nil {
		return nil
	}
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// freshObjects returns the locals of fd whose every assignment is a
// fresh allocation (&T{...}, T{...}, new(T)): their fields cannot be
// shared with another goroutine yet, so constructor-style writes are
// exempt from guardedby.
func freshObjects(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	if pkg.Info == nil {
		return nil
	}
	fresh := map[types.Object]bool{}
	tainted := map[types.Object]bool{}
	mark := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pkg.Info.ObjectOf(id)
		if obj == nil || obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
			return // not a local of this function
		}
		if rhs != nil && isFreshAlloc(rhs) {
			fresh[obj] = true
		} else {
			tainted[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					mark(n.Lhs[i], n.Rhs[i])
				}
			} else {
				for _, l := range n.Lhs {
					mark(l, nil)
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					mark(name, n.Values[i])
				}
			}
		}
		return true
	})
	for o := range tainted {
		delete(fresh, o)
	}
	return fresh
}

func isFreshAlloc(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.AND && isFreshAlloc(e.X)
	case *ast.CallExpr:
		return calleeName(e) == "new"
	}
	return false
}

// baseIsFresh reports whether the access goes directly through a fresh
// local (w.field with w fresh). Deeper chains (w.inner.field) are not
// exempt: the inner object may be shared even when w is not.
func baseIsFresh(pkg *Package, e ast.Expr, fresh map[types.Object]bool) bool {
	if len(fresh) == 0 {
		return false
	}
	if s, ok := ast.Unparen(e).(*ast.StarExpr); ok {
		e = s.X
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && fresh[pkg.Info.ObjectOf(id)]
}
