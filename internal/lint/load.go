package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package (non-test files only — the
// rules target library and binary code, not tests).
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check failures; analysis proceeds on
	// the partial information (go build is the authoritative gate).
	TypeErrors []error
}

// Name returns the package name ("main" for binaries).
func (p *Package) Name() string {
	if p.Types != nil {
		return p.Types.Name()
	}
	if len(p.Files) > 0 {
		return p.Files[0].Name.Name
	}
	return ""
}

// TypeOf returns the static type of e, or nil when type information is
// unavailable (analyzers must degrade gracefully).
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ValueOf reports whether e denotes a value (not a type or package name)
// and returns its type.
func (p *Package) ValueOf(e ast.Expr) (types.Type, bool) {
	if p.Info == nil {
		return nil, false
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type, tv.IsValue()
	}
	if id, ok := e.(*ast.Ident); ok {
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if _, isVar := obj.(*types.Var); isVar {
			return obj.Type(), true
		}
	}
	return nil, false
}

// The standard-library importer is shared process-wide: type-checking the
// stdlib from source ($GOROOT/src) is the expensive part of a load, and
// its results are position-independent. Cgo is disabled so packages like
// net resolve to their pure-Go variants, which the source importer can
// check without invoking the cgo tool.
var (
	stdOnce sync.Once
	stdImp  types.ImporterFrom
	stdFset = token.NewFileSet()
)

func stdImporter() types.ImporterFrom {
	stdOnce.Do(func() {
		build.Default.CgoEnabled = false
		stdImp = importer.ForCompiler(stdFset, "source", nil).(types.ImporterFrom)
	})
	return stdImp
}

// Loader loads and type-checks packages of one module from source, using
// only the standard library. Module-local imports are resolved by mapping
// the import path under the module root; everything else goes to the
// source importer.
type Loader struct {
	Fset    *token.FileSet
	modPath string
	modDir  string

	pkgs  map[string]*Package
	extra map[string]string // fixture import path -> dir
}

// NewLoader creates a loader rooted at modDir (the directory holding
// go.mod).
func NewLoader(modDir string) (*Loader, error) {
	abs, err := filepath.Abs(modDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:    stdFset,
		modPath: modPath,
		modDir:  abs,
		pkgs:    map[string]*Package{},
		extra:   map[string]string{},
	}, nil
}

// ModulePath returns the module path of the loaded module.
func (l *Loader) ModulePath() string { return l.modPath }

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if dir, ok := l.extra[path]; ok {
		p, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return stdImporter().ImportFrom(path, srcDir, 0)
}

func (l *Loader) dirFor(importPath string) string {
	if importPath == l.modPath {
		return l.modDir
	}
	rel := strings.TrimPrefix(importPath, l.modPath+"/")
	return filepath.Join(l.modDir, filepath.FromSlash(rel))
}

func (l *Loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	return l.loadDir(l.dirFor(importPath), importPath)
}

// LoadDir loads the package in dir under an explicit import path. It is
// the entry point for fixture packages outside the module tree.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	l.extra[importPath] = dir
	return l.loadDir(dir, importPath)
}

func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	// Publish before checking: mutually-importing test fixtures cannot
	// occur in valid Go, but a re-entrant load of the same path must not
	// recurse forever on a broken tree.
	l.pkgs[importPath] = pkg
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, pkg.Info)
	if err != nil && tpkg == nil {
		delete(l.pkgs, importPath)
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// LoadPatterns loads packages named by go-style patterns relative to the
// module root: "./..." (everything), "./dir/..." (a subtree), or a plain
// directory. Results are sorted by import path.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(l.modDir, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			if err := walkPackageDirs(root, dirs); err != nil {
				return nil, err
			}
			continue
		}
		dirs[filepath.Join(l.modDir, filepath.FromSlash(pat))] = true
	}
	var paths []string
	for dir := range dirs {
		rel, err := filepath.Rel(l.modDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.modDir)
		}
		if rel == "." {
			paths = append(paths, l.modPath)
		} else {
			paths = append(paths, l.modPath+"/"+filepath.ToSlash(rel))
		}
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walkPackageDirs collects directories containing non-test Go files,
// skipping testdata, vendor, and hidden/underscore directories.
func walkPackageDirs(root string, out map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			out[filepath.Dir(path)] = true
		}
		return nil
	})
}
