// Package ctxcanceltd is a ctxcancel rule fixture.
package ctxcanceltd

import (
	"context"
	"time"
)

func use(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// deferredRelease is the canonical good shape.
func deferredRelease(parent context.Context) error {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	return use(ctx)
}

// declaredThenAssigned mirrors the coordinator: the cancel var is declared
// up front, assigned inside a branch, and deferred right there.
func declaredThenAssigned(parent context.Context, budget time.Duration) error {
	ctx := parent
	var cancel context.CancelFunc
	if budget > 0 {
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	return use(ctx)
}

// straightLineCall releases without defer, but as a sibling statement with
// nothing in between that can divert control.
func straightLineCall(parent context.Context) error {
	ctx, cancel := context.WithDeadline(parent, time.Now().Add(time.Second))
	err := use(ctx)
	cancel()
	return err
}

// escapesToCaller hands the cancel func out; the caller owns the release.
func escapesToCaller(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	return ctx, cancel
}

// escapesIntoClosure releases from a cleanup closure.
func escapesIntoClosure(parent context.Context) (context.Context, func()) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	return ctx, func() { cancel() }
}

// withCancelOutOfScope: plain WithCancel arms no timer and is not this
// rule's business (ctxflow and vet cover it).
func withCancelOutOfScope(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	return use(ctx)
}

// discarded throws the cancel func away entirely.
func discarded(parent context.Context) error {
	ctx, _ := context.WithTimeout(parent, time.Second) // want ctxcancel
	return use(ctx)
}

// neverCalled binds the cancel func but never releases it.
func neverCalled(parent context.Context) error {
	ctx, cancel := context.WithTimeout(parent, time.Second) // want ctxcancel
	_ = cancel
	return use(ctx)
}

// conditionalOnly releases on one branch and leaks on the other.
func conditionalOnly(parent context.Context, eager bool) error {
	ctx, cancel := context.WithTimeout(parent, time.Second) // want ctxcancel
	if eager {
		cancel()
	}
	return use(ctx)
}

// earlyReturnSkips has a return between the assignment and the release, so
// the error path exits with the timer still armed.
func earlyReturnSkips(parent context.Context) error {
	ctx, cancel := context.WithDeadline(parent, time.Now().Add(time.Second)) // want ctxcancel
	if err := use(ctx); err != nil {
		return err
	}
	cancel()
	return nil
}

// suppressed shows the escape hatch for a justified violation.
func suppressed(parent context.Context) context.Context {
	//lint:ignore ctxcancel fixture exercises suppression
	ctx, _ := context.WithTimeout(parent, time.Second)
	return ctx
}
