// Package goberrtd is a goberr rule fixture.
package goberrtd

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/gob"
)

func discardedEncode(buf *bytes.Buffer) {
	enc := gob.NewEncoder(buf)
	enc.Encode(42) // want goberr
}

func blankEncode(buf *bytes.Buffer) {
	var v int
	dec := gob.NewDecoder(buf)
	_ = dec.Decode(&v) // want goberr
}

func discardedFlush(buf *bytes.Buffer) {
	bw := bufio.NewWriter(buf)
	bw.Flush() // want goberr
}

func deferredFlush(buf *bytes.Buffer) {
	bw := bufio.NewWriter(buf)
	defer bw.Flush() // want goberr
	_, _ = bw.WriteString("x")
}

func checkedEncode(buf *bytes.Buffer) error {
	enc := gob.NewEncoder(buf)
	if err := enc.Encode(42); err != nil {
		return err
	}
	return bufio.NewWriter(buf).Flush()
}

// voidFlush exercises the type check: csv.Writer.Flush returns nothing,
// so discarding "its result" is not a finding (csv errors surface via
// Error()).
func voidFlush(buf *bytes.Buffer) error {
	cw := csv.NewWriter(buf)
	cw.Flush()
	return cw.Error()
}

func suppressedEncode(buf *bytes.Buffer) {
	enc := gob.NewEncoder(buf)
	//lint:ignore goberr fixture: best-effort trailer, stream already failed
	enc.Encode(42)
}
