// Package ctxflowtd is a ctxflow rule fixture.
package ctxflowtd

import "context"

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// dropsContext never mentions its ctx: the caller's cancellation dies here.
func dropsContext(ctx context.Context, n int) int { // want ctxflow
	return n * 2
}

// propagates hands the ctx to the downstream call — the happy path.
func propagates(ctx context.Context) error {
	return work(ctx)
}

// derives builds a child context; deriving counts as propagation.
func derives(ctx context.Context) error {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(child)
}

// capturedByClosure propagates through a goroutine closure.
func capturedByClosure(ctx context.Context) error {
	errc := make(chan error, 1)
	go func() { errc <- work(ctx) }()
	return <-errc
}

// blankDiscard declares the drop in its signature: exempt.
func blankDiscard(_ context.Context, n int) int {
	return n + 1
}

// mintsRoot uses its parameter but still severs the chain for the
// downstream call with a fresh root.
func mintsRoot(ctx context.Context) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return work(context.Background()) // want ctxflow
}

// mintsTODO is the same defect spelled TODO.
func mintsTODO(ctx context.Context) error {
	_ = ctx.Err()
	return work(context.TODO()) // want ctxflow
}

// noParamRootIsFine: without a ctx parameter there is nothing to sever.
func noParamRootIsFine() error {
	return work(context.Background())
}

// suppressed documents a deliberate detach.
func suppressed(ctx context.Context) error {
	_ = ctx.Err()
	//lint:ignore ctxflow cleanup must outlive the request on purpose
	return work(context.Background())
}
