// Package netdl is a netdeadline rule fixture: positive, negative, and
// suppressed cases. Trailing want-markers are asserted by lint_test.go.
package netdl

import (
	"encoding/gob"
	"net"
	"time"
)

func readNoDeadline(c net.Conn) error { // want netdeadline
	buf := make([]byte, 4)
	_, err := c.Read(buf)
	return err
}

func encodeNoDeadline(c net.Conn) error { // want netdeadline
	return gob.NewEncoder(c).Encode("x")
}

func readWithDeadline(c net.Conn) error {
	if err := c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	buf := make([]byte, 4)
	_, err := c.Read(buf)
	return err
}

func writeViaHelper(c net.Conn) error {
	armDeadline(c)
	_, err := c.Write([]byte("x"))
	return err
}

// armDeadline itself references the conn but performs no I/O, so it is not
// flagged; its name satisfies the *Deadline helper convention for callers.
func armDeadline(c net.Conn) {
	_ = c.SetDeadline(time.Now().Add(time.Second))
}

// noConnInvolved encodes to a non-conn sink; the rule must not fire.
func noConnInvolved(enc *gob.Encoder) error {
	return enc.Encode("x")
}

//lint:ignore netdeadline fixture: deadline ownership is documented to live with the caller
func suppressedWrite(c net.Conn) error {
	_, err := c.Write([]byte("x"))
	return err
}
