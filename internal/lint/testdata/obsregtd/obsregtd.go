// Package obsregtd is an obsreg rule fixture: it defines a local Registry
// with the get-or-create Histogram shape so the rule can match the
// receiver by type name.
package obsregtd

// Registry mimics the observability registry's get-or-create surface.
type Registry struct{}

// Histogram is get-or-create: the first registration wins the buckets.
func (r *Registry) Histogram(name string, buckets []float64) *int { return nil }

var buckets = []float64{0.1, 1}

const latencyName = "rpc.phase.encode"

func firstSite(r *Registry) {
	r.Histogram(latencyName, buckets)        // first registration: fine
	r.Histogram("rpc.call_seconds", buckets) // fine, single site
}

func duplicateSite(r *Registry) {
	r.Histogram(latencyName, []float64{5, 10}) // want obsreg
	r.Histogram("rpc."+"call_seconds", nil)    // want obsreg
}

func dynamicNamesExempt(r *Registry, reqType string) {
	// Built at run time: the loop body IS the single shared call site.
	r.Histogram("rpc.requests."+reqType, buckets)
	r.Histogram("rpc.requests."+reqType, buckets)
}

type notRegistry struct{}

func (notRegistry) Histogram(name string, buckets []float64) {}

func otherReceiverExempt(n notRegistry) {
	n.Histogram("rpc.phase.encode", nil)
	n.Histogram("rpc.phase.encode", nil)
}
