// Package sleeptd is a sleepcancel rule fixture: positive, negative, and
// suppressed cases. Trailing want-markers are asserted by lint_test.go.
package sleeptd

import (
	"time"
	clock "time"
)

func bareSleep() {
	time.Sleep(time.Second) // want sleepcancel
}

func aliasedSleep() {
	clock.Sleep(clock.Millisecond) // want sleepcancel
}

func sleepInGoroutine(done chan struct{}) {
	go func() {
		time.Sleep(time.Minute) // want sleepcancel
		close(done)
	}()
	<-done
}

// timerWithCancel is the sanctioned pattern: the wait loses the race
// against the cancellation channel instead of outliving it.
func timerWithCancel(done <-chan struct{}) bool {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// notTheTimePackage exercises name resolution: a local Sleep method must
// not trip an analyzer that merely pattern-matches ".Sleep".
type pacer struct{}

func (pacer) Sleep(time.Duration) {}

func localSleepMethod() {
	var p pacer
	p.Sleep(time.Second)
}

func suppressedSleep() {
	//lint:ignore sleepcancel fixture: demonstrating a justified suppression
	time.Sleep(time.Millisecond)
}
