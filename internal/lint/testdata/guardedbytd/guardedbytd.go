// Package guardedbytd is a guardedby rule fixture: fields annotated
// `// guarded by <mu>` must only be accessed with the mutex held.
package guardedbytd

import "sync"

// registry mimics a mutex-guarded struct.
type registry struct {
	mu sync.Mutex
	// count is the running total.
	count int // guarded by mu
	// name is set at construction and immutable after; unannotated.
	name string
}

func (r *registry) good() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

func (r *registry) bad() int {
	return r.count // want guardedby
}

func (r *registry) badWrite() {
	r.count = 1 // want guardedby
}

func (r *registry) unlockInBranch(cond bool) int {
	r.mu.Lock()
	if cond {
		r.mu.Unlock()
		return -1
	}
	n := r.count // mu is held on this path: no finding
	r.mu.Unlock()
	return n
}

func (r *registry) afterUnlock() int {
	r.mu.Lock()
	n := r.count
	r.mu.Unlock()
	return n + r.count // want guardedby
}

// countLocked returns the total; the *Locked suffix promises the caller
// holds r.mu.
func (r *registry) countLocked() int { return r.count }

// peek reads the total.
//
// Callers hold r.mu for the duration.
func (r *registry) peek() int { return r.count }

func (r *registry) goroutineDoesNotInherit() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		_ = r.count // want guardedby
	}()
}

func newRegistry(name string) *registry {
	r := &registry{}
	r.count = 1 // fresh object: constructor writes are exempt
	r.name = name
	return r
}

func (r *registry) suppressedRead() int {
	//lint:ignore guardedby single-goroutine init path, caller documents exclusivity
	return r.count
}

// rw covers RWMutex locking and cross-struct (dotted) annotations.
type rw struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

// item is owned by an rw container.
type item struct {
	hits int // guarded by rw.mu
}

func (s *rw) read(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[k]
}

func (s *rw) crossStruct(it *item) {
	s.mu.Lock()
	it.hits++ // rw.mu held: the dotted annotation matches by mutex name
	s.mu.Unlock()
	it.hits++ // want guardedby
}

var (
	pkgMu sync.Mutex
	// pkgReg maps names to ids.
	pkgReg = map[string]int{} // guarded by pkgMu
)

func pkgGood(k string) int {
	pkgMu.Lock()
	defer pkgMu.Unlock()
	return pkgReg[k]
}

func pkgBad(k string) int {
	return pkgReg[k] // want guardedby
}
