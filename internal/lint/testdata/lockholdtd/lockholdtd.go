// Package lockholdtd is a lockhold rule fixture: no blocking operation
// (channel op, Wait, RPC, conn I/O, dial) while a mutex is held.
package lockholdtd

import (
	"net"
	"sync"
)

// Client mimics the fedrpc client type: the rule matches exchange
// methods by receiver type name.
type Client struct{}

// Call mimics a blocking exchange.
func (c *Client) Call(req string) error { return nil }

// CallCtx mimics a blocking exchange.
func (c *Client) CallCtx(req string) error { return nil }

type svc struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
	cl *Client
}

func (s *svc) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want lockhold
	s.mu.Unlock()
}

func (s *svc) sendAfterUnlock(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

func (s *svc) recvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want lockhold
}

func (s *svc) rpcUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.Call("x") // want lockhold
}

func (s *svc) waitUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want lockhold
	s.mu.Unlock()
}

func (s *svc) waitOutsideLock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *svc) selectUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want lockhold
	case v := <-s.ch:
		return v
	}
}

func (s *svc) selectWithDefaultIsFine() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		return v
	default:
		return 0
	}
}

func (s *svc) connWriteUnderLock(c net.Conn, p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.Write(p) // want lockhold
}

func (s *svc) dialUnderLock(addr string) (net.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return net.Dial("tcp", addr) // want lockhold
}

func (s *svc) rangeChanUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for v := range s.ch { // want lockhold
		n += v
	}
	return n
}

func (s *svc) suppressed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockhold exchange serializer: holding mu across the exchange is this type's contract
	return s.cl.CallCtx("x")
}

func (s *svc) unlockInBranchThenSend(cond bool, v int) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		s.ch <- v
		return
	}
	s.mu.Unlock()
	s.ch <- v
}
