// Package goroleaktd is a goroleak rule fixture.
package goroleaktd

import "sync"

func fireAndForget() {
	go func() {}() // want goroleak
}

func joinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

func joinedByChannel() int {
	results := make(chan int, 1)
	go func() { results <- 1 }()
	return <-results
}

func joinedBySelect(done chan struct{}) {
	go func() { close(done) }()
	select {
	case <-done:
	}
}

func joinedByRange() int {
	ch := make(chan int, 2)
	go func() {
		ch <- 1
		ch <- 2
		close(ch)
	}()
	sum := 0
	for v := range ch {
		sum += v
	}
	return sum
}

// namedCall is outside the rule's scope: only `go func` literals are
// checked (named launches are typically long-lived subsystem loops whose
// lifecycle lives elsewhere).
func namedCall() {
	go helper()
}

func helper() {}

func suppressed() {
	//lint:ignore goroleak fixture: deliberate fire-and-forget
	go func() {}()
}
