// Package main is the sleepcancel exemption fixture: binaries may pace
// top-level loops with bare sleeps (nothing above them to cancel), so the
// rule must stay silent here.
package main

import "time"

func main() {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond)
	}
}
