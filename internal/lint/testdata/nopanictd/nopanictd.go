// Package nopanictd is a nopanic rule fixture.
package nopanictd

import "errors"

func barePanic() { panic("boom") } // want nopanic

func formattedPanic(n int) {
	if n < 0 {
		panic(errors.New("negative")) // want nopanic
	}
}

// MustParse may panic: the Must prefix is the caller's explicit opt-in.
func MustParse(s string) int {
	if s == "" {
		panic("empty input")
	}
	return len(s)
}

// rethrow re-panics a recovered foreign value — the one legitimate panic
// in a recovery shim.
func rethrow(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

func returnsError(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}

func suppressed() {
	//lint:ignore nopanic fixture: sanctioned panic with a recorded justification
	panic("quiet")
}

// panicInLiteral must be attributed to the literal, not the decl.
func panicInLiteral() func() {
	return func() {
		panic("inner") // want nopanic
	}
}
