package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ioMethods are the I/O entry points whose callers must bound blocking:
// raw conn reads/writes and the gob encode/decode calls layered on top of
// a connection.
var ioMethods = map[string]bool{
	"Read":   true,
	"Write":  true,
	"Encode": true,
	"Decode": true,
}

// NetDeadlineAnalyzer enforces the federation-protocol liveness invariant:
// in the target packages, any function that touches a net.Conn-like value
// and performs network I/O (Read/Write/Encode/Decode) must also arm a
// deadline in the same function — directly via SetDeadline /
// SetReadDeadline / SetWriteDeadline, or through a helper whose name
// contains "Deadline" (e.g. armDeadline). Without a deadline, a dead peer
// blocks the caller forever (the hang-forever failure mode of the paper's
// WAN setting).
//
// The check is a per-function heuristic: "conn-derived" means the function
// references any value whose method set has SetReadDeadline,
// SetWriteDeadline, and RemoteAddr (net.Conn, *tls.Conn, wrapped conns —
// but not *os.File, which lacks RemoteAddr).
func NetDeadlineAnalyzer(targetPkgs []string) *Analyzer {
	targets := map[string]bool{}
	for _, p := range targetPkgs {
		targets[p] = true
	}
	return &Analyzer{
		Name: "netdeadline",
		Doc:  "conn I/O in federation-runtime packages must be guarded by a deadline",
		Run: func(pass *Pass) {
			if len(targets) > 0 && !targets[pass.Pkg.Path] {
				return
			}
			for _, file := range pass.Pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					checkDeadlines(pass, fd)
				}
			}
		},
	}
}

func checkDeadlines(pass *Pass, fd *ast.FuncDecl) {
	var connUsed, deadlineArmed bool
	firstIO := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			name := calleeName(e)
			switch {
			case containsDeadline(name):
				deadlineArmed = true
			case ioMethods[name]:
				if firstIO == "" {
					firstIO = name
				}
			}
		case ast.Expr:
			if t, isValue := pass.Pkg.ValueOf(e); isValue && isConnLike(t, pass.Pkg) {
				connUsed = true
			}
		}
		return true
	})
	if connUsed && firstIO != "" && !deadlineArmed {
		pass.Reportf(fd.Name.Pos(),
			"function %s performs conn I/O (%s) without setting a deadline; call SetDeadline/SetReadDeadline/SetWriteDeadline or a *Deadline helper, or a dead peer hangs it forever",
			fd.Name.Name, firstIO)
	}
}

func containsDeadline(name string) bool {
	return strings.Contains(name, "Deadline")
}

// isConnLike reports whether t behaves like a network connection: its
// method set (value or pointer) carries the deadline setters plus
// RemoteAddr.
func isConnLike(t types.Type, pkg *Package) bool {
	if t == nil {
		return false
	}
	return hasMethod(t, "SetReadDeadline", pkg) &&
		hasMethod(t, "SetWriteDeadline", pkg) &&
		hasMethod(t, "RemoteAddr", pkg)
}

func hasMethod(t types.Type, name string, pkg *Package) bool {
	var scope *types.Package
	if pkg.Types != nil {
		scope = pkg.Types
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, scope, name)
	_, ok := obj.(*types.Func)
	return ok
}
