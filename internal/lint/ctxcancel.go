package lint

import (
	"go/ast"
	"go/types"
)

// CtxCancelAnalyzer enforces that the cancel func returned by
// context.WithTimeout / context.WithDeadline (and their *Cause variants) is
// released on every path. These constructors arm a timer that keeps the
// derived context — and through its done channel everything select-ing on
// it — alive until the deadline fires; a dropped or conditionally-called
// cancel leaks that timer on the paths that skip it. go vet's lostcancel
// catches the never-used case; this rule is stricter: a cancel that is
// called but not deferred must be a sibling statement of the assignment
// with no return or branch between them, because anything weaker means
// some path exits the function with the timer still armed.
//
// Accepted shapes:
//
//	ctx, cancel := context.WithTimeout(parent, d); defer cancel()
//	var cancel context.CancelFunc; ctx, cancel = context.WithTimeout(...); defer cancel()
//	ctx, cancel := context.WithTimeout(parent, d); use(ctx); cancel()   // same block, nothing diverts in between
//	return ctx, cancel                                                   // escape: the caller owns the release
func CtxCancelAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctxcancel",
		Doc:  "context.WithTimeout/WithDeadline cancel funcs must be deferred, escape to the caller, or be called on every path",
		Run: func(pass *Pass) {
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					switch fn := n.(type) {
					case *ast.FuncDecl:
						if fn.Body != nil {
							checkCtxCancel(pass, fn.Body)
						}
					case *ast.FuncLit:
						checkCtxCancel(pass, fn.Body)
					}
					return true
				})
			}
		},
	}
}

// ctxCancelSite is one deadline-context construction inside a function
// body.
type ctxCancelSite struct {
	assign *ast.AssignStmt
	fname  string     // WithTimeout, WithDeadline, ...
	cancel *ast.Ident // the Lhs cancel identifier (possibly blank)
	obj    types.Object
}

// checkCtxCancel analyzes one function body in isolation. Sites inside
// nested function literals belong to the literal's own invocation of this
// check; uses of an outer cancel inside a nested literal count as escapes
// for the outer site (the closure owns the release).
func checkCtxCancel(pass *Pass, body *ast.BlockStmt) {
	for _, site := range ctxCancelSites(pass, body) {
		if site.cancel.Name == "_" {
			pass.Reportf(site.cancel.Pos(),
				"cancel func of context.%s discarded; its timer leaks until the parent context ends — assign and defer it", site.fname)
			continue
		}
		if site.obj == nil {
			continue // unresolvable (type error); stay quiet
		}
		deferred, escaped, calls := ctxCancelUses(pass, body, site)
		switch {
		case deferred || escaped:
		case len(calls) == 0:
			pass.Reportf(site.cancel.Pos(),
				"cancel func of context.%s is never called; defer it so the timer is released on every path", site.fname)
		case !ctxCancelAllPaths(body, site.assign, calls):
			pass.Reportf(site.cancel.Pos(),
				"cancel func of context.%s is not called on every path; defer it, or call it as a sibling of the assignment with no return or branch in between", site.fname)
		}
	}
}

// ctxCancelSites finds the WithTimeout/WithDeadline assignments directly
// inside body, skipping nested function literals.
func ctxCancelSites(pass *Pass, body *ast.BlockStmt) []ctxCancelSite {
	var sites []ctxCancelSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 2 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fname, ok := deadlineCtxConstructor(pass, call)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[1]).(*ast.Ident)
		if !ok {
			return true // stored straight into a field: the holder owns it
		}
		obj := pass.Pkg.Info.Defs[id]
		if obj == nil {
			obj = pass.Pkg.Info.Uses[id]
		}
		sites = append(sites, ctxCancelSite{assign: as, fname: fname, cancel: id, obj: obj})
		return true
	})
	return sites
}

// deadlineCtxConstructor reports whether call is one of the context
// constructors that arm a timer, resolving the package alias-proof.
func deadlineCtxConstructor(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "WithTimeout", "WithDeadline", "WithTimeoutCause", "WithDeadlineCause":
	default:
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || pass.Pkg.Info == nil {
		return "", false
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}

// ctxCancelUses classifies every reference to the site's cancel object in
// body: a `defer cancel()`, direct call statements, or anything else — an
// escape (passed on, stored, returned, captured by a closure), which hands
// the release duty to someone this analysis cannot see and is accepted.
func ctxCancelUses(pass *Pass, body *ast.BlockStmt, site ctxCancelSite) (deferred, escaped bool, calls []ast.Stmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			// Any reference from a nested closure is an escape: the
			// closure owns the release, and when it runs is beyond this
			// per-function analysis.
			ast.Inspect(st.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == site.obj {
					escaped = true
				}
				return !escaped
			})
			return false
		case *ast.DeferStmt:
			if callTargets(pass, st.Call, site.obj) {
				deferred = true
				return false
			}
		case *ast.ExprStmt:
			if ce, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && callTargets(pass, ce, site.obj) {
				calls = append(calls, st)
				return false
			}
		case *ast.AssignStmt:
			// `_ = cancel` silences the compiler's unused-variable check
			// without releasing anything; it is not an escape.
			if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
				lhs, lok := ast.Unparen(st.Lhs[0]).(*ast.Ident)
				rhs, rok := ast.Unparen(st.Rhs[0]).(*ast.Ident)
				if lok && rok && lhs.Name == "_" && pass.Pkg.Info.Uses[rhs] == site.obj {
					return false
				}
			}
		case *ast.Ident:
			if pass.Pkg.Info.Uses[st] == site.obj && st != site.cancel {
				escaped = true
			}
		}
		return true
	})
	return deferred, escaped, calls
}

// callTargets reports whether call invokes exactly the given object.
func callTargets(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && pass.Pkg.Info.Uses[id] == obj
}

// ctxCancelAllPaths reports whether one of the direct cancel calls is a
// sibling statement of the assignment — same statement list, later index —
// with nothing in between that can divert control (return, break,
// continue, goto). That is the one shape where a plain call provably runs
// whenever the assignment did; everything else should defer.
func ctxCancelAllPaths(body *ast.BlockStmt, assign *ast.AssignStmt, calls []ast.Stmt) bool {
	isCall := map[ast.Stmt]bool{}
	for _, c := range calls {
		isCall[c] = true
	}
	for _, list := range stmtListsIn(body) {
		i := -1
		for idx, st := range list {
			if st == ast.Stmt(assign) {
				i = idx
				break
			}
		}
		if i < 0 {
			continue
		}
		for j := i + 1; j < len(list); j++ {
			if isCall[list[j]] {
				return !divertsControl(list[i+1 : j])
			}
		}
	}
	return false
}

// stmtListsIn collects every statement list in body — block bodies and
// switch/select clause bodies — skipping nested function literals.
func stmtListsIn(body *ast.BlockStmt) [][]ast.Stmt {
	var lists [][]ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			lists = append(lists, st.List)
		case *ast.CaseClause:
			lists = append(lists, st.Body)
		case *ast.CommClause:
			lists = append(lists, st.Body)
		}
		return true
	})
	return lists
}

// divertsControl reports whether any statement in the slice contains a
// return, break, continue, or goto (outside nested function literals):
// control reaching the first statement might then skip the rest of the
// list.
func divertsControl(stmts []ast.Stmt) bool {
	diverts := false
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt, *ast.BranchStmt:
				diverts = true
			}
			return !diverts
		})
		if diverts {
			return true
		}
	}
	return false
}
