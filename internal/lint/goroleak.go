package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeakAnalyzer is a leak heuristic for library packages: a `go func`
// literal must be joined by some mechanism reachable in the same enclosing
// function — a WaitGroup/errgroup Wait, a channel receive, a range over a
// channel, or a select. A goroutine launched with none of these outlives
// the call it was born in, which in a standing federated worker is a slow
// leak under sustained load.
//
// Binaries (package main) are exempt: their goroutines die with the
// process. Deliberate fire-and-forget sites use
// //lint:ignore goroleak <reason>.
func GoroLeakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc:  "go func literals in library code must be joined in the launching function",
		Run: func(pass *Pass) {
			if pass.Pkg.Name() == "main" {
				return
			}
			for _, file := range pass.Pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					checkGoroutines(pass, fd)
				}
			}
		},
	}
}

func checkGoroutines(pass *Pass, fd *ast.FuncDecl) {
	var launches []*ast.GoStmt
	joined := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			if _, ok := ast.Unparen(e.Call.Fun).(*ast.FuncLit); ok {
				launches = append(launches, e)
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				joined = true // channel receive
			}
		case *ast.SelectStmt:
			joined = true
		case *ast.RangeStmt:
			if t := pass.Pkg.TypeOf(e.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.CallExpr:
			if calleeName(e) == "Wait" {
				joined = true // sync.WaitGroup / errgroup style
			}
		}
		return true
	})
	if joined {
		return
	}
	for _, g := range launches {
		pass.Reportf(g.Pos(),
			"goroutine launched without a join mechanism (WaitGroup/errgroup Wait, channel receive, or select) in %s; it can leak under sustained load",
			fd.Name.Name)
	}
}
