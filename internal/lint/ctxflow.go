package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces context propagation: a function that receives a
// context.Context parameter must let it flow onward. Two defects are
// reported (the ROADMAP's ctxflow item):
//
//   - a named ctx parameter that the body never mentions — the caller's
//     cancellation and deadline silently stop at this frame, which in the
//     federated path means a coordinator timeout never reaches the worker
//     UDF it is supposed to bound;
//   - a context.Background()/context.TODO() call inside such a function —
//     minting a fresh root instead of deriving from the parameter severs
//     the chain just as thoroughly while looking plumbed.
//
// A parameter named _ is an explicit, visible discard and is exempt (the
// signature-compatibility idiom). Deliberate roots in ctx-taking functions
// use //lint:ignore ctxflow <reason>.
func CtxFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "a context.Context parameter must propagate, not be dropped or replaced by a fresh root",
		Run: func(pass *Pass) {
			for _, file := range pass.Pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil || fd.Type.Params == nil {
						continue
					}
					checkCtxFlow(pass, fd)
				}
			}
		},
	}
}

func checkCtxFlow(pass *Pass, fd *ast.FuncDecl) {
	var ctxParams []*ast.Ident
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue // explicit discard, visible in the signature
			}
			ctxParams = append(ctxParams, name)
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	// One walk serves both checks: mark every object the body mentions and
	// flag fresh context roots. Nested function literals count as uses and
	// are checked with the enclosing function's parameters — a ctx captured
	// by a goroutine closure has propagated.
	used := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			if pass.Pkg.Info != nil {
				if obj := pass.Pkg.Info.Uses[e]; obj != nil {
					used[obj] = true
				}
			}
		case *ast.CallExpr:
			if name, ok := contextRootCall(pass, e); ok {
				pass.Reportf(e.Pos(),
					"context.%s() inside %s, which already receives a context parameter: deriving from a fresh root severs the caller's cancellation; propagate the parameter instead",
					name, fd.Name.Name)
			}
		}
		return true
	})
	if pass.Pkg.Info == nil {
		return
	}
	for _, p := range ctxParams {
		if def := pass.Pkg.Info.Defs[p]; def != nil && !used[def] {
			pass.Reportf(p.Pos(),
				"context parameter %s of %s is dropped: cancellation and deadlines stop here instead of reaching the downstream call (e.g. the worker UDF)",
				p.Name, fd.Name.Name)
		}
	}
}

// isContextType reports whether the expression denotes context.Context,
// resolved through the type checker (alias- and rename-proof) with an AST
// fallback for partially checked fixtures.
func isContextType(pass *Pass, expr ast.Expr) bool {
	if t := pass.Pkg.TypeOf(expr); t != nil {
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
		}
	}
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && id.Name == "context"
}

// contextRootCall reports whether the call mints a fresh context root —
// context.Background() or context.TODO() from the standard context package
// (package identifier resolved, not name-matched).
func contextRootCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || pass.Pkg.Info == nil {
		return "", false
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}
