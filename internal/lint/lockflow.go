package lint

// Lock-flow analysis shared by the guardedby and lockhold rules: a
// statement-ordered walk of a function body tracking which mutexes are
// held at each point. The tracking is intraprocedural and path-aware in
// the one way that matters for real code: each branch of an
// if/switch/select walks a copy of the held set, branches that terminate
// (return, break, panic) are discarded at the merge point, and surviving
// branches merge by intersection — so the ubiquitous
//
//	mu.Lock()
//	if cond {
//		mu.Unlock()
//		return
//	}
//	... // still holds mu
//
// idiom resolves without false positives. Loops walk their body once on a
// copy and intersect the exit state back in (the zero-iteration case).
//
// Function contracts seed the entry set: a name ending in "Locked" means
// the caller holds the relevant lock (wildcard), and a doc-comment line
// containing "callers hold <mu>" adds that specific lock.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// heldLock identifies one mutex the walk believes is held. base is an
// identity token for the receiver chain the mutex was locked through
// ("" for bare identifiers such as package-level mutexes); name is the
// mutex field or variable name.
type heldLock struct {
	base    string
	name    string
	display string // rendering for diagnostics, e.g. "c.connMu"
}

func (l heldLock) key() string { return l.base + "\x00" + l.name }

// heldSet is the set of locks held at a program point. all marks
// functions whose *Locked name promises the caller holds the relevant
// lock without naming it.
type heldSet struct {
	all   bool
	locks map[string]heldLock
}

func newHeldSet() *heldSet { return &heldSet{locks: map[string]heldLock{}} }

func (h *heldSet) clone() *heldSet {
	c := &heldSet{all: h.all, locks: make(map[string]heldLock, len(h.locks))}
	for k, v := range h.locks {
		c.locks[k] = v
	}
	return c
}

func (h *heldSet) add(l heldLock)    { h.locks[l.key()] = l }
func (h *heldSet) remove(l heldLock) { delete(h.locks, l.key()) }
func (h *heldSet) empty() bool       { return !h.all && len(h.locks) == 0 }

// intersect reduces h to the locks held in both sets: a merge point after
// branching control flow must assume the weaker side.
func (h *heldSet) intersect(o *heldSet) {
	switch {
	case o.all:
		return
	case h.all:
		h.all = false
		h.locks = make(map[string]heldLock, len(o.locks))
		for k, v := range o.locks {
			h.locks[k] = v
		}
	default:
		for k := range h.locks {
			if _, ok := o.locks[k]; !ok {
				delete(h.locks, k)
			}
		}
	}
}

// holds reports whether a lock on base's mutex name is held.
func (h *heldSet) holds(base, name string) bool {
	if h.all {
		return true
	}
	_, ok := h.locks[base+"\x00"+name]
	return ok
}

// holdsNamed reports whether any held lock's mutex name matches,
// regardless of the receiver it was locked through — cross-struct
// "guarded by Type.mu" annotations can only match by name.
func (h *heldSet) holdsNamed(name string) bool {
	if h.all {
		return true
	}
	for _, l := range h.locks {
		if l.name == name {
			return true
		}
	}
	return false
}

// displays returns the held locks' renderings, sorted, for diagnostics.
func (h *heldSet) displays() []string {
	out := make([]string, 0, len(h.locks))
	for _, l := range h.locks {
		out = append(out, l.display)
	}
	sort.Strings(out)
	if len(out) == 0 && h.all {
		out = []string{"a caller-held lock"}
	}
	return out
}

// lockVisitor observes interesting nodes (selector and identifier reads,
// calls, channel operations, range and select statements) together with
// the lock set held at that point. inDefer marks nodes whose evaluation
// is delayed to function return by defer.
type lockVisitor func(n ast.Node, held *heldSet, inDefer bool)

// walkLocks runs the lock-flow walk over fd's body.
func walkLocks(pkg *Package, fd *ast.FuncDecl, visit lockVisitor) {
	if fd.Body == nil {
		return
	}
	w := &lockWalker{pkg: pkg, visit: visit}
	held := newHeldSet()
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		held.all = true
	}
	for _, spec := range callersHoldSpecs(fd) {
		held.add(contractLock(pkg, fd, spec))
	}
	w.stmts(fd.Body.List, held)
}

type lockWalker struct {
	pkg   *Package
	visit lockVisitor
}

// stmts walks a statement list, mutating held in place, and reports
// whether control cannot fall off the end.
func (w *lockWalker) stmts(list []ast.Stmt, held *heldSet) bool {
	for _, s := range list {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *lockWalker) stmt(s ast.Stmt, held *heldSet) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if lk, acquire, ok := w.lockOp(call); ok {
				if acquire {
					held.add(lk)
				} else {
					held.remove(lk)
				}
				return false
			}
			if terminatingCall(call) {
				w.expr(s.X, held, false)
				return true
			}
		}
		w.expr(s.X, held, false)
	case *ast.DeferStmt:
		if _, acquire, ok := w.lockOp(s.Call); ok && !acquire {
			// defer mu.Unlock(): released at return; the lock stays
			// held through the rest of the function.
			return false
		}
		w.expr(s.Call, held, true)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.expr(a, held, false)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A spawned goroutine does not inherit the caller's locks.
			w.stmts(lit.Body.List, newHeldSet())
		} else {
			w.expr(s.Call.Fun, held, false)
		}
	case *ast.SendStmt:
		w.visit(s, held, false)
		w.expr(s.Chan, held, false)
		w.expr(s.Value, held, false)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held, false)
		}
		for _, e := range s.Lhs {
			w.expr(e, held, false)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held, false)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held, false)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave this straight-line region; dropping
		// the branch at merge points avoids false positives after loops
		// that unlock-and-break.
		return true
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held, false)
		body := held.clone()
		bodyTerm := w.stmts(s.Body.List, body)
		if s.Else == nil {
			if !bodyTerm {
				held.intersect(body)
			}
			return false
		}
		els := held.clone()
		elseTerm := w.stmt(s.Else, els)
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			*held = *els
		case elseTerm:
			*held = *body
		default:
			body.intersect(els)
			*held = *body
		}
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		if s.Cond != nil {
			w.expr(s.Cond, held, false)
		}
		body := held.clone()
		if !w.stmts(s.Body.List, body) {
			w.stmt(s.Post, body)
		}
		held.intersect(body) // the loop may run zero times
	case *ast.RangeStmt:
		w.visit(s, held, false) // lockhold: range over a channel blocks
		w.expr(s.X, held, false)
		body := held.clone()
		w.stmts(s.Body.List, body)
		held.intersect(body)
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		if s.Tag != nil {
			w.expr(s.Tag, held, false)
		}
		return w.caseClauses(s.Body, held, false)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		return w.caseClauses(s.Body, held, false)
	case *ast.SelectStmt:
		w.visit(s, held, false) // lockhold: select without default blocks
		return w.caseClauses(s.Body, held, true)
	}
	return false
}

// caseClauses walks switch/type-switch/select clause bodies, each on a
// copy of held, and merges surviving branches by intersection.
// exhaustive marks constructs where exactly one branch always runs
// (select); a switch is exhaustive only when it has a default clause.
// Reports terminated when the construct is exhaustive and every branch
// terminates.
func (w *lockWalker) caseClauses(body *ast.BlockStmt, held *heldSet, exhaustive bool) bool {
	var survivors []*heldSet
	hasDefault := false
	for _, cl := range body.List {
		branch := held.clone()
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				w.expr(e, branch, false)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			w.commStmt(cl.Comm, branch)
			stmts = cl.Body
		}
		if !w.stmts(stmts, branch) {
			survivors = append(survivors, branch)
		}
	}
	exhaustive = exhaustive || hasDefault
	if exhaustive && len(survivors) == 0 && len(body.List) > 0 {
		return true
	}
	if exhaustive && len(survivors) > 0 {
		merged := survivors[0]
		for _, s := range survivors[1:] {
			merged.intersect(s)
		}
		*held = *merged
		return false
	}
	// Not exhaustive: the no-case-taken fall-through keeps the incoming
	// set, so intersect the survivors into it.
	for _, s := range survivors {
		held.intersect(s)
	}
	return false
}

// commStmt walks a select communication statement. The channel operation
// itself is not reported — blocking in a select is attributed to the
// SelectStmt (and only when it has no default clause).
func (w *lockWalker) commStmt(s ast.Stmt, held *heldSet) {
	switch s := s.(type) {
	case nil:
	case *ast.SendStmt:
		w.expr(s.Chan, held, false)
		w.expr(s.Value, held, false)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.commExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held, false)
		}
	case *ast.ExprStmt:
		w.commExpr(s.X, held)
	}
}

func (w *lockWalker) commExpr(e ast.Expr, held *heldSet) {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		w.expr(u.X, held, false)
		return
	}
	w.expr(e, held, false)
}

// expr visits an expression tree, reporting interesting nodes. FuncLits
// run where they are written in this codebase (immediately, or via
// same-goroutine helpers), so they walk on a copy of the current set;
// go-statement literals are handled by the statement walk and start
// empty.
func (w *lockWalker) expr(e ast.Expr, held *heldSet, inDefer bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, held.clone())
			return false
		case *ast.SelectorExpr:
			w.visit(n, held, inDefer)
			w.expr(n.X, held, inDefer)
			return false
		case *ast.CallExpr:
			w.visit(n, held, inDefer)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.visit(n, held, inDefer)
			}
		case *ast.Ident:
			w.visit(n, held, inDefer)
		}
		return true
	})
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock calls on sync.Mutex or
// sync.RWMutex values and returns the lock identity and direction.
func (w *lockWalker) lockOp(call *ast.CallExpr) (lk heldLock, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return heldLock{}, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return heldLock{}, false, false
	}
	if !isMutexType(w.pkg.TypeOf(sel.X)) {
		return heldLock{}, false, false
	}
	lk = heldLock{display: types.ExprString(sel.X)}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		lk.base = exprToken(w.pkg, recv.X)
		lk.name = recv.Sel.Name
	case *ast.Ident:
		lk.name = recv.Name
	default:
		lk.base = exprToken(w.pkg, recv)
		lk.name = lk.display
	}
	return lk, acquire, true
}

// isMutexType reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// exprToken renders an identity token for a receiver chain. Identifiers
// resolve to their declaration position so the same variable matches
// under any spelling scope; everything else falls back to source text.
func exprToken(pkg *Package, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if pkg.Info != nil {
			if obj := pkg.Info.ObjectOf(e); obj != nil {
				return objToken(obj)
			}
		}
		return e.Name
	case *ast.SelectorExpr:
		return exprToken(pkg, e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprToken(pkg, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprToken(pkg, e.X)
		}
	}
	return types.ExprString(e)
}

func objToken(obj types.Object) string { return fmt.Sprintf("@%d", obj.Pos()) }

// terminatingCall recognizes calls that do not return: panic and the
// conventional fatal-exit helpers.
func terminatingCall(call *ast.CallExpr) bool {
	switch calleeName(call) {
	case "panic", "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
		return true
	}
	return false
}

// callersHoldSpecs extracts the lock expressions of "callers hold <mu>"
// (or "caller holds / callers must hold") doc-comment contracts.
func callersHoldSpecs(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	text := fd.Doc.Text()
	lower := strings.ToLower(text)
	var out []string
	for _, marker := range []string{"callers hold ", "caller holds ", "callers must hold ", "caller must hold "} {
		for base := 0; ; {
			i := strings.Index(lower[base:], marker)
			if i < 0 {
				break
			}
			start := base + i + len(marker)
			tok := text[start:]
			if j := strings.IndexAny(tok, " \t\n,;:)"); j >= 0 {
				tok = tok[:j]
			}
			if tok = strings.TrimRight(tok, "."); tok != "" {
				out = append(out, tok)
			}
			base = start
		}
	}
	return out
}

// contractLock resolves a "callers hold" spec ("mu", "c.mu",
// "s.replayMu") to a held lock, binding the base to the receiver or a
// parameter when the spec names one.
func contractLock(pkg *Package, fd *ast.FuncDecl, spec string) heldLock {
	lk := heldLock{display: spec, name: spec}
	base := ""
	if i := strings.LastIndex(spec, "."); i >= 0 {
		base, lk.name = spec[:i], spec[i+1:]
	}
	if base == "" {
		// Bare "callers hold mu" on a method means a receiver field.
		if obj := paramObj(pkg, fd, ""); obj != nil {
			lk.base = objToken(obj)
		}
		return lk
	}
	if obj := paramObj(pkg, fd, base); obj != nil {
		lk.base = objToken(obj)
	} else {
		lk.base = base
	}
	return lk
}

// paramObj resolves name among fd's receiver and parameters; an empty
// name resolves to the receiver.
func paramObj(pkg *Package, fd *ast.FuncDecl, name string) types.Object {
	if pkg.Info == nil {
		return nil
	}
	lists := []*ast.FieldList{fd.Recv, fd.Type.Params}
	for li, fl := range lists {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if id.Name == name || (name == "" && li == 0) {
					return pkg.Info.Defs[id]
				}
			}
		}
	}
	return nil
}
