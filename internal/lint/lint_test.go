package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureLoader returns a loader rooted at the module (two levels up from
// this package). Each test gets a fresh loader, but the standard-library
// importer is shared process-wide, so the expensive stdlib type-check
// happens once per `go test` run.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// wantSet scans the fixture directory for trailing "// want <rule>" markers
// and returns the expected findings as "file:line:rule" keys.
func wantSet(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			rule := strings.Fields(marker)[0]
			want[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, rule)] = true
		}
	}
	if len(want) == 0 {
		t.Fatalf("no want markers in %s: fixture is not exercising the rule", dir)
	}
	return want
}

// checkFixture loads testdata/<name>, runs the analyzer, and compares the
// findings against the fixture's want markers. Suppressed and negative
// cases are covered by the exact-set comparison: an unexpected finding on
// them fails the test.
func checkFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	pkg, err := fixtureLoader(t).LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", name, pkg.TypeErrors)
	}
	got := map[string]bool{}
	for _, f := range Run([]*Package{pkg}, []*Analyzer{a}) {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)] = true
	}
	want := wantSet(t, dir)
	for k := range want {
		if !got[k] {
			t.Errorf("missing finding %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected finding %s", k)
		}
	}
}

func TestNetDeadlineFixture(t *testing.T) {
	checkFixture(t, "netdl", NetDeadlineAnalyzer([]string{"fixture/netdl"}))
}

func TestNetDeadlineSkipsUntargetedPackages(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "netdl"), "fixture/netdl")
	if err != nil {
		t.Fatal(err)
	}
	a := NetDeadlineAnalyzer([]string{"exdra/internal/fedrpc"})
	if fs := Run([]*Package{pkg}, []*Analyzer{a}); len(fs) != 0 {
		t.Fatalf("netdeadline fired outside its target packages: %v", fs)
	}
}

func TestNoPanicFixture(t *testing.T) {
	checkFixture(t, "nopanictd", NoPanicAnalyzer(nil))
}

func TestNoPanicAllowlist(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "nopanictd"), "fixture/nopanictd")
	if err != nil {
		t.Fatal(err)
	}
	a := NoPanicAnalyzer([]string{"fixture/nopanictd"})
	if fs := Run([]*Package{pkg}, []*Analyzer{a}); len(fs) != 0 {
		t.Fatalf("nopanic fired inside an allowlisted package: %v", fs)
	}
}

func TestGobErrFixture(t *testing.T) {
	checkFixture(t, "goberrtd", GobErrAnalyzer())
}

func TestGoroLeakFixture(t *testing.T) {
	checkFixture(t, "goroleaktd", GoroLeakAnalyzer())
}

func TestSleepCancelFixture(t *testing.T) {
	checkFixture(t, "sleeptd", SleepCancelAnalyzer())
}

func TestCtxFlowFixture(t *testing.T) {
	checkFixture(t, "ctxflowtd", CtxFlowAnalyzer())
}

func TestObsRegFixture(t *testing.T) {
	checkFixture(t, "obsregtd", ObsRegAnalyzer())
}

func TestGuardedByFixture(t *testing.T) {
	checkFixture(t, "guardedbytd", GuardedByAnalyzer())
}

func TestLockHoldFixture(t *testing.T) {
	checkFixture(t, "lockholdtd", LockHoldAnalyzer())
}

func TestCtxCancelFixture(t *testing.T) {
	checkFixture(t, "ctxcanceltd", CtxCancelAnalyzer())
}

func TestSleepCancelExemptsPackageMain(t *testing.T) {
	pkg, err := fixtureLoader(t).LoadDir(filepath.Join("testdata", "sleepmain"), "fixture/sleepmain")
	if err != nil {
		t.Fatal(err)
	}
	if fs := Run([]*Package{pkg}, []*Analyzer{SleepCancelAnalyzer()}); len(fs) != 0 {
		t.Fatalf("sleepcancel fired in package main: %v", fs)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Rule: "nopanic",
		Pos:  token.Position{Filename: "a/b.go", Line: 7, Column: 3},
		Msg:  "boom",
	}
	if got, want := f.String(), "a/b.go:7: nopanic: boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestIgnoreDirectiveParsing checks the suppression grammar directly: a
// directive needs rule(s) AND a reason; it covers its own line and the
// line below; comma lists cover several rules.
func TestIgnoreDirectiveParsing(t *testing.T) {
	src := `package p

//lint:ignore ruleA justified because reasons
var a int

var b int //lint:ignore ruleB,ruleC trailing form

//lint:ignore ruleD
var c int
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{file}}
	ig := collectIgnores(pkg)
	cases := []struct {
		line int
		rule string
		want bool
	}{
		{4, "ruleA", true},  // standalone directive covers the line below
		{3, "ruleA", true},  // ...and its own line
		{5, "ruleA", false}, // ...but not two lines down
		{6, "ruleB", true},  // trailing form, first of a comma list
		{6, "ruleC", true},  // ...second of the list
		{6, "ruleA", false}, // other rules unaffected
		{9, "ruleD", false}, // reason missing: directive is inert
	}
	for _, c := range cases {
		f := Finding{Rule: c.rule, Pos: token.Position{Filename: "p.go", Line: c.line}}
		if got := ig.suppressed(f); got != c.want {
			t.Errorf("suppressed(%s@%d) = %v, want %v", c.rule, c.line, got, c.want)
		}
	}
}

// TestRunSuppressionAcrossPackages checks the end-to-end suppression filter
// in Run, which analyzes packages in parallel and merges their ignore
// directives into one set: the directive in one package must drop exactly
// its own finding, never a sibling package's identical violation.
func TestRunSuppressionAcrossPackages(t *testing.T) {
	l := fixtureLoader(t)
	write := func(dir, name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	write(dirA, "a.go", `package a

func A() {
	panic("boom") //lint:ignore nopanic fixture exercises suppression
}
`)
	write(dirB, "b.go", `package b

func B() {
	panic("boom")
}
`)
	pa, err := l.LoadDir(dirA, "fixture/supa")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := l.LoadDir(dirB, "fixture/supb")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pa, pb}, []*Analyzer{NoPanicAnalyzer(nil)})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the unsuppressed one: %v", len(findings), findings)
	}
	if got := filepath.Base(findings[0].Pos.Filename); got != "b.go" {
		t.Errorf("surviving finding is in %s, want b.go", got)
	}
}

// TestRunDeterministicOrder runs the same multi-package analysis several
// times: the parallel Run must produce identical, position-sorted output
// every time regardless of goroutine scheduling.
func TestRunDeterministicOrder(t *testing.T) {
	l := fixtureLoader(t)
	var pkgs []*Package
	for _, name := range []string{"nopanictd", "goberrtd", "guardedbytd", "lockholdtd"} {
		p, err := l.LoadDir(filepath.Join("testdata", name), "fixture/"+name)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	analyzers := []*Analyzer{NoPanicAnalyzer(nil), GobErrAnalyzer(), GuardedByAnalyzer(), LockHoldAnalyzer()}
	render := func() []string {
		var out []string
		for _, f := range Run(pkgs, analyzers) {
			out = append(out, f.String())
		}
		return out
	}
	first := Run(pkgs, analyzers)
	if len(first) == 0 {
		t.Fatal("fixtures produced no findings; determinism test is vacuous")
	}
	if !sort.SliceIsSorted(first, func(i, j int) bool {
		a, b := first[i].Pos, first[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	}) {
		t.Errorf("findings are not position-sorted: %v", first)
	}
	want := render()
	for i := 0; i < 3; i++ {
		if got := render(); !slicesEqual(got, want) {
			t.Fatalf("run %d produced different output:\n%v\nvs\n%v", i+2, got, want)
		}
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLoadPatternsErrors covers the loader's failure paths: a pattern
// escaping the module, a nonexistent directory, and a directory with no
// buildable Go files.
func TestLoadPatternsErrors(t *testing.T) {
	l := fixtureLoader(t)
	if _, err := l.LoadPatterns([]string{"../outside"}); err == nil ||
		!strings.Contains(err.Error(), "outside module") {
		t.Errorf("pattern escaping the module: err = %v, want 'outside module'", err)
	}
	if _, err := l.LoadPatterns([]string{"./no-such-dir"}); err == nil {
		t.Error("nonexistent plain directory: no error")
	}
	if _, err := l.LoadPatterns([]string{"./no-such-dir/..."}); err == nil {
		t.Error("nonexistent pattern root: no error")
	}
}

func TestLoadDirNoGoFiles(t *testing.T) {
	l := fixtureLoader(t)
	if _, err := l.LoadDir(t.TempDir(), "fixture/empty"); err == nil ||
		!strings.Contains(err.Error(), "no buildable Go files") {
		t.Errorf("empty dir: err = %v, want 'no buildable Go files'", err)
	}
}

// TestSelfLint is the keystone: the production rule set must report zero
// findings on the repository itself. Any new violation lands here (and in
// ci.sh) before it lands on a federated worker.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module; skipped in -short")
	}
	l := fixtureLoader(t)
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern walk is broken", len(pkgs))
	}
	findings := Run(pkgs, DefaultAnalyzers())
	for _, f := range findings {
		t.Errorf("self-lint: %s", f)
	}
	if t.Failed() {
		sort.Slice(findings, func(i, j int) bool { return findings[i].String() < findings[j].String() })
		t.Logf("%d findings; fix them or add a justified //lint:ignore", len(findings))
	}
}
