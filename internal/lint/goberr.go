package lint

import (
	"go/ast"
	"go/types"
)

// GobErrAnalyzer forbids discarding the error results of Encode, Decode,
// and Flush calls. On the federated wire a dropped gob error silently
// desynchronizes the protocol stream (the peer blocks on a reply that was
// never fully written); a dropped Flush error loses the entire buffered
// message. The rule fires on any method of those names whose call result
// is exactly one error and is discarded — in statement position, assigned
// only to blanks, or detached via go/defer.
func GobErrAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goberr",
		Doc:  "Encode/Decode/Flush errors must be checked",
		Run: func(pass *Pass) {
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					switch s := n.(type) {
					case *ast.ExprStmt:
						reportDiscarded(pass, s.X)
					case *ast.AssignStmt:
						if len(s.Rhs) == 1 && allBlank(s.Lhs) {
							reportDiscarded(pass, s.Rhs[0])
						}
					case *ast.GoStmt:
						reportDiscarded(pass, s.Call)
					case *ast.DeferStmt:
						reportDiscarded(pass, s.Call)
					}
					return true
				})
			}
		},
	}
}

func reportDiscarded(pass *Pass, e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "Encode" && name != "Decode" && name != "Flush" {
		return
	}
	t := pass.Pkg.TypeOf(call)
	if t == nil || !types.Identical(t, errorType) {
		return // void (e.g. csv.Writer.Flush) or multi-result: not this rule
	}
	pass.Reportf(call.Pos(),
		"result of %s is an error and must be checked (a dropped wire error desynchronizes the protocol stream)", name)
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}
