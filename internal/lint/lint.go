// Package lint implements exdralint, the project-specific static-analysis
// pass for the ExDRa federated runtime. It is built only on the standard
// library (go/ast, go/parser, go/token, go/types) and enforces invariants
// that stock tooling (go vet) does not know about: connection deadlines in
// the federated protocol, panic-free library code, checked gob/flush
// errors, and joined goroutines.
//
// Findings can be suppressed with a directive comment on the flagged line
// or the line directly above it:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory: a suppression without a justification is itself
// a defect. See DESIGN.md ("Static analysis") for the rule catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

// String renders the finding in the canonical "file:line: rule: message"
// form consumed by editors and CI logs.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one named rule. Run inspects a single type-checked package
// and reports violations through the pass.
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects one package. Packages are analyzed concurrently, so
	// an analyzer carrying cross-package state must synchronize it
	// itself and defer any order-dependent decision to Finish.
	Run func(pass *Pass)
	// Finish, when set, runs once (serially) after every package's Run
	// has completed, on a Pass whose Pkg is nil; report through
	// ReportPosf. Cross-package analyzers collect during Run and decide
	// deterministically here.
	Finish func(pass *Pass)
}

// Pass couples one analyzer invocation with one package.
type Pass struct {
	Pkg  *Package
	rule string
	out  *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Finding{
		Rule: p.rule,
		Pos:  p.Pkg.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// ReportPosf records a finding at an already-resolved position. Finish
// hooks use it: they run without a package, on positions captured during
// the per-package Run phase.
func (p *Pass) ReportPosf(pos token.Position, format string, args ...any) {
	*p.out = append(*p.out, Finding{Rule: p.rule, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Run applies every analyzer to every package and returns the surviving
// findings (suppressed ones are dropped) sorted by file, line, rule, and
// message. Packages are analyzed concurrently, one worker per CPU; the
// output is deterministic because findings are collected per package and
// cross-package analyzers decide in their serial Finish phase.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	perPkg := make([][]Finding, len(pkgs))
	igs := make([]ignoreSet, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			var raw []Finding
			for _, a := range analyzers {
				a.Run(&Pass{Pkg: pkg, rule: a.Name, out: &raw})
			}
			perPkg[i] = raw
			igs[i] = collectIgnores(pkg)
		}(i, pkg)
	}
	wg.Wait()

	var finish []Finding
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(&Pass{rule: a.Name, out: &finish})
		}
	}

	// Suppression is global: ignore keys are file:line, so directives
	// collected per package merge without collisions, and Finish-phase
	// findings are filtered by the same set.
	ig := ignoreSet{}
	for _, pig := range igs {
		for k, v := range pig {
			ig[k] = append(ig[k], v...)
		}
	}
	var all []Finding
	for _, raw := range append(perPkg, finish) {
		for _, f := range raw {
			if !ig.suppressed(f) {
				all = append(all, f)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return all
}

// ignoreKey addresses one suppression directive site.
type ignoreKey struct {
	file string
	line int
}

type ignoreSet map[ignoreKey][]string // -> rules covered at that line

// collectIgnores scans all comments of a package for lint:ignore
// directives. A directive covers findings on its own line (trailing
// comment) and on the line directly below it (standalone comment).
func collectIgnores(pkg *Package) ignoreSet {
	ig := ignoreSet{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					// A directive without rule+reason is malformed; it
					// suppresses nothing.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := ignoreKey{file: pos.Filename, line: pos.Line}
				ig[key] = append(ig[key], strings.Split(fields[0], ",")...)
			}
		}
	}
	return ig
}

func (ig ignoreSet) suppressed(f Finding) bool {
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, rule := range ig[ignoreKey{file: f.Pos.Filename, line: line}] {
			if rule == f.Rule {
				return true
			}
		}
	}
	return false
}

// DefaultAnalyzers returns the production rule set with the repository's
// target-package configuration applied.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NetDeadlineAnalyzer([]string{
			"exdra/internal/fedrpc",
			"exdra/internal/worker",
			"exdra/internal/netem",
		}),
		NoPanicAnalyzer([]string{
			// Matrix shape-check kernels are the one sanctioned panic site:
			// a shape mismatch is a programming error in the caller, the
			// kernels sit on hot paths, and the federated server converts
			// worker-side panics into error responses (fedrpc safeHandle).
			"exdra/internal/matrix",
		}),
		GobErrAnalyzer(),
		GoroLeakAnalyzer(),
		SleepCancelAnalyzer(),
		CtxFlowAnalyzer(),
		ObsRegAnalyzer(),
		GuardedByAnalyzer(),
		LockHoldAnalyzer(),
		CtxCancelAnalyzer(),
	}
}

// calleeName returns the bare name of a call's callee: the selector name
// for method/package calls, the identifier for plain calls, "" otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// errorType is the universe error type, for result-type checks.
var errorType = types.Universe.Lookup("error").Type()
