// Package privacy implements the federated privacy models of ExDRa §2.3 and
// §4.1: coarse- and fine-grained data-exchange constraints attached to
// federated data, constraint propagation through operations, and a
// differential-privacy mechanism for aggregates (one of the paper's
// privacy-enhancing technologies).
package privacy

import (
	"fmt"
	"math"
	"math/rand"
)

// Level is a coarse-grained data-exchange constraint.
type Level int

// Constraint levels, ordered from least to most restrictive.
const (
	// Public data may be transferred to the coordinator freely.
	Public Level = iota
	// PrivateAggregation data may only leave a federated site in aggregate
	// form (e.g. gradients, partial sums) that does not reveal raw records.
	PrivateAggregation
	// Private data must never leave the federated site.
	Private
)

// String returns the constraint name.
func (l Level) String() string {
	switch l {
	case Public:
		return "Public"
	case PrivateAggregation:
		return "PrivateAggregation"
	case Private:
		return "Private"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Max returns the more restrictive of two levels (the join of the lattice),
// used when an operation combines inputs with different constraints.
func Max(a, b Level) Level {
	if a > b {
		return a
	}
	return b
}

// OpKind classifies operations for constraint propagation.
type OpKind int

// Operation kinds for constraint propagation.
const (
	// Transparent operations (element-wise, reorg, indexing) preserve the
	// input constraint: the output reveals as much as the input.
	Transparent OpKind = iota
	// Aggregating operations reduce many cells to few; they declassify
	// PrivateAggregation to Public but keep Private private.
	Aggregating
)

// Propagate returns the constraint of an operation's output given the most
// restrictive input constraint and the operation kind.
func Propagate(kind OpKind, in Level) Level {
	if kind == Aggregating && in == PrivateAggregation {
		return Public
	}
	return in
}

// ErrViolation is returned when a transfer would violate a constraint.
type ErrViolation struct {
	Level Level
	What  string
}

func (e *ErrViolation) Error() string {
	return fmt.Sprintf("privacy: transferring %s would violate %s constraint", e.What, e.Level)
}

// CheckTransfer returns an error if data under the given constraint may not
// be transferred off its federated site.
func CheckTransfer(l Level, what string) error {
	if l == Public {
		return nil
	}
	return &ErrViolation{Level: l, What: what}
}

// LaplaceMechanism adds Laplace(sensitivity/epsilon) noise to value — the
// classic epsilon-differentially-private release of a numeric aggregate.
// A non-positive epsilon is a budget misconfiguration and is reported as
// an error: releasing the raw value instead would be a privacy violation,
// and panicking would let one bad request take down a standing worker.
func LaplaceMechanism(rng *rand.Rand, value, sensitivity, epsilon float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("privacy: epsilon must be positive, got %g", epsilon)
	}
	b := sensitivity / epsilon
	u := rng.Float64() - 0.5
	return value - b*math.Copysign(math.Log(1-2*math.Abs(u)), u), nil
}

// GaussianMechanism adds N(0, sigma^2) noise calibrated for
// (epsilon, delta)-differential privacy.
func GaussianMechanism(rng *rand.Rand, value, sensitivity, epsilon, delta float64) (float64, error) {
	if epsilon <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("privacy: invalid epsilon/delta (%g, %g)", epsilon, delta)
	}
	sigma := sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / epsilon
	return value + sigma*rng.NormFloat64(), nil
}
