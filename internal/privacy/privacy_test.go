package privacy

import (
	"math"
	"math/rand"
	"testing"
)

func TestLevelOrderingAndMax(t *testing.T) {
	if Max(Public, Private) != Private || Max(PrivateAggregation, Public) != PrivateAggregation {
		t.Fatal("Max")
	}
	if Public.String() != "Public" || Private.String() != "Private" {
		t.Fatal("String")
	}
}

func TestPropagation(t *testing.T) {
	cases := []struct {
		kind OpKind
		in   Level
		want Level
	}{
		{Transparent, Public, Public},
		{Transparent, PrivateAggregation, PrivateAggregation},
		{Transparent, Private, Private},
		{Aggregating, Public, Public},
		{Aggregating, PrivateAggregation, Public}, // declassified
		{Aggregating, Private, Private},           // never declassified
	}
	for _, c := range cases {
		if got := Propagate(c.kind, c.in); got != c.want {
			t.Errorf("Propagate(%v, %v) = %v want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestCheckTransfer(t *testing.T) {
	if err := CheckTransfer(Public, "x"); err != nil {
		t.Fatal("public blocked")
	}
	err := CheckTransfer(Private, "matrix 3x3")
	if err == nil {
		t.Fatal("private allowed")
	}
	var v *ErrViolation
	if !asViolation(err, &v) || v.Level != Private {
		t.Fatalf("error type: %v", err)
	}
}

func asViolation(err error, out **ErrViolation) bool {
	v, ok := err.(*ErrViolation)
	if ok {
		*out = v
	}
	return ok
}

func TestLaplaceMechanismStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	eps, sens := 1.0, 2.0
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v, err := LaplaceMechanism(rng, 10, sens, eps)
		if err != nil {
			t.Fatal(err)
		}
		d := v - 10
		sum += d
		sumSq += d * d
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	wantVar := 2 * (sens / eps) * (sens / eps) // Var(Laplace(b)) = 2b^2
	if math.Abs(mean) > 0.1 {
		t.Fatalf("biased noise: mean %g", mean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.15 {
		t.Fatalf("variance %g want %g", variance, wantVar)
	}
}

func TestGaussianMechanismStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		v, err := GaussianMechanism(rng, 0, 1, 1, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if math.Abs(sum/n) > 0.2 {
		t.Fatalf("biased gaussian noise: %g", sum/n)
	}
}

func TestMechanismRejectsBadBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := LaplaceMechanism(rng, 0, 1, 0); err == nil {
		t.Fatal("LaplaceMechanism accepted epsilon=0")
	}
	if _, err := GaussianMechanism(rng, 0, 1, 0, 0.1); err == nil {
		t.Fatal("GaussianMechanism accepted epsilon=0")
	}
	if _, err := GaussianMechanism(rng, 0, 1, 1, 1.5); err == nil {
		t.Fatal("GaussianMechanism accepted delta=1.5")
	}
}
