package algo

import (
	"exdra/internal/engine"
	"exdra/internal/matrix"
)

// PCAConfig configures principal component analysis.
type PCAConfig struct {
	// K is the number of projected features (default 10, as in §6.1).
	K int
	// Center subtracts column means before computing the covariance
	// (default true; set SkipCentering to disable).
	SkipCentering bool
}

// PCAResult holds the fitted projection.
type PCAResult struct {
	// Components is cols x K (eigenvectors of the covariance matrix).
	Components *matrix.Dense
	// Values are the K leading eigenvalues.
	Values *matrix.Dense
	// Means are the column means used for centering (nil if disabled).
	Means *matrix.Dense
}

// PCA is the non-iterative algorithm of §6.2: it computes the covariance
// from the federated aggregate t(X) %*% X (one federated tsmm) plus column
// means, eigen-decomposes at the coordinator, and projects the data via a
// second matrix multiplication.
func PCA(x engine.Mat, cfg PCAConfig) (res *PCAResult, proj engine.Mat, err error) {
	defer engine.Guard(&err)
	k := cfg.K
	if k == 0 {
		k = 10
	}
	if k > x.Cols() {
		k = x.Cols()
	}
	n := float64(x.Rows())

	xtx := engine.TSMM(x)
	var means *matrix.Dense
	cov := xtx
	if !cfg.SkipCentering {
		means = engine.Local(engine.ColAgg(matrix.AggMean, x)) // 1 x cols
		// cov = (t(X)X - n * t(mu) mu) / (n-1)
		mm := means.Transpose().MatMul(means).Scale(n)
		cov = xtx.Sub(mm)
	}
	cov = cov.Scale(1 / (n - 1))

	vals, vecs := matrix.EigenSym(cov)
	comp := vecs.SliceCols(0, k)
	top := vals.SliceRows(0, k)

	// Project the (optionally centered) data: stays federated for federated
	// inputs — the second dominating matrix multiplication of §6.2.
	var centered engine.Mat = x
	if means != nil {
		centered = engine.Binary(matrix.OpSub, x, means)
	}
	proj = engine.MatMul(centered, comp)
	return &PCAResult{Components: comp, Values: top, Means: means}, proj, nil
}

// Transform projects new data with the fitted components.
func (m *PCAResult) Transform(x engine.Mat) (out engine.Mat, err error) {
	defer engine.Guard(&err)
	var centered engine.Mat = x
	if m.Means != nil {
		centered = engine.Binary(matrix.OpSub, x, m.Means)
	}
	return engine.MatMul(centered, m.Components), nil
}
