package algo

import (
	"exdra/internal/engine"
	"exdra/internal/matrix"
)

// CorrelationMatrix computes the Pearson correlation matrix of the columns
// of X — one of the pre-processing steps §6.3 lists for the remaining use
// case pipelines. On federated X it needs exactly one federated tsmm plus
// column aggregates; the raw data never moves.
func CorrelationMatrix(x engine.Mat) (out *matrix.Dense, err error) {
	defer engine.Guard(&err)
	n := float64(x.Rows())
	xtx := engine.TSMM(x)
	means := engine.Local(engine.ColAgg(matrix.AggMean, x))
	sds := engine.Local(engine.ColAgg(matrix.AggSD, x))
	d := x.Cols()
	out = matrix.NewDense(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			cov := (xtx.At(i, j) - n*means.At(0, i)*means.At(0, j)) / (n - 1)
			denom := sds.At(0, i) * sds.At(0, j)
			if denom == 0 {
				if i == j {
					out.Set(i, j, 1)
				}
				continue
			}
			out.Set(i, j, cov/denom)
		}
	}
	return out, nil
}
