package algo_test

import (
	"math"
	"testing"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/engine"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

func startCluster(t *testing.T, n int) *fedtest.Cluster {
	t.Helper()
	cl, err := fedtest.Start(fedtest.Config{Workers: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func federate(t *testing.T, cl *fedtest.Cluster, x *matrix.Dense) *federated.Matrix {
	t.Helper()
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func TestLMLocalRecoversModel(t *testing.T) {
	t.Parallel()
	x, y := data.Regression(1, 300, 20, 0.01)
	res, err := algo.LM(x, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := res.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := algo.R2(pred, y); r2 < 0.99 {
		t.Fatalf("LM R2=%g", r2)
	}
	if res.Iterations == 0 {
		t.Fatal("no CG iterations")
	}
}

func TestLMFederatedMatchesLocal(t *testing.T) {
	t.Parallel()
	cl := startCluster(t, 3)
	x, y := data.Regression(2, 120, 10, 0.05)
	local, err := algo.LM(x, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fed, err := algo.LM(federate(t, cl, x), y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !fed.Weights.EqualApprox(local.Weights, 1e-6) {
		t.Fatal("federated LM weights differ from local")
	}
}

func TestL2SVMLocalAndFederated(t *testing.T) {
	t.Parallel()
	cl := startCluster(t, 3)
	x, y := data.Classification(3, 200, 12, 0.01)
	local, err := algo.L2SVM(x, y, algo.L2SVMConfig{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := local.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	// Squared hinge loss is outlier-sensitive, so flipped labels cost more
	// than their fraction; 0.93 leaves headroom over the ~0.99 ceiling.
	if acc := algo.Accuracy(scores, y); acc < 0.93 {
		t.Fatalf("L2SVM train accuracy %g", acc)
	}
	fed, err := algo.L2SVM(federate(t, cl, x), y, algo.L2SVMConfig{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !fed.Weights.EqualApprox(local.Weights, 1e-5) {
		t.Fatal("federated L2SVM weights differ from local")
	}
	if local.InnerIterations == 0 {
		t.Fatal("line search never ran")
	}
}

func TestMLogRegLocalAndFederated(t *testing.T) {
	t.Parallel()
	cl := startCluster(t, 3)
	x, y := data.MultiClass(4, 240, 8, 4)
	cfg := algo.MLogRegConfig{MaxOuterIter: 6, MaxInnerIter: 8}
	local, err := algo.MLogReg(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := local.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if acc := algo.ClassAccuracy(pred, y); acc < 0.95 {
		t.Fatalf("MLogReg accuracy %g", acc)
	}
	fed, err := algo.MLogReg(federate(t, cl, x), y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !fed.Weights.EqualApprox(local.Weights, 1e-5) {
		t.Fatal("federated MLogReg weights differ from local")
	}
	fpred, err := fed.Predict(federate(t, cl, x))
	if err != nil {
		t.Fatal(err)
	}
	if acc := algo.ClassAccuracy(fpred, y); acc < 0.95 {
		t.Fatalf("federated MLogReg accuracy %g", acc)
	}
}

func TestKMeansLocalAndFederated(t *testing.T) {
	t.Parallel()
	cl := startCluster(t, 3)
	x, truth := data.Blobs(5, 300, 6, 4, 0.5)
	cfg := algo.KMeansConfig{K: 4, MaxIterations: 25, Runs: 5, Seed: 7}
	local, err := algo.KMeans(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Public federated data takes the same row-sampling initialization as
	// local execution, so results must match bit-for-bit up to tolerance.
	fpub, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := algo.KMeans(fpub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Identical seeds and deterministic ops: centroids must agree.
	if !fed.Centroids.EqualApprox(local.Centroids, 1e-6) {
		t.Fatal("federated K-Means centroids differ from local")
	}
	if math.Abs(fed.WCSS-local.WCSS) > 1e-6*math.Abs(local.WCSS) {
		t.Fatal("WCSS differs")
	}
	// Clusters should separate the blobs well: assignment purity check.
	assign, err := local.Assign(x)
	if err != nil {
		t.Fatal(err)
	}
	purity := clusterPurity(assign, truth, 4)
	if purity < 0.9 {
		t.Fatalf("cluster purity %g", purity)
	}
	// Under PrivateAggregation, row sampling is forbidden; K-Means must
	// fall back to aggregate-statistics initialization and still run.
	priv, err := algo.KMeans(federate(t, cl, x), algo.KMeansConfig{K: 4, MaxIterations: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if priv.Centroids == nil || math.IsInf(priv.WCSS, 1) {
		t.Fatal("private K-Means produced no model")
	}
}

func clusterPurity(assign *matrix.Dense, truth []int, k int) float64 {
	counts := make([][]int, k+1)
	for i := range counts {
		counts[i] = make([]int, k)
	}
	for i, tc := range truth {
		c := int(assign.At(i, 0))
		counts[c][tc]++
	}
	correct := 0
	for _, row := range counts {
		best := 0
		for _, n := range row {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(truth))
}

func TestPCALocalAndFederated(t *testing.T) {
	t.Parallel()
	cl := startCluster(t, 3)
	x, _ := data.Blobs(6, 200, 12, 3, 1)
	cfg := algo.PCAConfig{K: 4}
	localRes, localProj, err := algo.PCA(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fedRes, fedProj, err := algo.PCA(federate(t, cl, x), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !fedRes.Values.EqualApprox(localRes.Values, 1e-6) {
		t.Fatal("federated PCA eigenvalues differ")
	}
	lp := engine.Local(localProj)
	fp := engine.Local(fedProj)
	// Eigenvector signs are arbitrary; compare absolute projections.
	if !lp.Unary(matrix.UAbs).EqualApprox(fp.Unary(matrix.UAbs), 1e-6) {
		t.Fatal("federated PCA projection differs")
	}
	// Projection must be decorrelated: off-diagonals of t(P)P near zero.
	cov := lp.TSMM()
	for i := 0; i < cov.Rows(); i++ {
		for j := 0; j < cov.Cols(); j++ {
			if i != j && math.Abs(cov.At(i, j)) > 1e-6*math.Abs(cov.At(i, i)) {
				t.Fatalf("projection not decorrelated at (%d,%d)", i, j)
			}
		}
	}
	// Variance captured decreases along components.
	for i := 1; i < cfg.K; i++ {
		if localRes.Values.At(i, 0) > localRes.Values.At(i-1, 0)+1e-9 {
			t.Fatal("eigenvalues not sorted")
		}
	}
}

func TestGMMFitsBlobsAndFlagsAnomalies(t *testing.T) {
	t.Parallel()
	x, _ := data.Blobs(7, 400, 5, 3, 0.5)
	res, err := algo.GMM(x, algo.GMMConfig{K: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("EM did not iterate")
	}
	wsum := 0.0
	for _, w := range res.Weights {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("mixture weights sum to %g", wsum)
	}
	// Density of training points must exceed density of far-away outliers.
	inl := res.LogDensity(x.SliceRows(0, 50)).Mean()
	out := res.LogDensity(matrix.Fill(10, 5, 100)).Mean()
	if inl <= out {
		t.Fatalf("inlier density %g <= outlier density %g", inl, out)
	}
}

func TestGMMEnsembleTaskParallel(t *testing.T) {
	t.Parallel()
	x1, _ := data.Blobs(8, 120, 4, 2, 0.5)
	x2, _ := data.Blobs(9, 150, 4, 2, 0.5)
	models, err := algo.TrainGMMEnsemble([]*matrix.Dense{x1, x2}, algo.GMMConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0] == nil || models[1] == nil {
		t.Fatal("ensemble incomplete")
	}
	// Too few rows must error.
	if _, err := algo.GMM(matrix.NewDense(1, 3), algo.GMMConfig{K: 3}); err == nil {
		t.Fatal("GMM accepted fewer rows than components")
	}
}

func TestAlgorithmsPreservePrivacy(t *testing.T) {
	t.Parallel()
	// Every federated training above runs under PrivateAggregation:
	// verify the raw partitions themselves remain untransferable.
	cl := startCluster(t, 2)
	x, y := data.Regression(10, 60, 6, 0.05)
	fx := federate(t, cl, x)
	if _, err := algo.LM(fx, y, algo.LMConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.Consolidate(); err == nil {
		t.Fatal("raw federated data became transferable after training")
	}
}
