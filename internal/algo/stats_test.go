package algo_test

import (
	"math"
	"testing"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/matrix"
)

func TestCorrelationMatrixLocalAndFederated(t *testing.T) {
	t.Parallel()
	cl := startCluster(t, 3)
	// Build columns with known correlations: c1, c2 = 2*c1 (corr 1),
	// c3 = -c1 (corr -1), c4 independent.
	n := 120
	x := matrix.NewDense(n, 4)
	for i := 0; i < n; i++ {
		v := float64(i%13) - 6
		w := float64((i*7)%11) - 5
		x.Set(i, 0, v)
		x.Set(i, 1, 2*v)
		x.Set(i, 2, -v)
		x.Set(i, 3, w)
	}
	local, err := algo.CorrelationMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(local.At(0, 1)-1) > 1e-9 || math.Abs(local.At(0, 2)+1) > 1e-9 {
		t.Fatalf("known correlations: %v", local)
	}
	for i := 0; i < 4; i++ {
		if math.Abs(local.At(i, i)-1) > 1e-9 {
			t.Fatal("diagonal must be 1")
		}
	}
	if math.Abs(local.At(0, 3)) > 0.3 {
		t.Fatalf("independent columns correlate: %g", local.At(0, 3))
	}
	fed, err := algo.CorrelationMatrix(federate(t, cl, x))
	if err != nil {
		t.Fatal(err)
	}
	if !fed.EqualApprox(local, 1e-9) {
		t.Fatal("federated correlation matrix differs")
	}
	// Constant columns: zero variance handled without NaN.
	c := matrix.CBind(x.SliceCols(0, 1), matrix.Fill(n, 1, 5))
	cm, err := algo.CorrelationMatrix(c)
	if err != nil {
		t.Fatal(err)
	}
	if cm.At(1, 1) != 1 || cm.At(0, 1) != 0 {
		t.Fatalf("constant column handling: %v", cm)
	}
}

func TestDBSCANFindsBlobsAndNoise(t *testing.T) {
	t.Parallel()
	x, truth := data.Blobs(51, 240, 3, 3, 0.3)
	// Add a few far-away noise points.
	noisy := matrix.RBind(x, matrix.Fill(3, 3, 500))
	res, err := algo.DBSCAN(noisy, algo.DBSCANConfig{Eps: 1.5, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 3 {
		t.Fatalf("found %d clusters, want 3", res.Clusters)
	}
	// The injected outliers are noise.
	for i := 240; i < 243; i++ {
		if res.Assignments[i] != 0 {
			t.Fatalf("outlier %d assigned to cluster %d", i, res.Assignments[i])
		}
	}
	// Cluster purity against the generating blobs.
	counts := map[[2]int]int{}
	for i := 0; i < 240; i++ {
		counts[[2]int{res.Assignments[i], truth[i]}]++
	}
	correct := 0
	for c := 1; c <= 3; c++ {
		best := 0
		for tb := 0; tb < 3; tb++ {
			if counts[[2]int{c, tb}] > best {
				best = counts[[2]int{c, tb}]
			}
		}
		correct += best
	}
	if purity := float64(correct) / 240; purity < 0.95 {
		t.Fatalf("DBSCAN purity %g", purity)
	}
	if _, err := algo.DBSCAN(x, algo.DBSCANConfig{}); err == nil {
		t.Fatal("eps 0 accepted")
	}
}
