package algo

import (
	"math"
	"math/rand"

	"exdra/internal/engine"
	"exdra/internal/matrix"
)

// KMeansConfig configures Lloyd's K-Means clustering.
type KMeansConfig struct {
	K             int     // number of centroids (default 50, as in §6.1)
	MaxIterations int     // per-run iteration cap (default 20)
	Runs          int     // independent restarts (default 1)
	Tolerance     float64 // relative WCSS improvement threshold (default 1e-6)
	Seed          int64   // centroid initialization seed
}

// KMeansResult is a clustering model.
type KMeansResult struct {
	Centroids  *matrix.Dense // K x cols
	WCSS       float64       // within-cluster sum of squares of the best run
	Iterations int           // iterations of the best run
}

// KMeans implements the inner loop of Example 3 in the paper verbatim:
//
//	D = -2 * (X %*% t(C)) + t(rowSums(C^2))
//	P = (D <= rowMins(D)); P = P / rowSums(P)
//	P_denom = colSums(P);  C_new = (t(P) %*% X) / t(P_denom)
//
// On federated X, the first multiplication yields an aligned federated
// intermediate, the element-wise steps stay federated, and only the
// aggregates colSums(P) and t(P) %*% X are consolidated.
func KMeans(x engine.Mat, cfg KMeansConfig) (res *KMeansResult, err error) {
	defer engine.Guard(&err)
	k := cfg.K
	if k == 0 {
		k = 50
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 20
	}
	runs := cfg.Runs
	if runs == 0 {
		runs = 1
	}
	tol := cfg.Tolerance
	if tol == 0 {
		tol = 1e-6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	xsq := engine.Agg(matrix.AggSum, engine.Binary(matrix.OpMul, x, x))

	best := &KMeansResult{WCSS: math.Inf(1)}
	for run := 0; run < runs; run++ {
		c := initCentroids(rng, x, k)
		prev := math.Inf(1)
		iters := 0
		for ; iters < maxIter; iters++ {
			cNew, wcss := kmeansStep(x, c, xsq)
			c = cNew
			if prev-wcss <= tol*math.Abs(prev) {
				prev = wcss
				iters++
				break
			}
			prev = wcss
		}
		if prev < best.WCSS {
			best = &KMeansResult{Centroids: c, WCSS: prev, Iterations: iters}
		}
	}
	return best, nil
}

// kmeansStep performs one Lloyd iteration and returns the new centroids and
// the within-cluster sum of squares under the current assignment.
func kmeansStep(x engine.Mat, c *matrix.Dense, xsq float64) (*matrix.Dense, float64) {
	k := c.Rows()
	// D = -2 * (X %*% t(C)) + t(rowSums(C^2))  (squared distances up to the
	// row-constant ||x||^2, which does not affect the argmin).
	cs := c.Mul(c).RowSums().Transpose() // 1 x K
	xc := engine.MatMul(x, c.Transpose())
	d := engine.Binary(matrix.OpAdd, engine.Scale(xc, -2), cs)
	// P = (D <= rowMins(D)); share ties: P = P / rowSums(P).
	dm := engine.RowAgg(matrix.AggMin, d)
	p := engine.Binary(matrix.OpLe, d, dm)
	prs := engine.RowAgg(matrix.AggSum, p)
	p = engine.Div(p, prs)
	// WCSS = sum(X^2) + sum(P * D) (adding back the row constants).
	wcss := xsq + engine.Sum(engine.Mul(p, d))
	// C_new = (t(P) %*% X) / t(P_denom).
	pden := engine.Local(engine.ColAgg(matrix.AggSum, p)) // 1 x K
	ptx := engine.Local(engine.TMatMul(p, x))             // K x cols
	cNew := ptx.Div(pden.Transpose())
	// Re-seed empty clusters at their previous centroid.
	for i := 0; i < k; i++ {
		if pden.At(0, i) == 0 {
			for j := 0; j < c.Cols(); j++ {
				cNew.Set(i, j, c.At(i, j))
			}
		}
	}
	engine.Free(xc, d, dm, p, prs)
	return cNew, wcss
}

// initCentroids samples K distinct rows of X as initial centroids (the
// SystemDS strategy; on federated data each sample is a single-row
// transfer). If privacy constraints forbid transferring raw rows, it falls
// back to drawing centroids from N(colMeans, colSDs) — aggregate column
// statistics that remain exchangeable under PrivateAggregation.
func initCentroids(rng *rand.Rand, x engine.Mat, k int) *matrix.Dense {
	if c := trySampleRows(rng, x, k); c != nil {
		return c
	}
	means := engine.Local(engine.ColAgg(matrix.AggMean, x))
	sds := engine.Local(engine.ColAgg(matrix.AggSD, x))
	c := matrix.NewDense(k, x.Cols())
	for i := 0; i < k; i++ {
		for j := 0; j < x.Cols(); j++ {
			c.Set(i, j, means.At(0, j)+sds.At(0, j)*rng.NormFloat64())
		}
	}
	return c
}

// trySampleRows gathers K distinct random rows, returning nil if the
// transfer violates a privacy constraint.
func trySampleRows(rng *rand.Rand, x engine.Mat, k int) (c *matrix.Dense) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*engine.Error); ok {
				c = nil
				return
			}
			panic(r)
		}
	}()
	n := x.Rows()
	c = matrix.NewDense(k, x.Cols())
	seen := map[int]bool{}
	for i := 0; i < k; i++ {
		r := rng.Intn(n)
		for seen[r] {
			r = rng.Intn(n)
		}
		seen[r] = true
		row := engine.Local(engine.Slice(x, r, r+1, 0, x.Cols()))
		c.SetSlice(i, 0, row)
	}
	return c
}

// Assign returns the 1-based cluster index per row of X under centroids.
func (m *KMeansResult) Assign(x engine.Mat) (out *matrix.Dense, err error) {
	defer engine.Guard(&err)
	cs := m.Centroids.Mul(m.Centroids).RowSums().Transpose()
	xc := engine.MatMul(x, m.Centroids.Transpose())
	d := engine.Binary(matrix.OpAdd, engine.Scale(xc, -2), cs)
	neg := engine.Scale(d, -1) // argmin distance = argmax of negated
	assign := engine.Local(engine.RowIndexMax(neg))
	engine.Free(xc, d, neg)
	return assign, nil
}
