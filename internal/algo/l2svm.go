package algo

import (
	"math"

	"exdra/internal/engine"
	"exdra/internal/matrix"
)

// L2SVMConfig configures the L2-regularized squared-hinge-loss SVM.
type L2SVMConfig struct {
	Lambda        float64 // regularization (default 1e-3)
	Tolerance     float64 // outer convergence tolerance (default 1e-9)
	MaxIterations int     // outer iterations cap (default 100)
	MaxInnerIter  int     // line-search iterations cap (default 20)
}

// L2SVMResult is a trained binary L2-SVM.
type L2SVMResult struct {
	Weights         *matrix.Dense
	Iterations      int
	Objective       float64
	InnerIterations int
}

// L2SVM trains a binary classifier with labels in {-1, +1} using nonlinear
// conjugate gradient with a Newton line search — the two nested while loops
// the paper describes: the outer loop computes gradients over the federated
// X (t(X) %*% v patterns); the inner loop line-searches along the gradient
// using only vector operations at the coordinator.
func L2SVM(x engine.Mat, y *matrix.Dense, cfg L2SVMConfig) (res *L2SVMResult, err error) {
	defer engine.Guard(&err)
	lambda := cfg.Lambda
	if lambda == 0 {
		lambda = 1e-3
	}
	tol := cfg.Tolerance
	if tol == 0 {
		tol = 1e-9
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 100
	}
	maxInner := cfg.MaxInnerIter
	if maxInner == 0 {
		maxInner = 20
	}
	nc := x.Cols()
	w := matrix.NewDense(nc, 1)

	// out = 1 - Y * (X %*% w); with w = 0 this is the all-ones vector.
	xw := matrix.NewDense(y.Rows(), 1)
	out := onesMinus(y, xw)
	sv := out.BinaryScalar(matrix.OpGt, 0, false)
	out = out.Mul(sv)

	// g_old = t(X) %*% (out * Y)
	gOld := engine.Local(engine.TMatMul(x, out.Mul(y)))
	s := gOld.Clone()

	iters, innerTotal := 0, 0
	var obj float64
	for iters < maxIter {
		// Xd = X %*% s over the federated data (matrix-vector of Example 2),
		// consolidated because every inner iteration needs it at the
		// coordinator (vector ops dominate, as the paper notes for L2SVM).
		xd := engine.Local(engine.MatMul(x, s))
		wd := lambda * matrix.Dot(w, s)
		dd := lambda * matrix.Dot(s, s)
		stepSz := 0.0
		for inner := 0; inner < maxInner; inner++ {
			// out = 1 - Y*(Xw + step*Xd), sv = out > 0 — pure vector math.
			cand := xw.PlusMult(stepSz, xd)
			outI := onesMinus(y, cand)
			svI := outI.BinaryScalar(matrix.OpGt, 0, false)
			outI = outI.Mul(svI)
			g := wd + stepSz*dd - matrix.Dot(outI.Mul(y), xd)
			h := dd + matrix.Dot(xd.Mul(svI), xd)
			if h == 0 {
				break
			}
			stepSz -= g / h
			innerTotal++
			if g*g <= 1e-12*h {
				break
			}
		}
		w.AxpyInPlace(stepSz, s)
		xw.AxpyInPlace(stepSz, xd)

		out = onesMinus(y, xw)
		sv = out.BinaryScalar(matrix.OpGt, 0, false)
		out = out.Mul(sv)
		obj = 0.5*matrix.Dot(out, out) + lambda/2*matrix.Dot(w, w)

		gNew := engine.Local(engine.TMatMul(x, out.Mul(y)))
		gNew.AxpyInPlace(-lambda, w)

		iters++
		gg := matrix.Dot(gOld, s)
		if stepSz*gg < tol*obj {
			break
		}
		beta := matrix.Dot(gNew, gNew) / matrix.Dot(gOld, gOld)
		for i, gv := range gNew.Data() {
			s.Data()[i] = gv + beta*s.Data()[i]
		}
		gOld = gNew
	}
	return &L2SVMResult{Weights: w, Iterations: iters, Objective: obj, InnerIterations: innerTotal}, nil
}

// onesMinus computes 1 - y*v element-wise for column vectors.
func onesMinus(y, v *matrix.Dense) *matrix.Dense {
	out := matrix.NewDense(y.Rows(), 1)
	for i := range out.Data() {
		out.Data()[i] = 1 - y.Data()[i]*v.Data()[i]
	}
	return out
}

// Predict returns the signed decision values X %*% w.
func (m *L2SVMResult) Predict(x engine.Mat) (out *matrix.Dense, err error) {
	defer engine.Guard(&err)
	return engine.Local(engine.MatMul(x, m.Weights)), nil
}

// Accuracy computes the fraction of sign-correct predictions for labels in
// {-1, +1}.
func Accuracy(scores, y *matrix.Dense) float64 {
	correct := 0
	for i, s := range scores.Data() {
		if math.Signbit(s) == math.Signbit(y.Data()[i]) {
			correct++
		}
	}
	return float64(correct) / float64(len(scores.Data()))
}
