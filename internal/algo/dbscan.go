package algo

import (
	"fmt"

	"exdra/internal/matrix"
)

// DBSCAN implements density-based clustering — the density-based clustering
// step §6.3 lists among the remaining use-case pipelines. It runs on local
// data (e.g. per-site over a NES sink snapshot, like the GMM ensembles);
// assignments are 1-based cluster indices, with 0 marking noise points.
type DBSCANConfig struct {
	// Eps is the neighborhood radius (Euclidean).
	Eps float64
	// MinPts is the minimum neighborhood size of a core point (default 4).
	MinPts int
}

// DBSCANResult is a clustering of the input rows.
type DBSCANResult struct {
	// Assignments holds a 1-based cluster per row; 0 marks noise.
	Assignments []int
	// Clusters is the number of clusters found.
	Clusters int
}

// DBSCAN clusters the rows of X.
func DBSCAN(x *matrix.Dense, cfg DBSCANConfig) (*DBSCANResult, error) {
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("algo: DBSCAN requires a positive eps")
	}
	minPts := cfg.MinPts
	if minPts <= 0 {
		minPts = 4
	}
	n := x.Rows()
	eps2 := cfg.Eps * cfg.Eps
	neighbors := func(i int) []int {
		var out []int
		ri := x.Row(i)
		for j := 0; j < n; j++ {
			d := 0.0
			rj := x.Row(j)
			for k := range ri {
				diff := ri[k] - rj[k]
				d += diff * diff
				if d > eps2 {
					break
				}
			}
			if d <= eps2 {
				out = append(out, j)
			}
		}
		return out
	}

	const (
		unvisited = 0
		noise     = -1
	)
	labels := make([]int, n) // 0 unvisited, -1 noise, >0 cluster id
	cluster := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbors(i)
		if len(nb) < minPts {
			labels[i] = noise
			continue
		}
		cluster++
		labels[i] = cluster
		// Expand the cluster over the density-reachable frontier.
		queue := append([]int(nil), nb...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == noise {
				labels[j] = cluster // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = cluster
			jn := neighbors(j)
			if len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
	}
	out := &DBSCANResult{Assignments: make([]int, n), Clusters: cluster}
	for i, l := range labels {
		if l == noise {
			out.Assignments[i] = 0
		} else {
			out.Assignments[i] = l
		}
	}
	return out, nil
}
