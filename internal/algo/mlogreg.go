package algo

import (
	"exdra/internal/engine"
	"exdra/internal/matrix"
)

// MLogRegConfig configures multinomial logistic regression.
type MLogRegConfig struct {
	Classes      int     // number of classes (inferred from labels if zero)
	Lambda       float64 // L2 regularization (default 1e-3)
	MaxOuterIter int     // Newton iterations (default 20)
	MaxInnerIter int     // CG iterations per Newton step (default 10)
	Tolerance    float64 // gradient-norm tolerance (default 1e-6)
}

// MLogRegResult is a trained multinomial logistic-regression model.
type MLogRegResult struct {
	// Weights is cols x classes.
	Weights    *matrix.Dense
	OuterIters int
	InnerIters int
}

// MLogReg trains multi-class logistic regression with two nested while
// loops (as the paper describes): an outer Newton loop and an inner
// conjugate-gradient loop whose every iteration evaluates the
// Hessian-vector product X⊤(q ⊙ (Xv)) over the federated X. Labels y are
// 1-based class indices held at the coordinator.
func MLogReg(x engine.Mat, y *matrix.Dense, cfg MLogRegConfig) (res *MLogRegResult, err error) {
	defer engine.Guard(&err)
	lambda := cfg.Lambda
	if lambda == 0 {
		lambda = 1e-3
	}
	maxOuter := cfg.MaxOuterIter
	if maxOuter == 0 {
		maxOuter = 20
	}
	maxInner := cfg.MaxInnerIter
	if maxInner == 0 {
		maxInner = 10
	}
	tol := cfg.Tolerance
	if tol == 0 {
		tol = 1e-6
	}
	k := cfg.Classes
	if k == 0 {
		k = int(y.Max())
	}
	n, d := x.Rows(), x.Cols()
	w := matrix.NewDense(d, k)

	// One-hot targets at the coordinator.
	yOne := matrix.NewDense(n, k)
	for i := 0; i < n; i++ {
		yOne.Set(i, int(y.At(i, 0))-1, 1)
	}

	outer, innerTotal := 0, 0
	for ; outer < maxOuter; outer++ {
		// Class probabilities P = softmax(X %*% W): the product stays
		// federated; the per-class columns consolidate as aggregates only
		// via the gradient below.
		xw := engine.MatMul(x, w)
		p := engine.Local(engine.Softmax(xw))
		engine.Free(xw)

		// Gradient G = t(X) %*% (P - Y1) + lambda*W.
		g := engine.Local(engine.TMatMul(x, p.Sub(yOne)))
		g.AxpyInPlace(lambda, w)
		if g.Norm2() < tol {
			break
		}

		// Newton direction per class via CG with Hessian-vector products
		// Hv = X⊤(q ⊙ (Xv)) + lambda v, q = p_c(1-p_c) — the paper's inner
		// X⊤(w ⊙ (Xv)) pattern, one fused federated mmchain per iteration.
		for c := 0; c < k; c++ {
			q := matrix.NewDense(n, 1)
			for i := 0; i < n; i++ {
				pc := p.At(i, c)
				q.Set(i, 0, pc*(1-pc)+1e-8)
			}
			gc := g.SliceCols(c, c+1)
			dir := matrix.NewDense(d, 1)
			r := gc.Neg()
			pv := r.Clone()
			rs := matrix.Dot(r, r)
			for inner := 0; inner < maxInner && rs > 1e-16; inner++ {
				hv := engine.MMChain(x, pv, q)
				hv.AxpyInPlace(lambda, pv)
				alpha := rs / matrix.Dot(pv, hv)
				dir.AxpyInPlace(alpha, pv)
				r.AxpyInPlace(-alpha, hv)
				rsNew := matrix.Dot(r, r)
				beta := rsNew / rs
				for i, rv := range r.Data() {
					pv.Data()[i] = rv + beta*pv.Data()[i]
				}
				rs = rsNew
				innerTotal++
			}
			for i := 0; i < d; i++ {
				w.Set(i, c, w.At(i, c)+dir.At(i, 0))
			}
		}
	}
	return &MLogRegResult{Weights: w, OuterIters: outer, InnerIters: innerTotal}, nil
}

// Predict returns the 1-based predicted class per row.
func (m *MLogRegResult) Predict(x engine.Mat) (out *matrix.Dense, err error) {
	defer engine.Guard(&err)
	scores := engine.MatMul(x, m.Weights)
	pred := engine.Local(engine.RowIndexMax(scores))
	engine.Free(scores)
	return pred, nil
}

// ClassAccuracy computes the fraction of exact class matches for 1-based
// class index vectors.
func ClassAccuracy(pred, y *matrix.Dense) float64 {
	correct := 0
	for i, p := range pred.Data() {
		if p == y.Data()[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred.Data()))
}
