package algo

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"exdra/internal/matrix"
)

// GMMConfig configures a diagonal-covariance Gaussian mixture model — the
// unsupervised anomaly-detection model of the fertilizer production use
// case (§2.1).
type GMMConfig struct {
	K             int     // mixture components (default 3)
	MaxIterations int     // EM iterations (default 50)
	Tolerance     float64 // log-likelihood improvement threshold (default 1e-6)
	Seed          int64
	MinVariance   float64 // variance floor (default 1e-6)
}

// GMMResult is a fitted mixture.
type GMMResult struct {
	Weights       []float64     // K mixing weights
	Means         *matrix.Dense // K x cols
	Variances     *matrix.Dense // K x cols (diagonal covariances)
	LogLikelihood float64
	Iterations    int
}

// GMM fits a diagonal-covariance Gaussian mixture with EM on a local
// matrix. In the ExDRa pipelines multiple GMM instances are trained
// task-parallel per federated site (see TrainGMMEnsemble), matching the
// paper's "task-parallel training of multiple GMM instances".
func GMM(x *matrix.Dense, cfg GMMConfig) (*GMMResult, error) {
	k := cfg.K
	if k == 0 {
		k = 3
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 50
	}
	tol := cfg.Tolerance
	if tol == 0 {
		tol = 1e-6
	}
	minVar := cfg.MinVariance
	if minVar == 0 {
		minVar = 1e-6
	}
	n, d := x.Rows(), x.Cols()
	if n < k {
		return nil, fmt.Errorf("algo: GMM needs at least K=%d rows, have %d", k, n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Initialize means at random rows, unit variances, uniform weights.
	means := matrix.NewDense(k, d)
	for i := 0; i < k; i++ {
		copy(means.Row(i), x.Row(rng.Intn(n)))
	}
	vars := matrix.Fill(k, d, 1)
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 1 / float64(k)
	}

	resp := matrix.NewDense(n, k)
	prevLL := math.Inf(-1)
	var ll float64
	iters := 0
	for ; iters < maxIter; iters++ {
		// E-step: responsibilities via log-sum-exp.
		ll = 0
		for i := 0; i < n; i++ {
			row := x.Row(i)
			logp := make([]float64, k)
			mx := math.Inf(-1)
			for c := 0; c < k; c++ {
				lp := math.Log(weights[c])
				for j := 0; j < d; j++ {
					v := vars.At(c, j)
					diff := row[j] - means.At(c, j)
					lp += -0.5 * (math.Log(2*math.Pi*v) + diff*diff/v)
				}
				logp[c] = lp
				if lp > mx {
					mx = lp
				}
			}
			sum := 0.0
			for c := 0; c < k; c++ {
				logp[c] = math.Exp(logp[c] - mx)
				sum += logp[c]
			}
			for c := 0; c < k; c++ {
				resp.Set(i, c, logp[c]/sum)
			}
			ll += mx + math.Log(sum)
		}
		if ll-prevLL < tol*math.Abs(prevLL) && iters > 0 {
			break
		}
		prevLL = ll

		// M-step.
		for c := 0; c < k; c++ {
			nc := 0.0
			for i := 0; i < n; i++ {
				nc += resp.At(i, c)
			}
			weights[c] = nc / float64(n)
			for j := 0; j < d; j++ {
				mu := 0.0
				for i := 0; i < n; i++ {
					mu += resp.At(i, c) * x.At(i, j)
				}
				mu /= nc
				means.Set(c, j, mu)
				va := 0.0
				for i := 0; i < n; i++ {
					diff := x.At(i, j) - mu
					va += resp.At(i, c) * diff * diff
				}
				va /= nc
				if va < minVar {
					va = minVar
				}
				vars.Set(c, j, va)
			}
		}
	}
	return &GMMResult{Weights: weights, Means: means, Variances: vars,
		LogLikelihood: ll, Iterations: iters}, nil
}

// LogDensity returns the per-row mixture log-density — low values flag
// anomalies in the fertilizer monitoring pipeline.
func (m *GMMResult) LogDensity(x *matrix.Dense) *matrix.Dense {
	n, d := x.Rows(), x.Cols()
	k := len(m.Weights)
	out := matrix.NewDense(n, 1)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		mx := math.Inf(-1)
		logp := make([]float64, k)
		for c := 0; c < k; c++ {
			lp := math.Log(m.Weights[c])
			for j := 0; j < d; j++ {
				v := m.Variances.At(c, j)
				diff := row[j] - m.Means.At(c, j)
				lp += -0.5 * (math.Log(2*math.Pi*v) + diff*diff/v)
			}
			logp[c] = lp
			if lp > mx {
				mx = lp
			}
		}
		sum := 0.0
		for c := 0; c < k; c++ {
			sum += math.Exp(logp[c] - mx)
		}
		out.Set(i, 0, mx+math.Log(sum))
	}
	return out
}

// TrainGMMEnsemble trains one GMM per input partition concurrently —
// the task-parallel multi-instance training of §6.3's pipeline discussion.
func TrainGMMEnsemble(parts []*matrix.Dense, cfg GMMConfig) ([]*GMMResult, error) {
	results := make([]*GMMResult, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *matrix.Dense) {
			defer wg.Done()
			c := cfg
			c.Seed = cfg.Seed + int64(i)
			results[i], errs[i] = GMM(p, c)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
