// Package algo implements the batch ML algorithms of the ExDRa evaluation
// (§6.1): linear regression (LM, conjugate gradient), L2-regularized SVM,
// multinomial logistic regression, K-Means, PCA, and Gaussian mixture
// models. Every algorithm is written as a backend-agnostic "script" against
// package engine, so the identical code trains on local and on federated
// matrices — the property the paper's federated runtime provides for
// SystemDS built-ins.
package algo

import (
	"math"

	"exdra/internal/engine"
	"exdra/internal/matrix"
)

// LMConfig configures conjugate-gradient linear regression (the iterative
// lmCG method SystemDS selects for ncol(X) > 1024, and the one the paper's
// LM experiment exercises).
type LMConfig struct {
	// Lambda is the L2 regularization constant (default 1e-3 if zero and
	// UseZeroLambda is false).
	Lambda float64
	// Tolerance on the relative residual norm (default 1e-9).
	Tolerance float64
	// MaxIterations caps CG iterations (default ncol(X)).
	MaxIterations int
	// Intercept adds a bias column of ones when true.
	Intercept bool
}

// LMResult is a trained linear model.
type LMResult struct {
	// Weights is the (cols [+1 intercept]) x 1 coefficient vector.
	Weights *matrix.Dense
	// Iterations is the number of CG iterations performed.
	Iterations int
}

// LM fits y ~ X w by conjugate gradient on the normal equations
// (t(X)X + lambda I) w = t(X) y, evaluating each Hessian-vector product as
// the fused federated chain t(X) %*% (X %*% p) — the X⊤(Xv) per-iteration
// pattern the paper describes for LM.
func LM(x engine.Mat, y *matrix.Dense, cfg LMConfig) (res *LMResult, err error) {
	defer engine.Guard(&err)
	lambda := cfg.Lambda
	if lambda == 0 {
		lambda = 1e-3
	}
	tol := cfg.Tolerance
	if tol == 0 {
		tol = 1e-9
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = x.Cols()
	}
	n := x.Cols()

	// r = -t(X) %*% y   (gradient at w = 0)
	r := engine.Local(engine.TMatMul(x, y)).Neg()
	w := matrix.NewDense(n, 1)
	p := r.Neg()
	normR2 := matrix.Dot(r, r)
	norm0 := math.Sqrt(normR2)
	iters := 0
	for normR2 > tol*tol*norm0*norm0 && iters < maxIter {
		// q = t(X) %*% (X %*% p) + lambda * p — one fused mmchain per
		// iteration over the federated X.
		q := engine.MMChain(x, p, nil)
		q.AxpyInPlace(lambda, p)
		alpha := normR2 / matrix.Dot(p, q)
		w.AxpyInPlace(alpha, p)
		r.AxpyInPlace(alpha, q)
		newNorm := matrix.Dot(r, r)
		beta := newNorm / normR2
		for i, rv := range r.Data() {
			p.Data()[i] = -rv + beta*p.Data()[i]
		}
		normR2 = newNorm
		iters++
	}
	return &LMResult{Weights: w, Iterations: iters}, nil
}

// Predict computes X %*% w as a local vector.
func (m *LMResult) Predict(x engine.Mat) (out *matrix.Dense, err error) {
	defer engine.Guard(&err)
	return engine.Local(engine.MatMul(x, m.Weights)), nil
}

// R2 computes the coefficient of determination of predictions against
// targets.
func R2(pred, y *matrix.Dense) float64 {
	meanY := y.Mean()
	ssRes, ssTot := 0.0, 0.0
	for i, p := range pred.Data() {
		d := y.Data()[i] - p
		ssRes += d * d
		t := y.Data()[i] - meanY
		ssTot += t * t
	}
	return 1 - ssRes/ssTot
}
