package bench

import (
	"exdra/internal/obs"
)

// SmokeScale is the fixed workload of the CI bench smoke: small enough to
// finish in seconds, matrix-heavy enough (a ~3 MB feature matrix moved
// repeatedly) that the encode/decode phases dominate and a serialization
// regression is visible above noise. Deliberately independent of
// DefaultScale and the EXDRA_* env knobs so the committed BENCH_smoke.json
// stays comparable across machines and runs.
func SmokeScale() Scale {
	return Scale{
		Rows: 4000, Cols: 100,
		KMeansK: 4, PCAK: 4,
		FFNEpochs: 1, FFNBatch: 256, FFNHidden: 16,
		CNNRows: 64, CNNEpochs: 1, CNNBatch: 32, CNNFilters: 2,
		PipeRows: 500, PipeSignals: 8, PipeRecipes: 10,
		Seed: 42,
	}
}

// Smoke runs the CI bench smoke under the given wire format: the pure
// transfer microbenchmark plus a short LM training run, FedLAN with two
// workers, counters isolated in a fresh registry. The resulting rows feed
// BENCH_smoke.json and the ci.sh CompareEncDec gate.
func Smoke(gob bool) ([]Measurement, error) {
	w := NewWorkloads(SmokeScale())
	env := Env{Mode: FedLAN, Workers: 2, Gob: gob, Metrics: obs.New()}
	cl, err := env.Cluster()
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	xfer, err := w.RunTransfer(env, cl, 5)
	if err != nil {
		return nil, err
	}
	lm, err := w.RunAlgorithm("lm", env, cl)
	if err != nil {
		return nil, err
	}
	return []Measurement{xfer, lm}, nil
}

// WireBench produces the before/after wire-format comparison rows
// (BENCH_wire_gob.json / BENCH_wire_binary.json): the transfer
// microbenchmark plus LM and K-Means under FedLAN and FedWAN, two workers
// each, counters isolated per cluster. Run once with gob=true and once
// with gob=false to quantify what the binary framing buys; the enc_s/dec_s
// columns are the evidence.
func WireBench(gob bool) ([]Measurement, error) {
	w := NewWorkloads(SmokeScale())
	var out []Measurement
	for _, mode := range []Mode{FedLAN, FedWAN} {
		env := Env{Mode: mode, Workers: 2, Gob: gob, Metrics: obs.New()}
		cl, err := env.Cluster()
		if err != nil {
			return nil, err
		}
		reps := 3
		if mode == FedWAN {
			reps = 2 // the emulated 1.7 MB/s link makes each rep seconds-long
		}
		xfer, err := w.RunTransfer(env, cl, reps)
		if err != nil {
			cl.Close()
			return nil, err
		}
		out = append(out, xfer)
		for _, alg := range []string{"lm", "kmeans"} {
			m, err := w.RunAlgorithm(alg, env, cl)
			if err != nil {
				cl.Close()
				return nil, err
			}
			out = append(out, m)
		}
		cl.Close()
	}
	return out, nil
}
