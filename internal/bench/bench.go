// Package bench is the experiment harness reproducing the tables and
// figures of ExDRa §6 (see DESIGN.md's experiment index): workload
// generators, environment setup (Local / Federated LAN / Federated WAN /
// WAN+SSL), parameter sweeps over the number of federated workers, and
// printers that emit the same rows/series the paper reports. Both
// cmd/expbench and the repository-root testing.B benchmarks drive it.
package bench

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"exdra/internal/fedtest"
	"exdra/internal/netem"
	"exdra/internal/obs"
)

// Mode is an execution environment of §6.1.
type Mode string

// Execution environments.
const (
	// Local is single-node, in-memory execution (the paper's main
	// baseline).
	Local Mode = "local"
	// FedLAN is the federated backend on an un-delayed network.
	FedLAN Mode = "fed-lan"
	// FedWAN adds the paper's Copenhagen–Graz WAN characteristics.
	FedWAN Mode = "fed-wan"
	// FedWANSSL is FedWAN with SSL-encrypted channels.
	FedWANSSL Mode = "fed-wan+ssl"
)

// Scale sizes the synthetic workloads. The defaults are laptop-scale but
// preserve the paper's runtime shapes; raise them (flags/env) to approach
// the paper's 1M x 1,050 setting.
type Scale struct {
	// Rows and Cols size the dense feature matrix (paper: 1M x 1,050).
	Rows, Cols int
	// KMeansK is the number of centroids (paper: 50).
	KMeansK int
	// PCAK is the number of projected features (paper: 10).
	PCAK int
	// FFNEpochs/FFNBatch configure the FFN PS run (paper: 5 epochs, 512).
	FFNEpochs, FFNBatch, FFNHidden int
	// CNNRows sizes the MNIST-like set (paper: 60K); CNNEpochs/CNNBatch
	// as in the paper (2 epochs, 128).
	CNNRows, CNNEpochs, CNNBatch, CNNFilters int
	// PipeRows/PipeSignals/PipeRecipes size the P2 raw table.
	PipeRows, PipeSignals, PipeRecipes int
	// Seed for all generators.
	Seed int64
}

// DefaultScale returns the scaled-down default configuration.
func DefaultScale() Scale {
	s := Scale{
		Rows: 4000, Cols: 60,
		KMeansK: 8, PCAK: 10,
		FFNEpochs: 5, FFNBatch: 256, FFNHidden: 64,
		CNNRows: 400, CNNEpochs: 1, CNNBatch: 64, CNNFilters: 4,
		PipeRows: 3000, PipeSignals: 20, PipeRecipes: 40,
		Seed: 42,
	}
	s.applyEnv()
	return s
}

// applyEnv lets EXDRA_ROWS / EXDRA_COLS / EXDRA_CNN_ROWS / EXDRA_PIPE_ROWS
// scale experiments up toward the paper's sizes without code changes.
func (s *Scale) applyEnv() {
	if v, ok := envInt("EXDRA_ROWS"); ok {
		s.Rows = v
	}
	if v, ok := envInt("EXDRA_COLS"); ok {
		s.Cols = v
	}
	if v, ok := envInt("EXDRA_CNN_ROWS"); ok {
		s.CNNRows = v
	}
	if v, ok := envInt("EXDRA_PIPE_ROWS"); ok {
		s.PipeRows = v
	}
}

func envInt(key string) (int, bool) {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n, true
		}
	}
	return 0, false
}

// Env binds a mode to a worker count.
type Env struct {
	Mode    Mode
	Workers int
	// Gob pins the federation to the legacy pure-gob wire format, for
	// before/after encoding comparisons (BENCH_wire_*.json).
	Gob bool
	// Metrics, when non-nil, isolates the run's counters in a dedicated
	// registry so folded deltas cannot be polluted by concurrent activity
	// on obs.Default().
	Metrics *obs.Registry
}

// Cluster starts the federation matching the env (nil cluster for Local).
func (e Env) Cluster() (*fedtest.Cluster, error) {
	if e.Mode == Local {
		return nil, nil
	}
	cfg := fedtest.Config{Workers: e.Workers, ForceGob: e.Gob, Metrics: e.Metrics}
	switch e.Mode {
	case FedLAN:
	case FedWAN:
		cfg.Netem = netem.WAN()
	case FedWANSSL:
		cfg.Netem = netem.WAN()
		cfg.TLS = true
	default:
		return nil, fmt.Errorf("bench: unknown mode %q", e.Mode)
	}
	return fedtest.Start(cfg)
}

// Measurement is one experiment data point.
type Measurement struct {
	Experiment string
	Algorithm  string
	Mode       Mode
	Workers    int
	Elapsed    time.Duration
	// Extra carries experiment-specific values (accuracy, R2, bytes moved).
	Extra map[string]float64
}

// Row renders the measurement as a result-table row.
func (m Measurement) Row() string {
	s := fmt.Sprintf("%-8s %-10s %-12s workers=%-2d time=%10.3fs",
		m.Experiment, m.Algorithm, m.Mode, m.Workers, m.Elapsed.Seconds())
	for _, k := range sortedKeys(m.Extra) {
		s += fmt.Sprintf(" %s=%.4g", k, m.Extra[k])
	}
	return s
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
