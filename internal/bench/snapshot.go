package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Row is one measurement in a persisted benchmark snapshot (BENCH_*.json):
// the Measurement fields flattened to JSON-stable types.
type Row struct {
	Experiment string             `json:"experiment"`
	Algorithm  string             `json:"algorithm"`
	Mode       string             `json:"mode"`
	Workers    int                `json:"workers"`
	Seconds    float64            `json:"seconds"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is a persisted set of benchmark rows. Wire records the RPC
// encoding the rows were measured under ("binary" or "gob") so before/after
// files are self-describing.
type Snapshot struct {
	Name string `json:"name"`
	Wire string `json:"wire"`
	Rows []Row  `json:"rows"`
}

// WireName renders an env's encoding for Snapshot.Wire.
func WireName(gob bool) string {
	if gob {
		return "gob"
	}
	return "binary"
}

// NewSnapshot flattens measurements into a snapshot.
func NewSnapshot(name, wire string, ms []Measurement) Snapshot {
	s := Snapshot{Name: name, Wire: wire}
	for _, m := range ms {
		s.Rows = append(s.Rows, Row{
			Experiment: m.Experiment, Algorithm: m.Algorithm, Mode: string(m.Mode),
			Workers: m.Workers, Seconds: m.Elapsed.Seconds(), Extra: m.Extra,
		})
	}
	return s
}

// WriteFile persists the snapshot as indented JSON.
func (s Snapshot) WriteFile(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadSnapshot loads a persisted snapshot.
func ReadSnapshot(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("bench: parse %s: %v", path, err)
	}
	return s, nil
}

// key identifies a row across snapshots.
func (r Row) key() string {
	return fmt.Sprintf("%s/%s/%s/%d", r.Experiment, r.Algorithm, r.Mode, r.Workers)
}

// encDec sums a row's encode and decode phase seconds; ok reports whether
// the row carries phase columns at all.
func (r Row) encDec() (float64, bool) {
	enc, eok := r.Extra["enc_s"]
	dec, dok := r.Extra["dec_s"]
	return enc + dec, eok || dok
}

// CompareEncDec is the CI regression gate on serialization cost: for every
// row present in both snapshots it fails when the current encode+decode
// phase seconds exceed max(maxRatio x baseline, floorSeconds). The floor
// absorbs scheduler noise on rows whose absolute cost is tiny — a 3 ms
// blip on a 1 ms baseline is not a regression worth failing CI over.
func CompareEncDec(base, cur Snapshot, maxRatio, floorSeconds float64) error {
	baseRows := map[string]Row{}
	for _, r := range base.Rows {
		baseRows[r.key()] = r
	}
	var bad []string
	matched := 0
	for _, r := range cur.Rows {
		b, ok := baseRows[r.key()]
		if !ok {
			continue
		}
		curED, curOK := r.encDec()
		baseED, baseOK := b.encDec()
		if !curOK || !baseOK {
			continue
		}
		matched++
		limit := maxRatio * baseED
		if limit < floorSeconds {
			limit = floorSeconds
		}
		if curED > limit {
			bad = append(bad, fmt.Sprintf("%s: enc+dec %.4fs > limit %.4fs (baseline %.4fs x %.1f)",
				r.key(), curED, limit, baseED, maxRatio))
		}
	}
	if matched == 0 {
		return fmt.Errorf("bench: no comparable rows between %q and %q", base.Name, cur.Name)
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench: serialization regression:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}
