package bench

import (
	"fmt"
	"time"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/engine"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/matrix"
	"exdra/internal/nn"
	"exdra/internal/obs"
	"exdra/internal/paramserv"
	"exdra/internal/pipeline"
	"exdra/internal/privacy"
)

// Workloads holds the synthetic datasets of §6.1, generated once per scale.
type Workloads struct {
	Scale Scale
	// Regression features/targets (LM).
	XReg, YReg *matrix.Dense
	// Binary classification (L2SVM, labels ±1).
	XCls, YCls *matrix.Dense
	// Multi-class (MLogReg, FFN; 1-based labels, 4 classes).
	XMC, YMC *matrix.Dense
	// Clustering blobs (K-Means, PCA).
	XBlobs *matrix.Dense
	// MNIST-shaped images (CNN).
	XMNIST, YMNIST *matrix.Dense
}

// NewWorkloads generates all datasets for a scale.
func NewWorkloads(sc Scale) *Workloads {
	w := &Workloads{Scale: sc}
	w.XReg, w.YReg = data.Regression(sc.Seed, sc.Rows, sc.Cols, 0.05)
	w.XCls, w.YCls = data.Classification(sc.Seed+1, sc.Rows, sc.Cols, 0.01)
	w.XMC, w.YMC = data.MultiClass(sc.Seed+2, sc.Rows, sc.Cols, 4)
	w.XBlobs, _ = data.Blobs(sc.Seed+3, sc.Rows, sc.Cols, sc.KMeansK, 1)
	w.XMNIST, w.YMNIST = data.SyntheticMNIST(sc.Seed+4, sc.CNNRows)
	return w
}

// AlgorithmNames lists the Figure 5 workloads in paper order.
var AlgorithmNames = []string{"lm", "l2svm", "mlogreg", "kmeans", "pca", "ffn", "cnn"}

// featuresFor returns the feature matrix an algorithm trains on.
func (w *Workloads) featuresFor(name string) *matrix.Dense {
	switch name {
	case "lm":
		return w.XReg
	case "l2svm":
		return w.XCls
	case "mlogreg", "ffn":
		return w.XMC
	case "kmeans", "pca":
		return w.XBlobs
	case "cnn":
		return w.XMNIST
	default:
		return nil
	}
}

// RunAlgorithm executes one Figure 5 workload in the given environment,
// returning the timed measurement. The cluster (nil for Local) is reused
// across runs so connection setup is not measured; distribution of the
// synthetic data to the workers happens before the timer starts, standing
// in for the paper's pre-partitioned federated files.
func (w *Workloads) RunAlgorithm(name string, env Env, cl *fedtest.Cluster) (Measurement, error) {
	xLocal := w.featuresFor(name)
	if xLocal == nil {
		return Measurement{}, fmt.Errorf("bench: unknown algorithm %q", name)
	}
	var x engine.Mat = xLocal
	var baseBytes int64
	if cl != nil {
		fx, err := federated.Distribute(cl.Coord, xLocal, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
		if err != nil {
			return Measurement{}, err
		}
		x = fx
		baseBytes = cl.Coord.BytesSent()
		defer cl.Coord.ClearAll()
	}
	m := Measurement{Experiment: "fig5", Algorithm: name, Mode: env.Mode,
		Workers: env.Workers, Extra: map[string]float64{}}
	reg := runRegistry(cl)
	obsBase := reg.Snapshot()
	start := time.Now()
	var err error
	switch name {
	case "lm":
		var res *algo.LMResult
		res, err = algo.LM(x, w.YReg, algo.LMConfig{MaxIterations: 25})
		if err == nil {
			m.Extra["iters"] = float64(res.Iterations)
		}
	case "l2svm":
		var res *algo.L2SVMResult
		res, err = algo.L2SVM(x, w.YCls, algo.L2SVMConfig{MaxIterations: 15})
		if err == nil {
			m.Extra["iters"] = float64(res.Iterations)
		}
	case "mlogreg":
		var res *algo.MLogRegResult
		res, err = algo.MLogReg(x, w.YMC, algo.MLogRegConfig{MaxOuterIter: 3, MaxInnerIter: 5})
		if err == nil {
			m.Extra["iters"] = float64(res.InnerIters)
		}
	case "kmeans":
		var res *algo.KMeansResult
		res, err = algo.KMeans(x, algo.KMeansConfig{K: w.Scale.KMeansK, MaxIterations: 10, Seed: w.Scale.Seed})
		if err == nil {
			m.Extra["wcss"] = res.WCSS
		}
	case "pca":
		var proj engine.Mat
		_, proj, err = algo.PCA(x, algo.PCAConfig{K: w.Scale.PCAK})
		if err == nil {
			engine.Free(proj)
		}
	case "ffn":
		err = w.runPS(x, w.YMC, nn.FFNSpec(w.Scale.Cols, w.Scale.FFNHidden, 4, nn.LossSoftmaxCE),
			nn.OptimizerConfig{Kind: "nesterov", LR: 0.02, Mu: 0.9},
			w.Scale.FFNEpochs, w.Scale.FFNBatch, env, &m)
	case "cnn":
		err = w.runPS(x, w.YMNIST, nn.CNNSpec(1, 28, 28, w.Scale.CNNFilters, 10),
			nn.OptimizerConfig{Kind: "sgd", LR: 0.05},
			w.Scale.CNNEpochs, w.Scale.CNNBatch, env, &m)
	}
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: %s on %s: %w", name, env.Mode, err)
	}
	m.Elapsed = time.Since(start)
	if cl != nil {
		// Communication during training only (the pre-distribution of the
		// synthetic data stands in for pre-existing federated files).
		m.Extra["mb_sent"] = float64(cl.Coord.BytesSent()-baseBytes) / 1e6
		foldObsDelta(&m, reg, obsBase)
	}
	return m, nil
}

// runRegistry resolves the registry a run's obs deltas are read from: the
// cluster's (isolated when the env configured one) or the process default.
func runRegistry(cl *fedtest.Cluster) *obs.Registry {
	if cl != nil {
		return cl.Registry()
	}
	return obs.Default()
}

// RunTransfer is the wire-format microbenchmark: it round-trips the
// regression feature matrix through the federation reps times — Distribute
// (PUT to every worker) followed by Consolidate (GET from every worker) —
// with no compute in between, so encode/decode and network dominate the
// measurement the way the paper's WAN transfer costs do. Requires a
// cluster (there is no local baseline for a transfer).
func (w *Workloads) RunTransfer(env Env, cl *fedtest.Cluster, reps int) (Measurement, error) {
	if cl == nil {
		return Measurement{}, fmt.Errorf("bench: transfer workload needs a federated env, got %s", env.Mode)
	}
	if reps <= 0 {
		reps = 1
	}
	m := Measurement{Experiment: "xfer", Algorithm: "transfer", Mode: env.Mode,
		Workers: env.Workers, Extra: map[string]float64{"reps": float64(reps)}}
	defer cl.Coord.ClearAll()
	reg := runRegistry(cl)
	obsBase := reg.Snapshot()
	baseBytes := cl.Coord.BytesSent()
	start := time.Now()
	for i := 0; i < reps; i++ {
		fx, err := federated.Distribute(cl.Coord, w.XReg, cl.Addrs, federated.RowPartitioned, privacy.Public)
		if err != nil {
			return Measurement{}, err
		}
		back, err := fx.Consolidate()
		if err != nil {
			return Measurement{}, err
		}
		if back.Rows() != w.XReg.Rows() || back.Cols() != w.XReg.Cols() {
			return Measurement{}, fmt.Errorf("bench: transfer returned %dx%d for %dx%d",
				back.Rows(), back.Cols(), w.XReg.Rows(), w.XReg.Cols())
		}
		if err := fx.Free(); err != nil {
			return Measurement{}, err
		}
	}
	m.Elapsed = time.Since(start)
	m.Extra["mb_sent"] = float64(cl.Coord.BytesSent()-baseBytes) / 1e6
	foldObsDelta(&m, reg, obsBase)
	return m, nil
}

// runPS dispatches the parameter-server workloads (FFN, CNN): local
// multi-threaded mode for Local, federated mode otherwise.
func (w *Workloads) runPS(x engine.Mat, y *matrix.Dense, spec nn.Spec, opt nn.OptimizerConfig,
	epochs, batch int, env Env, m *Measurement) error {
	cfg := paramserv.Config{Spec: spec, Optimizer: opt, UpdateType: paramserv.BSP,
		Epochs: epochs, BatchSize: batch, Seed: w.Scale.Seed}
	var res *paramserv.Result
	var err error
	if fx, ok := x.(*federated.Matrix); ok {
		res, err = paramserv.TrainFederated(cfg, fx, y)
	} else {
		workers := env.Workers
		if workers <= 0 {
			workers = 4
		}
		res, err = paramserv.TrainLocal(cfg, x.(*matrix.Dense), y, workers)
	}
	if err != nil {
		return err
	}
	if len(res.Losses) > 0 {
		m.Extra["loss"] = res.Losses[len(res.Losses)-1]
	}
	return nil
}

// LMLowerBound estimates the Fed LowerBound series of Figure 5 for LM: the
// local execution time that is not subject to federated computation
// (everything except the per-iteration X kernels).
func (w *Workloads) LMLowerBound() (Measurement, error) {
	// Full local run.
	full, err := w.RunAlgorithm("lm", Env{Mode: Local}, nil)
	if err != nil {
		return Measurement{}, err
	}
	iters := int(full.Extra["iters"])
	// Time of the federated-offloadable kernels: the initial t(X)y and one
	// fused mmchain per iteration.
	v := matrix.NewDense(w.Scale.Cols, 1)
	start := time.Now()
	w.XReg.Transpose().MatMul(w.YReg)
	for i := 0; i < iters; i++ {
		w.XReg.MMChain(v, nil)
	}
	kernels := time.Since(start)
	lb := full.Elapsed - kernels
	if lb < 0 {
		lb = 0
	}
	return Measurement{Experiment: "fig5", Algorithm: "lm", Mode: "fed-lowerbound",
		Elapsed: lb, Extra: map[string]float64{}}, nil
}

// RunPipeline executes Figure 8's P2 pipeline (P2_LM or P2_FNN) in the
// given environment over the paper-production synthetic table.
func (w *Workloads) RunPipeline(trainAlgo string, env Env, cl *fedtest.Cluster) (Measurement, error) {
	full := data.PaperProduction(data.PaperProductionConfig{
		Rows:             w.Scale.PipeRows,
		ContinuousCols:   w.Scale.PipeSignals,
		RecipeCategories: w.Scale.PipeRecipes,
		NullRate:         0.01,
		Seed:             w.Scale.Seed,
	})
	fr, y, err := pipeline.SplitTarget(full, "zstrength")
	if err != nil {
		return Measurement{}, err
	}
	cfg := pipeline.P2Config{
		Spec: data.PaperProductionSpec(), TrainAlgo: trainAlgo,
		FFNHidden: w.Scale.FFNHidden, FFNEpochs: w.Scale.FFNEpochs,
		FFNBatch: w.Scale.FFNBatch, Seed: w.Scale.Seed,
	}
	m := Measurement{Experiment: "fig8", Algorithm: "P2_" + trainAlgo,
		Mode: env.Mode, Workers: env.Workers, Extra: map[string]float64{}}
	var res *pipeline.P2Result
	if cl == nil {
		start := time.Now()
		res, err = pipeline.RunP2Local(fr, y, cfg)
		m.Elapsed = time.Since(start)
	} else {
		ff, derr := federated.DistributeFrame(cl.Coord, fr, cl.Addrs, privacy.PrivateAggregation)
		if derr != nil {
			return Measurement{}, derr
		}
		defer cl.Coord.ClearAll()
		reg := runRegistry(cl)
		obsBase := reg.Snapshot()
		start := time.Now()
		res, err = pipeline.RunP2Federated(ff, y, fr.Names(), cfg)
		m.Elapsed = time.Since(start)
		foldObsDelta(&m, reg, obsBase)
	}
	if err != nil {
		return Measurement{}, err
	}
	m.Extra["r2"] = res.R2
	m.Extra["features"] = float64(res.Features)
	return m, nil
}
