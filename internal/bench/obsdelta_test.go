package bench

import (
	"strings"
	"testing"
)

// TestFederatedRunEmitsRPCBreakdown verifies a federated run's measurement
// carries the observability-registry delta: RPC call counts, per-type
// counts, and the summed phase seconds, alongside mb_sent.
func TestFederatedRunEmitsRPCBreakdown(t *testing.T) {
	w := NewWorkloads(tinyScale())
	env := Env{Mode: FedLAN, Workers: 2}
	cl, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m, err := w.RunAlgorithm("lm", env, cl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Extra["rpc_calls"] <= 0 {
		t.Fatalf("rpc_calls missing from breakdown: %v", m.Extra)
	}
	if m.Extra["rpc_exec_inst"] <= 0 {
		t.Fatalf("per-type count missing from breakdown: %v", m.Extra)
	}
	for _, col := range []string{"enc_s", "net_s", "exec_s", "dec_s"} {
		if _, ok := m.Extra[col]; !ok {
			t.Fatalf("phase column %s missing from breakdown: %v", col, m.Extra)
		}
	}
	row := m.Row()
	for _, want := range []string{"rpc_calls=", "rpc_exec_inst=", "enc_s="} {
		if !strings.Contains(row, want) {
			t.Fatalf("rendered row missing %q: %s", want, row)
		}
	}
}
