package bench

import (
	"fmt"
	"sync"
	"time"

	"exdra/internal/fedrpc"
	"exdra/internal/fedtest"
	"exdra/internal/matrix"
	"exdra/internal/netem"
	"exdra/internal/obs"
)

// Pipeline benchmark geometry: a burst of depth small independent GETs over
// a single emulated-WAN connection, measured once with the legacy lock-step
// exchange (window 1) and once pipelined (window 8). Lock-step pays one RTT
// per call — the burst costs ~depth RTTs; pipelining overlaps the requests
// in flight, so the whole burst fits in a handful of RTTs. The RTT is fixed
// (not netem.WAN's, no bandwidth cap) so rtts_per_batch is comparable
// across machines.
const (
	pipelineRTT    = 35 * time.Millisecond
	pipelineDepth  = 8
	pipelineBursts = 3
	pipelineWindow = 8
)

// PipelineBench produces the BENCH_pipeline.json rows: the depth-8 burst
// latency at a 35 ms RTT under window 1 ("lockstep") and window 8
// ("pipelined"). Each row's rtts_per_batch is the mean burst wall time in
// units of the RTT — the figure the ci.sh gate (CheckPipeline) bounds.
func PipelineBench() ([]Measurement, error) {
	var out []Measurement
	for _, cfg := range []struct {
		algo   string
		window int
	}{
		{"lockstep", 1},
		{"pipelined", pipelineWindow},
	} {
		m, err := runPipelineBurst(cfg.algo, cfg.window)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// runPipelineBurst times pipelineBursts bursts of pipelineDepth concurrent
// single-GET calls against one worker behind a symmetric pipelineRTT link,
// on a coordinator whose per-address pool holds exactly one connection —
// so the burst shares a wire and the window setting alone decides whether
// the calls overlap.
func runPipelineBurst(algoName string, window int) (Measurement, error) {
	cl, err := fedtest.Start(fedtest.Config{
		Workers: 1,
		Netem:   netem.Config{RTT: pipelineRTT},
		Window:  window,
		Metrics: obs.New(),
	})
	if err != nil {
		return Measurement{}, err
	}
	defer cl.Close()
	addr := cl.Addrs[0]

	// Seed the depth objects in one batched call. This also resolves the
	// connection's tag probe, so the measured bursts run at full window.
	small := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	reqs := make([]fedrpc.Request, pipelineDepth)
	ids := make([]int64, pipelineDepth)
	for i := range reqs {
		ids[i] = cl.Coord.NewID()
		reqs[i] = fedrpc.Request{Type: fedrpc.Put, ID: ids[i], Data: fedrpc.MatrixPayload(small)}
	}
	resps, err := cl.Coord.Call(addr, reqs...)
	if err != nil {
		return Measurement{}, err
	}
	for _, r := range resps {
		if !r.OK {
			return Measurement{}, fmt.Errorf("bench: pipeline seed PUT: %s", r.Err)
		}
	}

	start := time.Now()
	for b := 0; b < pipelineBursts; b++ {
		var wg sync.WaitGroup
		errs := make([]error, pipelineDepth)
		for i := 0; i < pipelineDepth; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = cl.Coord.Fetch(addr, ids[i])
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return Measurement{}, fmt.Errorf("bench: pipeline burst GET: %w", err)
			}
		}
	}
	elapsed := time.Since(start)

	perBurst := elapsed / pipelineBursts
	return Measurement{
		Experiment: "pipeline", Algorithm: algoName, Mode: FedWAN, Workers: 1,
		Elapsed: elapsed,
		Extra: map[string]float64{
			"window":         float64(window),
			"depth":          pipelineDepth,
			"bursts":         pipelineBursts,
			"rtt_ms":         pipelineRTT.Seconds() * 1e3,
			"rtts_per_batch": perBurst.Seconds() / pipelineRTT.Seconds(),
		},
	}, nil
}

// CheckPipeline is the CI gate over a PipelineBench snapshot: the pipelined
// burst must land within maxRTTs round trips (lock-step needs ~depth), and
// lock-step must cost at least minSpeedup times the pipelined wall time —
// otherwise pipelining regressed to serialized exchanges without any test
// noticing.
func CheckPipeline(s Snapshot, maxRTTs, minSpeedup float64) error {
	byAlgo := map[string]Row{}
	for _, r := range s.Rows {
		if r.Experiment == "pipeline" {
			byAlgo[r.Algorithm] = r
		}
	}
	pip, ok := byAlgo["pipelined"]
	if !ok {
		return fmt.Errorf("bench: snapshot %q has no pipelined row", s.Name)
	}
	lock, ok := byAlgo["lockstep"]
	if !ok {
		return fmt.Errorf("bench: snapshot %q has no lockstep row", s.Name)
	}
	rtts, ok := pip.Extra["rtts_per_batch"]
	if !ok {
		return fmt.Errorf("bench: pipelined row carries no rtts_per_batch")
	}
	if rtts > maxRTTs {
		return fmt.Errorf("bench: pipelined depth-%d burst took %.2f RTTs (limit %.2f): pipelining is not overlapping calls",
			pipelineDepth, rtts, maxRTTs)
	}
	if pip.Seconds <= 0 {
		return fmt.Errorf("bench: pipelined row has non-positive seconds %.4f", pip.Seconds)
	}
	speedup := lock.Seconds / pip.Seconds
	if speedup < minSpeedup {
		return fmt.Errorf("bench: pipelined bursts only %.2fx faster than lock-step (want >= %.1fx)",
			speedup, minSpeedup)
	}
	return nil
}
