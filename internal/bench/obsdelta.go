package bench

import (
	"strings"

	"exdra/internal/obs"
)

// foldObsDelta folds the observability-registry delta of one timed run into
// the measurement's Extra columns, so BENCH output carries the RPC
// breakdown next to wall time: call/error counts, per-request-type counts
// (rpc_exec_inst, rpc_get, ...), and the summed per-phase seconds
// (enc_s/net_s/exec_s/dec_s). Runners snapshot the run's registry — the
// cluster's isolated one when configured, obs.Default() otherwise (reg nil
// also falls back to the default) — when their timer starts, after data
// distribution, matching the mb_sent convention, and fold the diff when it
// stops.
func foldObsDelta(m *Measurement, reg *obs.Registry, prev obs.Snapshot) {
	if reg == nil {
		reg = obs.Default()
	}
	d := reg.Snapshot().Diff(prev)
	if n := d.Counters["rpc.client.calls"]; n > 0 {
		m.Extra["rpc_calls"] = float64(n)
	}
	if n := d.Counters["rpc.client.errors"]; n > 0 {
		m.Extra["rpc_errors"] = float64(n)
	}
	if n := d.Counters["fed.retries"]; n > 0 {
		m.Extra["rpc_retries"] = float64(n)
	}
	// Service-layer columns: pool churn (checkouts and how many had to wait
	// for a connection) and admission rejections, so a bench row run through
	// fedserve shows contention next to its wall time.
	if n := d.Counters["serve.pool.checkouts"]; n > 0 {
		m.Extra["pool_checkouts"] = float64(n)
	}
	if n := d.Counters["serve.pool.waits"]; n > 0 {
		m.Extra["pool_waits"] = float64(n)
	}
	if n := d.Counters["serve.rejections"]; n > 0 {
		m.Extra["serve_rejections"] = float64(n)
	}
	for name, v := range d.Counters {
		if v > 0 && strings.HasPrefix(name, "rpc.client.requests.") {
			typ := strings.ToLower(strings.TrimPrefix(name, "rpc.client.requests."))
			m.Extra["rpc_"+typ] = float64(v)
		}
	}
	for phase, col := range map[string]string{
		"encode": "enc_s", "network": "net_s", "execute": "exec_s", "decode": "dec_s",
	} {
		if h, ok := d.Histograms["rpc.client.phase."+phase]; ok && h.Count > 0 {
			m.Extra[col] = h.Sum
		}
	}
}
