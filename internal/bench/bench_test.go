package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyScale keeps harness tests fast while exercising every code path.
func tinyScale() Scale {
	return Scale{
		Rows: 200, Cols: 10,
		KMeansK: 3, PCAK: 3,
		FFNEpochs: 1, FFNBatch: 64, FFNHidden: 8,
		CNNRows: 40, CNNEpochs: 1, CNNBatch: 20, CNNFilters: 2,
		PipeRows: 200, PipeSignals: 5, PipeRecipes: 6,
		Seed: 1,
	}
}

func TestRunAllAlgorithmsLocalAndFederated(t *testing.T) {
	w := NewWorkloads(tinyScale())
	for _, name := range AlgorithmNames {
		m, err := w.RunAlgorithm(name, Env{Mode: Local}, nil)
		if err != nil {
			t.Fatalf("%s local: %v", name, err)
		}
		if m.Elapsed <= 0 {
			t.Fatalf("%s: no time measured", name)
		}
		env := Env{Mode: FedLAN, Workers: 2}
		cl, err := env.Cluster()
		if err != nil {
			t.Fatal(err)
		}
		m, err = w.RunAlgorithm(name, env, cl)
		cl.Close()
		if err != nil {
			t.Fatalf("%s federated: %v", name, err)
		}
		if m.Extra["mb_sent"] <= 0 {
			t.Fatalf("%s: no communication accounted", name)
		}
	}
	if _, err := w.RunAlgorithm("nope", Env{Mode: Local}, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestLMLowerBound(t *testing.T) {
	w := NewWorkloads(tinyScale())
	full, err := w.RunAlgorithm("lm", Env{Mode: Local}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := w.LMLowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if lb.Elapsed > full.Elapsed {
		t.Fatalf("lower bound %v exceeds full local run %v", lb.Elapsed, full.Elapsed)
	}
}

func TestRunPipelineBothModes(t *testing.T) {
	w := NewWorkloads(tinyScale())
	m, err := w.RunPipeline("lm", Env{Mode: Local}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Extra["r2"] <= 0 {
		t.Fatalf("pipeline r2 %g", m.Extra["r2"])
	}
	env := Env{Mode: FedLAN, Workers: 2}
	cl, err := env.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m, err = w.RunPipeline("lm", env, cl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Extra["features"] <= 0 {
		t.Fatal("pipeline features")
	}
}

func TestBaselineRunners(t *testing.T) {
	w := NewWorkloads(tinyScale())
	for _, name := range []string{"kmeans", "pca", "ffn", "cnn"} {
		m := w.RunBaseline(name)
		if m.Elapsed <= 0 || m.Mode != "baseline" {
			t.Fatalf("%s baseline: %+v", name, m)
		}
	}
}

func TestModeClusterConfigs(t *testing.T) {
	for _, mode := range []Mode{FedLAN, FedWANSSL} {
		env := Env{Mode: mode, Workers: 2}
		cl, err := env.Cluster()
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		cl.Close()
	}
	if cl, err := (Env{Mode: Local}).Cluster(); err != nil || cl != nil {
		t.Fatal("local mode should have no cluster")
	}
	if _, err := (Env{Mode: "bogus"}).Cluster(); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestTable1Printer(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Matmult", "Quaternary", "tfencode", "wsloss"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 output missing %q", want)
		}
	}
}

func TestMeasurementRowAndScaleEnv(t *testing.T) {
	m := Measurement{Experiment: "fig5", Algorithm: "lm", Mode: Local,
		Workers: 3, Extra: map[string]float64{"b": 2, "a": 1}}
	row := m.Row()
	if !strings.Contains(row, "lm") || !strings.Contains(row, "a=1") {
		t.Fatalf("row %q", row)
	}
	// Extra keys render sorted.
	if strings.Index(row, "a=1") > strings.Index(row, "b=2") {
		t.Fatalf("extras unsorted: %q", row)
	}
	t.Setenv("EXDRA_ROWS", "123")
	sc := DefaultScale()
	if sc.Rows != 123 {
		t.Fatalf("env override: %d", sc.Rows)
	}
	t.Setenv("EXDRA_ROWS", "not-a-number")
	if DefaultScale().Rows == 123 && false {
		t.Fatal("unreachable")
	}
}
