package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"exdra/internal/baseline"
	"exdra/internal/matrix"
)

// Fig5 reproduces Figure 5: basic algorithm comparison (Local vs Federated
// LAN vs Federated WAN) and strong scaling over the number of federated
// workers, plus the Fed LowerBound series for LM.
func Fig5(out io.Writer, sc Scale, workerCounts []int) error {
	fmt.Fprintln(out, "== Figure 5: basic algorithm comparison and scalability ==")
	w := NewWorkloads(sc)
	for _, name := range AlgorithmNames {
		m, err := w.RunAlgorithm(name, Env{Mode: Local}, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, m.Row())
		if name == "lm" {
			lb, err := w.LMLowerBound()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, lb.Row())
		}
		for _, mode := range []Mode{FedLAN, FedWAN} {
			for _, nw := range workerCounts {
				env := Env{Mode: mode, Workers: nw}
				cl, err := env.Cluster()
				if err != nil {
					return err
				}
				m, err := w.RunAlgorithm(name, env, cl)
				cl.Close()
				if err != nil {
					return err
				}
				fmt.Fprintln(out, m.Row())
			}
		}
	}
	return nil
}

// Fig6 reproduces Figure 6: the communication-settings comparison of LM,
// K-Means, and FFN across Federated LAN, WAN, and WAN with SSL encryption.
func Fig6(out io.Writer, sc Scale, workers int) error {
	fmt.Fprintln(out, "== Figure 6: comparison of communication settings ==")
	w := NewWorkloads(sc)
	for _, name := range []string{"lm", "kmeans", "ffn"} {
		for _, mode := range []Mode{FedLAN, FedWAN, FedWANSSL} {
			env := Env{Mode: mode, Workers: workers}
			cl, err := env.Cluster()
			if err != nil {
				return err
			}
			m, err := w.RunAlgorithm(name, env, cl)
			cl.Close()
			if err != nil {
				return err
			}
			m.Experiment = "fig6"
			fmt.Fprintln(out, m.Row())
		}
	}
	return nil
}

// Fig7 reproduces Figure 7: comparison with other ML systems. K-Means and
// PCA run against the Scikit-learn stand-in, FFN and CNN against the
// TensorFlow stand-in (package baseline), in Local and Federated LAN
// configurations of the core system.
func Fig7(out io.Writer, sc Scale, workers int) error {
	fmt.Fprintln(out, "== Figure 7: comparison with other ML systems ==")
	w := NewWorkloads(sc)
	for _, name := range []string{"kmeans", "pca", "ffn", "cnn"} {
		m, err := w.RunAlgorithm(name, Env{Mode: Local}, nil)
		if err != nil {
			return err
		}
		m.Experiment = "fig7"
		fmt.Fprintln(out, m.Row())
		env := Env{Mode: FedLAN, Workers: workers}
		cl, err := env.Cluster()
		if err != nil {
			return err
		}
		m, err = w.RunAlgorithm(name, env, cl)
		cl.Close()
		if err != nil {
			return err
		}
		m.Experiment = "fig7"
		fmt.Fprintln(out, m.Row())
		bm := w.RunBaseline(name)
		fmt.Fprintln(out, bm.Row())
	}
	return nil
}

// RunBaseline times the independent comparator implementation of one
// Figure 7 workload under the same hyper-parameters.
func (w *Workloads) RunBaseline(name string) Measurement {
	m := Measurement{Experiment: "fig7", Algorithm: name, Mode: "baseline", Extra: map[string]float64{}}
	rows := toRows(w.featuresFor(name))
	start := time.Now()
	switch name {
	case "kmeans":
		_, inertia, iters := baseline.KMeans(rows, w.Scale.KMeansK, 10, w.Scale.Seed)
		m.Extra["wcss"] = inertia
		m.Extra["iters"] = float64(iters)
	case "pca":
		_, vals := baseline.PCA(rows, w.Scale.PCAK)
		m.Extra["lambda1"] = vals[0]
	case "ffn":
		labels := zeroBased(w.YMC)
		net := baseline.NewFFN(w.Scale.Cols, w.Scale.FFNHidden, 4, 0.02, 0.9, w.Scale.Seed)
		rng := rand.New(rand.NewSource(w.Scale.Seed))
		var loss float64
		for e := 0; e < w.Scale.FFNEpochs; e++ {
			loss = net.TrainEpoch(rows, labels, w.Scale.FFNBatch, rng)
		}
		m.Extra["loss"] = loss
	case "cnn":
		labels := zeroBased(w.YMNIST)
		net := baseline.NewCNN(w.Scale.CNNFilters, 10, 0.05, w.Scale.Seed)
		rng := rand.New(rand.NewSource(w.Scale.Seed))
		var loss float64
		for e := 0; e < w.Scale.CNNEpochs; e++ {
			loss = net.TrainEpoch(rows, labels, w.Scale.CNNBatch, rng)
		}
		m.Extra["loss"] = loss
	}
	m.Elapsed = time.Since(start)
	return m
}

// Fig8 reproduces Figure 8: P2 pipeline scalability (P2_LM and P2_FNN) with
// the number of federated workers, against local execution.
func Fig8(out io.Writer, sc Scale, workerCounts []int) error {
	fmt.Fprintln(out, "== Figure 8: ML pipeline scalability ==")
	w := NewWorkloads(sc)
	for _, algo := range []string{"lm", "ffn"} {
		m, err := w.RunPipeline(algo, Env{Mode: Local}, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, m.Row())
		for _, nw := range workerCounts {
			env := Env{Mode: FedLAN, Workers: nw}
			cl, err := env.Cluster()
			if err != nil {
				return err
			}
			m, err := w.RunPipeline(algo, env, cl)
			cl.Close()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, m.Row())
		}
	}
	return nil
}

// Table1 prints the supported federated instruction classes of Table 1.
// The coverage itself is verified element-wise against local execution by
// TestTable1Coverage in internal/federated.
func Table1(out io.Writer) {
	fmt.Fprintln(out, "== Table 1: supported federated instructions ==")
	rows := [][2]string{
		{"Matmult", "mm, tsmm, mmchain, tmm (aligned)"},
		{"Aggregates", "sum, min, max, sd, var, mean; rowSums..rowMeans, colSums..colMeans, rowIndexMax"},
		{"Unary", "abs, cos, exp, floor, ceil, isNA, log, !, round, sin, sign, sqrt, tan, sigmoid, softmax"},
		{"Binary", "&, /, ==, >, >=, %/%, <, <=, log, max, min, -, %%, *, !=, |, +, ^, xor"},
		{"Ternary", "ctable, ifelse, +*, -*"},
		{"Quaternary", "wcemm, wdivmm, wsigmoid, wsloss"},
		{"Transform/Reorg", "tfencode, tfapply, tfdecode, rbind, cbind, t, removeEmpty, replace, reshape, X[:,:]"},
	}
	for _, r := range rows {
		fmt.Fprintf(out, "%-16s %s\n", r[0], r[1])
	}
	fmt.Fprintln(out, "(verified vs local execution: go test ./internal/federated -run TestTable1Coverage)")
}

func toRows(m *matrix.Dense) [][]float64 {
	out := make([][]float64, m.Rows())
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

func zeroBased(y *matrix.Dense) []int {
	out := make([]int, y.Rows())
	for i := range out {
		out[i] = int(y.At(i, 0)) - 1
	}
	return out
}
