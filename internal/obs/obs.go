// Package obs is the unified observability layer of ExDRa-Go: a
// stdlib-only metrics registry (counters, gauges, fixed-bucket latency
// histograms — all atomic and lock-cheap on the hot path), per-RPC trace
// spans threaded through the federation via context.Context (span.go), and
// an opt-in HTTP endpoint exposing /metrics and /debug/pprof (http.go).
//
// The paper's §6 experiments hinge on knowing exactly where federated time
// goes — compute vs. transfer vs. serialization — so every layer of the
// runtime (fedrpc client/server, coordinator retry/recovery/health, worker
// request handling, netem fault injection) reports into one registry that
// benchmarks snapshot and operators scrape.
//
// Naming convention: dot-separated lowercase paths, coarse-to-fine
// ("rpc.client.phase.encode"). Histograms observe seconds. A histogram
// name must be registered (with its bucket layout) at exactly one call
// site — enforced by the exdralint obsreg rule — because get-or-create
// semantics silently keep the first bucket layout.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LatencyBuckets is the standard fixed bucket layout for RPC and
// instruction latencies: upper bounds in seconds from 100µs to one minute,
// spanning sub-millisecond LAN instructions to WAN transfers of large
// partitions. An observation above the last bound lands in the implicit
// +Inf bucket.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram. Observations are atomic
// adds (one per bucket hit plus count and sum); bucket bounds are immutable
// after registration.
type Histogram struct {
	bounds []float64      // ascending upper bounds; implicit +Inf last
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value (seconds for latency histograms).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot captures the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry is a namespace of metrics. The maps are guarded by a read-write
// mutex taken only on registration lookups; all metric updates are atomic.
// The zero value is not usable — create registries with New (or use
// Default).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu

	spanMu   sync.Mutex
	spans    []Span // ring of recent RPC spans; guarded by spanMu
	spanNext int    // guarded by spanMu
	spanLen  int    // guarded by spanMu
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = New()

// Default returns the process-wide registry. Libraries default to it when
// no explicit registry is configured, so one /metrics endpoint sees the
// whole process.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating if needed) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with the given name.
// When the name already exists, the existing histogram — and its bucket
// layout — wins and buckets is ignored; register each histogram name at
// exactly one call site (the exdralint obsreg rule enforces this for
// constant names) so layouts cannot silently diverge.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(buckets)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the captured state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds in seconds; Counts has
	// one extra entry for the implicit +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, safe to diff, render,
// and ship. Gauges snapshot their instantaneous value.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric currently registered.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Diff returns the delta s - prev: counters and histogram counts/sums
// subtract (metrics absent from prev count from zero), gauges keep their
// current value. Benchmarks bracket a run with two snapshots and report
// the diff, so standing registries need no reset.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p, ok := prev.Histograms[name]
		if !ok || len(p.Counts) != len(h.Counts) {
			d.Histograms[name] = h
			continue
		}
		dh := HistogramSnapshot{
			Bounds: h.Bounds,
			Counts: make([]int64, len(h.Counts)),
			Count:  h.Count - p.Count,
			Sum:    h.Sum - p.Sum,
		}
		for i := range h.Counts {
			dh.Counts[i] = h.Counts[i] - p.Counts[i]
		}
		d.Histograms[name] = dh
	}
	return d
}

// WriteText renders the snapshot in a flat, grep-friendly text form:
// one "name value" line per counter and gauge, and per histogram a
// "name count=N sum=S" line followed by "name.le.<bound> cumcount" lines.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "%s count=%d sum=%g\n", name, h.Count, h.Sum); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if cum == 0 {
				continue // suppress empty leading buckets: keeps /metrics readable
			}
			if _, err := fmt.Fprintf(w, "%s.le.%g %d\n", name, bound, cum); err != nil {
				return err
			}
		}
		if inf := h.Counts[len(h.Counts)-1]; inf > 0 {
			if _, err := fmt.Fprintf(w, "%s.le.inf %d\n", name, cum+inf); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return err
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
