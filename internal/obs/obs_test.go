package obs

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", []float64{0.001, 0.01, 0.1})
	// On a bound goes into that bound's bucket (SearchFloat64s: v <= bound).
	for _, v := range []float64{0.0005, 0.001, 0.05, 99} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := h.Sum(); math.Abs(got-99.0515) > 1e-9 {
		t.Fatalf("sum = %g, want 99.0515", got)
	}
	s := h.snapshot()
	want := []int64{2, 0, 1, 1} // two ≤0.001, one ≤0.1, one +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := New()
	h := r.Histogram("h", LatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	if got := h.Sum(); math.Abs(got-8) > 1e-6 {
		t.Fatalf("sum = %g, want 8", got)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := New()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(10)
	h := r.Histogram("h", []float64{1})
	h.Observe(0.5)
	prev := r.Snapshot()

	r.Counter("c").Add(2)
	r.Gauge("g").Set(11)
	h.Observe(2)
	d := r.Snapshot().Diff(prev)

	if d.Counters["c"] != 2 {
		t.Fatalf("counter delta = %d, want 2", d.Counters["c"])
	}
	if d.Gauges["g"] != 11 {
		t.Fatalf("gauge in diff = %d, want current value 11", d.Gauges["g"])
	}
	dh := d.Histograms["h"]
	if dh.Count != 1 || math.Abs(dh.Sum-2) > 1e-9 {
		t.Fatalf("hist delta count=%d sum=%g, want 1/2", dh.Count, dh.Sum)
	}
	if dh.Counts[0] != 0 || dh.Counts[1] != 1 {
		t.Fatalf("hist delta buckets = %v, want [0 1]", dh.Counts)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := New()
	r.Counter("rpc.calls").Add(2)
	r.Gauge("workers").Set(3)
	h := r.Histogram("lat", []float64{0.01, 0.1})
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"rpc.calls 2\n", "workers 3\n", "lat count=2 sum=5.05\n",
		"lat.le.0.1 1\n", "lat.le.inf 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "lat.le.0.01") {
		t.Fatalf("empty leading bucket should be suppressed:\n%s", text)
	}

	b.Reset()
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"rpc.calls": 2`) {
		t.Fatalf("json output missing counter:\n%s", b.String())
	}
}

func TestSpanRing(t *testing.T) {
	r := New()
	for i := 0; i < spanRingSize+10; i++ {
		r.RecordSpan(Span{Addr: fmt.Sprintf("w%d", i)})
	}
	spans := r.Spans()
	if len(spans) != spanRingSize {
		t.Fatalf("len = %d, want %d", len(spans), spanRingSize)
	}
	if spans[0].Addr != "w10" || spans[len(spans)-1].Addr != fmt.Sprintf("w%d", spanRingSize+9) {
		t.Fatalf("ring order wrong: first=%s last=%s", spans[0].Addr, spans[len(spans)-1].Addr)
	}
}

func TestSpanContext(t *testing.T) {
	sp := &Span{}
	ctx := WithOp(WithSpan(context.Background(), sp), "train")
	if SpanFrom(ctx) != sp {
		t.Fatal("SpanFrom did not return the installed span")
	}
	if Op(ctx) != "train" {
		t.Fatalf("Op = %q, want train", Op(ctx))
	}
	if SpanFrom(context.Background()) != nil || Op(context.Background()) != "" {
		t.Fatal("empty context should carry no span/op")
	}
}

func TestSpanString(t *testing.T) {
	s := Span{
		Op: "train", Addr: "w1", ReqType: "EXEC_INST", Batch: 2,
		BytesOut: 100, BytesIn: 50,
		Queue: time.Millisecond, Total: 5 * time.Millisecond, Err: "boom",
	}
	line := s.String()
	for _, want := range []string{"op=train", "addr=w1", "type=EXEC_INST", "batch=2", `err="boom"`, "queue=1ms"} {
		if !strings.Contains(line, want) {
			t.Fatalf("span line missing %q: %s", want, line)
		}
	}
	if !strings.Contains(Span{}.String(), "op=-") {
		t.Fatal("empty op should render as dash")
	}
}

func TestMetricsHTTP(t *testing.T) {
	r := New()
	r.Counter("rpc.client.calls").Add(7)
	r.RecordSpan(Span{Addr: "w0", ReqType: "PUT"})
	ms, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := ms.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	get := func(path string) string {
		resp, err := http.Get("http://" + ms.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(body)
	}

	text := get("/metrics")
	if !strings.Contains(text, "rpc.client.calls 7") {
		t.Fatalf("/metrics missing counter:\n%s", text)
	}
	if !strings.Contains(text, "process.uptime_seconds") || !strings.Contains(text, "process.goroutines") {
		t.Fatalf("/metrics missing process gauges:\n%s", text)
	}
	js := get("/metrics?format=json")
	if !strings.Contains(js, `"rpc.client.calls": 7`) {
		t.Fatalf("/metrics json missing counter:\n%s", js)
	}
	spans := get("/debug/rpcs")
	if !strings.Contains(spans, "addr=w0") || !strings.Contains(spans, "type=PUT") {
		t.Fatalf("/debug/rpcs missing span:\n%s", spans)
	}
	if !strings.Contains(get("/debug/pprof/cmdline"), "obs") {
		t.Fatal("/debug/pprof/cmdline did not answer")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter(fmt.Sprintf("c.%d", i%7)).Inc()
				r.Histogram(fmt.Sprintf("h.%d", i%3), LatencyBuckets).Observe(0.01)
				r.RecordSpan(Span{Addr: fmt.Sprintf("g%d", g)})
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
		_ = r.Spans()
	}
	wg.Wait()
	s := r.Snapshot()
	var total int64
	for _, v := range s.Counters {
		total += v
	}
	if total != 4*200 {
		t.Fatalf("counter total = %d, want 800", total)
	}
}
