package obs

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// MetricsServer is the opt-in HTTP endpoint exposing a registry. Routes:
//
//	/metrics          — snapshot, flat text by default, ?format=json for JSON
//	/debug/rpcs       — recent RPC spans, one structured line each
//	/debug/pprof/*    — the standard runtime profiles
//
// Start with Serve, stop with Close (which joins the serve goroutine).
type MetricsServer struct {
	reg   *Registry
	ln    net.Listener
	srv   *http.Server
	wg    sync.WaitGroup
	start time.Time
}

// Serve starts an HTTP metrics endpoint for reg on addr (host:port, port 0
// picks a free one). It returns once the listener is bound; use Addr for
// the resolved address. A nil reg serves the Default registry.
func Serve(addr string, reg *Registry) (*MetricsServer, error) {
	if reg == nil {
		reg = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	ms := &MetricsServer{reg: reg, ln: ln, start: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", ms.handleMetrics)
	mux.HandleFunc("/debug/rpcs", ms.handleSpans)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ms.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ms.wg.Add(1)
	//lint:ignore goroleak joined by wg.Wait in Close/Shutdown, which every caller defers
	go func() {
		defer ms.wg.Done()
		if err := ms.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("obs: metrics server: %v", err)
		}
	}()
	return ms, nil
}

// Addr returns the bound listen address (useful with port 0).
func (ms *MetricsServer) Addr() string { return ms.ln.Addr().String() }

// Close shuts the endpoint down and waits for the serve goroutine.
func (ms *MetricsServer) Close() error {
	err := ms.srv.Close()
	ms.wg.Wait()
	return err
}

// handleMetrics renders a fresh snapshot. Process-level gauges
// (process.uptime_seconds, process.goroutines) are refreshed on every
// scrape so the endpoint always carries at least those, even on an idle
// process — ci.sh's smoke test greps for them.
func (ms *MetricsServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ms.reg.Gauge("process.uptime_seconds").Set(int64(time.Since(ms.start).Seconds()))
	ms.reg.Gauge("process.goroutines").Set(int64(runtime.NumGoroutine()))
	snap := ms.reg.Snapshot()
	var err error
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		err = snap.WriteJSON(w)
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = snap.WriteText(w)
	}
	if err != nil {
		// Headers are already out; all we can do is log.
		log.Printf("obs: render /metrics: %v", err)
	}
}

// handleSpans renders the recent RPC spans, oldest first.
func (ms *MetricsServer) handleSpans(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := ms.reg.WriteSpans(w); err != nil {
		log.Printf("obs: render /debug/rpcs: %v", err)
	}
}

// Shutdown is like Close but drains in-flight requests until ctx expires.
func (ms *MetricsServer) Shutdown(ctx context.Context) error {
	err := ms.srv.Shutdown(ctx)
	ms.wg.Wait()
	return err
}
