package obs

import (
	"context"
	"fmt"
	"io"
	"time"
)

// Span is one RPC trace record: what was asked of which worker, how many
// bytes moved, and where the wall-clock time of the exchange went. The
// phase decomposition (documented in DESIGN.md §6) is:
//
//	Queue   — waiting for the client's exchange slot (calls are serialized
//	          per connection);
//	Encode  — gob-encoding and flushing the request envelope;
//	Network — blocked on the wire minus the server's reported handler time
//	          (clamped at zero: clock domains differ);
//	Execute — the server-reported handler duration (ExecNanos on the reply);
//	Decode  — gob-decoding the reply minus the time blocked on the wire.
//
// Spans are created by fedrpc.Client per exchange; a caller that wants the
// span (or wants to label it) threads one in via WithSpan/WithOp.
type Span struct {
	// Op is the coordinator-level operation label (WithOp), "" when the
	// call was issued outside a labeled operation.
	Op string
	// Addr is the worker address of the exchange.
	Addr string
	// ReqType is the primary (first) request type of the batch; Batch is
	// the number of requests in the envelope.
	ReqType string
	Batch   int
	// BytesOut/BytesIn count the wire bytes of this exchange only.
	BytesOut, BytesIn int64
	// Start is when the caller entered the client.
	Start time.Time
	// Phase timings; see the package comment for the decomposition.
	Queue, Encode, Network, Execute, Decode time.Duration
	// Total is the full exchange duration including queueing.
	Total time.Duration
	// Err is the transport error of a failed exchange ("" on success).
	Err string
}

// String renders the span as one structured key=value line — the same
// format the slow-RPC log uses, so log lines and /debug/rpcs rows read
// identically.
func (s Span) String() string {
	line := fmt.Sprintf("op=%s addr=%s type=%s batch=%d bytes_out=%d bytes_in=%d total=%s queue=%s encode=%s network=%s execute=%s decode=%s",
		orDash(s.Op), s.Addr, s.ReqType, s.Batch, s.BytesOut, s.BytesIn,
		s.Total.Round(time.Microsecond), s.Queue.Round(time.Microsecond),
		s.Encode.Round(time.Microsecond), s.Network.Round(time.Microsecond),
		s.Execute.Round(time.Microsecond), s.Decode.Round(time.Microsecond))
	if s.Err != "" {
		line += fmt.Sprintf(" err=%q", s.Err)
	}
	return line
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

type spanCtxKey struct{}
type opCtxKey struct{}

// WithSpan returns a context carrying sp for the RPC layer to fill in:
// the fedrpc client populates the span of its context (instead of an
// internal one) so callers can inspect per-call phase timings.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// WithOp returns a context labeled with a coordinator-level operation
// name; RPC spans issued under it record the label in Span.Op.
func WithOp(ctx context.Context, op string) context.Context {
	return context.WithValue(ctx, opCtxKey{}, op)
}

// Op returns the operation label carried by ctx ("" when unlabeled).
func Op(ctx context.Context) string {
	op, _ := ctx.Value(opCtxKey{}).(string)
	return op
}

// spanRingSize bounds the recent-span ring per registry.
const spanRingSize = 256

// RecordSpan appends a completed span to the registry's recent-span ring
// (fixed size, oldest overwritten).
func (r *Registry) RecordSpan(s Span) {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	if r.spans == nil {
		r.spans = make([]Span, spanRingSize)
	}
	r.spans[r.spanNext] = s
	r.spanNext = (r.spanNext + 1) % spanRingSize
	if r.spanLen < spanRingSize {
		r.spanLen++
	}
}

// Spans returns the retained spans, oldest first.
func (r *Registry) Spans() []Span {
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	out := make([]Span, 0, r.spanLen)
	start := r.spanNext - r.spanLen
	for i := 0; i < r.spanLen; i++ {
		out = append(out, r.spans[((start+i)%spanRingSize+spanRingSize)%spanRingSize])
	}
	return out
}

// WriteSpans renders the retained spans (oldest first), one per line.
func (r *Registry) WriteSpans(w io.Writer) error {
	for _, s := range r.Spans() {
		if _, err := fmt.Fprintln(w, s.String()); err != nil {
			return err
		}
	}
	return nil
}
