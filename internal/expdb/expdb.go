// Package expdb implements ExDRa's ExperimentDB (§3.3): a model and metric
// store for pipeline versions and their runs — with operator-type
// categorization of pipeline steps, JSON persistence, and query-based run
// comparison — plus the prototype pipeline-recommendation engine that
// embeds pipeline metadata and trains a model to score candidates.
package expdb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// OperatorType is the high-level categorization of a pipeline step.
type OperatorType string

// Operator types (the paper's taxonomy: ensembles, estimators, imputers,
// scalers, selectors, generators, samplers, transformers).
const (
	Ensemble    OperatorType = "ensemble"
	Estimator   OperatorType = "estimator"
	Imputer     OperatorType = "imputer"
	Scaler      OperatorType = "scaler"
	Selector    OperatorType = "selector"
	Generator   OperatorType = "generator"
	Sampler     OperatorType = "sampler"
	Transformer OperatorType = "transformer"
	Unknown     OperatorType = "unknown"
)

// AllOperatorTypes lists the taxonomy in a stable order (used by the
// recommendation embedding).
var AllOperatorTypes = []OperatorType{
	Ensemble, Estimator, Imputer, Scaler, Selector, Generator, Sampler, Transformer,
}

// Categorize assigns an operator type to a pipeline-step name by keyword —
// the parsed-intermediate-representation categorization of §3.3.
func Categorize(step string) OperatorType {
	s := strings.ToLower(step)
	switch {
	case containsAny(s, "ensemble", "boost", "forest", "bagging", "stack"):
		return Ensemble
	case containsAny(s, "impute", "fillna", "mice", "missing"):
		return Imputer
	case containsAny(s, "scale", "normalize", "standardize", "clip", "minmax"):
		return Scaler
	case containsAny(s, "select", "filter_features", "variance_threshold", "chi2"):
		return Selector
	case containsAny(s, "generate", "synthesize", "augment", "polynomial"):
		return Generator
	case containsAny(s, "sample", "split", "holdout", "smote"):
		return Sampler
	case containsAny(s, "encode", "transform", "onehot", "recode", "hash", "bin", "pca", "embed"):
		return Transformer
	case containsAny(s, "lm", "svm", "logreg", "regress", "classif", "kmeans", "gmm", "train", "fit", "ffn", "cnn", "net"):
		return Estimator
	default:
		return Unknown
	}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// Step is one categorized pipeline step.
type Step struct {
	Name string       `json:"name"`
	Type OperatorType `json:"type"`
}

// Run records one execution of a pipeline version: its parameters, data
// characteristics, resulting metrics, model artifact reference, and lineage.
type Run struct {
	ID         string             `json:"id"`
	PipelineID string             `json:"pipeline_id"`
	Version    int                `json:"version"`
	Steps      []Step             `json:"steps"`
	Params     map[string]string  `json:"params,omitempty"`
	DataStats  map[string]float64 `json:"data_stats,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	ModelRef   string             `json:"model_ref,omitempty"`
	Lineage    []string           `json:"lineage,omitempty"`
	StartedAt  time.Time          `json:"started_at"`
	Duration   time.Duration      `json:"duration"`
}

// Store is the model and metric store. A directory-backed store persists
// each run as JSON; an empty dir keeps runs in memory only.
type Store struct {
	mu   sync.Mutex
	dir  string
	runs map[string]*Run // guarded by mu
	next int             // guarded by mu
}

// Open creates or loads a store at dir ("" = in-memory).
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, runs: map[string]*Run{}}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var r Run
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("expdb: corrupt run %s: %w", e.Name(), err)
		}
		s.runs[r.ID] = &r
		s.next++
	}
	return s, nil
}

// Track stores a run, assigning an ID if empty, categorizing steps without
// a type, and persisting when directory-backed.
func (s *Store) Track(r *Run) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.ID == "" {
		s.next++
		r.ID = fmt.Sprintf("run-%06d", s.next)
	}
	for i := range r.Steps {
		if r.Steps[i].Type == "" {
			r.Steps[i].Type = Categorize(r.Steps[i].Name)
		}
	}
	s.runs[r.ID] = r
	if s.dir != "" {
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(s.dir, r.ID+".json"), b, 0o644); err != nil {
			return "", err
		}
	}
	return r.ID, nil
}

// Get returns a run by ID.
func (s *Store) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	return r, ok
}

// Query returns runs matching the filter, sorted by start time.
func (s *Store) Query(filter func(*Run) bool) []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Run
	for _, r := range s.runs {
		if filter == nil || filter(r) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartedAt.Equal(out[j].StartedAt) {
			return out[i].ID < out[j].ID
		}
		return out[i].StartedAt.Before(out[j].StartedAt)
	})
	return out
}

// Len returns the number of stored runs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// Best returns the run with the highest value of the metric.
func (s *Store) Best(metric string) (*Run, bool) {
	runs := s.Query(func(r *Run) bool { _, ok := r.Metrics[metric]; return ok })
	if len(runs) == 0 {
		return nil, false
	}
	best := runs[0]
	for _, r := range runs[1:] {
		if r.Metrics[metric] > best.Metrics[metric] {
			best = r
		}
	}
	return best, true
}

// Compare renders a side-by-side comparison of the given metric across runs
// of one pipeline — the query-based pipeline comparison of §3.3.
func (s *Store) Compare(pipelineID, metric string) []RunMetric {
	runs := s.Query(func(r *Run) bool { return r.PipelineID == pipelineID })
	out := make([]RunMetric, 0, len(runs))
	for _, r := range runs {
		if v, ok := r.Metrics[metric]; ok {
			out = append(out, RunMetric{RunID: r.ID, Version: r.Version, Value: v})
		}
	}
	return out
}

// RunMetric is one row of a comparison.
type RunMetric struct {
	RunID   string
	Version int
	Value   float64
}
