package expdb

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"exdra/internal/matrix"
)

// The recommendation engine of §3.3: pipeline metadata is embedded into a
// fixed-size vector (operator-type counts, hashed parameter buckets, and
// dataset characteristics), and a ridge-regression model trained on past
// runs predicts a score for each candidate. Given a task and dataset, the
// engine returns a ranked list of pipelines for exploration.

// embedDim is the embedding width: one slot per operator type, a bucketed
// parameter hash region, and a dataset-statistics region.
const (
	paramBuckets = 16
	statSlots    = 4
	embedDim     = 8 /* op types */ + paramBuckets + statSlots + 1 /* bias */
)

// Candidate is a pipeline candidate for recommendation scoring.
type Candidate struct {
	PipelineID string
	Steps      []Step
	Params     map[string]string
}

// embed maps steps, parameters, and dataset statistics into the fixed
// embedding space.
func embed(steps []Step, params map[string]string, stats map[string]float64) []float64 {
	v := make([]float64, embedDim)
	for _, st := range steps {
		typ := st.Type
		if typ == "" {
			typ = Categorize(st.Name)
		}
		for i, t := range AllOperatorTypes {
			if typ == t {
				v[i]++
			}
		}
		// Hash the concrete step name as well, so pipelines with the same
		// operator types but different concrete steps stay distinguishable.
		h := fnv.New32a()
		h.Write([]byte("step:" + st.Name))
		v[8+int(h.Sum32()%paramBuckets)]++
	}
	for key, val := range params {
		h := fnv.New32a()
		h.Write([]byte(key + "=" + val))
		v[8+int(h.Sum32()%paramBuckets)]++
	}
	// Dataset characteristics: log-scaled rows/cols, sparsity, class count.
	base := 8 + paramBuckets
	v[base] = math.Log1p(stats["rows"])
	v[base+1] = math.Log1p(stats["cols"])
	v[base+2] = stats["sparsity"]
	v[base+3] = stats["classes"]
	v[embedDim-1] = 1 // bias
	return v
}

// Recommender scores pipeline candidates from the history of tracked runs.
type Recommender struct {
	store  *Store
	metric string
	w      *matrix.Dense // embedDim x 1 ridge weights
}

// NewRecommender fits a ridge-regression scoring model on all runs carrying
// the target metric. At least two such runs are required.
func NewRecommender(store *Store, metric string, lambda float64) (*Recommender, error) {
	runs := store.Query(func(r *Run) bool { _, ok := r.Metrics[metric]; return ok })
	if len(runs) < 2 {
		return nil, fmt.Errorf("expdb: need at least 2 runs with metric %q, have %d", metric, len(runs))
	}
	if lambda <= 0 {
		lambda = 1e-2
	}
	x := matrix.NewDense(len(runs), embedDim)
	y := matrix.NewDense(len(runs), 1)
	for i, r := range runs {
		copy(x.Row(i), embed(r.Steps, r.Params, r.DataStats))
		y.Set(i, 0, r.Metrics[metric])
	}
	// Ridge: (XᵀX + lambda I) w = Xᵀ y.
	a := x.TSMM()
	for i := 0; i < embedDim; i++ {
		a.Set(i, i, a.At(i, i)+lambda)
	}
	b := x.Transpose().MatMul(y)
	w, ok := matrix.SolveCholesky(a, b)
	if !ok {
		w, _ = matrix.SolveCG(a, b, 1e-10, 4*embedDim)
	}
	return &Recommender{store: store, metric: metric, w: w}, nil
}

// Score predicts the metric for a candidate on a dataset.
func (r *Recommender) Score(c Candidate, stats map[string]float64) float64 {
	e := embed(c.Steps, c.Params, stats)
	s := 0.0
	for i, v := range e {
		s += v * r.w.At(i, 0)
	}
	return s
}

// Ranked is one recommendation.
type Ranked struct {
	Candidate Candidate
	Score     float64
}

// Recommend returns candidates ranked by predicted metric, best first.
func (r *Recommender) Recommend(candidates []Candidate, stats map[string]float64) []Ranked {
	out := make([]Ranked, len(candidates))
	for i, c := range candidates {
		out[i] = Ranked{Candidate: c, Score: r.Score(c, stats)}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}
