package expdb

import (
	"testing"
	"time"
)

func TestCategorize(t *testing.T) {
	cases := map[string]OperatorType{
		"GradientBoosting":  Ensemble,
		"mice_impute":       Imputer,
		"standardize_cols":  Scaler,
		"select_k_best":     Selector,
		"polynomial_feats":  Generator,
		"train_test_split":  Sampler,
		"onehot_encode":     Transformer,
		"l2svm_train":       Estimator,
		"mystery_step":      Unknown,
		"pca_projection":    Transformer,
		"kmeans_clustering": Estimator,
	}
	for name, want := range cases {
		if got := Categorize(name); got != want {
			t.Errorf("Categorize(%q) = %v want %v", name, got, want)
		}
	}
}

func trackRun(t *testing.T, s *Store, pipeline string, version int, metric float64, steps ...string) *Run {
	t.Helper()
	r := &Run{
		PipelineID: pipeline,
		Version:    version,
		Metrics:    map[string]float64{"accuracy": metric},
		DataStats:  map[string]float64{"rows": 1000, "cols": 20, "classes": 2},
		StartedAt:  time.Date(2021, 3, version, 0, 0, 0, 0, time.UTC),
	}
	for _, st := range steps {
		r.Steps = append(r.Steps, Step{Name: st})
	}
	if _, err := s.Track(r); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTrackQueryBestCompare(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	trackRun(t, s, "p2", 1, 0.81, "onehot_encode", "standardize", "lm_train")
	trackRun(t, s, "p2", 2, 0.88, "onehot_encode", "standardize", "ffn_train")
	trackRun(t, s, "other", 1, 0.95, "impute", "boost")
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	// Steps are auto-categorized on Track.
	r, _ := s.Get("run-000001")
	if r.Steps[0].Type != Transformer || r.Steps[2].Type != Estimator {
		t.Fatalf("categorization: %+v", r.Steps)
	}
	best, ok := s.Best("accuracy")
	if !ok || best.PipelineID != "other" {
		t.Fatal("Best")
	}
	cmp := s.Compare("p2", "accuracy")
	if len(cmp) != 2 || cmp[0].Value != 0.81 || cmp[1].Version != 2 {
		t.Fatalf("Compare: %+v", cmp)
	}
	runs := s.Query(func(r *Run) bool { return r.PipelineID == "p2" })
	if len(runs) != 2 || runs[0].Version != 1 {
		t.Fatal("Query order")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	trackRun(t, s, "p", 1, 0.5, "encode")
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reloaded %d runs", s2.Len())
	}
	r, ok := s2.Get("run-000001")
	if !ok || r.Metrics["accuracy"] != 0.5 {
		t.Fatal("reloaded content")
	}
	// New runs after reload get fresh IDs.
	r2 := trackRun(t, s2, "p", 2, 0.6, "encode")
	if r2.ID == r.ID {
		t.Fatal("ID collision after reload")
	}
}

func TestRecommenderRanksByHistory(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	// History: runs containing an imputer consistently score higher.
	for i := 0; i < 8; i++ {
		trackRun(t, s, "a", i+1, 0.9, "mice_impute", "onehot_encode", "lm_train")
		trackRun(t, s, "b", i+1, 0.6, "onehot_encode", "lm_train")
	}
	rec, err := NewRecommender(s, "accuracy", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	stats := map[string]float64{"rows": 1000, "cols": 20, "classes": 2}
	withImpute := Candidate{PipelineID: "c1", Steps: []Step{
		{Name: "mice_impute"}, {Name: "onehot_encode"}, {Name: "lm_train"}}}
	without := Candidate{PipelineID: "c2", Steps: []Step{
		{Name: "onehot_encode"}, {Name: "lm_train"}}}
	ranked := rec.Recommend([]Candidate{without, withImpute}, stats)
	if ranked[0].Candidate.PipelineID != "c1" {
		t.Fatalf("expected imputer pipeline first: %+v", ranked)
	}
	if ranked[0].Score <= ranked[1].Score {
		t.Fatal("ranking order")
	}
}

func TestRecommenderNeedsHistory(t *testing.T) {
	s, _ := Open("")
	if _, err := NewRecommender(s, "accuracy", 0.01); err == nil {
		t.Fatal("recommender trained without history")
	}
}
