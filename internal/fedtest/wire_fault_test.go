package fedtest_test

import (
	"testing"
	"time"

	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/fedtest"
	"exdra/internal/netem"
	"exdra/internal/privacy"
)

// TestBinaryTransferSurvivesMidSlabResets kills the connection to every
// worker in the middle of a raw float64 slab — after 16 KiB of a ~32 KiB
// matrix PUT — and requires the redial-and-replay machinery to complete a
// full distribute/consolidate round trip bit-exactly under the binary wire
// format. This is the framing-specific companion to
// TestLMTrainingSurvivesConnResets: a reset now tears a connection whose
// stream position is inside an unframed byte slab, and recovery must
// re-negotiate the format on the fresh connection before replaying.
func TestBinaryTransferSurvivesMidSlabResets(t *testing.T) {
	faults := netem.NewFaults(netem.FaultConfig{
		Seed:            11,
		ConnResets:      3,
		ResetAfterBytes: 16 << 10, // inside the ~32 KB per-worker matrix slab
		ResetPerAddr:    true,
	})
	cl, err := fedtest.Start(fedtest.Config{
		Workers: 3,
		Faults:  faults,
		Retry:   federated.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	// Confirm the cluster actually speaks the binary format: a fault-free
	// side client negotiates it against the same workers.
	probe, err := fedrpc.Dial(cl.Addrs[0], fedrpc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !probe.WireBinary() {
		probe.Close()
		t.Fatal("cluster did not negotiate binary framing; test would not cover it")
	}
	probe.Close()

	x, _ := data.Regression(4, 600, 20, 0.05)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatalf("distribute did not survive mid-slab resets: %v", err)
	}
	back, err := fx.Consolidate()
	if err != nil {
		t.Fatalf("consolidate did not survive mid-slab resets: %v", err)
	}
	// Raw IEEE-754 framing is lossless, so the round trip must be exact.
	if !back.EqualApprox(x, 0) {
		t.Fatal("consolidated matrix diverged from the distributed one")
	}
	if s := faults.Stats(); s.Resets != 3 {
		t.Fatalf("fault stats = %+v, want one mid-slab reset per worker (3)", s)
	}
}
