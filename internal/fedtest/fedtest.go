// Package fedtest spins up in-process federations — N standing workers on
// loopback TCP plus a coordinator — standing in for the paper's 8-node
// cluster in tests, examples, and benchmarks. Workers are real fedrpc
// servers; only their placement (goroutines instead of machines) differs
// from a production deployment, so the full protocol path is exercised.
package fedtest

import (
	"fmt"

	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/netem"
	"exdra/internal/worker"
)

// Config describes the federation to start.
type Config struct {
	// Workers is the number of federated sites (default 3).
	Workers int
	// TLS enables SSL-encrypted channels with an ephemeral self-signed
	// certificate (the paper's SSL setting).
	TLS bool
	// Netem shapes every connection (LAN by default, netem.WAN() for the
	// wide-area experiments).
	Netem netem.Config
	// BaseDirs are the per-worker raw-data directories for READ requests;
	// empty entries (or a short slice) leave workers without file access.
	BaseDirs []string
	// Faults injects deterministic transport faults into the coordinator's
	// worker connections (client side only), exercising the redial/retry
	// recovery paths. The same *Faults can be inspected afterwards via
	// Stats() to assert the faults actually fired.
	Faults *netem.Faults
	// Retry configures the coordinator's retry policy; the zero value
	// keeps retries off (fail fast).
	Retry federated.RetryPolicy
}

// Cluster is a running in-process federation.
type Cluster struct {
	Workers []*worker.Worker
	Servers []*fedrpc.Server
	Addrs   []string
	Coord   *federated.Coordinator
}

// Start launches the federation.
func Start(cfg Config) (*Cluster, error) {
	n := cfg.Workers
	if n <= 0 {
		n = 3
	}
	var serverOpts, clientOpts fedrpc.Options
	serverOpts.Netem = cfg.Netem
	clientOpts.Netem = cfg.Netem
	clientOpts.Netem.Faults = cfg.Faults
	if cfg.TLS {
		srvTLS, cliTLS, err := fedrpc.NewSelfSignedTLS()
		if err != nil {
			return nil, err
		}
		serverOpts.TLS = srvTLS
		clientOpts.TLS = cliTLS
	}
	cl := &Cluster{}
	for i := 0; i < n; i++ {
		dir := ""
		if i < len(cfg.BaseDirs) {
			dir = cfg.BaseDirs[i]
		}
		w := worker.New(dir)
		srv, err := fedrpc.Serve("127.0.0.1:0", w, serverOpts)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("fedtest: start worker %d: %w", i, err)
		}
		cl.Workers = append(cl.Workers, w)
		cl.Servers = append(cl.Servers, srv)
		cl.Addrs = append(cl.Addrs, srv.Addr())
	}
	cl.Coord = federated.NewCoordinator(clientOpts)
	if cfg.Retry != (federated.RetryPolicy{}) {
		cl.Coord.SetRetryPolicy(cfg.Retry)
	}
	return cl, nil
}

// Close shuts down the coordinator and all workers.
func (c *Cluster) Close() {
	if c.Coord != nil {
		c.Coord.Close()
	}
	for _, s := range c.Servers {
		s.Close()
	}
}
