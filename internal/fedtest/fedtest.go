// Package fedtest spins up in-process federations — N standing workers on
// loopback TCP plus a coordinator — standing in for the paper's 8-node
// cluster in tests, examples, and benchmarks. Workers are real fedrpc
// servers; only their placement (goroutines instead of machines) differs
// from a production deployment, so the full protocol path is exercised.
package fedtest

import (
	"fmt"
	"time"

	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/netem"
	"exdra/internal/obs"
	"exdra/internal/worker"
)

// Config describes the federation to start.
type Config struct {
	// Workers is the number of federated sites (default 3).
	Workers int
	// TLS enables SSL-encrypted channels with an ephemeral self-signed
	// certificate (the paper's SSL setting).
	TLS bool
	// Netem shapes every connection (LAN by default, netem.WAN() for the
	// wide-area experiments).
	Netem netem.Config
	// BaseDirs are the per-worker raw-data directories for READ requests;
	// empty entries (or a short slice) leave workers without file access.
	BaseDirs []string
	// Faults injects deterministic transport faults into the coordinator's
	// worker connections (client side only), exercising the redial/retry
	// recovery paths. The same *Faults can be inspected afterwards via
	// Stats() to assert the faults actually fired.
	Faults *netem.Faults
	// Retry configures the coordinator's retry policy; the zero value
	// keeps retries off (fail fast).
	Retry federated.RetryPolicy
	// Recover enables the coordinator's creation log and lineage replay,
	// so RestartWorker mid-run is survivable (pair with Retry).
	Recover bool
	// Health starts the coordinator's periodic liveness probing when
	// Interval > 0.
	Health federated.HealthPolicy
	// Breaker configures the coordinator's per-worker circuit breakers;
	// the zero value keeps them off.
	Breaker federated.BreakerPolicy
	// CallTimeout bounds each coordinator→worker RPC when the caller's
	// context carries no deadline of its own; the budget travels to the
	// worker on the wire. Zero leaves calls unbounded.
	CallTimeout time.Duration
	// SlowRPC makes the coordinator log every RPC slower than this
	// threshold with its full phase breakdown (0 disables).
	SlowRPC time.Duration
	// Metrics, when non-nil, isolates the whole federation's counters and
	// histograms (coordinator clients, servers, and workers) in the given
	// registry instead of obs.Default() — benchmarks fold exactly their
	// own run's deltas, unpolluted by parallel tests.
	Metrics *obs.Registry
	// ForceGob pins every connection to the legacy pure-gob wire format
	// (no binary framing), for fallback tests and before/after encoding
	// benchmarks.
	ForceGob bool
	// PoolSize is the number of pooled connections per worker address in
	// the cluster's shared Fleet (default 1). It sizes Fleet sessions only;
	// the legacy Coord keeps its private one-connection-per-address fleet.
	PoolSize int
	// MaxConns caps concurrently served connections per worker (0 =
	// unlimited), exercising the accept-limit path.
	MaxConns int
	// Window caps pipelined in-flight calls per coordinator→worker
	// connection (fedrpc.Options.Window). Values below 2 keep the legacy
	// lock-step exchange.
	Window int
}

// Cluster is a running in-process federation. Coord is the classic
// single-session coordinator; Fleet is the shared multi-session substrate
// (connection pools sized by Config.PoolSize) that Fleet.NewSession and
// fedserve build on. Both talk to the same workers.
type Cluster struct {
	Workers []*worker.Worker
	Servers []*fedrpc.Server
	Addrs   []string
	Coord   *federated.Coordinator
	Fleet   *federated.Fleet

	serverOpts fedrpc.Options
	baseDirs   []string // per worker, padded to len(Workers)
	metrics    *obs.Registry
}

// Registry returns the observability registry this federation reports
// into: the configured Metrics registry, or obs.Default().
func (c *Cluster) Registry() *obs.Registry {
	if c.metrics != nil {
		return c.metrics
	}
	return obs.Default()
}

// Start launches the federation.
func Start(cfg Config) (*Cluster, error) {
	n := cfg.Workers
	if n <= 0 {
		n = 3
	}
	var serverOpts, clientOpts fedrpc.Options
	serverOpts.Netem = cfg.Netem
	serverOpts.Metrics = cfg.Metrics
	serverOpts.ForceGob = cfg.ForceGob
	serverOpts.MaxConns = cfg.MaxConns
	clientOpts.Netem = cfg.Netem
	clientOpts.Netem.Faults = cfg.Faults
	clientOpts.SlowRPC = cfg.SlowRPC
	clientOpts.Metrics = cfg.Metrics
	clientOpts.ForceGob = cfg.ForceGob
	clientOpts.Window = cfg.Window
	if cfg.TLS {
		srvTLS, cliTLS, err := fedrpc.NewSelfSignedTLS()
		if err != nil {
			return nil, err
		}
		serverOpts.TLS = srvTLS
		clientOpts.TLS = cliTLS
	}
	cl := &Cluster{serverOpts: serverOpts, metrics: cfg.Metrics}
	for i := 0; i < n; i++ {
		dir := ""
		if i < len(cfg.BaseDirs) {
			dir = cfg.BaseDirs[i]
		}
		w := worker.New(dir)
		if cfg.Metrics != nil {
			w.Metrics = cfg.Metrics
		}
		srv, err := fedrpc.Serve("127.0.0.1:0", w, serverOpts)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("fedtest: start worker %d: %w", i, err)
		}
		cl.Workers = append(cl.Workers, w)
		cl.Servers = append(cl.Servers, srv)
		cl.Addrs = append(cl.Addrs, srv.Addr())
		cl.baseDirs = append(cl.baseDirs, dir)
	}
	cl.Coord = federated.NewCoordinator(clientOpts)
	if cfg.Retry != (federated.RetryPolicy{}) {
		cl.Coord.SetRetryPolicy(cfg.Retry)
	}
	cl.Coord.EnableRecovery(cfg.Recover)
	if cfg.Breaker != (federated.BreakerPolicy{}) {
		cl.Coord.SetBreakerPolicy(cfg.Breaker)
	}
	cl.Coord.SetCallTimeout(cfg.CallTimeout)
	cl.Coord.StartHealth(cfg.Health)
	cl.Fleet = federated.NewFleet(clientOpts, cfg.PoolSize)
	if cfg.Breaker != (federated.BreakerPolicy{}) {
		cl.Fleet.SetBreakerPolicy(cfg.Breaker)
	}
	return cl, nil
}

// RestartWorker kills worker i and brings up a brand-new worker process
// state on the same port: the replacement has a fresh instance epoch and
// an empty symbol table, exactly like a crashed-and-restarted site. The
// coordinator's standing connection dies with the old server and is only
// discovered broken on its next use — again like production. Go listeners
// bind with SO_REUSEADDR, so rebinding the just-freed port needs no wait.
func (c *Cluster) RestartWorker(i int) error {
	if i < 0 || i >= len(c.Servers) {
		return fmt.Errorf("fedtest: restart worker %d: no such worker", i)
	}
	addr := c.Addrs[i]
	c.Servers[i].Close()
	w := worker.New(c.baseDirs[i])
	if c.metrics != nil {
		w.Metrics = c.metrics
	}
	srv, err := fedrpc.Serve(addr, w, c.serverOpts)
	if err != nil {
		return fmt.Errorf("fedtest: restart worker %d on %s: %w", i, addr, err)
	}
	c.Workers[i] = w
	c.Servers[i] = srv
	return nil
}

// Close shuts down the coordinator, the shared fleet, and all workers.
func (c *Cluster) Close() {
	if c.Coord != nil {
		c.Coord.Close()
	}
	if c.Fleet != nil {
		c.Fleet.Close()
	}
	for _, s := range c.Servers {
		s.Close()
	}
}
