package fedtest_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/obs"
	"exdra/internal/privacy"
)

// TestConcurrentStatsAndMetricsDuringHealth exercises every observability
// read path while a federation is under full load: a training loop drives
// RPCs, the health prober fires every few milliseconds, and goroutines
// hammer Coordinator.Stats() plus metrics-registry snapshots/rendering the
// whole time. Run under -race this pins down that the counters and the
// registry are safe for concurrent access.
func TestConcurrentStatsAndMetricsDuringHealth(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{
		Workers: 2,
		Recover: true,
		Health:  federated.HealthPolicy{Interval: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	x, y := data.Regression(9, 400, 12, 0.05)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := cl.Coord.Stats()
				if s.Probes < 0 || s.ProbeFailures > s.Probes {
					t.Errorf("inconsistent stats under load: %+v", s)
					return
				}
				snap := obs.Default().Snapshot()
				_ = snap.Diff(obs.Snapshot{})
				var sb strings.Builder
				_ = snap.WriteText(&sb)
				_ = obs.Default().Spans()
			}
		}()
	}

	// The training loop runs to completion while the readers spin.
	if _, err := algo.LM(fx, y, algo.LMConfig{MaxIterations: 8}); err != nil {
		t.Fatalf("training under concurrent observability reads: %v", err)
	}
	close(stop)
	readers.Wait()

	if s := cl.Coord.Stats(); s.Probes == 0 {
		t.Fatalf("health prober never fired: %+v", s)
	}
	snap := obs.Default().Snapshot()
	if snap.Counters["rpc.client.calls"] == 0 {
		t.Fatal("training produced no rpc.client.calls metric")
	}
}
