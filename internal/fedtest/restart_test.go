package fedtest_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/fedtest"
	"exdra/internal/matrix"
	"exdra/internal/netem"
	"exdra/internal/privacy"
	"exdra/internal/worker"
)

// Test UDFs for the restart suite, registered once for the process (the
// registry is global, like http.Handle).
var (
	udfExecCount atomic.Int64 // executions of fedtest_count_obj
)

func init() {
	// fedtest_mkobj binds a small deterministic matrix to call.Output —
	// a stand-in for UDF-born state (e.g. a paramserv model) that the
	// coordinator cannot replay.
	worker.MustRegisterUDF("fedtest_mkobj", func(w *worker.Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
		w.PutMatrix(call.Output, matrix.NewDenseData(1, 2, []float64{3, 7}), privacy.Public)
		return fedrpc.Payload{}, nil
	})
	// fedtest_count_obj counts its executions and binds an output object,
	// exercising the EXEC_UDF non-retry contract (at-most-once, no leaks).
	worker.MustRegisterUDF("fedtest_count_obj", func(w *worker.Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
		udfExecCount.Add(1)
		w.PutMatrix(call.Output, matrix.NewDenseData(1, 1, []float64{1}), privacy.Public)
		return fedrpc.ScalarPayload(1), nil
	})
}

// trainLM distributes x across the cluster and trains the federated linear
// model, returning the weights.
func trainLM(t *testing.T, cl *fedtest.Cluster, x, y *matrix.Dense) *matrix.Dense {
	t.Helper()
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	res, err := algo.LM(fx, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Weights
}

// TestLMTrainingSurvivesWorkerRestart is the e2e acceptance test of the
// restart-recovery work: a worker is killed and restarted — fresh process
// state, same port — after its partition was placed, and once more
// asynchronously while conjugate-gradient training is running. With
// recovery enabled the run completes and the weights are bitwise-equal to
// a fault-free federated run: lineage replay restores the exact PUT
// payloads, and all CG state lives at the coordinator.
func TestLMTrainingSurvivesWorkerRestart(t *testing.T) {
	x, y := data.Regression(4, 600, 32, 0.05)

	// Fault-free reference run on a pristine cluster.
	ref, err := fedtest.Start(fedtest.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	want := trainLM(t, ref, x, y)

	cl, err := fedtest.Start(fedtest.Config{
		Workers: 3,
		Retry:   federated.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 1},
		Recover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	// Kill and restart worker 1 after its partition was placed: the next
	// operation touching it must detect the new epoch and replay the
	// partition from the creation log.
	if err := cl.RestartWorker(1); err != nil {
		t.Fatal(err)
	}

	// Second restart mid-training: run CG in the background and yank
	// worker 0 once training demonstrably progressed (bytes beyond the
	// distribute volume mean at least one mmchain round-trip completed).
	afterDistribute := cl.Coord.BytesReceived()
	type lmOut struct {
		res *algo.LMResult
		err error
	}
	done := make(chan lmOut, 1)
	go func() {
		res, err := algo.LM(fx, y, algo.LMConfig{})
		done <- lmOut{res, err}
	}()
	restarted := false
	for !restarted {
		select {
		case out := <-done:
			// Training outran the poller; the deterministic restart above
			// still exercised recovery. Validate and finish.
			checkRecoveredRun(t, cl, out.res, out.err, want)
			return
		default:
		}
		if cl.Coord.BytesReceived() > afterDistribute {
			if err := cl.RestartWorker(0); err != nil {
				t.Fatal(err)
			}
			restarted = true
		} else {
			time.Sleep(200 * time.Microsecond)
		}
	}
	out := <-done
	checkRecoveredRun(t, cl, out.res, out.err, want)
}

func checkRecoveredRun(t *testing.T, cl *fedtest.Cluster, res *algo.LMResult, err error, want *matrix.Dense) {
	t.Helper()
	if err != nil {
		t.Fatalf("federated training did not survive the worker restart: %v", err)
	}
	if !res.Weights.EqualApprox(want, 0) {
		t.Fatal("recovered training is not bitwise-equal to the fault-free run")
	}
	s := cl.Coord.Stats()
	if s.RestartsDetected < 1 {
		t.Fatalf("stats = %+v, want at least one detected restart", s)
	}
	if s.ObjectsReplayed < 1 {
		t.Fatalf("stats = %+v, want at least one replayed object", s)
	}
	if s.ReplayFailures != 0 {
		t.Fatalf("stats = %+v, want zero replay failures", s)
	}
}

// TestRestartFailsFastWithoutRecovery is the no-recovery half of the
// acceptance criterion: retries alone must not paper over a restart.
// The first operation touching the restarted worker fails with the typed
// ErrWorkerRestarted, and the aborted operation leaves no objects on the
// fresh worker (the surviving workers keep exactly their partition).
func TestRestartFailsFastWithoutRecovery(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{
		Workers: 3,
		Retry:   federated.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	x, y := data.Regression(4, 600, 20, 0.05)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.RestartWorker(1); err != nil {
		t.Fatal(err)
	}
	_, err = algo.LM(fx, y, algo.LMConfig{})
	if err == nil {
		t.Fatal("training should fail fast on a restarted worker without recovery")
	}
	if !errors.Is(err, federated.ErrWorkerRestarted) {
		t.Fatalf("error does not identify the restart: %v", err)
	}
	if n := cl.Workers[1].NumObjects(); n != 0 {
		t.Errorf("restarted worker holds %d objects after aborted training", n)
	}
	for _, i := range []int{0, 2} {
		if n := cl.Workers[i].NumObjects(); n != 1 {
			t.Errorf("surviving worker %d holds %d objects, want exactly its partition", i, n)
		}
	}
}

// TestUDFStateUnrecoverable: objects created by EXEC_UDF cannot be
// replayed. After a restart, an operation needing such an object must fail
// fast with the typed ErrUnrecoverable — a precise message, not "unknown
// object" noise — even though recovery and retries are both enabled.
func TestUDFStateUnrecoverable(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{
		Workers: 1,
		Retry:   federated.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 1},
		Recover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	addr := cl.Addrs[0]

	id := cl.Coord.NewID()
	if _, err := cl.Coord.ExecUDF(addr, &fedrpc.UDFCall{Name: "fedtest_mkobj", Output: id}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Coord.Fetch(addr, id); err != nil {
		t.Fatalf("fetch of UDF-created object before restart: %v", err)
	}
	if err := cl.RestartWorker(0); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Coord.Fetch(addr, id)
	if err == nil {
		t.Fatal("fetch of UDF-created object should fail after restart")
	}
	if !errors.Is(err, federated.ErrUnrecoverable) {
		t.Fatalf("error does not identify unrecoverable UDF state: %v", err)
	}
}

// TestExecUDFNotRetried asserts the EXEC_UDF non-retry contract end to
// end: a transport fault during an EXEC_UDF exchange surfaces the original
// injected error — never a silent replay — the UDF runs at most once, and
// the failed call leaves no objects behind on the worker.
func TestExecUDFNotRetried(t *testing.T) {
	faults := netem.NewFaults(netem.FaultConfig{
		Seed: 7, ConnResets: 1, ResetAfterBytes: 1,
	})
	cl, err := fedtest.Start(fedtest.Config{
		Workers: 1,
		Faults:  faults,
		Retry:   federated.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 1},
		Recover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	udfExecCount.Store(0)
	id := cl.Coord.NewID()
	_, err = cl.Coord.ExecUDF(cl.Addrs[0], &fedrpc.UDFCall{Name: "fedtest_count_obj", Output: id})
	if err == nil {
		t.Fatal("EXEC_UDF should fail on the injected reset, not be retried into success")
	}
	if !errors.Is(err, netem.ErrInjectedReset) {
		t.Fatalf("error does not surface the injected reset: %v", err)
	}
	if n := udfExecCount.Load(); n > 1 {
		t.Fatalf("UDF executed %d times across a transport fault, want at most once", n)
	}
	if n := cl.Workers[0].NumObjects(); n != 0 {
		t.Fatalf("worker holds %d objects after failed EXEC_UDF, want none", n)
	}
}

// TestHealthProbingDetectsRestart: the background prober alone — no
// foreground operation — detects a restarted worker via the epoch
// handshake and proactively repairs its lost partition, so the next
// operation finds the state already rebuilt.
func TestHealthProbingDetectsRestart(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{
		Workers: 2,
		Retry:   federated.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 1},
		Recover: true,
		Health:  federated.HealthPolicy{Interval: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	x, _ := data.Regression(4, 100, 8, 0.05)
	_, err = federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.RestartWorker(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := cl.Coord.Stats()
		if s.RestartsDetected >= 1 && s.ObjectsReplayed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober did not detect and repair the restart in time: stats = %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	// The prober repaired the partition off the critical path: the fresh
	// worker holds it again without any foreground operation.
	if n := cl.Workers[1].NumObjects(); n != 1 {
		t.Fatalf("restarted worker holds %d objects after proactive repair, want 1", n)
	}
	if h := cl.Coord.WorkerHealth(); !h[cl.Addrs[0]] || !h[cl.Addrs[1]] {
		t.Fatalf("worker health = %v, want both healthy", h)
	}
}
