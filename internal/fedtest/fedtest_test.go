package fedtest

import (
	"testing"
	"time"

	"exdra/internal/fedrpc"
	"exdra/internal/netem"
)

func TestStartDefaultsAndClose(t *testing.T) {
	cl, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Workers) != 3 || len(cl.Addrs) != 3 {
		t.Fatalf("default cluster size %d", len(cl.Workers))
	}
	c, err := cl.Coord.Client(cl.Addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CallOne(fedrpc.Request{Type: fedrpc.Put, ID: 1, Data: fedrpc.ScalarPayload(1)}); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	// After Close, calls fail.
	if _, err := c.Call(fedrpc.Request{Type: fedrpc.Get, ID: 1}); err == nil {
		t.Fatal("call succeeded after Close")
	}
}

func TestStartWithTLSAndNetem(t *testing.T) {
	cl, err := Start(Config{Workers: 1, TLS: true, Netem: netem.Config{RTT: 20 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.Coord.Client(cl.Addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.CallOne(fedrpc.Request{Type: fedrpc.Put, ID: 1, Data: fedrpc.ScalarPayload(2)}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("netem not applied through the cluster config")
	}
}

func TestBaseDirs(t *testing.T) {
	dir := t.TempDir()
	cl, err := Start(Config{Workers: 2, BaseDirs: []string{dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Worker 0 has a data dir, worker 1 does not: READ fails there.
	c1, err := cl.Coord.Client(cl.Addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CallOne(fedrpc.Request{Type: fedrpc.Read, ID: 1, Filename: "x.bin"}); err == nil {
		t.Fatal("READ without data dir succeeded")
	}
}
