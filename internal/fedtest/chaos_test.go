package fedtest_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/fedtest"
	"exdra/internal/matrix"
	"exdra/internal/netem"
	"exdra/internal/obs"
	"exdra/internal/privacy"
)

// chaosTypedErr reports whether err belongs to the typed failure vocabulary
// a chaos run is allowed to end with. Anything outside it — an untyped
// error, or worse a silent success with wrong numbers — fails the test.
func chaosTypedErr(err error) bool {
	return errors.Is(err, netem.ErrInjectedReset) ||
		errors.Is(err, netem.ErrInjectedDrop) ||
		errors.Is(err, netem.ErrInjectedTruncation) ||
		errors.Is(err, fedrpc.ErrDeadlineExceeded) ||
		errors.Is(err, federated.ErrWorkerRestarted) ||
		errors.Is(err, federated.ErrWorkerUnavailable) ||
		errors.Is(err, context.DeadlineExceeded)
}

// TestChaosLMTrainingUnderByzantineFaults is the chaos harness acceptance
// test: LM training runs under a seeded combination of every byzantine
// fault mode at once — mid-slab truncation, single-byte corruption inside
// the float slabs, stall-then-reset, and threshold resets — with retries
// and a call budget enabled. The contract being asserted:
//
//   - never a hang: every run finishes inside a hard watchdog;
//   - never silent corruption: a run that reports success must produce
//     weights bitwise-equal to a fault-free federation (a corrupted slab
//     that slipped past the CRC would show up right here);
//   - failures are typed: a run that gives up must surface an error from
//     the protocol's typed vocabulary, not a mystery string.
//
// The retry budget deliberately exceeds the fault budget, so runs are
// expected to heal; the typed-error arm is the escape hatch, not the norm.
func TestChaosLMTrainingUnderByzantineFaults(t *testing.T) {
	x, y := data.Regression(4, 600, 20, 0.05)

	// Fault-free federated reference for the bitwise comparison.
	ref, err := fedtest.Start(fedtest.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	refFx, err := federated.Distribute(ref.Coord, x, ref.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	refModel, err := algo.LM(refFx, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	healed := 0
	var total netem.FaultStats
	for _, seed := range []int64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			faults := netem.NewFaults(netem.FaultConfig{
				Seed:               seed,
				ConnResets:         2,
				ResetAfterBytes:    12 << 10,
				ResetJitter:        0.5,
				Truncations:        2,
				TruncateAfterBytes: 9 << 10, // inside the ~32 KB per-worker PUT slab
				CorruptBytes:       2,
				CorruptAfterBytes:  6 << 10, // ditto: lands in raw float64 data
				Stalls:             1,
				StallFor:           100 * time.Millisecond,
				StallAfterBytes:    4 << 10,
				StallThenReset:     true,
			})
			cl, err := fedtest.Start(fedtest.Config{
				Workers:     3,
				Faults:      faults,
				Retry:       federated.RetryPolicy{Attempts: 8, Backoff: time.Millisecond, Seed: seed},
				CallTimeout: 5 * time.Second,
				Metrics:     obs.New(),
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(cl.Close)

			type outcome struct {
				weights *matrix.Dense
				err     error
			}
			done := make(chan outcome, 1)
			go func() {
				fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
				if err != nil {
					done <- outcome{err: err}
					return
				}
				model, err := algo.LM(fx, y, algo.LMConfig{})
				if err != nil {
					done <- outcome{err: err}
					return
				}
				done <- outcome{weights: model.Weights}
			}()

			var res outcome
			select {
			case res = <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("chaos run hung: no result within the watchdog window")
			}
			if res.err != nil {
				if !chaosTypedErr(res.err) {
					t.Fatalf("chaos run failed with an untyped error: %v", res.err)
				}
				t.Logf("seed %d gave up with typed error: %v", seed, res.err)
			} else {
				if !res.weights.EqualApprox(refModel.Weights, 0) {
					t.Fatal("chaos run reported success with weights not bitwise-equal to the fault-free run")
				}
				healed++
			}
			s := faults.Stats()
			if s.Resets+s.StallResets+s.Truncations+s.Corruptions == 0 {
				t.Fatalf("fault stats = %+v: no byzantine fault actually fired; the run proved nothing", s)
			}
			total.Resets += s.Resets
			total.Stalls += s.Stalls
			total.StallResets += s.StallResets
			total.Truncations += s.Truncations
			total.Corruptions += s.Corruptions
			t.Logf("seed %d fault stats: %+v", seed, s)
		})
	}
	if healed == 0 {
		t.Fatal("no chaos seed healed to a bitwise-equal result; retry budget is not doing its job")
	}
	// Across the seeds, every byzantine class must have reached the wire —
	// otherwise the harness only believes it covers them.
	if total.Truncations == 0 || total.Corruptions == 0 || total.Stalls == 0 {
		t.Fatalf("cumulative fault stats %+v: a byzantine fault class never fired across all seeds", total)
	}
}

// TestChaosPipelinedSessionsUnderResets interleaves two pipelined sessions
// (Window 8) over a size-1 pool — so both multiplex in-flight calls onto the
// same connection — while seeded mid-stream resets tear that connection down
// under them. The pipelining failure contract under test: a teardown fails
// every in-flight call on the session, the retry layer replays each one on a
// fresh transport, and neither session's result may differ by a single bit
// from a fault-free lock-step (Window 1) federation. A duplicate- or
// cross-delivered reply after a reset would land as wrong numbers right at
// the bitwise check.
func TestChaosPipelinedSessionsUnderResets(t *testing.T) {
	x, y := data.Regression(4, 600, 20, 0.05)

	// Fault-free lock-step reference: the acceptance bar says pipelined
	// recovery must be indistinguishable from the legacy exchange.
	ref, err := fedtest.Start(fedtest.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	refFx, err := federated.Distribute(ref.Coord, x, ref.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	refModel, err := algo.LM(refFx, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	healed := 0
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			faults := netem.NewFaults(netem.FaultConfig{
				Seed:            seed,
				ConnResets:      3,
				ResetAfterBytes: 10 << 10, // mid-stream: inside a session's PUT slabs
				ResetJitter:     0.5,
			})
			cl, err := fedtest.Start(fedtest.Config{
				Workers:     3,
				Window:      8,
				PoolSize:    1, // both sessions share one pipelined conn per worker
				Faults:      faults,
				CallTimeout: 5 * time.Second,
				Metrics:     obs.New(),
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(cl.Close)

			type outcome struct {
				weights *matrix.Dense
				err     error
			}
			results := make(chan outcome, 2)
			for s := 0; s < 2; s++ {
				sess, err := cl.Fleet.NewSession()
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(sess.Close)
				sess.SetRetryPolicy(federated.RetryPolicy{Attempts: 8, Backoff: time.Millisecond, Seed: seed + int64(s)})
				sess.SetCallTimeout(5 * time.Second)
				sess.EnableRecovery(true)
				go func(c *federated.Coordinator) {
					fx, err := federated.Distribute(c, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
					if err != nil {
						results <- outcome{err: err}
						return
					}
					model, err := algo.LM(fx, y, algo.LMConfig{})
					if err != nil {
						results <- outcome{err: err}
						return
					}
					results <- outcome{weights: model.Weights}
				}(sess)
			}

			for s := 0; s < 2; s++ {
				var res outcome
				select {
				case res = <-results:
				case <-time.After(60 * time.Second):
					t.Fatal("pipelined chaos run hung: no result within the watchdog window")
				}
				if res.err != nil {
					if !chaosTypedErr(res.err) {
						t.Fatalf("pipelined chaos run failed with an untyped error: %v", res.err)
					}
					t.Logf("seed %d session gave up with typed error: %v", seed, res.err)
					continue
				}
				if !res.weights.EqualApprox(refModel.Weights, 0) {
					t.Fatal("pipelined session reported success with weights not bitwise-equal to the lock-step run")
				}
				healed++
			}
			st := faults.Stats()
			if st.Resets == 0 {
				t.Fatalf("fault stats = %+v: no mid-stream reset actually fired; the run proved nothing", st)
			}
			t.Logf("seed %d fault stats: %+v", seed, st)
		})
	}
	if healed == 0 {
		t.Fatal("no pipelined session healed to a bitwise-equal result across any seed")
	}
}
