package fedtest_test

import (
	"errors"
	"testing"
	"time"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/fedtest"
	"exdra/internal/netem"
	"exdra/internal/obs"
	"exdra/internal/privacy"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// TestStalledWorkerDeadlineBreakerRecovery is the end-to-end acceptance
// test of the deadline/breaker work, walking the full failure lifecycle:
//
//  1. A worker stalls mid-batch (netem freezes the connection inside the
//     PUT slab). The batch fails with the typed DEADLINE_EXCEEDED error
//     within ~2x the call budget — no hang, no indefinite retry.
//  2. The deadline blowout trips the worker's circuit breaker; the next
//     operation fails fast with ErrWorkerUnavailable without touching the
//     wire.
//  3. The stall clears; the health prober's next successful HEALTH probe
//     moves the breaker to half-open.
//  4. Full LM training then completes — the first real call is the
//     half-open trial and closes the breaker — with weights bitwise-equal
//     to a fault-free federated run.
//
// Breaker transitions are asserted in the metrics registry along the way.
func TestStalledWorkerDeadlineBreakerRecovery(t *testing.T) {
	const budget = 400 * time.Millisecond
	faults := netem.NewFaults(netem.FaultConfig{
		Stalls:          1,
		StallFor:        30 * time.Second, // far beyond any deadline: a genuine hang without one
		StallAfterBytes: 1024,             // past the handshake, inside the PUT slab
	})
	reg := obs.New()
	cl, err := fedtest.Start(fedtest.Config{
		Workers:     1,
		Faults:      faults,
		CallTimeout: budget,
		Breaker:     federated.BreakerPolicy{Threshold: 1}, // no Cooldown: probe-only recovery
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	addr := cl.Addrs[0]

	x, y := data.Regression(4, 600, 20, 0.05)

	// Phase 1: the stalled batch fails with the typed deadline error within
	// ~2x the budget.
	start := time.Now()
	_, err = federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	elapsed := time.Since(start)
	if !errors.Is(err, fedrpc.ErrDeadlineExceeded) {
		t.Fatalf("stalled batch error = %v, want to wrap fedrpc.ErrDeadlineExceeded", err)
	}
	if elapsed > 2*budget {
		t.Fatalf("stalled batch took %v, want within 2x the %v budget", elapsed, budget)
	}
	if got := cl.Coord.BreakerState(addr); got != "open" {
		t.Fatalf("breaker after deadline blowout = %q, want open", got)
	}

	// Phase 2: while open, operations fail fast without touching the wire.
	start = time.Now()
	_, err = federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if !errors.Is(err, federated.ErrWorkerUnavailable) {
		t.Fatalf("open-breaker error = %v, want to wrap ErrWorkerUnavailable", err)
	}
	if d := time.Since(start); d > budget/2 {
		t.Fatalf("open breaker took %v to reject; fail-fast means no wire round trip", d)
	}
	if reg.Counter("fed.breaker.opens").Value() < 1 {
		t.Fatal("fed.breaker.opens not visible in metrics")
	}
	if reg.Counter("fed.breaker.rejections").Value() < 1 {
		t.Fatal("fed.breaker.rejections not visible in metrics")
	}
	if reg.Gauge("fed.breaker.open_count").Value() != 1 {
		t.Fatalf("fed.breaker.open_count = %d, want 1 while open", reg.Gauge("fed.breaker.open_count").Value())
	}

	// Phase 3: the stall was one-shot and its budget is spent; start the
	// prober and wait for its HEALTH probe to half-open the breaker.
	cl.Coord.StartHealth(federated.HealthPolicy{Interval: 15 * time.Millisecond, Jitter: 0.3, Seed: 5})
	waitFor(t, 5*time.Second, "health probe to half-open the breaker", func() bool {
		return cl.Coord.BreakerState(addr) == "half-open"
	})

	// Phase 4: training completes; the first call is the half-open trial.
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatalf("post-recovery distribute failed: %v", err)
	}
	fed, err := algo.LM(fx, y, algo.LMConfig{})
	if err != nil {
		t.Fatalf("post-recovery training failed: %v", err)
	}
	if got := cl.Coord.BreakerState(addr); got != "closed" {
		t.Fatalf("breaker after successful trial = %q, want closed", got)
	}
	if reg.Counter("fed.breaker.half_opens").Value() < 1 || reg.Counter("fed.breaker.closes").Value() < 1 {
		t.Fatal("breaker half-open/close transitions not visible in metrics")
	}
	if reg.Gauge("fed.breaker.open_count").Value() != 0 {
		t.Fatalf("fed.breaker.open_count = %d after recovery, want 0", reg.Gauge("fed.breaker.open_count").Value())
	}

	// The recovered run must be bitwise-equal to a fault-free federation.
	ref, err := fedtest.Start(fedtest.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	refFx, err := federated.Distribute(ref.Coord, x, ref.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	refModel, err := algo.LM(refFx, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !fed.Weights.EqualApprox(refModel.Weights, 0) {
		t.Fatal("recovered training is not bitwise-equal to the fault-free run")
	}

	if s := faults.Stats(); s.Stalls != 1 {
		t.Fatalf("fault stats = %+v, want the one planned stall", s)
	}
}
