package fedtest_test

import (
	"errors"
	"testing"
	"time"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/netem"
	"exdra/internal/privacy"
)

// TestLMTrainingSurvivesConnResets is the end-to-end acceptance test of the
// fault-tolerance work: with netem resetting the connection to every worker
// once mid-run, a full federated pipeline — distribute, linear-model
// training, prediction — completes through reconnect and retry, and the
// result matches the fault-free local model exactly.
func TestLMTrainingSurvivesConnResets(t *testing.T) {
	faults := netem.NewFaults(netem.FaultConfig{
		Seed:            11,
		ConnResets:      3,
		ResetAfterBytes: 16 << 10, // below the ~34 KB per-worker PUT
		ResetPerAddr:    true,     // one reset per worker, redials survive
	})
	cl, err := fedtest.Start(fedtest.Config{
		Workers: 3,
		Faults:  faults,
		Retry:   federated.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	x, y := data.Regression(4, 600, 20, 0.05)
	local, err := algo.LM(x, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatalf("distribute did not survive injected resets: %v", err)
	}
	fed, err := algo.LM(fx, y, algo.LMConfig{})
	if err != nil {
		t.Fatalf("federated training did not survive injected resets: %v", err)
	}
	if !fed.Weights.EqualApprox(local.Weights, 1e-6) {
		t.Fatal("recovered training diverged from the fault-free local model")
	}
	if s := faults.Stats(); s.Resets != 3 {
		t.Fatalf("fault stats = %+v, want one reset per worker (3)", s)
	}
}

// TestNoRetryFailsFastAndClean is the no-recovery half of the acceptance
// criterion: with retries disabled, the first injected reset surfaces as a
// clean, identifiable error and the aborted distribute leaves no objects on
// any worker.
func TestNoRetryFailsFastAndClean(t *testing.T) {
	faults := netem.NewFaults(netem.FaultConfig{
		Seed: 11, ConnResets: 1, ResetAfterBytes: 16 << 10,
	})
	cl, err := fedtest.Start(fedtest.Config{Workers: 3, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	x, _ := data.Regression(4, 600, 20, 0.05)
	start := time.Now()
	_, err = federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err == nil {
		t.Fatal("distribute should fail without retries")
	}
	if !errors.Is(err, netem.ErrInjectedReset) {
		t.Fatalf("error does not identify the injected reset: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("fail-fast path took %v", d)
	}
	for i, w := range cl.Workers {
		if n := w.NumObjects(); n != 0 {
			t.Errorf("worker %d holds %d objects after aborted distribute", i, n)
		}
	}
}
