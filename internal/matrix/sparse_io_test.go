package matrix

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSRRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(31))
	m := Rand(rng, 20, 17, 0, 1)
	// Zero out ~80% of cells to make it genuinely sparse.
	for i := range m.Data() {
		if rng.Float64() < 0.8 {
			m.Data()[i] = 0
		}
	}
	s := FromDense(m)
	if !s.ToDense().EqualApprox(m, 0) {
		t.Fatal("CSR round trip")
	}
	if s.Sparsity() != m.Sparsity() {
		t.Fatal("sparsity mismatch")
	}
	if math.Abs(s.Sum()-m.Sum()) > 1e-12 {
		t.Fatal("sum mismatch")
	}
}

func TestCSRMatMul(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(32))
	m := Rand(rng, 15, 11, 0, 1)
	for i := range m.Data() {
		if rng.Float64() < 0.7 {
			m.Data()[i] = 0
		}
	}
	b := Randn(rng, 11, 6, 0, 1)
	s := FromDense(m)
	if !s.MatMul(b).EqualApprox(m.MatMul(b), 1e-10) {
		t.Fatal("sparse matmul")
	}
	b2 := Randn(rng, 15, 4, 0, 1)
	if !s.TransposeMatMul(b2).EqualApprox(m.Transpose().MatMul(b2), 1e-10) {
		t.Fatal("sparse t-matmul")
	}
}

func TestBinaryIORoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(33))
	m := Randn(rng, 13, 7, 2, 5)
	m.Set(0, 0, math.NaN())
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(m, 0) {
		t.Fatal("binary round trip")
	}
}

func TestBinaryIOErrors(t *testing.T) {
	t.Parallel()
	if _, err := ReadBinary(strings.NewReader("BAD!")); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	m := NewDense(4, 4)
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "m.bin")
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if err := m.WriteBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(m, 0) {
		t.Fatal("file round trip")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{1.5, -2}, {0, 4e10}})
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(m, 0) {
		t.Fatal("csv round trip")
	}
}

func TestCSVErrors(t *testing.T) {
	t.Parallel()
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,x\n")); err == nil {
		t.Fatal("non-numeric csv accepted")
	}
	empty, err := ReadCSV(strings.NewReader(""))
	if err != nil || empty.Rows() != 0 {
		t.Fatal("empty csv")
	}
}
