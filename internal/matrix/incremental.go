package matrix

import "math"

// IncrementalStats maintains per-column aggregate statistics under row
// appends and deletions — the incremental maintenance of cached
// intermediates that ExDRa §4.4 proposes for new or deleted data (e.g.
// retention-bound stream sinks). Sums, sums of squares, and counts update
// in O(cols) per row in both directions; min/max are exact under appends
// and lazily recomputed only when a deletion removes a current extremum.
type IncrementalStats struct {
	cols   int
	count  int
	sums   []float64
	sumSqs []float64
	mins   []float64
	maxs   []float64
	// dirtyMinMax marks columns whose min/max must be recomputed from the
	// owner's retained data before being read.
	dirtyMinMax bool
}

// NewIncrementalStats tracks cols columns.
func NewIncrementalStats(cols int) *IncrementalStats {
	s := &IncrementalStats{
		cols:   cols,
		sums:   make([]float64, cols),
		sumSqs: make([]float64, cols),
		mins:   make([]float64, cols),
		maxs:   make([]float64, cols),
	}
	for j := 0; j < cols; j++ {
		s.mins[j] = math.Inf(1)
		s.maxs[j] = math.Inf(-1)
	}
	return s
}

// Cols returns the tracked column count.
func (s *IncrementalStats) Cols() int { return s.cols }

// Count returns the number of live rows.
func (s *IncrementalStats) Count() int { return s.count }

// Append folds one row in.
func (s *IncrementalStats) Append(row []float64) {
	for j, v := range row {
		s.sums[j] += v
		s.sumSqs[j] += v * v
		if v < s.mins[j] {
			s.mins[j] = v
		}
		if v > s.maxs[j] {
			s.maxs[j] = v
		}
	}
	s.count++
}

// Remove folds one row out (e.g. a tuple aging past the retention period).
// Sums and counts stay exact; if the row carried a column's extremum, that
// column's min/max becomes stale until Rebuild.
func (s *IncrementalStats) Remove(row []float64) {
	for j, v := range row {
		s.sums[j] -= v
		s.sumSqs[j] -= v * v
		if v <= s.mins[j] || v >= s.maxs[j] {
			s.dirtyMinMax = true
		}
	}
	s.count--
}

// NeedsRebuild reports whether min/max are stale after deletions.
func (s *IncrementalStats) NeedsRebuild() bool { return s.dirtyMinMax }

// Rebuild recomputes min/max from the retained rows (sums stay incremental).
func (s *IncrementalStats) Rebuild(rows [][]float64) {
	for j := 0; j < s.cols; j++ {
		s.mins[j] = math.Inf(1)
		s.maxs[j] = math.Inf(-1)
	}
	for _, row := range rows {
		for j, v := range row {
			if v < s.mins[j] {
				s.mins[j] = v
			}
			if v > s.maxs[j] {
				s.maxs[j] = v
			}
		}
	}
	s.dirtyMinMax = false
}

// ColMeans returns the per-column means as a 1 x cols vector.
func (s *IncrementalStats) ColMeans() *Dense {
	out := NewDense(1, s.cols)
	for j := 0; j < s.cols; j++ {
		out.data[j] = s.sums[j] / float64(s.count)
	}
	return out
}

// ColSDs returns the per-column sample standard deviations.
func (s *IncrementalStats) ColSDs() *Dense {
	out := NewDense(1, s.cols)
	n := float64(s.count)
	for j := 0; j < s.cols; j++ {
		out.data[j] = math.Sqrt((s.sumSqs[j] - s.sums[j]*s.sums[j]/n) / (n - 1))
	}
	return out
}

// ColMins returns the per-column minima (exact unless NeedsRebuild).
func (s *IncrementalStats) ColMins() *Dense {
	return RowVector(append([]float64(nil), s.mins...))
}

// ColMaxs returns the per-column maxima (exact unless NeedsRebuild).
func (s *IncrementalStats) ColMaxs() *Dense {
	return RowVector(append([]float64(nil), s.maxs...))
}
