package matrix

import (
	"fmt"
	"math"
)

// blockSize is the cache-blocking tile edge for the matmul kernels.
const blockSize = 64

// MatMul returns m %*% b. The kernel is cache-blocked over the inner
// dimension and parallelized over row bands, mirroring the role of a BLAS
// dgemm in SystemDS' local backend.
func (m *Dense) MatMul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: matmul shape mismatch %dx%d %%*%% %dx%d",
			m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	n, k, p := m.rows, m.cols, b.cols
	parallelFor(n, k*p, func(lo, hi int) {
		for kb := 0; kb < k; kb += blockSize {
			kEnd := kb + blockSize
			if kEnd > k {
				kEnd = k
			}
			for i := lo; i < hi; i++ {
				arow := m.data[i*k : (i+1)*k]
				orow := out.data[i*p : (i+1)*p]
				for kk := kb; kk < kEnd; kk++ {
					a := arow[kk]
					if a == 0 {
						continue
					}
					brow := b.data[kk*p : (kk+1)*p]
					for j, bv := range brow {
						orow[j] += a * bv
					}
				}
			}
		}
	})
	return out
}

// TSMM returns the transpose-self matrix multiplication t(m) %*% m,
// exploiting symmetry of the result.
func (m *Dense) TSMM() *Dense {
	k, n := m.rows, m.cols
	out := NewDense(n, n)
	// Accumulate per-band partials to keep the parallel loop race-free, then
	// reduce. Bands run over the shared dimension k.
	threads := threadsFor(k)
	if threads <= 1 || k*n*n < parallelThreshold {
		tsmmBand(m, out, 0, k)
	} else {
		partials := make([]*Dense, threads)
		chunk := (k + threads - 1) / threads
		parallelFor(threads, chunk*n*n, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				rb, re := band(t, chunk, k)
				if rb >= re {
					continue
				}
				p := NewDense(n, n)
				tsmmBand(m, p, rb, re)
				partials[t] = p
			}
		})
		for _, p := range partials {
			if p != nil {
				out.AddInPlace(p)
			}
		}
	}
	// Mirror the upper triangle into the lower triangle.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out.data[j*n+i] = out.data[i*n+j]
		}
	}
	return out
}

// tsmmBand accumulates t(m[rb:re,]) %*% m[rb:re,] into the upper triangle
// of out.
func tsmmBand(m, out *Dense, rb, re int) {
	n := m.cols
	for r := rb; r < re; r++ {
		row := m.Row(r)
		for i, a := range row {
			if a == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				orow[j] += a * row[j]
			}
		}
	}
}

// MMChain computes the fused matrix-multiplication chain
// t(X) %*% (w * (X %*% v)) when w is non-nil, or t(X) %*% (X %*% v) when w
// is nil — the pattern used by LM and MLogReg inner loops (SystemDS mmchain).
func (m *Dense) MMChain(v, w *Dense) *Dense {
	if m.cols != v.rows || v.cols != 1 {
		panic("matrix: mmchain requires v of shape cols x 1")
	}
	if w != nil && (w.rows != m.rows || w.cols != 1) {
		panic("matrix: mmchain requires w of shape rows x 1")
	}
	n, k := m.rows, m.cols
	threads := threadsFor(n)
	chunk := (n + threads - 1) / threads
	partials := make([]*Dense, threads)
	parallelFor(threads, chunk*k*2, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			rb, re := band(t, chunk, n)
			if rb >= re {
				continue
			}
			p := NewDense(k, 1)
			for i := rb; i < re; i++ {
				row := m.Row(i)
				dot := 0.0
				for j, a := range row {
					dot += a * v.data[j]
				}
				if w != nil {
					dot *= w.data[i]
				}
				if dot == 0 {
					continue
				}
				for j, a := range row {
					p.data[j] += a * dot
				}
			}
			partials[t] = p
		}
	})
	out := NewDense(k, 1)
	for _, p := range partials {
		if p != nil {
			out.AddInPlace(p)
		}
	}
	return out
}

// Transpose returns t(m), blocked for cache locality.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	r, c := m.rows, m.cols
	parallelFor((r+blockSize-1)/blockSize, blockSize*c, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			ib, ie := bi*blockSize, (bi+1)*blockSize
			if ie > r {
				ie = r
			}
			for jb := 0; jb < c; jb += blockSize {
				je := jb + blockSize
				if je > c {
					je = c
				}
				for i := ib; i < ie; i++ {
					for j := jb; j < je; j++ {
						out.data[j*r+i] = m.data[i*c+j]
					}
				}
			}
		}
	})
	return out
}

// Dot returns the inner product of two vectors (any orientation) with equal
// cell counts.
func Dot(a, b *Dense) float64 {
	if len(a.data) != len(b.data) {
		panic("matrix: dot length mismatch")
	}
	s := 0.0
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of all cells.
func (m *Dense) Norm2() float64 {
	return math.Sqrt(m.Agg(AggSumSq))
}
