package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestSliceAndSetSlice(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Slice(1, 3, 0, 2)
	if !s.EqualApprox(FromRows([][]float64{{4, 5}, {7, 8}}), 0) {
		t.Fatalf("slice: %v", s)
	}
	m2 := m.Clone()
	m2.SetSlice(0, 1, FromRows([][]float64{{10, 11}}))
	if m2.At(0, 1) != 10 || m2.At(0, 2) != 11 || m2.At(0, 0) != 1 {
		t.Fatal("SetSlice")
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).Slice(0, 3, 0, 1)
}

func TestRBindCBind(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	r := RBind(a, b)
	if !r.EqualApprox(FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}}), 0) {
		t.Fatal("rbind")
	}
	c := CBind(a, FromRows([][]float64{{9}}))
	if !c.EqualApprox(FromRows([][]float64{{1, 2, 9}}), 0) {
		t.Fatal("cbind")
	}
}

func TestRemoveEmpty(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{0, 0}, {1, 0}, {0, 0}, {0, 2}})
	r, idx := m.RemoveEmptyRows()
	if r.Rows() != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("removeEmpty rows: %v %v", r, idx)
	}
	m2 := FromRows([][]float64{{0, 1, 0}, {0, 2, 0}})
	c, cidx := m2.RemoveEmptyCols()
	if c.Cols() != 1 || cidx[0] != 1 || c.At(1, 0) != 2 {
		t.Fatalf("removeEmpty cols: %v %v", c, cidx)
	}
}

func TestReplace(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{1, math.NaN(), 1}})
	if got := m.Replace(1, 9); got.At(0, 0) != 9 || got.At(0, 2) != 9 {
		t.Fatal("replace value")
	}
	got := m.Replace(math.NaN(), 0)
	if got.At(0, 1) != 0 || got.At(0, 0) != 1 {
		t.Fatal("replace NaN")
	}
}

func TestReshape(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{1, 2, 3, 4}})
	r := m.Reshape(2, 2)
	if !r.EqualApprox(FromRows([][]float64{{1, 2}, {3, 4}}), 0) {
		t.Fatal("reshape")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	m.Reshape(3, 2)
}

func TestDiag(t *testing.T) {
	t.Parallel()
	v := ColVector([]float64{1, 2})
	d := v.Diag()
	if !d.EqualApprox(FromRows([][]float64{{1, 0}, {0, 2}}), 0) {
		t.Fatal("vector->diag")
	}
	back := d.Diag()
	if !back.EqualApprox(v, 0) {
		t.Fatal("diag->vector")
	}
}

func TestSelectRows(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{1}, {2}, {3}})
	s := m.SelectRows([]int{2, 0, 2})
	if !s.EqualApprox(FromRows([][]float64{{3}, {1}, {3}}), 0) {
		t.Fatal("selectRows")
	}
}

func TestIfElseAndFusedTernary(t *testing.T) {
	t.Parallel()
	cond := FromRows([][]float64{{1, 0}})
	a := FromRows([][]float64{{10, 20}})
	b := FromRows([][]float64{{30, 40}})
	if !cond.IfElse(a, b).EqualApprox(RowVector([]float64{10, 40}), 0) {
		t.Fatal("ifelse")
	}
	sc := Fill(1, 1, 7)
	if !cond.IfElse(sc, b).EqualApprox(RowVector([]float64{7, 40}), 0) {
		t.Fatal("ifelse scalar arm")
	}
	if !a.PlusMult(2, b).EqualApprox(RowVector([]float64{70, 100}), 0) {
		t.Fatal("+*")
	}
	if !a.MinusMult(0.5, b).EqualApprox(RowVector([]float64{-5, 0}), 0) {
		t.Fatal("-*")
	}
}

func TestCTable(t *testing.T) {
	t.Parallel()
	a := ColVector([]float64{1, 2, 2, 3})
	b := ColVector([]float64{1, 1, 2, 1})
	got := CTable(a, b, 0, 0)
	want := FromRows([][]float64{{1, 0}, {1, 1}, {1, 0}})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("ctable: %v", got)
	}
	capped := CTable(a, b, 2, 2)
	if capped.Rows() != 2 || capped.Cols() != 2 {
		t.Fatal("ctable cap")
	}
}

func TestQuaternaryOps(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(4))
	x := Rand(rng, 6, 5, 0.5, 2)
	u := Rand(rng, 6, 3, 0.5, 1)
	v := Rand(rng, 5, 3, 0.5, 1)
	w := Rand(rng, 6, 5, 0, 1)
	uv := u.MatMul(v.Transpose())

	wantWSL := w.Mul(x.Sub(uv)).Mul(x.Sub(uv)).Sum()
	if got := WSLoss(x, u, v, w); math.Abs(got-wantWSL) > 1e-9 {
		t.Fatalf("wsloss %g want %g", got, wantWSL)
	}
	if got := WSLoss(x, u, v, nil); math.Abs(got-x.Sub(uv).Mul(x.Sub(uv)).Sum()) > 1e-9 {
		t.Fatal("wsloss unweighted")
	}

	wantWS := w.Mul(uv.Sigmoid())
	if got := WSigmoid(w, u, v); !got.EqualApprox(wantWS, 1e-10) {
		t.Fatal("wsigmoid")
	}

	wantWD := u.Transpose().MatMul(w.Div(uv)).Transpose()
	if got := WDivMM(w, u, v); !got.EqualApprox(wantWD, 1e-9) {
		t.Fatal("wdivmm")
	}

	wantWC := x.Mul(uv.Unary(ULog)).Sum()
	if got := WCEMM(x, u, v); math.Abs(got-wantWC) > 1e-9 {
		t.Fatalf("wcemm %g want %g", got, wantWC)
	}
}
