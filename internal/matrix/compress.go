package matrix

// Compressed is a column-wise dictionary-compressed matrix (dense
// dictionary coding, in the spirit of SystemDS' compressed linear algebra
// that ExDRa §4.4 proposes running in federated workers' free cycles).
// Columns with few distinct values — one-hot features, codes, sensor states
// — compress to a small dictionary plus one code per cell; operations
// execute directly on the compressed form where possible.
type Compressed struct {
	rows, cols int
	cols_      []compressedCol
}

type compressedCol struct {
	dict  []float64 // distinct values
	codes []uint32  // row -> dictionary index
}

// Compress converts a dense matrix to the compressed representation. It
// always succeeds; columns with many distinct values simply get large
// dictionaries (see CompressionRatio to decide whether to keep it).
func Compress(m *Dense) *Compressed {
	c := &Compressed{rows: m.rows, cols: m.cols, cols_: make([]compressedCol, m.cols)}
	for j := 0; j < m.cols; j++ {
		idx := map[float64]uint32{}
		col := compressedCol{codes: make([]uint32, m.rows)}
		for i := 0; i < m.rows; i++ {
			v := m.At(i, j)
			code, ok := idx[v]
			if !ok {
				code = uint32(len(col.dict))
				col.dict = append(col.dict, v)
				idx[v] = code
			}
			col.codes[i] = code
		}
		c.cols_[j] = col
	}
	return c
}

// Rows returns the number of rows.
func (c *Compressed) Rows() int { return c.rows }

// Cols returns the number of columns.
func (c *Compressed) Cols() int { return c.cols }

// Decompress materializes the dense matrix.
func (c *Compressed) Decompress() *Dense {
	m := NewDense(c.rows, c.cols)
	for j, col := range c.cols_ {
		for i, code := range col.codes {
			m.data[i*c.cols+j] = col.dict[code]
		}
	}
	return m
}

// SizeBytes estimates the in-memory footprint of the compressed form
// (8 bytes per dictionary entry, 4 per code).
func (c *Compressed) SizeBytes() int {
	total := 0
	for _, col := range c.cols_ {
		total += 8*len(col.dict) + 4*len(col.codes)
	}
	return total
}

// CompressionRatio returns dense bytes / compressed bytes (> 1 means the
// compressed form is smaller).
func (c *Compressed) CompressionRatio() float64 {
	dense := 8 * c.rows * c.cols
	if s := c.SizeBytes(); s > 0 {
		return float64(dense) / float64(s)
	}
	return 1
}

// Sum computes the sum of all cells on the compressed form: per column,
// count occurrences per dictionary entry.
func (c *Compressed) Sum() float64 {
	total := 0.0
	for _, col := range c.cols_ {
		counts := make([]int, len(col.dict))
		for _, code := range col.codes {
			counts[code]++
		}
		for k, v := range col.dict {
			total += v * float64(counts[k])
		}
	}
	return total
}

// ColSums computes per-column sums on the compressed form.
func (c *Compressed) ColSums() *Dense {
	out := NewDense(1, c.cols)
	for j, col := range c.cols_ {
		counts := make([]int, len(col.dict))
		for _, code := range col.codes {
			counts[code]++
		}
		s := 0.0
		for k, v := range col.dict {
			s += v * float64(counts[k])
		}
		out.data[j] = s
	}
	return out
}

// MatVec computes c %*% v for a dense vector/matrix v by accumulating
// pre-scaled dictionary values per column — each cell costs one lookup and
// one add, never a decompression.
func (c *Compressed) MatVec(v *Dense) *Dense {
	if v.rows != c.cols {
		panic("matrix: compressed matvec shape mismatch")
	}
	out := NewDense(c.rows, v.cols)
	for j, col := range c.cols_ {
		for t := 0; t < v.cols; t++ {
			scale := v.data[j*v.cols+t]
			if scale == 0 {
				continue
			}
			scaled := make([]float64, len(col.dict))
			for k, dv := range col.dict {
				scaled[k] = dv * scale
			}
			for i, code := range col.codes {
				out.data[i*v.cols+t] += scaled[code]
			}
		}
	}
	return out
}
