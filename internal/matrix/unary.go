package matrix

import (
	"fmt"
	"math"
)

// UnaryOp identifies an element-wise unary operation, mirroring the unary
// federated instructions of ExDRa Table 1.
type UnaryOp int

// Supported element-wise unary operations.
const (
	UAbs UnaryOp = iota
	UCos
	UExp
	UFloor
	UCeil
	UIsNA
	ULog
	UNot
	URound
	USin
	USign
	USqrt
	UTan
	USigmoid
	UNeg
	URelu
)

// String returns the DML-style opcode for the operation.
func (op UnaryOp) String() string {
	names := [...]string{"abs", "cos", "exp", "floor", "ceil", "isNA", "log",
		"!", "round", "sin", "sign", "sqrt", "tan", "sigmoid", "-", "relu"}
	if int(op) < len(names) {
		return names[op]
	}
	return fmt.Sprintf("unop(%d)", int(op))
}

func (op UnaryOp) apply(a float64) float64 {
	switch op {
	case UAbs:
		return math.Abs(a)
	case UCos:
		return math.Cos(a)
	case UExp:
		return math.Exp(a)
	case UFloor:
		return math.Floor(a)
	case UCeil:
		return math.Ceil(a)
	case UIsNA:
		return b2f(math.IsNaN(a))
	case ULog:
		return math.Log(a)
	case UNot:
		return b2f(a == 0)
	case URound:
		return math.Round(a)
	case USin:
		return math.Sin(a)
	case USign:
		switch {
		case a > 0:
			return 1
		case a < 0:
			return -1
		default:
			return 0
		}
	case USqrt:
		return math.Sqrt(a)
	case UTan:
		return math.Tan(a)
	case USigmoid:
		return 1 / (1 + math.Exp(-a))
	case UNeg:
		return -a
	case URelu:
		return math.Max(0, a)
	default:
		panic("matrix: unknown unary op")
	}
}

// Unary applies op to every cell.
func (m *Dense) Unary(op UnaryOp) *Dense {
	out := NewDense(m.rows, m.cols)
	parallelFor(len(m.data), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = op.apply(m.data[i])
		}
	})
	return out
}

// Apply applies fn to every cell. fn must be pure; it may run concurrently.
func (m *Dense) Apply(fn func(float64) float64) *Dense {
	out := NewDense(m.rows, m.cols)
	parallelFor(len(m.data), 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = fn(m.data[i])
		}
	})
	return out
}

// Exp returns element-wise e^m.
func (m *Dense) Exp() *Dense { return m.Unary(UExp) }

// Sqrt returns element-wise sqrt(m).
func (m *Dense) Sqrt() *Dense { return m.Unary(USqrt) }

// Sigmoid returns element-wise 1/(1+e^-m).
func (m *Dense) Sigmoid() *Dense { return m.Unary(USigmoid) }

// Neg returns -m.
func (m *Dense) Neg() *Dense { return m.Unary(UNeg) }

// Softmax returns row-wise softmax in a numerically stable form
// (subtracting the row maximum before exponentiation).
func (m *Dense) Softmax() *Dense {
	out := NewDense(m.rows, m.cols)
	parallelFor(m.rows, m.cols*4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			orow := out.Row(i)
			mx := math.Inf(-1)
			for _, v := range row {
				if v > mx {
					mx = v
				}
			}
			sum := 0.0
			for j, v := range row {
				e := math.Exp(v - mx)
				orow[j] = e
				sum += e
			}
			inv := 1 / sum
			for j := range orow {
				orow[j] *= inv
			}
		}
	})
	return out
}
