package matrix

import (
	"math/rand"
	"testing"
)

func randSPD(rng *rand.Rand, n int) *Dense {
	b := Randn(rng, n, n, 0, 1)
	spd := b.TSMM()
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	return spd
}

func TestEigenSymReconstructs(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(21))
	a := randSPD(rng, 8)
	vals, vecs := EigenSym(a)
	// A v_i = lambda_i v_i for each eigenpair.
	for i := 0; i < 8; i++ {
		vi := vecs.SliceCols(i, i+1)
		av := a.MatMul(vi)
		lv := vi.Scale(vals.At(i, 0))
		if !av.EqualApprox(lv, 1e-8) {
			t.Fatalf("eigenpair %d fails A v = lambda v", i)
		}
	}
	// Eigenvalues sorted descending.
	for i := 1; i < 8; i++ {
		if vals.At(i, 0) > vals.At(i-1, 0)+1e-12 {
			t.Fatal("eigenvalues not descending")
		}
	}
	// Eigenvectors orthonormal: VᵀV = I.
	if !vecs.TSMM().EqualApprox(Identity(8), 1e-8) {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	t.Parallel()
	a := ColVector([]float64{3, 1, 2}).Diag()
	vals, _ := EigenSym(a)
	if !vals.EqualApprox(ColVector([]float64{3, 2, 1}), 1e-12) {
		t.Fatalf("diagonal eigenvalues: %v", vals)
	}
}

func TestSolveCG(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(22))
	a := randSPD(rng, 12)
	want := Randn(rng, 12, 1, 0, 1)
	b := a.MatMul(want)
	x, it := SolveCG(a, b, 1e-12, 200)
	if it == 0 {
		t.Fatal("no iterations performed")
	}
	if !x.EqualApprox(want, 1e-6) {
		t.Fatal("CG solution wrong")
	}
	// Zero RHS short-circuits.
	if _, it := SolveCG(a, NewDense(12, 1), 1e-12, 100); it != 0 {
		t.Fatal("zero rhs should not iterate")
	}
}

func TestCholeskySolve(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	a := randSPD(rng, 9)
	want := Randn(rng, 9, 1, 0, 1)
	b := a.MatMul(want)
	x, ok := SolveCholesky(a, b)
	if !ok {
		t.Fatal("SPD matrix rejected")
	}
	if !x.EqualApprox(want, 1e-8) {
		t.Fatal("cholesky solution wrong")
	}
	l, ok := Cholesky(a)
	if !ok {
		t.Fatal("cholesky failed")
	}
	if !l.MatMul(l.Transpose()).EqualApprox(a, 1e-8) {
		t.Fatal("L Lᵀ != A")
	}
	// Non-SPD must be rejected.
	if _, ok := Cholesky(FromRows([][]float64{{0, 1}, {1, 0}})); ok {
		t.Fatal("non-SPD accepted")
	}
}
