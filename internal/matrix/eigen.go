package matrix

import (
	"math"
	"sort"
)

// EigenSym computes the eigen decomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// the matching eigenvectors as the columns of the returned matrix. PCA uses
// this on the covariance matrix t(X) %*% X / (n-1).
func EigenSym(a *Dense) (values *Dense, vectors *Dense) {
	if a.rows != a.cols {
		panic("matrix: eigen of non-square matrix")
	}
	n := a.rows
	m := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.data[i*n+j] * m.data[i*n+j]
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.data[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.data[p*n+p], m.data[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, p, q, c, s)
				rotateCols(v, p, q, c, s)
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.data[i*n+i]
	}
	// Sort eigenpairs descending by eigenvalue.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return vals[order[x]] > vals[order[y]] })
	values = NewDense(n, 1)
	vectors = NewDense(n, n)
	for oi, i := range order {
		values.data[oi] = vals[i]
		for r := 0; r < n; r++ {
			vectors.data[r*n+oi] = v.data[r*n+i]
		}
	}
	return values, vectors
}

// rotate applies a two-sided Jacobi rotation to symmetric m in place.
func rotate(m *Dense, p, q int, c, s float64) {
	n := m.cols
	for k := 0; k < n; k++ {
		mkp, mkq := m.data[k*n+p], m.data[k*n+q]
		m.data[k*n+p] = c*mkp - s*mkq
		m.data[k*n+q] = s*mkp + c*mkq
	}
	for k := 0; k < n; k++ {
		mpk, mqk := m.data[p*n+k], m.data[q*n+k]
		m.data[p*n+k] = c*mpk - s*mqk
		m.data[q*n+k] = s*mpk + c*mqk
	}
}

// rotateCols applies a one-sided rotation to the eigenvector accumulator.
func rotateCols(v *Dense, p, q int, c, s float64) {
	n := v.cols
	for k := 0; k < v.rows; k++ {
		vkp, vkq := v.data[k*n+p], v.data[k*n+q]
		v.data[k*n+p] = c*vkp - s*vkq
		v.data[k*n+q] = s*vkp + c*vkq
	}
}

// SolveCG solves the symmetric positive-definite system A x = b using the
// conjugate-gradient method with relative tolerance tol and at most maxIter
// iterations. It returns the solution and the iteration count.
func SolveCG(a *Dense, b *Dense, tol float64, maxIter int) (*Dense, int) {
	if a.rows != a.cols || b.rows != a.rows || b.cols != 1 {
		panic("matrix: SolveCG shape mismatch")
	}
	x := NewDense(a.rows, 1)
	r := b.Clone()
	p := r.Clone()
	rsOld := Dot(r, r)
	norm0 := math.Sqrt(rsOld)
	if norm0 == 0 {
		return x, 0
	}
	it := 0
	for ; it < maxIter; it++ {
		ap := a.MatMul(p)
		alpha := rsOld / Dot(p, ap)
		x.AxpyInPlace(alpha, p)
		r.AxpyInPlace(-alpha, ap)
		rsNew := Dot(r, r)
		if math.Sqrt(rsNew) <= tol*norm0 {
			it++
			break
		}
		beta := rsNew / rsOld
		for i := range p.data {
			p.data[i] = r.data[i] + beta*p.data[i]
		}
		rsOld = rsNew
	}
	return x, it
}

// Cholesky returns the lower-triangular Cholesky factor L of a symmetric
// positive-definite matrix (A = L Lᵀ), or ok=false if A is not SPD.
func Cholesky(a *Dense) (l *Dense, ok bool) {
	if a.rows != a.cols {
		panic("matrix: cholesky of non-square matrix")
	}
	n := a.rows
	l = NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.data[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l.data[i*n+k] * l.data[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, false
				}
				l.data[i*n+i] = math.Sqrt(sum)
			} else {
				l.data[i*n+j] = sum / l.data[j*n+j]
			}
		}
	}
	return l, true
}

// SolveCholesky solves A x = b via Cholesky factorization for SPD A.
func SolveCholesky(a, b *Dense) (*Dense, bool) {
	l, ok := Cholesky(a)
	if !ok {
		return nil, false
	}
	n := a.rows
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b.data[i]
		for k := 0; k < i; k++ {
			s -= l.data[i*n+k] * y[k]
		}
		y[i] = s / l.data[i*n+i]
	}
	// Back substitution Lᵀ x = y.
	x := NewDense(n, 1)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.data[k*n+i] * x.data[k]
		}
		x.data[i] = s / l.data[i*n+i]
	}
	return x, true
}
