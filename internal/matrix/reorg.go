package matrix

import "fmt"

// Slice returns the sub-matrix m[rowBeg:rowEnd, colBeg:colEnd) (half-open,
// zero-based), copied. It implements DML matrix indexing X[:,:].
func (m *Dense) Slice(rowBeg, rowEnd, colBeg, colEnd int) *Dense {
	if rowBeg < 0 || colBeg < 0 || rowEnd > m.rows || colEnd > m.cols ||
		rowBeg > rowEnd || colBeg > colEnd {
		panic(fmt.Sprintf("matrix: slice [%d:%d,%d:%d] out of range for %dx%d",
			rowBeg, rowEnd, colBeg, colEnd, m.rows, m.cols))
	}
	out := NewDense(rowEnd-rowBeg, colEnd-colBeg)
	w := colEnd - colBeg
	for i := rowBeg; i < rowEnd; i++ {
		copy(out.data[(i-rowBeg)*w:(i-rowBeg+1)*w], m.data[i*m.cols+colBeg:i*m.cols+colEnd])
	}
	return out
}

// SliceRows returns rows [beg, end).
func (m *Dense) SliceRows(beg, end int) *Dense { return m.Slice(beg, end, 0, m.cols) }

// SliceCols returns columns [beg, end).
func (m *Dense) SliceCols(beg, end int) *Dense { return m.Slice(0, m.rows, beg, end) }

// SetSlice copies src into m at offset (rowBeg, colBeg), mutating m.
func (m *Dense) SetSlice(rowBeg, colBeg int, src *Dense) {
	if rowBeg+src.rows > m.rows || colBeg+src.cols > m.cols {
		panic("matrix: SetSlice out of range")
	}
	for i := 0; i < src.rows; i++ {
		copy(m.data[(rowBeg+i)*m.cols+colBeg:(rowBeg+i)*m.cols+colBeg+src.cols], src.Row(i))
	}
}

// RBind vertically concatenates the inputs (equal column counts).
func RBind(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	cols, rows := ms[0].cols, 0
	for _, m := range ms {
		if m.cols != cols {
			panic("matrix: rbind column mismatch")
		}
		rows += m.rows
	}
	out := NewDense(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off:], m.data)
		off += len(m.data)
	}
	return out
}

// CBind horizontally concatenates the inputs (equal row counts).
func CBind(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	rows, cols := ms[0].rows, 0
	for _, m := range ms {
		if m.rows != rows {
			panic("matrix: cbind row mismatch")
		}
		cols += m.cols
	}
	out := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		off := i * cols
		for _, m := range ms {
			copy(out.data[off:off+m.cols], m.Row(i))
			off += m.cols
		}
	}
	return out
}

// RemoveEmptyRows drops all-zero rows (DML removeEmpty margin="rows") and
// returns the compacted matrix together with the kept original row indices.
func (m *Dense) RemoveEmptyRows() (*Dense, []int) {
	keep := make([]int, 0, m.rows)
	for i := 0; i < m.rows; i++ {
		for _, v := range m.Row(i) {
			if v != 0 {
				keep = append(keep, i)
				break
			}
		}
	}
	out := NewDense(len(keep), m.cols)
	for oi, i := range keep {
		copy(out.Row(oi), m.Row(i))
	}
	return out, keep
}

// RemoveEmptyCols drops all-zero columns (DML removeEmpty margin="cols") and
// returns the compacted matrix together with the kept original column indices.
func (m *Dense) RemoveEmptyCols() (*Dense, []int) {
	keep := make([]int, 0, m.cols)
	for j := 0; j < m.cols; j++ {
		for i := 0; i < m.rows; i++ {
			if m.data[i*m.cols+j] != 0 {
				keep = append(keep, j)
				break
			}
		}
	}
	out := NewDense(m.rows, len(keep))
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		for oj, j := range keep {
			orow[oj] = row[j]
		}
	}
	return out, keep
}

// Replace returns a copy with every cell equal to pattern replaced by repl.
// NaN patterns match NaN cells (DML replace semantics).
func (m *Dense) Replace(pattern, repl float64) *Dense {
	isNaN := pattern != pattern
	return m.Apply(func(v float64) float64 {
		if v == pattern || (isNaN && v != v) {
			return repl
		}
		return v
	})
}

// Reshape returns a rows x cols view-copy with identical row-major cell
// order (DML matrix(X, rows, cols)).
func (m *Dense) Reshape(rows, cols int) *Dense {
	if rows*cols != len(m.data) {
		panic(fmt.Sprintf("matrix: reshape %dx%d incompatible with %d cells", rows, cols, len(m.data)))
	}
	out := NewDense(rows, cols)
	copy(out.data, m.data)
	return out
}

// Diag extracts the diagonal of a square matrix as a column vector, or
// expands a vector into a diagonal matrix.
func (m *Dense) Diag() *Dense {
	if m.cols == 1 { // vector -> diagonal matrix
		out := NewDense(m.rows, m.rows)
		for i := 0; i < m.rows; i++ {
			out.data[i*m.rows+i] = m.data[i]
		}
		return out
	}
	if m.rows != m.cols {
		panic("matrix: diag of non-square matrix")
	}
	out := NewDense(m.rows, 1)
	for i := 0; i < m.rows; i++ {
		out.data[i] = m.data[i*m.cols+i]
	}
	return out
}

// SelectRows gathers the given zero-based row indices into a new matrix
// (the permutation/selection primitive behind sampling and shuffling).
func (m *Dense) SelectRows(idx []int) *Dense {
	out := NewDense(len(idx), m.cols)
	for oi, i := range idx {
		copy(out.Row(oi), m.Row(i))
	}
	return out
}
