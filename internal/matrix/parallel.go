package matrix

import (
	"runtime"
	"sync"
)

// parallelThreshold is the minimum work size (cells touched) below which
// kernels run single-threaded to avoid goroutine overhead.
const parallelThreshold = 1 << 14

// maxThreads bounds kernel parallelism; it defaults to GOMAXPROCS.
var maxThreads = runtime.GOMAXPROCS(0)

// SetParallelism overrides the number of goroutines used by heavy kernels.
// n < 1 resets to GOMAXPROCS. It returns the previous value.
func SetParallelism(n int) int {
	prev := maxThreads
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxThreads = n
	return prev
}

// parallelFor splits [0, n) into contiguous chunks and runs fn(lo, hi) on
// each, concurrently when the estimated work is large enough.
func parallelFor(n, workPerItem int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	threads := maxThreads
	if threads > n {
		threads = n
	}
	if threads <= 1 || n*workPerItem < parallelThreshold {
		fn(0, n)
		return
	}
	chunk := (n + threads - 1) / threads
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
