package matrix

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the minimum work size (cells touched) below which
// kernels run single-threaded to avoid goroutine overhead.
const parallelThreshold = 1 << 14

// maxThreads bounds kernel parallelism; it defaults to GOMAXPROCS. It is
// atomic because SetParallelism may be called (e.g. by a worker reacting to
// load) while other goroutines are inside kernels reading it.
var maxThreads atomic.Int64

func init() { maxThreads.Store(int64(runtime.GOMAXPROCS(0))) }

// SetParallelism overrides the number of goroutines used by heavy kernels.
// n < 1 resets to GOMAXPROCS. It returns the previous value. Safe for
// concurrent use with running kernels: each kernel snapshots the value once
// per invocation.
func SetParallelism(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(maxThreads.Swap(int64(n)))
}

// threadsFor snapshots the thread bound clamped to an n-item loop, never
// below 1. Kernels call it exactly once per invocation so chunk sizing and
// slice allocation agree even if SetParallelism runs concurrently.
func threadsFor(n int) int {
	t := int(maxThreads.Load())
	if t > n {
		t = n
	}
	if t < 1 {
		t = 1
	}
	return t
}

// band returns the half-open item range [lo, hi) of band t when n items are
// split into chunk-sized contiguous bands; hi <= lo means the band is empty
// (more bands than items).
func band(t, chunk, n int) (lo, hi int) {
	lo = t * chunk
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// parallelFor splits [0, n) into contiguous chunks and runs fn(lo, hi) on
// each, concurrently when the estimated work is large enough.
func parallelFor(n, workPerItem int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	threads := threadsFor(n)
	if threads <= 1 || n*workPerItem < parallelThreshold {
		fn(0, n)
		return
	}
	chunk := (n + threads - 1) / threads
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
