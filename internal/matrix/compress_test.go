package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// oneHotLike builds a matrix dominated by repeated values (compressible).
func oneHotLike(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		m.Set(i, rng.Intn(cols), 1)
	}
	return m
}

func TestCompressRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	m := oneHotLike(rng, 200, 12)
	c := Compress(m)
	if !c.Decompress().EqualApprox(m, 0) {
		t.Fatal("round trip")
	}
	if c.Rows() != 200 || c.Cols() != 12 {
		t.Fatal("dims")
	}
	// One-hot columns have 2 distinct values: massive compression.
	if c.CompressionRatio() < 1.8 {
		t.Fatalf("ratio %g too low for one-hot data", c.CompressionRatio())
	}
	// Random dense data does not compress (dictionary per cell).
	d := Randn(rng, 100, 4, 0, 1)
	if Compress(d).CompressionRatio() > 1 {
		t.Fatal("random data should not compress")
	}
}

func TestCompressedOps(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	m := oneHotLike(rng, 150, 9).Scale(3)
	c := Compress(m)
	if math.Abs(c.Sum()-m.Sum()) > 1e-12 {
		t.Fatal("compressed sum")
	}
	if !c.ColSums().EqualApprox(m.ColSums(), 1e-12) {
		t.Fatal("compressed colSums")
	}
	v := Randn(rng, 9, 2, 0, 1)
	if !c.MatVec(v).EqualApprox(m.MatMul(v), 1e-10) {
		t.Fatal("compressed matvec")
	}
}

func TestPropCompressRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64, r, cc uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewDense(dims(r)+1, dims(cc))
		for i := range m.data {
			m.data[i] = float64(rng.Intn(4)) // small value domain
		}
		c := Compress(m)
		return c.Decompress().EqualApprox(m, 0) &&
			math.Abs(c.Sum()-m.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
