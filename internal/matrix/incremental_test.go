package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIncrementalMatchesBatch(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	m := Randn(rng, 60, 4, 2, 3)
	s := NewIncrementalStats(4)
	for i := 0; i < m.Rows(); i++ {
		s.Append(m.Row(i))
	}
	if s.Count() != 60 {
		t.Fatal("count")
	}
	if !s.ColMeans().EqualApprox(m.ColMeans(), 1e-10) {
		t.Fatal("means")
	}
	if !s.ColSDs().EqualApprox(m.ColSDs(), 1e-10) {
		t.Fatal("sds")
	}
	if !s.ColMins().EqualApprox(m.ColMins(), 0) || !s.ColMaxs().EqualApprox(m.ColMaxs(), 0) {
		t.Fatal("min/max")
	}
}

func TestIncrementalRemove(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	m := Randn(rng, 30, 3, 0, 1)
	s := NewIncrementalStats(3)
	for i := 0; i < 30; i++ {
		s.Append(m.Row(i))
	}
	// Remove the first 10 rows (retention-style eviction).
	for i := 0; i < 10; i++ {
		s.Remove(m.Row(i))
	}
	rest := m.SliceRows(10, 30)
	if s.Count() != 20 {
		t.Fatal("count after remove")
	}
	if !s.ColMeans().EqualApprox(rest.ColMeans(), 1e-10) {
		t.Fatal("means after remove")
	}
	if !s.ColSDs().EqualApprox(rest.ColSDs(), 1e-9) {
		t.Fatal("sds after remove")
	}
	// Min/max may be stale; rebuild restores exactness.
	if s.NeedsRebuild() {
		rows := make([][]float64, 20)
		for i := range rows {
			rows[i] = rest.Row(i)
		}
		s.Rebuild(rows)
	}
	if !s.ColMins().EqualApprox(rest.ColMins(), 0) || !s.ColMaxs().EqualApprox(rest.ColMaxs(), 0) {
		t.Fatal("min/max after rebuild")
	}
	if s.NeedsRebuild() {
		t.Fatal("rebuild did not clear the dirty flag")
	}
}

func TestIncrementalRemoveNonExtremumKeepsMinMax(t *testing.T) {
	t.Parallel()
	s := NewIncrementalStats(1)
	s.Append([]float64{1})
	s.Append([]float64{5})
	s.Append([]float64{3})
	s.Remove([]float64{3}) // interior value: min/max remain exact
	if s.NeedsRebuild() {
		t.Fatal("interior removal flagged rebuild")
	}
	if s.ColMins().At(0, 0) != 1 || s.ColMaxs().At(0, 0) != 5 {
		t.Fatal("min/max changed")
	}
	s.Remove([]float64{5}) // extremum: flagged
	if !s.NeedsRebuild() {
		t.Fatal("extremum removal not flagged")
	}
}

func TestPropIncrementalAppend(t *testing.T) {
	t.Parallel()
	f := func(seed int64, r, c uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genMatrix(rng, dims(r)+1, dims(c))
		s := NewIncrementalStats(m.Cols())
		for i := 0; i < m.Rows(); i++ {
			s.Append(m.Row(i))
		}
		if !s.ColMeans().EqualApprox(m.ColMeans(), 1e-9) {
			return false
		}
		if m.Rows() > 1 {
			got, want := s.ColSDs(), m.ColSDs()
			for j := 0; j < m.Cols(); j++ {
				if math.Abs(got.At(0, j)-want.At(0, j)) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
