package matrix

import "math"

// IfElse returns a matrix selecting cells from a where the condition cell is
// non-zero and from b otherwise (DML ifelse). a and b may be 1x1 scalars.
func (m *Dense) IfElse(a, b *Dense) *Dense {
	av := func(i int) float64 {
		if a.rows == 1 && a.cols == 1 {
			return a.data[0]
		}
		return a.data[i]
	}
	bv := func(i int) float64 {
		if b.rows == 1 && b.cols == 1 {
			return b.data[0]
		}
		return b.data[i]
	}
	out := NewDense(m.rows, m.cols)
	for i, c := range m.data {
		if c != 0 {
			out.data[i] = av(i)
		} else {
			out.data[i] = bv(i)
		}
	}
	return out
}

// PlusMult returns m + s*b, the DML fused ternary +* operator.
func (m *Dense) PlusMult(s float64, b *Dense) *Dense {
	out := m.Clone()
	out.AxpyInPlace(s, b)
	return out
}

// MinusMult returns m - s*b, the DML fused ternary -* operator.
func (m *Dense) MinusMult(s float64, b *Dense) *Dense {
	out := m.Clone()
	out.AxpyInPlace(-s, b)
	return out
}

// CTable computes the contingency table of two equal-length column vectors
// (DML table(A, B)): cell (i,j) counts rows where a==i+1 and b==j+1. Values
// are rounded to the nearest integer; non-positive cells are ignored.
// dims caps the output shape when positive; otherwise the maxima determine it.
func CTable(a, b *Dense, rowsCap, colsCap int) *Dense {
	if len(a.data) != len(b.data) {
		panic("matrix: ctable length mismatch")
	}
	maxA, maxB := 0, 0
	for i := range a.data {
		ai, bi := int(math.Round(a.data[i])), int(math.Round(b.data[i]))
		if ai > maxA {
			maxA = ai
		}
		if bi > maxB {
			maxB = bi
		}
	}
	if rowsCap > 0 {
		maxA = rowsCap
	}
	if colsCap > 0 {
		maxB = colsCap
	}
	out := NewDense(maxA, maxB)
	for i := range a.data {
		ai, bi := int(math.Round(a.data[i])), int(math.Round(b.data[i]))
		if ai >= 1 && ai <= maxA && bi >= 1 && bi <= maxB {
			out.data[(ai-1)*maxB+bi-1]++
		}
	}
	return out
}
