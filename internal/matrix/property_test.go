package matrix

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genMatrix draws a small random matrix with dimensions derived from the
// quick-check seed values, keeping shapes compatible where needed.
func genMatrix(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = math.Round(rng.NormFloat64()*100) / 10 // keep values exact-ish
	}
	return m
}

func dims(seed uint8) int { return int(seed%7) + 1 }

func TestPropTransposeMatMul(t *testing.T) {
	t.Parallel()
	// (A B)ᵀ = Bᵀ Aᵀ
	f := func(seed int64, r, k, c uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genMatrix(rng, dims(r), dims(k))
		b := genMatrix(rng, dims(k), dims(c))
		left := a.MatMul(b).Transpose()
		right := b.Transpose().MatMul(a.Transpose())
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulDistributes(t *testing.T) {
	t.Parallel()
	// A (B + C) = A B + A C
	f := func(seed int64, r, k, c uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genMatrix(rng, dims(r), dims(k))
		b := genMatrix(rng, dims(k), dims(c))
		cc := genMatrix(rng, dims(k), dims(c))
		left := a.MatMul(b.Add(cc))
		right := a.MatMul(b).Add(a.MatMul(cc))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropRBindSum(t *testing.T) {
	t.Parallel()
	// sum(rbind(A,B)) = sum(A) + sum(B); same for colSums.
	f := func(seed int64, r1, r2, c uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genMatrix(rng, dims(r1), dims(c))
		b := genMatrix(rng, dims(r2), dims(c))
		r := RBind(a, b)
		if math.Abs(r.Sum()-(a.Sum()+b.Sum())) > 1e-9 {
			return false
		}
		return r.ColSums().EqualApprox(a.ColSums().Add(b.ColSums()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSliceRBindIdentity(t *testing.T) {
	t.Parallel()
	// rbind(X[0:k,], X[k:n,]) = X
	f := func(seed int64, r, c, cut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genMatrix(rng, dims(r)+1, dims(c))
		k := int(cut) % (m.Rows() + 1)
		return RBind(m.SliceRows(0, k), m.SliceRows(k, m.Rows())).EqualApprox(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCSRRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64, r, c uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genMatrix(rng, dims(r), dims(c))
		for i := range m.data {
			if rng.Float64() < 0.5 {
				m.data[i] = 0
			}
		}
		return FromDense(m).ToDense().EqualApprox(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropTSMMSymmetric(t *testing.T) {
	t.Parallel()
	f := func(seed int64, r, c uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genMatrix(rng, dims(r), dims(c))
		s := m.TSMM()
		return s.EqualApprox(s.Transpose(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSoftmaxRowsNormalized(t *testing.T) {
	t.Parallel()
	f := func(seed int64, r, c uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genMatrix(rng, dims(r), dims(c))
		rs := m.Softmax().RowSums()
		for i := 0; i < rs.Rows(); i++ {
			if math.Abs(rs.At(i, 0)-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropReplaceIdempotent(t *testing.T) {
	t.Parallel()
	f := func(seed int64, r, c uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genMatrix(rng, dims(r), dims(c))
		once := m.Replace(0, -1)
		twice := once.Replace(0, -1)
		return once.EqualApprox(twice, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropBinaryIORoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64, r, c uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genMatrix(rng, dims(r), dims(c))
		var buf bytes.Buffer
		if err := m.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		return err == nil && got.EqualApprox(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
