package matrix

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Binary matrix format: magic "EXDM", uint32 version, int64 rows, int64
// cols, then rows*cols little-endian float64 values. This is the format
// federated workers READ from their local raw-data directories.

var binMagic = [4]byte{'E', 'X', 'D', 'M'}

// WriteBinary writes the matrix in the ExDRa binary format.
func (m *Dense) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	hdr := []any{uint32(1), int64(m.rows), int64(m.cols)}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, v := range m.data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a matrix in the ExDRa binary format.
func ReadBinary(r io.Reader) (*Dense, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("matrix: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("matrix: bad magic %q", magic)
	}
	var version uint32
	var rows, cols int64
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("matrix: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
		return nil, err
	}
	if rows < 0 || cols < 0 || rows*cols > 1<<34 {
		return nil, fmt.Errorf("matrix: implausible dimensions %dx%d", rows, cols)
	}
	m := NewDense(int(rows), int(cols))
	buf := make([]byte, 8)
	for i := range m.data {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("matrix: truncated payload at cell %d: %w", i, err)
		}
		m.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return m, nil
}

// WriteBinaryFile writes the matrix to path in the ExDRa binary format.
func (m *Dense) WriteBinaryFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile reads a matrix from path in the ExDRa binary format.
func ReadBinaryFile(path string) (*Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// WriteCSV writes the matrix as comma-separated values without a header.
func (m *Dense) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a headerless numeric CSV into a matrix.
func ReadCSV(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var data []float64
	rows, cols := 0, -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("matrix: row %d has %d fields, want %d", rows, len(fields), cols)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: row %d: %w", rows, err)
			}
			data = append(data, v)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cols == -1 {
		cols = 0
	}
	return NewDenseData(rows, cols, data), nil
}
