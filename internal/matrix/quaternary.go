package matrix

import "math"

// The quaternary operators mirror SystemDS' fused weighted operations
// (wsloss, wsigmoid, wdivmm, wcemm) listed in ExDRa Table 1. They all take a
// (possibly sparse in spirit) weight/target matrix W or X plus the factor
// matrices U (rows x k) and V (cols x k) of a low-rank product U %*% t(V).

func checkFactors(x, u, v *Dense) {
	if u.rows != x.rows || v.rows != x.cols || u.cols != v.cols {
		panic("matrix: quaternary factor shape mismatch")
	}
}

func uvDot(u, v *Dense, i, j int) float64 {
	k := u.cols
	urow := u.data[i*k : (i+1)*k]
	vrow := v.data[j*k : (j+1)*k]
	s := 0.0
	for t, a := range urow {
		s += a * vrow[t]
	}
	return s
}

// WSLoss computes the weighted squared loss sum(W * (X - U %*% t(V))^2).
// A nil W means all weights are one.
func WSLoss(x, u, v, w *Dense) float64 {
	checkFactors(x, u, v)
	total := 0.0
	for i := 0; i < x.rows; i++ {
		for j := 0; j < x.cols; j++ {
			wij := 1.0
			if w != nil {
				wij = w.data[i*w.cols+j]
				if wij == 0 {
					continue
				}
			}
			d := x.data[i*x.cols+j] - uvDot(u, v, i, j)
			total += wij * d * d
		}
	}
	return total
}

// WSigmoid computes W * sigmoid(U %*% t(V)), evaluating the sigmoid only
// where W is non-zero.
func WSigmoid(w, u, v *Dense) *Dense {
	checkFactors(w, u, v)
	out := NewDense(w.rows, w.cols)
	for i := 0; i < w.rows; i++ {
		for j := 0; j < w.cols; j++ {
			wij := w.data[i*w.cols+j]
			if wij == 0 {
				continue
			}
			out.data[i*w.cols+j] = wij / (1 + math.Exp(-uvDot(u, v, i, j)))
		}
	}
	return out
}

// WDivMM computes t(t(U) %*% (W / (U %*% t(V)))) — the right factor update
// of weighted matrix factorization; cells where W is zero are skipped.
func WDivMM(w, u, v *Dense) *Dense {
	checkFactors(w, u, v)
	k := u.cols
	out := NewDense(v.rows, k)
	for i := 0; i < w.rows; i++ {
		for j := 0; j < w.cols; j++ {
			wij := w.data[i*w.cols+j]
			if wij == 0 {
				continue
			}
			q := wij / uvDot(u, v, i, j)
			urow := u.data[i*k : (i+1)*k]
			orow := out.data[j*k : (j+1)*k]
			for t, a := range urow {
				orow[t] += q * a
			}
		}
	}
	return out
}

// WCEMM computes the weighted cross-entropy sum(X * log(U %*% t(V))) over
// non-zero cells of X.
func WCEMM(x, u, v *Dense) float64 {
	checkFactors(x, u, v)
	total := 0.0
	for i := 0; i < x.rows; i++ {
		for j := 0; j < x.cols; j++ {
			xij := x.data[i*x.cols+j]
			if xij == 0 {
				continue
			}
			total += xij * math.Log(uvDot(u, v, i, j))
		}
	}
	return total
}
