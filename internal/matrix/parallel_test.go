package matrix

import (
	"sync"
	"testing"
)

// intMatrix fills an r x c matrix with small deterministic integer values so
// kernel results are exact regardless of floating-point summation order (and
// therefore of the thread count splitting the bands).
func intMatrix(r, c, seed int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = float64((i*7+seed*13)%9 - 4)
	}
	return m
}

// TestSmallMatrixHighParallelism pins kernel correctness when the configured
// thread count far exceeds the matrix dimensions: band computation must
// clamp to the item count, leaving no out-of-range or double-covered rows.
func TestSmallMatrixHighParallelism(t *testing.T) {
	defer SetParallelism(SetParallelism(1))
	sizes := [][2]int{{1, 1}, {2, 3}, {5, 4}, {7, 65}, {64, 64}, {129, 33}}
	for _, sz := range sizes {
		r, c := sz[0], sz[1]
		a := intMatrix(r, c, 1)
		b := intMatrix(c, r, 2)
		v := intMatrix(c, 1, 3)
		w := intMatrix(r, 1, 4)

		SetParallelism(1)
		wantMM := a.MatMul(b)
		wantTS := a.TSMM()
		wantMC := a.MMChain(v, w)
		wantT := a.Transpose()

		SetParallelism(64)
		gotMM := a.MatMul(b)
		gotTS := a.TSMM()
		gotMC := a.MMChain(v, w)
		gotT := a.Transpose()

		for name, pair := range map[string][2]*Dense{
			"matmul": {wantMM, gotMM}, "tsmm": {wantTS, gotTS},
			"mmchain": {wantMC, gotMC}, "transpose": {wantT, gotT},
		} {
			want, got := pair[0], pair[1]
			if want.rows != got.rows || want.cols != got.cols {
				t.Fatalf("%dx%d %s: shape %dx%d != %dx%d", r, c, name,
					got.rows, got.cols, want.rows, want.cols)
			}
			for i := range want.data {
				if want.data[i] != got.data[i] {
					t.Fatalf("%dx%d %s: cell %d: %g (64 threads) != %g (1 thread)",
						r, c, name, i, got.data[i], want.data[i])
				}
			}
		}
	}
}

// TestConcurrentSetParallelism is a -race regression: SetParallelism used to
// write a plain int global that every kernel reads, so reconfiguring
// parallelism while kernels run was a data race.
func TestConcurrentSetParallelism(t *testing.T) {
	defer SetParallelism(SetParallelism(0))
	a := intMatrix(64, 48, 5)
	v := intMatrix(48, 1, 6)
	stop := make(chan struct{})
	var flipper sync.WaitGroup
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetParallelism(1 + i%8)
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < 4; g++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 50; i++ {
				_ = a.MatMul(v)
				_ = a.MMChain(v, nil)
				_ = a.TSMM()
			}
		}()
	}
	workers.Wait()
	close(stop)
	flipper.Wait()
}
