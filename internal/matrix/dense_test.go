package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewDenseAndAccessors(t *testing.T) {
	t.Parallel()
	m := NewDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 || m.Size() != 6 {
		t.Fatalf("got %dx%d size %d", m.Rows(), m.Cols(), m.Size())
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2)=%g", m.At(1, 2))
	}
	if m.Row(1)[2] != 7 {
		t.Fatalf("Row aliasing broken")
	}
}

func TestNewDenseDataLengthCheck(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestFromRowsRaggedPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCloneIsDeep(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestIdentityAndFill(t *testing.T) {
	t.Parallel()
	id := Identity(3)
	if id.Trace() != 3 || id.Sum() != 3 {
		t.Fatalf("identity trace=%g sum=%g", id.Trace(), id.Sum())
	}
	f := Fill(2, 2, 2.5)
	if f.Sum() != 10 {
		t.Fatalf("fill sum=%g", f.Sum())
	}
}

func TestSeq(t *testing.T) {
	t.Parallel()
	s := Seq(1, 2, 4)
	want := []float64{1, 3, 5, 7}
	for i, w := range want {
		if s.At(i, 0) != w {
			t.Fatalf("seq[%d]=%g want %g", i, s.At(i, 0), w)
		}
	}
}

func TestRandDeterministic(t *testing.T) {
	t.Parallel()
	a := Rand(rand.New(rand.NewSource(7)), 4, 4, 0, 1)
	b := Rand(rand.New(rand.NewSource(7)), 4, 4, 0, 1)
	if !a.EqualApprox(b, 0) {
		t.Fatal("Rand not deterministic for equal seeds")
	}
	for _, v := range a.Data() {
		if v < 0 || v >= 1 {
			t.Fatalf("value %g out of [0,1)", v)
		}
	}
}

func TestEqualApprox(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, math.NaN()}})
	b := FromRows([][]float64{{1.0000001, math.NaN()}})
	if !a.EqualApprox(b, 1e-5) {
		t.Fatal("NaN==NaN tolerance compare failed")
	}
	if a.EqualApprox(NewDense(2, 1), 1) {
		t.Fatal("shape mismatch must not compare equal")
	}
}

func TestSparsity(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{0, 1}, {0, 2}})
	if got := m.Sparsity(); got != 0.5 {
		t.Fatalf("sparsity=%g want 0.5", got)
	}
	if NewDense(0, 0).Sparsity() != 0 {
		t.Fatal("empty matrix sparsity")
	}
}

func TestStringForms(t *testing.T) {
	t.Parallel()
	small := FromRows([][]float64{{1, 2}})
	if small.String() != "Dense(1x2)[1 2]" {
		t.Fatalf("small string %q", small.String())
	}
	big := NewDense(100, 100)
	if big.String() != "Dense(100x100)" {
		t.Fatalf("big string %q", big.String())
	}
}
