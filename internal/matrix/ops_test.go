package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestBinarySameShape(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	got := a.Add(b)
	want := FromRows([][]float64{{11, 22}, {33, 44}})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("add: %v", got)
	}
	if !a.Mul(b).EqualApprox(FromRows([][]float64{{10, 40}, {90, 160}}), 0) {
		t.Fatal("mul")
	}
}

func TestBinaryColBroadcast(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := ColVector([]float64{10, 100})
	got := a.Add(v)
	want := FromRows([][]float64{{11, 12}, {103, 104}})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("col broadcast: %v", got)
	}
}

func TestBinaryRowBroadcast(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := RowVector([]float64{10, 100})
	got := a.Mul(v)
	want := FromRows([][]float64{{10, 200}, {30, 400}})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("row broadcast: %v", got)
	}
}

func TestBinaryScalarAndSwap(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, 2}})
	if !a.BinaryScalar(OpSub, 1, false).EqualApprox(FromRows([][]float64{{0, 1}}), 0) {
		t.Fatal("m-s")
	}
	if !a.BinaryScalar(OpSub, 1, true).EqualApprox(FromRows([][]float64{{0, -1}}), 0) {
		t.Fatal("s-m")
	}
	one := Fill(1, 1, 5)
	if !a.Binary(OpAdd, one).EqualApprox(FromRows([][]float64{{6, 7}}), 0) {
		t.Fatal("1x1 scalar broadcast")
	}
}

func TestComparisonAndLogicalOps(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, 0, 2}})
	b := FromRows([][]float64{{1, 1, 1}})
	cases := []struct {
		op   BinaryOp
		want []float64
	}{
		{OpEq, []float64{1, 0, 0}},
		{OpNe, []float64{0, 1, 1}},
		{OpGt, []float64{0, 0, 1}},
		{OpGe, []float64{1, 0, 1}},
		{OpLt, []float64{0, 1, 0}},
		{OpLe, []float64{1, 1, 0}},
		{OpAnd, []float64{1, 0, 1}},
		{OpOr, []float64{1, 1, 1}},
		{OpXor, []float64{0, 1, 0}},
	}
	for _, c := range cases {
		got := a.Binary(c.op, b)
		if !got.EqualApprox(RowVector(c.want), 0) {
			t.Errorf("%v: got %v want %v", c.op, got, c.want)
		}
	}
}

func TestModIntDivPowLog(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{7, 8}})
	b := FromRows([][]float64{{3, 2}})
	if !a.Binary(OpMod, b).EqualApprox(RowVector([]float64{1, 0}), 0) {
		t.Fatal("mod")
	}
	if !a.Binary(OpIntDiv, b).EqualApprox(RowVector([]float64{2, 4}), 0) {
		t.Fatal("intdiv")
	}
	if !b.Binary(OpPow, b).EqualApprox(RowVector([]float64{27, 4}), 1e-12) {
		t.Fatal("pow")
	}
	l := FromRows([][]float64{{8}}).Binary(OpLog, FromRows([][]float64{{2}}))
	if math.Abs(l.At(0, 0)-3) > 1e-12 {
		t.Fatalf("log_2(8)=%g", l.At(0, 0))
	}
}

func TestIncompatibleShapesPanic(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).Add(NewDense(3, 2))
}

func TestUnaryOps(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{-1.5, 4, 0}})
	if !a.Unary(UAbs).EqualApprox(RowVector([]float64{1.5, 4, 0}), 0) {
		t.Fatal("abs")
	}
	if !a.Unary(USign).EqualApprox(RowVector([]float64{-1, 1, 0}), 0) {
		t.Fatal("sign")
	}
	if !a.Unary(UNot).EqualApprox(RowVector([]float64{0, 0, 1}), 0) {
		t.Fatal("not")
	}
	if !a.Unary(UFloor).EqualApprox(RowVector([]float64{-2, 4, 0}), 0) {
		t.Fatal("floor")
	}
	if !a.Unary(UCeil).EqualApprox(RowVector([]float64{-1, 4, 0}), 0) {
		t.Fatal("ceil")
	}
	if !a.Unary(URelu).EqualApprox(RowVector([]float64{0, 4, 0}), 0) {
		t.Fatal("relu")
	}
	nan := FromRows([][]float64{{math.NaN(), 1}})
	if !nan.Unary(UIsNA).EqualApprox(RowVector([]float64{1, 0}), 0) {
		t.Fatal("isNA")
	}
	s := FromRows([][]float64{{0}}).Sigmoid()
	if math.Abs(s.At(0, 0)-0.5) > 1e-15 {
		t.Fatalf("sigmoid(0)=%g", s.At(0, 0))
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	m := Randn(rng, 5, 7, 0, 10)
	sm := m.Softmax()
	rs := sm.RowSums()
	for i := 0; i < 5; i++ {
		if math.Abs(rs.At(i, 0)-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", i, rs.At(i, 0))
		}
	}
	// Softmax is shift-invariant; large inputs must not overflow.
	big := Fill(1, 3, 1e8)
	if s := big.Softmax().Sum(); math.Abs(s-1) > 1e-12 {
		t.Fatalf("softmax overflow, sum=%g", s)
	}
}

func TestAggregates(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Sum() != 21 || m.Min() != 1 || m.Max() != 6 || m.Mean() != 3.5 {
		t.Fatalf("sum/min/max/mean: %g %g %g %g", m.Sum(), m.Min(), m.Max(), m.Mean())
	}
	if v := m.Agg(AggVar); math.Abs(v-3.5) > 1e-12 {
		t.Fatalf("var=%g", v)
	}
	if sd := m.Agg(AggSD); math.Abs(sd-math.Sqrt(3.5)) > 1e-12 {
		t.Fatalf("sd=%g", sd)
	}
	if !m.RowSums().EqualApprox(ColVector([]float64{6, 15}), 0) {
		t.Fatal("rowSums")
	}
	if !m.ColSums().EqualApprox(RowVector([]float64{5, 7, 9}), 0) {
		t.Fatal("colSums")
	}
	if !m.RowMins().EqualApprox(ColVector([]float64{1, 4}), 0) {
		t.Fatal("rowMins")
	}
	if !m.ColMaxs().EqualApprox(RowVector([]float64{4, 5, 6}), 0) {
		t.Fatal("colMaxs")
	}
	if !m.RowMeans().EqualApprox(ColVector([]float64{2, 5}), 0) {
		t.Fatal("rowMeans")
	}
	if !m.ColMeans().EqualApprox(RowVector([]float64{2.5, 3.5, 4.5}), 0) {
		t.Fatal("colMeans")
	}
}

func TestRowIndexMax(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{1, 9, 2}, {7, 1, 3}})
	if !m.RowIndexMax().EqualApprox(ColVector([]float64{2, 1}), 0) {
		t.Fatal("rowIndexMax")
	}
}

func TestPartialAggCombine(t *testing.T) {
	t.Parallel()
	m := FromRows([][]float64{{1, 2, 3, 4, 5, 6}})
	a := m.SliceCols(0, 2)
	b := m.SliceCols(2, 6)
	s1, q1, mn1, mx1, n1 := a.PartialAgg()
	s2, q2, mn2, mx2, n2 := b.PartialAgg()
	for _, op := range []AggOp{AggSum, AggMin, AggMax, AggMean, AggVar, AggSD} {
		got := CombinePartialAggs(op,
			[]float64{s1, s2}, []float64{q1, q2},
			[]float64{mn1, mn2}, []float64{mx1, mx2}, []int{n1, n2})
		want := m.Agg(op)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%v: combined %g want %g", op, got, want)
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !a.MatMul(b).EqualApprox(want, 0) {
		t.Fatal("matmul")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).MatMul(NewDense(2, 3))
}

func TestMatMulAgainstNaive(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	a := Randn(rng, 33, 70, 0, 1)
	b := Randn(rng, 70, 21, 0, 1)
	got := a.MatMul(b)
	want := naiveMatMul(a, b)
	if !got.EqualApprox(want, 1e-10) {
		t.Fatal("blocked matmul differs from naive")
	}
}

func naiveMatMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			s := 0.0
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestTSMMEqualsExplicit(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	x := Randn(rng, 57, 13, 0, 1)
	got := x.TSMM()
	want := x.Transpose().MatMul(x)
	if !got.EqualApprox(want, 1e-10) {
		t.Fatal("tsmm differs from explicit t(X) matmul X")
	}
}

func TestMMChainEqualsExplicit(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(6))
	x := Randn(rng, 41, 9, 0, 1)
	v := Randn(rng, 9, 1, 0, 1)
	w := Randn(rng, 41, 1, 0, 1)
	got := x.MMChain(v, w)
	want := x.Transpose().MatMul(w.Mul(x.MatMul(v)))
	if !got.EqualApprox(want, 1e-10) {
		t.Fatal("mmchain with weights")
	}
	got2 := x.MMChain(v, nil)
	want2 := x.Transpose().MatMul(x.MatMul(v))
	if !got2.EqualApprox(want2, 1e-10) {
		t.Fatal("mmchain without weights")
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(8))
	m := Randn(rng, 130, 67, 0, 1)
	if !m.Transpose().Transpose().EqualApprox(m, 0) {
		t.Fatal("double transpose is not the identity")
	}
	if m.Transpose().At(3, 5) != m.At(5, 3) {
		t.Fatal("transpose cell")
	}
}

func TestDotAndNorm(t *testing.T) {
	t.Parallel()
	a := ColVector([]float64{3, 4})
	if Dot(a, a) != 25 {
		t.Fatal("dot")
	}
	if a.Norm2() != 5 {
		t.Fatal("norm2")
	}
}

func TestInPlaceOps(t *testing.T) {
	t.Parallel()
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{10, 20}})
	a.AddInPlace(b)
	if !a.EqualApprox(RowVector([]float64{11, 22}), 0) {
		t.Fatal("AddInPlace")
	}
	a.ScaleInPlace(2)
	if !a.EqualApprox(RowVector([]float64{22, 44}), 0) {
		t.Fatal("ScaleInPlace")
	}
	a.AxpyInPlace(-1, b)
	if !a.EqualApprox(RowVector([]float64{12, 24}), 0) {
		t.Fatal("AxpyInPlace")
	}
}
