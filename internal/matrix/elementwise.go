package matrix

import (
	"fmt"
	"math"
)

// BinaryOp identifies an element-wise binary operation. The set mirrors the
// binary federated instructions of ExDRa Table 1.
type BinaryOp int

// Supported element-wise binary operations.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpPow
	OpMin
	OpMax
	OpMod
	OpIntDiv
	OpEq
	OpNe
	OpGt
	OpGe
	OpLt
	OpLe
	OpAnd
	OpOr
	OpXor
	OpLog // log_b(a): log of a with base b
)

// String returns the DML-style opcode for the operation.
func (op BinaryOp) String() string {
	names := [...]string{"+", "-", "*", "/", "^", "min", "max", "%%", "%/%",
		"==", "!=", ">", ">=", "<", "<=", "&", "|", "xor", "log"}
	if int(op) < len(names) {
		return names[op]
	}
	return fmt.Sprintf("binop(%d)", int(op))
}

func (op BinaryOp) apply(a, b float64) float64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return a / b
	case OpPow:
		return math.Pow(a, b)
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	case OpMod:
		return math.Mod(a, b)
	case OpIntDiv:
		return math.Floor(a / b)
	case OpEq:
		return b2f(a == b)
	case OpNe:
		return b2f(a != b)
	case OpGt:
		return b2f(a > b)
	case OpGe:
		return b2f(a >= b)
	case OpLt:
		return b2f(a < b)
	case OpLe:
		return b2f(a <= b)
	case OpAnd:
		return b2f(a != 0 && b != 0)
	case OpOr:
		return b2f(a != 0 || b != 0)
	case OpXor:
		return b2f((a != 0) != (b != 0))
	case OpLog:
		return math.Log(a) / math.Log(b)
	default:
		panic("matrix: unknown binary op")
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Binary applies op cell-wise with R-style broadcasting: b may have the same
// shape as m, be a column vector (rows x 1), a row vector (1 x cols), or a
// 1x1 scalar.
func (m *Dense) Binary(op BinaryOp, b *Dense) *Dense {
	out := NewDense(m.rows, m.cols)
	switch {
	case b.rows == m.rows && b.cols == m.cols:
		parallelFor(len(m.data), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.data[i] = op.apply(m.data[i], b.data[i])
			}
		})
	case b.rows == 1 && b.cols == 1:
		return m.BinaryScalar(op, b.data[0], false)
	case b.rows == m.rows && b.cols == 1: // column-vector broadcast
		parallelFor(m.rows, m.cols, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := b.data[i]
				row := m.Row(i)
				orow := out.Row(i)
				for j, a := range row {
					orow[j] = op.apply(a, v)
				}
			}
		})
	case b.rows == 1 && b.cols == m.cols: // row-vector broadcast
		parallelFor(m.rows, m.cols, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := m.Row(i)
				orow := out.Row(i)
				for j, a := range row {
					orow[j] = op.apply(a, b.data[j])
				}
			}
		})
	default:
		panic(fmt.Sprintf("matrix: incompatible shapes %dx%d %s %dx%d",
			m.rows, m.cols, op, b.rows, b.cols))
	}
	return out
}

// BinaryScalar applies op cell-wise against scalar s. When swap is true the
// scalar is the left operand (s op m), e.g. for 1-X.
func (m *Dense) BinaryScalar(op BinaryOp, s float64, swap bool) *Dense {
	out := NewDense(m.rows, m.cols)
	parallelFor(len(m.data), 1, func(lo, hi int) {
		if swap {
			for i := lo; i < hi; i++ {
				out.data[i] = op.apply(s, m.data[i])
			}
		} else {
			for i := lo; i < hi; i++ {
				out.data[i] = op.apply(m.data[i], s)
			}
		}
	})
	return out
}

// Convenience wrappers for the most common binary operations.

// Add returns m + b with broadcasting.
func (m *Dense) Add(b *Dense) *Dense { return m.Binary(OpAdd, b) }

// Sub returns m - b with broadcasting.
func (m *Dense) Sub(b *Dense) *Dense { return m.Binary(OpSub, b) }

// Mul returns the element-wise (Hadamard) product m * b with broadcasting.
func (m *Dense) Mul(b *Dense) *Dense { return m.Binary(OpMul, b) }

// Div returns element-wise m / b with broadcasting.
func (m *Dense) Div(b *Dense) *Dense { return m.Binary(OpDiv, b) }

// Scale returns m * s.
func (m *Dense) Scale(s float64) *Dense { return m.BinaryScalar(OpMul, s, false) }

// AddScalar returns m + s.
func (m *Dense) AddScalar(s float64) *Dense { return m.BinaryScalar(OpAdd, s, false) }

// AddInPlace adds b (same shape) into m, mutating m. Used by hot paths such
// as the parameter server where allocation matters.
func (m *Dense) AddInPlace(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic("matrix: AddInPlace shape mismatch")
	}
	for i, v := range b.data {
		m.data[i] += v
	}
}

// ScaleInPlace multiplies every cell of m by s, mutating m.
func (m *Dense) ScaleInPlace(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AxpyInPlace computes m += alpha*b, mutating m.
func (m *Dense) AxpyInPlace(alpha float64, b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic("matrix: AxpyInPlace shape mismatch")
	}
	for i, v := range b.data {
		m.data[i] += alpha * v
	}
}
