// Package matrix implements the dense and sparse linear-algebra kernels that
// back both the local and the federated runtime, mirroring the role of
// SystemDS' local CPU backend in the ExDRa system (SIGMOD 2021).
//
// Matrices are row-major float64. All operations allocate their result unless
// documented otherwise; inputs are never mutated. Heavy kernels (matrix
// multiplication, transpose-self multiplication) are multi-threaded.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zero-initialized rows x cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (row-major, length rows*cols) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix from a slice of equally sized rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("matrix: ragged rows")
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// ColVector builds an n x 1 matrix from values.
func ColVector(values []float64) *Dense {
	m := NewDense(len(values), 1)
	copy(m.data, values)
	return m
}

// RowVector builds a 1 x n matrix from values.
func RowVector(values []float64) *Dense {
	m := NewDense(1, len(values))
	copy(m.data, values)
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Fill returns a rows x cols matrix with every cell set to v.
func Fill(rows, cols int, v float64) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = v
	}
	return m
}

// Rand returns a rows x cols matrix with uniform values in [lo, hi) drawn
// from rng (deterministic given the rng seed).
func Rand(rng *rand.Rand, rows, cols int, lo, hi float64) *Dense {
	m := NewDense(rows, cols)
	span := hi - lo
	for i := range m.data {
		m.data[i] = lo + span*rng.Float64()
	}
	return m
}

// Randn returns a rows x cols matrix with normal(mean, sd) values.
func Randn(rng *rand.Rand, rows, cols int, mean, sd float64) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = mean + sd*rng.NormFloat64()
	}
	return m
}

// Seq returns a column vector [from, from+incr, ...] with n entries.
func Seq(from, incr float64, n int) *Dense {
	m := NewDense(n, 1)
	for i := 0; i < n; i++ {
		m.data[i] = from + float64(i)*incr
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Size returns the number of cells.
func (m *Dense) Size() int { return len(m.data) }

// At returns the value at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set stores v at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the backing row-major slice (aliased, not copied).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// String renders small matrices fully and large ones as a summary.
func (m *Dense) String() string {
	if m.rows*m.cols > 64 {
		return fmt.Sprintf("Dense(%dx%d)", m.rows, m.cols)
	}
	s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%g", m.At(i, j))
		}
	}
	return s + "]"
}

// EqualApprox reports whether m and o have the same shape and all cells are
// within tol of each other (NaN cells compare equal to NaN).
func (m *Dense) EqualApprox(o *Dense, tol float64) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		w := o.data[i]
		if math.IsNaN(v) && math.IsNaN(w) {
			continue
		}
		if math.Abs(v-w) > tol {
			return false
		}
	}
	return true
}

// Sparsity returns the fraction of non-zero cells.
func (m *Dense) Sparsity() float64 {
	if len(m.data) == 0 {
		return 0
	}
	nnz := 0
	for _, v := range m.data {
		if v != 0 {
			nnz++
		}
	}
	return float64(nnz) / float64(len(m.data))
}
