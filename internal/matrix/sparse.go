package matrix

// CSR is a compressed sparse row matrix. It backs the sparse operations the
// paper mentions for the CNN workload (inputs just below the sparsity
// threshold) and for one-hot encoded features.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	values     []float64
}

// SparsityThreshold is the non-zero fraction below which ToSparse conversion
// is considered worthwhile (mirrors SystemDS' internal threshold the paper's
// CNN discussion refers to).
const SparsityThreshold = 0.4

// FromDense converts a dense matrix to CSR.
func FromDense(m *Dense) *CSR {
	s := &CSR{rows: m.rows, cols: m.cols, rowPtr: make([]int, m.rows+1)}
	for i := 0; i < m.rows; i++ {
		for j, v := range m.Row(i) {
			if v != 0 {
				s.colIdx = append(s.colIdx, j)
				s.values = append(s.values, v)
			}
		}
		s.rowPtr[i+1] = len(s.values)
	}
	return s
}

// Rows returns the number of rows.
func (s *CSR) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *CSR) Cols() int { return s.cols }

// NNZ returns the number of stored non-zeros.
func (s *CSR) NNZ() int { return len(s.values) }

// Sparsity returns the fraction of non-zero cells.
func (s *CSR) Sparsity() float64 {
	if s.rows*s.cols == 0 {
		return 0
	}
	return float64(s.NNZ()) / float64(s.rows*s.cols)
}

// ToDense converts back to a dense matrix.
func (s *CSR) ToDense() *Dense {
	m := NewDense(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
			m.data[i*s.cols+s.colIdx[p]] = s.values[p]
		}
	}
	return m
}

// MatMul returns s %*% b for dense b, iterating only non-zeros.
func (s *CSR) MatMul(b *Dense) *Dense {
	if s.cols != b.rows {
		panic("matrix: sparse matmul shape mismatch")
	}
	out := NewDense(s.rows, b.cols)
	p := b.cols
	parallelFor(s.rows, p, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.data[i*p : (i+1)*p]
			for q := s.rowPtr[i]; q < s.rowPtr[i+1]; q++ {
				a := s.values[q]
				brow := b.data[s.colIdx[q]*p : (s.colIdx[q]+1)*p]
				for j, bv := range brow {
					orow[j] += a * bv
				}
			}
		}
	})
	return out
}

// TransposeMatMul returns t(s) %*% b for dense b.
func (s *CSR) TransposeMatMul(b *Dense) *Dense {
	if s.rows != b.rows {
		panic("matrix: sparse t-matmul shape mismatch")
	}
	out := NewDense(s.cols, b.cols)
	p := b.cols
	for i := 0; i < s.rows; i++ {
		brow := b.data[i*p : (i+1)*p]
		for q := s.rowPtr[i]; q < s.rowPtr[i+1]; q++ {
			a := s.values[q]
			orow := out.data[s.colIdx[q]*p : (s.colIdx[q]+1)*p]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// Sum returns the sum of all cells.
func (s *CSR) Sum() float64 {
	t := 0.0
	for _, v := range s.values {
		t += v
	}
	return t
}
