package matrix

import (
	"fmt"
	"math"
)

// AggOp identifies a full or row/column aggregation, mirroring the aggregate
// federated instructions of ExDRa Table 1.
type AggOp int

// Supported aggregation operations.
const (
	AggSum AggOp = iota
	AggMin
	AggMax
	AggMean
	AggVar
	AggSD
	AggSumSq
)

// String returns the DML-style opcode for the aggregation.
func (op AggOp) String() string {
	names := [...]string{"sum", "min", "max", "mean", "var", "sd", "sumsq"}
	if int(op) < len(names) {
		return names[op]
	}
	return fmt.Sprintf("agg(%d)", int(op))
}

type aggState struct {
	sum, sumSq, mn, mx float64
	n                  int
}

func newAggState() aggState {
	return aggState{mn: math.Inf(1), mx: math.Inf(-1)}
}

func (s *aggState) add(v float64) {
	s.sum += v
	s.sumSq += v * v
	if v < s.mn {
		s.mn = v
	}
	if v > s.mx {
		s.mx = v
	}
	s.n++
}

func (s *aggState) merge(o aggState) {
	s.sum += o.sum
	s.sumSq += o.sumSq
	if o.mn < s.mn {
		s.mn = o.mn
	}
	if o.mx > s.mx {
		s.mx = o.mx
	}
	s.n += o.n
}

func (s *aggState) result(op AggOp) float64 {
	switch op {
	case AggSum:
		return s.sum
	case AggMin:
		return s.mn
	case AggMax:
		return s.mx
	case AggMean:
		return s.sum / float64(s.n)
	case AggVar:
		n := float64(s.n)
		return (s.sumSq - s.sum*s.sum/n) / (n - 1)
	case AggSD:
		n := float64(s.n)
		return math.Sqrt((s.sumSq - s.sum*s.sum/n) / (n - 1))
	case AggSumSq:
		return s.sumSq
	default:
		panic("matrix: unknown agg op")
	}
}

// Agg computes a full aggregation over all cells.
func (m *Dense) Agg(op AggOp) float64 {
	s := newAggState()
	for _, v := range m.data {
		s.add(v)
	}
	return s.result(op)
}

// Sum returns the sum of all cells.
func (m *Dense) Sum() float64 { return m.Agg(AggSum) }

// Min returns the minimum cell value.
func (m *Dense) Min() float64 { return m.Agg(AggMin) }

// Max returns the maximum cell value.
func (m *Dense) Max() float64 { return m.Agg(AggMax) }

// Mean returns the mean of all cells.
func (m *Dense) Mean() float64 { return m.Agg(AggMean) }

// RowAgg aggregates each row, returning a rows x 1 vector.
func (m *Dense) RowAgg(op AggOp) *Dense {
	out := NewDense(m.rows, 1)
	parallelFor(m.rows, m.cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := newAggState()
			for _, v := range m.Row(i) {
				s.add(v)
			}
			out.data[i] = s.result(op)
		}
	})
	return out
}

// ColAgg aggregates each column, returning a 1 x cols vector.
func (m *Dense) ColAgg(op AggOp) *Dense {
	states := make([]aggState, m.cols)
	for j := range states {
		states[j] = newAggState()
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			states[j].add(v)
		}
	}
	out := NewDense(1, m.cols)
	for j := range states {
		out.data[j] = states[j].result(op)
	}
	return out
}

// RowSums returns the rows x 1 vector of per-row sums.
func (m *Dense) RowSums() *Dense { return m.RowAgg(AggSum) }

// RowMins returns the rows x 1 vector of per-row minima.
func (m *Dense) RowMins() *Dense { return m.RowAgg(AggMin) }

// RowMaxs returns the rows x 1 vector of per-row maxima.
func (m *Dense) RowMaxs() *Dense { return m.RowAgg(AggMax) }

// RowMeans returns the rows x 1 vector of per-row means.
func (m *Dense) RowMeans() *Dense { return m.RowAgg(AggMean) }

// ColSums returns the 1 x cols vector of per-column sums.
func (m *Dense) ColSums() *Dense { return m.ColAgg(AggSum) }

// ColMins returns the 1 x cols vector of per-column minima.
func (m *Dense) ColMins() *Dense { return m.ColAgg(AggMin) }

// ColMaxs returns the 1 x cols vector of per-column maxima.
func (m *Dense) ColMaxs() *Dense { return m.ColAgg(AggMax) }

// ColMeans returns the 1 x cols vector of per-column means.
func (m *Dense) ColMeans() *Dense { return m.ColAgg(AggMean) }

// ColSDs returns the 1 x cols vector of per-column sample standard deviations.
func (m *Dense) ColSDs() *Dense { return m.ColAgg(AggSD) }

// ColVars returns the 1 x cols vector of per-column sample variances.
func (m *Dense) ColVars() *Dense { return m.ColAgg(AggVar) }

// RowIndexMax returns for each row the 1-based column index of its maximum
// value (DML rowIndexMax semantics).
func (m *Dense) RowIndexMax() *Dense {
	out := NewDense(m.rows, 1)
	parallelFor(m.rows, m.cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			best, arg := math.Inf(-1), 0
			for j, v := range row {
				if v > best {
					best, arg = v, j
				}
			}
			out.data[i] = float64(arg + 1)
		}
	})
	return out
}

// Trace returns the sum of diagonal cells of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic("matrix: trace of non-square matrix")
	}
	t := 0.0
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// PartialAgg returns the partial aggregation state of all cells so callers
// (e.g. the federated runtime) can combine partial results from disjoint
// partitions. The returned tuple is (sum, sumsq, min, max, count).
func (m *Dense) PartialAgg() (sum, sumSq, mn, mx float64, n int) {
	s := newAggState()
	for _, v := range m.data {
		s.add(v)
	}
	return s.sum, s.sumSq, s.mn, s.mx, s.n
}

// CombinePartialAggs folds partial aggregation tuples (as produced by
// PartialAgg) into the final value of op. It implements the coordinator-side
// merge of federated aggregates.
func CombinePartialAggs(op AggOp, sums, sumSqs, mins, maxs []float64, counts []int) float64 {
	s := newAggState()
	for i := range sums {
		s.merge(aggState{sum: sums[i], sumSq: sumSqs[i], mn: mins[i], mx: maxs[i], n: counts[i]})
	}
	return s.result(op)
}
