// Package hierarchy implements ExDRa federation hierarchies (§4.1): a
// federated worker whose local data is itself federated acts as the
// coordinator of a subgroup of workers. A gateway site mounts a subgroup
// federation (e.g. the machines inside one enterprise's trust zone) and
// serves it upward either as a consolidated local object — data crosses
// only the intra-enterprise boundary — or purely as aggregates that never
// consolidate anywhere.
package hierarchy

import (
	"fmt"
	"sync"

	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
	"exdra/internal/worker"
)

func init() {
	worker.MustRegisterUDF("hier_mount", udfMount)
	worker.MustRegisterUDF("hier_consolidate", udfConsolidate)
	worker.MustRegisterUDF("hier_agg", udfAgg)
}

// SubSpec names one leaf file in a subgroup federation.
type SubSpec struct {
	Addr     string
	Filename string
	Privacy  int
}

// MountArgs describe the subgroup a gateway should coordinate.
type MountArgs struct {
	Specs []SubSpec
}

// mount is the gateway-held handle of a subgroup federation.
type mount struct {
	mu    sync.Mutex
	coord *federated.Coordinator // guarded by mu
	fx    *federated.Matrix      // guarded by mu
}

// udfMount makes the gateway worker a coordinator of the subgroup: it
// connects to the leaf workers, issues READs there, and stores the
// federation map (metadata only — no leaf data moves).
func udfMount(w *worker.Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args MountArgs
	if err := worker.DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	coord := federated.NewCoordinator(fedrpc.Options{})
	specs := make([]federated.ReadSpec, len(args.Specs))
	for i, s := range args.Specs {
		specs[i] = federated.ReadSpec{Addr: s.Addr, Filename: s.Filename, Privacy: privacy.Level(s.Privacy)}
	}
	fx, err := federated.ReadRowPartitioned(coord, specs)
	if err != nil {
		coord.Close()
		return fedrpc.Payload{}, fmt.Errorf("hier_mount: %w", err)
	}
	w.Put(call.Output, &worker.Entry{Obj: &mount{coord: coord, fx: fx}, Level: privacy.Private})
	return fedrpc.MatrixPayload(matrix.RowVector([]float64{
		float64(fx.Rows()), float64(fx.Cols())})), nil
}

func getMount(w *worker.Worker, id int64) (*mount, error) {
	e, err := w.Get(id)
	if err != nil {
		return nil, err
	}
	m, ok := e.Obj.(*mount)
	if !ok {
		return nil, fmt.Errorf("hierarchy: object %d is not a subgroup mount", id)
	}
	return m, nil
}

// ConsolidateArgs bind the consolidated subgroup data at the gateway.
type ConsolidateArgs struct {
	// Privacy is the constraint the consolidated object carries at the
	// gateway toward the upper federation.
	Privacy int
}

// udfConsolidate pulls the subgroup partitions into a gateway-local matrix
// (subject to the leaves' privacy constraints) and binds it under the
// output ID, so the upper coordinator can treat the gateway as an ordinary
// federated site holding that region.
func udfConsolidate(w *worker.Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args ConsolidateArgs
	if err := worker.DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	m, err := getMount(w, call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	local, err := m.fx.Consolidate()
	if err != nil {
		return fedrpc.Payload{}, fmt.Errorf("hier_consolidate: %w", err)
	}
	w.PutMatrix(call.Output, local, privacy.Level(args.Privacy))
	return fedrpc.ScalarPayload(float64(local.Rows())), nil
}

// AggArgs select the subgroup aggregate.
type AggArgs struct {
	Op string // sum, min, max, mean, var, sd
}

// udfAgg computes a full aggregate over the subgroup federation without
// consolidating anywhere: the gateway fans the request out to its leaves
// and combines their partial tuples, returning one scalar upward.
func udfAgg(w *worker.Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args AggArgs
	if err := worker.DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	ops := map[string]matrix.AggOp{
		"sum": matrix.AggSum, "min": matrix.AggMin, "max": matrix.AggMax,
		"mean": matrix.AggMean, "var": matrix.AggVar, "sd": matrix.AggSD,
	}
	op, ok := ops[args.Op]
	if !ok {
		return fedrpc.Payload{}, fmt.Errorf("hier_agg: unknown op %q", args.Op)
	}
	m, err := getMount(w, call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, err := m.fx.AggFull(op)
	if err != nil {
		return fedrpc.Payload{}, err
	}
	return fedrpc.ScalarPayload(v), nil
}

// Gateway is the top-coordinator-side helper for building a two-level
// federation: Mount installs the subgroup at a gateway worker, Consolidate
// binds the subgroup's rows there, and the returned data ID can be placed
// in an upper-level federation map.
type Gateway struct {
	coord   *federated.Coordinator
	addr    string
	mountID int64
	rows    int
	cols    int
}

// Mount makes the worker at gatewayAddr the coordinator of the given
// subgroup.
func Mount(coord *federated.Coordinator, gatewayAddr string, specs []SubSpec) (*Gateway, error) {
	cl, err := coord.Client(gatewayAddr)
	if err != nil {
		return nil, err
	}
	args, err := worker.EncodeArgs(MountArgs{Specs: specs})
	if err != nil {
		return nil, err
	}
	id := coord.NewID()
	resp, err := cl.CallOne(fedrpc.Request{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
		Name: "hier_mount", Output: id, Args: args}})
	if err != nil {
		return nil, err
	}
	dims := resp.Data.Matrix()
	return &Gateway{coord: coord, addr: gatewayAddr, mountID: id,
		rows: int(dims.At(0, 0)), cols: int(dims.At(0, 1))}, nil
}

// Rows returns the subgroup's total row count.
func (g *Gateway) Rows() int { return g.rows }

// Cols returns the subgroup's column count.
func (g *Gateway) Cols() int { return g.cols }

// Consolidate binds the subgroup's rows as a gateway-local object under the
// given constraint and returns its data ID for upper-level federation maps.
func (g *Gateway) Consolidate(level privacy.Level) (int64, error) {
	cl, err := g.coord.Client(g.addr)
	if err != nil {
		return 0, err
	}
	args, err := worker.EncodeArgs(ConsolidateArgs{Privacy: int(level)})
	if err != nil {
		return 0, err
	}
	id := g.coord.NewID()
	if _, err := cl.CallOne(fedrpc.Request{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
		Name: "hier_consolidate", Inputs: []int64{g.mountID}, Output: id, Args: args}}); err != nil {
		return 0, err
	}
	return id, nil
}

// Agg computes a subgroup aggregate at the gateway without consolidation.
func (g *Gateway) Agg(op string) (float64, error) {
	cl, err := g.coord.Client(g.addr)
	if err != nil {
		return 0, err
	}
	args, err := worker.EncodeArgs(AggArgs{Op: op})
	if err != nil {
		return 0, err
	}
	resp, err := cl.CallOne(fedrpc.Request{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
		Name: "hier_agg", Inputs: []int64{g.mountID}, Args: args}})
	if err != nil {
		return 0, err
	}
	return resp.Data.Scalar, nil
}
