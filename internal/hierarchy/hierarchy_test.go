package hierarchy_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"exdra/internal/algo"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/hierarchy"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

// twoLevel builds a two-level federation: two gateway workers, each
// coordinating two leaf workers holding raw files.
func twoLevel(t *testing.T) (top *fedtest.Cluster, leaves *fedtest.Cluster, data []*matrix.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	dirs := make([]string, 4)
	data = make([]*matrix.Dense, 4)
	for i := range dirs {
		dirs[i] = t.TempDir()
		data[i] = matrix.Randn(rng, 20+5*i, 6, 0, 1)
		if err := data[i].WriteBinaryFile(dirs[i] + "/leaf.bin"); err != nil {
			t.Fatal(err)
		}
	}
	leaves, err := fedtest.Start(fedtest.Config{Workers: 4, BaseDirs: dirs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(leaves.Close)
	top, err = fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(top.Close)
	return top, leaves, data
}

func TestHierarchicalAggregationWithoutConsolidation(t *testing.T) {
	top, leaves, data := twoLevel(t)
	g1, err := hierarchy.Mount(top.Coord, top.Addrs[0], []hierarchy.SubSpec{
		{Addr: leaves.Addrs[0], Filename: "leaf.bin", Privacy: int(privacy.PrivateAggregation)},
		{Addr: leaves.Addrs[1], Filename: "leaf.bin", Privacy: int(privacy.PrivateAggregation)},
	})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := hierarchy.Mount(top.Coord, top.Addrs[1], []hierarchy.SubSpec{
		{Addr: leaves.Addrs[2], Filename: "leaf.bin", Privacy: int(privacy.PrivateAggregation)},
		{Addr: leaves.Addrs[3], Filename: "leaf.bin", Privacy: int(privacy.PrivateAggregation)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g1.Rows() != data[0].Rows()+data[1].Rows() || g1.Cols() != 6 {
		t.Fatalf("gateway 1 dims %dx%d", g1.Rows(), g1.Cols())
	}
	// Global sum via the hierarchy: gateway aggregates over its leaves,
	// the top coordinator combines gateway scalars. No raw row ever moved.
	s1, err := g1.Agg("sum")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := g2.Agg("sum")
	if err != nil {
		t.Fatal(err)
	}
	want := data[0].Sum() + data[1].Sum() + data[2].Sum() + data[3].Sum()
	if math.Abs(s1+s2-want) > 1e-9 {
		t.Fatalf("hierarchical sum %g want %g", s1+s2, want)
	}
	// Consolidation is blocked by the leaves' PrivateAggregation level.
	if _, err := g1.Consolidate(privacy.Public); err == nil ||
		!strings.Contains(err.Error(), "privacy") {
		t.Fatalf("gateway consolidated private leaves: %v", err)
	}
	if _, err := g1.Agg("nosuch"); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
}

func TestTwoLevelFederatedTraining(t *testing.T) {
	top, leaves, data := twoLevel(t)
	// Leaves are Public toward their gateway (same trust zone); the
	// consolidated gateway regions are PrivateAggregation toward the top
	// coordinator (cross-enterprise boundary).
	g1, err := hierarchy.Mount(top.Coord, top.Addrs[0], []hierarchy.SubSpec{
		{Addr: leaves.Addrs[0], Filename: "leaf.bin", Privacy: int(privacy.Public)},
		{Addr: leaves.Addrs[1], Filename: "leaf.bin", Privacy: int(privacy.Public)},
	})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := hierarchy.Mount(top.Coord, top.Addrs[1], []hierarchy.SubSpec{
		{Addr: leaves.Addrs[2], Filename: "leaf.bin", Privacy: int(privacy.Public)},
		{Addr: leaves.Addrs[3], Filename: "leaf.bin", Privacy: int(privacy.Public)},
	})
	if err != nil {
		t.Fatal(err)
	}
	id1, err := g1.Consolidate(privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := g2.Consolidate(privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	// Upper-level federation map over the two gateway regions.
	rows1, rows2 := g1.Rows(), g2.Rows()
	fm := federated.FedMap{Rows: rows1 + rows2, Cols: 6, Partitions: []federated.Partition{
		{Range: federated.Range{RowBeg: 0, RowEnd: rows1, ColBeg: 0, ColEnd: 6},
			Addr: top.Addrs[0], DataID: id1},
		{Range: federated.Range{RowBeg: rows1, RowEnd: rows1 + rows2, ColBeg: 0, ColEnd: 6},
			Addr: top.Addrs[1], DataID: id2},
	}}
	fx, err := federated.FromMap(top.Coord, fm)
	if err != nil {
		t.Fatal(err)
	}
	// Train LM over the two-level federation and compare against local
	// training on the stacked leaf data.
	all := matrix.RBind(data...)
	rng := rand.New(rand.NewSource(3))
	wStar := matrix.Randn(rng, 6, 1, 0, 1)
	y := all.MatMul(wStar)
	fed, err := algo.LM(fx, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := algo.LM(all, y, algo.LMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !fed.Weights.EqualApprox(local.Weights, 1e-6) {
		t.Fatal("two-level federated LM differs from local")
	}
	// The gateway regions themselves stay untransferable upward.
	if _, err := fx.Consolidate(); err == nil {
		t.Fatal("gateway regions consolidated at the top coordinator")
	}
}
