package frame

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sample() *Frame {
	return MustNew(
		StringColumn("A", []string{"R101", "C7", "R102"}),
		FloatColumn("B", []float64{2100, 5500, 1.5}),
		IntColumn("N", []int64{1, 2, 3}),
		BoolColumn("F", []bool{true, false, true}),
	)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(FloatColumn("a", []float64{1}), FloatColumn("a", []float64{2})); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := New(FloatColumn("a", []float64{1}), FloatColumn("b", []float64{1, 2})); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestAccessors(t *testing.T) {
	f := sample()
	if f.NumRows() != 3 || f.NumCols() != 4 {
		t.Fatalf("%dx%d", f.NumRows(), f.NumCols())
	}
	if f.ColumnByName("B").MustFloat(1) != 5500 {
		t.Fatal("AsFloat")
	}
	if f.ColumnByName("missing") != nil {
		t.Fatal("missing column should be nil")
	}
	if f.Column(0).AsString(0) != "R101" {
		t.Fatal("AsString")
	}
	if got := f.Names(); strings.Join(got, ",") != "A,B,N,F" {
		t.Fatalf("names %v", got)
	}
	if f.Schema()[1] != Float64 || f.Schema()[2] != Int64 {
		t.Fatal("schema")
	}
	if f.Column(3).MustFloat(0) != 1 || f.Column(3).MustFloat(1) != 0 {
		t.Fatal("bool as float")
	}
	if f.Column(2).MustFloat(2) != 3 {
		t.Fatal("int as float")
	}
}

func TestNAHandling(t *testing.T) {
	c := StringColumn("C", []string{"X", "", "Z"})
	if !c.IsNA(1) || c.IsNA(0) {
		t.Fatal("NA detection")
	}
	if c.AsString(1) != "" {
		t.Fatal("NA as string")
	}
	fc := &Column{Name: "v", Type: Float64, Floats: []float64{1, 2}, NA: []bool{false, true}}
	if !math.IsNaN(fc.MustFloat(1)) {
		t.Fatal("NA as float should be NaN")
	}
}

func TestStringColumnAsFloatErrors(t *testing.T) {
	if _, err := StringColumn("s", []string{"x"}).AsFloat(0); err == nil {
		t.Fatal("expected error coercing a string column to float")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustFloat should panic on a string column")
		}
	}()
	StringColumn("s", []string{"x"}).MustFloat(0)
}

func TestSliceRows(t *testing.T) {
	f := sample()
	s := f.SliceRows(1, 3)
	if s.NumRows() != 2 || s.Column(0).AsString(0) != "C7" {
		t.Fatal("SliceRows")
	}
	// Slices are copies.
	s.Column(1).Floats[0] = -1
	if f.Column(1).MustFloat(1) == -1 {
		t.Fatal("slice aliases parent")
	}
}

func TestRBind(t *testing.T) {
	a := sample()
	b := sample()
	r, err := RBind(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 6 || r.Column(0).AsString(3) != "R101" {
		t.Fatal("rbind content")
	}
	// Schema mismatch rejected.
	c := MustNew(FloatColumn("A", []float64{1}))
	if _, err := RBind(a, c); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestRBindNAPropagation(t *testing.T) {
	a := MustNew(StringColumn("C", []string{"X", ""}))
	b := MustNew(StringColumn("C", []string{"Z"}))
	r, err := RBind(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Column(0).IsNA(1) || r.Column(0).IsNA(2) {
		t.Fatal("NA flags lost in rbind")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := sample()
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 || got.NumCols() != 4 {
		t.Fatalf("round trip shape %dx%d", got.NumRows(), got.NumCols())
	}
	if got.Column(0).Type != String || got.Column(1).Type != Float64 ||
		got.Column(2).Type != Int64 || got.Column(3).Type != Boolean {
		t.Fatalf("type inference: %v", got.Schema())
	}
	if got.Column(1).MustFloat(2) != 1.5 {
		t.Fatal("float cell")
	}
}

func TestCSVTypeInferenceWithNAs(t *testing.T) {
	in := "A,B\nx,1\n,2\ny,\n"
	f, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Column(0).IsNA(1) || !f.Column(1).IsNA(2) {
		t.Fatal("NA from empty cells")
	}
	if f.Column(1).Type != Int64 {
		t.Fatal("int inference with NA")
	}
}

func TestCSVEmpty(t *testing.T) {
	f, err := ReadCSV(strings.NewReader(""))
	if err != nil || f.NumRows() != 0 {
		t.Fatal("empty csv")
	}
}

func TestValueTypeString(t *testing.T) {
	if Float64.String() != "FP64" || String.String() != "STRING" {
		t.Fatal("ValueType.String")
	}
}
