// Package frame implements heterogeneous data frames — the raw-data
// representation that federated workers read from files before feature
// transformation (ExDRa §4.4). A frame is a list of named, typed columns
// with per-cell NULL (NA) flags.
package frame

import (
	"fmt"
	"math"
)

// ValueType enumerates the supported column value types.
type ValueType int

// Supported column value types.
const (
	Float64 ValueType = iota
	Int64
	String
	Boolean
)

// String returns the schema name of the type.
func (t ValueType) String() string {
	switch t {
	case Float64:
		return "FP64"
	case Int64:
		return "INT64"
	case String:
		return "STRING"
	case Boolean:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("ValueType(%d)", int(t))
	}
}

// Column is a named, typed column with an NA mask. Exactly one of the typed
// slices is populated according to Type; NA[i] marks cell i as NULL.
type Column struct {
	Name    string
	Type    ValueType
	Floats  []float64
	Ints    []int64
	Strings []string
	Bools   []bool
	NA      []bool
}

// Len returns the number of cells in the column.
func (c *Column) Len() int {
	switch c.Type {
	case Float64:
		return len(c.Floats)
	case Int64:
		return len(c.Ints)
	case String:
		return len(c.Strings)
	case Boolean:
		return len(c.Bools)
	}
	return 0
}

// IsNA reports whether cell i is NULL.
func (c *Column) IsNA(i int) bool { return i < len(c.NA) && c.NA[i] }

// AsFloat returns cell i coerced to float64 (NaN for NA; bools as 0/1).
// String columns cannot be coerced and return an error: schema drift in a
// site's raw files must surface as an error response at the federated
// worker, not as a panic that kills the standing process.
func (c *Column) AsFloat(i int) (float64, error) {
	if c.IsNA(i) {
		return math.NaN(), nil
	}
	switch c.Type {
	case Float64:
		return c.Floats[i], nil
	case Int64:
		return float64(c.Ints[i]), nil
	case Boolean:
		if c.Bools[i] {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("frame: column %q of type %v cannot be read as float", c.Name, c.Type)
	}
}

// MustFloat is AsFloat panicking on non-coercible columns, for tests and
// code paths over already-validated schemas.
func (c *Column) MustFloat(i int) float64 {
	v, err := c.AsFloat(i)
	if err != nil {
		panic(err)
	}
	return v
}

// AsString returns cell i rendered as a string ("" for NA).
func (c *Column) AsString(i int) string {
	if c.IsNA(i) {
		return ""
	}
	switch c.Type {
	case Float64:
		return fmt.Sprintf("%g", c.Floats[i])
	case Int64:
		return fmt.Sprintf("%d", c.Ints[i])
	case String:
		return c.Strings[i]
	case Boolean:
		if c.Bools[i] {
			return "true"
		}
		return "false"
	}
	return ""
}

// Slice returns cells [beg, end) as a new column.
func (c *Column) Slice(beg, end int) *Column {
	out := &Column{Name: c.Name, Type: c.Type}
	switch c.Type {
	case Float64:
		out.Floats = append([]float64(nil), c.Floats[beg:end]...)
	case Int64:
		out.Ints = append([]int64(nil), c.Ints[beg:end]...)
	case String:
		out.Strings = append([]string(nil), c.Strings[beg:end]...)
	case Boolean:
		out.Bools = append([]bool(nil), c.Bools[beg:end]...)
	}
	if c.NA != nil {
		out.NA = append([]bool(nil), c.NA[beg:end]...)
	}
	return out
}

// Frame is an ordered collection of equally long columns.
type Frame struct {
	cols []*Column
}

// New builds a frame from columns, validating equal lengths and unique names.
func New(cols ...*Column) (*Frame, error) {
	seen := make(map[string]bool, len(cols))
	n := -1
	for _, c := range cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("frame: duplicate column name %q", c.Name)
		}
		seen[c.Name] = true
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return nil, fmt.Errorf("frame: column %q has %d rows, want %d", c.Name, c.Len(), n)
		}
	}
	return &Frame{cols: cols}, nil
}

// MustNew is New panicking on error, for literals in tests and examples.
func MustNew(cols ...*Column) *Frame {
	f, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return f
}

// NumRows returns the number of rows.
func (f *Frame) NumRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].Len()
}

// NumCols returns the number of columns.
func (f *Frame) NumCols() int { return len(f.cols) }

// Column returns column j.
func (f *Frame) Column(j int) *Column { return f.cols[j] }

// ColumnByName returns the column with the given name, or nil.
func (f *Frame) ColumnByName(name string) *Column {
	for _, c := range f.cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Names returns the column names in order.
func (f *Frame) Names() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name
	}
	return out
}

// Schema returns the column value types in order.
func (f *Frame) Schema() []ValueType {
	out := make([]ValueType, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Type
	}
	return out
}

// SliceRows returns rows [beg, end) as a new frame.
func (f *Frame) SliceRows(beg, end int) *Frame {
	cols := make([]*Column, len(f.cols))
	for i, c := range f.cols {
		cols[i] = c.Slice(beg, end)
	}
	return &Frame{cols: cols}
}

// RBind vertically concatenates frames with identical schemas (names and
// types, in order).
func RBind(fs ...*Frame) (*Frame, error) {
	if len(fs) == 0 {
		return &Frame{}, nil
	}
	first := fs[0]
	cols := make([]*Column, first.NumCols())
	for j := range cols {
		cols[j] = &Column{Name: first.cols[j].Name, Type: first.cols[j].Type}
	}
	for _, f := range fs {
		if f.NumCols() != len(cols) {
			return nil, fmt.Errorf("frame: rbind column count mismatch")
		}
		for j, c := range f.cols {
			if c.Name != cols[j].Name || c.Type != cols[j].Type {
				return nil, fmt.Errorf("frame: rbind schema mismatch at column %d", j)
			}
			appendColumn(cols[j], c)
		}
	}
	return New(cols...)
}

func appendColumn(dst, src *Column) {
	pre := dst.Len()
	switch src.Type {
	case Float64:
		dst.Floats = append(dst.Floats, src.Floats...)
	case Int64:
		dst.Ints = append(dst.Ints, src.Ints...)
	case String:
		dst.Strings = append(dst.Strings, src.Strings...)
	case Boolean:
		dst.Bools = append(dst.Bools, src.Bools...)
	}
	if src.NA != nil || dst.NA != nil {
		if dst.NA == nil {
			dst.NA = make([]bool, pre)
		}
		if src.NA != nil {
			dst.NA = append(dst.NA, src.NA...)
		} else {
			dst.NA = append(dst.NA, make([]bool, src.Len())...)
		}
	}
}

// FloatColumn builds a Float64 column.
func FloatColumn(name string, values []float64) *Column {
	return &Column{Name: name, Type: Float64, Floats: values}
}

// IntColumn builds an Int64 column.
func IntColumn(name string, values []int64) *Column {
	return &Column{Name: name, Type: Int64, Ints: values}
}

// StringColumn builds a String column; empty strings are marked NA.
func StringColumn(name string, values []string) *Column {
	na := make([]bool, len(values))
	any := false
	for i, v := range values {
		if v == "" {
			na[i] = true
			any = true
		}
	}
	c := &Column{Name: name, Type: String, Strings: values}
	if any {
		c.NA = na
	}
	return c
}

// BoolColumn builds a Boolean column.
func BoolColumn(name string, values []bool) *Column {
	return &Column{Name: name, Type: Boolean, Bools: values}
}
