package frame

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ReadCSV parses a CSV with a header row into a frame, detecting each
// column's type from its values (Int64 if all cells parse as integers,
// Float64 if all parse as numbers, Boolean for true/false, else String).
// Empty cells become NA.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("frame: csv parse: %w", err)
	}
	if len(records) == 0 {
		return &Frame{}, nil
	}
	header := records[0]
	rows := records[1:]
	cols := make([]*Column, len(header))
	for j, name := range header {
		raw := make([]string, len(rows))
		for i, rec := range rows {
			if j < len(rec) {
				raw[i] = rec[j]
			}
		}
		cols[j] = inferColumn(name, raw)
	}
	return New(cols...)
}

// ReadCSVFile parses a CSV file into a frame.
func ReadCSVFile(path string) (*Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

func inferColumn(name string, raw []string) *Column {
	isInt, isFloat, isBool := true, true, true
	for _, v := range raw {
		if v == "" {
			continue
		}
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			isFloat = false
		}
		if v != "true" && v != "false" {
			isBool = false
		}
	}
	na := make([]bool, len(raw))
	anyNA := false
	for i, v := range raw {
		if v == "" {
			na[i] = true
			anyNA = true
		}
	}
	switch {
	case isBool:
		vals := make([]bool, len(raw))
		for i, v := range raw {
			vals[i] = v == "true"
		}
		c := &Column{Name: name, Type: Boolean, Bools: vals}
		if anyNA {
			c.NA = na
		}
		return c
	case isInt:
		vals := make([]int64, len(raw))
		for i, v := range raw {
			if v != "" {
				vals[i], _ = strconv.ParseInt(v, 10, 64)
			}
		}
		c := &Column{Name: name, Type: Int64, Ints: vals}
		if anyNA {
			c.NA = na
		}
		return c
	case isFloat:
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if v != "" {
				vals[i], _ = strconv.ParseFloat(v, 64)
			}
		}
		c := &Column{Name: name, Type: Float64, Floats: vals}
		if anyNA {
			c.NA = na
		}
		return c
	default:
		c := &Column{Name: name, Type: String, Strings: raw}
		if anyNA {
			c.NA = na
		}
		return c
	}
}

// WriteCSV writes the frame with a header row; NA cells are written empty.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.Names()); err != nil {
		return err
	}
	rec := make([]string, f.NumCols())
	for i := 0; i < f.NumRows(); i++ {
		for j, c := range f.cols {
			rec[j] = c.AsString(i)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the frame to a CSV file.
func (f *Frame) WriteCSVFile(path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteCSV(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
