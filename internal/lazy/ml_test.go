package lazy_test

import (
	"testing"

	"exdra/internal/algo"
	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/lazy"
	"exdra/internal/privacy"
)

func TestL2SVMViaLazyAPI(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	x, y := data.Classification(31, 200, 8, 0.01)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's snippet shape: features.l2svm(labels).compute().
	model, err := lazy.Wrap(fx).L2SVM(y, algo.L2SVMConfig{MaxIterations: 15}).Compute()
	if err != nil {
		t.Fatal(err)
	}
	svm := model.(*algo.L2SVMResult)
	scores, err := svm.Predict(fx)
	if err != nil {
		t.Fatal(err)
	}
	if acc := algo.Accuracy(scores, y); acc < 0.9 {
		t.Fatalf("lazy L2SVM accuracy %g", acc)
	}

	// Training on a derived node (normalized features) also works: the
	// DAG evaluates first, then the algorithm runs federated.
	norm := lazy.Wrap(fx).ScalarOp(0, 1, false) // X + 1 (cheap derived node)
	if _, err := norm.LM(y, algo.LMConfig{MaxIterations: 5}).Compute(); err != nil {
		t.Fatal(err)
	}

	// Scalar nodes are rejected.
	if _, err := lazy.Wrap(fx).Sum().KMeans(algo.KMeansConfig{K: 2}).Compute(); err == nil {
		t.Fatal("training on scalar node accepted")
	}
}

func TestKMeansAndPCAViaLazyAPI(t *testing.T) {
	x, _ := data.Blobs(32, 150, 5, 3, 0.5)
	model, err := lazy.Wrap(x).KMeans(algo.KMeansConfig{K: 3, MaxIterations: 10, Seed: 2}).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if model.(*algo.KMeansResult).Centroids.Rows() != 3 {
		t.Fatal("kmeans centroids")
	}
	pm, err := lazy.Wrap(x).PCA(algo.PCAConfig{K: 2}).Compute()
	if err != nil {
		t.Fatal(err)
	}
	if pm.(*algo.PCAResult).Components.Cols() != 2 {
		t.Fatal("pca components")
	}
}
