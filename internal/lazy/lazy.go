// Package lazy implements the lazy-evaluation API of ExDRa §3.2 — the Go
// analogue of SystemDS' new Python API: operations over (federated or
// local) matrices are collected into a DAG; Compute triggers a depth-first
// traversal that orders operations by data dependencies, generates a
// DML-like script, executes it through the engine dispatch layer, and
// returns the result.
package lazy

import (
	"fmt"
	"strings"

	"exdra/internal/engine"
	"exdra/internal/matrix"
)

// kind discriminates node evaluation.
type kind int

const (
	kLeaf kind = iota
	kConst
	kMatMul
	kTMatMul
	kTranspose
	kBinary
	kScalarOp
	kUnary
	kAgg
	kRowAgg
	kColAgg
)

// Node is one vertex of the operation DAG.
type Node struct {
	kind   kind
	op     string
	inputs []*Node

	leaf   engine.Mat // source data for leaf nodes
	scalar float64    // constant for scalar-operand ops

	aggOp matrix.AggOp
	binOp matrix.BinaryOp
	unOp  matrix.UnaryOp
	swap  bool

	// Evaluation caches (filled by Compute; a DAG node evaluates once even
	// when referenced by several consumers).
	done      bool
	matVal    engine.Mat
	scalarVal float64
	isScalar  bool
}

// Wrap lifts a local or federated matrix into the DAG.
func Wrap(m engine.Mat) *Node { return &Node{kind: kLeaf, op: "leaf", leaf: m} }

// Const lifts a scalar constant into the DAG.
func Const(v float64) *Node { return &Node{kind: kConst, op: "const", scalar: v, isScalar: true} }

// MatMul appends n %*% o.
func (n *Node) MatMul(o *Node) *Node {
	return &Node{kind: kMatMul, op: "%*%", inputs: []*Node{n, o}}
}

// TMatMul appends t(n) %*% o.
func (n *Node) TMatMul(o *Node) *Node {
	return &Node{kind: kTMatMul, op: "t%*%", inputs: []*Node{n, o}}
}

// Transpose appends t(n).
func (n *Node) Transpose() *Node { return &Node{kind: kTranspose, op: "t", inputs: []*Node{n}} }

// Binary appends an element-wise binary operation.
func (n *Node) Binary(op matrix.BinaryOp, o *Node) *Node {
	return &Node{kind: kBinary, op: op.String(), binOp: op, inputs: []*Node{n, o}}
}

// Add appends n + o.
func (n *Node) Add(o *Node) *Node { return n.Binary(matrix.OpAdd, o) }

// Sub appends n - o.
func (n *Node) Sub(o *Node) *Node { return n.Binary(matrix.OpSub, o) }

// Mul appends n * o (element-wise).
func (n *Node) Mul(o *Node) *Node { return n.Binary(matrix.OpMul, o) }

// Div appends n / o (element-wise).
func (n *Node) Div(o *Node) *Node { return n.Binary(matrix.OpDiv, o) }

// ScalarOp appends an element-wise operation against a constant; swap makes
// the constant the left operand.
func (n *Node) ScalarOp(op matrix.BinaryOp, v float64, swap bool) *Node {
	return &Node{kind: kScalarOp, op: op.String(), binOp: op, scalar: v, swap: swap, inputs: []*Node{n}}
}

// Scale appends n * v.
func (n *Node) Scale(v float64) *Node { return n.ScalarOp(matrix.OpMul, v, false) }

// Unary appends an element-wise unary operation.
func (n *Node) Unary(op matrix.UnaryOp) *Node {
	return &Node{kind: kUnary, op: op.String(), unOp: op, inputs: []*Node{n}}
}

// Sigmoid appends sigmoid(n).
func (n *Node) Sigmoid() *Node { return n.Unary(matrix.USigmoid) }

// Exp appends exp(n).
func (n *Node) Exp() *Node { return n.Unary(matrix.UExp) }

// Agg appends a full aggregation, producing a scalar node.
func (n *Node) Agg(op matrix.AggOp) *Node {
	return &Node{kind: kAgg, op: op.String(), aggOp: op, inputs: []*Node{n}, isScalar: true}
}

// Sum appends sum(n).
func (n *Node) Sum() *Node { return n.Agg(matrix.AggSum) }

// Mean appends mean(n).
func (n *Node) Mean() *Node { return n.Agg(matrix.AggMean) }

// RowAgg appends a per-row aggregation (rowSums, rowMins, ...).
func (n *Node) RowAgg(op matrix.AggOp) *Node {
	return &Node{kind: kRowAgg, op: "row" + op.String(), aggOp: op, inputs: []*Node{n}}
}

// RowSums appends rowSums(n).
func (n *Node) RowSums() *Node { return n.RowAgg(matrix.AggSum) }

// ColAgg appends a per-column aggregation.
func (n *Node) ColAgg(op matrix.AggOp) *Node {
	return &Node{kind: kColAgg, op: "col" + op.String(), aggOp: op, inputs: []*Node{n}}
}

// ColSums appends colSums(n).
func (n *Node) ColSums() *Node { return n.ColAgg(matrix.AggSum) }

// eval computes the node depth-first with memoization.
func (n *Node) eval() {
	if n.done {
		return
	}
	for _, in := range n.inputs {
		in.eval()
	}
	switch n.kind {
	case kLeaf:
		n.matVal = n.leaf
	case kConst:
		n.scalarVal = n.scalar
	case kMatMul:
		n.matVal = engine.MatMul(n.inputs[0].matVal, n.inputs[1].matVal)
	case kTMatMul:
		n.matVal = engine.TMatMul(n.inputs[0].matVal, n.inputs[1].matVal)
	case kTranspose:
		n.matVal = engine.Transpose(n.inputs[0].matVal)
	case kBinary:
		a, b := n.inputs[0], n.inputs[1]
		switch {
		case a.isScalar && b.isScalar:
			engine.Failf("lazy: scalar-scalar %s unsupported", n.op)
		case a.isScalar:
			n.matVal = engine.BinaryScalar(n.binOp, b.matVal, a.scalarVal, true)
		case b.isScalar:
			n.matVal = engine.BinaryScalar(n.binOp, a.matVal, b.scalarVal, false)
		default:
			n.matVal = engine.Binary(n.binOp, a.matVal, b.matVal)
		}
	case kScalarOp:
		n.matVal = engine.BinaryScalar(n.binOp, n.inputs[0].matVal, n.scalar, n.swap)
	case kRowAgg:
		n.matVal = engine.RowAgg(n.aggOp, n.inputs[0].matVal)
	case kColAgg:
		n.matVal = engine.ColAgg(n.aggOp, n.inputs[0].matVal)
	case kAgg:
		n.scalarVal = engine.Agg(n.aggOp, n.inputs[0].matVal)
	case kUnary:
		n.matVal = engine.Unary(n.unOp, n.inputs[0].matVal)
	}
	n.done = true
}

// Compute evaluates the DAG up to this node and returns the local matrix
// result (consolidating federated outputs, as the Python API returns NumPy
// arrays).
func (n *Node) Compute() (out *matrix.Dense, err error) {
	defer engine.Guard(&err)
	n.eval()
	if n.isScalar {
		return matrix.Fill(1, 1, n.scalarVal), nil
	}
	return engine.Local(n.matVal), nil
}

// ComputeScalar evaluates a scalar node.
func (n *Node) ComputeScalar() (v float64, err error) {
	defer engine.Guard(&err)
	if !n.isScalar {
		return 0, fmt.Errorf("lazy: node %q is not scalar", n.op)
	}
	n.eval()
	return n.scalarVal, nil
}

// Script renders the DAG as a DML-like script via depth-first traversal,
// assigning temporaries in data-dependency order (what the Python API
// generates before execution).
func (n *Node) Script() string {
	var b strings.Builder
	names := map[*Node]string{}
	next := 0
	var visit func(*Node) string
	visit = func(v *Node) string {
		if name, ok := names[v]; ok {
			return name
		}
		args := make([]string, len(v.inputs))
		for i, in := range v.inputs {
			args[i] = visit(in)
		}
		next++
		name := fmt.Sprintf("t%d", next)
		names[v] = name
		switch v.op {
		case "leaf":
			fmt.Fprintf(&b, "%s = read(input_%d);  # %dx%d\n", name, next, v.leaf.Rows(), v.leaf.Cols())
		case "const":
			fmt.Fprintf(&b, "%s = %g;\n", name, v.scalar)
		case "%*%":
			fmt.Fprintf(&b, "%s = %s %%*%% %s;\n", name, args[0], args[1])
		case "t%*%":
			fmt.Fprintf(&b, "%s = t(%s) %%*%% %s;\n", name, args[0], args[1])
		case "t":
			fmt.Fprintf(&b, "%s = t(%s);\n", name, args[0])
		default:
			switch v.kind {
			case kBinary:
				fmt.Fprintf(&b, "%s = %s %s %s;\n", name, args[0], v.op, args[1])
			case kScalarOp:
				if v.swap {
					fmt.Fprintf(&b, "%s = %g %s %s;\n", name, v.scalar, v.binOp, args[0])
				} else {
					fmt.Fprintf(&b, "%s = %s %s %g;\n", name, args[0], v.binOp, v.scalar)
				}
			default:
				fmt.Fprintf(&b, "%s = %s(%s);\n", name, v.op, strings.Join(args, ", "))
			}
		}
		return name
	}
	root := visit(n)
	fmt.Fprintf(&b, "write(%s);\n", root)
	return b.String()
}
