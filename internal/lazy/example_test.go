package lazy_test

import (
	"fmt"

	"exdra/internal/lazy"
	"exdra/internal/matrix"
)

// ExampleNode_Compute shows the lazy DAG API of §3.2: operations collect
// into a DAG and execute on Compute.
func ExampleNode_Compute() {
	x := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	v := matrix.ColVector([]float64{1, 1})
	total, err := lazy.Wrap(x).MatMul(lazy.Wrap(v)).Scale(10).Sum().ComputeScalar()
	if err != nil {
		panic(err)
	}
	fmt.Println(total)
	// Output: 100
}

// ExampleNode_Script shows the generated DML-like script of a DAG — the
// depth-first, data-dependency-ordered traversal the Python API performs.
func ExampleNode_Script() {
	x := matrix.FromRows([][]float64{{1, 2}})
	node := lazy.Wrap(x).Scale(2).Sum()
	fmt.Print(node.Script())
	// Output:
	// t1 = read(input_1);  # 1x2
	// t2 = t1 * 2;
	// t3 = sum(t2);
	// write(t3);
}
