package lazy

import (
	"fmt"

	"exdra/internal/algo"
	"exdra/internal/engine"
	"exdra/internal/matrix"
)

// Higher-level built-in functions on lazy nodes, mirroring the paper's §3.2
// Python API snippet:
//
//	features = Federated(sds, [node1,node2], ([...],[...]))
//	model = features.l2svm(labels).compute()
//
// The algorithm runs when Compute is called, against whatever backend the
// node's data lives on.

// ModelNode defers an ML training invocation until Compute.
type ModelNode struct {
	features *Node
	train    func(x engine.Mat) (any, error)
}

// Compute evaluates the feature DAG and trains the model.
func (m *ModelNode) Compute() (model any, err error) {
	defer engine.Guard(&err)
	m.features.eval()
	if m.features.isScalar {
		return nil, fmt.Errorf("lazy: cannot train on a scalar node")
	}
	return m.train(m.features.matVal)
}

// L2SVM defers L2-regularized SVM training on this node's features with
// labels held at the coordinator.
func (n *Node) L2SVM(labels *matrix.Dense, cfg algo.L2SVMConfig) *ModelNode {
	return &ModelNode{features: n, train: func(x engine.Mat) (any, error) {
		return algo.L2SVM(x, labels, cfg)
	}}
}

// LM defers conjugate-gradient linear regression.
func (n *Node) LM(labels *matrix.Dense, cfg algo.LMConfig) *ModelNode {
	return &ModelNode{features: n, train: func(x engine.Mat) (any, error) {
		return algo.LM(x, labels, cfg)
	}}
}

// KMeans defers K-Means clustering.
func (n *Node) KMeans(cfg algo.KMeansConfig) *ModelNode {
	return &ModelNode{features: n, train: func(x engine.Mat) (any, error) {
		return algo.KMeans(x, cfg)
	}}
}

// PCA defers principal component analysis; the returned model is the
// *algo.PCAResult (the projection is recomputable via Transform).
func (n *Node) PCA(cfg algo.PCAConfig) *ModelNode {
	return &ModelNode{features: n, train: func(x engine.Mat) (any, error) {
		res, _, err := algo.PCA(x, cfg)
		return res, err
	}}
}
