package lazy_test

import (
	"math"
	"strings"
	"testing"

	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/lazy"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

func TestComputeLocalDAG(t *testing.T) {
	x := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	v := matrix.ColVector([]float64{1, 1})
	// (X %*% v) * 2 + rowSums(X)
	node := lazy.Wrap(x).MatMul(lazy.Wrap(v)).Scale(2).Add(lazy.Wrap(x).RowSums())
	got, err := node.Compute()
	if err != nil {
		t.Fatal(err)
	}
	want := x.MatMul(v).Scale(2).Add(x.RowSums())
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("lazy compute: %v", got)
	}
}

func TestComputeScalarAndSharedSubDAG(t *testing.T) {
	x := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	shared := lazy.Wrap(x).Scale(3)
	total := shared.Sum()
	v, err := total.ComputeScalar()
	if err != nil {
		t.Fatal(err)
	}
	if v != 30 {
		t.Fatalf("sum = %g", v)
	}
	// Reusing the shared node must not re-evaluate incorrectly.
	again := shared.Mean()
	m, err := again.ComputeScalar()
	if err != nil {
		t.Fatal(err)
	}
	if m != 7.5 {
		t.Fatalf("mean = %g", m)
	}
	if _, err := shared.ComputeScalar(); err == nil {
		t.Fatal("matrix node computed as scalar")
	}
}

func TestLazyOverFederatedData(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	x := matrix.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	v := matrix.ColVector([]float64{1, -1})
	// The l2svm-flavoured snippet of §3.2: an aggregate over federated data.
	node := lazy.Wrap(fx).MatMul(lazy.Wrap(v)).Sigmoid().Sum()
	got, err := node.ComputeScalar()
	if err != nil {
		t.Fatal(err)
	}
	want := x.MatMul(v).Sigmoid().Sum()
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("federated lazy sum %g want %g", got, want)
	}
}

func TestScriptGeneration(t *testing.T) {
	x := matrix.FromRows([][]float64{{1, 2}})
	v := matrix.ColVector([]float64{1, 1})
	node := lazy.Wrap(x).MatMul(lazy.Wrap(v)).Scale(2).Sum()
	script := node.Script()
	for _, want := range []string{"read(input_", "%*%", "* 2", "sum(", "write("} {
		if !strings.Contains(script, want) {
			t.Fatalf("script missing %q:\n%s", want, script)
		}
	}
	// Data-dependency order: the matmul line must precede the sum line.
	if strings.Index(script, "%*%") > strings.Index(script, "sum(") {
		t.Fatalf("script out of order:\n%s", script)
	}
	// Shared sub-DAGs are emitted once.
	shared := lazy.Wrap(x).Scale(3)
	two := shared.Add(shared)
	if strings.Count(two.Script(), "* 3") != 1 {
		t.Fatalf("shared subexpression duplicated:\n%s", two.Script())
	}
}

func TestScalarConstOperand(t *testing.T) {
	x := matrix.FromRows([][]float64{{2, 4}})
	// 8 / X via a Const left operand.
	node := lazy.Const(8).Div(lazy.Wrap(x))
	got, err := node.Compute()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(matrix.RowVector([]float64{4, 2}), 0) {
		t.Fatalf("const/matrix: %v", got)
	}
}
