package lineage

import (
	"errors"
	"testing"
)

func TestTraceCanonicalForm(t *testing.T) {
	a := LiteralTrace("file", "/data/x.bin")
	b := Item{Op: "tsmm", Inputs: []string{a}}.Trace()
	if b != "tsmm(file#/data/x.bin)" {
		t.Fatalf("trace %q", b)
	}
	c := Item{Op: "+", Inputs: []string{b, b}}.Trace()
	if c != "+(tsmm(file#/data/x.bin),tsmm(file#/data/x.bin))" {
		t.Fatalf("nested trace %q", c)
	}
	// Equal computations yield equal traces; different ones differ.
	plus := Item{Op: "+", Inputs: []string{a}}.Trace()
	minus := Item{Op: "-", Inputs: []string{a}}.Trace()
	if plus == minus {
		t.Fatal("distinct ops collide")
	}
}

func TestCacheHitMissAndLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatal("get a")
	}
	c.Put("c", 3) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestGetOrCompute(t *testing.T) {
	c := NewCache(4)
	calls := 0
	compute := func() (any, error) {
		calls++
		return 42, nil
	}
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCompute("k", compute)
		if err != nil || v.(int) != 42 {
			t.Fatal("GetOrCompute")
		}
	}
	if calls != 1 {
		t.Fatalf("computed %d times", calls)
	}
	// Errors are not cached.
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if _, err := c.GetOrCompute("bad", func() (any, error) { return nil, boom }); err != boom {
			t.Fatal("error not propagated")
		}
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("a", 2)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatal("update")
	}
	if c.Len() != 1 {
		t.Fatal("duplicate entries")
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := NewCache(0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache stored")
	}
}

func TestReset(t *testing.T) {
	c := NewCache(4)
	c.Put("a", 1)
	c.Get("a")
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("stats not reset")
	}
}
