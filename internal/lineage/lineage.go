// Package lineage implements fine-grained lineage tracing and reuse of
// intermediates in the spirit of the LIMA framework integrated into ExDRa
// (§4.4, "Lineage-based Reuse"). Operations are described by lineage items
// (op, inputs); a bounded cache memoizes results keyed by the canonical
// trace string, enabling reuse across repeated pipeline runs — e.g. the
// deserialized recode maps of federated transformencode.
package lineage

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
)

// Item describes one operation for lineage tracing.
type Item struct {
	Op     string
	Inputs []string
}

// Trace returns the canonical trace string of the item, usable as a cache
// key. Input traces are embedded, so equal traces imply equal computations.
func (it Item) Trace() string {
	var b strings.Builder
	b.WriteString(it.Op)
	b.WriteByte('(')
	for i, in := range it.Inputs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(in)
	}
	b.WriteByte(')')
	return b.String()
}

// LiteralTrace returns the trace of a leaf value (e.g. a file or a
// broadcast), distinguished by kind and identity.
func LiteralTrace(kind string, id any) string {
	return fmt.Sprintf("%s#%v", kind, id)
}

// Cache is a thread-safe LRU cache of lineage-traced intermediates.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // guarded by mu
	order   *list.List               // front = most recently used; guarded by mu

	hits, misses int64 // guarded by mu
}

type cacheEntry struct {
	key   string
	value any
}

// NewCache returns a cache retaining up to capacity entries (LRU eviction).
// capacity <= 0 disables caching (every Get misses).
func NewCache(capacity int) *Cache {
	return &Cache{cap: capacity, entries: map[string]*list.Element{}, order: list.New()}
}

// Get looks up a trace, marking it most recently used.
func (c *Cache) Get(trace string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[trace]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).value, true
	}
	c.misses++
	return nil, false
}

// Put stores a value under a trace, evicting the least recently used entry
// when over capacity.
func (c *Cache) Put(trace string, value any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[trace]; ok {
		el.Value.(*cacheEntry).value = value
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: trace, value: value})
	c.entries[trace] = el
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// GetOrCompute returns the cached value for trace or computes, stores, and
// returns it.
func (c *Cache) GetOrCompute(trace string, compute func() (any, error)) (any, error) {
	if v, ok := c.Get(trace); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return nil, err
	}
	c.Put(trace, v)
	return v, nil
}

// Stats returns hit and miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Reset clears all entries and counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.order.Init()
	c.hits, c.misses = 0, 0
}
