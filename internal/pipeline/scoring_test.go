package pipeline_test

import (
	"bytes"
	"testing"

	"exdra/internal/data"
	"exdra/internal/nes"
	"exdra/internal/nn"
	"exdra/internal/paramserv"
	"exdra/internal/pipeline"
)

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	x, y := data.MultiClass(41, 300, 8, 3)
	res, err := paramserv.TrainLocal(paramserv.Config{
		Spec:      nn.FFNSpec(8, 16, 3, nn.LossSoftmaxCE),
		Optimizer: nn.OptimizerConfig{Kind: "nesterov", LR: 0.05, Mu: 0.9},
		Epochs:    6, BatchSize: 32, Seed: 1,
	}, x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Network.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Forward(x).EqualApprox(res.Network.Forward(x), 1e-12) {
		t.Fatal("loaded network predicts differently")
	}
	// File round trip.
	path := t.TempDir() + "/model.bin"
	if err := res.Network.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fromFile, err := nn.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Accuracy(x, y) != res.Network.Accuracy(x, y) {
		t.Fatal("file round trip")
	}
	if _, err := nn.Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk model accepted")
	}
}

func TestDeployedScoringPipeline(t *testing.T) {
	// Train a classifier, deploy it into a NES continuous query, and
	// verify the stream carries per-tuple predictions plus alerts.
	x, y := data.MultiClass(42, 400, 6, 2)
	res, err := paramserv.TrainLocal(paramserv.Config{
		Spec:      nn.FFNSpec(6, 16, 2, nn.LossSoftmaxCE),
		Optimizer: nn.OptimizerConfig{Kind: "nesterov", LR: 0.05, Mu: 0.9},
		Epochs:    8, BatchSize: 32, Seed: 2,
	}, x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Network.Accuracy(x, y); acc < 0.9 {
		t.Fatalf("model too weak for the scoring test: %g", acc)
	}

	in := nes.NewInstance([]*nes.Node{{ID: "edge", Capacity: 8}})
	scored, err := nes.NewFileSink("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	alerts, err := nes.NewFileSink("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	in.RegisterSink("scored", scored)
	in.RegisterSink("alerts", alerts)
	in.RegisterSource("live", func() nes.Source { return nes.NewMatrixSource(x) })

	if _, err := in.Deploy(&nes.Query{
		Name: "score", Source: "live",
		Ops:      []nes.Op{pipeline.ScoringOp(res.Network)},
		SinkName: "scored",
	}); err != nil {
		t.Fatal(err)
	}
	snap := scored.Snapshot()
	if snap.Cols() != 7 {
		t.Fatalf("scored tuples have %d channels, want 7", snap.Cols())
	}
	// Stream predictions match batch predictions.
	batch := res.Network.Predict(x)
	agree := 0
	for i := 0; i < snap.Rows(); i++ {
		if snap.At(i, 6) == batch.At(i, 0) {
			agree++
		}
	}
	if agree != snap.Rows() {
		t.Fatalf("stream/batch prediction mismatch: %d/%d", agree, snap.Rows())
	}

	// Alerting keeps only class-2 predictions.
	if _, err := in.Deploy(&nes.Query{
		Name: "alert", Source: "live",
		Ops:      []nes.Op{pipeline.ScoringOp(res.Network), pipeline.AlertOp(2)},
		SinkName: "alerts",
	}); err != nil {
		t.Fatal(err)
	}
	asnap := alerts.Snapshot()
	if asnap.Rows() == 0 || asnap.Rows() >= snap.Rows() {
		t.Fatalf("alert count %d of %d", asnap.Rows(), snap.Rows())
	}
	for i := 0; i < asnap.Rows(); i++ {
		if asnap.At(i, 6) < 2 {
			t.Fatal("alert below threshold passed the filter")
		}
	}
}
