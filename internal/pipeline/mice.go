package pipeline

import (
	"fmt"
	"math"

	"exdra/internal/algo"
	"exdra/internal/frame"
	"exdra/internal/matrix"
	"exdra/internal/transform"
)

// MICE-style imputation (multivariate imputation by chained equations,
// §4.4 Example 4): each incomplete column is imputed by a model trained on
// the remaining features — classification (MLogReg) for categorical
// columns, regression (LM) for numeric ones — cycling over the columns for
// a configured number of rounds. This model-based imputer runs on local
// frames (e.g. per-site, or on consolidation-permitted data); the
// aggregate-only federated imputers are ImputeMode/ImputeFD.

// MICEConfig configures chained-equation imputation.
type MICEConfig struct {
	// Columns to impute, in chaining order.
	Columns []string
	// Rounds of chained passes (default 1).
	Rounds int
	// Spec describes how the *other* columns encode into model features.
	Spec transform.Spec
}

// ImputeMICE returns a copy of the frame with NULLs (categorical) and NaNs
// (numeric) of the configured columns replaced by model predictions.
func ImputeMICE(fr *frame.Frame, cfg MICEConfig) (*frame.Frame, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	cur := fr
	for round := 0; round < cfg.Rounds; round++ {
		for _, col := range cfg.Columns {
			next, err := imputeOne(cur, col, cfg.Spec)
			if err != nil {
				return nil, err
			}
			cur = next
		}
	}
	return cur, nil
}

func imputeOne(fr *frame.Frame, col string, spec transform.Spec) (*frame.Frame, error) {
	target := fr.ColumnByName(col)
	if target == nil {
		return nil, fmt.Errorf("pipeline: no column %q", col)
	}
	missing, complete := missingRows(target)
	if len(missing) == 0 {
		return fr, nil
	}
	if len(complete) < 2 {
		return nil, fmt.Errorf("pipeline: column %q has too few complete rows", col)
	}

	// Features: every other column, encoded under a spec that excludes the
	// target. NULLs elsewhere encode to all-zero blocks and are usable.
	featFrame, err := dropColumn(fr, col)
	if err != nil {
		return nil, err
	}
	featSpec := transform.Spec{}
	for _, cs := range spec.Columns {
		if cs.Name != col {
			featSpec.Columns = append(featSpec.Columns, cs)
		}
	}
	x, _, err := transform.Encode(featFrame, featSpec)
	if err != nil {
		return nil, err
	}
	// Other still-incomplete columns contribute NaN cells; neutralize them
	// so they cannot poison the imputation model (chained rounds refine
	// them once those columns are imputed).
	x = x.Replace(math.NaN(), 0)
	xTrain := x.SelectRows(complete)
	xMiss := x.SelectRows(missing)

	switch target.Type {
	case frame.String:
		// Classification: codes of the complete rows.
		codes, keys, err := recodeColumn(target, complete)
		if err != nil {
			return nil, err
		}
		model, err := algo.MLogReg(xTrain, codes, algo.MLogRegConfig{
			Classes: len(keys), MaxOuterIter: 5, MaxInnerIter: 5})
		if err != nil {
			return nil, err
		}
		pred, err := model.Predict(xMiss)
		if err != nil {
			return nil, err
		}
		fills := make([]string, len(missing))
		for i := range missing {
			c := int(pred.At(i, 0))
			if c >= 1 && c <= len(keys) {
				fills[i] = keys[c-1]
			}
		}
		return fillCategorical(fr, col, missing, fills)
	case frame.Float64:
		y := matrix.NewDense(len(complete), 1)
		for i, r := range complete {
			v, err := target.AsFloat(r)
			if err != nil {
				return nil, err
			}
			y.Set(i, 0, v)
		}
		model, err := algo.LM(xTrain, y, algo.LMConfig{})
		if err != nil {
			return nil, err
		}
		pred, err := model.Predict(xMiss)
		if err != nil {
			return nil, err
		}
		return fillNumeric(fr, col, missing, pred)
	default:
		return nil, fmt.Errorf("pipeline: MICE does not support column type %v", target.Type)
	}
}

// missingRows partitions row indices into missing and complete for a
// column (NA flags for strings, NA or NaN for numerics).
func missingRows(c *frame.Column) (missing, complete []int) {
	for i := 0; i < c.Len(); i++ {
		isMissing := c.IsNA(i)
		if !isMissing && c.Type == frame.Float64 && math.IsNaN(c.Floats[i]) {
			isMissing = true
		}
		if isMissing {
			missing = append(missing, i)
		} else {
			complete = append(complete, i)
		}
	}
	return missing, complete
}

func dropColumn(fr *frame.Frame, col string) (*frame.Frame, error) {
	cols := make([]*frame.Column, 0, fr.NumCols()-1)
	for j := 0; j < fr.NumCols(); j++ {
		if fr.Column(j).Name != col {
			cols = append(cols, fr.Column(j))
		}
	}
	return frame.New(cols...)
}

// recodeColumn assigns contiguous codes to the complete rows' categories.
func recodeColumn(c *frame.Column, complete []int) (*matrix.Dense, []string, error) {
	tmp := frame.MustNew(&frame.Column{Name: c.Name, Type: frame.String,
		Strings: selectStrings(c, complete)})
	pm, err := transform.BuildPartial(tmp, transform.Spec{Columns: []transform.ColumnSpec{
		{Name: c.Name, Method: transform.Recode}}})
	if err != nil {
		return nil, nil, err
	}
	meta := transform.Merge(transform.Spec{Columns: []transform.ColumnSpec{
		{Name: c.Name, Method: transform.Recode}}}, []string{c.Name}, pm)
	keys := meta.RecodeKeys[c.Name]
	codes := matrix.NewDense(len(complete), 1)
	for i, r := range complete {
		codes.Set(i, 0, float64(meta.RecodeMaps[c.Name][c.AsString(r)]))
	}
	return codes, keys, nil
}

func selectStrings(c *frame.Column, idx []int) []string {
	out := make([]string, len(idx))
	for i, r := range idx {
		out[i] = c.AsString(r)
	}
	return out
}

func fillCategorical(fr *frame.Frame, col string, rows []int, fills []string) (*frame.Frame, error) {
	cols := make([]*frame.Column, fr.NumCols())
	for j := 0; j < fr.NumCols(); j++ {
		c := fr.Column(j)
		if c.Name != col {
			cols[j] = c
			continue
		}
		vals := make([]string, c.Len())
		for i := 0; i < c.Len(); i++ {
			if !c.IsNA(i) {
				vals[i] = c.AsString(i)
			}
		}
		for i, r := range rows {
			vals[r] = fills[i]
		}
		cols[j] = frame.StringColumn(col, vals)
	}
	return frame.New(cols...)
}

func fillNumeric(fr *frame.Frame, col string, rows []int, pred *matrix.Dense) (*frame.Frame, error) {
	cols := make([]*frame.Column, fr.NumCols())
	for j := 0; j < fr.NumCols(); j++ {
		c := fr.Column(j)
		if c.Name != col {
			cols[j] = c
			continue
		}
		vals := append([]float64(nil), c.Floats...)
		for i, r := range rows {
			vals[r] = pred.At(i, 0)
		}
		cols[j] = frame.FloatColumn(col, vals)
	}
	return frame.New(cols...)
}
