package pipeline_test

import (
	"math"
	"testing"

	"exdra/internal/data"
	"exdra/internal/expdb"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/matrix"
	"exdra/internal/nes"
	"exdra/internal/pipeline"
	"exdra/internal/privacy"
)

func TestSplitTarget(t *testing.T) {
	full := data.PaperProduction(data.PaperProductionConfig{Rows: 50, ContinuousCols: 3, Seed: 1})
	fr, y, err := pipeline.SplitTarget(full, "zstrength")
	if err != nil {
		t.Fatal(err)
	}
	if fr.NumCols() != full.NumCols()-1 || y.Rows() != 50 {
		t.Fatal("split target shape")
	}
	if fr.ColumnByName("zstrength") != nil {
		t.Fatal("target still present")
	}
	if _, _, err := pipeline.SplitTarget(full, "missing"); err == nil {
		t.Fatal("missing target accepted")
	}
}

func TestP2LocalLM(t *testing.T) {
	full := data.PaperProduction(data.PaperProductionConfig{
		Rows: 800, ContinuousCols: 10, RecipeCategories: 20, NullRate: 0.02, Seed: 3})
	fr, y, err := pipeline.SplitTarget(full, "zstrength")
	if err != nil {
		t.Fatal(err)
	}
	store, _ := expdb.Open("")
	res, err := pipeline.RunP2Local(fr, y, pipeline.P2Config{
		Spec: data.PaperProductionSpec(), TrainAlgo: "lm", Track: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.R2 < 0.8 {
		t.Fatalf("P2_LM test R2 = %g", res.R2)
	}
	if res.TrainRows+res.TestRows != 800 {
		t.Fatal("split row count")
	}
	if math.Abs(float64(res.TrainRows)-0.7*800) > 2 {
		t.Fatalf("train fraction: %d", res.TrainRows)
	}
	if store.Len() != 1 || res.RunID == "" {
		t.Fatal("run not tracked")
	}
	run, _ := store.Get(res.RunID)
	if run.Metrics["r2"] != res.R2 || run.Steps[0].Type != expdb.Transformer {
		t.Fatal("tracked run content")
	}
}

func TestP2FederatedMatchesLocal(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	full := data.PaperProduction(data.PaperProductionConfig{
		Rows: 600, ContinuousCols: 8, RecipeCategories: 15, NullRate: 0.02, Seed: 4})
	fr, y, err := pipeline.SplitTarget(full, "zstrength")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.P2Config{Spec: data.PaperProductionSpec(), TrainAlgo: "lm"}
	local, err := pipeline.RunP2Local(fr, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := federated.DistributeFrame(cl.Coord, fr, cl.Addrs, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := pipeline.RunP2Federated(ff, y, fr.Names(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fed.Features != local.Features {
		t.Fatalf("encoded width local %d fed %d", local.Features, fed.Features)
	}
	// The federated split draws per-partition prefixes rather than the
	// single global prefix of the local path, so R2 differs slightly; both
	// must hit the same quality band.
	if fed.R2 < 0.8 {
		t.Fatalf("P2 federated R2 = %g (local %g)", fed.R2, local.R2)
	}
}

func TestP2FederatedFFN(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	full := data.PaperProduction(data.PaperProductionConfig{
		Rows: 400, ContinuousCols: 6, RecipeCategories: 10, Seed: 5})
	fr, y, err := pipeline.SplitTarget(full, "zstrength")
	if err != nil {
		t.Fatal(err)
	}
	ff, err := federated.DistributeFrame(cl.Coord, fr, cl.Addrs, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.RunP2Federated(ff, y, fr.Names(), pipeline.P2Config{
		Spec: data.PaperProductionSpec(), TrainAlgo: "ffn",
		FFNHidden: 16, FFNEpochs: 10, FFNBatch: 32, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.R2 < 0.4 {
		t.Fatalf("P2_FFN federated R2 = %g", res.R2)
	}
}

func TestP2UnknownAlgo(t *testing.T) {
	full := data.PaperProduction(data.PaperProductionConfig{Rows: 60, ContinuousCols: 3, Seed: 7})
	fr, y, err := pipeline.SplitTarget(full, "zstrength")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.RunP2Local(fr, y, pipeline.P2Config{
		Spec: data.PaperProductionSpec(), TrainAlgo: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestFertilizerAnomalyPipeline(t *testing.T) {
	// Two sites, each with its own NES instance feeding a file sink.
	var sinks []*nes.FileSink
	var siteData []nesData
	for site := 0; site < 2; site++ {
		x, truth := data.FertilizerSensors(int64(10+site), 600, 0.01)
		in := nes.NewInstance([]*nes.Node{{ID: "edge", Capacity: 8}})
		sink, err := nes.NewFileSink("", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		in.RegisterSink("mill", sink)
		in.RegisterSource("sensors", func() nes.Source { return nes.NewMatrixSource(x) })
		if _, err := in.Deploy(&nes.Query{Name: "acquire", Source: "sensors", SinkName: "mill"}); err != nil {
			t.Fatal(err)
		}
		sinks = append(sinks, sink)
		siteData = append(siteData, nesData{x: x, truth: truth})
	}
	model, err := pipeline.TrainFertilizer(sinks, pipeline.FertilizerConfig{Quantile: 0.03, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Scoring site 0's own window should flag most injected anomalies.
	flags, err := model.Score(0, siteData[0].x)
	if err != nil {
		t.Fatal(err)
	}
	tp, fn := 0, 0
	for i, anomalous := range siteData[0].truth {
		if anomalous && flags[i] {
			tp++
		}
		if anomalous && !flags[i] {
			fn++
		}
	}
	if tp == 0 || tp < fn {
		t.Fatalf("anomaly recall too low: tp=%d fn=%d", tp, fn)
	}
	if _, err := model.Score(9, siteData[0].x); err == nil {
		t.Fatal("invalid site accepted")
	}
}

type nesData struct {
	x     *matrix.Dense
	truth []bool
}
