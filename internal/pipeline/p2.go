// Package pipeline implements the end-to-end ML pipelines of the ExDRa
// evaluation (§6.3): the simplified paper-production training pipeline P2
// (transformencode -> value clipping -> normalization -> 70/30 split ->
// LM or FFN training -> evaluation) on local and on federated raw frames,
// and the fertilizer anomaly-detection pipeline (GMM ensembles over NES
// sink snapshots). Runs can be tracked in an ExperimentDB store.
package pipeline

import (
	"fmt"
	"time"

	"exdra/internal/algo"
	"exdra/internal/engine"
	"exdra/internal/expdb"
	"exdra/internal/federated"
	"exdra/internal/frame"
	"exdra/internal/matrix"
	"exdra/internal/nn"
	"exdra/internal/paramserv"
	"exdra/internal/transform"
)

// P2Config configures the P2 training pipeline.
type P2Config struct {
	// Spec is the transformencode specification for the raw frame.
	Spec transform.Spec
	// TrainAlgo selects "lm" (linear regression) or "ffn" (feed-forward
	// network via the parameter server) — P2_LM and P2_FNN in Figure 8.
	TrainAlgo string
	// TrainFrac is the training fraction of the 70/30 split (default 0.7).
	TrainFrac float64
	// ClipSigma is the clipping band around column means (default 1.5, the
	// paper's [-1.5σ, 1.5σ]).
	ClipSigma float64
	// FFN hyper-parameters (TrainAlgo "ffn").
	FFNHidden  int
	FFNEpochs  int
	FFNBatch   int
	FFNWorkers int // local-mode PS parallelism
	Seed       int64
	// Track records the run in an ExperimentDB store when non-nil.
	Track *expdb.Store
}

func (c *P2Config) defaults() {
	if c.TrainAlgo == "" {
		c.TrainAlgo = "lm"
	}
	if c.TrainFrac == 0 {
		c.TrainFrac = 0.7
	}
	if c.ClipSigma == 0 {
		c.ClipSigma = 1.5
	}
	if c.FFNHidden == 0 {
		c.FFNHidden = 64
	}
	if c.FFNEpochs == 0 {
		c.FFNEpochs = 5
	}
	if c.FFNBatch == 0 {
		c.FFNBatch = 512
	}
	if c.FFNWorkers == 0 {
		c.FFNWorkers = 3
	}
}

// P2Result reports a pipeline run.
type P2Result struct {
	// R2 is the coefficient of determination on the held-out test split.
	R2 float64
	// TrainRows / TestRows are the split sizes; Features the encoded width.
	TrainRows, TestRows, Features int
	// Meta is the global encoder metadata.
	Meta *transform.Meta
	// RunID is the tracked ExperimentDB run (empty when untracked).
	RunID string
}

// SplitTarget removes the named numeric column from a frame and returns it
// as the label vector — the labels stay at the coordinator, matching the
// experimental setup of §6.1.
func SplitTarget(fr *frame.Frame, target string) (*frame.Frame, *matrix.Dense, error) {
	tcol := fr.ColumnByName(target)
	if tcol == nil {
		return nil, nil, fmt.Errorf("pipeline: no target column %q", target)
	}
	y := matrix.NewDense(fr.NumRows(), 1)
	for i := 0; i < fr.NumRows(); i++ {
		v, err := tcol.AsFloat(i)
		if err != nil {
			return nil, nil, fmt.Errorf("pipeline: target %q: %w", target, err)
		}
		y.Set(i, 0, v)
	}
	cols := make([]*frame.Column, 0, fr.NumCols()-1)
	for j := 0; j < fr.NumCols(); j++ {
		if fr.Column(j).Name != target {
			cols = append(cols, fr.Column(j))
		}
	}
	rest, err := frame.New(cols...)
	if err != nil {
		return nil, nil, err
	}
	return rest, y, nil
}

// RunP2Local executes the pipeline on a local raw frame.
func RunP2Local(fr *frame.Frame, y *matrix.Dense, cfg P2Config) (*P2Result, error) {
	cfg.defaults()
	x, meta, err := transform.Encode(fr, cfg.Spec)
	if err != nil {
		return nil, err
	}
	ranges := []federated.Range{{RowBeg: 0, RowEnd: x.Rows(), ColBeg: 0, ColEnd: x.Cols()}}
	return runP2(x, y, meta, ranges, cfg, nil)
}

// RunP2Federated executes the pipeline on a federated raw frame without
// central data consolidation: encoding, clipping, normalization, and
// splitting all stay federated; only aggregates and the model reach the
// coordinator.
func RunP2Federated(ff *federated.Frame, y *matrix.Dense, colOrder []string, cfg P2Config) (*P2Result, error) {
	cfg.defaults()
	fx, meta, err := ff.TransformEncode(cfg.Spec, colOrder)
	if err != nil {
		return nil, err
	}
	var ranges []federated.Range
	for _, p := range fx.Map().Partitions {
		ranges = append(ranges, p.Range)
	}
	return runP2(fx, y, meta, ranges, cfg, fx)
}

// runP2 is the backend-agnostic body: x is local or federated; ranges
// describe the row partitions for the balanced split (one range = local).
func runP2(x engine.Mat, y *matrix.Dense, meta *transform.Meta,
	ranges []federated.Range, cfg P2Config, fed *federated.Matrix) (res *P2Result, err error) {
	defer engine.Guard(&err)
	start := time.Now()
	if y.Rows() != x.Rows() {
		return nil, fmt.Errorf("pipeline: %d labels for %d rows", y.Rows(), x.Rows())
	}

	// Value clipping to [mu - k*sigma, mu + k*sigma] per column.
	mu := engine.Local(engine.ColAgg(matrix.AggMean, x))
	sd := engine.Local(engine.ColAgg(matrix.AggSD, x))
	lo := mu.Sub(sd.Scale(cfg.ClipSigma))
	hi := mu.Add(sd.Scale(cfg.ClipSigma))
	x = engine.Binary(matrix.OpMin, engine.Binary(matrix.OpMax, x, lo), hi)

	// Normalize to zero column means and unit standard deviations
	// (constant columns keep divisor one).
	mu2 := engine.Local(engine.ColAgg(matrix.AggMean, x))
	sd2 := engine.Local(engine.ColAgg(matrix.AggSD, x)).Replace(0, 1)
	x = engine.Div(engine.Sub(x, mu2), sd2)

	// Balanced train/test split: each row partition is split TrainFrac
	// locally, so the training data keeps the same distribution across
	// federated workers (the role of the paper's uniformly sampled
	// selection-matrix multiply).
	xtr, xte, ytr, yte := splitBalanced(x, y, ranges, cfg.TrainFrac)

	var pred *matrix.Dense
	steps := []expdb.Step{{Name: "transformencode"}, {Name: "clip_scale"},
		{Name: "normalize_cols"}, {Name: "train_test_split"}}
	switch cfg.TrainAlgo {
	case "lm":
		model, err := algo.LM(xtr, ytr, algo.LMConfig{})
		if err != nil {
			return nil, err
		}
		pred, err = model.Predict(xte)
		if err != nil {
			return nil, err
		}
		steps = append(steps, expdb.Step{Name: "lm_train"})
	case "ffn":
		psCfg := paramserv.Config{
			Spec:      nn.FFNSpec(x.Cols(), cfg.FFNHidden, 1, nn.LossMSE),
			Optimizer: nn.OptimizerConfig{Kind: "nesterov", LR: 0.005, Mu: 0.9},
			Epochs:    cfg.FFNEpochs,
			BatchSize: cfg.FFNBatch,
			Seed:      cfg.Seed,
		}
		var r *paramserv.Result
		var terr error
		if ftr, ok := xtr.(*federated.Matrix); ok {
			r, terr = paramserv.TrainFederated(psCfg, ftr, ytr)
		} else {
			r, terr = paramserv.TrainLocal(psCfg, xtr.(*matrix.Dense), ytr, cfg.FFNWorkers)
		}
		if terr != nil {
			return nil, terr
		}
		pred = forwardFFN(r.Network, xte)
		steps = append(steps, expdb.Step{Name: "ffn_train"})
	default:
		return nil, fmt.Errorf("pipeline: unknown training algorithm %q", cfg.TrainAlgo)
	}

	res = &P2Result{
		R2:        algo.R2(pred, yte),
		TrainRows: xtr.Rows(),
		TestRows:  xte.Rows(),
		Features:  x.Cols(),
		Meta:      meta,
	}
	if cfg.Track != nil {
		mode := "local"
		if fed != nil {
			mode = "federated"
		}
		id, terr := cfg.Track.Track(&expdb.Run{
			PipelineID: "P2_" + cfg.TrainAlgo,
			Steps:      steps,
			Params:     map[string]string{"mode": mode, "algo": cfg.TrainAlgo},
			DataStats:  map[string]float64{"rows": float64(x.Rows()), "cols": float64(x.Cols())},
			Metrics:    map[string]float64{"r2": res.R2},
			StartedAt:  start,
			Duration:   time.Since(start),
		})
		if terr != nil {
			return nil, terr
		}
		res.RunID = id
	}
	return res, nil
}

// forwardFFN scores a trained affine/ReLU network through the engine
// dispatch layer, so the forward pass over federated test data pushes down
// to the workers (deployed federated scoring, §2.3) and only the aggregate
// predictions reach the coordinator.
func forwardFFN(net *nn.Network, x engine.Mat) *matrix.Dense {
	params := net.Params()
	pi := 0
	cur := x
	for _, ls := range net.Spec.Layers {
		switch ls.Kind {
		case nn.KindAffine:
			w, b := params[pi], params[pi+1]
			pi += 2
			cur = engine.Binary(matrix.OpAdd, engine.MatMul(cur, w), b)
		case nn.KindReLU:
			cur = engine.BinaryScalar(matrix.OpMax, cur, 0, false)
		default:
			// Conv/pool layers have no federated push-down; consolidate.
			return net.Forward(engine.Local(x))
		}
	}
	return engine.Local(cur)
}

// splitBalanced splits every row partition TrainFrac/1-TrainFrac and
// stitches the parts back together (metadata-only rbind for federated
// inputs), keeping labels aligned at the coordinator.
func splitBalanced(x engine.Mat, y *matrix.Dense, ranges []federated.Range, frac float64) (xtr, xte engine.Mat, ytr, yte *matrix.Dense) {
	var trainParts, testParts []engine.Mat
	var trainIdx, testIdx []int
	for _, r := range ranges {
		n := r.RowEnd - r.RowBeg
		k := int(float64(n) * frac)
		trainParts = append(trainParts, engine.Slice(x, r.RowBeg, r.RowBeg+k, 0, x.Cols()))
		testParts = append(testParts, engine.Slice(x, r.RowBeg+k, r.RowEnd, 0, x.Cols()))
		for i := r.RowBeg; i < r.RowBeg+k; i++ {
			trainIdx = append(trainIdx, i)
		}
		for i := r.RowBeg + k; i < r.RowEnd; i++ {
			testIdx = append(testIdx, i)
		}
	}
	xtr = concatParts(trainParts)
	xte = concatParts(testParts)
	return xtr, xte, y.SelectRows(trainIdx), y.SelectRows(testIdx)
}

func concatParts(parts []engine.Mat) engine.Mat {
	if len(parts) == 1 {
		return parts[0]
	}
	if f0, ok := parts[0].(*federated.Matrix); ok {
		out := f0
		for _, p := range parts[1:] {
			var err error
			out, err = federated.RBindFed(out, p.(*federated.Matrix))
			if err != nil {
				engine.Fail(err)
			}
		}
		return out
	}
	ms := make([]*matrix.Dense, len(parts))
	for i, p := range parts {
		ms[i] = p.(*matrix.Dense)
	}
	return matrix.RBind(ms...)
}
