package pipeline_test

import (
	"math"
	"testing"

	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/frame"
	"exdra/internal/matrix"
	"exdra/internal/pipeline"
	"exdra/internal/privacy"
	"exdra/internal/transform"
)

func TestFederatedImputeModeAndFD(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// A -> C holds across sites; site 2 holds the evidence for C3 -> Y.
	fr := frame.MustNew(
		frame.StringColumn("A", []string{"R101", "R101", "C3", "R101", "C3", "C3"}),
		frame.StringColumn("C", []string{"X", "", "Y", "X", "", "Y"}),
	)
	ff, err := federated.DistributeFrame(cl.Coord, fr, cl.Addrs, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}

	// Mode imputation: the global mode across both sites is X (2x) vs Y (2x)
	// -> lexicographic tie-break X.
	imputed, mode, err := ff.ImputeMode("C")
	if err != nil {
		t.Fatal(err)
	}
	if mode != "X" {
		t.Fatalf("global mode %q", mode)
	}
	// The imputed frame stays federated; verify through a federated encode
	// (raw rows stay untransferable; only aggregates may leave the sites).
	spec := transform.Spec{Columns: []transform.ColumnSpec{
		{Name: "A", Method: transform.Recode, OneHot: true},
		{Name: "C", Method: transform.Recode, OneHot: true},
	}}
	fx, meta, err := imputed.TransformEncode(spec, fr.Names())
	if err != nil {
		t.Fatal(err)
	}
	// After imputation no all-zero one-hot rows remain for C.
	_, colSums, err := fx.ColAgg(matrix.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	off := len(meta.RecodeKeys["A"])
	for j := off; j < off+len(meta.RecodeKeys["C"]); j++ {
		total += colSums.At(0, j)
	}
	if total != 6 {
		t.Fatalf("C one-hot mass %g, want 6 (all rows filled)", total)
	}

	// FD imputation: A -> C maps the two NULLs to different values.
	fdImputed, mapping, err := ff.ImputeFD("A", "C", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if mapping["R101"] != "X" || mapping["C3"] != "Y" {
		t.Fatalf("fd mapping %v", mapping)
	}
	fx2, meta2, err := fdImputed.TransformEncode(spec, fr.Names())
	if err != nil {
		t.Fatal(err)
	}
	_, cs2, err := fx2.ColAgg(matrix.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	// X appears 3x (rows 0,1,3) and Y 3x (rows 2,4,5) after FD imputation.
	keys := meta2.RecodeKeys["C"]
	offC := len(meta2.RecodeKeys["A"])
	got := map[string]float64{}
	for j, key := range keys {
		got[key] = cs2.At(0, offC+j)
	}
	if got["X"] != 3 || got["Y"] != 3 {
		t.Fatalf("fd-imputed distribution %v", got)
	}
}

func TestMICEImputesCategoricalAndNumeric(t *testing.T) {
	// Categorical class depends on the numeric features; numeric column v2
	// depends linearly on v1.
	n := 200
	v1 := make([]float64, n)
	v2 := make([]float64, n)
	cls := make([]string, n)
	for i := 0; i < n; i++ {
		v1[i] = float64(i%17) - 8
		v2[i] = 3*v1[i] + 1
		if v1[i] > 0 {
			cls[i] = "hi"
		} else {
			cls[i] = "lo"
		}
	}
	// Poke holes.
	missCls := []int{5, 40, 77}
	missNum := []int{9, 100}
	for _, i := range missCls {
		cls[i] = ""
	}
	for _, i := range missNum {
		v2[i] = math.NaN()
	}
	fr := frame.MustNew(
		frame.FloatColumn("v1", v1),
		frame.FloatColumn("v2", v2),
		frame.StringColumn("class", cls),
	)
	out, err := pipeline.ImputeMICE(fr, pipeline.MICEConfig{
		Columns: []string{"class", "v2"},
		Rounds:  1,
		Spec: transform.Spec{Columns: []transform.ColumnSpec{
			{Name: "class", Method: transform.Recode, OneHot: true},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := out.ColumnByName("class")
	for _, i := range missCls {
		want := "lo"
		if v1[i] > 0 {
			want = "hi"
		}
		if c.AsString(i) != want {
			t.Fatalf("row %d class imputed %q want %q", i, c.AsString(i), want)
		}
	}
	nv := out.ColumnByName("v2")
	for _, i := range missNum {
		want := 3*v1[i] + 1
		if math.Abs(nv.MustFloat(i)-want) > 0.5 {
			t.Fatalf("row %d v2 imputed %g want %g", i, nv.MustFloat(i), want)
		}
	}
	// No-missing column is a no-op.
	same, err := pipeline.ImputeMICE(out, pipeline.MICEConfig{Columns: []string{"class"}})
	if err != nil {
		t.Fatal(err)
	}
	if same.ColumnByName("class").AsString(5) != c.AsString(5) {
		t.Fatal("no-op changed data")
	}
}

func TestMICEErrors(t *testing.T) {
	fr := frame.MustNew(frame.StringColumn("c", []string{"", "", "x"}))
	if _, err := pipeline.ImputeMICE(fr, pipeline.MICEConfig{Columns: []string{"c"}}); err == nil {
		t.Fatal("too few complete rows accepted")
	}
	if _, err := pipeline.ImputeMICE(fr, pipeline.MICEConfig{Columns: []string{"nope"}}); err == nil {
		t.Fatal("missing column accepted")
	}
}
