package pipeline

import (
	"exdra/internal/matrix"
	"exdra/internal/nes"
	"exdra/internal/nn"
)

// Deployed scoring (ExDRa §2.3 deployment types and §5.1 stream-ingestion
// extensions): a trained model is pushed down to the federated site and
// wired into the NES continuous query as a map operator, so predictions are
// produced at the site as the stream flows — federated scoring with
// federated usage of scores.

// ScoringOp builds a NES map operator that appends the model's prediction
// to every tuple: the network scores the tuple's channel vector and the
// predicted value (argmax class for softmax networks, raw output for
// regression) is emitted as an extra trailing channel.
func ScoringOp(net *nn.Network) nes.Op {
	return nes.Op{
		Kind: nes.OpMap,
		Cost: 2, // heavier than plain maps for placement purposes
		Fn: func(t nes.Tuple) nes.Tuple {
			x := matrix.RowVector(t.Values)
			var pred float64
			if net.Spec.Loss == nn.LossSoftmaxCE {
				pred = net.Predict(x).At(0, 0)
			} else {
				pred = net.Forward(x).At(0, 0)
			}
			out := make([]float64, len(t.Values)+1)
			copy(out, t.Values)
			out[len(t.Values)] = pred
			return nes.Tuple{TS: t.TS, Values: out}
		},
	}
}

// AlertOp builds a NES filter that keeps only tuples whose trailing
// prediction channel crosses the threshold — the monitoring-and-alerting
// deployment of the production use cases (§2.3).
func AlertOp(threshold float64) nes.Op {
	return nes.Op{
		Kind: nes.OpFilter,
		Pred: func(t nes.Tuple) bool {
			return t.Values[len(t.Values)-1] >= threshold
		},
	}
}
