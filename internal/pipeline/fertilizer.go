package pipeline

import (
	"fmt"
	"sort"

	"exdra/internal/algo"
	"exdra/internal/matrix"
	"exdra/internal/nes"
)

// FertilizerConfig configures the grinding-mill anomaly pipeline of §2.1:
// per-site NES acquisition into file sinks, task-parallel GMM training over
// the sink snapshots, and density-threshold anomaly scoring.
type FertilizerConfig struct {
	// Components is the number of GMM mixture components (default 3).
	Components int
	// Quantile sets the anomaly threshold at this quantile of training
	// log-densities (default 0.02: the lowest 2% are flagged).
	Quantile float64
	Seed     int64
}

// FertilizerModel is a per-site ensemble of anomaly detectors.
type FertilizerModel struct {
	Models     []*algo.GMMResult
	Thresholds []float64
}

// TrainFertilizer trains one GMM per site snapshot (task-parallel, as in
// §6.3) and calibrates per-site anomaly thresholds.
func TrainFertilizer(sinks []*nes.FileSink, cfg FertilizerConfig) (*FertilizerModel, error) {
	if cfg.Components == 0 {
		cfg.Components = 3
	}
	if cfg.Quantile == 0 {
		cfg.Quantile = 0.02
	}
	snaps := make([]*matrix.Dense, len(sinks))
	for i, s := range sinks {
		snaps[i] = s.Snapshot()
		if snaps[i].Rows() == 0 {
			return nil, fmt.Errorf("pipeline: sink %d is empty", i)
		}
	}
	models, err := algo.TrainGMMEnsemble(snaps, algo.GMMConfig{K: cfg.Components, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	out := &FertilizerModel{Models: models, Thresholds: make([]float64, len(models))}
	for i, m := range models {
		dens := m.LogDensity(snaps[i]).Data()
		sorted := append([]float64(nil), dens...)
		sort.Float64s(sorted)
		idx := int(cfg.Quantile * float64(len(sorted)))
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out.Thresholds[i] = sorted[idx]
	}
	return out, nil
}

// Score flags anomalous rows of new site data (site indexes the per-site
// model): true where the mixture log-density falls below the calibrated
// threshold.
func (m *FertilizerModel) Score(site int, x *matrix.Dense) ([]bool, error) {
	if site < 0 || site >= len(m.Models) {
		return nil, fmt.Errorf("pipeline: no model for site %d", site)
	}
	dens := m.Models[site].LogDensity(x)
	flags := make([]bool, x.Rows())
	for i, d := range dens.Data() {
		flags[i] = d < m.Thresholds[site]
	}
	return flags, nil
}
