package nes

import (
	"testing"
)

func TestSinkIncrementalStats(t *testing.T) {
	s, err := NewFileSink("", 3, 0) // retain last 3 tuples
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{10, 20, 30, 40, 50} {
		s.Append(Tuple{Values: []float64{v}})
	}
	// Retained: 30, 40, 50.
	st := s.Stats()
	if st.Count() != 3 {
		t.Fatalf("count %d", st.Count())
	}
	if got := st.ColMeans().At(0, 0); got != 40 {
		t.Fatalf("incremental mean %g", got)
	}
	// Min/max were invalidated by evictions and rebuilt lazily by Stats.
	if st.ColMins().At(0, 0) != 30 || st.ColMaxs().At(0, 0) != 50 {
		t.Fatalf("min/max %g/%g", st.ColMins().At(0, 0), st.ColMaxs().At(0, 0))
	}
	// Stats agree with a full snapshot scan.
	snap := s.Snapshot()
	if snap.ColMeans().At(0, 0) != st.ColMeans().At(0, 0) {
		t.Fatal("incremental mean diverges from snapshot")
	}
	// Empty sink stats are usable.
	empty, _ := NewFileSink("", 0, 0)
	if empty.Stats().Count() != 0 {
		t.Fatal("empty stats")
	}
}
