package nes

import (
	"os"
	"strings"
	"testing"

	"exdra/internal/data"
)

func tuples(vals ...float64) []Tuple {
	out := make([]Tuple, len(vals))
	for i, v := range vals {
		out[i] = Tuple{TS: int64(i), Values: []float64{v}}
	}
	return out
}

func testInstance(t *testing.T, caps ...int) (*Instance, *FileSink) {
	t.Helper()
	nodes := make([]*Node, len(caps))
	for i, c := range caps {
		nodes[i] = &Node{ID: string(rune('a' + i)), Capacity: c}
	}
	in := NewInstance(nodes)
	sink, err := NewFileSink("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	in.RegisterSink("out", sink)
	return in, sink
}

func TestFilterMapWindow(t *testing.T) {
	in, sink := testInstance(t, 10)
	in.RegisterSource("sensor", func() Source {
		return NewSliceSource(tuples(1, 2, 3, 4, 5, 6, 7, 8))
	})
	_, err := in.Deploy(&Query{
		Name:   "q1",
		Source: "sensor",
		Ops: []Op{
			{Kind: OpFilter, Pred: func(t Tuple) bool { return t.Values[0] != 4 }},
			{Kind: OpMap, Fn: func(t Tuple) Tuple {
				t.Values[0] *= 10
				return t
			}},
			{Kind: OpWindowAgg, Size: 2, Agg: WindowMean},
		},
		SinkName: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tuples 1,2,3,5,6,7,8 pass the filter, scaled x10, windows of 2:
	// (10+20)/2=15, (30+50)/2=40, (60+70)/2=65; trailing 80 stays buffered.
	snap := sink.Snapshot()
	if snap.Rows() != 3 {
		t.Fatalf("window count %d", snap.Rows())
	}
	want := []float64{15, 40, 65}
	for i, w := range want {
		if snap.At(i, 0) != w {
			t.Fatalf("window %d = %g want %g", i, snap.At(i, 0), w)
		}
	}
}

func TestWindowAggKinds(t *testing.T) {
	for _, tc := range []struct {
		kind WindowAggKind
		want float64
	}{
		{WindowSum, 6}, {WindowMean, 2}, {WindowMin, 1}, {WindowMax, 3},
	} {
		in, sink := testInstance(t, 10)
		in.RegisterSource("s", func() Source { return NewSliceSource(tuples(1, 2, 3)) })
		if _, err := in.Deploy(&Query{Name: "q", Source: "s",
			Ops:      []Op{{Kind: OpWindowAgg, Size: 3, Agg: tc.kind}},
			SinkName: "out"}); err != nil {
			t.Fatal(err)
		}
		if got := sink.Snapshot().At(0, 0); got != tc.want {
			t.Fatalf("agg %v = %g want %g", tc.kind, got, tc.want)
		}
	}
}

func TestPlacementRespectsCapacity(t *testing.T) {
	in, _ := testInstance(t, 2, 2)
	in.RegisterSource("s", func() Source { return NewSliceSource(nil) })
	q := &Query{Name: "q", Source: "s", SinkName: "out", Ops: []Op{
		{Kind: OpMap, Fn: func(t Tuple) Tuple { return t }, Cost: 2},
		{Kind: OpMap, Fn: func(t Tuple) Tuple { return t }, Cost: 2},
	}}
	p, err := in.Deploy(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops[0] == p.Ops[1] {
		t.Fatal("both operators on one node despite capacity 2")
	}
	// A third query with no remaining capacity must be rejected.
	q2 := &Query{Name: "q2", Source: "s", SinkName: "out", Ops: []Op{
		{Kind: OpMap, Fn: func(t Tuple) Tuple { return t }, Cost: 2},
	}}
	if _, err := in.Deploy(q2); err == nil {
		t.Fatal("over-capacity placement accepted")
	}
	// Undeploying releases load for re-optimization.
	in.Undeploy("q")
	if _, err := in.Deploy(q2); err != nil {
		t.Fatalf("redeploy after undeploy: %v", err)
	}
}

func TestDeployErrors(t *testing.T) {
	in, _ := testInstance(t, 4)
	if _, err := in.Deploy(&Query{Name: "q", Source: "missing", SinkName: "out"}); err == nil {
		t.Fatal("unknown source accepted")
	}
	in.RegisterSource("s", func() Source { return NewSliceSource(nil) })
	if _, err := in.Deploy(&Query{Name: "q", Source: "s", SinkName: "missing"}); err == nil {
		t.Fatal("unknown sink accepted")
	}
}

func TestRetentionByCountAndAge(t *testing.T) {
	s, err := NewFileSink("", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples(1, 2, 3, 4, 5) {
		s.Append(tp)
	}
	if s.Len() != 3 {
		t.Fatalf("count retention kept %d", s.Len())
	}
	if first := s.Snapshot().At(0, 0); first != 3 {
		t.Fatalf("oldest retained %g", first)
	}
	a, err := NewFileSink("", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples(1, 2, 3, 4, 5) { // TS 0..4, keep TS >= 2
		a.Append(tp)
	}
	if a.Len() != 3 {
		t.Fatalf("age retention kept %d", a.Len())
	}
}

func TestSinkFilePersistence(t *testing.T) {
	path := t.TempDir() + "/sink.csv"
	s, err := NewFileSink(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Append(Tuple{TS: 7, Values: []float64{1.5, 2}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "7,1.5,2") {
		t.Fatalf("sink file: %q", b)
	}
}

func TestMatrixSourceEndToEnd(t *testing.T) {
	// Fertilizer telemetry -> window means -> snapshot for training:
	// the exploratory acquisition path of §3.4.
	x, _ := data.FertilizerSensors(1, 120, 0.05)
	in, sink := testInstance(t, 8)
	in.RegisterSource("mill", func() Source { return NewMatrixSource(x) })
	if _, err := in.Deploy(&Query{Name: "acq", Source: "mill",
		Ops:      []Op{{Kind: OpWindowAgg, Size: 10, Agg: WindowMean}},
		SinkName: "out"}); err != nil {
		t.Fatal(err)
	}
	snap := sink.Snapshot()
	if snap.Rows() != 12 || snap.Cols() != 68 {
		t.Fatalf("snapshot %dx%d", snap.Rows(), snap.Cols())
	}
	// Snapshot is a copy: appending more must not change it.
	before := snap.Rows()
	sink.Append(Tuple{TS: 999, Values: make([]float64, 68)})
	if snap.Rows() != before {
		t.Fatal("snapshot not isolated")
	}
	if sink.Snapshot().Rows() != before+1 {
		t.Fatal("sink did not grow")
	}
}
