// Package nes implements the streaming-data-acquisition substrate of ExDRa
// (§3.4): a NebulaStream-like system with a per-site coordinator, a
// decentralized topology of heterogeneous nodes, continuous queries
// (filter, map, tumbling-window aggregation) over sensor sources, operator
// placement with re-optimization, and buffered file sinks with retention
// periods from which ML training sessions read consistent in-memory
// snapshots.
package nes

import (
	"fmt"
	"sync"

	"exdra/internal/matrix"
)

// Tuple is one timestamped multi-channel reading.
type Tuple struct {
	TS     int64 // logical timestamp (e.g. seconds since stream start)
	Values []float64
}

// Source produces a stream of tuples. Next returns ok=false at end of
// stream (unbounded sources return false only after Stop).
type Source interface {
	Next() (Tuple, bool)
}

// SliceSource replays a fixed set of tuples (deterministic tests and
// replay of recorded sensor data).
type SliceSource struct {
	tuples []Tuple
	pos    int
}

// NewSliceSource wraps tuples as a bounded source.
func NewSliceSource(tuples []Tuple) *SliceSource { return &SliceSource{tuples: tuples} }

// Next returns the next tuple.
func (s *SliceSource) Next() (Tuple, bool) {
	if s.pos >= len(s.tuples) {
		return Tuple{}, false
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true
}

// MatrixSource streams the rows of a matrix (one tuple per row), e.g. the
// fertilizer sensor matrix of package data.
type MatrixSource struct {
	m   *matrix.Dense
	pos int
}

// NewMatrixSource wraps a matrix as a bounded source.
func NewMatrixSource(m *matrix.Dense) *MatrixSource { return &MatrixSource{m: m} }

// Next returns the next row as a tuple.
func (s *MatrixSource) Next() (Tuple, bool) {
	if s.pos >= s.m.Rows() {
		return Tuple{}, false
	}
	row := make([]float64, s.m.Cols())
	copy(row, s.m.Row(s.pos))
	t := Tuple{TS: int64(s.pos), Values: row}
	s.pos++
	return t, true
}

// OpKind enumerates continuous-query operators.
type OpKind int

// Continuous-query operator kinds.
const (
	OpFilter OpKind = iota
	OpMap
	OpWindowAgg
)

// WindowAggKind selects the per-channel aggregation of a tumbling window.
type WindowAggKind int

// Window aggregations.
const (
	WindowMean WindowAggKind = iota
	WindowSum
	WindowMin
	WindowMax
)

// Op is one operator of a continuous query.
type Op struct {
	Kind OpKind
	// Filter keeps tuples for which Pred returns true.
	Pred func(Tuple) bool
	// Map transforms tuples (e.g. unit conversion, channel selection).
	Fn func(Tuple) Tuple
	// WindowAgg groups Size consecutive tuples and emits one aggregated
	// tuple per window (tumbling windows over logical time order).
	Size int
	Agg  WindowAggKind
	// Cost is the operator's abstract resource demand for placement.
	Cost int
}

// Query is a continuous query: a named source, an operator chain, and a
// sink name.
type Query struct {
	Name     string
	Source   string
	Ops      []Op
	SinkName string
}

// apply pushes a tuple through the operator chain, using state for window
// accumulation; emitted tuples are appended to out.
type opState struct {
	buf []Tuple
}

func applyOps(ops []Op, states []*opState, t Tuple, out *[]Tuple) {
	emit := []Tuple{t}
	for i, op := range ops {
		var next []Tuple
		for _, tu := range emit {
			switch op.Kind {
			case OpFilter:
				if op.Pred(tu) {
					next = append(next, tu)
				}
			case OpMap:
				next = append(next, op.Fn(tu))
			case OpWindowAgg:
				st := states[i]
				st.buf = append(st.buf, tu)
				if len(st.buf) >= op.Size {
					next = append(next, aggregateWindow(st.buf, op.Agg))
					st.buf = st.buf[:0]
				}
			}
		}
		emit = next
		if len(emit) == 0 {
			return
		}
	}
	*out = append(*out, emit...)
}

func aggregateWindow(window []Tuple, kind WindowAggKind) Tuple {
	k := len(window[0].Values)
	out := Tuple{TS: window[len(window)-1].TS, Values: make([]float64, k)}
	for j := 0; j < k; j++ {
		switch kind {
		case WindowSum, WindowMean:
			s := 0.0
			for _, t := range window {
				s += t.Values[j]
			}
			if kind == WindowMean {
				s /= float64(len(window))
			}
			out.Values[j] = s
		case WindowMin:
			m := window[0].Values[j]
			for _, t := range window[1:] {
				if t.Values[j] < m {
					m = t.Values[j]
				}
			}
			out.Values[j] = m
		case WindowMax:
			m := window[0].Values[j]
			for _, t := range window[1:] {
				if t.Values[j] > m {
					m = t.Values[j]
				}
			}
			out.Values[j] = m
		}
	}
	return out
}

// Node is one topology node with a resource capacity.
type Node struct {
	ID       string
	Capacity int

	mu   sync.Mutex
	load int // guarded by mu
}

// Load returns the node's current placement load.
func (n *Node) Load() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.load
}

// Placement records which node executes which operator of a query.
type Placement struct {
	Query string
	Ops   []string // node ID per operator
}

// Instance is a per-federated-site NES deployment: a coordinator plus a
// decentralized node topology. Queries are deployed onto the topology with
// a greedy least-loaded placement that can be re-optimized as queries come
// and go (the paper's operator re-assignment under topology changes).
type Instance struct {
	mu         sync.Mutex
	nodes      []*Node                  // slice immutable after NewInstance; Node.load has its own lock
	sources    map[string]func() Source // guarded by mu
	sinks      map[string]*FileSink     // guarded by mu
	queries    map[string]*Query        // guarded by mu
	placements map[string]*Placement    // guarded by mu
}

// NewInstance builds an instance over the given topology nodes.
func NewInstance(nodes []*Node) *Instance {
	return &Instance{
		nodes:      nodes,
		sources:    map[string]func() Source{},
		sinks:      map[string]*FileSink{},
		queries:    map[string]*Query{},
		placements: map[string]*Placement{},
	}
}

// RegisterSource registers a logical stream by name; the factory is invoked
// per deployed query (inbound adapters like OPC would sit here).
func (in *Instance) RegisterSource(name string, factory func() Source) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sources[name] = factory
}

// RegisterSink registers a buffered file sink by name.
func (in *Instance) RegisterSink(name string, sink *FileSink) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sinks[name] = sink
}

// Sink returns a registered sink.
func (in *Instance) Sink(name string) *FileSink {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.sinks[name]
}

// place assigns each operator to the least-loaded node with capacity.
func (in *Instance) place(q *Query) (*Placement, error) {
	p := &Placement{Query: q.Name}
	for _, op := range q.Ops {
		cost := op.Cost
		if cost == 0 {
			cost = 1
		}
		var best *Node
		for _, n := range in.nodes {
			n.mu.Lock()
			ok := n.load+cost <= n.Capacity
			n.mu.Unlock()
			if !ok {
				continue
			}
			if best == nil || n.Load() < best.Load() {
				best = n
			}
		}
		if best == nil {
			return nil, fmt.Errorf("nes: no node with capacity %d for query %q", cost, q.Name)
		}
		best.mu.Lock()
		best.load += cost
		best.mu.Unlock()
		p.Ops = append(p.Ops, best.ID)
	}
	return p, nil
}

// Deploy places and synchronously executes a continuous query: the bounded
// source is drained through the operator chain into the sink. (Production
// NES runs unbounded; the simulator's bounded execution makes tests and
// experiments deterministic while exercising the same operator logic.)
func (in *Instance) Deploy(q *Query) (*Placement, error) {
	in.mu.Lock()
	factory, ok := in.sources[q.Source]
	sink := in.sinks[q.SinkName]
	in.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("nes: unknown source %q", q.Source)
	}
	if sink == nil {
		return nil, fmt.Errorf("nes: unknown sink %q", q.SinkName)
	}
	in.mu.Lock()
	placement, err := in.place(q)
	if err != nil {
		in.mu.Unlock()
		return nil, err
	}
	in.queries[q.Name] = q
	in.placements[q.Name] = placement
	in.mu.Unlock()

	src := factory()
	states := make([]*opState, len(q.Ops))
	for i := range states {
		states[i] = &opState{}
	}
	var out []Tuple
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		out = out[:0]
		applyOps(q.Ops, states, t, &out)
		for _, o := range out {
			sink.Append(o)
		}
	}
	return placement, nil
}

// Undeploy removes a query and releases its operator load (topology
// re-optimization for the remaining queries happens on the next Deploy).
func (in *Instance) Undeploy(name string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	q, ok := in.queries[name]
	if !ok {
		return
	}
	p := in.placements[name]
	for i, op := range q.Ops {
		cost := op.Cost
		if cost == 0 {
			cost = 1
		}
		for _, n := range in.nodes {
			if n.ID == p.Ops[i] {
				n.mu.Lock()
				n.load -= cost
				n.mu.Unlock()
			}
		}
	}
	delete(in.queries, name)
	delete(in.placements, name)
}
