package nes

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"sync"

	"exdra/internal/matrix"
)

// FileSink is the buffered file sink of §3.4: NES appends collected stream
// tuples; a retention period bounds the kept history (e.g. the last two
// days); ML training sessions read a consistent in-memory snapshot. When a
// path is configured, appended tuples are also persisted as CSV so a
// federated worker can READ them as raw data.
type FileSink struct {
	mu sync.Mutex
	// RetentionTuples bounds the number of retained tuples (0 = unbounded).
	retentionTuples int
	// RetentionAge drops tuples whose TS is older than newestTS - age
	// (0 = unbounded).
	retentionAge int64
	buf          []Tuple // guarded by mu
	path         string
	file         *os.File      // guarded by mu
	w            *bufio.Writer // guarded by mu
	// stats are the incrementally maintained per-channel aggregates over
	// the retained tuples (ExDRa §4.4, incremental maintenance of cached
	// intermediates under appends and retention-driven deletions).
	// Guarded by mu.
	stats *matrix.IncrementalStats
}

// NewFileSink creates a sink retaining up to retentionTuples tuples and, if
// age > 0, only tuples within age of the newest timestamp. path may be
// empty for a purely in-memory sink.
func NewFileSink(path string, retentionTuples int, age int64) (*FileSink, error) {
	s := &FileSink{retentionTuples: retentionTuples, retentionAge: age, path: path}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("nes: create sink file: %w", err)
		}
		s.file = f
		s.w = bufio.NewWriter(f)
	}
	return s, nil
}

// Append adds one tuple, enforcing retention and maintaining the
// incremental channel statistics.
func (s *FileSink) Append(t Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats == nil {
		s.stats = matrix.NewIncrementalStats(len(t.Values))
	}
	s.buf = append(s.buf, t)
	s.stats.Append(t.Values)
	evict := func(n int) {
		for _, old := range s.buf[:n] {
			s.stats.Remove(old.Values)
		}
		s.buf = s.buf[n:]
	}
	if s.retentionTuples > 0 && len(s.buf) > s.retentionTuples {
		evict(len(s.buf) - s.retentionTuples)
	}
	if s.retentionAge > 0 {
		newest := s.buf[len(s.buf)-1].TS
		cut := 0
		for cut < len(s.buf) && s.buf[cut].TS < newest-s.retentionAge {
			cut++
		}
		evict(cut)
	}
	if s.w != nil {
		s.w.WriteString(strconv.FormatInt(t.TS, 10))
		for _, v := range t.Values {
			s.w.WriteByte(',')
			s.w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		s.w.WriteByte('\n')
	}
}

// Len returns the number of retained tuples.
func (s *FileSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Snapshot returns a consistent in-memory copy of the retained tuples as a
// matrix (rows = tuples, columns = channels) — the matrix an iterative
// training session works on while the stream keeps appending.
func (s *FileSink) Snapshot() *matrix.Dense {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return matrix.NewDense(0, 0)
	}
	cols := len(s.buf[0].Values)
	out := matrix.NewDense(len(s.buf), cols)
	for i, t := range s.buf {
		copy(out.Row(i), t.Values)
	}
	return out
}

// Stats returns the incrementally maintained per-channel statistics of the
// retained tuples. Min/max are rebuilt from the buffer only when a
// retention eviction removed an extremum; means and standard deviations are
// always O(1) reads.
func (s *FileSink) Stats() *matrix.IncrementalStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats == nil {
		s.stats = matrix.NewIncrementalStats(0)
	}
	if s.stats.NeedsRebuild() {
		rows := make([][]float64, len(s.buf))
		for i, t := range s.buf {
			rows[i] = t.Values
		}
		s.stats.Rebuild(rows)
	}
	return s.stats
}

// Flush persists buffered file output.
func (s *FileSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	return s.w.Flush()
}

// Close flushes and closes the backing file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		s.file.Close()
		return err
	}
	err := s.file.Close()
	s.file = nil
	return err
}
