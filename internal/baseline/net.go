package baseline

import (
	"math"
	"math/rand"
)

// FFN is an independent two-layer network on raw slices (the TensorFlow
// FFN stand-in for Figure 7): in -> hidden (ReLU) -> classes, softmax
// cross-entropy, SGD with Nesterov momentum.
type FFN struct {
	W1, W2 [][]float64
	B1, B2 []float64
	v1, v2 [][]float64
	vb1    []float64
	vb2    []float64
	lr, mu float64
}

// NewFFN initializes the network.
func NewFFN(in, hidden, classes int, lr, mu float64, seed int64) *FFN {
	rng := rand.New(rand.NewSource(seed))
	mk := func(r, c int, scale float64) [][]float64 {
		m := make([][]float64, r)
		for i := range m {
			m[i] = make([]float64, c)
			for j := range m[i] {
				m[i][j] = scale * rng.NormFloat64()
			}
		}
		return m
	}
	return &FFN{
		W1: mk(in, hidden, math.Sqrt(2/float64(in))),
		W2: mk(hidden, classes, math.Sqrt(2/float64(hidden))),
		B1: make([]float64, hidden),
		B2: make([]float64, classes),
		v1: mk(in, hidden, 0), v2: mk(hidden, classes, 0),
		vb1: make([]float64, hidden), vb2: make([]float64, classes),
		lr: lr, mu: mu,
	}
}

func (f *FFN) forward(x []float64) (h, p []float64) {
	h = make([]float64, len(f.B1))
	for j := range h {
		s := f.B1[j]
		for i, xv := range x {
			s += xv * f.W1[i][j]
		}
		if s > 0 {
			h[j] = s
		}
	}
	p = make([]float64, len(f.B2))
	mx := math.Inf(-1)
	for j := range p {
		s := f.B2[j]
		for i, hv := range h {
			s += hv * f.W2[i][j]
		}
		p[j] = s
		if s > mx {
			mx = s
		}
	}
	sum := 0.0
	for j := range p {
		p[j] = math.Exp(p[j] - mx)
		sum += p[j]
	}
	for j := range p {
		p[j] /= sum
	}
	return h, p
}

// TrainEpoch runs one SGD epoch over (x, labels); labels are 0-based.
// It returns the mean cross-entropy loss.
func (f *FFN) TrainEpoch(x [][]float64, labels []int, batch int, rng *rand.Rand) float64 {
	perm := rng.Perm(len(x))
	total := 0.0
	for b := 0; b < len(perm); b += batch {
		e := b + batch
		if e > len(perm) {
			e = len(perm)
		}
		gW1 := zeros(len(f.W1), len(f.B1))
		gW2 := zeros(len(f.W2), len(f.B2))
		gB1 := make([]float64, len(f.B1))
		gB2 := make([]float64, len(f.B2))
		for _, pi := range perm[b:e] {
			h, p := f.forward(x[pi])
			total += -math.Log(math.Max(p[labels[pi]], 1e-15))
			dOut := append([]float64(nil), p...)
			dOut[labels[pi]] -= 1
			for j, d := range dOut {
				gB2[j] += d
				for i, hv := range h {
					gW2[i][j] += hv * d
				}
			}
			for i := range h {
				if h[i] <= 0 {
					continue
				}
				dh := 0.0
				for j, d := range dOut {
					dh += f.W2[i][j] * d
				}
				gB1[i] += dh
				for k, xv := range x[pi] {
					gW1[k][i] += xv * dh
				}
			}
		}
		n := float64(e - b)
		f.step(f.W1, f.v1, gW1, n)
		f.step(f.W2, f.v2, gW2, n)
		f.stepVec(f.B1, f.vb1, gB1, n)
		f.stepVec(f.B2, f.vb2, gB2, n)
	}
	return total / float64(len(x))
}

func (f *FFN) step(w, v, g [][]float64, n float64) {
	for i := range w {
		for j := range w[i] {
			prev := v[i][j]
			v[i][j] = f.mu*v[i][j] - f.lr*g[i][j]/n
			w[i][j] += -f.mu*prev + (1+f.mu)*v[i][j]
		}
	}
}

func (f *FFN) stepVec(w, v, g []float64, n float64) {
	for i := range w {
		prev := v[i]
		v[i] = f.mu*v[i] - f.lr*g[i]/n
		w[i] += -f.mu*prev + (1+f.mu)*v[i]
	}
}

// Accuracy computes classification accuracy (0-based labels).
func (f *FFN) Accuracy(x [][]float64, labels []int) float64 {
	correct := 0
	for i, r := range x {
		_, p := f.forward(r)
		best, bi := math.Inf(-1), 0
		for j, v := range p {
			if v > best {
				best, bi = v, j
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func zeros(r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
	}
	return m
}

// CNN is a compact independent convolutional classifier (the TensorFlow CNN
// stand-in): one 5x5 conv with F filters over 28x28 inputs, ReLU, 2x2 max
// pool, and a linear softmax head — trained with plain SGD.
type CNN struct {
	Filters [][]float64 // F x 25
	FBias   []float64
	W       [][]float64 // (F*14*14) x classes
	B       []float64
	lr      float64
}

// NewCNN initializes the baseline CNN.
func NewCNN(filters, classes int, lr float64, seed int64) *CNN {
	rng := rand.New(rand.NewSource(seed))
	c := &CNN{FBias: make([]float64, filters), B: make([]float64, classes), lr: lr}
	c.Filters = make([][]float64, filters)
	for f := range c.Filters {
		c.Filters[f] = make([]float64, 25)
		for j := range c.Filters[f] {
			c.Filters[f][j] = 0.28 * rng.NormFloat64()
		}
	}
	c.W = make([][]float64, filters*14*14)
	for i := range c.W {
		c.W[i] = make([]float64, classes)
		for j := range c.W[i] {
			c.W[i][j] = 0.05 * rng.NormFloat64()
		}
	}
	return c
}

// forward returns the pooled features and class probabilities for one
// 784-pixel image.
func (c *CNN) forward(img []float64) (pooled, probs []float64) {
	nf := len(c.Filters)
	conv := make([]float64, nf*28*28)
	for f := 0; f < nf; f++ {
		for oi := 0; oi < 28; oi++ {
			for oj := 0; oj < 28; oj++ {
				s := c.FBias[f]
				for fi := 0; fi < 5; fi++ {
					for fj := 0; fj < 5; fj++ {
						ii, jj := oi-2+fi, oj-2+fj
						if ii < 0 || jj < 0 || ii >= 28 || jj >= 28 {
							continue
						}
						s += c.Filters[f][fi*5+fj] * img[ii*28+jj]
					}
				}
				if s > 0 { // fused ReLU
					conv[(f*28+oi)*28+oj] = s
				}
			}
		}
	}
	pooled = make([]float64, nf*14*14)
	for f := 0; f < nf; f++ {
		for oi := 0; oi < 14; oi++ {
			for oj := 0; oj < 14; oj++ {
				mx := 0.0
				for di := 0; di < 2; di++ {
					for dj := 0; dj < 2; dj++ {
						v := conv[(f*28+oi*2+di)*28+oj*2+dj]
						if v > mx {
							mx = v
						}
					}
				}
				pooled[(f*14+oi)*14+oj] = mx
			}
		}
	}
	probs = make([]float64, len(c.B))
	mx := math.Inf(-1)
	for j := range probs {
		s := c.B[j]
		for i, pv := range pooled {
			s += pv * c.W[i][j]
		}
		probs[j] = s
		if s > mx {
			mx = s
		}
	}
	sum := 0.0
	for j := range probs {
		probs[j] = math.Exp(probs[j] - mx)
		sum += probs[j]
	}
	for j := range probs {
		probs[j] /= sum
	}
	return pooled, probs
}

// TrainEpoch runs one SGD epoch (head-only gradient for the linear layer
// plus filter bias; a pragmatic baseline sufficient for runtime-shape
// comparison). Labels are 0-based. Returns mean loss.
func (c *CNN) TrainEpoch(x [][]float64, labels []int, batch int, rng *rand.Rand) float64 {
	perm := rng.Perm(len(x))
	total := 0.0
	for b := 0; b < len(perm); b += batch {
		e := b + batch
		if e > len(perm) {
			e = len(perm)
		}
		gW := zeros(len(c.W), len(c.B))
		gB := make([]float64, len(c.B))
		for _, pi := range perm[b:e] {
			pooled, p := c.forward(x[pi])
			total += -math.Log(math.Max(p[labels[pi]], 1e-15))
			for j := range p {
				d := p[j]
				if j == labels[pi] {
					d -= 1
				}
				gB[j] += d
				for i, pv := range pooled {
					if pv != 0 {
						gW[i][j] += pv * d
					}
				}
			}
		}
		n := float64(e - b)
		for i := range c.W {
			for j := range c.W[i] {
				c.W[i][j] -= c.lr * gW[i][j] / n
			}
		}
		for j := range c.B {
			c.B[j] -= c.lr * gB[j] / n
		}
	}
	return total / float64(len(x))
}

// Accuracy computes classification accuracy (0-based labels).
func (c *CNN) Accuracy(x [][]float64, labels []int) float64 {
	correct := 0
	for i, img := range x {
		_, p := c.forward(img)
		best, bi := math.Inf(-1), 0
		for j, v := range p {
			if v > best {
				best, bi = v, j
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}
