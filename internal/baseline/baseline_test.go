package baseline

import (
	"math"
	"math/rand"
	"testing"

	"exdra/internal/data"
	"exdra/internal/matrix"
)

func toRows(m *matrix.Dense) [][]float64 {
	out := make([][]float64, m.Rows())
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	x, truth := data.Blobs(1, 300, 5, 3, 0.4)
	centroids, inertia, iters := KMeans(toRows(x), 3, 50, 7)
	if iters == 0 || inertia <= 0 {
		t.Fatal("no iterations / inertia")
	}
	// Each true blob should have a nearby centroid.
	blobMeans := map[int][]float64{}
	counts := map[int]int{}
	for i, c := range truth {
		if blobMeans[c] == nil {
			blobMeans[c] = make([]float64, 5)
		}
		for j := 0; j < 5; j++ {
			blobMeans[c][j] += x.At(i, j)
		}
		counts[c]++
	}
	for c, mean := range blobMeans {
		for j := range mean {
			mean[j] /= float64(counts[c])
		}
		best := math.Inf(1)
		for _, cent := range centroids {
			d := 0.0
			for j := range mean {
				diff := mean[j] - cent[j]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		if best > 1 {
			t.Fatalf("blob %d has no close centroid (d=%g)", c, best)
		}
	}
}

func TestPCAMatchesCoreEigensolver(t *testing.T) {
	x, _ := data.Blobs(2, 200, 8, 3, 1)
	comps, vals := PCA(toRows(x), 3)
	// Compare against the core library's Jacobi eigensolver.
	mu := x.ColMeans()
	centered := x.Sub(mu)
	cov := centered.TSMM().Scale(1 / float64(x.Rows()-1))
	wantVals, wantVecs := matrix.EigenSym(cov)
	for c := 0; c < 3; c++ {
		if math.Abs(vals[c]-wantVals.At(c, 0)) > 1e-6*wantVals.At(0, 0) {
			t.Fatalf("eigenvalue %d: %g want %g", c, vals[c], wantVals.At(c, 0))
		}
		// Eigenvector agreement up to sign.
		dot := 0.0
		for j := 0; j < 8; j++ {
			dot += comps[c][j] * wantVecs.At(j, c)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-6 {
			t.Fatalf("eigenvector %d disagrees (|dot|=%g)", c, math.Abs(dot))
		}
	}
}

func TestFFNLearns(t *testing.T) {
	x, y := data.MultiClass(3, 400, 8, 3)
	labels := make([]int, y.Rows())
	for i := range labels {
		labels[i] = int(y.At(i, 0)) - 1
	}
	f := NewFFN(8, 24, 3, 0.05, 0.9, 5)
	rng := rand.New(rand.NewSource(6))
	first := f.TrainEpoch(toRows(x), labels, 32, rng)
	var last float64
	for e := 0; e < 14; e++ {
		last = f.TrainEpoch(toRows(x), labels, 32, rng)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %g -> %g", first, last)
	}
	if acc := f.Accuracy(toRows(x), labels); acc < 0.9 {
		t.Fatalf("baseline FFN accuracy %g", acc)
	}
}

func TestCNNLearns(t *testing.T) {
	x, y := data.SyntheticMNIST(4, 200)
	labels := make([]int, y.Rows())
	for i := range labels {
		labels[i] = int(y.At(i, 0)) - 1
	}
	c := NewCNN(4, 10, 0.1, 7)
	rng := rand.New(rand.NewSource(8))
	first := c.TrainEpoch(toRows(x), labels, 32, rng)
	var last float64
	for e := 0; e < 4; e++ {
		last = c.TrainEpoch(toRows(x), labels, 32, rng)
	}
	if last >= first {
		t.Fatalf("CNN loss did not decrease: %g -> %g", first, last)
	}
	if acc := c.Accuracy(toRows(x), labels); acc < 0.5 {
		t.Fatalf("baseline CNN accuracy %g", acc)
	}
}
