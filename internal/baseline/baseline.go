// Package baseline provides independent, direct implementations of K-Means,
// PCA, FFN, and CNN that stand in for the Scikit-learn and TensorFlow
// comparators of Figure 7 in the ExDRa evaluation. They deliberately share
// no code with the engine/algo stack (plain float64-slice kernels, their
// own algorithms where sensible — e.g. power iteration instead of Jacobi
// for PCA), so the comparison isolates framework overhead the way the
// paper's best-of-breed system comparison does. See DESIGN.md,
// substitutions.
package baseline

import (
	"math"
	"math/rand"
)

// KMeans is a textbook per-point Lloyd's iteration over row slices,
// mirroring scikit-learn's dense K-Means loop structure.
func KMeans(rows [][]float64, k, maxIter int, seed int64) (centroids [][]float64, inertia float64, iters int) {
	rng := rand.New(rand.NewSource(seed))
	d := len(rows[0])
	centroids = make([][]float64, k)
	for i := range centroids {
		centroids[i] = append([]float64(nil), rows[rng.Intn(len(rows))]...)
	}
	assign := make([]int, len(rows))
	for iters = 0; iters < maxIter; iters++ {
		changed := false
		inertia = 0
		for i, r := range rows {
			best, bi := math.Inf(1), 0
			for c := range centroids {
				dist := 0.0
				for j := 0; j < d; j++ {
					diff := r[j] - centroids[c][j]
					dist += diff * diff
				}
				if dist < best {
					best, bi = dist, c
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
			inertia += best
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, r := range rows {
			c := assign[i]
			counts[c]++
			for j := 0; j < d; j++ {
				sums[c][j] += r[j]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := 0; j < d; j++ {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if !changed {
			iters++
			break
		}
	}
	return centroids, inertia, iters
}

// PCA computes the top-k principal components by power iteration with
// deflation on the centered covariance — a different eigen algorithm than
// the core library's Jacobi solver.
func PCA(rows [][]float64, k int) (components [][]float64, values []float64) {
	n, d := len(rows), len(rows[0])
	means := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, r := range rows {
		for i := 0; i < d; i++ {
			ci := r[i] - means[i]
			for j := i; j < d; j++ {
				cov[i][j] += ci * (r[j] - means[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= float64(n - 1)
			cov[j][i] = cov[i][j]
		}
	}
	components = make([][]float64, k)
	values = make([]float64, k)
	rng := rand.New(rand.NewSource(99))
	for c := 0; c < k; c++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		var lambda float64
		for it := 0; it < 500; it++ {
			w := make([]float64, d)
			for i := 0; i < d; i++ {
				for j := 0; j < d; j++ {
					w[i] += cov[i][j] * v[j]
				}
			}
			norm := 0.0
			for _, x := range w {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm == 0 {
				break
			}
			conv := 0.0
			for j := range w {
				w[j] /= norm
				conv += math.Abs(w[j] - v[j])
			}
			v = w
			lambda = norm
			if conv < 1e-12 {
				break
			}
		}
		components[c] = v
		values[c] = lambda
		// Deflate: cov -= lambda * v v^T.
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				cov[i][j] -= lambda * v[i] * v[j]
			}
		}
	}
	return components, values
}
