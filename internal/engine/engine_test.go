package engine_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"exdra/internal/engine"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

func cluster(t *testing.T) *fedtest.Cluster {
	t.Helper()
	cl, err := fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func fed(t *testing.T, cl *fedtest.Cluster, x *matrix.Dense, lvl privacy.Level) *federated.Matrix {
	t.Helper()
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, lvl)
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func TestDispatchLocalAndFederatedAgree(t *testing.T) {
	cl := cluster(t)
	rng := rand.New(rand.NewSource(1))
	x := matrix.Rand(rng, 20, 5, 0.5, 2)
	v := matrix.Randn(rng, 5, 1, 0, 1)
	fx := fed(t, cl, x, privacy.Public)

	// Same script, two backends.
	runScript := func(m engine.Mat) (float64, *matrix.Dense) {
		p := engine.MatMul(m, v)
		q := engine.Unary(matrix.USigmoid, p)
		s := engine.Sum(engine.Mul(q, q))
		g := engine.Local(engine.TMatMul(m, engine.Local(q)))
		return s, g
	}
	ls, lg := runScript(x)
	fs, fg := runScript(fx)
	if math.Abs(ls-fs) > 1e-9 || !lg.EqualApprox(fg, 1e-9) {
		t.Fatal("backends disagree")
	}
}

func TestIsFederatedAndLocal(t *testing.T) {
	cl := cluster(t)
	x := matrix.Fill(4, 2, 1)
	fx := fed(t, cl, x, privacy.Public)
	if engine.IsFederated(x) || !engine.IsFederated(fx) {
		t.Fatal("IsFederated")
	}
	if engine.Local(x) != x {
		t.Fatal("Local of dense should be identity")
	}
	if !engine.Local(fx).EqualApprox(x, 0) {
		t.Fatal("Local of federated")
	}
}

func TestGuardConvertsPanics(t *testing.T) {
	cl := cluster(t)
	x := matrix.Fill(4, 2, 1)
	fx := fed(t, cl, x, privacy.Private)
	err := func() (err error) {
		defer engine.Guard(&err)
		engine.Local(fx) // privacy violation -> engine panic
		return nil
	}()
	if err == nil {
		t.Fatal("Guard did not capture the failure")
	}
	var ee *engine.Error
	if !errors.As(err, &ee) {
		t.Fatalf("error type %T", err)
	}
	// Non-engine panics pass through.
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	func() {
		var err error
		defer engine.Guard(&err)
		panic("unrelated")
	}()
}

func TestBinaryMixedOperandOrders(t *testing.T) {
	cl := cluster(t)
	x := matrix.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	b := matrix.FromRows([][]float64{{10, 10}, {10, 10}, {10, 10}, {10, 10}})
	fx := fed(t, cl, x, privacy.Public)
	// local op fed (swap path).
	got := engine.Local(engine.Binary(matrix.OpSub, b, fx))
	if !got.EqualApprox(b.Sub(x), 0) {
		t.Fatal("local-fed binary")
	}
	// fed op local.
	got2 := engine.Local(engine.Binary(matrix.OpSub, fx, b))
	if !got2.EqualApprox(x.Sub(b), 0) {
		t.Fatal("fed-local binary")
	}
}

func TestTMatMulVariants(t *testing.T) {
	cl := cluster(t)
	rng := rand.New(rand.NewSource(2))
	x := matrix.Randn(rng, 16, 4, 0, 1)
	w := matrix.Randn(rng, 16, 3, 0, 1)
	want := x.Transpose().MatMul(w)
	fx := fed(t, cl, x, privacy.Public)
	if !engine.Local(engine.TMatMul(x, w)).EqualApprox(want, 1e-10) {
		t.Fatal("local tmatmul")
	}
	if !engine.Local(engine.TMatMul(fx, w)).EqualApprox(want, 1e-9) {
		t.Fatal("fed-local tmatmul")
	}
	fw := fed(t, cl, w, privacy.Public)
	if !engine.Local(engine.TMatMul(fx, fw)).EqualApprox(want, 1e-9) {
		t.Fatal("aligned fed-fed tmatmul")
	}
}

func TestSliceReplaceRowIndexMaxDispatch(t *testing.T) {
	cl := cluster(t)
	x := matrix.FromRows([][]float64{{0, 5}, {7, 1}, {2, 9}, {4, 4}})
	fx := fed(t, cl, x, privacy.Public)
	if !engine.Local(engine.Slice(fx, 1, 3, 0, 2)).EqualApprox(x.Slice(1, 3, 0, 2), 0) {
		t.Fatal("slice dispatch")
	}
	if !engine.Local(engine.Replace(fx, 0, -1)).EqualApprox(x.Replace(0, -1), 0) {
		t.Fatal("replace dispatch")
	}
	if !engine.Local(engine.RowIndexMax(fx)).EqualApprox(x.RowIndexMax(), 0) {
		t.Fatal("rowIndexMax dispatch")
	}
	if !engine.Local(engine.Softmax(fx)).EqualApprox(x.Softmax(), 1e-12) {
		t.Fatal("softmax dispatch")
	}
}

func TestFreeIsNoopForLocal(t *testing.T) {
	x := matrix.Fill(2, 2, 1)
	engine.Free(x) // must not panic
}
