package engine

import (
	"sync/atomic"
	"time"

	"exdra/internal/obs"
)

// instrument holds the active per-operation timing hook. It is nil by
// default: scripts pay one atomic load per operation and nothing else.
var instrument atomic.Pointer[func(op string, d time.Duration)]

// SetInstrumentation installs f as the engine's per-operation timing hook;
// every engine operation (mm, tsmm, binary, agg, ...) reports its opcode
// and wall time to f on completion. Pass nil to turn instrumentation off.
// The hook must be safe for concurrent use.
func SetInstrumentation(f func(op string, d time.Duration)) {
	if f == nil {
		instrument.Store(nil)
		return
	}
	instrument.Store(&f)
}

// OpTimer builds an instrumentation hook that observes each operation into
// reg as a latency histogram named prefix+op (the binaries use it with
// prefix "engine.op_seconds." when -metrics-addr is set).
func OpTimer(reg *obs.Registry, prefix string) func(op string, d time.Duration) {
	return func(op string, d time.Duration) {
		reg.Histogram(prefix+op, obs.LatencyBuckets).Observe(d.Seconds())
	}
}

// timeOp starts timing one operation, returning the completion callback —
// or nil when instrumentation is off, so callers skip the defer entirely.
func timeOp(op string) func() {
	f := instrument.Load()
	if f == nil {
		return nil
	}
	start := time.Now()
	return func() { (*f)(op, time.Since(start)) }
}
