// Package engine is the hybrid-plan dispatch layer of ExDRa-Go, standing in
// for SystemDS' compiler (§4.2): backend-agnostic matrix operations that
// execute locally on *matrix.Dense inputs and compile to federated
// instructions on *federated.Matrix inputs. ML algorithm "scripts" (package
// algo) are written once against these operations and run unchanged on
// local, LAN-federated, or WAN-federated data — the paper's central design
// point ("this built-in function script is agnostic of local, distributed,
// or federated input matrices").
//
// Operations panic with an *Error on federated failures; algorithm entry
// points convert them back to errors via Guard.
package engine

import (
	"fmt"

	"exdra/internal/federated"
	"exdra/internal/matrix"
)

// Mat is a local or federated matrix.
type Mat interface {
	Rows() int
	Cols() int
}

// Error wraps a federated runtime failure raised inside an engine operation.
type Error struct{ Err error }

func (e *Error) Error() string { return e.Err.Error() }

// Unwrap returns the underlying error.
func (e *Error) Unwrap() error { return e.Err }

// Guard converts an engine panic back into an error; algorithm entry points
// use it as `defer engine.Guard(&err)` so scripts read like DML while
// failures still surface as ordinary errors.
func Guard(err *error) {
	if r := recover(); r != nil {
		if e, ok := r.(*Error); ok {
			*err = e
			return
		}
		panic(r)
	}
}

func fail(err error) {
	//lint:ignore nopanic engine throw: Guard converts it back to an error at every algorithm entry point
	panic(&Error{Err: err})
}

// Fail aborts the current engine operation with err. It is the one
// sanctioned way to raise a failure from engine-style code (lazy graphs,
// pipeline plumbing) that executes under a deferred Guard; it never
// returns.
func Fail(err error) {
	fail(err)
}

// Failf is Fail with fmt.Errorf formatting.
func Failf(format string, args ...any) {
	fail(fmt.Errorf(format, args...))
}

func must[T any](v T, err error) T {
	if err != nil {
		fail(err)
	}
	return v
}

// IsFederated reports whether a matrix is federated.
func IsFederated(a Mat) bool {
	_, ok := a.(*federated.Matrix)
	return ok
}

// Local returns a local view of a — the identity for dense matrices and a
// privacy-checked consolidation for federated ones (§4.1 pin-into-memory).
func Local(a Mat) *matrix.Dense {
	switch m := a.(type) {
	case *matrix.Dense:
		return m
	case *federated.Matrix:
		return must(m.Consolidate())
	default:
		fail(fmt.Errorf("engine: unknown matrix type %T", a))
		return nil
	}
}

// Free releases worker-side partitions of federated intermediates; it is a
// no-op for local matrices.
func Free(ms ...Mat) {
	for _, a := range ms {
		if f, ok := a.(*federated.Matrix); ok {
			_ = f.Free()
		}
	}
}

// MatMul computes a %*% b. Federated left inputs keep the product federated
// when row-partitioned (broadcast right-hand side); a federated right input
// is consolidated per §4.2 ("some of them are consolidated in the
// coordinator").
func MatMul(a, b Mat) Mat {
	if done := timeOp("mm"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		return x.MatMul(Local(b))
	case *federated.Matrix:
		fed, local, err := x.MatVec(Local(b))
		if err != nil {
			fail(err)
		}
		if fed != nil {
			return fed
		}
		return local
	default:
		fail(fmt.Errorf("engine: matmul on %T", a))
		return nil
	}
}

// TMatMul computes t(a) %*% b. Aligned federated-federated inputs multiply
// fully federated (the t(P) %*% X pattern of Example 3); a federated left
// with a local right uses sliced broadcasts (the vector-matrix pattern of
// Example 2).
func TMatMul(a, b Mat) Mat {
	if done := timeOp("tmm"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		return x.Transpose().MatMul(Local(b))
	case *federated.Matrix:
		if fb, ok := b.(*federated.Matrix); ok {
			return must(x.AlignedTMM(fb))
		}
		return must(x.TMatVec(Local(b)))
	default:
		fail(fmt.Errorf("engine: tmatmul on %T", a))
		return nil
	}
}

// TSMM computes t(x) %*% x (always a local cols x cols aggregate).
func TSMM(x Mat) *matrix.Dense {
	if done := timeOp("tsmm"); done != nil {
		defer done()
	}
	switch m := x.(type) {
	case *matrix.Dense:
		return m.TSMM()
	case *federated.Matrix:
		return must(m.TSMM())
	default:
		fail(fmt.Errorf("engine: tsmm on %T", x))
		return nil
	}
}

// MMChain computes t(x) %*% (w * (x %*% v)) fused (w may be nil).
func MMChain(x Mat, v, w *matrix.Dense) *matrix.Dense {
	if done := timeOp("mmchain"); done != nil {
		defer done()
	}
	switch m := x.(type) {
	case *matrix.Dense:
		return m.MMChain(v, w)
	case *federated.Matrix:
		return must(m.MMChain(v, w))
	default:
		fail(fmt.Errorf("engine: mmchain on %T", x))
		return nil
	}
}

// Transpose computes t(a).
func Transpose(a Mat) Mat {
	if done := timeOp("t"); done != nil {
		defer done()
	}
	switch m := a.(type) {
	case *matrix.Dense:
		return m.Transpose()
	case *federated.Matrix:
		return must(m.Transpose())
	default:
		fail(fmt.Errorf("engine: transpose on %T", a))
		return nil
	}
}

// Binary applies an element-wise binary operation with broadcasting. Any
// combination of local and federated operands is supported; fed-fed inputs
// must be aligned or the second is consolidated (per §4.2).
func Binary(op matrix.BinaryOp, a, b Mat) Mat {
	if done := timeOp("binary"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		if fb, ok := b.(*federated.Matrix); ok {
			// local op fed: execute federated with swapped operands.
			return must(fb.BinaryLocal(op, x, true))
		}
		return x.Binary(op, b.(*matrix.Dense))
	case *federated.Matrix:
		if fb, ok := b.(*federated.Matrix); ok {
			return must(x.Binary(op, fb))
		}
		return must(x.BinaryLocal(op, b.(*matrix.Dense), false))
	default:
		fail(fmt.Errorf("engine: binary on %T", a))
		return nil
	}
}

// BinaryScalar applies an element-wise operation against a scalar; swap
// makes the scalar the left operand.
func BinaryScalar(op matrix.BinaryOp, a Mat, s float64, swap bool) Mat {
	if done := timeOp("binary_scalar"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		return x.BinaryScalar(op, s, swap)
	case *federated.Matrix:
		return must(x.BinaryScalar(op, s, swap))
	default:
		fail(fmt.Errorf("engine: scalar op on %T", a))
		return nil
	}
}

// Unary applies an element-wise unary operation.
func Unary(op matrix.UnaryOp, a Mat) Mat {
	if done := timeOp("unary"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		return x.Unary(op)
	case *federated.Matrix:
		return must(x.Unary(op))
	default:
		fail(fmt.Errorf("engine: unary on %T", a))
		return nil
	}
}

// Softmax applies row-wise softmax.
func Softmax(a Mat) Mat {
	if done := timeOp("softmax"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		return x.Softmax()
	case *federated.Matrix:
		return must(x.Softmax())
	default:
		fail(fmt.Errorf("engine: softmax on %T", a))
		return nil
	}
}

// Agg computes a full aggregate.
func Agg(op matrix.AggOp, a Mat) float64 {
	if done := timeOp("agg"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		return x.Agg(op)
	case *federated.Matrix:
		return must(x.AggFull(op))
	default:
		fail(fmt.Errorf("engine: agg on %T", a))
		return 0
	}
}

// Sum computes the sum of all cells.
func Sum(a Mat) float64 { return Agg(matrix.AggSum, a) }

// RowAgg computes per-row aggregates (stays federated on row partitions).
func RowAgg(op matrix.AggOp, a Mat) Mat {
	if done := timeOp("row_agg"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		return x.RowAgg(op)
	case *federated.Matrix:
		fed, local, err := x.RowAgg(op)
		if err != nil {
			fail(err)
		}
		if fed != nil {
			return fed
		}
		return local
	default:
		fail(fmt.Errorf("engine: rowAgg on %T", a))
		return nil
	}
}

// ColAgg computes per-column aggregates as a local 1 x cols vector for
// row-partitioned (and local) inputs.
func ColAgg(op matrix.AggOp, a Mat) Mat {
	if done := timeOp("col_agg"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		return x.ColAgg(op)
	case *federated.Matrix:
		fed, local, err := x.ColAgg(op)
		if err != nil {
			fail(err)
		}
		if local != nil {
			return local
		}
		return fed
	default:
		fail(fmt.Errorf("engine: colAgg on %T", a))
		return nil
	}
}

// RowIndexMax returns the 1-based argmax column per row.
func RowIndexMax(a Mat) Mat {
	if done := timeOp("row_index_max"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		return x.RowIndexMax()
	case *federated.Matrix:
		return must(x.RowIndexMax())
	default:
		fail(fmt.Errorf("engine: rowIndexMax on %T", a))
		return nil
	}
}

// Slice extracts [rowBeg:rowEnd, colBeg:colEnd).
func Slice(a Mat, rowBeg, rowEnd, colBeg, colEnd int) Mat {
	if done := timeOp("slice"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		return x.Slice(rowBeg, rowEnd, colBeg, colEnd)
	case *federated.Matrix:
		return must(x.Slice(rowBeg, rowEnd, colBeg, colEnd))
	default:
		fail(fmt.Errorf("engine: slice on %T", a))
		return nil
	}
}

// Replace substitutes pattern cells.
func Replace(a Mat, pattern, repl float64) Mat {
	if done := timeOp("replace"); done != nil {
		defer done()
	}
	switch x := a.(type) {
	case *matrix.Dense:
		return x.Replace(pattern, repl)
	case *federated.Matrix:
		return must(x.Replace(pattern, repl))
	default:
		fail(fmt.Errorf("engine: replace on %T", a))
		return nil
	}
}

// Convenience element-wise wrappers, mirroring DML operators.

// Add computes a + b.
func Add(a, b Mat) Mat { return Binary(matrix.OpAdd, a, b) }

// Sub computes a - b.
func Sub(a, b Mat) Mat { return Binary(matrix.OpSub, a, b) }

// Mul computes a * b element-wise.
func Mul(a, b Mat) Mat { return Binary(matrix.OpMul, a, b) }

// Div computes a / b element-wise.
func Div(a, b Mat) Mat { return Binary(matrix.OpDiv, a, b) }

// Scale computes a * s.
func Scale(a Mat, s float64) Mat { return BinaryScalar(matrix.OpMul, a, s, false) }
