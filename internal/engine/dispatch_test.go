package engine_test

import (
	"math"
	"math/rand"
	"testing"

	"exdra/internal/engine"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

func TestAggAndColRowAggDispatch(t *testing.T) {
	cl := cluster(t)
	rng := rand.New(rand.NewSource(5))
	x := matrix.Rand(rng, 18, 4, 0.5, 2)
	fx := fed(t, cl, x, privacy.Public)

	for _, op := range []matrix.AggOp{matrix.AggSum, matrix.AggMin, matrix.AggMax,
		matrix.AggMean, matrix.AggVar, matrix.AggSD} {
		if math.Abs(engine.Agg(op, x)-engine.Agg(op, fx)) > 1e-9 {
			t.Errorf("agg %v dispatch", op)
		}
		lr := engine.Local(engine.RowAgg(op, x))
		fr := engine.Local(engine.RowAgg(op, fx))
		if !lr.EqualApprox(fr, 1e-9) {
			t.Errorf("rowAgg %v dispatch", op)
		}
		lc := engine.Local(engine.ColAgg(op, x))
		fc := engine.Local(engine.ColAgg(op, fx))
		if !lc.EqualApprox(fc, 1e-9) {
			t.Errorf("colAgg %v dispatch", op)
		}
	}
	if engine.Sum(fx) != engine.Agg(matrix.AggSum, fx) {
		t.Error("Sum wrapper")
	}
}

func TestKernelDispatch(t *testing.T) {
	cl := cluster(t)
	rng := rand.New(rand.NewSource(6))
	x := matrix.Randn(rng, 20, 5, 0, 1)
	v := matrix.Randn(rng, 5, 1, 0, 1)
	w := matrix.Randn(rng, 20, 1, 0, 1)
	fx := fed(t, cl, x, privacy.Public)

	if !engine.TSMM(fx).EqualApprox(engine.TSMM(x), 1e-9) {
		t.Error("tsmm dispatch")
	}
	if !engine.MMChain(fx, v, w).EqualApprox(engine.MMChain(x, v, w), 1e-9) {
		t.Error("mmchain dispatch")
	}
	lt := engine.Local(engine.Transpose(x))
	ft := engine.Local(engine.Transpose(fx))
	if !lt.EqualApprox(ft, 0) {
		t.Error("transpose dispatch")
	}
	// MatMul with a federated right-hand side consolidates it (§4.2).
	fv := fed(t, cl, v, privacy.Public)
	got := engine.Local(engine.MatMul(x, fv))
	if !got.EqualApprox(x.MatMul(v), 1e-9) {
		t.Error("local x fed matmul")
	}
}

func TestConvenienceWrappers(t *testing.T) {
	a := matrix.FromRows([][]float64{{4, 9}})
	b := matrix.FromRows([][]float64{{2, 3}})
	if !engine.Add(a, b).(*matrix.Dense).EqualApprox(matrix.RowVector([]float64{6, 12}), 0) {
		t.Error("Add")
	}
	if !engine.Sub(a, b).(*matrix.Dense).EqualApprox(matrix.RowVector([]float64{2, 6}), 0) {
		t.Error("Sub")
	}
	if !engine.Mul(a, b).(*matrix.Dense).EqualApprox(matrix.RowVector([]float64{8, 27}), 0) {
		t.Error("Mul")
	}
	if !engine.Div(a, b).(*matrix.Dense).EqualApprox(matrix.RowVector([]float64{2, 3}), 0) {
		t.Error("Div")
	}
	if !engine.Scale(a, 0.5).(*matrix.Dense).EqualApprox(matrix.RowVector([]float64{2, 4.5}), 0) {
		t.Error("Scale")
	}
	if !engine.Unary(matrix.USqrt, a).(*matrix.Dense).EqualApprox(matrix.RowVector([]float64{2, 3}), 0) {
		t.Error("Unary")
	}
	if !engine.BinaryScalar(matrix.OpAdd, a, 1, false).(*matrix.Dense).EqualApprox(matrix.RowVector([]float64{5, 10}), 0) {
		t.Error("BinaryScalar")
	}
}

// badMat triggers the unknown-type failure paths.
type badMat struct{}

func (badMat) Rows() int { return 1 }
func (badMat) Cols() int { return 1 }

func TestUnknownMatTypeFails(t *testing.T) {
	funcs := map[string]func(){
		"Local":       func() { engine.Local(badMat{}) },
		"MatMul":      func() { engine.MatMul(badMat{}, matrix.Fill(1, 1, 1)) },
		"TMatMul":     func() { engine.TMatMul(badMat{}, matrix.Fill(1, 1, 1)) },
		"TSMM":        func() { engine.TSMM(badMat{}) },
		"MMChain":     func() { engine.MMChain(badMat{}, matrix.Fill(1, 1, 1), nil) },
		"Transpose":   func() { engine.Transpose(badMat{}) },
		"Binary":      func() { engine.Binary(matrix.OpAdd, badMat{}, badMat{}) },
		"Scalar":      func() { engine.BinaryScalar(matrix.OpAdd, badMat{}, 1, false) },
		"Unary":       func() { engine.Unary(matrix.UAbs, badMat{}) },
		"Softmax":     func() { engine.Softmax(badMat{}) },
		"Agg":         func() { engine.Agg(matrix.AggSum, badMat{}) },
		"RowAgg":      func() { engine.RowAgg(matrix.AggSum, badMat{}) },
		"ColAgg":      func() { engine.ColAgg(matrix.AggSum, badMat{}) },
		"RowIndexMax": func() { engine.RowIndexMax(badMat{}) },
		"Slice":       func() { engine.Slice(badMat{}, 0, 1, 0, 1) },
		"Replace":     func() { engine.Replace(badMat{}, 0, 1) },
	}
	for name, fn := range funcs {
		err := func() (err error) {
			defer engine.Guard(&err)
			fn()
			return nil
		}()
		if err == nil {
			t.Errorf("%s accepted unknown matrix type", name)
		}
	}
}
