package engine_test

import (
	"sync"
	"testing"
	"time"

	"exdra/internal/engine"
	"exdra/internal/matrix"
	"exdra/internal/obs"
)

func TestInstrumentationHookObservesOps(t *testing.T) {
	reg := obs.New()
	engine.SetInstrumentation(engine.OpTimer(reg, "engine.op_seconds."))
	defer engine.SetInstrumentation(nil)

	a := matrix.NewDense(4, 3)
	b := matrix.NewDense(3, 2)
	_ = engine.MatMul(a, b)
	_ = engine.TSMM(a)
	_ = engine.Sum(a)

	snap := reg.Snapshot()
	for _, name := range []string{"engine.op_seconds.mm", "engine.op_seconds.tsmm", "engine.op_seconds.agg"} {
		if snap.Histograms[name].Count < 1 {
			t.Fatalf("%s not observed: %v", name, snap.Histograms)
		}
	}
}

func TestInstrumentationOffByDefault(t *testing.T) {
	var mu sync.Mutex
	seen := 0
	engine.SetInstrumentation(func(string, time.Duration) { mu.Lock(); seen++; mu.Unlock() })
	engine.SetInstrumentation(nil)
	_ = engine.TSMM(matrix.NewDense(2, 2))
	mu.Lock()
	defer mu.Unlock()
	if seen != 0 {
		t.Fatalf("cleared hook still fired %d times", seen)
	}
}
