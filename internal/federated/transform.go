package federated

import (
	"fmt"

	"exdra/internal/fedrpc"
	"exdra/internal/frame"
	"exdra/internal/privacy"
	"exdra/internal/transform"
	"exdra/internal/worker"
)

// Frame is a row-partitioned federated frame of raw, heterogeneous data at
// the federated sites.
type Frame struct {
	c  *Coordinator
	fm FedMap
}

// Rows returns the total row count.
func (f *Frame) Rows() int { return f.fm.Rows }

// Cols returns the column count.
func (f *Frame) Cols() int { return f.fm.Cols }

// Map returns a copy of the federation map.
func (f *Frame) Map() FedMap {
	fm := f.fm
	fm.Partitions = append([]Partition(nil), f.fm.Partitions...)
	return fm
}

// DistributeFrame splits a local frame row-wise across worker addresses and
// PUTs the partitions (test/benchmark constructor).
func DistributeFrame(c *Coordinator, fr *frame.Frame, addrs []string, level privacy.Level) (*Frame, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("federated: no worker addresses")
	}
	n := len(addrs)
	if fr.NumRows() < n {
		return nil, fmt.Errorf("federated: cannot split %d rows across %d workers", fr.NumRows(), n)
	}
	fm := FedMap{Rows: fr.NumRows(), Cols: fr.NumCols()}
	beg := 0
	for i, addr := range addrs {
		size := fr.NumRows() / n
		if i < fr.NumRows()%n {
			size++
		}
		end := beg + size
		id := c.NewID()
		if _, err := c.callOne(addr, fedrpc.Request{
			Type: fedrpc.Put, ID: id, Privacy: int(level),
			Data: fedrpc.FramePayload(fr.SliceRows(beg, end)),
		}); err != nil {
			// Reclaim the partitions already placed on other workers so an
			// aborted distribute leaves no worker-side state behind.
			c.freePartitions(fm.Partitions)
			return nil, err
		}
		fm.Partitions = append(fm.Partitions, Partition{
			Range:  Range{RowBeg: beg, RowEnd: end, ColBeg: 0, ColEnd: fr.NumCols()},
			Addr:   addr,
			DataID: id,
		})
		beg = end
	}
	return &Frame{c: c, fm: fm}, nil
}

// ReadFrames builds a row-partitioned federated frame from raw CSV files at
// the federated sites without moving raw data.
func ReadFrames(c *Coordinator, specs []ReadSpec) (*Frame, error) {
	fm := FedMap{}
	row := 0
	for i, spec := range specs {
		id := c.NewID()
		// abort reclaims the frames already read, plus the in-flight ID.
		abort := func() {
			parts := append([]Partition(nil), fm.Partitions...)
			c.freePartitions(append(parts, Partition{Addr: spec.Addr, DataID: id}))
		}
		resps, err := c.call(spec.Addr, []fedrpc.Request{
			{Type: fedrpc.Read, ID: id, Filename: spec.Filename, Privacy: int(spec.Privacy)},
			{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{Name: "obj_dims", Inputs: []int64{id}}},
		})
		if err != nil {
			abort()
			return nil, err
		}
		for _, r := range resps {
			if !r.OK {
				abort()
				return nil, fmt.Errorf("federated: read %s at %s: %s", spec.Filename, spec.Addr, r.Err)
			}
		}
		dims := resps[1].Data.Matrix()
		rows, cols := int(dims.At(0, 0)), int(dims.At(0, 1))
		if i == 0 {
			fm.Cols = cols
		} else if cols != fm.Cols {
			return nil, fmt.Errorf("federated: %s has %d columns, want %d", spec.Filename, cols, fm.Cols)
		}
		fm.Partitions = append(fm.Partitions, Partition{
			Range:  Range{RowBeg: row, RowEnd: row + rows, ColBeg: 0, ColEnd: cols},
			Addr:   spec.Addr,
			DataID: id,
		})
		row += rows
	}
	fm.Rows = row
	return &Frame{c: c, fm: fm}, nil
}

// Consolidate transfers all frame partitions to the coordinator and stacks
// them (subject to the workers' privacy constraints).
func (f *Frame) Consolidate() (*frame.Frame, error) {
	resps, err := f.c.parallelCall(f.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{{Type: fedrpc.Get, ID: p.DataID}}
	})
	if err != nil {
		return nil, err
	}
	parts := make([]*frame.Frame, len(resps))
	for i, rs := range resps {
		fr, err := rs[0].Data.ToFrame()
		if err != nil {
			return nil, err
		}
		parts[i] = fr
	}
	return frame.RBind(parts...)
}

// TransformEncode runs the two-pass federated transformencode of §4.4
// (Figure 3). Pass 1: every worker builds encoder-specific partial metadata
// (distinct items, min/max) over its frame partition. The coordinator
// consolidates and sorts the metadata, assigning contiguous codes and bin
// boundaries. Pass 2: the global metadata is broadcast and each worker
// encodes its partition in place. The outputs are a federated encoded
// matrix with consistently aligned feature positions and the local global
// metadata.
func (f *Frame) TransformEncode(spec transform.Spec, colOrder []string) (*Matrix, *transform.Meta, error) {
	// Pass 1: partial metadata per site (EXEC_UDF tf_build_partial).
	buildArgs, err := worker.EncodeArgs(worker.TFBuildArgs{Spec: spec})
	if err != nil {
		return nil, nil, err
	}
	resps, err := f.c.parallelCall(f.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
			Name: "tf_build_partial", Inputs: []int64{p.DataID}, Args: buildArgs,
		}}}
	})
	if err != nil {
		return nil, nil, err
	}
	partials := make([]transform.PartialMeta, len(resps))
	for i, rs := range resps {
		if err := worker.DecodeArgs(rs[0].Data.Bytes, &partials[i]); err != nil {
			return nil, nil, fmt.Errorf("federated: decode partial metadata: %w", err)
		}
	}

	// Consolidate: merge, sort, assign codes (coordinator-side).
	meta := transform.Merge(spec, colOrder, partials...)

	// Pass 2: broadcast global metadata; encode per partition (tf_apply).
	applyArgs, err := worker.EncodeArgs(worker.TFApplyArgs{Meta: meta})
	if err != nil {
		return nil, nil, err
	}
	outIDs := make([]int64, len(f.fm.Partitions))
	for i := range outIDs {
		outIDs[i] = f.c.NewID()
	}
	_, err = f.c.parallelCall(f.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
			Name: "tf_apply", Inputs: []int64{p.DataID}, Output: outIDs[i], Args: applyArgs,
		}}}
	})
	if err != nil {
		return nil, nil, err
	}
	fm := FedMap{Rows: f.fm.Rows, Cols: meta.NumOutputCols()}
	for i, p := range f.fm.Partitions {
		fm.Partitions = append(fm.Partitions, Partition{
			Range: Range{RowBeg: p.Range.RowBeg, RowEnd: p.Range.RowEnd,
				ColBeg: 0, ColEnd: meta.NumOutputCols()},
			Addr:   p.Addr,
			DataID: outIDs[i],
		})
	}
	x, err := FromMap(f.c, fm)
	if err != nil {
		return nil, nil, err
	}
	return x, meta, nil
}

// TransformDecode reverses a federated encoding (DML transformdecode): each
// worker decodes its encoded matrix partition back into a raw frame under
// the broadcast global metadata. The decoded frame stays federated.
func TransformDecode(x *Matrix, meta *transform.Meta) (*Frame, error) {
	if x.Scheme() != RowPartitioned {
		return nil, fmt.Errorf("federated: transformdecode requires row partitioning")
	}
	args, err := worker.EncodeArgs(worker.TFApplyArgs{Meta: meta})
	if err != nil {
		return nil, err
	}
	outIDs := make([]int64, len(x.fm.Partitions))
	for i := range outIDs {
		outIDs[i] = x.c.NewID()
	}
	_, err = x.c.parallelCall(x.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
			Name: "tf_decode", Inputs: []int64{p.DataID}, Output: outIDs[i], Args: args,
		}}}
	})
	if err != nil {
		return nil, err
	}
	fm := FedMap{Rows: x.fm.Rows, Cols: len(meta.ColOrder)}
	for i, p := range x.fm.Partitions {
		fm.Partitions = append(fm.Partitions, Partition{
			Range: Range{RowBeg: p.Range.RowBeg, RowEnd: p.Range.RowEnd,
				ColBeg: 0, ColEnd: len(meta.ColOrder)},
			Addr:   p.Addr,
			DataID: outIDs[i],
		})
	}
	return &Frame{c: x.c, fm: fm}, nil
}
