package federated

import (
	"fmt"

	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
)

// This file implements federated linear algebra (ExDRa §4.2): matrix
// multiplication variants composed from broadcast / sliced-broadcast PUTs,
// per-partition EXEC_INSTs, GETs of partial results, and coordinator-side
// aggregation — exactly the strategies of Example 2 in the paper. Each
// federated operation is one RPC per worker, issued in parallel, with
// broadcast intermediates cleaned up via rmvar in the same request batch.

// MatVec computes X %*% v for local v (matrix-vector, or matrix-matrix with
// a small right-hand side). For row-partitioned X the full v is broadcast
// and the output remains federated (logical rbind of the partition
// results). For column-partitioned X, v is slice-broadcast by column ranges
// and the partial n x k products are summed at the coordinator, yielding a
// local result. Exactly one of the two results is non-nil.
func (m *Matrix) MatVec(v *matrix.Dense) (*Matrix, *matrix.Dense, error) {
	if v.Rows() != m.Cols() {
		return nil, nil, fmt.Errorf("federated: matvec %dx%d by %dx%d", m.Rows(), m.Cols(), v.Rows(), v.Cols())
	}
	switch m.Scheme() {
	case RowPartitioned:
		outIDs := m.newIDs()
		_, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
			bid := m.c.NewID()
			return []fedrpc.Request{
				{Type: fedrpc.Put, ID: bid, Data: fedrpc.MatrixPayload(v)},
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
					Opcode: "mm", Inputs: []int64{p.DataID, bid}, Output: outIDs[i]}},
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{bid}}},
			}
		})
		if err != nil {
			return nil, nil, err
		}
		out := m.derive(m.Rows(), v.Cols(), outIDs, func(r Range) Range {
			return Range{RowBeg: r.RowBeg, RowEnd: r.RowEnd, ColBeg: 0, ColEnd: v.Cols()}
		})
		return out, nil, nil
	case ColPartitioned:
		resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
			bid, oid := m.c.NewID(), m.c.NewID()
			vs := v.SliceRows(p.Range.ColBeg, p.Range.ColEnd)
			return []fedrpc.Request{
				{Type: fedrpc.Put, ID: bid, Data: fedrpc.MatrixPayload(vs)},
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
					Opcode: "mm", Inputs: []int64{p.DataID, bid}, Output: oid}},
				{Type: fedrpc.Get, ID: oid},
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{bid, oid}}},
			}
		})
		if err != nil {
			return nil, nil, err
		}
		sum := matrix.NewDense(m.Rows(), v.Cols())
		for _, rs := range resps {
			sum.AddInPlace(rs[2].Data.Matrix())
		}
		return nil, sum, nil
	default:
		return nil, nil, fmt.Errorf("federated: matvec on irregular partitioning unsupported")
	}
}

// TMatVec computes t(X) %*% b for local b with nrow(b) == nrow(X) — the
// vector-matrix pattern of Example 2. For row-partitioned X, b is
// slice-broadcast by row ranges; partial cols x k results are summed at the
// coordinator.
func (m *Matrix) TMatVec(b *matrix.Dense) (*matrix.Dense, error) {
	if b.Rows() != m.Rows() {
		return nil, fmt.Errorf("federated: tmatvec %dx%d by %dx%d", m.Rows(), m.Cols(), b.Rows(), b.Cols())
	}
	switch m.Scheme() {
	case RowPartitioned:
		resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
			bid, oid := m.c.NewID(), m.c.NewID()
			bs := b.SliceRows(p.Range.RowBeg, p.Range.RowEnd)
			return []fedrpc.Request{
				{Type: fedrpc.Put, ID: bid, Data: fedrpc.MatrixPayload(bs)},
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
					Opcode: "tmm", Inputs: []int64{p.DataID, bid}, Output: oid}},
				{Type: fedrpc.Get, ID: oid},
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{bid, oid}}},
			}
		})
		if err != nil {
			return nil, err
		}
		sum := matrix.NewDense(m.Cols(), b.Cols())
		for _, rs := range resps {
			sum.AddInPlace(rs[2].Data.Matrix())
		}
		return sum, nil
	case ColPartitioned:
		// Each partition computes t(X_j) %*% b over all rows; results stack
		// by column ranges.
		resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
			bid, oid := m.c.NewID(), m.c.NewID()
			return []fedrpc.Request{
				{Type: fedrpc.Put, ID: bid, Data: fedrpc.MatrixPayload(b)},
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
					Opcode: "tmm", Inputs: []int64{p.DataID, bid}, Output: oid}},
				{Type: fedrpc.Get, ID: oid},
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{bid, oid}}},
			}
		})
		if err != nil {
			return nil, err
		}
		out := matrix.NewDense(m.Cols(), b.Cols())
		for i, rs := range resps {
			out.SetSlice(m.fm.Partitions[i].Range.ColBeg, 0, rs[2].Data.Matrix())
		}
		return out, nil
	default:
		return nil, fmt.Errorf("federated: tmatvec on irregular partitioning unsupported")
	}
}

// TSMM computes t(X) %*% X by summing per-partition tsmm partials at the
// coordinator (row-partitioned only; the result is a cols x cols aggregate).
func (m *Matrix) TSMM() (*matrix.Dense, error) {
	if m.Scheme() != RowPartitioned {
		return nil, fmt.Errorf("federated: tsmm requires row partitioning, have %s", m.Scheme())
	}
	resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		oid := m.c.NewID()
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "tsmm", Inputs: []int64{p.DataID}, Output: oid}},
			{Type: fedrpc.Get, ID: oid},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{oid}}},
		}
	})
	if err != nil {
		return nil, err
	}
	sum := matrix.NewDense(m.Cols(), m.Cols())
	for _, rs := range resps {
		sum.AddInPlace(rs[1].Data.Matrix())
	}
	return sum, nil
}

// MMChain computes the fused t(X) %*% (w * (X %*% v)) (w may be nil) with a
// single broadcast of v (and sliced w), one fused per-partition kernel, and
// coordinator-side summation — the inner pattern of LM and MLogReg.
func (m *Matrix) MMChain(v, w *matrix.Dense) (*matrix.Dense, error) {
	if m.Scheme() != RowPartitioned {
		return nil, fmt.Errorf("federated: mmchain requires row partitioning")
	}
	if v.Rows() != m.Cols() {
		return nil, fmt.Errorf("federated: mmchain v is %dx%d, want %dx1", v.Rows(), v.Cols(), m.Cols())
	}
	resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		vid, oid := m.c.NewID(), m.c.NewID()
		reqs := []fedrpc.Request{
			{Type: fedrpc.Put, ID: vid, Data: fedrpc.MatrixPayload(v)},
		}
		inputs := []int64{p.DataID, vid}
		clean := []int64{vid}
		if w != nil {
			wid := m.c.NewID()
			ws := w.SliceRows(p.Range.RowBeg, p.Range.RowEnd)
			reqs = append(reqs, fedrpc.Request{Type: fedrpc.Put, ID: wid, Data: fedrpc.MatrixPayload(ws)})
			inputs = append(inputs, wid)
			clean = append(clean, wid)
		}
		clean = append(clean, oid)
		reqs = append(reqs,
			fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "mmchain", Inputs: inputs, Output: oid}},
			fedrpc.Request{Type: fedrpc.Get, ID: oid},
			fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: clean}},
		)
		return reqs
	})
	if err != nil {
		return nil, err
	}
	sum := matrix.NewDense(m.Cols(), 1)
	for _, rs := range resps {
		sum.AddInPlace(rs[len(rs)-2].Data.Matrix())
	}
	return sum, nil
}

// AlignedTMM computes t(P) %*% X for two co-partitioned federated matrices
// (e.g. the K-Means centroid update of Example 3): each worker multiplies
// its aligned partitions locally, and the coordinator sums the aggregates.
func (p *Matrix) AlignedTMM(x *Matrix) (*matrix.Dense, error) {
	if !AlignedRows(p.fm, x.fm) {
		return nil, fmt.Errorf("federated: matrices are not co-partitioned")
	}
	ps, xs := p.fm.sorted(), x.fm.sorted()
	parts := make([]Partition, len(ps))
	copy(parts, ps)
	resps, err := p.c.parallelCall(parts, func(i int, pp Partition) []fedrpc.Request {
		oid := p.c.NewID()
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "tmm", Inputs: []int64{pp.DataID, xs[i].DataID}, Output: oid}},
			{Type: fedrpc.Get, ID: oid},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{oid}}},
		}
	})
	if err != nil {
		return nil, err
	}
	sum := matrix.NewDense(p.Cols(), x.Cols())
	for _, rs := range resps {
		sum.AddInPlace(rs[1].Data.Matrix())
	}
	return sum, nil
}

// Transpose transposes each partition in place at its worker and flips the
// federation map, turning row partitioning into column partitioning and
// vice versa.
func (m *Matrix) Transpose() (*Matrix, error) {
	outIDs := m.newIDs()
	_, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "t", Inputs: []int64{p.DataID}, Output: outIDs[i]}},
		}
	})
	if err != nil {
		return nil, err
	}
	out := m.derive(m.Cols(), m.Rows(), outIDs, func(r Range) Range {
		return Range{RowBeg: r.ColBeg, RowEnd: r.ColEnd, ColBeg: r.RowBeg, ColEnd: r.RowEnd}
	})
	return out, nil
}
