package federated

import (
	"errors"
	"testing"
	"time"

	"exdra/internal/fedrpc"
	"exdra/internal/obs"
)

// newBreakerCoord builds a coordinator with an isolated registry and the
// given breaker policy — no network involved; these tests drive the state
// machine directly through the coordinator's breaker hooks.
func newBreakerCoord(p BreakerPolicy) *Coordinator {
	c := NewCoordinator(fedrpc.Options{Metrics: obs.New()})
	c.SetBreakerPolicy(p)
	return c
}

// TestBreakerTripsAfterThreshold pins the closed→open transition: exactly
// Threshold consecutive failures trip the breaker; a success before the
// threshold resets the count.
func TestBreakerTripsAfterThreshold(t *testing.T) {
	c := newBreakerCoord(BreakerPolicy{Threshold: 3})
	defer c.Close()
	const addr = "w1:1"

	c.breakerFailure(addr)
	c.breakerFailure(addr)
	c.breakerSuccess(addr, false) // resets the consecutive count
	c.breakerFailure(addr)
	c.breakerFailure(addr)
	if got := c.BreakerState(addr); got != "closed" {
		t.Fatalf("state after 2 consecutive failures = %q, want closed", got)
	}
	if err := c.breakerAllow(addr, false); err != nil {
		t.Fatalf("closed breaker rejected a call: %v", err)
	}
	c.breakerFailure(addr)
	if got := c.BreakerState(addr); got != "open" {
		t.Fatalf("state after 3 consecutive failures = %q, want open", got)
	}
	if err := c.breakerAllow(addr, false); !errors.Is(err, ErrWorkerUnavailable) {
		t.Fatalf("open breaker allow = %v, want ErrWorkerUnavailable", err)
	}
	// Health probes always pass: they are the recovery signal.
	if err := c.breakerAllow(addr, true); err != nil {
		t.Fatalf("open breaker rejected a health probe: %v", err)
	}
	if got := c.reg.Counter("fed.breaker.opens").Value(); got != 1 {
		t.Fatalf("fed.breaker.opens = %d, want 1", got)
	}
	if got := c.reg.Gauge("fed.breaker.open_count").Value(); got != 1 {
		t.Fatalf("fed.breaker.open_count = %d, want 1", got)
	}
}

// TestBreakerProbeHalfOpenAndTrial pins the recovery path: a successful
// probe half-opens, exactly one trial call is admitted, and its outcome
// decides between closed and open.
func TestBreakerProbeHalfOpenAndTrial(t *testing.T) {
	c := newBreakerCoord(BreakerPolicy{Threshold: 1})
	defer c.Close()
	const addr = "w1:1"

	c.breakerFailure(addr)
	if got := c.BreakerState(addr); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	// A probe success (the prober's Ping feeding breakerSuccess with
	// isHealth=true) moves open → half-open but never closes.
	c.breakerSuccess(addr, true)
	if got := c.BreakerState(addr); got != "half-open" {
		t.Fatalf("state after probe success = %q, want half-open", got)
	}
	if got := c.reg.Gauge("fed.breaker.open_count").Value(); got != 0 {
		t.Fatalf("fed.breaker.open_count = %d, want 0 after half-open", got)
	}
	// Exactly one trial is admitted; a concurrent call keeps failing fast.
	if err := c.breakerAllow(addr, false); err != nil {
		t.Fatalf("half-open breaker rejected the trial: %v", err)
	}
	if err := c.breakerAllow(addr, false); !errors.Is(err, ErrWorkerUnavailable) {
		t.Fatalf("second call during trial = %v, want ErrWorkerUnavailable", err)
	}
	// Trial failure re-opens immediately.
	c.breakerFailure(addr)
	if got := c.BreakerState(addr); got != "open" {
		t.Fatalf("state after failed trial = %q, want open", got)
	}
	// Probe again; this time the trial succeeds and the breaker closes.
	c.breakerSuccess(addr, true)
	if err := c.breakerAllow(addr, false); err != nil {
		t.Fatalf("half-open breaker rejected the trial: %v", err)
	}
	c.breakerSuccess(addr, false)
	if got := c.BreakerState(addr); got != "closed" {
		t.Fatalf("state after successful trial = %q, want closed", got)
	}
	if err := c.breakerAllow(addr, false); err != nil {
		t.Fatalf("closed breaker rejected a call: %v", err)
	}
}

// TestBreakerCooldownHalfOpens pins the proberless recovery path: after
// Cooldown the next allow converts itself into the half-open trial.
func TestBreakerCooldownHalfOpens(t *testing.T) {
	c := newBreakerCoord(BreakerPolicy{Threshold: 1, Cooldown: time.Millisecond})
	defer c.Close()
	const addr = "w1:1"

	c.breakerFailure(addr)
	// Rewind openedAt instead of sleeping (no time.Sleep in tests that can
	// avoid it): the cooldown check compares against wall clock.
	b := c.breakerFor(addr)
	b.mu.Lock()
	b.openedAt = time.Now().Add(-time.Second)
	b.mu.Unlock()
	if err := c.breakerAllow(addr, false); err != nil {
		t.Fatalf("allow after cooldown = %v, want the half-open trial", err)
	}
	if got := c.BreakerState(addr); got != "half-open" {
		t.Fatalf("state after cooldown allow = %q, want half-open", got)
	}
	// The cooldown allow IS the trial: a second call is rejected.
	if err := c.breakerAllow(addr, false); !errors.Is(err, ErrWorkerUnavailable) {
		t.Fatalf("second call during cooldown trial = %v, want ErrWorkerUnavailable", err)
	}
}

// TestBreakerDisabledIsTransparent pins the zero-policy behavior: nothing
// is ever rejected and no state is tracked.
func TestBreakerDisabledIsTransparent(t *testing.T) {
	c := NewCoordinator(fedrpc.Options{Metrics: obs.New()})
	defer c.Close()
	const addr = "w1:1"
	for i := 0; i < 10; i++ {
		c.breakerFailure(addr)
	}
	if err := c.breakerAllow(addr, false); err != nil {
		t.Fatalf("disabled breaker rejected a call: %v", err)
	}
	if got := c.BreakerState(addr); got != "closed" {
		t.Fatalf("disabled breaker state = %q, want closed", got)
	}
}

// TestHealthPolicyJitterSpread pins the prober-jitter satellite: with
// Jitter set, successive waits differ (no thundering herd lockstep) and
// stay inside [(1-j)·I, (1+j)·I]; with Jitter zero the wait is exactly the
// interval.
func TestHealthPolicyJitterSpread(t *testing.T) {
	p := HealthPolicy{Interval: time.Second, Jitter: 0.4, Seed: 7}
	rng := newHealthRNG(p.Seed)
	lo := time.Duration(float64(p.Interval) * (1 - p.Jitter))
	hi := time.Duration(float64(p.Interval) * (1 + p.Jitter))
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		w := p.wait(rng)
		if w < lo || w > hi {
			t.Fatalf("jittered wait %v outside [%v, %v]", w, lo, hi)
		}
		seen[w] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 jittered waits produced %d distinct values; jitter is not spreading", len(seen))
	}

	fixed := HealthPolicy{Interval: time.Second}
	if w := fixed.wait(rng); w != time.Second {
		t.Fatalf("unjittered wait = %v, want exactly %v", w, time.Second)
	}
}
