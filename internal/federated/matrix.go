package federated

import (
	"fmt"

	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

// Matrix is a federated matrix: the coordinator holds only the federation
// map; the raw partitions live in the symbol tables of the federated
// workers (Figure 2 of the paper).
type Matrix struct {
	c  *Coordinator
	fm FedMap
}

// Rows returns the federated matrix's total row count.
func (m *Matrix) Rows() int { return m.fm.Rows }

// Cols returns the federated matrix's total column count.
func (m *Matrix) Cols() int { return m.fm.Cols }

// Map returns a copy of the federation map.
func (m *Matrix) Map() FedMap {
	fm := m.fm
	fm.Partitions = append([]Partition(nil), m.fm.Partitions...)
	return fm
}

// Scheme returns the partitioning scheme.
func (m *Matrix) Scheme() Scheme { return m.fm.Scheme() }

// Coordinator returns the owning coordinator.
func (m *Matrix) Coordinator() *Coordinator { return m.c }

// String summarizes the federated matrix.
func (m *Matrix) String() string {
	return fmt.Sprintf("Federated(%dx%d, %d partitions, %s)",
		m.fm.Rows, m.fm.Cols, len(m.fm.Partitions), m.fm.Scheme())
}

// FromMap wraps an existing federation map (e.g. built by a worker-side
// pipeline step) as a federated matrix.
func FromMap(c *Coordinator, fm FedMap) (*Matrix, error) {
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	return &Matrix{c: c, fm: fm}, nil
}

// Distribute partitions a local matrix evenly across worker addresses
// (row- or column-wise) and transfers the partitions via PUT under the
// given privacy level. It is the test/benchmark constructor; production
// deployments use Read, which never moves raw data.
func Distribute(c *Coordinator, x *matrix.Dense, addrs []string, scheme Scheme, level privacy.Level) (*Matrix, error) {
	return DistributeWithColumns(c, x, addrs, scheme, level, nil)
}

// DistributeWithColumns is Distribute with fine-grained per-column
// constraints (§4.1): colLevels assigns one privacy level per column
// (columns beyond the slice default to the coarse level). Slicing out only
// unrestricted columns of the federated matrix yields transferable data;
// any operation touching a restricted column stays restricted.
func DistributeWithColumns(c *Coordinator, x *matrix.Dense, addrs []string, scheme Scheme,
	level privacy.Level, colLevels []privacy.Level) (*Matrix, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("federated: no worker addresses")
	}
	n := len(addrs)
	fm := FedMap{Rows: x.Rows(), Cols: x.Cols()}
	total := x.Rows()
	if scheme == ColPartitioned {
		total = x.Cols()
	}
	if total < n {
		return nil, fmt.Errorf("federated: cannot split %d %s across %d workers",
			total, scheme, n)
	}
	beg := 0
	for i, addr := range addrs {
		size := total / n
		if i < total%n {
			size++
		}
		end := beg + size
		var r Range
		var part *matrix.Dense
		if scheme == ColPartitioned {
			r = Range{RowBeg: 0, RowEnd: x.Rows(), ColBeg: beg, ColEnd: end}
			part = x.SliceCols(beg, end)
		} else {
			r = Range{RowBeg: beg, RowEnd: end, ColBeg: 0, ColEnd: x.Cols()}
			part = x.SliceRows(beg, end)
		}
		id := c.NewID()
		var colPriv []int
		if len(colLevels) > 0 {
			for j := r.ColBeg; j < r.ColEnd; j++ {
				if j < len(colLevels) {
					colPriv = append(colPriv, int(colLevels[j]))
				} else {
					colPriv = append(colPriv, int(level))
				}
			}
		}
		if _, err := c.callOne(addr, fedrpc.Request{
			Type: fedrpc.Put, ID: id, Privacy: int(level), ColPrivacy: colPriv,
			Data: fedrpc.MatrixPayload(part),
		}); err != nil {
			// Reclaim the partitions already placed on other workers so an
			// aborted distribute leaves no worker-side state behind.
			c.freePartitions(fm.Partitions)
			return nil, err
		}
		fm.Partitions = append(fm.Partitions, Partition{Range: r, Addr: addr, DataID: id})
		beg = end
	}
	return FromMap(c, fm)
}

// ReadSpec names one raw file at one federated site.
type ReadSpec struct {
	Addr     string
	Filename string
	Privacy  privacy.Level
}

// ReadRowPartitioned builds a row-partitioned federated matrix from raw
// files at the federated sites (read-on-demand, §4.1): each worker READs
// its file locally; only the dimensions travel to the coordinator.
func ReadRowPartitioned(c *Coordinator, specs []ReadSpec) (*Matrix, error) {
	type meta struct {
		id         int64
		rows, cols int
	}
	metas := make([]meta, len(specs))
	// read reports the IDs bound so far (including the in-flight one) so an
	// abort can reclaim them.
	read := func(upto int) []Partition {
		parts := make([]Partition, 0, upto+1)
		for j := 0; j <= upto; j++ {
			parts = append(parts, Partition{Addr: specs[j].Addr, DataID: metas[j].id})
		}
		return parts
	}
	for i, spec := range specs {
		id := c.NewID()
		metas[i].id = id
		resps, err := c.call(spec.Addr, []fedrpc.Request{
			{Type: fedrpc.Read, ID: id, Filename: spec.Filename, Privacy: int(spec.Privacy)},
			{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{Name: "obj_dims", Inputs: []int64{id}}},
		})
		if err != nil {
			c.freePartitions(read(i))
			return nil, err
		}
		for _, r := range resps {
			if !r.OK {
				c.freePartitions(read(i))
				return nil, fmt.Errorf("federated: read %s at %s: %s", spec.Filename, spec.Addr, r.Err)
			}
		}
		dims := resps[1].Data.Matrix()
		metas[i] = meta{id: id, rows: int(dims.At(0, 0)), cols: int(dims.At(0, 1))}
	}
	fm := FedMap{}
	row := 0
	for i, spec := range specs {
		if i == 0 {
			fm.Cols = metas[i].cols
		} else if metas[i].cols != fm.Cols {
			return nil, fmt.Errorf("federated: %s has %d columns, want %d",
				spec.Filename, metas[i].cols, fm.Cols)
		}
		fm.Partitions = append(fm.Partitions, Partition{
			Range:  Range{RowBeg: row, RowEnd: row + metas[i].rows, ColBeg: 0, ColEnd: metas[i].cols},
			Addr:   spec.Addr,
			DataID: metas[i].id,
		})
		row += metas[i].rows
	}
	fm.Rows = row
	return FromMap(c, fm)
}

// Consolidate transfers all partitions to the coordinator and assembles the
// local matrix — the transparent pin-into-memory path of §4.1. Workers
// refuse the transfer if it violates privacy constraints.
func (m *Matrix) Consolidate() (*matrix.Dense, error) {
	out := matrix.NewDense(m.fm.Rows, m.fm.Cols)
	resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{{Type: fedrpc.Get, ID: p.DataID}}
	})
	if err != nil {
		return nil, err
	}
	for i, p := range m.fm.Partitions {
		part := resps[i][0].Data.Matrix()
		if part == nil {
			return nil, fmt.Errorf("federated: partition %d returned no matrix", i)
		}
		if part.Rows() != p.Range.NumRows() || part.Cols() != p.Range.NumCols() {
			return nil, fmt.Errorf("federated: partition %d is %dx%d, map says %dx%d",
				i, part.Rows(), part.Cols(), p.Range.NumRows(), p.Range.NumCols())
		}
		out.SetSlice(p.Range.RowBeg, p.Range.ColBeg, part)
	}
	return out, nil
}

// Free releases the worker-side partitions of this federated matrix
// (rmvar), keeping the workers' memory bounded across long sessions.
func (m *Matrix) Free() error {
	_, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
			Opcode: "rmvar", Inputs: []int64{p.DataID},
		}}}
	})
	return err
}

// derive builds a result federated matrix over new per-partition data IDs
// with ranges transformed by fn.
func (m *Matrix) derive(rows, cols int, ids []int64, fn func(Range) Range) *Matrix {
	fm := FedMap{Rows: rows, Cols: cols}
	for i, p := range m.fm.Partitions {
		fm.Partitions = append(fm.Partitions, Partition{
			Range: fn(p.Range), Addr: p.Addr, DataID: ids[i],
		})
	}
	return &Matrix{c: m.c, fm: fm}
}

// newIDs allocates one fresh data ID per partition.
func (m *Matrix) newIDs() []int64 {
	ids := make([]int64, len(m.fm.Partitions))
	for i := range ids {
		ids[i] = m.c.NewID()
	}
	return ids
}

// RBindFed logically concatenates two federated matrices row-wise. This is
// a metadata-only operation: no worker data moves (the "logical rbind" of
// Example 2 in the paper).
func RBindFed(a, b *Matrix) (*Matrix, error) {
	if a.Cols() != b.Cols() {
		return nil, fmt.Errorf("federated: rbind column mismatch %d vs %d", a.Cols(), b.Cols())
	}
	fm := FedMap{Rows: a.Rows() + b.Rows(), Cols: a.Cols()}
	fm.Partitions = append(fm.Partitions, a.fm.Partitions...)
	for _, p := range b.fm.Partitions {
		p.Range.RowBeg += a.Rows()
		p.Range.RowEnd += a.Rows()
		fm.Partitions = append(fm.Partitions, p)
	}
	return FromMap(a.c, fm)
}

// CBindFed logically concatenates two federated matrices column-wise
// (metadata only).
func CBindFed(a, b *Matrix) (*Matrix, error) {
	if a.Rows() != b.Rows() {
		return nil, fmt.Errorf("federated: cbind row mismatch %d vs %d", a.Rows(), b.Rows())
	}
	fm := FedMap{Rows: a.Rows(), Cols: a.Cols() + b.Cols()}
	fm.Partitions = append(fm.Partitions, a.fm.Partitions...)
	for _, p := range b.fm.Partitions {
		p.Range.ColBeg += a.Cols()
		p.Range.ColEnd += a.Cols()
		fm.Partitions = append(fm.Partitions, p)
	}
	return FromMap(a.c, fm)
}
