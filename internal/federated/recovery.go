package federated

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"exdra/internal/fedrpc"
	"exdra/internal/lineage"
	"exdra/internal/obs"
)

// This file implements the restart-recovery half of the failure model
// (DESIGN.md §3.5): PR 2 made the federation survive transport failures,
// but a crashed-and-restarted worker process comes back with an empty
// symbol table, so every retried batch that references pre-restart objects
// fails with "unknown object" and the exploratory session dies.
//
// The fix is lineage-based state reconstruction, the same trade Spark's
// RDD recovery makes against checkpointing: the coordinator records, per
// worker object, *how it was created* — READ (source path), PUT (retained
// payload), or EXEC_INST (instruction over input IDs) — as a DAG keyed by
// lineage traces (§4.4, LIMA-style). When the epoch handshake detects
// "same address, new process", the coordinator topologically replays
// exactly the log entries the pending operation needs and then resumes the
// retry loop. Objects created by EXEC_UDF carry side effects the
// coordinator cannot reproduce; they are marked unrecoverable and any
// operation needing them fails fast with ErrUnrecoverable.

// ErrWorkerRestarted reports that a worker answered with a new instance
// epoch — same address, new process, empty symbol table. It is returned
// when recovery is disabled (fail fast, the default) or when a worker
// crash-loops faster than replay can rebuild its state.
var ErrWorkerRestarted = errors.New("federated: worker process restarted")

// ErrUnrecoverable reports that a restarted worker's lost state cannot be
// rebuilt from the creation log: a needed object was created by EXEC_UDF
// (e.g. a parameter-server session), whose side effects the coordinator
// cannot replay. Sessions holding such state must fail fast and restart
// from their own durable inputs.
var ErrUnrecoverable = errors.New("federated: worker state not recoverable after restart")

// maxRecoveries bounds replay rounds within a single logical call, so a
// crash-looping worker surfaces as ErrWorkerRestarted instead of an
// unbounded replay loop.
const maxRecoveries = 3

// creationRec is one creation-log entry: everything needed to rebuild one
// worker-side object on a fresh process.
type creationRec struct {
	// req re-creates the object verbatim when re-issued (READ, PUT, or
	// EXEC_INST). Zero-valued for unrecoverable (EXEC_UDF-created) entries.
	req fedrpc.Request
	// trace is the canonical lineage trace of the object (§4.4); equal
	// traces imply equal computations, and the trace names the object in
	// diagnostics.
	trace string
	// deps are the input object IDs the creating instruction reads; they
	// form the replay DAG.
	deps []int64
	// live is false once the object was rmvar'd at the worker. Dead
	// entries are retained while a live object depends on them (broadcast
	// temps consumed by recorded instructions) and garbage-collected
	// otherwise.
	live bool
	// fresh is true while the object is known to exist on the worker's
	// current incarnation. An epoch change flips every record stale;
	// replay flips needed ones back.
	fresh bool
	// unrecoverable marks EXEC_UDF-created objects: present in the log so
	// their loss is diagnosable, but never replayable.
	unrecoverable bool
}

// workerState is the coordinator's per-address recovery state. All data
// fields are guarded by the owning Coordinator's recMu.
type workerState struct {
	epoch   uint64                 // last observed instance epoch (0 = never heard from); guarded by Coordinator.recMu
	healthy bool                   // last probe outcome (true until a probe fails); guarded by Coordinator.recMu
	probed  bool                   // at least one probe/operation completed; guarded by Coordinator.recMu
	records map[int64]*creationRec // guarded by Coordinator.recMu

	// replayMu serializes replay per worker so two operations recovering
	// the same restarted worker cannot interleave their replay batches
	// (one's trailing rmvar of a shared temp would race the other's use).
	replayMu sync.Mutex
}

// RecoveryStats are the coordinator's recovery/health observability
// counters (readable at any time; all counters are cumulative).
type RecoveryStats struct {
	// RestartsDetected counts epoch changes observed under known
	// addresses.
	RestartsDetected int64
	// ObjectsReplayed counts creation-log entries successfully
	// rematerialized on restarted workers.
	ObjectsReplayed int64
	// ReplayFailures counts replay batches rejected by the worker.
	ReplayFailures int64
	// Probes and ProbeFailures count health pings issued and failed.
	Probes, ProbeFailures int64
}

// EnableRecovery turns the creation log on or off. With recovery enabled
// the coordinator records how every worker-side object is created and,
// when the epoch handshake detects a restarted worker, replays the log
// entries the pending operation needs before resuming its retry loop.
// Pair it with a RetryPolicy: replay rebuilds state, retries re-issue the
// interrupted batch. Call it before issuing federated operations.
func (c *Coordinator) EnableRecovery(on bool) {
	c.recovery = on
}

// RecoveryEnabled reports whether the creation log is active.
func (c *Coordinator) RecoveryEnabled() bool { return c.recovery }

// Stats returns the recovery/health counters.
func (c *Coordinator) Stats() RecoveryStats {
	return RecoveryStats{
		RestartsDetected: c.statRestarts.Load(),
		ObjectsReplayed:  c.statReplayed.Load(),
		ReplayFailures:   c.statReplayFail.Load(),
		Probes:           c.statProbes.Load(),
		ProbeFailures:    c.statProbeFail.Load(),
	}
}

// state returns (creating if needed) the recovery state for addr.
func (c *Coordinator) state(addr string) *workerState {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	return c.stateLocked(addr)
}

func (c *Coordinator) stateLocked(addr string) *workerState {
	s, ok := c.states[addr]
	if !ok {
		s = &workerState{healthy: true, records: map[int64]*creationRec{}}
		c.states[addr] = s
	}
	return s
}

// epochOf extracts the responding process's instance epoch from a reply
// (all responses of one reply carry the same epoch; 0 = unstamped).
func epochOf(resps []fedrpc.Response) uint64 {
	for _, r := range resps {
		if r.Epoch != 0 {
			return r.Epoch
		}
	}
	return 0
}

// observeEpoch folds a reply's epoch into the per-worker state and reports
// whether it reveals a restart: a known address answering under a new
// epoch. First contact just records the epoch. On a restart every creation
// record is marked stale — the new process has an empty symbol table.
func (c *Coordinator) observeEpoch(addr string, epoch uint64) (restarted bool) {
	if epoch == 0 {
		return false
	}
	c.recMu.Lock()
	defer c.recMu.Unlock()
	s := c.stateLocked(addr)
	switch s.epoch {
	case 0, epoch:
		s.epoch = epoch
		return false
	default:
		s.epoch = epoch
		for _, rec := range s.records {
			rec.fresh = false
		}
		c.statRestarts.Add(1)
		c.reg.Counter("fed.restarts_detected").Inc()
		return true
	}
}

// recordBatch folds one successfully delivered batch into the creation
// log. Only responses that report success create (or remove) bindings.
func (c *Coordinator) recordBatch(addr string, reqs []fedrpc.Request, resps []fedrpc.Response) {
	if !c.recovery {
		return
	}
	c.recMu.Lock()
	defer c.recMu.Unlock()
	s := c.stateLocked(addr)
	for i, r := range reqs {
		if i >= len(resps) || !resps[i].OK {
			continue
		}
		switch r.Type {
		case fedrpc.Read:
			s.records[r.ID] = &creationRec{
				req: r, trace: lineage.LiteralTrace("file", r.Filename), live: true, fresh: true,
			}
		case fedrpc.Put:
			// The payload is retained so the exact bytes can be re-sent;
			// that is the lineage leaf for coordinator-born data.
			s.records[r.ID] = &creationRec{
				req: r, trace: lineage.LiteralTrace("put", r.ID), live: true, fresh: true,
			}
		case fedrpc.ExecInst:
			inst := r.Inst
			if inst == nil {
				continue
			}
			if inst.Opcode == "rmvar" {
				for _, id := range inst.Inputs {
					if rec := s.records[id]; rec != nil {
						rec.live = false
					}
				}
				gcRecords(s)
				continue
			}
			if inst.Output == 0 {
				continue
			}
			s.records[inst.Output] = &creationRec{
				req:   r,
				trace: instTrace(s, inst),
				deps:  append([]int64(nil), inst.Inputs...),
				live:  true, fresh: true,
			}
		case fedrpc.ExecUDF:
			// UDFs may bind an output whose value depends on side effects
			// the coordinator cannot reproduce. Log it as unrecoverable so
			// its loss is precise, not a generic "unknown object".
			if r.UDF != nil && r.UDF.Output != 0 {
				s.records[r.UDF.Output] = &creationRec{
					trace: lineage.LiteralTrace("udf", fmt.Sprintf("%s@%d", r.UDF.Name, r.UDF.Output)),
					deps:  append([]int64(nil), r.UDF.Inputs...),
					live:  true, fresh: true, unrecoverable: true,
				}
			}
		case fedrpc.Clear:
			s.records = map[int64]*creationRec{}
		}
	}
}

// instTrace builds the canonical lineage trace of an instruction output:
// opcode (with scalars and sorted attrs folded in) over the traces of its
// inputs. Unknown inputs degrade to literal ID traces. Callers hold recMu.
func instTrace(s *workerState, inst *fedrpc.Instruction) string {
	op := inst.Opcode
	if len(inst.Scalars) > 0 {
		op = fmt.Sprintf("%s%v", op, inst.Scalars)
	}
	if len(inst.Attrs) > 0 {
		keys := make([]string, 0, len(inst.Attrs))
		for k := range inst.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			op += fmt.Sprintf("{%s=%s}", k, inst.Attrs[k])
		}
	}
	in := make([]string, len(inst.Inputs))
	for i, id := range inst.Inputs {
		if rec := s.records[id]; rec != nil {
			in[i] = rec.trace
		} else {
			in[i] = lineage.LiteralTrace("id", id)
		}
	}
	return lineage.Item{Op: op, Inputs: in}.Trace()
}

// gcRecords drops dead creation records no live object depends on
// (transitively). Dead-but-reachable entries — broadcast temps consumed by
// recorded instructions — are retained: replaying their dependents needs
// them back, briefly. Callers hold recMu.
func gcRecords(s *workerState) {
	reachable := map[int64]bool{}
	var mark func(id int64)
	mark = func(id int64) {
		if reachable[id] {
			return
		}
		rec := s.records[id]
		if rec == nil {
			return
		}
		reachable[id] = true
		for _, d := range rec.deps {
			mark(d)
		}
	}
	for id, rec := range s.records {
		if rec.live {
			mark(id)
		}
	}
	for id, rec := range s.records {
		if !rec.live && !reachable[id] {
			delete(s.records, id)
		}
	}
}

// neededIDs lists the worker objects a batch reads and therefore requires
// to exist before it is issued: GET targets and instruction/UDF inputs.
// rmvar inputs are exempt (removing a missing ID is a no-op), as are
// READ/PUT targets (they create, not read).
func neededIDs(reqs []fedrpc.Request) []int64 {
	var ids []int64
	for _, r := range reqs {
		switch r.Type {
		case fedrpc.Get:
			ids = append(ids, r.ID)
		case fedrpc.ExecInst:
			if r.Inst != nil && r.Inst.Opcode != "rmvar" {
				ids = append(ids, r.Inst.Inputs...)
			}
		case fedrpc.ExecUDF:
			if r.UDF != nil {
				ids = append(ids, r.UDF.Inputs...)
			}
		}
	}
	return ids
}

// planReplay computes, under recMu, the dependency-ordered creation
// records to re-issue so that every needed ID exists on the worker's
// current incarnation, plus the dead temps to rmvar afterwards. A needed
// unrecoverable record yields ErrUnrecoverable in strict mode and is
// skipped otherwise (best-effort proactive repair).
func (c *Coordinator) planReplay(s *workerState, ids []int64, strict bool) (plan []*creationRec, dead []int64, err error) {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	visited := map[int64]bool{}
	var visit func(id int64) error
	visit = func(id int64) error {
		if visited[id] {
			return nil
		}
		visited[id] = true
		rec := s.records[id]
		if rec == nil {
			return nil // untracked: the operation's own error reporting covers it
		}
		if rec.live && rec.fresh {
			return nil
		}
		if rec.unrecoverable {
			if strict {
				return fmt.Errorf("%w: object %d (%s) was created by EXEC_UDF and cannot be replayed",
					ErrUnrecoverable, id, rec.trace)
			}
			return nil
		}
		for _, d := range rec.deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		plan = append(plan, rec)
		if !rec.live {
			// A dead temp rebuilt only as a dependency: rematerialize it
			// for the replay, then remove it again so the worker's symbol
			// table matches the pre-restart state.
			dead = append(dead, id)
		}
		return nil
	}
	for _, id := range ids {
		if err := visit(id); err != nil {
			return nil, nil, err
		}
	}
	return plan, dead, nil
}

// ensureIDs rematerializes, on the worker's current incarnation, every
// stale creation-log entry the given IDs (transitively) depend on. It
// issues the replay as one ordered batch followed by an rmvar of rebuilt
// dead temps. The transient return distinguishes transport failures (the
// caller's retry loop redials and re-enters) from fatal ones
// (ErrUnrecoverable, replay rejected by the worker).
func (c *Coordinator) ensureIDs(addr string, cl *fedrpc.Client, ids []int64, strict bool) (transient bool, err error) {
	s := c.state(addr)
	s.replayMu.Lock()
	defer s.replayMu.Unlock()
	plan, dead, err := c.planReplay(s, ids, strict)
	if err != nil {
		return false, err
	}
	if len(plan) == 0 {
		return false, nil
	}
	batch := make([]fedrpc.Request, 0, len(plan)+1)
	for _, rec := range plan {
		batch = append(batch, rec.req)
	}
	if len(dead) > 0 {
		batch = append(batch, fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
			Opcode: "rmvar", Inputs: dead,
		}})
	}
	// replayMu is held across the exchange by design: it exists to
	// serialize whole replay rounds per worker (plan + batch + ack), not
	// to guard data — releasing it before the call would let two
	// recovering operations interleave their replay batches, which is the
	// exact race it was added for. It is a per-worker leaf lock: nothing
	// else is acquired under it, and the call itself is deadline-bounded.
	//lint:ignore lockhold replayMu serializes whole replay rounds per worker; leaf lock, deadline-bounded call
	resps, err := cl.CallCtx(obs.WithOp(context.Background(), "replay"), batch...)
	if err != nil {
		return true, fmt.Errorf("federated: replay of %d objects at %s: %w", len(plan), addr, err)
	}
	if c.observeEpoch(addr, epochOf(resps)) {
		// The worker restarted again mid-replay; everything just rebuilt
		// is stale already. Let the caller's loop re-enter.
		return true, fmt.Errorf("federated: %s: %w during state replay", addr, ErrWorkerRestarted)
	}
	for i, resp := range resps {
		if !resp.OK {
			c.statReplayFail.Add(1)
			c.reg.Counter("fed.replay_failures").Inc()
			return false, fmt.Errorf("federated: replay %s at %s rejected: %s",
				batch[i].Type, addr, resp.Err)
		}
	}
	c.recMu.Lock()
	for _, rec := range plan {
		if rec.live {
			rec.fresh = true
		}
	}
	c.recMu.Unlock()
	c.statReplayed.Add(int64(len(plan)))
	c.reg.Counter("fed.objects_replayed").Add(int64(len(plan)))
	return false, nil
}

// Repair proactively rematerializes every live, recoverable object of one
// worker — the health prober calls it after a restarted worker comes back,
// so standing sessions heal before their next operation touches the
// address. Unrecoverable objects are skipped (their loss surfaces, with a
// precise error, only when an operation actually needs them).
func (c *Coordinator) Repair(addr string) error {
	if !c.recovery {
		return nil
	}
	c.recMu.Lock()
	s := c.stateLocked(addr)
	ids := make([]int64, 0, len(s.records))
	for id, rec := range s.records {
		if rec.live && !rec.fresh && !rec.unrecoverable {
			ids = append(ids, id)
		}
	}
	c.recMu.Unlock()
	if len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	cl, err := c.Client(addr)
	if err != nil {
		return err
	}
	_, err = c.ensureIDs(addr, cl, ids, false)
	return err
}

// setHealthy records a probe outcome for WorkerHealth.
func (c *Coordinator) setHealthy(addr string, ok bool) {
	c.recMu.Lock()
	s := c.stateLocked(addr)
	s.healthy = ok
	s.probed = true
	c.recMu.Unlock()
}

// WorkerHealth returns the last known liveness of every worker the
// coordinator has talked to or probed (true = last contact succeeded).
func (c *Coordinator) WorkerHealth() map[string]bool {
	c.recMu.Lock()
	defer c.recMu.Unlock()
	out := make(map[string]bool, len(c.states))
	for addr, s := range c.states {
		if s.probed {
			out[addr] = s.healthy
		}
	}
	return out
}
