package federated_test

import (
	"math"
	"testing"

	"exdra/internal/federated"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

func TestSumDPApproximatesTrueSum(t *testing.T) {
	cl := startCluster(t, 3)
	x := matrix.Fill(300, 4, 1) // sum = 1200
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	// Even Private data may release DP-noised aggregates.
	got, err := fx.SumDP(1.0, 4.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Laplace(4/1) noise per site, 3 sites: generous tolerance, tiny flake
	// probability (>50 sigma would be needed to escape +-100).
	if math.Abs(got-1200) > 100 {
		t.Fatalf("DP sum %g too far from 1200", got)
	}
	if got == 1200 {
		t.Fatal("DP sum is exact; no noise added")
	}
	// Determinism under a fixed seed.
	again, err := fx.SumDP(1.0, 4.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Fatal("seeded DP sum not deterministic")
	}
	// Larger epsilon, less noise.
	tight, err := fx.SumDP(100, 4.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tight-1200) > 5 {
		t.Fatalf("high-epsilon DP sum %g too noisy", tight)
	}
	if _, err := fx.SumDP(0, 1, 1); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
}

func TestFederatedRemoveEmptyRows(t *testing.T) {
	cl := startCluster(t, 3)
	x := matrix.NewDense(12, 3)
	for i := 0; i < 12; i += 2 { // rows 0,2,4,... non-empty
		for j := 0; j < 3; j++ {
			x.Set(i, j, float64(i+j+1))
		}
	}
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := fx.RemoveEmptyRows()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := x.RemoveEmptyRows()
	if compact.Rows() != want.Rows() {
		t.Fatalf("kept %d rows, want %d", compact.Rows(), want.Rows())
	}
	got, err := compact.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(want, 0) {
		t.Fatal("federated removeEmpty differs from local")
	}
}

func TestCTableFed(t *testing.T) {
	cl := startCluster(t, 2)
	a := matrix.ColVector([]float64{1, 2, 2, 3, 1, 2})
	b := matrix.ColVector([]float64{1, 1, 2, 1, 2, 2})
	fa, err := federated.Distribute(cl.Coord, a, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := federated.Distribute(cl.Coord, b, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	got, err := federated.CTableFed(fa, fb, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.CTable(a, b, 3, 2)
	if !got.EqualApprox(want, 0) {
		t.Fatalf("ctable: %v want %v", got, want)
	}
	if _, err := federated.CTableFed(fa, fb, 0, 0); err == nil {
		t.Fatal("missing caps accepted")
	}
}
