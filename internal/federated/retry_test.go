package federated_test

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
	"exdra/internal/netem"
	"exdra/internal/privacy"
)

func TestRetryableBatchClassification(t *testing.T) {
	retryable := [][]fedrpc.Request{
		{{Type: fedrpc.Read}, {Type: fedrpc.Put}},
		{{Type: fedrpc.Get}},
		{{Type: fedrpc.ExecInst}},
		{{Type: fedrpc.Clear}},
		{},
	}
	for i, reqs := range retryable {
		if !federated.RetryableBatch(reqs) {
			t.Errorf("batch %d should be retryable", i)
		}
	}
	// Any UDF poisons the batch: side effects may not be idempotent.
	if federated.RetryableBatch([]fedrpc.Request{{Type: fedrpc.Get}, {Type: fedrpc.ExecUDF}}) {
		t.Error("batch with EXEC_UDF must not be retryable")
	}
}

// TestRetryRecoversFromInjectedResets is the recovery half of the
// acceptance criterion: with netem resetting each worker connection once
// mid-transfer, a distribute + consolidate round trip completes via the
// coordinator's redial-and-retry path.
func TestRetryRecoversFromInjectedResets(t *testing.T) {
	cl := startCluster(t, 3)
	// Reset each worker connection once, 16 KB into the stream: well below
	// the ~43 KB per-partition PUT, so every first PUT attempt dies.
	// ResetPerAddr keeps the redialed connections alive so the budget is
	// spent one reset per worker, not three on the first.
	faults := netem.NewFaults(netem.FaultConfig{
		Seed: 7, ConnResets: 3, ResetAfterBytes: 16 << 10, ResetPerAddr: true,
	})
	coord := federated.NewCoordinator(fedrpc.Options{Netem: netem.Config{Faults: faults}})
	defer coord.Close()
	coord.SetRetryPolicy(federated.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 1})

	x := randMat(3, 600, 27)
	fx, err := federated.Distribute(coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatalf("distribute did not survive injected resets: %v", err)
	}
	got, err := fx.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(x, 0) {
		t.Fatal("round trip corrupted data")
	}
	if s := faults.Stats(); s.Resets != 3 {
		t.Fatalf("fault stats = %+v, want all 3 resets consumed", s)
	}
}

// TestNoRetryFailsFastWithoutLeaks is the fail-fast half of the acceptance
// criterion: with retries disabled, an injected reset surfaces as a clean
// error and the aborted distribute leaves no objects behind on any worker.
func TestNoRetryFailsFastWithoutLeaks(t *testing.T) {
	cl := startCluster(t, 3)
	faults := netem.NewFaults(netem.FaultConfig{Seed: 7, ConnResets: 1, ResetAfterBytes: 16 << 10})
	coord := federated.NewCoordinator(fedrpc.Options{Netem: netem.Config{Faults: faults}})
	defer coord.Close()
	// Zero-value retry policy: fail fast.

	x := randMat(3, 600, 27)
	_, err := federated.Distribute(coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err == nil {
		t.Fatal("distribute should fail without retries")
	}
	for i, w := range cl.Workers {
		if n := w.NumObjects(); n != 0 {
			t.Errorf("worker %d leaked %d objects after aborted distribute", i, n)
		}
	}
}

// TestParallelCallPartialFailureCleansUp covers the partial-failure path of
// a parallel federated operation: one partition's instruction fails while
// the others succeed and bind outputs; the coordinator must reclaim those
// outputs instead of leaking them (satellite 4).
func TestParallelCallPartialFailureCleansUp(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(5, 30, 4)
	fx := distribute(t, cl, x, federated.RowPartitioned)

	baseline := make([]int, len(cl.Workers))
	for i, w := range cl.Workers {
		baseline[i] = w.NumObjects()
	}

	// Corrupt the middle partition's data ID: its exec fails worker-side
	// while the outer partitions succeed and create output bindings.
	fm := fx.Map()
	fm.Partitions[1].DataID = 999999
	bad, err := federated.FromMap(cl.Coord, fm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Unary(matrix.UAbs); err == nil {
		t.Fatal("unary over a dangling partition should fail")
	}
	for i, w := range cl.Workers {
		if n := w.NumObjects(); n != baseline[i] {
			t.Errorf("worker %d: %d objects after aborted op, want %d (no leak)", i, n, baseline[i])
		}
	}
}

// TestParallelCallReportsLowestPartitionError pins the deterministic
// error-reporting contract: when several partitions fail, the reported
// error is that of the lowest-indexed one, not of whichever goroutine
// happened to finish first.
func TestParallelCallReportsLowestPartitionError(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(6, 30, 4)
	// Public data: only the dangling partitions fail the GET, so the error
	// choice among them is what's under test.
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	fm := fx.Map()
	fm.Partitions[1].DataID = 888888
	fm.Partitions[2].DataID = 999999
	bad, err := federated.FromMap(cl.Coord, fm)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		_, err := bad.Consolidate()
		if err == nil {
			t.Fatal("consolidate over dangling partitions should fail")
		}
		if !strings.Contains(err.Error(), fm.Partitions[1].Addr) {
			t.Fatalf("trial %d: error %q does not name the lowest failing partition %s",
				trial, err, fm.Partitions[1].Addr)
		}
	}
}

// TestClientDialCoalesces asserts the per-address in-flight dial guard:
// concurrent Client calls for one address share a single dial instead of
// racing redundant connections (satellite 2).
func TestClientDialCoalesces(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts atomic.Int32
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			defer c.Close()
		}
	}()
	// ForceGob: the fake listener above never speaks, so a framing
	// handshake would wait out the dial timeout; this test is about dial
	// coalescing, not the wire format.
	coord := federated.NewCoordinator(fedrpc.Options{ForceGob: true})
	defer coord.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := coord.Client(ln.Addr().String()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := accepts.Load(); n != 1 {
		t.Fatalf("%d dials for one address, want 1 (coalesced)", n)
	}
}

// TestSlowDialDoesNotBlockCoordinator asserts that dialing happens outside
// the coordinator lock: while one Client call is stuck dialing an
// unresponsive address, byte-counter accessors and dials to healthy
// workers proceed (satellite 2).
func TestSlowDialDoesNotBlockCoordinator(t *testing.T) {
	cl := startCluster(t, 1)
	coord := federated.NewCoordinator(fedrpc.Options{DialTimeout: 2 * time.Second})
	defer coord.Close()
	dialDone := make(chan struct{})
	go func() {
		// A blackhole address: the dial hangs until DialTimeout on most
		// networks, or fails fast where unroutable — either way it must
		// not hold the coordinator lock while in flight.
		coord.Client("10.255.255.1:9")
		close(dialDone)
	}()
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	_ = coord.BytesSent()
	if _, err := coord.Client(cl.Addrs[0]); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("healthy-path operations blocked %v behind a slow dial", d)
	}
	select {
	case <-dialDone:
	case <-time.After(5 * time.Second):
		t.Fatal("blackhole dial never returned")
	}
}
