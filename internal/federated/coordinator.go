package federated

import (
	"fmt"
	"sync"
	"sync/atomic"

	"exdra/internal/fedrpc"
)

// Coordinator is the main control program's view of the federation: it
// manages one persistent connection per federated worker, allocates
// federation-wide data IDs, and issues RPCs to all workers in parallel
// (ExDRa §4.1).
type Coordinator struct {
	opts fedrpc.Options

	mu      sync.Mutex
	clients map[string]*fedrpc.Client
	nextID  atomic.Int64
}

// NewCoordinator creates a coordinator; opts configure TLS and network
// emulation for all worker connections.
func NewCoordinator(opts fedrpc.Options) *Coordinator {
	c := &Coordinator{opts: opts, clients: map[string]*fedrpc.Client{}}
	c.nextID.Store(1)
	return c
}

// NewID allocates a federation-unique data ID.
func (c *Coordinator) NewID() int64 { return c.nextID.Add(1) }

// Client returns the (lazily dialed) connection to a worker address.
func (c *Coordinator) Client(addr string) (*fedrpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.clients[addr]; ok {
		return cl, nil
	}
	cl, err := fedrpc.Dial(addr, c.opts)
	if err != nil {
		return nil, err
	}
	c.clients[addr] = cl
	return cl, nil
}

// BytesSent returns the total bytes sent to all workers.
func (c *Coordinator) BytesSent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, cl := range c.clients {
		n += cl.BytesSent()
	}
	return n
}

// BytesReceived returns the total bytes received from all workers.
func (c *Coordinator) BytesReceived() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, cl := range c.clients {
		n += cl.BytesReceived()
	}
	return n
}

// ClearAll sends CLEAR to every connected worker, releasing all
// symbol-table objects of the training session.
func (c *Coordinator) ClearAll() error {
	c.mu.Lock()
	clients := make([]*fedrpc.Client, 0, len(c.clients))
	for _, cl := range c.clients {
		clients = append(clients, cl)
	}
	c.mu.Unlock()
	var firstErr error
	for _, cl := range clients {
		if _, err := cl.CallOne(fedrpc.Request{Type: fedrpc.Clear}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close terminates all worker connections.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.clients {
		cl.Close()
	}
	c.clients = map[string]*fedrpc.Client{}
}

// partResult pairs a partition index with the responses of its RPC.
type partResult struct {
	idx   int
	resps []fedrpc.Response
	err   error
}

// parallelCall issues, for each partition, the request batch produced by
// build, in parallel across workers, and returns the responses in partition
// order. Any transport or per-request failure aborts with an error — the
// caller's federated operation fails atomically from the coordinator's
// perspective (worker-side partial state is reclaimed via rmvar/CLEAR).
func (c *Coordinator) parallelCall(parts []Partition, build func(i int, p Partition) []fedrpc.Request) ([][]fedrpc.Response, error) {
	results := make(chan partResult, len(parts))
	for i, p := range parts {
		go func(i int, p Partition) {
			cl, err := c.Client(p.Addr)
			if err != nil {
				results <- partResult{idx: i, err: err}
				return
			}
			reqs := build(i, p)
			resps, err := cl.Call(reqs...)
			if err == nil {
				for ri, r := range resps {
					if !r.OK {
						err = fmt.Errorf("federated: %s %s: %s", p.Addr, reqs[ri].Type, r.Err)
						break
					}
				}
			}
			results <- partResult{idx: i, resps: resps, err: err}
		}(i, p)
	}
	out := make([][]fedrpc.Response, len(parts))
	var firstErr error
	for range parts {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		out[r.idx] = r.resps
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
