package federated

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"exdra/internal/fedrpc"
	"exdra/internal/obs"
)

// RetryPolicy controls how the coordinator handles transport failures of
// idempotent request batches: it redials the worker and re-issues the batch
// with exponential backoff and seeded jitter. The zero value disables
// retries (fail fast), preserving strict at-most-once semantics.
type RetryPolicy struct {
	// Attempts is the total number of tries per batch (<=1 means no
	// retry).
	Attempts int
	// Backoff is the delay before the second attempt; it doubles per
	// further attempt. Zero defaults to 50ms when Attempts > 1.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; zero means uncapped.
	MaxBackoff time.Duration
	// Seed feeds the jitter RNG, keeping retry schedules deterministic in
	// tests (the dp.go convention for seeded randomness).
	Seed int64
}

// DefaultRetryPolicy is a sensible WAN-facing policy: three attempts, 50ms
// base backoff doubling to a 2s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second}
}

// RetryableBatch reports whether every request in the batch is safe to
// re-issue after a transport failure, i.e. when the coordinator cannot know
// whether the worker executed the batch before the connection died:
//
//   - READ re-parses the same file into the same ID (lineage-cached);
//   - PUT re-binds the same payload under the same ID (replace semantics);
//   - GET is a pure read;
//   - EXEC_INST re-executes deterministically over IDs, overwriting the
//     same output binding (rmvar of an already-removed ID is a no-op);
//   - CLEAR empties the symbol table either way;
//   - HEALTH reads nothing and writes nothing.
//
// EXEC_UDF is excluded: UDFs may carry non-idempotent side effects (e.g.
// parameter-server gradient application), so their batches fail fast.
func RetryableBatch(reqs []fedrpc.Request) bool {
	for _, r := range reqs {
		switch r.Type {
		case fedrpc.Read, fedrpc.Put, fedrpc.Get, fedrpc.ExecInst, fedrpc.Clear, fedrpc.Health:
		default:
			return false
		}
	}
	return true
}

// Coordinator is one control program's view of the federation: it allocates
// session-unique data IDs and issues RPCs to all workers in parallel (ExDRa
// §4.1). With a RetryPolicy set it survives transient transport failures on
// idempotent batches by redialing and re-issuing.
//
// Connections and circuit breakers live in a Fleet: the legacy constructor
// NewCoordinator owns a private size-1 fleet (one connection per address,
// exactly the pre-pool behavior), while Fleet.NewSession returns a
// coordinator sharing a standing fleet with other sessions, its object IDs
// scoped by a session namespace (fedrpc.MakeID) so concurrent sessions
// never collide in a worker's symbol table.
type Coordinator struct {
	fleet    *Fleet
	ownFleet bool  // Close tears the fleet down too (legacy constructor)
	ns       int64 // session namespace; 0 = legacy unscoped
	retry    RetryPolicy
	// callTimeout, when positive, is the default per-attempt time budget:
	// callCtx wraps any caller context that carries no deadline of its own
	// in context.WithTimeout(ctx, callTimeout), so every RPC travels with a
	// deadline even when the application code above never set one. Set
	// before issuing operations (SetCallTimeout), like retry.
	callTimeout time.Duration

	mu      sync.Mutex
	touched map[string]struct{} // worker addrs this session has used; guarded by mu
	closed  bool                // guarded by mu
	done    chan struct{}       // closed by Close; cancels retry backoffs
	nextID  atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand // jitter source; guarded by rngMu

	// Restart-recovery state (recovery.go): the creation log per worker
	// address behind recMu, plus the health prober's join handle and the
	// observability counters behind Stats().
	recovery bool // EnableRecovery: creation log + replay on epoch change
	recMu    sync.Mutex
	states   map[string]*workerState // guarded by recMu
	probing  bool                    // a health prober goroutine is running (StartHealth); guarded by mu
	healthWg sync.WaitGroup

	statRestarts, statReplayed, statReplayFail atomic.Int64
	statProbes, statProbeFail                  atomic.Int64

	// reg mirrors the recovery/health counters and the retry funnel into
	// the observability registry (fed.* metrics), alongside the RPC-level
	// metrics the clients report themselves.
	reg *obs.Registry
}

// NewCoordinator creates a standalone coordinator owning a private fleet
// with one connection per worker address; opts configure TLS and network
// emulation for all worker connections. Retries are off by default — see
// SetRetryPolicy. For many sessions over one shared fleet, use NewFleet +
// Fleet.NewSession instead.
func NewCoordinator(opts fedrpc.Options) *Coordinator {
	return newCoordinator(NewFleet(opts, 1), true, 0)
}

// newCoordinator builds a coordinator view of f under namespace ns.
func newCoordinator(f *Fleet, ownFleet bool, ns int64) *Coordinator {
	c := &Coordinator{
		fleet:    f,
		ownFleet: ownFleet,
		ns:       ns,
		touched:  map[string]struct{}{},
		states:   map[string]*workerState{},
		done:     make(chan struct{}),
		rng:      rand.New(rand.NewSource(0)),
		reg:      f.reg,
	}
	c.nextID.Store(1)
	return c
}

// Fleet returns the fleet this coordinator issues calls through.
func (c *Coordinator) Fleet() *Fleet { return c.fleet }

// Namespace returns the session namespace scoping this coordinator's object
// IDs (0 for a legacy standalone coordinator).
func (c *Coordinator) Namespace() int64 { return c.ns }

// SetRetryPolicy configures transport-failure handling for idempotent
// request batches. Call it before issuing federated operations.
func (c *Coordinator) SetRetryPolicy(p RetryPolicy) {
	c.retry = p
	c.rngMu.Lock()
	c.rng = rand.New(rand.NewSource(p.Seed))
	c.rngMu.Unlock()
}

// SetCallTimeout sets the default per-attempt time budget for every RPC
// whose caller context carries no deadline of its own (0 disables — calls
// then rely on the transport's coarse I/O timeout alone). The budget
// travels to the worker on the wire, bounds handler execution there, and
// is never refunded by a retry: a deadline blowout fails the batch
// immediately with fedrpc.ErrDeadlineExceeded. Call before issuing
// federated operations.
func (c *Coordinator) SetCallTimeout(d time.Duration) {
	c.callTimeout = d
}

// NewID allocates a session-unique data ID, namespace-qualified so that
// IDs from two sessions sharing a fleet can never collide in a worker's
// symbol table (fedrpc.MakeID; a legacy coordinator's namespace is 0 and
// its IDs are the bare sequence, exactly as before).
func (c *Coordinator) NewID() int64 { return fedrpc.MakeID(c.ns, c.nextID.Add(1)) }

// pool returns addr's connection pool, marking the address as touched by
// this session (the scope of ClearAll and the health prober).
func (c *Coordinator) pool(addr string) (*fedrpc.Pool, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("federated: coordinator is closed")
	}
	c.touched[addr] = struct{}{}
	c.mu.Unlock()
	return c.fleet.pool(addr)
}

// Client returns the stable shared connection to a worker address (the
// fleet pool's first client, lazily dialed). Cleanup sweeps and legacy
// single-connection callers use it; the retry loop checks whole
// connections out of the pool instead (attemptCall), so those callers do
// not serialize behind this one client's exchange lock.
func (c *Coordinator) Client(addr string) (*fedrpc.Client, error) {
	pl, err := c.pool(addr)
	if err != nil {
		return nil, err
	}
	return pl.Shared(context.Background())
}

// call issues one request batch to addr through the retry policy: transport
// failures of idempotent batches are retried with exponential backoff and
// jitter after the broken client transparently redials. Worker-reported
// per-request errors are never retried — they are deterministic application
// errors, not transport faults.
//
// With recovery enabled (EnableRecovery), call is also the restart-repair
// funnel: before each attempt it rematerializes any stale creation-log
// entries the batch reads (ensureIDs), and after each exchange it folds the
// reply's instance epoch into the per-worker state (observeEpoch). A
// detected restart marks the worker's log stale and grants a free replay
// round — bounded by maxRecoveries so a crash-looping worker surfaces as
// ErrWorkerRestarted rather than an endless replay loop. With recovery
// disabled, a detected restart under a batch that did not fully succeed
// fails fast with ErrWorkerRestarted: retrying against an empty symbol
// table could only produce misleading "unknown object" noise.
func (c *Coordinator) call(addr string, reqs []fedrpc.Request) ([]fedrpc.Response, error) {
	return c.callCtx(context.Background(), addr, reqs)
}

// Call issues one request batch to addr through the session's retry,
// breaker, and recovery machinery — the same funnel every built-in
// federated operation uses. Callers composing their own operations (the
// service layer, tests) use it instead of raw clients so their traffic
// feeds the creation log and the worker's breaker like everything else.
func (c *Coordinator) Call(addr string, reqs ...fedrpc.Request) ([]fedrpc.Response, error) {
	return c.call(addr, reqs)
}

// callCtx is call with trace metadata: the context's obs span/op labels
// flow through the RPC client into the span ring, and the retry funnel's
// own events (retries, transport errors) are counted in the registry.
//
// Two failure classes cut the retry loop short. A deadline blowout —
// locally (the context budget expired mid-exchange) or remotely (the
// worker answered with the typed DEADLINE_EXCEEDED code) — returns
// immediately with an error wrapping fedrpc.ErrDeadlineExceeded: the
// caller's budget is spent, and N retries would multiply the wait to N×
// the budget the caller asked for. And while the worker's circuit breaker
// is open (breaker.go), attempts fail fast with ErrWorkerUnavailable
// before touching the wire. Both classes still count as breaker failures,
// so a worker that keeps blowing budgets trips its breaker just like one
// that drops connections.
func (c *Coordinator) callCtx(ctx context.Context, addr string, reqs []fedrpc.Request) ([]fedrpc.Response, error) {
	isHealth := healthBatch(reqs)
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && c.callTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.callTimeout)
		defer cancel()
	}
	attempts := c.retry.Attempts
	if attempts < 1 || !RetryableBatch(reqs) {
		attempts = 1
	}
	var lastErr error
	recoveries := 0
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.reg.Counter("fed.retries").Inc()
			if err := c.backoff(attempt); err != nil {
				return nil, err
			}
		}
		if err := c.breakerAllow(addr, isHealth); err != nil {
			c.reg.Counter("fed.breaker.rejections").Inc()
			if lastErr != nil {
				// Mid-retry trip: the root cause outranks the load-shed.
				return nil, fmt.Errorf("federated: %s: %w (after: %v)", addr, ErrWorkerUnavailable, lastErr)
			}
			return nil, fmt.Errorf("federated: %s: %w", addr, err)
		}
		resps, verdict, err := c.attemptCall(ctx, addr, reqs, isHealth)
		switch verdict {
		case attemptDone:
			return resps, nil
		case attemptFatal:
			return nil, err
		case attemptReplay:
			recoveries++
			if recoveries > maxRecoveries {
				return nil, fmt.Errorf("federated: %s: %w %d times during one operation (crash loop?)",
					addr, ErrWorkerRestarted, recoveries)
			}
			lastErr = err
			attempt-- // the replay round is free: it is repair, not a retry
		default: // attemptRetry
			lastErr = err
		}
	}
	return nil, lastErr
}

// attemptVerdict classifies one attemptCall outcome for the retry loop.
type attemptVerdict int

const (
	attemptDone   attemptVerdict = iota // success: return the responses
	attemptFatal                        // unretryable: surface the error now
	attemptRetry                        // transient: consume a retry attempt
	attemptReplay                       // worker restarted: free repair round
)

// attemptCall runs one attempt of a batch against addr over a connection
// checked out of the fleet pool for the duration of the exchange — the
// whole reason sessions sharing a fleet do not serialize behind one
// client's exchange lock. The checkout is returned on every path; a broken
// client goes back too (its next user transparently redials).
func (c *Coordinator) attemptCall(ctx context.Context, addr string, reqs []fedrpc.Request, isHealth bool) ([]fedrpc.Response, attemptVerdict, error) {
	pl, err := c.pool(addr)
	if err != nil {
		return nil, attemptFatal, err // coordinator or fleet closed
	}
	cl, err := pl.Get(ctx)
	if err != nil {
		// Dial failure or checkout starved past the caller's budget.
		c.reg.Counter("fed.transport_errors").Inc()
		c.breakerFailure(addr)
		if ctx.Err() != nil {
			return nil, attemptFatal, err // the budget is spent; never retry
		}
		return nil, attemptRetry, err
	}
	defer pl.Put(cl)
	if c.recovery {
		transient, err := c.ensureIDs(addr, cl, neededIDs(reqs), true)
		if err != nil {
			if !transient {
				return nil, attemptFatal, err // ErrUnrecoverable or replay rejected
			}
			return nil, attemptRetry, err
		}
	}
	resps, err := cl.CallCtx(ctx, reqs...)
	if err != nil {
		// Call tore the broken transport down; the next attempt redials
		// through the pooled client.
		c.reg.Counter("fed.transport_errors").Inc()
		c.breakerFailure(addr)
		if errors.Is(err, fedrpc.ErrDeadlineExceeded) {
			c.reg.Counter("fed.deadline_exceeded").Inc()
			return nil, attemptFatal, err // the budget is spent; never retry
		}
		if ctx.Err() != nil {
			return nil, attemptFatal, err // cancelled caller: retrying is pointless
		}
		return nil, attemptRetry, err
	}
	if i := deadlineIdx(resps); i >= 0 {
		// The worker (or the server's reply backstop) abandoned the
		// batch at budget expiry and said so with the typed code.
		c.reg.Counter("fed.deadline_exceeded").Inc()
		c.breakerFailure(addr)
		return nil, attemptFatal, fmt.Errorf("federated: %s %s: %w: %s",
			addr, reqs[i].Type, fedrpc.ErrDeadlineExceeded, resps[i].Err)
	}
	c.breakerSuccess(addr, isHealth)
	if c.observeEpoch(addr, epochOf(resps)) {
		if allOK(resps) {
			// The batch fully succeeded on the fresh process — it read
			// nothing that was lost (e.g. a READ/PUT-only batch, or a
			// health ping). Accept it; the stale marks observeEpoch set
			// will heal lazily on the next dependent operation.
			c.recordBatch(addr, reqs, resps)
			return resps, attemptDone, nil
		}
		if !c.recovery {
			return nil, attemptFatal, fmt.Errorf("federated: %s: %w (recovery disabled)", addr, ErrWorkerRestarted)
		}
		if !RetryableBatch(reqs) {
			// An EXEC_UDF batch interrupted by a restart: side effects
			// cannot be replayed, so the session must fail fast.
			return nil, attemptFatal, fmt.Errorf("federated: %s: EXEC_UDF batch interrupted by worker restart: %w",
				addr, ErrUnrecoverable)
		}
		return nil, attemptReplay, fmt.Errorf("federated: %s: %w", addr, ErrWorkerRestarted)
	}
	c.recordBatch(addr, reqs, resps)
	return resps, attemptDone, nil
}

// allOK reports whether every response in a reply succeeded.
func allOK(resps []fedrpc.Response) bool {
	for _, r := range resps {
		if !r.OK {
			return false
		}
	}
	return true
}

// healthBatch reports whether every request is a HEALTH ping — probe
// traffic, which bypasses the circuit breaker (it is the recovery signal)
// and feeds its open → half-open transition on success.
func healthBatch(reqs []fedrpc.Request) bool {
	for _, r := range reqs {
		if r.Type != fedrpc.Health {
			return false
		}
	}
	return len(reqs) > 0
}

// deadlineIdx returns the index of the first response carrying the typed
// DEADLINE_EXCEEDED code, or -1.
func deadlineIdx(resps []fedrpc.Response) int {
	for i, r := range resps {
		if r.Code == fedrpc.CodeDeadlineExceeded {
			return i
		}
	}
	return -1
}

// callOne issues a single request through the retry policy, converting a
// per-request failure into an error.
func (c *Coordinator) callOne(addr string, req fedrpc.Request) (fedrpc.Response, error) {
	resps, err := c.call(addr, []fedrpc.Request{req})
	if err != nil {
		return fedrpc.Response{}, err
	}
	if !resps[0].OK {
		if resps[0].Code == fedrpc.CodeDeadlineExceeded {
			// Normally typed upstream by attemptCall; kept here so a typed
			// reply can never lose its class on this path either.
			return resps[0], fmt.Errorf("federated: %s %s: %w: %s",
				addr, req.Type, fedrpc.ErrDeadlineExceeded, resps[0].Err)
		}
		return resps[0], fmt.Errorf("federated: %s %s: %s", addr, req.Type, resps[0].Err)
	}
	return resps[0], nil
}

// Fetch retrieves one worker object by ID through the retry (and, when
// enabled, recovery) path. A GET for an object whose creation log survived
// a restart transparently replays the object first.
func (c *Coordinator) Fetch(addr string, id int64) (fedrpc.Payload, error) {
	resp, err := c.callOne(addr, fedrpc.Request{Type: fedrpc.Get, ID: id})
	if err != nil {
		return fedrpc.Payload{}, err
	}
	return resp.Data, nil
}

// ExecUDF invokes a registered UDF at one worker. UDF batches are never
// retried (RetryableBatch) and their outputs are never replayed: on a
// transport failure the original error surfaces unchanged, and any output
// binding the interrupted call may have created at the worker is reclaimed
// best-effort so the failed call leaks no worker objects.
func (c *Coordinator) ExecUDF(addr string, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	resp, err := c.callOne(addr, fedrpc.Request{Type: fedrpc.ExecUDF, UDF: call})
	if err != nil {
		if call.Output != 0 {
			// rmvar of a never-bound ID is a no-op at the worker, so the
			// sweep is safe whether or not the UDF ran before the fault.
			if cl, cerr := c.Client(addr); cerr == nil {
				_, _ = cl.Call(fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
					Opcode: "rmvar", Inputs: []int64{call.Output},
				}})
			}
		}
		return fedrpc.Payload{}, err
	}
	return resp.Data, nil
}

// backoff waits before retry attempt a (1-based): Backoff doubled per extra
// attempt, capped at MaxBackoff, jittered to [0.5x, 1.5x) from the seeded
// RNG. It returns early when the coordinator is closed, so shutdown is
// never stuck behind a retry schedule.
func (c *Coordinator) backoff(attempt int) error {
	d := c.retry.Backoff
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if max := c.retry.MaxBackoff; max > 0 && d >= max {
			d = max
			break
		}
	}
	if max := c.retry.MaxBackoff; max > 0 && d > max {
		d = max
	}
	c.rngMu.Lock()
	jitter := 0.5 + c.rng.Float64()
	c.rngMu.Unlock()
	t := time.NewTimer(time.Duration(float64(d) * jitter))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.done:
		return fmt.Errorf("federated: coordinator closed during retry backoff")
	}
}

// BytesSent returns the total bytes sent to all workers over this
// coordinator's fleet. Sessions sharing a fleet share its wires, so the
// count is fleet-wide; a legacy standalone coordinator's private fleet
// makes it exactly the old per-coordinator number.
func (c *Coordinator) BytesSent() int64 { return c.fleet.BytesSent() }

// BytesReceived returns the total bytes received from all workers over
// this coordinator's fleet.
func (c *Coordinator) BytesReceived() int64 { return c.fleet.BytesReceived() }

// touchedAddrs snapshots the worker addresses this session has talked to.
func (c *Coordinator) touchedAddrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, len(c.touched))
	for addr := range c.touched {
		addrs = append(addrs, addr)
	}
	return addrs
}

// ClearAll sends CLEAR to every worker this session has touched, releasing
// the session's symbol-table objects. The CLEAR travels with the session
// namespace in its ID field, so on a shared fleet it removes only this
// session's bindings; a legacy coordinator's namespace is 0, which keeps
// the old clear-everything semantics.
func (c *Coordinator) ClearAll() error {
	var firstErr error
	for _, addr := range c.touchedAddrs() {
		if _, err := c.callOne(addr, fedrpc.Request{Type: fedrpc.Clear, ID: c.ns}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close cancels in-flight retry backoffs, joins the health prober if one is
// running, and — for a standalone coordinator owning its fleet — closes
// every worker connection. A session on a shared fleet leaves the fleet
// untouched: its wires belong to every other session too. It is idempotent.
// The prober join happens outside c.mu: the prober's probes go through
// pool/call, which take c.mu themselves.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	if c.ownFleet {
		c.fleet.Close()
	}
	c.healthWg.Wait()
}

// parallelCall issues, for each partition, the request batch produced by
// build, in parallel across workers, and returns the responses in partition
// order. Any transport or per-request failure aborts with the error of the
// lowest-indexed failing partition (deterministic reporting regardless of
// goroutine completion order); before returning, worker-side objects that
// the aborted operation had already created on other partitions are
// reclaimed best-effort, so a failed federated operation does not leak
// PUT/READ/output bindings.
func (c *Coordinator) parallelCall(parts []Partition, build func(i int, p Partition) []fedrpc.Request) ([][]fedrpc.Response, error) {
	type job struct {
		reqs  []fedrpc.Request
		resps []fedrpc.Response
		err   error
	}
	jobs := make([]job, len(parts))
	results := make(chan int, len(parts))
	for i, p := range parts {
		jobs[i].reqs = build(i, p)
		go func(i int, p Partition) {
			resps, err := c.callCtx(obs.WithOp(context.Background(), "parallel"), p.Addr, jobs[i].reqs)
			if err == nil {
				for ri, r := range resps {
					if !r.OK {
						err = fmt.Errorf("federated: %s %s: %s", p.Addr, jobs[i].reqs[ri].Type, r.Err)
						break
					}
				}
			}
			jobs[i].resps, jobs[i].err = resps, err
			results <- i
		}(i, p)
	}
	for range parts {
		<-results
	}
	firstErr := -1
	for i := range jobs {
		if jobs[i].err != nil {
			firstErr = i
			break
		}
	}
	if firstErr >= 0 {
		reqs := make([][]fedrpc.Request, len(parts))
		for i := range jobs {
			reqs[i] = jobs[i].reqs
		}
		c.cleanupPartial(parts, reqs)
		return nil, jobs[firstErr].err
	}
	out := make([][]fedrpc.Response, len(parts))
	for i := range jobs {
		out[i] = jobs[i].resps
	}
	return out, nil
}

// cleanupPartial best-effort-releases the worker-side objects an aborted
// parallelCall created, in parallel. rmvar of an ID that was never bound is
// a no-op at the worker, so the sweep is safe on failed and succeeded
// partitions alike; errors are ignored — an unreachable worker's state dies
// with its session CLEAR instead.
func (c *Coordinator) cleanupPartial(parts []Partition, reqs [][]fedrpc.Request) {
	var wg sync.WaitGroup
	for i, p := range parts {
		ids := createdIDs(reqs[i])
		if len(ids) == 0 {
			continue
		}
		wg.Add(1)
		go func(addr string, ids []int64) {
			defer wg.Done()
			cl, err := c.Client(addr)
			if err != nil {
				return
			}
			_, _ = cl.Call(fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "rmvar", Inputs: ids,
			}})
		}(p.Addr, ids)
	}
	wg.Wait()
}

// freePartitions best-effort-removes the worker-side bindings of the given
// partitions in parallel. It is the cleanup path of sequential constructors
// (Distribute*, Read*) that abort midway: without it the already-placed
// partitions would leak in the workers' symbol tables until session CLEAR.
func (c *Coordinator) freePartitions(parts []Partition) {
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(addr string, id int64) {
			defer wg.Done()
			cl, err := c.Client(addr)
			if err != nil {
				return
			}
			_, _ = cl.Call(fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "rmvar", Inputs: []int64{id},
			}})
		}(p.Addr, p.DataID)
	}
	wg.Wait()
}

// createdIDs lists the symbol-table bindings a request batch creates:
// READ/PUT targets and instruction/UDF outputs. Bindings the batch itself
// removes (rmvar) are not creations.
func createdIDs(reqs []fedrpc.Request) []int64 {
	var ids []int64
	for _, r := range reqs {
		switch r.Type {
		case fedrpc.Read, fedrpc.Put:
			ids = append(ids, r.ID)
		case fedrpc.ExecInst:
			if r.Inst != nil && r.Inst.Opcode != "rmvar" && r.Inst.Output != 0 {
				ids = append(ids, r.Inst.Output)
			}
		case fedrpc.ExecUDF:
			if r.UDF != nil && r.UDF.Output != 0 {
				ids = append(ids, r.UDF.Output)
			}
		}
	}
	return ids
}
