package federated

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"exdra/internal/fedrpc"
)

// RetryPolicy controls how the coordinator handles transport failures of
// idempotent request batches: it redials the worker and re-issues the batch
// with exponential backoff and seeded jitter. The zero value disables
// retries (fail fast), preserving strict at-most-once semantics.
type RetryPolicy struct {
	// Attempts is the total number of tries per batch (<=1 means no
	// retry).
	Attempts int
	// Backoff is the delay before the second attempt; it doubles per
	// further attempt. Zero defaults to 50ms when Attempts > 1.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; zero means uncapped.
	MaxBackoff time.Duration
	// Seed feeds the jitter RNG, keeping retry schedules deterministic in
	// tests (the dp.go convention for seeded randomness).
	Seed int64
}

// DefaultRetryPolicy is a sensible WAN-facing policy: three attempts, 50ms
// base backoff doubling to a 2s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second}
}

// RetryableBatch reports whether every request in the batch is safe to
// re-issue after a transport failure, i.e. when the coordinator cannot know
// whether the worker executed the batch before the connection died:
//
//   - READ re-parses the same file into the same ID (lineage-cached);
//   - PUT re-binds the same payload under the same ID (replace semantics);
//   - GET is a pure read;
//   - EXEC_INST re-executes deterministically over IDs, overwriting the
//     same output binding (rmvar of an already-removed ID is a no-op);
//   - CLEAR empties the symbol table either way.
//
// EXEC_UDF is excluded: UDFs may carry non-idempotent side effects (e.g.
// parameter-server gradient application), so their batches fail fast.
func RetryableBatch(reqs []fedrpc.Request) bool {
	for _, r := range reqs {
		switch r.Type {
		case fedrpc.Read, fedrpc.Put, fedrpc.Get, fedrpc.ExecInst, fedrpc.Clear:
		default:
			return false
		}
	}
	return true
}

// Coordinator is the main control program's view of the federation: it
// manages one persistent connection per federated worker, allocates
// federation-wide data IDs, and issues RPCs to all workers in parallel
// (ExDRa §4.1). With a RetryPolicy set it survives transient transport
// failures on idempotent batches by redialing and re-issuing.
type Coordinator struct {
	opts  fedrpc.Options
	retry RetryPolicy

	mu      sync.Mutex
	clients map[string]*fedrpc.Client
	dialing map[string]*dialCall
	closed  bool
	done    chan struct{} // closed by Close; cancels retry backoffs
	nextID  atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand // jitter source, guarded by rngMu
}

// NewCoordinator creates a coordinator; opts configure TLS and network
// emulation for all worker connections. Retries are off by default — see
// SetRetryPolicy.
func NewCoordinator(opts fedrpc.Options) *Coordinator {
	c := &Coordinator{
		opts:    opts,
		clients: map[string]*fedrpc.Client{},
		dialing: map[string]*dialCall{},
		done:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(0)),
	}
	c.nextID.Store(1)
	return c
}

// SetRetryPolicy configures transport-failure handling for idempotent
// request batches. Call it before issuing federated operations.
func (c *Coordinator) SetRetryPolicy(p RetryPolicy) {
	c.retry = p
	c.rngMu.Lock()
	c.rng = rand.New(rand.NewSource(p.Seed))
	c.rngMu.Unlock()
}

// NewID allocates a federation-unique data ID.
func (c *Coordinator) NewID() int64 { return c.nextID.Add(1) }

// dialCall tracks one in-flight dial so concurrent callers for the same
// address share its outcome instead of dialing redundantly.
type dialCall struct {
	done chan struct{}
	cl   *fedrpc.Client
	err  error
}

// Client returns the (lazily dialed) connection to a worker address. The
// dial itself runs outside the coordinator lock — one unreachable worker
// (up to the dial timeout) must not serialize dials to healthy workers or
// block the byte-counter accessors — with a per-address in-flight guard so
// concurrent callers coalesce onto a single dial.
func (c *Coordinator) Client(addr string) (*fedrpc.Client, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("federated: coordinator is closed")
	}
	if cl, ok := c.clients[addr]; ok {
		c.mu.Unlock()
		return cl, nil
	}
	if d, ok := c.dialing[addr]; ok {
		c.mu.Unlock()
		<-d.done
		return d.cl, d.err
	}
	d := &dialCall{done: make(chan struct{})}
	c.dialing[addr] = d
	c.mu.Unlock()

	cl, err := fedrpc.Dial(addr, c.opts)

	c.mu.Lock()
	delete(c.dialing, addr)
	if err == nil && c.closed {
		cl.Close()
		cl, err = nil, fmt.Errorf("federated: coordinator is closed")
	}
	if err == nil {
		c.clients[addr] = cl
	}
	c.mu.Unlock()
	d.cl, d.err = cl, err
	close(d.done)
	return cl, err
}

// call issues one request batch to addr through the retry policy: transport
// failures of idempotent batches are retried with exponential backoff and
// jitter after the broken client transparently redials. Worker-reported
// per-request errors are never retried — they are deterministic application
// errors, not transport faults.
func (c *Coordinator) call(addr string, reqs []fedrpc.Request) ([]fedrpc.Response, error) {
	attempts := c.retry.Attempts
	if attempts < 1 || !RetryableBatch(reqs) {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(attempt); err != nil {
				return nil, err
			}
		}
		cl, err := c.Client(addr)
		if err != nil {
			lastErr = err
			continue
		}
		resps, err := cl.Call(reqs...)
		if err == nil {
			return resps, nil
		}
		// Call tore the broken transport down; the next attempt redials
		// through the cached client.
		lastErr = err
	}
	return nil, lastErr
}

// callOne issues a single request through the retry policy, converting a
// per-request failure into an error.
func (c *Coordinator) callOne(addr string, req fedrpc.Request) (fedrpc.Response, error) {
	resps, err := c.call(addr, []fedrpc.Request{req})
	if err != nil {
		return fedrpc.Response{}, err
	}
	if !resps[0].OK {
		return resps[0], fmt.Errorf("federated: %s %s: %s", addr, req.Type, resps[0].Err)
	}
	return resps[0], nil
}

// backoff waits before retry attempt a (1-based): Backoff doubled per extra
// attempt, capped at MaxBackoff, jittered to [0.5x, 1.5x) from the seeded
// RNG. It returns early when the coordinator is closed, so shutdown is
// never stuck behind a retry schedule.
func (c *Coordinator) backoff(attempt int) error {
	d := c.retry.Backoff
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if max := c.retry.MaxBackoff; max > 0 && d >= max {
			d = max
			break
		}
	}
	if max := c.retry.MaxBackoff; max > 0 && d > max {
		d = max
	}
	c.rngMu.Lock()
	jitter := 0.5 + c.rng.Float64()
	c.rngMu.Unlock()
	t := time.NewTimer(time.Duration(float64(d) * jitter))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.done:
		return fmt.Errorf("federated: coordinator closed during retry backoff")
	}
}

// BytesSent returns the total bytes sent to all workers.
func (c *Coordinator) BytesSent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, cl := range c.clients {
		n += cl.BytesSent()
	}
	return n
}

// BytesReceived returns the total bytes received from all workers.
func (c *Coordinator) BytesReceived() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, cl := range c.clients {
		n += cl.BytesReceived()
	}
	return n
}

// ClearAll sends CLEAR to every connected worker, releasing all
// symbol-table objects of the training session.
func (c *Coordinator) ClearAll() error {
	c.mu.Lock()
	addrs := make([]string, 0, len(c.clients))
	for addr := range c.clients {
		addrs = append(addrs, addr)
	}
	c.mu.Unlock()
	var firstErr error
	for _, addr := range addrs {
		if _, err := c.callOne(addr, fedrpc.Request{Type: fedrpc.Clear}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close terminates all worker connections and cancels in-flight retry
// backoffs. It is idempotent.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	close(c.done)
	for _, cl := range c.clients {
		cl.Close()
	}
	c.clients = map[string]*fedrpc.Client{}
}

// parallelCall issues, for each partition, the request batch produced by
// build, in parallel across workers, and returns the responses in partition
// order. Any transport or per-request failure aborts with the error of the
// lowest-indexed failing partition (deterministic reporting regardless of
// goroutine completion order); before returning, worker-side objects that
// the aborted operation had already created on other partitions are
// reclaimed best-effort, so a failed federated operation does not leak
// PUT/READ/output bindings.
func (c *Coordinator) parallelCall(parts []Partition, build func(i int, p Partition) []fedrpc.Request) ([][]fedrpc.Response, error) {
	type job struct {
		reqs  []fedrpc.Request
		resps []fedrpc.Response
		err   error
	}
	jobs := make([]job, len(parts))
	results := make(chan int, len(parts))
	for i, p := range parts {
		jobs[i].reqs = build(i, p)
		go func(i int, p Partition) {
			resps, err := c.call(p.Addr, jobs[i].reqs)
			if err == nil {
				for ri, r := range resps {
					if !r.OK {
						err = fmt.Errorf("federated: %s %s: %s", p.Addr, jobs[i].reqs[ri].Type, r.Err)
						break
					}
				}
			}
			jobs[i].resps, jobs[i].err = resps, err
			results <- i
		}(i, p)
	}
	for range parts {
		<-results
	}
	firstErr := -1
	for i := range jobs {
		if jobs[i].err != nil {
			firstErr = i
			break
		}
	}
	if firstErr >= 0 {
		reqs := make([][]fedrpc.Request, len(parts))
		for i := range jobs {
			reqs[i] = jobs[i].reqs
		}
		c.cleanupPartial(parts, reqs)
		return nil, jobs[firstErr].err
	}
	out := make([][]fedrpc.Response, len(parts))
	for i := range jobs {
		out[i] = jobs[i].resps
	}
	return out, nil
}

// cleanupPartial best-effort-releases the worker-side objects an aborted
// parallelCall created, in parallel. rmvar of an ID that was never bound is
// a no-op at the worker, so the sweep is safe on failed and succeeded
// partitions alike; errors are ignored — an unreachable worker's state dies
// with its session CLEAR instead.
func (c *Coordinator) cleanupPartial(parts []Partition, reqs [][]fedrpc.Request) {
	var wg sync.WaitGroup
	for i, p := range parts {
		ids := createdIDs(reqs[i])
		if len(ids) == 0 {
			continue
		}
		wg.Add(1)
		go func(addr string, ids []int64) {
			defer wg.Done()
			cl, err := c.Client(addr)
			if err != nil {
				return
			}
			_, _ = cl.Call(fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "rmvar", Inputs: ids,
			}})
		}(p.Addr, ids)
	}
	wg.Wait()
}

// freePartitions best-effort-removes the worker-side bindings of the given
// partitions in parallel. It is the cleanup path of sequential constructors
// (Distribute*, Read*) that abort midway: without it the already-placed
// partitions would leak in the workers' symbol tables until session CLEAR.
func (c *Coordinator) freePartitions(parts []Partition) {
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(addr string, id int64) {
			defer wg.Done()
			cl, err := c.Client(addr)
			if err != nil {
				return
			}
			_, _ = cl.Call(fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "rmvar", Inputs: []int64{id},
			}})
		}(p.Addr, p.DataID)
	}
	wg.Wait()
}

// createdIDs lists the symbol-table bindings a request batch creates:
// READ/PUT targets and instruction/UDF outputs. Bindings the batch itself
// removes (rmvar) are not creations.
func createdIDs(reqs []fedrpc.Request) []int64 {
	var ids []int64
	for _, r := range reqs {
		switch r.Type {
		case fedrpc.Read, fedrpc.Put:
			ids = append(ids, r.ID)
		case fedrpc.ExecInst:
			if r.Inst != nil && r.Inst.Opcode != "rmvar" && r.Inst.Output != 0 {
				ids = append(ids, r.Inst.Output)
			}
		case fedrpc.ExecUDF:
			if r.UDF != nil && r.UDF.Output != 0 {
				ids = append(ids, r.UDF.Output)
			}
		}
	}
	return ids
}
