package federated

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"exdra/internal/fedrpc"
	"exdra/internal/obs"
)

// RetryPolicy controls how the coordinator handles transport failures of
// idempotent request batches: it redials the worker and re-issues the batch
// with exponential backoff and seeded jitter. The zero value disables
// retries (fail fast), preserving strict at-most-once semantics.
type RetryPolicy struct {
	// Attempts is the total number of tries per batch (<=1 means no
	// retry).
	Attempts int
	// Backoff is the delay before the second attempt; it doubles per
	// further attempt. Zero defaults to 50ms when Attempts > 1.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; zero means uncapped.
	MaxBackoff time.Duration
	// Seed feeds the jitter RNG, keeping retry schedules deterministic in
	// tests (the dp.go convention for seeded randomness).
	Seed int64
}

// DefaultRetryPolicy is a sensible WAN-facing policy: three attempts, 50ms
// base backoff doubling to a 2s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second}
}

// RetryableBatch reports whether every request in the batch is safe to
// re-issue after a transport failure, i.e. when the coordinator cannot know
// whether the worker executed the batch before the connection died:
//
//   - READ re-parses the same file into the same ID (lineage-cached);
//   - PUT re-binds the same payload under the same ID (replace semantics);
//   - GET is a pure read;
//   - EXEC_INST re-executes deterministically over IDs, overwriting the
//     same output binding (rmvar of an already-removed ID is a no-op);
//   - CLEAR empties the symbol table either way;
//   - HEALTH reads nothing and writes nothing.
//
// EXEC_UDF is excluded: UDFs may carry non-idempotent side effects (e.g.
// parameter-server gradient application), so their batches fail fast.
func RetryableBatch(reqs []fedrpc.Request) bool {
	for _, r := range reqs {
		switch r.Type {
		case fedrpc.Read, fedrpc.Put, fedrpc.Get, fedrpc.ExecInst, fedrpc.Clear, fedrpc.Health:
		default:
			return false
		}
	}
	return true
}

// Coordinator is the main control program's view of the federation: it
// manages one persistent connection per federated worker, allocates
// federation-wide data IDs, and issues RPCs to all workers in parallel
// (ExDRa §4.1). With a RetryPolicy set it survives transient transport
// failures on idempotent batches by redialing and re-issuing.
type Coordinator struct {
	opts  fedrpc.Options
	retry RetryPolicy
	// callTimeout, when positive, is the default per-attempt time budget:
	// callCtx wraps any caller context that carries no deadline of its own
	// in context.WithTimeout(ctx, callTimeout), so every RPC travels with a
	// deadline even when the application code above never set one. Set
	// before issuing operations (SetCallTimeout), like retry.
	callTimeout time.Duration

	// Circuit-breaker state (breaker.go): policy plus one breaker per
	// worker address.
	brkMu    sync.Mutex
	breaker  BreakerPolicy       // guarded by brkMu
	breakers map[string]*breaker // guarded by brkMu

	mu      sync.Mutex
	clients map[string]*fedrpc.Client // guarded by mu
	dialing map[string]*dialCall      // guarded by mu
	closed  bool                      // guarded by mu
	done    chan struct{}             // closed by Close; cancels retry backoffs
	nextID  atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand // jitter source; guarded by rngMu

	// Restart-recovery state (recovery.go): the creation log per worker
	// address behind recMu, plus the health prober's join handle and the
	// observability counters behind Stats().
	recovery bool // EnableRecovery: creation log + replay on epoch change
	recMu    sync.Mutex
	states   map[string]*workerState // guarded by recMu
	probing  bool                    // a health prober goroutine is running (StartHealth); guarded by mu
	healthWg sync.WaitGroup

	statRestarts, statReplayed, statReplayFail atomic.Int64
	statProbes, statProbeFail                  atomic.Int64

	// reg mirrors the recovery/health counters and the retry funnel into
	// the observability registry (fed.* metrics), alongside the RPC-level
	// metrics the clients report themselves.
	reg *obs.Registry
}

// NewCoordinator creates a coordinator; opts configure TLS and network
// emulation for all worker connections. Retries are off by default — see
// SetRetryPolicy.
func NewCoordinator(opts fedrpc.Options) *Coordinator {
	c := &Coordinator{
		opts:     opts,
		clients:  map[string]*fedrpc.Client{},
		dialing:  map[string]*dialCall{},
		states:   map[string]*workerState{},
		breakers: map[string]*breaker{},
		done:     make(chan struct{}),
		rng:      rand.New(rand.NewSource(0)),
		reg:      opts.Metrics,
	}
	if c.reg == nil {
		c.reg = obs.Default()
	}
	c.nextID.Store(1)
	return c
}

// SetRetryPolicy configures transport-failure handling for idempotent
// request batches. Call it before issuing federated operations.
func (c *Coordinator) SetRetryPolicy(p RetryPolicy) {
	c.retry = p
	c.rngMu.Lock()
	c.rng = rand.New(rand.NewSource(p.Seed))
	c.rngMu.Unlock()
}

// SetCallTimeout sets the default per-attempt time budget for every RPC
// whose caller context carries no deadline of its own (0 disables — calls
// then rely on the transport's coarse I/O timeout alone). The budget
// travels to the worker on the wire, bounds handler execution there, and
// is never refunded by a retry: a deadline blowout fails the batch
// immediately with fedrpc.ErrDeadlineExceeded. Call before issuing
// federated operations.
func (c *Coordinator) SetCallTimeout(d time.Duration) {
	c.callTimeout = d
}

// NewID allocates a federation-unique data ID.
func (c *Coordinator) NewID() int64 { return c.nextID.Add(1) }

// dialCall tracks one in-flight dial so concurrent callers for the same
// address share its outcome instead of dialing redundantly.
type dialCall struct {
	done chan struct{}
	cl   *fedrpc.Client
	err  error
}

// Client returns the (lazily dialed) connection to a worker address. The
// dial itself runs outside the coordinator lock — one unreachable worker
// (up to the dial timeout) must not serialize dials to healthy workers or
// block the byte-counter accessors — with a per-address in-flight guard so
// concurrent callers coalesce onto a single dial.
func (c *Coordinator) Client(addr string) (*fedrpc.Client, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("federated: coordinator is closed")
	}
	if cl, ok := c.clients[addr]; ok {
		c.mu.Unlock()
		return cl, nil
	}
	if d, ok := c.dialing[addr]; ok {
		c.mu.Unlock()
		<-d.done
		return d.cl, d.err
	}
	d := &dialCall{done: make(chan struct{})}
	c.dialing[addr] = d
	c.mu.Unlock()

	cl, err := fedrpc.Dial(addr, c.opts)

	c.mu.Lock()
	delete(c.dialing, addr)
	if err == nil && c.closed {
		cl.Close()
		cl, err = nil, fmt.Errorf("federated: coordinator is closed")
	}
	if err == nil {
		c.clients[addr] = cl
	}
	c.mu.Unlock()
	d.cl, d.err = cl, err
	close(d.done)
	return cl, err
}

// call issues one request batch to addr through the retry policy: transport
// failures of idempotent batches are retried with exponential backoff and
// jitter after the broken client transparently redials. Worker-reported
// per-request errors are never retried — they are deterministic application
// errors, not transport faults.
//
// With recovery enabled (EnableRecovery), call is also the restart-repair
// funnel: before each attempt it rematerializes any stale creation-log
// entries the batch reads (ensureIDs), and after each exchange it folds the
// reply's instance epoch into the per-worker state (observeEpoch). A
// detected restart marks the worker's log stale and grants a free replay
// round — bounded by maxRecoveries so a crash-looping worker surfaces as
// ErrWorkerRestarted rather than an endless replay loop. With recovery
// disabled, a detected restart under a batch that did not fully succeed
// fails fast with ErrWorkerRestarted: retrying against an empty symbol
// table could only produce misleading "unknown object" noise.
func (c *Coordinator) call(addr string, reqs []fedrpc.Request) ([]fedrpc.Response, error) {
	return c.callCtx(context.Background(), addr, reqs)
}

// callCtx is call with trace metadata: the context's obs span/op labels
// flow through the RPC client into the span ring, and the retry funnel's
// own events (retries, transport errors) are counted in the registry.
//
// Two failure classes cut the retry loop short. A deadline blowout —
// locally (the context budget expired mid-exchange) or remotely (the
// worker answered with the typed DEADLINE_EXCEEDED code) — returns
// immediately with an error wrapping fedrpc.ErrDeadlineExceeded: the
// caller's budget is spent, and N retries would multiply the wait to N×
// the budget the caller asked for. And while the worker's circuit breaker
// is open (breaker.go), attempts fail fast with ErrWorkerUnavailable
// before touching the wire. Both classes still count as breaker failures,
// so a worker that keeps blowing budgets trips its breaker just like one
// that drops connections.
func (c *Coordinator) callCtx(ctx context.Context, addr string, reqs []fedrpc.Request) ([]fedrpc.Response, error) {
	isHealth := healthBatch(reqs)
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && c.callTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.callTimeout)
		defer cancel()
	}
	attempts := c.retry.Attempts
	if attempts < 1 || !RetryableBatch(reqs) {
		attempts = 1
	}
	var lastErr error
	recoveries := 0
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.reg.Counter("fed.retries").Inc()
			if err := c.backoff(attempt); err != nil {
				return nil, err
			}
		}
		if err := c.breakerAllow(addr, isHealth); err != nil {
			c.reg.Counter("fed.breaker.rejections").Inc()
			if lastErr != nil {
				// Mid-retry trip: the root cause outranks the load-shed.
				return nil, fmt.Errorf("federated: %s: %w (after: %v)", addr, ErrWorkerUnavailable, lastErr)
			}
			return nil, fmt.Errorf("federated: %s: %w", addr, err)
		}
		cl, err := c.Client(addr)
		if err != nil {
			c.reg.Counter("fed.transport_errors").Inc()
			c.breakerFailure(addr)
			lastErr = err
			continue
		}
		if c.recovery {
			transient, err := c.ensureIDs(addr, cl, neededIDs(reqs), true)
			if err != nil {
				if !transient {
					return nil, err // ErrUnrecoverable or replay rejected
				}
				lastErr = err
				continue
			}
		}
		resps, err := cl.CallCtx(ctx, reqs...)
		if err != nil {
			// Call tore the broken transport down; the next attempt redials
			// through the cached client.
			c.reg.Counter("fed.transport_errors").Inc()
			c.breakerFailure(addr)
			if errors.Is(err, fedrpc.ErrDeadlineExceeded) {
				c.reg.Counter("fed.deadline_exceeded").Inc()
				return nil, err // the budget is spent; never retry
			}
			if ctx.Err() != nil {
				return nil, err // cancelled caller: retrying is pointless
			}
			lastErr = err
			continue
		}
		if i := deadlineIdx(resps); i >= 0 {
			// The worker (or the server's reply backstop) abandoned the
			// batch at budget expiry and said so with the typed code.
			c.reg.Counter("fed.deadline_exceeded").Inc()
			c.breakerFailure(addr)
			return nil, fmt.Errorf("federated: %s %s: %w: %s",
				addr, reqs[i].Type, fedrpc.ErrDeadlineExceeded, resps[i].Err)
		}
		c.breakerSuccess(addr, isHealth)
		if c.observeEpoch(addr, epochOf(resps)) {
			if allOK(resps) {
				// The batch fully succeeded on the fresh process — it read
				// nothing that was lost (e.g. a READ/PUT-only batch, or a
				// health ping). Accept it; the stale marks observeEpoch set
				// will heal lazily on the next dependent operation.
				c.recordBatch(addr, reqs, resps)
				return resps, nil
			}
			if !c.recovery {
				return nil, fmt.Errorf("federated: %s: %w (recovery disabled)", addr, ErrWorkerRestarted)
			}
			if !RetryableBatch(reqs) {
				// An EXEC_UDF batch interrupted by a restart: side effects
				// cannot be replayed, so the session must fail fast.
				return nil, fmt.Errorf("federated: %s: EXEC_UDF batch interrupted by worker restart: %w",
					addr, ErrUnrecoverable)
			}
			recoveries++
			if recoveries > maxRecoveries {
				return nil, fmt.Errorf("federated: %s: %w %d times during one operation (crash loop?)",
					addr, ErrWorkerRestarted, recoveries)
			}
			lastErr = fmt.Errorf("federated: %s: %w", addr, ErrWorkerRestarted)
			attempt-- // the replay round is free: it is repair, not a retry
			continue
		}
		c.recordBatch(addr, reqs, resps)
		return resps, nil
	}
	return nil, lastErr
}

// allOK reports whether every response in a reply succeeded.
func allOK(resps []fedrpc.Response) bool {
	for _, r := range resps {
		if !r.OK {
			return false
		}
	}
	return true
}

// healthBatch reports whether every request is a HEALTH ping — probe
// traffic, which bypasses the circuit breaker (it is the recovery signal)
// and feeds its open → half-open transition on success.
func healthBatch(reqs []fedrpc.Request) bool {
	for _, r := range reqs {
		if r.Type != fedrpc.Health {
			return false
		}
	}
	return len(reqs) > 0
}

// deadlineIdx returns the index of the first response carrying the typed
// DEADLINE_EXCEEDED code, or -1.
func deadlineIdx(resps []fedrpc.Response) int {
	for i, r := range resps {
		if r.Code == fedrpc.CodeDeadlineExceeded {
			return i
		}
	}
	return -1
}

// callOne issues a single request through the retry policy, converting a
// per-request failure into an error.
func (c *Coordinator) callOne(addr string, req fedrpc.Request) (fedrpc.Response, error) {
	resps, err := c.call(addr, []fedrpc.Request{req})
	if err != nil {
		return fedrpc.Response{}, err
	}
	if !resps[0].OK {
		return resps[0], fmt.Errorf("federated: %s %s: %s", addr, req.Type, resps[0].Err)
	}
	return resps[0], nil
}

// Fetch retrieves one worker object by ID through the retry (and, when
// enabled, recovery) path. A GET for an object whose creation log survived
// a restart transparently replays the object first.
func (c *Coordinator) Fetch(addr string, id int64) (fedrpc.Payload, error) {
	resp, err := c.callOne(addr, fedrpc.Request{Type: fedrpc.Get, ID: id})
	if err != nil {
		return fedrpc.Payload{}, err
	}
	return resp.Data, nil
}

// ExecUDF invokes a registered UDF at one worker. UDF batches are never
// retried (RetryableBatch) and their outputs are never replayed: on a
// transport failure the original error surfaces unchanged, and any output
// binding the interrupted call may have created at the worker is reclaimed
// best-effort so the failed call leaks no worker objects.
func (c *Coordinator) ExecUDF(addr string, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	resp, err := c.callOne(addr, fedrpc.Request{Type: fedrpc.ExecUDF, UDF: call})
	if err != nil {
		if call.Output != 0 {
			// rmvar of a never-bound ID is a no-op at the worker, so the
			// sweep is safe whether or not the UDF ran before the fault.
			if cl, cerr := c.Client(addr); cerr == nil {
				_, _ = cl.Call(fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
					Opcode: "rmvar", Inputs: []int64{call.Output},
				}})
			}
		}
		return fedrpc.Payload{}, err
	}
	return resp.Data, nil
}

// backoff waits before retry attempt a (1-based): Backoff doubled per extra
// attempt, capped at MaxBackoff, jittered to [0.5x, 1.5x) from the seeded
// RNG. It returns early when the coordinator is closed, so shutdown is
// never stuck behind a retry schedule.
func (c *Coordinator) backoff(attempt int) error {
	d := c.retry.Backoff
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if max := c.retry.MaxBackoff; max > 0 && d >= max {
			d = max
			break
		}
	}
	if max := c.retry.MaxBackoff; max > 0 && d > max {
		d = max
	}
	c.rngMu.Lock()
	jitter := 0.5 + c.rng.Float64()
	c.rngMu.Unlock()
	t := time.NewTimer(time.Duration(float64(d) * jitter))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.done:
		return fmt.Errorf("federated: coordinator closed during retry backoff")
	}
}

// BytesSent returns the total bytes sent to all workers.
func (c *Coordinator) BytesSent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, cl := range c.clients {
		n += cl.BytesSent()
	}
	return n
}

// BytesReceived returns the total bytes received from all workers.
func (c *Coordinator) BytesReceived() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, cl := range c.clients {
		n += cl.BytesReceived()
	}
	return n
}

// ClearAll sends CLEAR to every connected worker, releasing all
// symbol-table objects of the training session.
func (c *Coordinator) ClearAll() error {
	c.mu.Lock()
	addrs := make([]string, 0, len(c.clients))
	for addr := range c.clients {
		addrs = append(addrs, addr)
	}
	c.mu.Unlock()
	var firstErr error
	for _, addr := range addrs {
		if _, err := c.callOne(addr, fedrpc.Request{Type: fedrpc.Clear}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close terminates all worker connections, cancels in-flight retry
// backoffs, and joins the health prober if one is running. It is
// idempotent. The prober join happens outside c.mu: the prober's probes go
// through Client/call, which take c.mu themselves.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	for _, cl := range c.clients {
		cl.Close()
	}
	c.clients = map[string]*fedrpc.Client{}
	c.mu.Unlock()
	c.healthWg.Wait()
}

// parallelCall issues, for each partition, the request batch produced by
// build, in parallel across workers, and returns the responses in partition
// order. Any transport or per-request failure aborts with the error of the
// lowest-indexed failing partition (deterministic reporting regardless of
// goroutine completion order); before returning, worker-side objects that
// the aborted operation had already created on other partitions are
// reclaimed best-effort, so a failed federated operation does not leak
// PUT/READ/output bindings.
func (c *Coordinator) parallelCall(parts []Partition, build func(i int, p Partition) []fedrpc.Request) ([][]fedrpc.Response, error) {
	type job struct {
		reqs  []fedrpc.Request
		resps []fedrpc.Response
		err   error
	}
	jobs := make([]job, len(parts))
	results := make(chan int, len(parts))
	for i, p := range parts {
		jobs[i].reqs = build(i, p)
		go func(i int, p Partition) {
			resps, err := c.callCtx(obs.WithOp(context.Background(), "parallel"), p.Addr, jobs[i].reqs)
			if err == nil {
				for ri, r := range resps {
					if !r.OK {
						err = fmt.Errorf("federated: %s %s: %s", p.Addr, jobs[i].reqs[ri].Type, r.Err)
						break
					}
				}
			}
			jobs[i].resps, jobs[i].err = resps, err
			results <- i
		}(i, p)
	}
	for range parts {
		<-results
	}
	firstErr := -1
	for i := range jobs {
		if jobs[i].err != nil {
			firstErr = i
			break
		}
	}
	if firstErr >= 0 {
		reqs := make([][]fedrpc.Request, len(parts))
		for i := range jobs {
			reqs[i] = jobs[i].reqs
		}
		c.cleanupPartial(parts, reqs)
		return nil, jobs[firstErr].err
	}
	out := make([][]fedrpc.Response, len(parts))
	for i := range jobs {
		out[i] = jobs[i].resps
	}
	return out, nil
}

// cleanupPartial best-effort-releases the worker-side objects an aborted
// parallelCall created, in parallel. rmvar of an ID that was never bound is
// a no-op at the worker, so the sweep is safe on failed and succeeded
// partitions alike; errors are ignored — an unreachable worker's state dies
// with its session CLEAR instead.
func (c *Coordinator) cleanupPartial(parts []Partition, reqs [][]fedrpc.Request) {
	var wg sync.WaitGroup
	for i, p := range parts {
		ids := createdIDs(reqs[i])
		if len(ids) == 0 {
			continue
		}
		wg.Add(1)
		go func(addr string, ids []int64) {
			defer wg.Done()
			cl, err := c.Client(addr)
			if err != nil {
				return
			}
			_, _ = cl.Call(fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "rmvar", Inputs: ids,
			}})
		}(p.Addr, ids)
	}
	wg.Wait()
}

// freePartitions best-effort-removes the worker-side bindings of the given
// partitions in parallel. It is the cleanup path of sequential constructors
// (Distribute*, Read*) that abort midway: without it the already-placed
// partitions would leak in the workers' symbol tables until session CLEAR.
func (c *Coordinator) freePartitions(parts []Partition) {
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(addr string, id int64) {
			defer wg.Done()
			cl, err := c.Client(addr)
			if err != nil {
				return
			}
			_, _ = cl.Call(fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "rmvar", Inputs: []int64{id},
			}})
		}(p.Addr, p.DataID)
	}
	wg.Wait()
}

// createdIDs lists the symbol-table bindings a request batch creates:
// READ/PUT targets and instruction/UDF outputs. Bindings the batch itself
// removes (rmvar) are not creations.
func createdIDs(reqs []fedrpc.Request) []int64 {
	var ids []int64
	for _, r := range reqs {
		switch r.Type {
		case fedrpc.Read, fedrpc.Put:
			ids = append(ids, r.ID)
		case fedrpc.ExecInst:
			if r.Inst != nil && r.Inst.Opcode != "rmvar" && r.Inst.Output != 0 {
				ids = append(ids, r.Inst.Output)
			}
		case fedrpc.ExecUDF:
			if r.UDF != nil && r.UDF.Output != 0 {
				ids = append(ids, r.UDF.Output)
			}
		}
	}
	return ids
}
