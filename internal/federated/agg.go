package federated

import (
	"fmt"

	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
)

// AggFull computes a full aggregation (sum, min, max, mean, var, sd) over
// the federated matrix. Workers return partial aggregation tuples
// (sum, sumsq, min, max, n) which the coordinator combines — only
// aggregates travel, never raw data.
func (m *Matrix) AggFull(op matrix.AggOp) (float64, error) {
	resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		oid := m.c.NewID()
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "ua_partial", Inputs: []int64{p.DataID}, Output: oid}},
			{Type: fedrpc.Get, ID: oid},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{oid}}},
		}
	})
	if err != nil {
		return 0, err
	}
	n := len(resps)
	sums, sumSqs, mins, maxs, counts := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n), make([]int, n)
	for i, rs := range resps {
		t := rs[1].Data.Matrix()
		sums[i], sumSqs[i], mins[i], maxs[i], counts[i] = t.At(0, 0), t.At(0, 1), t.At(0, 2), t.At(0, 3), int(t.At(0, 4))
	}
	return matrix.CombinePartialAggs(op, sums, sumSqs, mins, maxs, counts), nil
}

// Sum returns the sum of all cells.
func (m *Matrix) Sum() (float64, error) { return m.AggFull(matrix.AggSum) }

// RowAgg computes per-row aggregates. For row-partitioned data the result
// stays federated (each worker owns complete rows); for column-partitioned
// data, per-partition partials are combined at the coordinator into a local
// rows x 1 vector. Exactly one of the results is non-nil.
func (m *Matrix) RowAgg(op matrix.AggOp) (*Matrix, *matrix.Dense, error) {
	switch m.Scheme() {
	case RowPartitioned:
		outIDs := m.newIDs()
		_, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
			return []fedrpc.Request{
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
					Opcode: "uar_" + op.String(), Inputs: []int64{p.DataID}, Output: outIDs[i]}},
			}
		})
		if err != nil {
			return nil, nil, err
		}
		out := m.derive(m.Rows(), 1, outIDs, func(r Range) Range {
			return Range{RowBeg: r.RowBeg, RowEnd: r.RowEnd, ColBeg: 0, ColEnd: 1}
		})
		return out, nil, nil
	case ColPartitioned:
		// Transposed problem: combine per-partition column aggregates of
		// the transposed view — equivalently, fetch per-partition row
		// partials and merge. Only sum/min/max/mean compose from row
		// partials without sumsq; use the 5-tuple per row.
		local, err := m.colPartRowAgg(op)
		return nil, local, err
	default:
		return nil, nil, fmt.Errorf("federated: rowAgg on irregular partitioning unsupported")
	}
}

// colPartRowAgg combines row aggregates across column partitions by
// fetching per-partition (rows x 5) partial tuples.
func (m *Matrix) colPartRowAgg(op matrix.AggOp) (*matrix.Dense, error) {
	resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		// Partial tuples per row: transpose then uac_partial gives 5 x rows.
		tid, oid := m.c.NewID(), m.c.NewID()
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "t", Inputs: []int64{p.DataID}, Output: tid}},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "uac_partial", Inputs: []int64{tid}, Output: oid}},
			{Type: fedrpc.Get, ID: oid},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{tid, oid}}},
		}
	})
	if err != nil {
		return nil, err
	}
	return combineTupleColumns(op, resps, m.Rows(), func(i int) *matrix.Dense {
		return resps[i][2].Data.Matrix()
	})
}

// ColAgg computes per-column aggregates. For row-partitioned data the
// coordinator combines per-partition 5 x cols partial tuples into a local
// 1 x cols vector; for column-partitioned data the result stays federated.
func (m *Matrix) ColAgg(op matrix.AggOp) (*Matrix, *matrix.Dense, error) {
	switch m.Scheme() {
	case RowPartitioned:
		resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
			oid := m.c.NewID()
			return []fedrpc.Request{
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
					Opcode: "uac_partial", Inputs: []int64{p.DataID}, Output: oid}},
				{Type: fedrpc.Get, ID: oid},
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{oid}}},
			}
		})
		if err != nil {
			return nil, nil, err
		}
		local, err := combineTupleColumns(op, resps, m.Cols(), func(i int) *matrix.Dense {
			return resps[i][1].Data.Matrix()
		})
		if err != nil {
			return nil, nil, err
		}
		return nil, local.Transpose(), nil
	case ColPartitioned:
		outIDs := m.newIDs()
		_, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
			tid := m.c.NewID()
			return []fedrpc.Request{
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
					Opcode: "t", Inputs: []int64{p.DataID}, Output: tid}},
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
					Opcode: "uar_" + op.String(), Inputs: []int64{tid}, Output: outIDs[i]}},
				{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{tid}}},
			}
		})
		if err != nil {
			return nil, nil, err
		}
		// Each worker now holds a (colrange x 1) vector; flip to 1 x cols map.
		fm := FedMap{Rows: 1, Cols: m.Cols()}
		for i, p := range m.fm.Partitions {
			_ = i
			fm.Partitions = append(fm.Partitions, Partition{
				Range:  Range{RowBeg: 0, RowEnd: 1, ColBeg: p.Range.ColBeg, ColEnd: p.Range.ColEnd},
				Addr:   p.Addr,
				DataID: outIDs[i],
			})
		}
		// The worker-held vectors are colrange x 1, but the map says 1 x
		// colrange; transpose them in place to match.
		tFM, err := transposeInPlace(m.c, fm, outIDs)
		if err != nil {
			return nil, nil, err
		}
		out, err := FromMap(m.c, tFM)
		return out, nil, err
	default:
		return nil, nil, fmt.Errorf("federated: colAgg on irregular partitioning unsupported")
	}
}

// transposeInPlace rebinds each partition's data to its transpose under a
// fresh ID, keeping the provided map.
func transposeInPlace(c *Coordinator, fm FedMap, ids []int64) (FedMap, error) {
	for i := range fm.Partitions {
		nid := c.NewID()
		if _, err := c.callOne(fm.Partitions[i].Addr, fedrpc.Request{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
			Opcode: "t", Inputs: []int64{ids[i]}, Output: nid}}); err != nil {
			return fm, err
		}
		fm.Partitions[i].DataID = nid
	}
	return fm, nil
}

// combineTupleColumns merges per-partition 5 x n tuple matrices
// (sum, sumsq, min, max, count rows) into the final aggregate vector n x 1.
func combineTupleColumns(op matrix.AggOp, resps [][]fedrpc.Response, n int, tuple func(i int) *matrix.Dense) (*matrix.Dense, error) {
	out := matrix.NewDense(n, 1)
	k := len(resps)
	sums := make([]float64, k)
	sumSqs := make([]float64, k)
	mins := make([]float64, k)
	maxs := make([]float64, k)
	counts := make([]int, k)
	for j := 0; j < n; j++ {
		for i := 0; i < k; i++ {
			t := tuple(i)
			if t.Cols() != n || t.Rows() != 5 {
				return nil, fmt.Errorf("federated: partial tuple is %dx%d, want 5x%d", t.Rows(), t.Cols(), n)
			}
			sums[i], sumSqs[i], mins[i], maxs[i], counts[i] = t.At(0, j), t.At(1, j), t.At(2, j), t.At(3, j), int(t.At(4, j))
		}
		out.Set(j, 0, matrix.CombinePartialAggs(op, sums, sumSqs, mins, maxs, counts))
	}
	return out, nil
}

// RowIndexMax returns the 1-based argmax column per row as a federated
// vector (row-partitioned data only).
func (m *Matrix) RowIndexMax() (*Matrix, error) {
	if m.Scheme() != RowPartitioned {
		return nil, fmt.Errorf("federated: rowIndexMax requires row partitioning")
	}
	outIDs := m.newIDs()
	_, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "uar_indexmax", Inputs: []int64{p.DataID}, Output: outIDs[i]}},
		}
	})
	if err != nil {
		return nil, err
	}
	out := m.derive(m.Rows(), 1, outIDs, func(r Range) Range {
		return Range{RowBeg: r.RowBeg, RowEnd: r.RowEnd, ColBeg: 0, ColEnd: 1}
	})
	return out, nil
}

// Slice extracts the federated sub-matrix [rowBeg:rowEnd, colBeg:colEnd)
// (DML matrix indexing X[:,:]). Only partitions overlapping the requested
// range participate; each slices its intersection locally and the result
// stays federated.
func (m *Matrix) Slice(rowBeg, rowEnd, colBeg, colEnd int) (*Matrix, error) {
	if rowBeg < 0 || colBeg < 0 || rowEnd > m.Rows() || colEnd > m.Cols() ||
		rowBeg >= rowEnd || colBeg >= colEnd {
		return nil, fmt.Errorf("federated: slice [%d:%d,%d:%d] out of range for %dx%d",
			rowBeg, rowEnd, colBeg, colEnd, m.Rows(), m.Cols())
	}
	var parts []Partition
	var rels []Range
	for _, p := range m.fm.Partitions {
		r := p.Range
		irb, ire := maxInt(rowBeg, r.RowBeg), minInt(rowEnd, r.RowEnd)
		icb, ice := maxInt(colBeg, r.ColBeg), minInt(colEnd, r.ColEnd)
		if irb >= ire || icb >= ice {
			continue
		}
		parts = append(parts, p)
		rels = append(rels, Range{
			RowBeg: irb - r.RowBeg, RowEnd: ire - r.RowBeg,
			ColBeg: icb - r.ColBeg, ColEnd: ice - r.ColBeg,
		})
	}
	outIDs := make([]int64, len(parts))
	for i := range outIDs {
		outIDs[i] = m.c.NewID()
	}
	_, err := m.c.parallelCall(parts, func(i int, p Partition) []fedrpc.Request {
		rel := rels[i]
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "rightIndex", Inputs: []int64{p.DataID}, Output: outIDs[i],
				Scalars: []float64{float64(rel.RowBeg), float64(rel.RowEnd), float64(rel.ColBeg), float64(rel.ColEnd)}}},
		}
	})
	if err != nil {
		return nil, err
	}
	fm := FedMap{Rows: rowEnd - rowBeg, Cols: colEnd - colBeg}
	for i, p := range parts {
		abs := Range{
			RowBeg: p.Range.RowBeg + rels[i].RowBeg - rowBeg,
			RowEnd: p.Range.RowBeg + rels[i].RowEnd - rowBeg,
			ColBeg: p.Range.ColBeg + rels[i].ColBeg - colBeg,
			ColEnd: p.Range.ColBeg + rels[i].ColEnd - colBeg,
		}
		fm.Partitions = append(fm.Partitions, Partition{Range: abs, Addr: p.Addr, DataID: outIDs[i]})
	}
	return FromMap(m.c, fm)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
