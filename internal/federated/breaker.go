package federated

// Per-worker circuit breakers.
//
// The retry loop (coordinator.go) makes the coordinator persistent; the
// breaker makes it polite about it. Without one, a worker that is down —
// or, worse, up but consistently blowing its call budgets — gets hammered
// with redials and full-size batches by every operation that touches its
// partition, each paying the whole timeout before failing. The breaker
// converts that repeated full-price failure into an immediate typed
// ErrWorkerUnavailable while the worker is known-sick, and uses the health
// prober's cheap HEALTH pings (one empty request, no payload) as the
// recovery signal instead of live traffic.
//
// State machine (classic three-state):
//
//	closed ──(Threshold consecutive transport/deadline failures)──> open
//	open ──(successful HEALTH probe, or Cooldown elapsed)──> half-open
//	half-open ──(one real call succeeds)──> closed
//	half-open ──(the trial call fails)──> open
//
// While open, real calls fail fast with ErrWorkerUnavailable; HEALTH
// probes always pass through (they are the recovery signal). While
// half-open, exactly one real call is admitted as the trial; concurrent
// calls keep failing fast until it resolves.

import (
	"errors"
	"sync"
	"time"
)

// ErrWorkerUnavailable marks calls rejected without touching the wire
// because the worker's circuit breaker is open: recent consecutive
// failures exhausted BreakerPolicy.Threshold and no recovery signal (a
// successful health probe, or Cooldown) has arrived yet. Callers can
// errors.Is for it to distinguish load-shedding from a fresh failure.
var ErrWorkerUnavailable = errors.New("federated: worker unavailable (circuit breaker open)")

// BreakerPolicy configures the per-worker circuit breakers. The zero value
// disables breaking entirely (every call goes to the wire, as before).
type BreakerPolicy struct {
	// Threshold is the number of consecutive transport failures or
	// deadline blowouts that trips a worker's breaker open. <= 0 disables
	// the breaker.
	Threshold int
	// Cooldown, when positive, moves an open breaker to half-open after
	// this much time even without a successful health probe — the recovery
	// path for coordinators that run without a prober (StartHealth off).
	// Zero means probe-only recovery.
	Cooldown time.Duration
}

// DefaultBreakerPolicy trips after 3 consecutive failures and allows a
// self-service trial after 5s open, prober or not.
func DefaultBreakerPolicy() BreakerPolicy {
	return BreakerPolicy{Threshold: 3, Cooldown: 5 * time.Second}
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateName maps states to the labels used in errors and tests.
func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one worker's circuit state.
type breaker struct {
	mu       sync.Mutex
	state    int       // breaker* constant; guarded by mu
	fails    int       // consecutive failures while closed; guarded by mu
	openedAt time.Time // when the breaker last tripped; guarded by mu
	trial    bool      // a half-open trial call is in flight; guarded by mu
}

// Breakers live on the Fleet, one per worker address, shared by every
// session: a worker that is down is down for all of them, so one session's
// transport failures shed load for the rest. The Coordinator methods below
// the Fleet ones are thin delegates kept for callers (and tests) that
// predate the fleet split.

// breakerFor returns (creating if needed) the breaker for addr.
func (f *Fleet) breakerFor(addr string) *breaker {
	f.brkMu.Lock()
	defer f.brkMu.Unlock()
	b, ok := f.breakers[addr]
	if !ok {
		b = &breaker{}
		f.breakers[addr] = b
	}
	return b
}

// SetBreakerPolicy configures (or, with the zero value, disables) the
// per-worker circuit breakers. Call it before issuing federated
// operations; existing breaker state is reset.
func (f *Fleet) SetBreakerPolicy(p BreakerPolicy) {
	f.brkMu.Lock()
	f.breaker = p
	f.breakers = map[string]*breaker{}
	f.brkMu.Unlock()
	f.reg.Gauge("fed.breaker.open_count").Set(0)
}

// SetBreakerPolicy configures the breakers of this coordinator's fleet —
// fleet-wide state: on a shared fleet it applies to every session.
func (c *Coordinator) SetBreakerPolicy(p BreakerPolicy) { c.fleet.SetBreakerPolicy(p) }

// BreakerState reports the named worker's breaker state ("closed", "open",
// "half-open") — closed when breaking is disabled or the worker is
// unknown.
func (f *Fleet) BreakerState(addr string) string {
	f.brkMu.Lock()
	enabled := f.breaker.Threshold > 0
	b := f.breakers[addr]
	f.brkMu.Unlock()
	if !enabled || b == nil {
		return breakerStateName(breakerClosed)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateName(b.state)
}

// BreakerState reports a worker's breaker state on this coordinator's
// fleet.
func (c *Coordinator) BreakerState(addr string) string { return c.fleet.BreakerState(addr) }

// breakerAllow gates one call attempt to addr. Health batches always pass:
// they are the probe traffic the recovery path depends on. For real
// traffic: closed passes, open fails fast (after a Cooldown check), and
// half-open admits exactly one in-flight trial.
func (f *Fleet) breakerAllow(addr string, isHealth bool) error {
	f.brkMu.Lock()
	pol := f.breaker
	f.brkMu.Unlock()
	if pol.Threshold <= 0 || isHealth {
		return nil
	}
	b := f.breakerFor(addr)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if pol.Cooldown > 0 && time.Since(b.openedAt) >= pol.Cooldown {
			b.state = breakerHalfOpen
			b.trial = true
			f.reg.Counter("fed.breaker.half_opens").Inc()
			f.reg.Gauge("fed.breaker.open_count").Add(-1)
			return nil // this call is the trial
		}
		return ErrWorkerUnavailable
	default: // half-open
		if b.trial {
			return ErrWorkerUnavailable // a trial is already in flight
		}
		b.trial = true
		return nil
	}
}

// breakerSuccess records a successful real exchange with addr: a
// half-open trial (or any success) closes the breaker and clears the
// consecutive-failure count.
func (f *Fleet) breakerSuccess(addr string, isHealth bool) {
	f.brkMu.Lock()
	pol := f.breaker
	f.brkMu.Unlock()
	if pol.Threshold <= 0 {
		return
	}
	if isHealth {
		f.breakerProbeSuccess(addr)
		return
	}
	b := f.breakerFor(addr)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		f.reg.Counter("fed.breaker.closes").Inc()
		if b.state == breakerOpen {
			f.reg.Gauge("fed.breaker.open_count").Add(-1)
		}
	}
	b.state = breakerClosed
	b.fails = 0
	b.trial = false
}

// breakerFailure records a transport failure or deadline blowout against
// addr. Threshold consecutive failures trip the breaker; a failed
// half-open trial re-opens it immediately.
func (f *Fleet) breakerFailure(addr string) {
	f.brkMu.Lock()
	pol := f.breaker
	f.brkMu.Unlock()
	if pol.Threshold <= 0 {
		return
	}
	b := f.breakerFor(addr)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return // already open; nothing to count
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.trial = false
		f.reg.Counter("fed.breaker.opens").Inc()
		f.reg.Gauge("fed.breaker.open_count").Add(1)
		return
	}
	b.fails++
	if b.fails >= pol.Threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.fails = 0
		f.reg.Counter("fed.breaker.opens").Inc()
		f.reg.Gauge("fed.breaker.open_count").Add(1)
	}
}

// breakerProbeSuccess records a successful HEALTH probe of addr: the
// recovery signal that moves an open breaker to half-open, where the next
// real call runs as the trial. A probe alone never closes the breaker —
// HEALTH exercises none of the data path ("one real call closes it").
func (f *Fleet) breakerProbeSuccess(addr string) {
	f.brkMu.Lock()
	pol := f.breaker
	f.brkMu.Unlock()
	if pol.Threshold <= 0 {
		return
	}
	b := f.breakerFor(addr)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		b.state = breakerHalfOpen
		b.trial = false
		f.reg.Counter("fed.breaker.half_opens").Inc()
		f.reg.Gauge("fed.breaker.open_count").Add(-1)
	}
}

// Coordinator delegates: the retry loop (and pre-fleet tests) address the
// breakers through the session's coordinator.

func (c *Coordinator) breakerAllow(addr string, isHealth bool) error {
	return c.fleet.breakerAllow(addr, isHealth)
}

func (c *Coordinator) breakerSuccess(addr string, isHealth bool) {
	c.fleet.breakerSuccess(addr, isHealth)
}

func (c *Coordinator) breakerFailure(addr string) { c.fleet.breakerFailure(addr) }

func (c *Coordinator) breakerProbeSuccess(addr string) { c.fleet.breakerProbeSuccess(addr) }

func (c *Coordinator) breakerFor(addr string) *breaker { return c.fleet.breakerFor(addr) }
