// Package federated implements the coordinator side of ExDRa's federated
// runtime backend (§4): federated data objects described by federation maps,
// federated linear-algebra operations composed from the six generic request
// types, federated transformencode, and the consolidation and privacy rules
// of §4.1–§4.4. It is the paper's primary contribution.
package federated

import (
	"fmt"
	"sort"
)

// Range is a half-open, zero-based cell range [RowBeg,RowEnd) x
// [ColBeg,ColEnd) of a federated object.
type Range struct {
	RowBeg, RowEnd int
	ColBeg, ColEnd int
}

// NumRows returns the row extent of the range.
func (r Range) NumRows() int { return r.RowEnd - r.RowBeg }

// NumCols returns the column extent of the range.
func (r Range) NumCols() int { return r.ColEnd - r.ColBeg }

func (r Range) overlaps(o Range) bool {
	return r.RowBeg < o.RowEnd && o.RowBeg < r.RowEnd &&
		r.ColBeg < o.ColEnd && o.ColBeg < r.ColEnd
}

// Partition locates one disjoint region of a federated object: the range it
// covers, the federated worker holding it, and the worker-local data ID.
type Partition struct {
	Range  Range
	Addr   string // host:port of the federated worker
	DataID int64  // symbol-table ID at the worker
}

// Scheme classifies a federation map's partitioning.
type Scheme int

// Partitioning schemes (ExDRa §2.3: row-partitioned / horizontal and
// column-partitioned / vertical federated data).
const (
	RowPartitioned Scheme = iota
	ColPartitioned
	Irregular
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case RowPartitioned:
		return "row-partitioned"
	case ColPartitioned:
		return "column-partitioned"
	default:
		return "irregular"
	}
}

// FedMap is the coordinator-held metadata of a federated object: overall
// dimensions and the non-overlapping partition ranges with their locations
// (Figure 2 of the paper).
type FedMap struct {
	Rows, Cols int
	Partitions []Partition
}

// Validate checks that partitions are in-bounds, non-overlapping, and cover
// the full object.
func (fm FedMap) Validate() error {
	covered := 0
	for i, p := range fm.Partitions {
		r := p.Range
		if r.RowBeg < 0 || r.ColBeg < 0 || r.RowEnd > fm.Rows || r.ColEnd > fm.Cols ||
			r.RowBeg >= r.RowEnd || r.ColBeg >= r.ColEnd {
			return fmt.Errorf("federated: partition %d range %+v out of bounds for %dx%d",
				i, r, fm.Rows, fm.Cols)
		}
		for j := i + 1; j < len(fm.Partitions); j++ {
			if r.overlaps(fm.Partitions[j].Range) {
				return fmt.Errorf("federated: partitions %d and %d overlap", i, j)
			}
		}
		covered += r.NumRows() * r.NumCols()
	}
	if covered != fm.Rows*fm.Cols {
		return fmt.Errorf("federated: partitions cover %d of %d cells", covered, fm.Rows*fm.Cols)
	}
	return nil
}

// Scheme classifies the map: row-partitioned if every partition spans all
// columns, column-partitioned if every partition spans all rows.
func (fm FedMap) Scheme() Scheme {
	rowPart, colPart := true, true
	for _, p := range fm.Partitions {
		if p.Range.ColBeg != 0 || p.Range.ColEnd != fm.Cols {
			rowPart = false
		}
		if p.Range.RowBeg != 0 || p.Range.RowEnd != fm.Rows {
			colPart = false
		}
	}
	switch {
	case rowPart && len(fm.Partitions) > 0:
		return RowPartitioned
	case colPart && len(fm.Partitions) > 0:
		return ColPartitioned
	default:
		return Irregular
	}
}

// sorted returns partitions ordered by (RowBeg, ColBeg), the canonical
// order used for alignment checks and consolidation.
func (fm FedMap) sorted() []Partition {
	out := append([]Partition(nil), fm.Partitions...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Range.RowBeg != out[j].Range.RowBeg {
			return out[i].Range.RowBeg < out[j].Range.RowBeg
		}
		return out[i].Range.ColBeg < out[j].Range.ColBeg
	})
	return out
}

// AlignedRows reports whether two maps have identical worker addresses and
// row ranges partition-by-partition (in canonical order) — the
// co-partitioning condition under which federated-federated operations
// execute without data movement (§4.2).
func AlignedRows(a, b FedMap) bool {
	if a.Rows != b.Rows || len(a.Partitions) != len(b.Partitions) {
		return false
	}
	as, bs := a.sorted(), b.sorted()
	for i := range as {
		if as[i].Addr != bs[i].Addr ||
			as[i].Range.RowBeg != bs[i].Range.RowBeg ||
			as[i].Range.RowEnd != bs[i].Range.RowEnd {
			return false
		}
	}
	return true
}

// AlignedExact reports whether two maps are co-partitioned in both
// dimensions (identical addresses, row ranges, and column ranges) — the
// condition for element-wise federated-federated operations on
// column-partitioned (and irregular) data.
func AlignedExact(a, b FedMap) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.Partitions) != len(b.Partitions) {
		return false
	}
	as, bs := a.sorted(), b.sorted()
	for i := range as {
		if as[i].Addr != bs[i].Addr || as[i].Range != bs[i].Range {
			return false
		}
	}
	return true
}
