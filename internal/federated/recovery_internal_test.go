package federated

import (
	"errors"
	"testing"

	"exdra/internal/fedrpc"
)

func recCoord() *Coordinator {
	c := NewCoordinator(fedrpc.Options{})
	c.EnableRecovery(true)
	return c
}

func okResps(n int) []fedrpc.Response {
	out := make([]fedrpc.Response, n)
	for i := range out {
		out[i] = fedrpc.Response{OK: true, Epoch: 1}
	}
	return out
}

func TestRetryableBatchIncludesHealth(t *testing.T) {
	if !RetryableBatch([]fedrpc.Request{{Type: fedrpc.Health}}) {
		t.Fatal("HEALTH must be retryable: it reads and writes nothing")
	}
}

// TestCreationLogLifecycle: successful batches populate the log, rmvar
// marks entries dead, and dead entries without live dependents are
// garbage-collected while dead dependencies of live objects are retained.
func TestCreationLogLifecycle(t *testing.T) {
	c := recCoord()
	defer c.Close()
	const addr = "w0"
	reqs := []fedrpc.Request{
		{Type: fedrpc.Put, ID: 1, Data: fedrpc.ScalarPayload(3)},
		{Type: fedrpc.Put, ID: 2, Data: fedrpc.ScalarPayload(4)},
		{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "mm", Inputs: []int64{1, 2}, Output: 3}},
		{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{2}}},
	}
	c.recordBatch(addr, reqs, okResps(len(reqs)))
	s := c.state(addr)
	if len(s.records) != 3 {
		t.Fatalf("log holds %d records, want 3 (dead broadcast retained for live dependent)", len(s.records))
	}
	if rec := s.records[2]; rec == nil || rec.live {
		t.Fatal("rmvar'd broadcast should be recorded dead, not dropped: object 3 depends on it")
	}
	// Killing the dependent releases the dead dependency too.
	c.recordBatch(addr, []fedrpc.Request{
		{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{3}}},
	}, okResps(1))
	if len(s.records) != 1 {
		t.Fatalf("log holds %d records after dependent died, want only the live PUT", len(s.records))
	}
	if s.records[1] == nil {
		t.Fatal("live PUT record was dropped")
	}
	// Failed requests must not enter the log.
	c.recordBatch(addr, []fedrpc.Request{{Type: fedrpc.Put, ID: 9}}, []fedrpc.Response{{OK: false, Err: "boom"}})
	if s.records[9] != nil {
		t.Fatal("failed PUT entered the creation log")
	}
}

// TestObserveEpoch: first contact records, same epoch is quiet, a changed
// epoch marks every record stale and counts a restart.
func TestObserveEpoch(t *testing.T) {
	c := recCoord()
	defer c.Close()
	const addr = "w0"
	c.recordBatch(addr, []fedrpc.Request{{Type: fedrpc.Put, ID: 1}}, okResps(1))
	if c.observeEpoch(addr, 0) {
		t.Fatal("unstamped responses must not signal a restart")
	}
	if c.observeEpoch(addr, 7) {
		t.Fatal("first contact is not a restart")
	}
	if c.observeEpoch(addr, 7) {
		t.Fatal("same epoch is not a restart")
	}
	if !c.observeEpoch(addr, 8) {
		t.Fatal("epoch change under a known address must signal a restart")
	}
	s := c.state(addr)
	if s.records[1].fresh {
		t.Fatal("records must be marked stale on restart")
	}
	if got := c.Stats().RestartsDetected; got != 1 {
		t.Fatalf("RestartsDetected = %d, want 1", got)
	}
}

// TestPlanReplayTopologicalOrder: replay re-issues creations dependencies
// first, includes stale dead dependencies of the needed object, and lists
// them for the trailing rmvar.
func TestPlanReplayTopologicalOrder(t *testing.T) {
	c := recCoord()
	defer c.Close()
	const addr = "w0"
	c.recordBatch(addr, []fedrpc.Request{
		{Type: fedrpc.Put, ID: 1},
		{Type: fedrpc.Put, ID: 2},
		{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "mm", Inputs: []int64{1, 2}, Output: 3}},
		{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{2}}},
	}, okResps(4))
	c.observeEpoch(addr, 7)
	if !c.observeEpoch(addr, 8) {
		t.Fatal("restart not detected")
	}
	s := c.state(addr)
	plan, dead, err := c.planReplay(s, []int64{3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("plan has %d records, want 3 (both PUTs + mm)", len(plan))
	}
	if out := plan[len(plan)-1].req.Inst; out == nil || out.Output != 3 {
		t.Fatal("dependent instruction must replay after its inputs")
	}
	if len(dead) != 1 || dead[0] != 2 {
		t.Fatalf("dead temps to re-remove = %v, want [2]", dead)
	}
	// Fresh objects need no replay.
	plan2, _, err := c.planReplay(s, []int64{99}, true)
	if err != nil || len(plan2) != 0 {
		t.Fatalf("untracked ID produced a plan: %v, %v", plan2, err)
	}
}

// TestPlanReplayUnrecoverable: a needed EXEC_UDF-created object fails
// strict planning with the typed error and is skipped by best-effort
// repair planning.
func TestPlanReplayUnrecoverable(t *testing.T) {
	c := recCoord()
	defer c.Close()
	const addr = "w0"
	c.recordBatch(addr, []fedrpc.Request{
		{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{Name: "mkstate", Output: 5}},
	}, okResps(1))
	c.observeEpoch(addr, 7)
	c.observeEpoch(addr, 8)
	s := c.state(addr)
	_, _, err := c.planReplay(s, []int64{5}, true)
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("strict plan over UDF state = %v, want ErrUnrecoverable", err)
	}
	plan, _, err := c.planReplay(s, []int64{5}, false)
	if err != nil || len(plan) != 0 {
		t.Fatalf("best-effort plan must skip UDF state, got %v, %v", plan, err)
	}
}

// TestInstTraceDeterminism: the lineage trace of an instruction is stable
// across map iteration order (attrs sorted) and distinguishes different
// computations.
func TestInstTraceDeterminism(t *testing.T) {
	s := &workerState{records: map[int64]*creationRec{
		1: {trace: "file#a.csv"},
	}}
	inst := func(attrs map[string]string) *fedrpc.Instruction {
		return &fedrpc.Instruction{Opcode: "slice", Inputs: []int64{1}, Output: 2, Attrs: attrs}
	}
	a := instTrace(s, inst(map[string]string{"rows": "0:5", "cols": "1:2"}))
	for i := 0; i < 16; i++ {
		if b := instTrace(s, inst(map[string]string{"cols": "1:2", "rows": "0:5"})); b != a {
			t.Fatalf("trace unstable across attr order: %q vs %q", a, b)
		}
	}
	if b := instTrace(s, inst(map[string]string{"rows": "0:6", "cols": "1:2"})); b == a {
		t.Fatal("different attrs produced the same trace")
	}
}

// TestNeededIDs: GETs and instruction/UDF inputs require existence; rmvar
// inputs and READ/PUT targets do not.
func TestNeededIDs(t *testing.T) {
	ids := neededIDs([]fedrpc.Request{
		{Type: fedrpc.Read, ID: 1},
		{Type: fedrpc.Put, ID: 2},
		{Type: fedrpc.Get, ID: 3},
		{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "mm", Inputs: []int64{4, 5}, Output: 6}},
		{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{7}}},
		{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{Name: "f", Inputs: []int64{8}}},
		{Type: fedrpc.Health},
	})
	want := []int64{3, 4, 5, 8}
	if len(ids) != len(want) {
		t.Fatalf("neededIDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("neededIDs = %v, want %v", ids, want)
		}
	}
}
