package federated_test

import (
	"math"
	"testing"

	"exdra/internal/federated"
	"exdra/internal/frame"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
	"exdra/internal/transform"
)

// TestTable1Coverage verifies every operation class of ExDRa Table 1
// (matmult, aggregates, unary, binary, ternary, quaternary,
// transform/reorg) element-wise against local execution, on row-partitioned
// federated data — the T1 experiment of DESIGN.md.
func TestTable1Coverage(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(100, 24, 6)
	// Shift into positive territory so log/sqrt are well-defined.
	xp := x.Apply(func(v float64) float64 { return math.Abs(v) + 0.5 })
	fx, err := federated.Distribute(cl.Coord, xp, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("matmult", func(t *testing.T) {
		v := randMat(101, 6, 2)
		fed, _, err := fx.MatVec(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fed.Consolidate()
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualApprox(xp.MatMul(v), 1e-9) {
			t.Error("mm")
		}
		ts, err := fx.TSMM()
		if err != nil {
			t.Fatal(err)
		}
		if !ts.EqualApprox(xp.TSMM(), 1e-8) {
			t.Error("tsmm")
		}
		vv := randMat(102, 6, 1)
		mc, err := fx.MMChain(vv, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !mc.EqualApprox(xp.MMChain(vv, nil), 1e-8) {
			t.Error("mmchain")
		}
	})

	t.Run("aggregates", func(t *testing.T) {
		for _, op := range []matrix.AggOp{matrix.AggSum, matrix.AggMin, matrix.AggMax,
			matrix.AggMean, matrix.AggVar, matrix.AggSD} {
			got, err := fx.AggFull(op)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-xp.Agg(op)) > 1e-9 {
				t.Errorf("full %v: %g want %g", op, got, xp.Agg(op))
			}
			fedRow, _, err := fx.RowAgg(op)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := fedRow.Consolidate()
			if err != nil {
				t.Fatal(err)
			}
			if !rows.EqualApprox(xp.RowAgg(op), 1e-9) {
				t.Errorf("row %v", op)
			}
			_, cols, err := fx.ColAgg(op)
			if err != nil {
				t.Fatal(err)
			}
			if !cols.EqualApprox(xp.ColAgg(op), 1e-9) {
				t.Errorf("col %v", op)
			}
		}
	})

	t.Run("unary", func(t *testing.T) {
		for _, op := range []matrix.UnaryOp{matrix.UAbs, matrix.UCos, matrix.UExp,
			matrix.UFloor, matrix.UIsNA, matrix.ULog, matrix.UNot, matrix.URound,
			matrix.USin, matrix.USign, matrix.USqrt, matrix.UTan, matrix.USigmoid} {
			fed, err := fx.Unary(op)
			if err != nil {
				t.Fatalf("%v: %v", op, err)
			}
			got, err := fed.Consolidate()
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualApprox(xp.Unary(op), 1e-12) {
				t.Errorf("unary %v", op)
			}
		}
		sm, err := fx.Softmax()
		if err != nil {
			t.Fatal(err)
		}
		got, err := sm.Consolidate()
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualApprox(xp.Softmax(), 1e-12) {
			t.Error("softmax")
		}
	})

	t.Run("binary", func(t *testing.T) {
		other := randMat(103, 24, 6).Apply(math.Abs).AddScalar(0.5)
		fo, err := federated.Distribute(cl.Coord, other, cl.Addrs, federated.RowPartitioned, privacy.Public)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range []matrix.BinaryOp{matrix.OpAdd, matrix.OpSub, matrix.OpMul,
			matrix.OpDiv, matrix.OpPow, matrix.OpMin, matrix.OpMax, matrix.OpMod,
			matrix.OpIntDiv, matrix.OpEq, matrix.OpNe, matrix.OpGt, matrix.OpGe,
			matrix.OpLt, matrix.OpLe, matrix.OpAnd, matrix.OpOr, matrix.OpXor} {
			fed, err := fx.Binary(op, fo)
			if err != nil {
				t.Fatalf("%v: %v", op, err)
			}
			got, err := fed.Consolidate()
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualApprox(xp.Binary(op, other), 1e-12) {
				t.Errorf("binary fed-fed %v", op)
			}
		}
		// Matrix-scalar.
		fs, err := fx.BinaryScalar(matrix.OpPow, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs.Consolidate()
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualApprox(xp.BinaryScalar(matrix.OpPow, 2, false), 1e-12) {
			t.Error("matrix-scalar")
		}
	})

	t.Run("ternary", func(t *testing.T) {
		cond, err := fx.BinaryScalar(matrix.OpGt, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		fed, err := cond.IfElse(matrix.Fill(1, 1, 1), matrix.Fill(1, 1, -1))
		if err != nil {
			t.Fatal(err)
		}
		got, err := fed.Consolidate()
		if err != nil {
			t.Fatal(err)
		}
		want := xp.BinaryScalar(matrix.OpGt, 1, false).IfElse(matrix.Fill(1, 1, 1), matrix.Fill(1, 1, -1))
		if !got.EqualApprox(want, 1e-12) {
			t.Error("ifelse")
		}
	})

	t.Run("quaternary", func(t *testing.T) {
		// wsloss-style federated pattern: sum(W * (X - U V^T)^2) decomposes
		// into aligned elementwise + aggregate ops; verify via ops chain.
		u := randMat(104, 24, 2)
		v := randMat(105, 6, 2)
		uv := u.MatMul(v.Transpose())
		fuv, err := fx.BinaryLocal(matrix.OpSub, uv, false)
		if err != nil {
			t.Fatal(err)
		}
		sq, err := fuv.Binary(matrix.OpMul, fuv)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sq.Sum()
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.WSLoss(xp, u, v, nil)
		if math.Abs(got-want) > 1e-7 {
			t.Errorf("wsloss chain: %g want %g", got, want)
		}
	})

	t.Run("transform_reorg", func(t *testing.T) {
		// rbind/cbind/t/indexing/replace covered in TestFederatedReorgOps;
		// here transformencode via the federated frame path.
		fr := frame.MustNew(
			frame.StringColumn("A", []string{"a", "b", "a", "c", "b", "a"}),
			frame.FloatColumn("B", []float64{1, 2, 3, 4, 5, 6}),
		)
		ff, err := federated.DistributeFrame(cl.Coord, fr, cl.Addrs[:2], privacy.Public)
		if err != nil {
			t.Fatal(err)
		}
		spec := transform.Spec{Columns: []transform.ColumnSpec{
			{Name: "A", Method: transform.Recode, OneHot: true},
		}}
		fxEnc, meta, err := ff.TransformEncode(spec, fr.Names())
		if err != nil {
			t.Fatal(err)
		}
		got, err := fxEnc.Consolidate()
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := transform.Encode(fr, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualApprox(want, 0) {
			t.Error("federated transformencode != local encode")
		}
		if meta.NumOutputCols() != 4 {
			t.Errorf("meta cols %d", meta.NumOutputCols())
		}
	})

	t.Run("rowIndexMax", func(t *testing.T) {
		fed, err := fx.RowIndexMax()
		if err != nil {
			t.Fatal(err)
		}
		got, err := fed.Consolidate()
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualApprox(xp.RowIndexMax(), 0) {
			t.Error("rowIndexMax")
		}
	})
}

// TestFigure3Example reproduces the full federated transformencode of
// Figure 3: two sites, columns A (recode+one-hot), B (3 equi-width bins +
// one-hot), C (recode+one-hot) with NULLs, checked against local encoding
// of the union.
func TestFigure3Example(t *testing.T) {
	cl := startCluster(t, 2)
	site1 := frame.MustNew(
		frame.StringColumn("A", []string{"R101", "R101", "C7", "R101", "C3", "R102"}),
		frame.FloatColumn("B", []float64{2100, 4350, 5500, 2500, 4900, 5200}),
		frame.StringColumn("C", []string{"X", "", "Z", "X", "Z", "Y"}),
	)
	site2 := frame.MustNew(
		frame.StringColumn("A", []string{"C5", "C91", "C5", "R101", "C5", "R101"}),
		frame.FloatColumn("B", []float64{3500, 2600, 4400, 5400, 1900, 5200}),
		frame.StringColumn("C", []string{"Z", "Z", "Z", "X", "", "X"}),
	)
	spec := transform.Spec{Columns: []transform.ColumnSpec{
		{Name: "A", Method: transform.Recode, OneHot: true},
		{Name: "B", Method: transform.Bin, NumBins: 3, OneHot: true},
		{Name: "C", Method: transform.Recode, OneHot: true},
	}}
	// Distribute the two site frames exactly as in the figure.
	union, err := frame.RBind(site1, site2)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := federated.DistributeFrame(cl.Coord, union, cl.Addrs, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	fx, meta, err := ff.TransformEncode(spec, union.Names())
	if err != nil {
		t.Fatal(err)
	}
	if fx.Cols() != 12 { // 6 categories of A + 3 bins of B + 3 categories of C
		t.Fatalf("encoded width %d, want 12", fx.Cols())
	}
	got, err := fx.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := transform.Encode(union, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(want, 0) {
		t.Fatal("federated Figure 3 encoding differs from local")
	}
	// The metadata frame is local at the coordinator.
	mf := meta.MetaFrame()
	if mf.NumRows() != 12 {
		t.Fatalf("metadata frame rows %d", mf.NumRows())
	}
	// The federated matrix stays row-partitioned and usable by federated
	// linear algebra (paper: "Federated linear algebra then further allows
	// applying various techniques ...").
	if fx.Scheme() != federated.RowPartitioned {
		t.Fatal("encoded matrix scheme")
	}
	if _, _, err := fx.ColAgg(matrix.AggSum); err != nil {
		t.Fatal(err)
	}
}
