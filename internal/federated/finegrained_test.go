package federated_test

import (
	"strings"
	"testing"

	"exdra/internal/federated"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

// TestFineGrainedColumnConstraints covers §4.1's fine-grained privacy
// constraints: a federated matrix whose columns carry different levels
// (e.g. public sensor readings next to a private customer-equipment
// column in the vertical-FL setting of §2.3).
func TestFineGrainedColumnConstraints(t *testing.T) {
	cl := startCluster(t, 2)
	x := randMat(80, 12, 5) // cols 0-2 public, 3 public, 4 private
	colLevels := []privacy.Level{
		privacy.Public, privacy.Public, privacy.Public, privacy.Public, privacy.Private,
	}
	fx, err := federated.DistributeWithColumns(cl.Coord, x, cl.Addrs,
		federated.RowPartitioned, privacy.Public, colLevels)
	if err != nil {
		t.Fatal(err)
	}

	// The full object contains a private column: transfer denied.
	if _, err := fx.Consolidate(); err == nil || !strings.Contains(err.Error(), "privacy") {
		t.Fatalf("mixed-constraint matrix consolidated: %v", err)
	}

	// Slicing out only the public columns yields transferable data.
	pub, err := fx.Slice(0, 12, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pub.Consolidate()
	if err != nil {
		t.Fatalf("public column slice blocked: %v", err)
	}
	if !got.EqualApprox(x.SliceCols(0, 4), 0) {
		t.Fatal("public slice content")
	}

	// A slice covering the private column stays untransferable.
	priv, err := fx.Slice(0, 12, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := priv.Consolidate(); err == nil {
		t.Fatal("slice containing private column consolidated")
	}

	// Operations touching the private column taint their output
	// conservatively (full-width sum includes it, so the per-cell result
	// of an element-wise op is Private; aggregates of Private stay
	// Private per the lattice).
	sq, err := fx.BinaryScalar(matrix.OpPow, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sq.Consolidate(); err == nil {
		t.Fatal("derived matrix over private column consolidated")
	}
	// But aggregates over the public slice work.
	if _, err := pub.Sum(); err != nil {
		t.Fatal(err)
	}
}
