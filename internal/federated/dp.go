package federated

import (
	"fmt"
	"math/rand"

	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
	"exdra/internal/worker"
)

// Differentially-private federated aggregates: one of the paper's privacy-
// enhancing technologies (§2.3, "differential privacy (added noise)") for
// cases where even exact aggregates cannot be shared. Each worker adds
// Laplace noise to its partial aggregate locally, before anything leaves
// the site, so the coordinator only ever sees noised values (local DP at
// site granularity).

func init() {
	worker.MustRegisterUDF("dp_partial_sum", udfDPPartialSum)
}

// DPArgs configure the local noise addition.
type DPArgs struct {
	// Epsilon is the per-site privacy budget.
	Epsilon float64
	// Sensitivity bounds one record's contribution to the sum.
	Sensitivity float64
	// Seed makes tests deterministic; production deployments use a
	// cryptographic source at the worker.
	Seed int64
}

func udfDPPartialSum(w *worker.Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args DPArgs
	if err := worker.DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	if args.Epsilon <= 0 {
		return fedrpc.Payload{}, fmt.Errorf("dp_partial_sum: epsilon must be positive")
	}
	x, err := w.Matrix(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	rng := rand.New(rand.NewSource(args.Seed))
	noised, err := privacy.LaplaceMechanism(rng, x.Sum(), args.Sensitivity, args.Epsilon)
	if err != nil {
		return fedrpc.Payload{}, fmt.Errorf("dp_partial_sum: %w", err)
	}
	// The noised aggregate is safe to release regardless of the raw
	// object's constraint: that is the point of the mechanism.
	return fedrpc.ScalarPayload(noised), nil
}

// SumDP returns an epsilon-differentially-private federated sum: every site
// noises its partial sum locally with Laplace(sensitivity/epsilon) before
// release. Variance grows with the number of sites (each adds independent
// noise), the standard cost of local DP.
func (m *Matrix) SumDP(epsilon, sensitivity float64, seed int64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("federated: epsilon must be positive")
	}
	resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		args, _ := worker.EncodeArgs(DPArgs{
			Epsilon: epsilon, Sensitivity: sensitivity, Seed: seed + int64(i)})
		return []fedrpc.Request{{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
			Name: "dp_partial_sum", Inputs: []int64{p.DataID}, Args: args}}}
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, rs := range resps {
		total += rs[0].Data.Scalar
	}
	return total, nil
}

// RemoveEmptyRows drops all-zero rows per partition (DML removeEmpty,
// margin="rows") and compacts the federation map accordingly. The output
// stays federated; only per-partition kept-row counts travel.
func (m *Matrix) RemoveEmptyRows() (*Matrix, error) {
	if m.Scheme() != RowPartitioned {
		return nil, fmt.Errorf("federated: removeEmpty(rows) requires row partitioning")
	}
	outIDs := m.newIDs()
	resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "removeEmpty", Inputs: []int64{p.DataID}, Output: outIDs[i],
				Attrs: map[string]string{"margin": "rows"}}},
			{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
				Name: "obj_dims", Inputs: []int64{outIDs[i]}}},
		}
	})
	if err != nil {
		return nil, err
	}
	fm := FedMap{Cols: m.Cols()}
	row := 0
	for i, p := range m.fm.Partitions {
		kept := int(resps[i][1].Data.Matrix().At(0, 0))
		if kept == 0 {
			continue
		}
		fm.Partitions = append(fm.Partitions, Partition{
			Range:  Range{RowBeg: row, RowEnd: row + kept, ColBeg: 0, ColEnd: m.Cols()},
			Addr:   p.Addr,
			DataID: outIDs[i],
		})
		row += kept
	}
	fm.Rows = row
	if row == 0 {
		return nil, fmt.Errorf("federated: removeEmpty produced an empty matrix")
	}
	return FromMap(m.c, fm)
}

// CTableFed computes the contingency table of two aligned federated column
// vectors by summing per-partition partial tables at the coordinator (the
// federated ternary ctable of Table 1). Dimensions are capped at rowsCap x
// colsCap, which must cover the value domain.
func CTableFed(a, b *Matrix, rowsCap, colsCap int) (*matrix.Dense, error) {
	if !AlignedRows(a.fm, b.fm) {
		return nil, fmt.Errorf("federated: ctable requires aligned inputs")
	}
	if rowsCap <= 0 || colsCap <= 0 {
		return nil, fmt.Errorf("federated: ctable requires explicit dimension caps")
	}
	as, bs := a.fm.sorted(), b.fm.sorted()
	parts := make([]Partition, len(as))
	copy(parts, as)
	resps, err := a.c.parallelCall(parts, func(i int, p Partition) []fedrpc.Request {
		oid := a.c.NewID()
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "ctable", Inputs: []int64{p.DataID, bs[i].DataID}, Output: oid,
				Scalars: []float64{float64(rowsCap), float64(colsCap)}}},
			{Type: fedrpc.Get, ID: oid},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{oid}}},
		}
	})
	if err != nil {
		return nil, err
	}
	out := matrix.NewDense(rowsCap, colsCap)
	for _, rs := range resps {
		out.AddInPlace(rs[1].Data.Matrix())
	}
	return out, nil
}
