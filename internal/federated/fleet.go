package federated

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"exdra/internal/fedrpc"
	"exdra/internal/obs"
)

// Fleet is the shared substrate many coordinators multiplex over: one
// connection pool per worker address, one circuit breaker per worker
// address, and the namespace allocator that keeps concurrent sessions'
// object IDs disjoint.
//
// The paper's prototype pairs one control program with one worker fleet, so
// the original Coordinator owned its connections outright. A standing
// service (internal/fedserve) breaks that: many sessions issue operations
// against the same workers at once, and per-session connections would both
// exhaust worker accept limits and hide cross-session breaker signal. The
// Fleet centralizes what is physically shared — wires and worker health —
// while each session keeps its own Coordinator for what is logically
// private: retry policy, creation log, ID sequence, and lifecycle.
//
// A Fleet is safe for concurrent use. Sessions come from NewSession; the
// legacy single-session constructor NewCoordinator wraps a private
// size-1 Fleet, preserving the old one-client-per-address behavior exactly.
type Fleet struct {
	opts     fedrpc.Options
	poolSize int
	reg      *obs.Registry

	mu     sync.Mutex
	pools  map[string]*fedrpc.Pool // guarded by mu
	closed bool                    // guarded by mu

	// nextNS hands out session namespaces. Sequential, never reused: with
	// 23 namespace bits a fleet exhausts them after ~8M sessions, long past
	// any standing daemon's restart cadence, and no reuse means a late
	// straggler batch from a closed session can never write into a
	// namespace that was recycled to a live one.
	nextNS atomic.Int64

	// Circuit-breaker state (breaker.go): policy plus one breaker per
	// worker address, shared by every session so one session's transport
	// failures shed load for all of them.
	brkMu    sync.Mutex
	breaker  BreakerPolicy       // guarded by brkMu
	breakers map[string]*breaker // guarded by brkMu
}

// NewFleet creates a fleet whose per-address pools hold up to poolSize
// connections each (values below 1 are clamped to 1). opts configure TLS,
// network emulation, timeouts, and the metrics registry for every worker
// connection.
func NewFleet(opts fedrpc.Options, poolSize int) *Fleet {
	if poolSize < 1 {
		poolSize = 1
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	return &Fleet{
		opts:     opts,
		poolSize: poolSize,
		reg:      reg,
		pools:    map[string]*fedrpc.Pool{},
		breakers: map[string]*breaker{},
	}
}

// NewSession creates a coordinator view of this fleet under a fresh object
// namespace. The session shares the fleet's pools and breakers but owns its
// retry policy, creation log, and ID sequence; closing it releases only its
// own resources, never the fleet's.
func (f *Fleet) NewSession() (*Coordinator, error) {
	ns := f.nextNS.Add(1)
	if ns > fedrpc.MaxNamespace {
		return nil, fmt.Errorf("federated: fleet namespace space exhausted (%d sessions)", ns-1)
	}
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("federated: fleet is closed")
	}
	return newCoordinator(f, false, ns), nil
}

// PoolSize returns the per-address connection bound.
func (f *Fleet) PoolSize() int { return f.poolSize }

// pool returns (creating if needed) the connection pool for addr. Pools
// dial lazily, so creation under the lock touches no wire.
func (f *Fleet) pool(addr string) (*fedrpc.Pool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("federated: fleet is closed")
	}
	p, ok := f.pools[addr]
	if !ok {
		p = fedrpc.NewPool(addr, f.poolSize, f.opts)
		f.pools[addr] = p
	}
	return p, nil
}

// SharedClient returns addr's stable shared client (the pool's first
// connection, dialed if needed) without holding a checkout. It serves
// legacy single-connection callers and best-effort cleanup sweeps.
func (f *Fleet) SharedClient(ctx context.Context, addr string) (*fedrpc.Client, error) {
	p, err := f.pool(addr)
	if err != nil {
		return nil, err
	}
	return p.Shared(ctx)
}

// Addrs lists every worker address the fleet has a pool for.
func (f *Fleet) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.pools))
	for addr := range f.pools {
		out = append(out, addr)
	}
	return out
}

// PoolStats returns per-address connection accounting for every pool.
func (f *Fleet) PoolStats() map[string]fedrpc.PoolStats {
	f.mu.Lock()
	pools := make(map[string]*fedrpc.Pool, len(f.pools))
	for addr, p := range f.pools {
		pools[addr] = p
	}
	f.mu.Unlock()
	out := make(map[string]fedrpc.PoolStats, len(pools))
	for addr, p := range pools {
		out[addr] = p.Stats()
	}
	return out
}

// BytesSent returns the total bytes sent to all workers across all pools.
func (f *Fleet) BytesSent() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, p := range f.pools {
		n += p.BytesSent()
	}
	return n
}

// BytesReceived returns the total bytes received from all workers.
func (f *Fleet) BytesReceived() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, p := range f.pools {
		n += p.BytesReceived()
	}
	return n
}

// Close closes every pool (terminating all worker connections, checked out
// or idle) and rejects future sessions and checkouts. Sessions still open
// see transport errors; a service drains them first (fedserve.Drain). It is
// idempotent.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	pools := f.pools
	f.pools = map[string]*fedrpc.Pool{}
	f.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
}
