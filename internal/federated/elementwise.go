package federated

import (
	"fmt"

	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
)

// Binary applies an element-wise binary operation between two aligned
// (co-partitioned) federated matrices; the output stays federated with the
// same map (ExDRa §4.2: aligned federated intermediates).
func (m *Matrix) Binary(op matrix.BinaryOp, other *Matrix) (*Matrix, error) {
	if m.Rows() != other.Rows() || m.Cols() != other.Cols() {
		// Column-vector broadcast between aligned row-partitioned matrices
		// (e.g. P / rowSums(P)) is also supported when the vector is
		// federated with the same row ranges.
		if !(other.Cols() == 1 && m.Rows() == other.Rows()) {
			return nil, fmt.Errorf("federated: binary %s shape mismatch %dx%d vs %dx%d",
				op, m.Rows(), m.Cols(), other.Rows(), other.Cols())
		}
	}
	sameShape := m.Rows() == other.Rows() && m.Cols() == other.Cols()
	aligned := AlignedRows(m.fm, other.fm)
	if aligned && sameShape && m.Scheme() != RowPartitioned {
		// Column-partitioned / irregular same-shape inputs need exact
		// (two-dimensional) co-partitioning.
		aligned = AlignedExact(m.fm, other.fm)
	}
	if !aligned {
		// Fallback of §4.2: consolidate the second federated input at the
		// coordinator (subject to privacy) and broadcast it back.
		local, err := other.Consolidate()
		if err != nil {
			return nil, fmt.Errorf("federated: unaligned binary %s: %w", op, err)
		}
		return m.BinaryLocal(op, local, false)
	}
	ms, os := m.fm.sorted(), other.fm.sorted()
	outIDs := make([]int64, len(ms))
	for i := range outIDs {
		outIDs[i] = m.c.NewID()
	}
	parts := make([]Partition, len(ms))
	copy(parts, ms)
	_, err := m.c.parallelCall(parts, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: op.String(), Inputs: []int64{p.DataID, os[i].DataID}, Output: outIDs[i]}},
		}
	})
	if err != nil {
		return nil, err
	}
	fm := FedMap{Rows: m.Rows(), Cols: m.Cols()}
	for i, p := range ms {
		fm.Partitions = append(fm.Partitions, Partition{Range: p.Range, Addr: p.Addr, DataID: outIDs[i]})
	}
	return FromMap(m.c, fm)
}

// BinaryLocal applies an element-wise binary operation against a local
// operand, broadcasting either the full operand (row vectors, scalars, and
// full matrices on column partitions) or only the relevant slice per
// partition (column vectors and full matrices on row partitions). When swap
// is true the local operand is the left side (b op m).
func (m *Matrix) BinaryLocal(op matrix.BinaryOp, b *matrix.Dense, swap bool) (*Matrix, error) {
	slice, err := m.broadcastSlicer(b)
	if err != nil {
		return nil, fmt.Errorf("federated: binary %s: %w", op, err)
	}
	outIDs := m.newIDs()
	_, err = m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		bid := m.c.NewID()
		inputs := []int64{p.DataID, bid}
		if swap {
			inputs = []int64{bid, p.DataID}
		}
		return []fedrpc.Request{
			{Type: fedrpc.Put, ID: bid, Data: fedrpc.MatrixPayload(slice(p.Range))},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: op.String(), Inputs: inputs, Output: outIDs[i]}},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{bid}}},
		}
	})
	if err != nil {
		return nil, err
	}
	return m.derive(m.Rows(), m.Cols(), outIDs, func(r Range) Range { return r }), nil
}

// broadcastSlicer decides, from the local operand's shape, what to send to
// each partition: the full operand or the partition-aligned slice.
func (m *Matrix) broadcastSlicer(b *matrix.Dense) (func(Range) *matrix.Dense, error) {
	full := func(Range) *matrix.Dense { return b }
	switch {
	case b.Rows() == 1 && b.Cols() == 1: // scalar-as-matrix
		return full, nil
	case b.Rows() == m.Rows() && b.Cols() == m.Cols(): // same shape: slice both ways
		return func(r Range) *matrix.Dense {
			return b.Slice(r.RowBeg, r.RowEnd, r.ColBeg, r.ColEnd)
		}, nil
	case b.Rows() == m.Rows() && b.Cols() == 1: // column vector: slice rows
		return func(r Range) *matrix.Dense { return b.SliceRows(r.RowBeg, r.RowEnd) }, nil
	case b.Rows() == 1 && b.Cols() == m.Cols(): // row vector: slice cols
		return func(r Range) *matrix.Dense { return b.SliceCols(r.ColBeg, r.ColEnd) }, nil
	default:
		return nil, fmt.Errorf("operand %dx%d incompatible with federated %dx%d",
			b.Rows(), b.Cols(), m.Rows(), m.Cols())
	}
}

// BinaryScalar applies an element-wise operation against a scalar; the
// output stays federated.
func (m *Matrix) BinaryScalar(op matrix.BinaryOp, s float64, swap bool) (*Matrix, error) {
	outIDs := m.newIDs()
	attrs := map[string]string{}
	if swap {
		attrs["swap"] = "1"
	}
	_, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: op.String(), Inputs: []int64{p.DataID}, Output: outIDs[i],
				Scalars: []float64{s}, Attrs: attrs}},
		}
	})
	if err != nil {
		return nil, err
	}
	return m.derive(m.Rows(), m.Cols(), outIDs, func(r Range) Range { return r }), nil
}

// Unary applies an element-wise unary operation; the output stays federated.
func (m *Matrix) Unary(op matrix.UnaryOp) (*Matrix, error) {
	return m.execPerPartition(op.String(), nil, nil)
}

// Softmax applies row-wise softmax per partition (valid for row-partitioned
// data, where every partition holds complete rows).
func (m *Matrix) Softmax() (*Matrix, error) {
	if m.Scheme() != RowPartitioned {
		return nil, fmt.Errorf("federated: softmax requires row partitioning")
	}
	return m.execPerPartition("softmax", nil, nil)
}

// Replace substitutes pattern cells per partition (DML replace).
func (m *Matrix) Replace(pattern, repl float64) (*Matrix, error) {
	return m.execPerPartition("replace", []float64{pattern, repl}, nil)
}

// execPerPartition runs a shape-preserving single-input instruction on
// every partition, returning a federated result with the same map.
func (m *Matrix) execPerPartition(opcode string, scalars []float64, attrs map[string]string) (*Matrix, error) {
	outIDs := m.newIDs()
	_, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: opcode, Inputs: []int64{p.DataID}, Output: outIDs[i],
				Scalars: scalars, Attrs: attrs}},
		}
	})
	if err != nil {
		return nil, err
	}
	return m.derive(m.Rows(), m.Cols(), outIDs, func(r Range) Range { return r }), nil
}

// IfElse computes ifelse(m, a, b) for aligned federated condition and
// locally broadcast arms (1x1 scalars or matching shape).
func (m *Matrix) IfElse(a, b *matrix.Dense) (*Matrix, error) {
	sliceA, err := m.broadcastSlicer(a)
	if err != nil {
		return nil, err
	}
	sliceB, err := m.broadcastSlicer(b)
	if err != nil {
		return nil, err
	}
	outIDs := m.newIDs()
	_, err = m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		aid, bid := m.c.NewID(), m.c.NewID()
		return []fedrpc.Request{
			{Type: fedrpc.Put, ID: aid, Data: fedrpc.MatrixPayload(sliceA(p.Range))},
			{Type: fedrpc.Put, ID: bid, Data: fedrpc.MatrixPayload(sliceB(p.Range))},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "ifelse", Inputs: []int64{p.DataID, aid, bid}, Output: outIDs[i]}},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{aid, bid}}},
		}
	})
	if err != nil {
		return nil, err
	}
	return m.derive(m.Rows(), m.Cols(), outIDs, func(r Range) Range { return r }), nil
}
