package federated_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"exdra/internal/federated"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

// TestPropFederatedEqualsLocal is the randomized counterpart of the Table 1
// coverage test: random shapes, random worker counts, random op — federated
// execution must equal local execution element-wise.
func TestPropFederatedEqualsLocal(t *testing.T) {
	cl := startCluster(t, 3)
	f := func(seed int64, rowsSeed, colsSeed, opSeed, nwSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(rowsSeed%20) + 3
		cols := int(colsSeed%6) + 1
		nw := int(nwSeed%3) + 1
		if rows < nw {
			rows = nw
		}
		x := matrix.Randn(rng, rows, cols, 0, 1)
		fx, err := federated.Distribute(cl.Coord, x, cl.Addrs[:nw], federated.RowPartitioned, privacy.Public)
		if err != nil {
			t.Logf("distribute: %v", err)
			return false
		}
		defer cl.Coord.ClearAll()
		switch opSeed % 5 {
		case 0: // sum
			got, err := fx.Sum()
			return err == nil && math.Abs(got-x.Sum()) < 1e-9
		case 1: // matvec + consolidate
			v := matrix.Randn(rng, cols, 1, 0, 1)
			fed, _, err := fx.MatVec(v)
			if err != nil {
				return false
			}
			got, err := fed.Consolidate()
			return err == nil && got.EqualApprox(x.MatMul(v), 1e-9)
		case 2: // tsmm
			got, err := fx.TSMM()
			return err == nil && got.EqualApprox(x.TSMM(), 1e-8)
		case 3: // scalar op + row aggregate
			sq, err := fx.BinaryScalar(matrix.OpPow, 2, false)
			if err != nil {
				return false
			}
			fed, _, err := sq.RowAgg(matrix.AggSum)
			if err != nil {
				return false
			}
			got, err := fed.Consolidate()
			want := x.Mul(x).RowSums()
			return err == nil && got.EqualApprox(want, 1e-9)
		default: // transpose round trip
			ft, err := fx.Transpose()
			if err != nil {
				return false
			}
			got, err := ft.Consolidate()
			return err == nil && got.EqualApprox(x.Transpose(), 0)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSliceComposition checks that federated slicing composes like
// local slicing for random nested ranges.
func TestPropSliceComposition(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(404, 30, 8)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aSeed, bSeed, cSeed, dSeed uint8) bool {
		rb := int(aSeed % 20)
		re := rb + int(bSeed%(uint8(30-rb))) + 1
		cb := int(cSeed % 6)
		ce := cb + int(dSeed%(uint8(8-cb))) + 1
		fs, err := fx.Slice(rb, re, cb, ce)
		if err != nil {
			return false
		}
		got, err := fs.Consolidate()
		if err != nil {
			return false
		}
		return got.EqualApprox(x.Slice(rb, re, cb, ce), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
