package federated

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"exdra/internal/fedrpc"
	"exdra/internal/obs"
)

// HealthPolicy configures the coordinator's periodic liveness probing.
// Probing serves two purposes: dead workers are marked unhealthy
// (WorkerHealth) before the next federated operation trips over them, and
// — with recovery enabled — a worker that comes back restarted is detected
// and proactively repaired between operations instead of on the critical
// path of the next one.
type HealthPolicy struct {
	// Interval is the pause between probe rounds. Zero or negative
	// disables probing (StartHealth becomes a no-op).
	Interval time.Duration
	// Jitter spreads each round's wait uniformly over
	// [(1-Jitter)×Interval, (1+Jitter)×Interval), so a fleet of
	// coordinators (or one coordinator whose probers all started on the
	// same reconnect) doesn't fire every probe on the same tick — the
	// thundering herd that turns a worker's recovery moment into a probe
	// storm. Zero disables; values are clamped to [0, 1].
	Jitter float64
	// Seed feeds the jitter RNG, keeping probe schedules deterministic in
	// tests (the dp.go convention for seeded randomness).
	Seed int64
}

// newHealthRNG builds the prober's jitter RNG from a policy seed.
func newHealthRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// wait returns the next round's jittered pause.
func (p HealthPolicy) wait(rng *rand.Rand) time.Duration {
	j := p.Jitter
	if j <= 0 {
		return p.Interval
	}
	if j > 1 {
		j = 1
	}
	f := 1 + j*(2*rng.Float64()-1)
	return time.Duration(float64(p.Interval) * f)
}

// StartHealth launches the background health prober. Each round pings
// every known worker (HEALTH request); the reply's instance epoch feeds
// restart detection, and with recovery enabled a restarted-but-reachable
// worker is repaired immediately. The prober stops when the coordinator is
// closed — Close joins it. Starting twice, or on a closed coordinator, is
// a no-op.
func (c *Coordinator) StartHealth(p HealthPolicy) {
	if p.Interval <= 0 {
		return
	}
	c.mu.Lock()
	if c.closed || c.probing {
		c.mu.Unlock()
		return
	}
	c.probing = true
	c.healthWg.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.healthWg.Done()
		rng := newHealthRNG(p.Seed)
		t := time.NewTimer(p.wait(rng))
		defer t.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-t.C:
			}
			c.probeAll()
			t.Reset(p.wait(rng))
		}
	}()
}

// probeAll pings every currently connected worker once, sequentially (a
// probe round races nothing: operations hold their own retry loops, and
// the per-client mutex serializes the wire).
func (c *Coordinator) probeAll() {
	c.mu.Lock()
	addrs := make([]string, 0, len(c.touched))
	for addr := range c.touched {
		addrs = append(addrs, addr)
	}
	c.mu.Unlock()
	for _, addr := range addrs {
		if err := c.Ping(addr); err != nil {
			continue // unreachable: marked unhealthy, next round retries
		}
		if c.recovery {
			// Reachable again — if the epoch handshake (inside Ping's call
			// path) just revealed a restart, rebuild its live objects now,
			// off the critical path of the next operation.
			_ = c.Repair(addr)
		}
	}
}

// Ping sends one HEALTH request to addr and records the outcome for
// WorkerHealth. The reply's instance epoch feeds restart detection like
// any other response.
func (c *Coordinator) Ping(addr string) error {
	c.statProbes.Add(1)
	c.reg.Counter("fed.probes").Inc()
	resps, err := c.callCtx(obs.WithOp(context.Background(), "health"), addr,
		[]fedrpc.Request{{Type: fedrpc.Health}})
	if err == nil && !resps[0].OK {
		err = fmt.Errorf("federated: %s HEALTH: %s", addr, resps[0].Err)
	}
	if err != nil {
		c.statProbeFail.Add(1)
		c.reg.Counter("fed.probe_failures").Inc()
		c.setHealthy(addr, false)
		return fmt.Errorf("federated: health probe of %s: %w", addr, err)
	}
	c.setHealthy(addr, true)
	return nil
}
