package federated_test

import (
	"math"
	"sort"
	"testing"

	"exdra/internal/federated"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

func TestFederatedQuantiles(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(301, 90, 4) // 360 cells
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	vals := append([]float64(nil), x.Data()...)
	sort.Float64s(vals)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got, err := fx.Quantile(q, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		// The search converges to a value with ~q*n cells at or below it;
		// compare against the empirical order statistic.
		idx := int(q*float64(len(vals))) - 1
		if idx < 0 {
			idx = 0
		}
		lo, hi := vals[idx], vals[minI(idx+1, len(vals)-1)]
		if got < lo-1e-6 || got > hi+1e-6 {
			t.Fatalf("q=%g: got %g, want within [%g, %g]", q, got, lo, hi)
		}
	}
	med, err := fx.Median()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-vals[len(vals)/2-1]) > math.Abs(vals[len(vals)/2]-vals[len(vals)/2-1])+1e-6 {
		t.Fatalf("median %g vs empirical %g", med, vals[len(vals)/2-1])
	}
	// Works under PrivateAggregation (only counts travel) — the raw data
	// itself remains untransferable.
	if _, err := fx.Consolidate(); err == nil {
		t.Fatal("quantile computation should not require consolidation rights")
	}
	// Constant matrix short-circuits.
	fc, err := federated.Distribute(cl.Coord, matrix.Fill(10, 2, 3), cl.Addrs[:2],
		federated.RowPartitioned, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := fc.Quantile(0.7, 0); err != nil || v != 3 {
		t.Fatalf("constant quantile %g, %v", v, err)
	}
	if _, err := fx.Quantile(1.5, 0); err == nil {
		t.Fatal("out-of-range q accepted")
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
