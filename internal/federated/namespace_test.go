package federated_test

import (
	"testing"

	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
)

// TestSessionsIsolatedOnSharedFleet is the regression test for
// session-unsafe ID generation: two sessions of one shared fleet PUT, GET,
// and CLEAR against the same workers without interference. Before the
// namespace scheme, both sessions' NewID counters started at the same
// value, so the second session's PUTs silently overwrote the first's
// worker objects — and either session's CLEAR destroyed both.
func TestSessionsIsolatedOnSharedFleet(t *testing.T) {
	cl := startCluster(t, 2)

	s1, err := cl.Fleet.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := cl.Fleet.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s1.Namespace() == s2.Namespace() || s1.Namespace() == 0 || s2.Namespace() == 0 {
		t.Fatalf("sessions must get distinct nonzero namespaces, got %d and %d",
			s1.Namespace(), s2.Namespace())
	}

	// Same sequence position, different sessions: the IDs must differ.
	id1, id2 := s1.NewID(), s2.NewID()
	if id1 == id2 {
		t.Fatalf("colliding IDs across sessions: %d", id1)
	}
	if fedrpc.IDNamespace(id1) != s1.Namespace() || fedrpc.IDNamespace(id2) != s2.Namespace() {
		t.Fatal("NewID must qualify IDs with the session namespace")
	}

	// Both sessions PUT under their own IDs at the same worker.
	m1 := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	m2 := matrix.FromRows([][]float64{{9, 8}, {7, 6}})
	addr := cl.Addrs[0]
	put := func(c *federated.Coordinator, id int64, m *matrix.Dense) {
		t.Helper()
		resps, err := c.Call(addr, fedrpc.Request{Type: fedrpc.Put, ID: id, Data: fedrpc.MatrixPayload(m)})
		if err != nil {
			t.Fatal(err)
		}
		if !resps[0].OK {
			t.Fatal(resps[0].Err)
		}
	}
	put(s1, id1, m1)
	put(s2, id2, m2)

	// Each session reads back its own bytes, untouched by the other.
	p1, err := s1.Fetch(addr, id1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s2.Fetch(addr, id2)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Matrix().EqualApprox(m1, 0) || !p2.Matrix().EqualApprox(m2, 0) {
		t.Fatal("sessions interfered: PUT/GET round trips differ")
	}

	// Session 1's CLEAR removes only its own binding.
	if err := s1.ClearAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Fetch(addr, id1); err == nil {
		t.Fatal("session 1's object survived its own ClearAll")
	}
	p2, err = s2.Fetch(addr, id2)
	if err != nil {
		t.Fatalf("session 1's ClearAll destroyed session 2's object: %v", err)
	}
	if !p2.Matrix().EqualApprox(m2, 0) {
		t.Fatal("session 2's object corrupted by session 1's ClearAll")
	}

	// Session 2's teardown leaves the worker fully clean.
	if err := s2.ClearAll(); err != nil {
		t.Fatal(err)
	}
	if n := cl.Workers[0].NumObjects(); n != 0 {
		t.Fatalf("%d objects leaked after both sessions cleared", n)
	}
}
