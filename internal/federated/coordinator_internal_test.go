package federated

import (
	"strings"
	"testing"
	"time"

	"exdra/internal/fedrpc"
)

func TestCreatedIDs(t *testing.T) {
	reqs := []fedrpc.Request{
		{Type: fedrpc.Read, ID: 1},
		{Type: fedrpc.Put, ID: 2},
		{Type: fedrpc.Get, ID: 3}, // pure read: creates nothing
		{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "t", Inputs: []int64{1}, Output: 4}},
		{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "rmvar", Inputs: []int64{2}}},
		{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{Opcode: "uak+", Inputs: []int64{1}}}, // no output binding
		{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{Name: "tf_apply", Inputs: []int64{1}, Output: 5}},
		{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{Name: "obj_dims", Inputs: []int64{1}}},
	}
	got := createdIDs(reqs)
	want := []int64{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("createdIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("createdIDs = %v, want %v", got, want)
		}
	}
}

func TestBackoffJitterIsSeeded(t *testing.T) {
	delays := func(seed int64) []float64 {
		c := NewCoordinator(fedrpc.Options{})
		defer c.Close()
		c.SetRetryPolicy(RetryPolicy{Attempts: 4, Backoff: time.Millisecond, Seed: seed})
		var out []float64
		for i := 0; i < 4; i++ {
			c.rngMu.Lock()
			out = append(out, c.rng.Float64())
			c.rngMu.Unlock()
		}
		return out
	}
	a, b := delays(99), delays(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different jitter stream: %v vs %v", a, b)
		}
	}
}

// TestCloseCancelsRetryBackoff pins the shutdown contract: a coordinator
// stuck in a long retry backoff returns promptly when closed instead of
// sleeping out the schedule.
func TestCloseCancelsRetryBackoff(t *testing.T) {
	c := NewCoordinator(fedrpc.Options{DialTimeout: 100 * time.Millisecond})
	c.SetRetryPolicy(RetryPolicy{Attempts: 3, Backoff: time.Hour, Seed: 1})
	errc := make(chan error, 1)
	go func() {
		// 127.0.0.1:1 refuses fast, sending call into its first backoff.
		_, err := c.call("127.0.0.1:1", []fedrpc.Request{{Type: fedrpc.Get, ID: 1}})
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("call against a refused port should fail")
		}
		if !strings.Contains(err.Error(), "closed") {
			t.Fatalf("want a closed-coordinator error, got: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not cancel the retry backoff")
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	c := NewCoordinator(fedrpc.Options{})
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{Attempts: 5, Backoff: 10 * time.Millisecond, MaxBackoff: 20 * time.Millisecond, Seed: 1})
	// Attempt 3 would be 40ms unclamped; the cap plus max jitter (1.5x)
	// bounds the wait at 30ms.
	start := time.Now()
	if err := c.backoff(3); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("backoff ignored MaxBackoff: waited %v", d)
	}
}
