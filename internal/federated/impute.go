package federated

import (
	"fmt"

	"exdra/internal/fedrpc"
	"exdra/internal/transform"
	"exdra/internal/worker"
)

// Federated missing-value imputation (§4.4, Example 4): two-pass algorithms
// over a federated frame. Pass one collects aggregate counts from every
// site; the coordinator derives the global imputation rule; pass two
// broadcasts the rule and rewrites each partition in place at its site. The
// raw rows never move.

// ImputeMode fills NULLs of a categorical column with the globally most
// frequent value, returning a new federated frame.
func (f *Frame) ImputeMode(col string) (*Frame, string, error) {
	args, err := worker.EncodeArgs(worker.ImputeCountsArgs{Col: col})
	if err != nil {
		return nil, "", err
	}
	resps, err := f.c.parallelCall(f.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
			Name: "impute_counts", Inputs: []int64{p.DataID}, Args: args}}}
	})
	if err != nil {
		return nil, "", err
	}
	parts := make([]map[string]int, len(resps))
	for i, rs := range resps {
		if err := worker.DecodeArgs(rs[0].Data.Bytes, &parts[i]); err != nil {
			return nil, "", err
		}
	}
	mode, ok := transform.Mode(transform.MergeCounts(parts...))
	if !ok {
		return nil, "", fmt.Errorf("federated: column %q has no non-NULL values", col)
	}
	out, err := f.applyImpute("impute_apply_mode", worker.ImputeApplyModeArgs{Col: col, Value: mode})
	return out, mode, err
}

// ImputeFD fills NULLs of toCol via the robust functional dependency
// fromCol -> toCol discovered from global co-occurrence counts.
func (f *Frame) ImputeFD(fromCol, toCol string, minSupport float64) (*Frame, map[string]string, error) {
	args, err := worker.EncodeArgs(worker.ImputePairsArgs{From: fromCol, To: toCol})
	if err != nil {
		return nil, nil, err
	}
	resps, err := f.c.parallelCall(f.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
			Name: "impute_pairs", Inputs: []int64{p.DataID}, Args: args}}}
	})
	if err != nil {
		return nil, nil, err
	}
	parts := make([]map[string]map[string]int, len(resps))
	for i, rs := range resps {
		if err := worker.DecodeArgs(rs[0].Data.Bytes, &parts[i]); err != nil {
			return nil, nil, err
		}
	}
	mapping := transform.FDMapping(transform.MergePairCounts(parts...), minSupport)
	out, err := f.applyImpute("impute_apply_fd", worker.ImputeApplyFDArgs{
		From: fromCol, To: toCol, Mapping: mapping})
	return out, mapping, err
}

// applyImpute broadcasts an imputation rule and rebinds every partition to
// the imputed frame under fresh IDs.
func (f *Frame) applyImpute(udfName string, ruleArgs any) (*Frame, error) {
	args, err := worker.EncodeArgs(ruleArgs)
	if err != nil {
		return nil, err
	}
	outIDs := make([]int64, len(f.fm.Partitions))
	for i := range outIDs {
		outIDs[i] = f.c.NewID()
	}
	_, err = f.c.parallelCall(f.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		return []fedrpc.Request{{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
			Name: udfName, Inputs: []int64{p.DataID}, Output: outIDs[i], Args: args}}}
	})
	if err != nil {
		return nil, err
	}
	fm := FedMap{Rows: f.fm.Rows, Cols: f.fm.Cols}
	for i, p := range f.fm.Partitions {
		fm.Partitions = append(fm.Partitions, Partition{Range: p.Range, Addr: p.Addr, DataID: outIDs[i]})
	}
	return &Frame{c: f.c, fm: fm}, nil
}
