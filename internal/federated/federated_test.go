package federated_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/fedtest"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
)

func startCluster(t *testing.T, n int) *fedtest.Cluster {
	t.Helper()
	cl, err := fedtest.Start(fedtest.Config{Workers: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func randMat(seed int64, r, c int) *matrix.Dense {
	return matrix.Randn(rand.New(rand.NewSource(seed)), r, c, 0, 1)
}

func distribute(t *testing.T, cl *fedtest.Cluster, x *matrix.Dense, scheme federated.Scheme) *federated.Matrix {
	t.Helper()
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, scheme, privacy.PrivateAggregation)
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func TestFedMapValidate(t *testing.T) {
	good := federated.FedMap{Rows: 4, Cols: 2, Partitions: []federated.Partition{
		{Range: federated.Range{RowBeg: 0, RowEnd: 2, ColBeg: 0, ColEnd: 2}, Addr: "a", DataID: 1},
		{Range: federated.Range{RowBeg: 2, RowEnd: 4, ColBeg: 0, ColEnd: 2}, Addr: "b", DataID: 2},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Scheme() != federated.RowPartitioned {
		t.Fatal("scheme")
	}
	overlap := good
	overlap.Partitions = append([]federated.Partition(nil), good.Partitions...)
	overlap.Partitions[1].Range.RowBeg = 1
	if err := overlap.Validate(); err == nil {
		t.Fatal("overlapping partitions accepted")
	}
	gap := good
	gap.Partitions = gap.Partitions[:1]
	if err := gap.Validate(); err == nil {
		t.Fatal("non-covering partitions accepted")
	}
	col := federated.FedMap{Rows: 4, Cols: 4, Partitions: []federated.Partition{
		{Range: federated.Range{RowBeg: 0, RowEnd: 4, ColBeg: 0, ColEnd: 2}, Addr: "a"},
		{Range: federated.Range{RowBeg: 0, RowEnd: 4, ColBeg: 2, ColEnd: 4}, Addr: "b"},
	}}
	if col.Scheme() != federated.ColPartitioned {
		t.Fatal("col scheme")
	}
}

func TestDistributeConsolidateRoundTrip(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(1, 50, 7)
	for _, scheme := range []federated.Scheme{federated.RowPartitioned, federated.ColPartitioned} {
		fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, scheme, privacy.Public)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fx.Consolidate()
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualApprox(x, 0) {
			t.Fatalf("%v consolidate differs", scheme)
		}
	}
}

func TestPrivacyBlocksConsolidation(t *testing.T) {
	cl := startCluster(t, 2)
	x := randMat(2, 10, 3)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.Consolidate(); err == nil || !strings.Contains(err.Error(), "privacy") {
		t.Fatalf("private data consolidated: %v", err)
	}
	// Aggregates over PrivateAggregation data are allowed.
	fy := distribute(t, cl, x, federated.RowPartitioned) // PrivateAggregation
	if _, err := fy.Consolidate(); err == nil {
		t.Fatal("PrivateAggregation raw data consolidated")
	}
	sum, err := fy.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-x.Sum()) > 1e-9 {
		t.Fatal("aggregate under PrivateAggregation")
	}
}

func TestMatVecRowPartitioned(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(3, 40, 6)
	v := randMat(4, 6, 2)
	fx := distribute(t, cl, x, federated.RowPartitioned)
	fed, local, err := fx.MatVec(v)
	if err != nil {
		t.Fatal(err)
	}
	if fed == nil || local != nil {
		t.Fatal("row-partitioned matvec should stay federated")
	}
	// Output of Xv on PrivateAggregation inputs is still non-aggregate per
	// row, so consolidation is denied; verify via a public copy instead.
	pub, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	fed2, _, err := pub.MatVec(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fed2.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(x.MatMul(v), 1e-9) {
		t.Fatal("matvec result")
	}
	if fed.Scheme() != federated.RowPartitioned {
		t.Fatal("output scheme")
	}
}

func TestMatVecColPartitioned(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(5, 20, 9)
	v := randMat(6, 9, 1)
	fx := distribute(t, cl, x, federated.ColPartitioned)
	fed, local, err := fx.MatVec(v)
	if err != nil {
		t.Fatal(err)
	}
	if fed != nil || local == nil {
		t.Fatal("col-partitioned matvec should consolidate")
	}
	if !local.EqualApprox(x.MatMul(v), 1e-9) {
		t.Fatal("col matvec result")
	}
}

func TestTMatVec(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(7, 30, 5)
	b := randMat(8, 30, 2)
	want := x.Transpose().MatMul(b)
	for _, scheme := range []federated.Scheme{federated.RowPartitioned, federated.ColPartitioned} {
		fx := distribute(t, cl, x, scheme)
		got, err := fx.TMatVec(b)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !got.EqualApprox(want, 1e-9) {
			t.Fatalf("%v tmatvec result", scheme)
		}
	}
}

func TestTSMMAndMMChain(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(9, 25, 4)
	fx := distribute(t, cl, x, federated.RowPartitioned)
	got, err := fx.TSMM()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(x.TSMM(), 1e-9) {
		t.Fatal("fed tsmm")
	}
	v := randMat(10, 4, 1)
	w := randMat(11, 25, 1)
	mc, err := fx.MMChain(v, w)
	if err != nil {
		t.Fatal(err)
	}
	if !mc.EqualApprox(x.MMChain(v, w), 1e-9) {
		t.Fatal("fed mmchain weighted")
	}
	mc2, err := fx.MMChain(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !mc2.EqualApprox(x.MMChain(v, nil), 1e-9) {
		t.Fatal("fed mmchain unweighted")
	}
}

func TestAlignedFederatedOps(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(12, 30, 4)
	v := randMat(13, 4, 3)
	fx := distribute(t, cl, x, federated.RowPartitioned)
	// P = X %*% v stays federated and aligned with X.
	p, _, err := fx.MatVec(v)
	if err != nil {
		t.Fatal(err)
	}
	// Aligned element-wise: X2 = P * P.
	p2, err := p.Binary(matrix.OpMul, p)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := p2.Sum()
	if err != nil {
		t.Fatal(err)
	}
	pl := x.MatMul(v)
	if math.Abs(sum-pl.Mul(pl).Sum()) > 1e-8 {
		t.Fatal("aligned elementwise")
	}
	// Aligned t(P) %*% X (the K-Means centroid update pattern).
	tmm, err := p.AlignedTMM(fx)
	if err != nil {
		t.Fatal(err)
	}
	if !tmm.EqualApprox(pl.Transpose().MatMul(x), 1e-8) {
		t.Fatal("aligned tmm")
	}
}

func TestUnalignedBinaryConsolidatesSecondInput(t *testing.T) {
	cl := startCluster(t, 2)
	x := randMat(14, 12, 3)
	y := randMat(15, 12, 3)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	// Distribute y with swapped addresses so the maps are not aligned.
	rev := []string{cl.Addrs[1], cl.Addrs[0]}
	fy, err := federated.Distribute(cl.Coord, y, rev, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := fx.Binary(matrix.OpAdd, fy)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sum.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(x.Add(y), 1e-12) {
		t.Fatal("unaligned binary via consolidation")
	}
	// If the second input is Private, the fallback must fail with a privacy
	// violation rather than leak the data.
	fz, err := federated.Distribute(cl.Coord, y, rev, federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.Binary(matrix.OpAdd, fz); err == nil || !strings.Contains(err.Error(), "privacy") {
		t.Fatalf("privacy exception expected, got %v", err)
	}
}

func TestBinaryLocalBroadcastShapes(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(16, 21, 5)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    *matrix.Dense
	}{
		{"full", randMat(17, 21, 5)},
		{"colvec", randMat(18, 21, 1)},
		{"rowvec", randMat(19, 1, 5)},
		{"scalar1x1", matrix.Fill(1, 1, 2.5)},
	}
	for _, c := range cases {
		got, err := fx.BinaryLocal(matrix.OpSub, c.b, false)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		lg, err := got.Consolidate()
		if err != nil {
			t.Fatal(err)
		}
		var want *matrix.Dense
		if c.name == "scalar1x1" {
			want = x.BinaryScalar(matrix.OpSub, 2.5, false)
		} else {
			want = x.Binary(matrix.OpSub, c.b)
		}
		if !lg.EqualApprox(want, 1e-12) {
			t.Fatalf("%s broadcast", c.name)
		}
	}
	// Swapped operand order: s - X.
	swap, err := fx.BinaryScalar(matrix.OpSub, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := swap.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if !sg.EqualApprox(x.BinaryScalar(matrix.OpSub, 1, true), 1e-12) {
		t.Fatal("swapped scalar op")
	}
}

func TestFederatedReorgOps(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(20, 18, 4)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	// Transpose flips to column partitioning.
	ft, err := fx.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	if ft.Scheme() != federated.ColPartitioned {
		t.Fatalf("transpose scheme %v", ft.Scheme())
	}
	gt, err := ft.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if !gt.EqualApprox(x.Transpose(), 0) {
		t.Fatal("fed transpose")
	}
	// Indexing.
	fs, err := fx.Slice(3, 15, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := fs.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if !gs.EqualApprox(x.Slice(3, 15, 1, 3), 0) {
		t.Fatal("fed slice")
	}
	// Replace.
	x0 := x.Clone()
	x0.Set(0, 0, 0)
	f0, err := federated.Distribute(cl.Coord, x0, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := f0.Replace(0, -7)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := fr.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if !gr.EqualApprox(x0.Replace(0, -7), 0) {
		t.Fatal("fed replace")
	}
	// Logical rbind/cbind are metadata-only.
	before := cl.Coord.BytesSent()
	rb, err := federated.RBindFed(fx, fx)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Rows() != 2*x.Rows() {
		t.Fatal("rbind dims")
	}
	if cl.Coord.BytesSent() != before {
		t.Fatal("rbind moved data")
	}
	cb, err := federated.CBindFed(ft, ft)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Cols() != 2*x.Rows() {
		t.Fatal("cbind dims")
	}
}

func TestFreeReleasesWorkerMemory(t *testing.T) {
	cl := startCluster(t, 2)
	x := randMat(21, 10, 2)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	before := cl.Workers[0].NumObjects()
	if err := fx.Free(); err != nil {
		t.Fatal(err)
	}
	if cl.Workers[0].NumObjects() >= before {
		t.Fatal("Free did not remove objects")
	}
	if _, err := fx.Consolidate(); err == nil {
		t.Fatal("consolidate after free succeeded")
	}
}

func TestClearAll(t *testing.T) {
	cl := startCluster(t, 2)
	x := randMat(22, 10, 2)
	if _, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public); err != nil {
		t.Fatal(err)
	}
	if err := cl.Coord.ClearAll(); err != nil {
		t.Fatal(err)
	}
	for i, w := range cl.Workers {
		if w.NumObjects() != 0 {
			t.Fatalf("worker %d still holds %d objects", i, w.NumObjects())
		}
	}
}

func TestWorkerDownFailsCleanly(t *testing.T) {
	cl := startCluster(t, 2)
	x := randMat(23, 10, 2)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	cl.Servers[1].Close()
	if _, err := fx.Consolidate(); err == nil {
		t.Fatal("consolidate succeeded with a dead worker")
	}
}

func TestReadRowPartitioned(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	a := randMat(24, 7, 3)
	b := randMat(25, 5, 3)
	if err := a.WriteBinaryFile(dirs[0] + "/part.bin"); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteBinaryFile(dirs[1] + "/part.bin"); err != nil {
		t.Fatal(err)
	}
	cl, err := fedtest.Start(fedtest.Config{Workers: 2, BaseDirs: dirs})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fx, err := federated.ReadRowPartitioned(cl.Coord, []federated.ReadSpec{
		{Addr: cl.Addrs[0], Filename: "part.bin"},
		{Addr: cl.Addrs[1], Filename: "part.bin"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fx.Rows() != 12 || fx.Cols() != 3 {
		t.Fatalf("read dims %dx%d", fx.Rows(), fx.Cols())
	}
	got, err := fx.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(matrix.RBind(a, b), 0) {
		t.Fatal("read content")
	}
	// Path escapes are rejected.
	if _, err := federated.ReadRowPartitioned(cl.Coord, []federated.ReadSpec{
		{Addr: cl.Addrs[0], Filename: "../part.bin"},
	}); err == nil {
		t.Fatal("path escape accepted")
	}
}

func TestKMeansInnerLoopPattern(t *testing.T) {
	// Exercises the exact federated op sequence of Example 3 in the paper.
	cl := startCluster(t, 3)
	rng := rand.New(rand.NewSource(26))
	x := matrix.Randn(rng, 60, 5, 0, 1)
	c := matrix.Randn(rng, 4, 5, 0, 1) // K=4 centroids
	fx := distribute(t, cl, x, federated.RowPartitioned)

	// D = -2 * (X %*% t(C)) + t(rowSums(C^2))
	xc, _, err := fx.MatVec(c.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	d1, err := xc.BinaryScalar(matrix.OpMul, -2, false)
	if err != nil {
		t.Fatal(err)
	}
	cs := c.Mul(c).RowSums().Transpose() // 1 x K
	d, err := d1.BinaryLocal(matrix.OpAdd, cs, false)
	if err != nil {
		t.Fatal(err)
	}
	// P = (D <= rowMins(D))
	dm, _, err := d.RowAgg(matrix.AggMin)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Binary(matrix.OpLe, dm)
	if err != nil {
		t.Fatal(err)
	}
	// P = P / rowSums(P)
	prs, _, err := p.RowAgg(matrix.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	p, err = p.Binary(matrix.OpDiv, prs)
	if err != nil {
		t.Fatal(err)
	}
	// P_denom = colSums(P); C_new = (t(P) %*% X) / t(P_denom)
	_, pden, err := p.ColAgg(matrix.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	ptx, err := p.AlignedTMM(fx)
	if err != nil {
		t.Fatal(err)
	}
	cNew := ptx.Div(pden.Transpose())

	// Local reference of the same script.
	dl := x.MatMul(c.Transpose()).Scale(-2).Add(cs)
	pl := dl.Binary(matrix.OpLe, dl.RowMins())
	pl = pl.Div(pl.RowSums())
	want := pl.Transpose().MatMul(x).Div(pl.ColSums().Transpose())
	if !cNew.EqualApprox(want, 1e-8) {
		t.Fatal("federated K-Means inner loop differs from local")
	}
}

func TestCoordinatorBytesAccounting(t *testing.T) {
	cl := startCluster(t, 2)
	x := randMat(27, 16, 4)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	sent := cl.Coord.BytesSent()
	if sent == 0 {
		t.Fatal("no bytes accounted")
	}
	if _, err := fx.Sum(); err != nil {
		t.Fatal(err)
	}
	if cl.Coord.BytesReceived() == 0 {
		t.Fatal("no bytes received accounted")
	}
}

func TestScalarPayloadIDChecks(t *testing.T) {
	// GET on a missing ID propagates the worker error.
	cl := startCluster(t, 1)
	c, err := cl.Coord.Client(cl.Addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CallOne(fedrpc.Request{Type: fedrpc.Get, ID: 4242}); err == nil {
		t.Fatal("missing object GET succeeded")
	}
}
