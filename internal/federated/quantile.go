package federated

import (
	"fmt"
	"math"

	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
)

// Federated order statistics, composed purely from aggregate exchanges in
// the spirit of §4.2's higher-level primitives: the coordinator binary-
// searches the value domain, and at each step the workers report only the
// count of cells below the pivot (an EXEC_INST chain of a comparison and a
// partial aggregate). Raw values never leave the sites; the result is exact
// to the requested tolerance.

// Quantile returns the q-quantile (0 <= q <= 1) of all cells of the
// federated matrix, to within tol of the true value (default 1e-9 relative
// to the value range).
func (m *Matrix) Quantile(q, tol float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("federated: quantile %g out of [0,1]", q)
	}
	lo, err := m.AggFull(matrix.AggMin)
	if err != nil {
		return 0, err
	}
	hi, err := m.AggFull(matrix.AggMax)
	if err != nil {
		return 0, err
	}
	if lo == hi {
		return lo, nil
	}
	if tol <= 0 {
		tol = 1e-9 * (hi - lo)
	}
	total := m.Rows() * m.Cols()
	target := q * float64(total)
	// Binary search: count(cells <= pivot) is monotone in the pivot; each
	// probe costs one round of aggregate exchanges.
	for hi-lo > tol {
		mid := (lo + hi) / 2
		count, err := m.countLE(mid)
		if err != nil {
			return 0, err
		}
		if float64(count) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Median returns the 0.5-quantile.
func (m *Matrix) Median() (float64, error) { return m.Quantile(0.5, 0) }

// countLE counts cells <= pivot across all partitions, exchanging one
// scalar per worker.
func (m *Matrix) countLE(pivot float64) (int, error) {
	resps, err := m.c.parallelCall(m.fm.Partitions, func(i int, p Partition) []fedrpc.Request {
		maskID, aggID := m.c.NewID(), m.c.NewID()
		return []fedrpc.Request{
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "<=", Inputs: []int64{p.DataID}, Output: maskID,
				Scalars: []float64{pivot}}},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "ua_partial", Inputs: []int64{maskID}, Output: aggID}},
			{Type: fedrpc.Get, ID: aggID},
			{Type: fedrpc.ExecInst, Inst: &fedrpc.Instruction{
				Opcode: "rmvar", Inputs: []int64{maskID, aggID}}},
		}
	})
	if err != nil {
		return 0, err
	}
	count := 0.0
	for _, rs := range resps {
		count += rs[2].Data.Matrix().At(0, 0) // sum of the 0/1 mask
	}
	if math.IsNaN(count) {
		return 0, fmt.Errorf("federated: NaN cells break quantile counting")
	}
	return int(math.Round(count)), nil
}
