package federated_test

import (
	"math"
	"testing"

	"exdra/internal/federated"
	"exdra/internal/frame"
	"exdra/internal/matrix"
	"exdra/internal/privacy"
	"exdra/internal/transform"
)

// TestColumnPartitionedCoverage exercises the column-partitioned (vertical
// federated learning) specializations of §2.3/§4.2: aggregates, matmul
// variants, and exactly co-partitioned element-wise operations.
func TestColumnPartitionedCoverage(t *testing.T) {
	cl := startCluster(t, 3)
	x := randMat(200, 18, 9)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.ColPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	if fx.Scheme() != federated.ColPartitioned {
		t.Fatal("scheme")
	}

	// Full aggregates combine across column partitions.
	for _, op := range []matrix.AggOp{matrix.AggSum, matrix.AggMean, matrix.AggSD} {
		got, err := fx.AggFull(op)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-x.Agg(op)) > 1e-9 {
			t.Errorf("colpart full %v", op)
		}
	}
	// Row aggregates combine partial tuples at the coordinator.
	_, rows, err := fx.RowAgg(matrix.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.EqualApprox(x.RowSums(), 1e-9) {
		t.Error("colpart rowSums")
	}
	// Column aggregates stay federated.
	fedCols, _, err := fx.ColAgg(matrix.AggMean)
	if err != nil {
		t.Fatal(err)
	}
	gotCols, err := fedCols.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if !gotCols.EqualApprox(x.ColMeans(), 1e-9) {
		t.Error("colpart colMeans")
	}

	// Exactly co-partitioned element-wise ops run fully federated.
	fy, err := federated.Distribute(cl.Coord, x.Scale(2), cl.Addrs, federated.ColPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := fx.Binary(matrix.OpAdd, fy)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := sum.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if !gs.EqualApprox(x.Scale(3), 1e-12) {
		t.Error("colpart aligned binary")
	}

	// Misaligned column partitions fall back to consolidation.
	rev := []string{cl.Addrs[2], cl.Addrs[1], cl.Addrs[0]}
	fz, err := federated.Distribute(cl.Coord, x, rev, federated.ColPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := fx.Binary(matrix.OpSub, fz)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := diff.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if gd.Norm2() > 1e-12 {
		t.Error("misaligned binary wrong")
	}
}

func TestTransformDecodeFederated(t *testing.T) {
	cl := startCluster(t, 2)
	fr := frame.MustNew(
		frame.StringColumn("A", []string{"a", "b", "a", "c"}),
		frame.FloatColumn("B", []float64{1, 2, 3, 4}),
	)
	ff, err := federated.DistributeFrame(cl.Coord, fr, cl.Addrs, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	spec := transform.Spec{Columns: []transform.ColumnSpec{
		{Name: "A", Method: transform.Recode, OneHot: true},
	}}
	fx, meta, err := ff.TransformEncode(spec, fr.Names())
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := federated.TransformDecode(fx, meta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decoded.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got.Column(0).AsString(i) != fr.Column(0).AsString(i) {
			t.Fatalf("decoded category row %d: %q", i, got.Column(0).AsString(i))
		}
		if got.Column(1).MustFloat(i) != fr.Column(1).MustFloat(i) {
			t.Fatalf("decoded numeric row %d", i)
		}
	}
}
