package netem

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// pipeConns returns a connected TCP pair on loopback.
func pipeConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			done <- c
		}
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := <-done
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestZeroConfigPassThrough(t *testing.T) {
	c, _ := pipeConns(t)
	if Wrap(c, Config{}) != c {
		t.Fatal("zero config should not wrap")
	}
	if LAN().Enabled() {
		t.Fatal("LAN should be a perfect link")
	}
	if !WAN().Enabled() {
		t.Fatal("WAN must inject delay")
	}
}

func TestLatencyInjection(t *testing.T) {
	c, s := pipeConns(t)
	wc := Wrap(c, Config{RTT: 40 * time.Millisecond})
	buf := make([]byte, 4)
	go func() {
		wc.Write([]byte("ping"))
	}()
	start := time.Now()
	if _, err := s.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("one-way latency not applied: %v", d)
	}
}

func TestBurstLatencyChargedOnce(t *testing.T) {
	c, s := pipeConns(t)
	wc := Wrap(c, Config{RTT: 40 * time.Millisecond})
	go func() {
		// Three writes within the burst gap: one latency charge total.
		wc.Write([]byte("a"))
		wc.Write([]byte("b"))
		wc.Write([]byte("c"))
	}()
	buf := make([]byte, 3)
	start := time.Now()
	total := 0
	for total < 3 {
		n, err := s.Read(buf[total:])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if d := time.Since(start); d > 70*time.Millisecond {
		t.Fatalf("latency charged per write, not per burst: %v", d)
	}
}

func TestBandwidthThrottling(t *testing.T) {
	c, s := pipeConns(t)
	// 1 MB/s: 100 KB should take ~100 ms.
	wc := Wrap(c, Config{BandwidthBps: 1e6})
	payload := make([]byte, 100*1024)
	go func() {
		wc.Write(payload)
	}()
	buf := make([]byte, len(payload))
	start := time.Now()
	total := 0
	for total < len(payload) {
		n, err := s.Read(buf[total:])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	d := time.Since(start)
	if d < 60*time.Millisecond {
		t.Fatalf("bandwidth not throttled: %v", d)
	}
	if d > 500*time.Millisecond {
		t.Fatalf("throttling too aggressive: %v", d)
	}
}

func TestWrapListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := WrapListener(ln, Config{RTT: 10 * time.Millisecond})
	if wrapped == ln {
		t.Fatal("listener not wrapped")
	}
	if same := WrapListener(ln, Config{}); same != ln {
		t.Fatal("zero config should not wrap listener")
	}
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			c.Write([]byte("x"))
			c.Close()
		}
	}()
	conn, err := wrapped.Accept()
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	ln.Close()
}

func TestInjectedResetAfterBytes(t *testing.T) {
	c, _ := pipeConns(t)
	faults := NewFaults(FaultConfig{Seed: 1, ConnResets: 1, ResetAfterBytes: 8})
	wc := Wrap(c, Config{Faults: faults})
	if _, err := wc.Write([]byte("1234")); err != nil {
		t.Fatalf("below threshold: %v", err)
	}
	if _, err := wc.Write([]byte("5678")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want injected reset at threshold, got %v", err)
	}
	// The conn is dead for good: later writes keep failing.
	if _, err := wc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("reset not sticky: %v", err)
	}
	if s := faults.Stats(); s.Resets != 1 {
		t.Fatalf("stats = %+v, want 1 reset", s)
	}
	// The budget is spent: a redialed connection is not reset again.
	c2, _ := pipeConns(t)
	wc2 := Wrap(c2, Config{Faults: faults})
	if _, err := wc2.Write(make([]byte, 64)); err != nil {
		t.Fatalf("reset fired beyond its budget: %v", err)
	}
}

func TestInjectedOneShotDrop(t *testing.T) {
	c, _ := pipeConns(t)
	faults := NewFaults(FaultConfig{Drops: 1})
	wc := Wrap(c, Config{Faults: faults})
	if _, err := wc.Write([]byte("x")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("want injected drop, got %v", err)
	}
	c2, _ := pipeConns(t)
	wc2 := Wrap(c2, Config{Faults: faults})
	if _, err := wc2.Write([]byte("x")); err != nil {
		t.Fatalf("drop budget not one-shot: %v", err)
	}
	if s := faults.Stats(); s.Drops != 1 {
		t.Fatalf("stats = %+v, want 1 drop", s)
	}
}

func TestStallWindowTripsWriteDeadline(t *testing.T) {
	c, _ := pipeConns(t)
	faults := NewFaults(FaultConfig{Stalls: 1, StallFor: 5 * time.Second})
	wc := Wrap(c, Config{Faults: faults})
	if err := wc.SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := wc.Write([]byte("x"))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error from stalled write, got %v", err)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("stall error is not a net timeout: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("stall ignored the deadline: blocked %v", d)
	}
	// The stall window is one-shot: with the deadline cleared, the next
	// write proceeds.
	if err := wc.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Write([]byte("y")); err != nil {
		t.Fatalf("stall not one-shot: %v", err)
	}
}

func TestCloseInterruptsEmulatedDelay(t *testing.T) {
	c, _ := pipeConns(t)
	// 10 KB at 1 KB/s: a 10-second write delay unless Close interrupts.
	wc := Wrap(c, Config{BandwidthBps: 1024})
	errc := make(chan error, 1)
	go func() {
		_, err := wc.Write(make([]byte, 10*1024))
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	wc.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("want ErrClosed from interrupted delay, got %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not interrupt the emulated delay")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("interrupt was slow: %v", d)
	}
}

func TestResetPerAddrSparesRedialedConns(t *testing.T) {
	faults := NewFaults(FaultConfig{Seed: 3, ConnResets: 2, ResetAfterBytes: 8, ResetPerAddr: true})
	c1, _ := pipeConns(t)
	wc1 := Wrap(c1, Config{Faults: faults})
	if _, err := wc1.Write(make([]byte, 16)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("first conn should reset: %v", err)
	}
	// A redial to the same address draws no second reset: its key is spent.
	if faults.takeReset(c1.RemoteAddr().String()) {
		t.Fatal("second reset for the same address should be refused")
	}
	// A different address still gets the remaining token, and then the
	// budget is gone.
	if !faults.takeReset("other-worker:1") {
		t.Fatal("fresh address should take the remaining reset token")
	}
	if faults.takeReset("third-worker:1") {
		t.Fatal("budget of 2 is spent; no token for a new address")
	}
	if s := faults.Stats(); s.Resets != 2 {
		t.Fatalf("stats = %+v, want 2 resets", s)
	}
}

func TestInjectedTruncationMidStream(t *testing.T) {
	c, s := pipeConns(t)
	faults := NewFaults(FaultConfig{Truncations: 1, TruncateAfterBytes: 6})
	wc := Wrap(c, Config{Faults: faults})
	if _, err := wc.Write([]byte("head")); err != nil {
		t.Fatalf("below threshold: %v", err)
	}
	// This write crosses the offset: 2 of its 8 bytes are delivered, then
	// the conn dies.
	n, err := wc.Write([]byte("slabslab"))
	if !errors.Is(err, ErrInjectedTruncation) {
		t.Fatalf("want injected truncation, got %v", err)
	}
	if n != 2 {
		t.Fatalf("delivered %d bytes past the threshold, want 2", n)
	}
	// The truncation is sticky and counted.
	if _, err := wc.Write([]byte("x")); !errors.Is(err, ErrInjectedTruncation) {
		t.Fatalf("truncation not sticky: %v", err)
	}
	if st := faults.Stats(); st.Truncations != 1 {
		t.Fatalf("stats = %+v, want 1 truncation", st)
	}
	// The peer sees exactly the 6-byte prefix and then EOF.
	got := make([]byte, 16)
	total := 0
	for {
		n, err := s.Read(got[total:])
		total += n
		if err != nil {
			break
		}
	}
	if total != 6 || string(got[:6]) != "headsl" {
		t.Fatalf("peer saw %q (%d bytes), want 6-byte prefix \"headsl\"", got[:total], total)
	}
	// The budget is one-shot: a second connection is untouched.
	c2, _ := pipeConns(t)
	wc2 := Wrap(c2, Config{Faults: faults})
	if _, err := wc2.Write(make([]byte, 64)); err != nil {
		t.Fatalf("truncation fired beyond its budget: %v", err)
	}
}

func TestInjectedSingleByteCorruption(t *testing.T) {
	c, s := pipeConns(t)
	faults := NewFaults(FaultConfig{Seed: 9, CorruptBytes: 1, CorruptAfterBytes: 3})
	wc := Wrap(c, Config{Faults: faults})
	payload := []byte("01234567")
	orig := append([]byte(nil), payload...)
	if _, err := wc.Write(payload); err != nil {
		t.Fatalf("corrupting write must succeed: %v", err)
	}
	if string(payload) != string(orig) {
		t.Fatal("caller's buffer was mutated; corruption must act on a copy")
	}
	got := make([]byte, len(payload))
	total := 0
	for total < len(payload) {
		n, err := s.Read(got[total:])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
			if i != 3 {
				t.Fatalf("corrupted byte at offset %d, want 3", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if st := faults.Stats(); st.Corruptions != 1 {
		t.Fatalf("stats = %+v, want 1 corruption", st)
	}
	// One-shot: the next write passes through clean.
	if _, err := wc.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	clean := make([]byte, 4)
	total = 0
	for total < 4 {
		n, err := s.Read(clean[total:])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if string(clean) != "abcd" {
		t.Fatalf("second write corrupted too: %q", clean)
	}
}

func TestStallAfterBytesDefersWindow(t *testing.T) {
	c, _ := pipeConns(t)
	faults := NewFaults(FaultConfig{Stalls: 1, StallFor: 5 * time.Second, StallAfterBytes: 8})
	wc := Wrap(c, Config{Faults: faults})
	if err := wc.SetDeadline(time.Now().Add(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// Below the arming threshold: the "handshake" writes sail through.
	start := time.Now()
	if _, err := wc.Write([]byte("prelude!")); err != nil {
		t.Fatalf("pre-threshold write stalled: %v", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("stall fired before StallAfterBytes: %v", d)
	}
	// The next write is past the threshold: the stall fires and the
	// deadline trips it.
	if _, err := wc.Write([]byte("batch")); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error from deferred stall, got %v", err)
	}
}

func TestStallThenResetTearsDownAfterWindow(t *testing.T) {
	c, _ := pipeConns(t)
	faults := NewFaults(FaultConfig{Stalls: 1, StallFor: 20 * time.Millisecond, StallThenReset: true})
	wc := Wrap(c, Config{Faults: faults})
	// No deadline: the stall window elapses, then the reset lands.
	if _, err := wc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want injected reset after stall window, got %v", err)
	}
	if _, err := wc.Write([]byte("y")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("stall-reset not sticky: %v", err)
	}
	st := faults.Stats()
	if st.StallResets != 1 || st.Stalls != 1 {
		t.Fatalf("stats = %+v, want 1 stall and 1 stall-reset", st)
	}
}

func TestResetJitterIsDeterministic(t *testing.T) {
	thresholds := func(seed int64) []int64 {
		f := NewFaults(FaultConfig{Seed: seed, ConnResets: 3, ResetAfterBytes: 1000, ResetJitter: 0.5})
		var out []int64
		for i := 0; i < 3; i++ {
			out = append(out, f.planConn().resetAt)
		}
		return out
	}
	a, b := thresholds(42), thresholds(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedule: %v vs %v", a, b)
		}
		if a[i] < 500 || a[i] > 1500 {
			t.Fatalf("jittered threshold %d outside [500,1500]", a[i])
		}
	}
}
