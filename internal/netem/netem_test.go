package netem

import (
	"net"
	"testing"
	"time"
)

// pipeConns returns a connected TCP pair on loopback.
func pipeConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			done <- c
		}
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := <-done
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestZeroConfigPassThrough(t *testing.T) {
	c, _ := pipeConns(t)
	if Wrap(c, Config{}) != c {
		t.Fatal("zero config should not wrap")
	}
	if LAN().Enabled() {
		t.Fatal("LAN should be a perfect link")
	}
	if !WAN().Enabled() {
		t.Fatal("WAN must inject delay")
	}
}

func TestLatencyInjection(t *testing.T) {
	c, s := pipeConns(t)
	wc := Wrap(c, Config{RTT: 40 * time.Millisecond})
	buf := make([]byte, 4)
	go func() {
		wc.Write([]byte("ping"))
	}()
	start := time.Now()
	if _, err := s.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("one-way latency not applied: %v", d)
	}
}

func TestBurstLatencyChargedOnce(t *testing.T) {
	c, s := pipeConns(t)
	wc := Wrap(c, Config{RTT: 40 * time.Millisecond})
	go func() {
		// Three writes within the burst gap: one latency charge total.
		wc.Write([]byte("a"))
		wc.Write([]byte("b"))
		wc.Write([]byte("c"))
	}()
	buf := make([]byte, 3)
	start := time.Now()
	total := 0
	for total < 3 {
		n, err := s.Read(buf[total:])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if d := time.Since(start); d > 70*time.Millisecond {
		t.Fatalf("latency charged per write, not per burst: %v", d)
	}
}

func TestBandwidthThrottling(t *testing.T) {
	c, s := pipeConns(t)
	// 1 MB/s: 100 KB should take ~100 ms.
	wc := Wrap(c, Config{BandwidthBps: 1e6})
	payload := make([]byte, 100*1024)
	go func() {
		wc.Write(payload)
	}()
	buf := make([]byte, len(payload))
	start := time.Now()
	total := 0
	for total < len(payload) {
		n, err := s.Read(buf[total:])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	d := time.Since(start)
	if d < 60*time.Millisecond {
		t.Fatalf("bandwidth not throttled: %v", d)
	}
	if d > 500*time.Millisecond {
		t.Fatalf("throttling too aggressive: %v", d)
	}
}

func TestWrapListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := WrapListener(ln, Config{RTT: 10 * time.Millisecond})
	if wrapped == ln {
		t.Fatal("listener not wrapped")
	}
	if same := WrapListener(ln, Config{}); same != ln {
		t.Fatal("zero config should not wrap listener")
	}
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			c.Write([]byte("x"))
			c.Close()
		}
	}()
	conn, err := wrapped.Accept()
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	ln.Close()
}
