// Package netem emulates network conditions on top of net.Conn, standing in
// for the paper's physical LAN (two racks, 10 Gb Ethernet) and WAN
// (Copenhagen–Graz, ~35–60 ms RTT, ~1.4–2 MB/s) environments. Delays are
// injected at the connection layer, so the federated protocol code paths
// (serialization, batching, parallel RPCs) are exercised unchanged.
//
// Beyond link shaping, the package injects deterministic transport faults —
// connection resets after a byte threshold, one-shot connection drops, and
// write-stall windows — so the recovery paths of the federation layer
// (fedrpc redial, coordinator retry) are exercised by real connections in
// tests instead of being hand-waved.
package netem

import (
	"errors"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"exdra/internal/obs"
)

// Config describes an emulated link. The zero value emulates a perfect link
// (no added latency, unlimited bandwidth, no faults).
type Config struct {
	// RTT is the round-trip latency; each direction is charged RTT/2 per
	// message burst.
	RTT time.Duration
	// BandwidthBps limits throughput in bytes per second; zero means
	// unlimited.
	BandwidthBps float64
	// Faults points at shared fault-injection state (NewFaults); nil
	// disables injection. The state is shared deliberately: every
	// connection wrapped with the same *Faults draws from one seeded
	// schedule, so plans like "reset every connection once" keep holding
	// across redials.
	Faults *Faults
}

// LAN returns the paper's local-area configuration (no artificial delay).
func LAN() Config { return Config{} }

// WAN returns a configuration matching the paper's wide-area measurements:
// ~45 ms RTT and ~1.7 MB/s transfer bandwidth (midpoints of the reported
// 35–60 ms and 1.4–2 MB/s ranges).
func WAN() Config {
	return Config{RTT: 45 * time.Millisecond, BandwidthBps: 1.7e6}
}

// Enabled reports whether the config shapes or faults the link.
func (c Config) Enabled() bool { return c.RTT > 0 || c.BandwidthBps > 0 || c.Faults != nil }

// ErrInjectedReset marks a fault-injected connection teardown (the emulated
// peer reset the connection after the configured byte threshold).
var ErrInjectedReset = errors.New("netem: injected connection reset")

// ErrInjectedDrop marks a fault-injected one-shot drop: the connection was
// established and then immediately killed.
var ErrInjectedDrop = errors.New("netem: injected connection drop")

// ErrInjectedTruncation marks a fault-injected mid-stream truncation: the
// connection delivered a prefix of a message (for the binary framing,
// typically a partial float slab) and was then torn down, so the peer
// observes a short read in the middle of a frame rather than at a message
// boundary.
var ErrInjectedTruncation = errors.New("netem: injected mid-stream truncation")

// FaultConfig describes a deterministic fault schedule. All faults are
// driven by Seed, so a test run is reproducible.
type FaultConfig struct {
	// Seed drives the schedule's RNG (reset-threshold jitter).
	Seed int64
	// ConnResets is the total number of connection resets to inject. An
	// affected connection is torn down once it has written
	// ResetAfterBytes bytes (jittered by ResetJitter); the connection's
	// I/O then fails with ErrInjectedReset. Redialed connections start a
	// fresh byte count and draw from the remaining reset budget.
	ConnResets int
	// ResetAfterBytes is the per-connection written-byte threshold that
	// triggers a reset; required (>0) for ConnResets to take effect.
	ResetAfterBytes int64
	// ResetJitter varies each connection's threshold by up to this
	// fraction of ResetAfterBytes in either direction (e.g. 0.5 draws
	// from [0.5x, 1.5x]). Zero keeps the threshold exact.
	ResetJitter float64
	// ResetPerAddr limits resets to one per remote address. Without it, a
	// reconnecting peer can burn the whole reset budget on one address
	// (every redialed connection crosses the threshold again); with it,
	// plans like "reset the connection to every worker exactly once"
	// hold regardless of retry interleaving.
	ResetPerAddr bool
	// Drops kills the next N wrapped connections immediately after
	// establishment (one-shot connect-then-die drops); their first I/O
	// fails with ErrInjectedDrop.
	Drops int
	// Stalls freezes one write of the next N wrapped connections for
	// StallFor before proceeding — a stall window long enough to trip the
	// caller's I/O deadline when StallFor exceeds it. By default the
	// connection's first write stalls; StallAfterBytes moves the window
	// later into the stream.
	Stalls int
	// StallFor is the stall-window duration; required (>0) for Stalls to
	// take effect.
	StallFor time.Duration
	// StallAfterBytes arms the stall only once the connection has already
	// written this many bytes, so the freeze lands mid-batch (inside the
	// framed payload) instead of on the handshake prelude that every
	// connection writes first. Zero keeps the legacy first-write stall.
	StallAfterBytes int64
	// StallThenReset tears the connection down with ErrInjectedReset when
	// the stall window elapses instead of letting the write proceed — the
	// "peer froze, then the kernel gave up on it" failure, which exercises
	// both the caller's deadline discipline (during the stall) and its
	// redial path (after).
	StallThenReset bool
	// Truncations is the number of mid-stream truncations to inject. An
	// affected connection delivers exactly TruncateAfterBytes bytes and is
	// then torn down mid-frame; its writer fails with
	// ErrInjectedTruncation and the peer observes a short read inside a
	// message.
	Truncations int
	// TruncateAfterBytes is the written-byte offset at which an affected
	// connection is cut; required (>0) for Truncations to take effect.
	TruncateAfterBytes int64
	// CorruptBytes is the number of single-byte corruptions to inject.
	// An affected connection XORs one seeded bit into the byte at stream
	// offset CorruptAfterBytes and otherwise proceeds normally — the
	// silent-corruption fault that only checksums (or a lucky decode
	// error) can catch.
	CorruptBytes int
	// CorruptAfterBytes is the stream offset of the byte to corrupt.
	// Point it past the frame header to land inside a payload slab.
	CorruptAfterBytes int64
}

// FaultStats counts the faults injected so far. Drops and Stalls are
// counted when a connection is assigned the fault (the assignment alone
// already perturbs the schedule); Resets, StallResets, Truncations and
// Corruptions are counted only when the fault actually fires on the wire,
// so chaos tests can assert the byzantine path was genuinely exercised.
type FaultStats struct {
	Resets      int
	Drops       int
	Stalls      int
	StallResets int
	Truncations int
	Corruptions int
}

// Faults is the shared, mutable state of one fault schedule. Create it with
// NewFaults and place the same pointer in every Config that should draw
// from the schedule.
type Faults struct {
	mu           sync.Mutex
	cfg          FaultConfig     // immutable after NewFaults
	rng          *rand.Rand      // guarded by mu
	resetsLeft   int             // guarded by mu
	dropsLeft    int             // guarded by mu
	stallsLeft   int             // guarded by mu
	truncsLeft   int             // guarded by mu
	corruptsLeft int             // guarded by mu
	resetAddrs   map[string]bool // addresses already reset (ResetPerAddr); guarded by mu
	stats        FaultStats      // guarded by mu
}

// NewFaults compiles a fault schedule from cfg.
func NewFaults(cfg FaultConfig) *Faults {
	return &Faults{
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		resetsLeft:   cfg.ConnResets,
		dropsLeft:    cfg.Drops,
		stallsLeft:   cfg.Stalls,
		truncsLeft:   cfg.Truncations,
		corruptsLeft: cfg.CorruptBytes,
		resetAddrs:   map[string]bool{},
	}
}

// Stats returns how many faults have been injected so far. Tests assert on
// it so a "recovery" test that never actually hit a fault fails loudly.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// connPlan is one connection's share of the fault schedule, drawn at wrap
// time. Zero-valued fields mean "no such fault planned".
type connPlan struct {
	drop        bool
	resetAt     int64 // written-byte reset threshold (0 = none)
	stall       time.Duration
	stallAfter  int64 // bytes written before the stall arms
	stallReset  bool  // tear the conn down when the stall elapses
	truncateAt  int64 // written-byte truncation offset (0 = none)
	corrupt     bool
	corruptAt   int64 // stream offset of the byte to corrupt
	corruptMask byte  // nonzero XOR mask for the corrupted byte
}

// planConn draws one connection's fault plan from the schedule. Resets
// keep their legacy independent draw (their jittered threshold coexists
// with anything). The byzantine classes — truncation, corruption, stall —
// are assigned at most one per connection, chosen by the seeded RNG among
// the classes with remaining budget: stacking them on one connection would
// just let the earliest-firing fault mask the rest, and a chaos config
// wants every budgeted class to actually reach the wire.
func (f *Faults) planConn() connPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	var pl connPlan
	if f.dropsLeft > 0 {
		f.dropsLeft--
		f.stats.Drops++
		obs.Default().Counter("netem.faults.drops").Inc()
		pl.drop = true
		return pl
	}
	if f.resetsLeft > 0 && f.cfg.ResetAfterBytes > 0 {
		pl.resetAt = f.cfg.ResetAfterBytes
		if j := f.cfg.ResetJitter; j > 0 {
			pl.resetAt += int64(float64(f.cfg.ResetAfterBytes) * j * (f.rng.Float64()*2 - 1))
			if pl.resetAt < 1 {
				pl.resetAt = 1
			}
		}
	}
	const (
		classTruncate = iota
		classCorrupt
		classStall
	)
	var classes []int
	if f.truncsLeft > 0 && f.cfg.TruncateAfterBytes > 0 {
		classes = append(classes, classTruncate)
	}
	if f.corruptsLeft > 0 {
		classes = append(classes, classCorrupt)
	}
	if f.stallsLeft > 0 && f.cfg.StallFor > 0 {
		classes = append(classes, classStall)
	}
	if len(classes) == 0 {
		return pl
	}
	switch classes[f.rng.Intn(len(classes))] {
	case classTruncate:
		f.truncsLeft--
		pl.truncateAt = f.cfg.TruncateAfterBytes
	case classCorrupt:
		f.corruptsLeft--
		pl.corrupt = true
		pl.corruptAt = f.cfg.CorruptAfterBytes
		pl.corruptMask = 1 << uint(f.rng.Intn(8))
	case classStall:
		f.stallsLeft--
		f.stats.Stalls++
		obs.Default().Counter("netem.faults.stalls").Inc()
		pl.stall = f.cfg.StallFor
		pl.stallAfter = f.cfg.StallAfterBytes
		pl.stallReset = f.cfg.StallThenReset
	}
	return pl
}

// noteTruncation records a truncation that actually fired.
func (f *Faults) noteTruncation() {
	f.mu.Lock()
	f.stats.Truncations++
	f.mu.Unlock()
	obs.Default().Counter("netem.faults.truncations").Inc()
}

// noteCorruption records a corruption that actually fired.
func (f *Faults) noteCorruption() {
	f.mu.Lock()
	f.stats.Corruptions++
	f.mu.Unlock()
	obs.Default().Counter("netem.faults.corruptions").Inc()
}

// noteStallReset records a stall window that ended in a teardown.
func (f *Faults) noteStallReset() {
	f.mu.Lock()
	f.stats.StallResets++
	f.mu.Unlock()
	obs.Default().Counter("netem.faults.stall_resets").Inc()
}

// takeReset consumes one reset token when a connection to addr crosses its
// threshold. It can return false when concurrent connections raced for the
// last token, or when ResetPerAddr is set and addr was already reset; the
// loser carries on un-reset.
func (f *Faults) takeReset(addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.resetsLeft <= 0 {
		return false
	}
	if f.cfg.ResetPerAddr {
		if f.resetAddrs[addr] {
			return false
		}
		f.resetAddrs[addr] = true
	}
	f.resetsLeft--
	f.stats.Resets++
	obs.Default().Counter("netem.faults.resets").Inc()
	return true
}

// conn wraps a net.Conn, delaying writes to model one-way latency plus
// serialization time at the configured bandwidth, and injecting the faults
// planned for it.
type conn struct {
	net.Conn
	cfg Config

	closeOnce sync.Once
	closed    chan struct{}

	mu sync.Mutex
	// nextFree is the emulated time at which the link becomes free again;
	// a write completing at time t makes the link busy until t + len/bw.
	// Guarded by mu.
	nextFree time.Time
	// lastWrite tracks burst boundaries: a write more than burstGap after
	// the previous one is a new message burst and pays one-way latency.
	// Guarded by mu.
	lastWrite time.Time
	// wdeadline mirrors the most recent SetDeadline/SetWriteDeadline so
	// the emulated delay can be cut short when the caller's deadline
	// expires first. Guarded by mu.
	wdeadline time.Time
	// written counts bytes attempted through Write, for the reset
	// threshold. Guarded by mu.
	written int64
	// resetAt is this connection's planned reset threshold (0 = none).
	// Guarded by mu.
	resetAt int64
	// stall is the pending one-shot stall window. Guarded by mu.
	stall time.Duration
	// stallAfter delays the stall until this many bytes have been written.
	// Guarded by mu.
	stallAfter int64
	// stallReset tears the conn down when the stall window elapses.
	// Guarded by mu.
	stallReset bool
	// truncateAt is the planned mid-stream truncation offset (0 = none).
	// Guarded by mu.
	truncateAt int64
	// corruptArmed/corruptAt/corruptMask describe the planned single-byte
	// corruption; armed distinguishes offset 0 from "none". Guarded by mu.
	corruptArmed bool
	corruptAt    int64
	corruptMask  byte
	// broken is the sticky error after an injected fault killed the conn.
	// Guarded by mu.
	broken error
}

// burstGap separates message bursts for latency accounting. Writes closer
// together than this are treated as one burst (e.g. a single RPC flushed in
// several chunks) and pay latency only once.
const burstGap = 2 * time.Millisecond

// Wrap returns c with the emulated link characteristics applied to writes.
// A zero config returns c unchanged.
func Wrap(c net.Conn, cfg Config) net.Conn {
	if !cfg.Enabled() {
		return c
	}
	w := &conn{Conn: c, cfg: cfg, closed: make(chan struct{})}
	if f := cfg.Faults; f != nil {
		pl := f.planConn()
		w.resetAt = pl.resetAt
		w.stall, w.stallAfter, w.stallReset = pl.stall, pl.stallAfter, pl.stallReset
		w.truncateAt = pl.truncateAt
		w.corruptArmed, w.corruptAt, w.corruptMask = pl.corrupt, pl.corruptAt, pl.corruptMask
		if pl.drop {
			w.broken = ErrInjectedDrop
			c.Close()
		}
	}
	return w
}

// Write delays the underlying write to model the emulated link and injects
// planned faults. The delay is interruptible: Close and an expired write
// deadline cut it short, so shutdown and timeouts stay prompt even under
// heavy WAN emulation. Deadline discipline otherwise belongs to the
// protocol endpoints (fedrpc client/server), which call SetDeadline through
// this wrapper.
//
//lint:ignore netdeadline shaping shim; deadlines are armed by the fedrpc endpoints and honored by the interruptible delay
func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if err := c.broken; err != nil {
		c.mu.Unlock()
		return 0, c.opErr("write", err)
	}
	now := time.Now()
	var wait time.Duration
	if c.cfg.RTT > 0 && now.Sub(c.lastWrite) > burstGap {
		wait += c.cfg.RTT / 2
	}
	if c.cfg.BandwidthBps > 0 {
		if c.nextFree.Before(now) {
			c.nextFree = now
		}
		busy := time.Duration(float64(len(p)) / c.cfg.BandwidthBps * float64(time.Second))
		c.nextFree = c.nextFree.Add(busy)
		if d := c.nextFree.Sub(now); d > wait {
			wait = d
		}
	}
	// A planned stall window applies once, on top of the shaping delay —
	// but only once the stream has advanced past StallAfterBytes, so a
	// mid-batch stall skips the handshake prelude and lands inside a
	// framed payload.
	var stallReset bool
	if c.stall > 0 && c.written >= c.stallAfter {
		wait += c.stall
		c.stall = 0
		stallReset = c.stallReset
	}
	c.lastWrite = now.Add(wait)
	deadline := c.wdeadline
	c.mu.Unlock()
	if wait > 0 {
		if err := c.delay(wait, deadline); err != nil {
			return 0, err
		}
	}
	if stallReset {
		// The stall window elapsed without the caller's deadline firing;
		// now the emulated peer resets the connection.
		c.mu.Lock()
		c.broken = ErrInjectedReset
		c.mu.Unlock()
		c.cfg.Faults.noteStallReset()
		c.Conn.Close()
		return 0, c.opErr("write", ErrInjectedReset)
	}
	// Corruption first: it leaves the connection alive, so a truncation
	// planned at a later offset of the same write still gets its turn.
	p = c.maybeCorrupt(p)
	if n, err, handled := c.maybeTruncate(p); handled {
		return n, err
	}
	if err := c.maybeReset(len(p)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// maybeTruncate cuts the connection mid-write when the planned truncation
// offset falls inside p: the prefix up to the offset is delivered, the
// transport is closed, and the caller sees ErrInjectedTruncation. The peer
// observes a short read inside a frame — for the binary framing, typically
// a partial float slab.
//
//lint:ignore netdeadline fault-injection shim; the partial write runs under whatever deadline the caller armed on the wrapped conn
func (c *conn) maybeTruncate(p []byte) (int, error, bool) {
	c.mu.Lock()
	if c.truncateAt <= 0 || c.written+int64(len(p)) <= c.truncateAt {
		c.mu.Unlock()
		return 0, nil, false
	}
	keep := c.truncateAt - c.written
	if keep < 0 {
		keep = 0
	}
	c.truncateAt = 0
	c.broken = ErrInjectedTruncation
	c.mu.Unlock()
	c.cfg.Faults.noteTruncation()
	n := 0
	if keep > 0 {
		n, _ = c.Conn.Write(p[:keep])
	}
	c.Conn.Close()
	return n, c.opErr("write", ErrInjectedTruncation), true
}

// maybeCorrupt flips one seeded bit of the byte at the planned stream
// offset and lets the write proceed — the connection stays healthy, only
// the data lies. The caller's buffer is never mutated; the corruption
// happens on a copy.
func (c *conn) maybeCorrupt(p []byte) []byte {
	c.mu.Lock()
	if !c.corruptArmed || c.written+int64(len(p)) <= c.corruptAt || len(p) == 0 {
		c.mu.Unlock()
		return p
	}
	idx := c.corruptAt - c.written
	if idx < 0 {
		idx = 0
	}
	if idx >= int64(len(p)) {
		idx = int64(len(p)) - 1
	}
	mask := c.corruptMask
	c.corruptArmed = false
	c.mu.Unlock()
	c.cfg.Faults.noteCorruption()
	q := make([]byte, len(p))
	copy(q, p)
	q[idx] ^= mask
	return q
}

// maybeReset accounts n attempted bytes and tears the connection down when
// the planned reset threshold is crossed and the schedule still has a reset
// token.
func (c *conn) maybeReset(n int) error {
	c.mu.Lock()
	c.written += int64(n)
	tripped := c.resetAt > 0 && c.written >= c.resetAt
	if tripped {
		c.resetAt = 0 // one reset attempt per connection
	}
	c.mu.Unlock()
	if !tripped || !c.cfg.Faults.takeReset(remoteKey(c.Conn)) {
		return nil
	}
	c.mu.Lock()
	c.broken = ErrInjectedReset
	c.mu.Unlock()
	// Kill the transport so the peer observes the reset too.
	c.Conn.Close()
	return c.opErr("write", ErrInjectedReset)
}

// delay blocks for d, returning early when the connection is closed or the
// caller's write deadline expires first: an emulated WAN delay must never
// outlive the deadline discipline of the endpoints.
func (c *conn) delay(d time.Duration, deadline time.Time) error {
	if !deadline.IsZero() {
		if remain := time.Until(deadline); remain < d {
			// The deadline expires mid-delay: wait only that long, then
			// report the timeout the caller armed.
			if remain > 0 {
				t := time.NewTimer(remain)
				defer t.Stop()
				select {
				case <-t.C:
				case <-c.closed:
					return c.opErr("write", net.ErrClosed)
				}
			}
			return c.opErr("write", os.ErrDeadlineExceeded)
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closed:
		return c.opErr("write", net.ErrClosed)
	}
}

// remoteKey identifies the peer for per-address fault accounting: the
// dialer's view of a worker ("ip:port" of the listener) is stable across
// redials, which is exactly what ResetPerAddr needs.
func remoteKey(c net.Conn) string {
	if a := c.RemoteAddr(); a != nil {
		return a.String()
	}
	return ""
}

func (c *conn) opErr(op string, err error) error {
	return &net.OpError{Op: op, Net: "netem", Addr: c.Conn.RemoteAddr(), Err: err}
}

// Close interrupts any in-flight emulated delay and closes the underlying
// connection.
func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// SetDeadline mirrors the write deadline for the emulated delay and
// forwards to the underlying connection.
func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetWriteDeadline mirrors the deadline for the emulated delay and forwards
// to the underlying connection.
func (c *conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdeadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// Listener wraps accepted connections with the emulated link.
type Listener struct {
	net.Listener
	cfg Config
}

// WrapListener returns l with every accepted connection wrapped in cfg.
func WrapListener(l net.Listener, cfg Config) net.Listener {
	if !cfg.Enabled() {
		return l
	}
	return &Listener{Listener: l, cfg: cfg}
}

// Accept waits for the next connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(c, l.cfg), nil
}
