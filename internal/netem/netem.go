// Package netem emulates network conditions on top of net.Conn, standing in
// for the paper's physical LAN (two racks, 10 Gb Ethernet) and WAN
// (Copenhagen–Graz, ~35–60 ms RTT, ~1.4–2 MB/s) environments. Delays are
// injected at the connection layer, so the federated protocol code paths
// (serialization, batching, parallel RPCs) are exercised unchanged.
package netem

import (
	"net"
	"sync"
	"time"
)

// Config describes an emulated link. The zero value emulates a perfect link
// (no added latency, unlimited bandwidth).
type Config struct {
	// RTT is the round-trip latency; each direction is charged RTT/2 per
	// message burst.
	RTT time.Duration
	// BandwidthBps limits throughput in bytes per second; zero means
	// unlimited.
	BandwidthBps float64
}

// LAN returns the paper's local-area configuration (no artificial delay).
func LAN() Config { return Config{} }

// WAN returns a configuration matching the paper's wide-area measurements:
// ~45 ms RTT and ~1.7 MB/s transfer bandwidth (midpoints of the reported
// 35–60 ms and 1.4–2 MB/s ranges).
func WAN() Config {
	return Config{RTT: 45 * time.Millisecond, BandwidthBps: 1.7e6}
}

// Enabled reports whether the config injects any delay.
func (c Config) Enabled() bool { return c.RTT > 0 || c.BandwidthBps > 0 }

// conn wraps a net.Conn, delaying writes to model one-way latency plus
// serialization time at the configured bandwidth.
type conn struct {
	net.Conn
	cfg Config

	mu sync.Mutex
	// nextFree is the emulated time at which the link becomes free again;
	// a write completing at time t makes the link busy until t + len/bw.
	nextFree time.Time
	// lastWrite tracks burst boundaries: a write more than burstGap after
	// the previous one is a new message burst and pays one-way latency.
	lastWrite time.Time
}

// burstGap separates message bursts for latency accounting. Writes closer
// together than this are treated as one burst (e.g. a single RPC flushed in
// several chunks) and pay latency only once.
const burstGap = 2 * time.Millisecond

// Wrap returns c with the emulated link characteristics applied to writes.
// A zero config returns c unchanged.
func Wrap(c net.Conn, cfg Config) net.Conn {
	if !cfg.Enabled() {
		return c
	}
	return &conn{Conn: c, cfg: cfg}
}

// Write delays the underlying write to model the emulated link. It is a
// transparent shim: deadline discipline belongs to the protocol endpoints
// (fedrpc client/server), which call SetDeadline through the embedded
// net.Conn.
//
//lint:ignore netdeadline pass-through shim; deadlines are armed by the fedrpc endpoints on the embedded conn
func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	now := time.Now()
	var wait time.Duration
	if c.cfg.RTT > 0 && now.Sub(c.lastWrite) > burstGap {
		wait += c.cfg.RTT / 2
	}
	if c.cfg.BandwidthBps > 0 {
		if c.nextFree.Before(now) {
			c.nextFree = now
		}
		busy := time.Duration(float64(len(p)) / c.cfg.BandwidthBps * float64(time.Second))
		c.nextFree = c.nextFree.Add(busy)
		if d := c.nextFree.Sub(now); d > wait {
			wait = d
		}
	}
	c.lastWrite = now.Add(wait)
	c.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
	return c.Conn.Write(p)
}

// Listener wraps accepted connections with the emulated link.
type Listener struct {
	net.Listener
	cfg Config
}

// WrapListener returns l with every accepted connection wrapped in cfg.
func WrapListener(l net.Listener, cfg Config) net.Listener {
	if !cfg.Enabled() {
		return l
	}
	return &Listener{Listener: l, cfg: cfg}
}

// Accept waits for the next connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(c, l.cfg), nil
}
