package paramserv_test

import (
	"strings"
	"testing"

	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/nn"
	"exdra/internal/paramserv"
	"exdra/internal/privacy"
)

// TestStreamingRefreshBetweenEpochs reproduces the §5.1 stream-ingestion
// extension: train, slide the per-site data windows (different sizes, as a
// retention period would produce), re-coordinate imbalance, keep training.
func TestStreamingRefreshBetweenEpochs(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	x, y := data.MultiClass(61, 600, 8, 3)

	// Initial snapshot: first 400 rows, evenly split.
	fx1, err := federated.Distribute(cl.Coord, x.SliceRows(0, 400), cl.Addrs,
		federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paramserv.Config{
		Spec:      nn.FFNSpec(8, 24, 3, nn.LossSoftmaxCE),
		Optimizer: nn.OptimizerConfig{Kind: "nesterov", LR: 0.05, Mu: 0.9},
		Epochs:    4, BatchSize: 32, Seed: 3, Balance: true,
	}
	tr, err := paramserv.NewFederatedTrainer(cfg, fx1, y.SliceRows(0, 400))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.TrainEpochs(4); err != nil {
		t.Fatal(err)
	}
	accBefore := tr.Result().Network.Accuracy(x, y)

	// The window slides: new snapshot with imbalanced sizes (the retention
	// period dropped more rows at site 2).
	big, err := federated.Distribute(cl.Coord, x.SliceRows(100, 500), cl.Addrs[:1],
		federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	small, err := federated.Distribute(cl.Coord, x.SliceRows(500, 600), cl.Addrs[1:],
		federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	fx2, err := federated.RBindFed(big, small)
	if err != nil {
		t.Fatal(err)
	}
	y2 := y.SliceRows(100, 600)
	if err := tr.Refresh(fx2, y2); err != nil {
		t.Fatal(err)
	}
	if err := tr.TrainEpochs(4); err != nil {
		t.Fatal(err)
	}
	accAfter := tr.Result().Network.Accuracy(x, y)
	if accAfter < 0.9 {
		t.Fatalf("accuracy after refresh %g (before %g)", accAfter, accBefore)
	}
	if tr.Result().Syncs < 8 {
		t.Fatalf("expected syncs across both phases, got %d", tr.Result().Syncs)
	}
}

func TestRefreshValidation(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	x, y := data.MultiClass(62, 200, 6, 2)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paramserv.Config{
		Spec:      nn.FFNSpec(6, 8, 2, nn.LossSoftmaxCE),
		Optimizer: nn.OptimizerConfig{LR: 0.05},
		Epochs:    1, BatchSize: 32, Seed: 1,
	}
	tr, err := paramserv.NewFederatedTrainer(cfg, fx, y)
	if err != nil {
		t.Fatal(err)
	}
	// Refresh with swapped sites must be rejected (sessions are bound to
	// their sites; data locality is the point).
	rev, err := federated.Distribute(cl.Coord, x, []string{cl.Addrs[1], cl.Addrs[0]},
		federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Refresh(rev, y); err == nil || !strings.Contains(err.Error(), "moved") {
		t.Fatalf("moved partition accepted: %v", err)
	}
	// Label count mismatch rejected.
	if err := tr.Refresh(fx, y.SliceRows(0, 10)); err == nil {
		t.Fatal("label mismatch accepted")
	}
}
