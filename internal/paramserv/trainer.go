package paramserv

import (
	"fmt"

	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
	"exdra/internal/nn"
	"exdra/internal/worker"
)

// FederatedTrainer is the stateful variant of TrainFederated for streaming
// deployments (§5.1): training proceeds epoch by epoch, and between epochs
// the session can be re-bound to each site's current data snapshot —
// "federated workers can seamlessly handle the removal or append of new
// batches according to the configured retention periods. However, changing
// data sizes require coordination to obtain imbalance ratios for
// replication and weight adjustments."
type FederatedTrainer struct {
	cfg      Config
	coord    *federated.Coordinator
	parts    []federated.Partition
	stateIDs []int64
	weights  []float64
	srv      *server
	net      *nn.Network
	res      *Result
}

// NewFederatedTrainer sets up PS sessions at the workers of a
// row-partitioned federated feature matrix with coordinator-held labels.
func NewFederatedTrainer(cfg Config, fx *federated.Matrix, y *matrix.Dense) (*FederatedTrainer, error) {
	if err := validate(&cfg, fx.Rows()); err != nil {
		return nil, err
	}
	if fx.Scheme() != federated.RowPartitioned {
		return nil, fmt.Errorf("paramserv: federated training requires row-partitioned features")
	}
	if y.Rows() != fx.Rows() {
		return nil, fmt.Errorf("paramserv: %d labels for %d rows", y.Rows(), fx.Rows())
	}
	coord := fx.Coordinator()
	parts := fx.Map().Partitions
	srv, net, err := newServer(cfg.Spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &FederatedTrainer{cfg: cfg, coord: coord, parts: parts,
		srv: srv, net: net, res: &Result{Network: net}}
	if err := t.setup(fx, y); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *FederatedTrainer) setup(fx *federated.Matrix, y *matrix.Dense) error {
	sizes := partitionSizes(t.parts)
	factors, weights := replication(sizes, t.cfg.Balance)
	t.weights = weights
	t.stateIDs = make([]int64, len(t.parts))
	for i, p := range t.parts {
		cl, err := t.coord.Client(p.Addr)
		if err != nil {
			return err
		}
		yid := t.coord.NewID()
		t.stateIDs[i] = t.coord.NewID()
		args, err := worker.EncodeArgs(SetupArgs{
			Spec:      t.cfg.Spec,
			Optimizer: t.cfg.Optimizer,
			BatchSize: t.cfg.BatchSize,
			Seed:      t.cfg.Seed + int64(i) + 1,
			Replicate: factors[i],
			YID:       yid,
		})
		if err != nil {
			return err
		}
		resps, err := cl.Call(
			fedrpc.Request{Type: fedrpc.Put, ID: yid,
				Data: fedrpc.MatrixPayload(y.SliceRows(p.Range.RowBeg, p.Range.RowEnd))},
			fedrpc.Request{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
				Name: "ps_setup", Inputs: []int64{p.DataID}, Output: t.stateIDs[i], Args: args}},
		)
		if err != nil {
			return err
		}
		for _, r := range resps {
			if !r.OK {
				return fmt.Errorf("paramserv: setup at %s: %s", p.Addr, r.Err)
			}
		}
	}
	return nil
}

func partitionSizes(parts []federated.Partition) []int {
	sizes := make([]int, len(parts))
	for i, p := range parts {
		sizes[i] = p.Range.NumRows()
	}
	return sizes
}

// TrainEpochs runs n epochs (BSP or ASP per the config) against the
// currently bound data.
func (t *FederatedTrainer) TrainEpochs(n int) error {
	cfg := t.cfg
	cfg.Epochs = n
	if cfg.UpdateType == ASP {
		return trainFedASP(cfg, t.coord, t.parts, t.stateIDs, t.weights, t.srv, t.res)
	}
	return trainFedBSP(cfg, t.coord, t.parts, t.stateIDs, t.weights, t.srv, t.res)
}

// Refresh re-binds every worker session to the new snapshot (same sites,
// possibly different row counts — e.g. after a retention window slid),
// re-coordinating imbalance ratios and aggregation weights from the new
// partition sizes.
func (t *FederatedTrainer) Refresh(fx *federated.Matrix, y *matrix.Dense) error {
	if fx.Scheme() != federated.RowPartitioned {
		return fmt.Errorf("paramserv: refresh requires row-partitioned features")
	}
	parts := fx.Map().Partitions
	if len(parts) != len(t.parts) {
		return fmt.Errorf("paramserv: refresh with %d partitions, trained with %d", len(parts), len(t.parts))
	}
	for i := range parts {
		if parts[i].Addr != t.parts[i].Addr {
			return fmt.Errorf("paramserv: refresh partition %d moved from %s to %s",
				i, t.parts[i].Addr, parts[i].Addr)
		}
	}
	if y.Rows() != fx.Rows() {
		return fmt.Errorf("paramserv: %d labels for %d rows", y.Rows(), fx.Rows())
	}
	sizes := partitionSizes(parts)
	factors, weights := replication(sizes, t.cfg.Balance)
	t.weights = weights
	for i, p := range parts {
		cl, err := t.coord.Client(p.Addr)
		if err != nil {
			return err
		}
		yid := t.coord.NewID()
		args, err := worker.EncodeArgs(RefreshArgs{
			XID: p.DataID, YID: yid, Replicate: factors[i],
		})
		if err != nil {
			return err
		}
		resps, err := cl.Call(
			fedrpc.Request{Type: fedrpc.Put, ID: yid,
				Data: fedrpc.MatrixPayload(y.SliceRows(p.Range.RowBeg, p.Range.RowEnd))},
			fedrpc.Request{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
				Name: "ps_refresh", Inputs: []int64{t.stateIDs[i]}, Args: args}},
		)
		if err != nil {
			return err
		}
		for _, r := range resps {
			if !r.OK {
				return fmt.Errorf("paramserv: refresh at %s: %s", p.Addr, r.Err)
			}
		}
	}
	t.parts = parts
	return nil
}

// Result returns the training state (the network tracks the live global
// model).
func (t *FederatedTrainer) Result() *Result { return t.res }
