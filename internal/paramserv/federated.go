package paramserv

import (
	"sync"

	"exdra/internal/federated"
	"exdra/internal/fedrpc"
	"exdra/internal/matrix"
	"exdra/internal/nn"
	"exdra/internal/worker"
)

// WireMat is a gob-friendly matrix for UDF argument payloads (the "model"
// lists the paper's paramserv passes around).
type WireMat struct {
	Rows, Cols int
	Data       []float64
}

func toWire(ms []*matrix.Dense) []WireMat {
	out := make([]WireMat, len(ms))
	for i, m := range ms {
		out[i] = WireMat{Rows: m.Rows(), Cols: m.Cols(), Data: m.Data()}
	}
	return out
}

func fromWire(ws []WireMat) []*matrix.Dense {
	out := make([]*matrix.Dense, len(ws))
	for i, w := range ws {
		out[i] = matrix.NewDenseData(w.Rows, w.Cols, w.Data)
	}
	return out
}

// SetupArgs configure a federated PS worker session (shipped once at
// setup, like the paper's serialized gradient/update functions).
type SetupArgs struct {
	Spec      nn.Spec
	Optimizer nn.OptimizerConfig
	BatchSize int
	Seed      int64
	// Replicate repeats the local partition to balance imbalance (§4.3).
	Replicate int
	// YID is the worker-local labels object paired with the features.
	YID int64
}

// RunArgs drive one synchronization segment at a worker.
type RunArgs struct {
	// Params is the broadcast global model.
	Params []WireMat
	// MaxBatches bounds the local batches before returning (0 = rest of
	// the epoch — the per-epoch synchronization of the paper's FFN/CNN
	// experiments).
	MaxBatches int
	// NewEpoch reshuffles the local data before running.
	NewEpoch bool
}

// RunReply is the worker's accrued result of one segment.
type RunReply struct {
	// Deltas is the accrued model update (local params minus broadcast
	// params) — an aggregate over the worker's batches; raw data never
	// leaves the site.
	Deltas  []WireMat
	Loss    float64
	Batches int
	// Done reports that the local epoch is exhausted.
	Done bool
}

// TrainFederated runs the federated parameter server over a
// row-partitioned federated feature matrix. Labels may live at the
// coordinator (passed via y and sliced per partition — the setting of the
// paper's experiments). The gradient and update logic ships to workers at
// setup as registered UDFs with gob-encoded arguments; each epoch the
// global model is broadcast, workers run local per-batch updates
// multi-threaded over their private partitions, and accrued deltas are
// aggregated BSP or ASP with imbalance-adjusted weights.
func TrainFederated(cfg Config, fx *federated.Matrix, y *matrix.Dense) (*Result, error) {
	t, err := NewFederatedTrainer(cfg, fx, y)
	if err != nil {
		return nil, err
	}
	if err := t.TrainEpochs(t.cfg.Epochs); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// runSegmentAt invokes ps_run at one worker and decodes the reply.
func runSegmentAt(coord *federated.Coordinator, p federated.Partition, stateID int64, args RunArgs) (RunReply, error) {
	cl, err := coord.Client(p.Addr)
	if err != nil {
		return RunReply{}, err
	}
	enc, err := worker.EncodeArgs(args)
	if err != nil {
		return RunReply{}, err
	}
	resp, err := cl.CallOne(fedrpc.Request{Type: fedrpc.ExecUDF, UDF: &fedrpc.UDFCall{
		Name: "ps_run", Inputs: []int64{stateID}, Args: enc}})
	if err != nil {
		return RunReply{}, err
	}
	var reply RunReply
	if err := worker.DecodeArgs(resp.Data.Bytes, &reply); err != nil {
		return RunReply{}, err
	}
	return reply, nil
}

func trainFedBSP(cfg Config, coord *federated.Coordinator, parts []federated.Partition,
	stateIDs []int64, weights []float64, srv *server, res *Result) error {
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		newEpoch := true
		done := make([]bool, len(parts))
		for {
			snap := toWire(srv.snapshot())
			replies := make([]RunReply, len(parts))
			errs := make([]error, len(parts))
			var wg sync.WaitGroup
			active := 0
			for i := range parts {
				if done[i] && !newEpoch {
					continue
				}
				active++
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					replies[i], errs[i] = runSegmentAt(coord, parts[i], stateIDs[i],
						RunArgs{Params: snap, MaxBatches: cfg.SyncEvery, NewEpoch: newEpoch})
				}(i)
			}
			if active == 0 {
				break
			}
			wg.Wait() // BSP barrier
			lossSum, batchSum := 0.0, 0
			for i := range parts {
				if done[i] && !newEpoch {
					continue
				}
				if errs[i] != nil {
					return errs[i]
				}
				srv.apply(fromWire(replies[i].Deltas), weights[i])
				lossSum += replies[i].Loss
				batchSum += replies[i].Batches
				done[i] = replies[i].Done
			}
			if batchSum > 0 {
				res.Losses = append(res.Losses, lossSum/float64(batchSum))
			}
			res.Syncs++
			newEpoch = false
			allDone := true
			for _, d := range done {
				if !d {
					allDone = false
				}
			}
			if allDone {
				break
			}
		}
	}
	return nil
}

func trainFedASP(cfg Config, coord *federated.Coordinator, parts []federated.Partition,
	stateIDs []int64, weights []float64, srv *server, res *Result) error {
	var mu sync.Mutex
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				newEpoch := true
				for {
					mu.Lock()
					snap := toWire(srv.snapshot())
					mu.Unlock()
					reply, err := runSegmentAt(coord, parts[i], stateIDs[i],
						RunArgs{Params: snap, MaxBatches: cfg.SyncEvery, NewEpoch: newEpoch})
					if err != nil {
						errs[i] = err
						return
					}
					newEpoch = false
					mu.Lock()
					srv.apply(fromWire(reply.Deltas), weights[i])
					if reply.Batches > 0 {
						res.Losses = append(res.Losses, reply.Loss/float64(reply.Batches))
					}
					res.Syncs++
					mu.Unlock()
					if reply.Done {
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
