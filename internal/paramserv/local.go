package paramserv

import (
	"math/rand"
	"sync"

	"exdra/internal/matrix"
	"exdra/internal/nn"
)

// localWorker is one multi-threaded PS worker over a disjoint row range.
type localWorker struct {
	net    *nn.Network
	opt    nn.Optimizer
	x, y   *matrix.Dense
	rng    *rand.Rand
	factor int
	weight float64

	idx  []int
	pos  int
	base []*matrix.Dense // global params at the last pull

	lossSum float64
	batches int
}

// runSegment advances up to q batches (the whole remaining epoch when q<=0)
// with local per-batch updates.
func (w *localWorker) runSegment(batchSize, q int) {
	to := len(w.idx)
	if q > 0 && w.pos+q*batchSize < to {
		to = w.pos + q*batchSize
	}
	loss, batches := runBatches(w.net, w.opt, w.x, w.y, w.idx, w.pos, to, batchSize)
	w.pos = to
	w.lossSum, w.batches = loss, batches
}

// pull installs a fresh global snapshot as the worker's starting point.
func (w *localWorker) pull(snap []*matrix.Dense) {
	_ = w.net.SetParams(snap)
	w.base = snap
}

// TrainLocal runs the multi-threaded local parameter server: nWorkers
// goroutines iterate disjoint row partitions of (x, y) against a central
// in-memory model — SystemDS' "local, multi-threaded" paramserv mode and
// the Local baseline of the paper's FFN/CNN experiments. Labels y are
// 1-based class indices (softmax loss) or real targets (MSE).
func TrainLocal(cfg Config, x, y *matrix.Dense, nWorkers int) (*Result, error) {
	if err := validate(&cfg, x.Rows()); err != nil {
		return nil, err
	}
	if nWorkers <= 0 {
		nWorkers = 1
	}
	if nWorkers > x.Rows() {
		nWorkers = x.Rows()
	}
	srv, net, err := newServer(cfg.Spec, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Standard PS partitioning: shuffle-free even row split (the federated
	// mode instead respects locality; see TrainFederated).
	sizes := make([]int, nWorkers)
	workers := make([]*localWorker, nWorkers)
	beg := 0
	for i := 0; i < nWorkers; i++ {
		size := x.Rows() / nWorkers
		if i < x.Rows()%nWorkers {
			size++
		}
		sizes[i] = size
		workers[i] = &localWorker{
			x:   x.SliceRows(beg, beg+size),
			y:   y.SliceRows(beg, beg+size),
			rng: rand.New(rand.NewSource(cfg.Seed + int64(i) + 1)),
		}
		beg += size
	}
	factors, weights := replication(sizes, cfg.Balance)
	for i, w := range workers {
		w.factor, w.weight = factors[i], weights[i]
		w.net, err = nn.NewNetwork(cfg.Spec, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return nil, err
		}
		w.opt, err = nn.NewOptimizer(cfg.Optimizer)
		if err != nil {
			return nil, err
		}
		w.pull(srv.snapshot())
	}

	res := &Result{}
	if cfg.UpdateType == ASP {
		trainLocalASP(cfg, srv, workers, res)
	} else {
		trainLocalBSP(cfg, srv, workers, res)
	}
	res.Network = net
	return res, nil
}

func trainLocalBSP(cfg Config, srv *server, workers []*localWorker, res *Result) {
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, w := range workers {
			w.idx = localShuffle(w.rng, w.x.Rows(), w.factor)
			w.pos = 0
		}
		for {
			active := 0
			var wg sync.WaitGroup
			for _, w := range workers {
				if w.pos >= len(w.idx) {
					continue
				}
				active++
				wg.Add(1)
				go func(w *localWorker) {
					defer wg.Done()
					w.runSegment(cfg.BatchSize, cfg.SyncEvery)
				}(w)
			}
			if active == 0 {
				break
			}
			wg.Wait() // the BSP barrier: the server waits for all workers
			lossSum, batchSum := 0.0, 0
			for _, w := range workers {
				if w.batches == 0 {
					continue
				}
				srv.apply(deltas(w.net.Params(), w.base), w.weight)
				lossSum += w.lossSum
				batchSum += w.batches
				w.lossSum, w.batches = 0, 0
			}
			snap := srv.snapshot()
			for _, w := range workers {
				w.pull(snap)
			}
			if batchSum > 0 {
				res.Losses = append(res.Losses, lossSum/float64(batchSum))
			}
			res.Syncs++
		}
	}
}

func trainLocalASP(cfg Config, srv *server, workers []*localWorker, res *Result) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *localWorker) {
			defer wg.Done()
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				w.idx = localShuffle(w.rng, w.x.Rows(), w.factor)
				w.pos = 0
				for w.pos < len(w.idx) {
					w.runSegment(cfg.BatchSize, cfg.SyncEvery)
					mu.Lock()
					srv.apply(deltas(w.net.Params(), w.base), w.weight)
					snap := srv.snapshot()
					if w.batches > 0 {
						res.Losses = append(res.Losses, w.lossSum/float64(w.batches))
					}
					res.Syncs++
					mu.Unlock()
					w.lossSum, w.batches = 0, 0
					w.pull(snap)
				}
			}
		}(w)
	}
	wg.Wait()
}
