package paramserv_test

import (
	"testing"

	"exdra/internal/data"
	"exdra/internal/federated"
	"exdra/internal/fedtest"
	"exdra/internal/matrix"
	"exdra/internal/nn"
	"exdra/internal/paramserv"
	"exdra/internal/privacy"
)

func ffnCfg(in, classes int, ut paramserv.UpdateType) paramserv.Config {
	return paramserv.Config{
		Spec:       nn.FFNSpec(in, 24, classes, nn.LossSoftmaxCE),
		Optimizer:  nn.OptimizerConfig{Kind: "nesterov", LR: 0.05, Mu: 0.9},
		UpdateType: ut,
		Epochs:     8,
		BatchSize:  32,
		Seed:       11,
	}
}

func TestTrainLocalBSPLearns(t *testing.T) {
	x, y := data.MultiClass(20, 600, 10, 3)
	res, err := paramserv.TrainLocal(ffnCfg(10, 3, paramserv.BSP), x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Syncs == 0 || len(res.Losses) == 0 {
		t.Fatal("no synchronizations recorded")
	}
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Fatalf("loss did not decrease: %v", res.Losses)
	}
	if acc := res.Network.Accuracy(x, y); acc < 0.9 {
		t.Fatalf("BSP accuracy %g", acc)
	}
}

func TestTrainLocalASPLearns(t *testing.T) {
	x, y := data.MultiClass(21, 600, 10, 3)
	res, err := paramserv.TrainLocal(ffnCfg(10, 3, paramserv.ASP), x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Network.Accuracy(x, y); acc < 0.85 {
		t.Fatalf("ASP accuracy %g", acc)
	}
}

func TestTrainLocalSyncEvery(t *testing.T) {
	x, y := data.MultiClass(22, 300, 8, 2)
	cfg := ffnCfg(8, 2, paramserv.BSP)
	cfg.Epochs = 2
	cfg.SyncEvery = 1 // per-batch global updates (freq=BATCH)
	res, err := paramserv.TrainLocal(cfg, x, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	// freq=BATCH must sync far more often than freq=EPOCH.
	cfg.SyncEvery = 0
	resEpoch, err := paramserv.TrainLocal(cfg, x, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Syncs <= resEpoch.Syncs {
		t.Fatalf("freq=BATCH syncs %d <= freq=EPOCH syncs %d", res.Syncs, resEpoch.Syncs)
	}
}

func TestTrainFederatedBSP(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	x, y := data.MultiClass(23, 450, 10, 3)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paramserv.TrainFederated(ffnCfg(10, 3, paramserv.BSP), fx, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Network.Accuracy(x, y); acc < 0.9 {
		t.Fatalf("federated BSP accuracy %g", acc)
	}
	// Training must succeed even though the raw partitions are Private:
	// only model deltas were exchanged.
	if _, err := fx.Consolidate(); err == nil {
		t.Fatal("private features are transferable")
	}
}

func TestTrainFederatedASP(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	x, y := data.MultiClass(24, 450, 10, 3)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paramserv.TrainFederated(ffnCfg(10, 3, paramserv.ASP), fx, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Network.Accuracy(x, y); acc < 0.85 {
		t.Fatalf("federated ASP accuracy %g", acc)
	}
}

func TestImbalanceReplicationWeights(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	x, y := data.MultiClass(25, 400, 8, 2)
	// Build a deliberately imbalanced federation: 90% / 10%.
	big, err := federated.Distribute(cl.Coord, x.SliceRows(0, 360), cl.Addrs[:1], federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	small, err := federated.Distribute(cl.Coord, x.SliceRows(360, 400), cl.Addrs[1:], federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := federated.RBindFed(big, small)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ffnCfg(8, 2, paramserv.BSP)
	cfg.Balance = true
	cfg.Epochs = 4
	res, err := paramserv.TrainFederated(cfg, fx, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Network.Accuracy(x, y); acc < 0.85 {
		t.Fatalf("imbalanced federated accuracy %g", acc)
	}
}

func TestFederatedCNNOnSyntheticMNIST(t *testing.T) {
	cl, err := fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	x, y := data.SyntheticMNIST(26, 120)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Private)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paramserv.Config{
		Spec:      nn.CNNSpec(1, 28, 28, 4, 10),
		Optimizer: nn.OptimizerConfig{Kind: "sgd", LR: 0.05},
		Epochs:    2,
		BatchSize: 32,
		Seed:      5,
	}
	res, err := paramserv.TrainFederated(cfg, fx, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) < 2 || res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Fatalf("CNN loss did not decrease: %v", res.Losses)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := paramserv.TrainLocal(paramserv.Config{Spec: nn.FFNSpec(2, 2, 2, nn.LossSoftmaxCE)},
		matrix.NewDense(0, 2), matrix.NewDense(0, 1), 2); err == nil {
		t.Fatal("empty data accepted")
	}
	// Column-partitioned federated data rejected.
	cl, err := fedtest.Start(fedtest.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	x, y := data.MultiClass(27, 40, 6, 2)
	fx, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.ColPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := paramserv.TrainFederated(ffnCfg(6, 2, paramserv.BSP), fx, y); err == nil {
		t.Fatal("column-partitioned features accepted")
	}
	// Label/row mismatch rejected.
	fr, err := federated.Distribute(cl.Coord, x, cl.Addrs, federated.RowPartitioned, privacy.Public)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := paramserv.TrainFederated(ffnCfg(6, 2, paramserv.BSP), fr, y.SliceRows(0, 10)); err == nil {
		t.Fatal("label mismatch accepted")
	}
}
