package paramserv

import (
	"fmt"
	"math/rand"

	"exdra/internal/fedrpc"
	"exdra/internal/nn"
	"exdra/internal/worker"

	"exdra/internal/matrix"
)

// Worker-side session state and UDFs of the federated parameter server.
// Registered once per process; cmd/fedworker imports this package so
// standalone workers can serve PS training too.

func init() {
	worker.MustRegisterUDF("ps_setup", udfPSSetup)
	worker.MustRegisterUDF("ps_run", udfPSRun)
	worker.MustRegisterUDF("ps_refresh", udfPSRefresh)
}

// session is a PS worker's execution context, stored in the symbol table as
// an opaque object (never transferable via GET).
type session struct {
	net       *nn.Network
	opt       nn.Optimizer
	x, y      *matrix.Dense
	batchSize int
	replicate int
	rng       *rand.Rand

	idx []int
	pos int
}

func udfPSSetup(w *worker.Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	var args SetupArgs
	if err := worker.DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	x, err := w.Matrix(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, fmt.Errorf("ps_setup features: %w", err)
	}
	y, err := w.Matrix(args.YID)
	if err != nil {
		return fedrpc.Payload{}, fmt.Errorf("ps_setup labels: %w", err)
	}
	if y.Rows() != x.Rows() {
		return fedrpc.Payload{}, fmt.Errorf("ps_setup: %d labels for %d rows", y.Rows(), x.Rows())
	}
	net, err := nn.NewNetwork(args.Spec, rand.New(rand.NewSource(args.Seed)))
	if err != nil {
		return fedrpc.Payload{}, err
	}
	opt, err := nn.NewOptimizer(args.Optimizer)
	if err != nil {
		return fedrpc.Payload{}, err
	}
	rep := args.Replicate
	if rep < 1 {
		rep = 1
	}
	sess := &session{
		net: net, opt: opt, x: x, y: y,
		batchSize: args.BatchSize,
		replicate: rep,
		rng:       rand.New(rand.NewSource(args.Seed)),
	}
	w.Put(call.Output, &worker.Entry{Obj: sess})
	return fedrpc.ScalarPayload(float64(x.Rows() * rep)), nil
}

// RefreshArgs rebind a PS session to the site's current data snapshot —
// the §5.1 stream-ingestion extension where federated workers "seamlessly
// handle the removal or append of new batches according to the configured
// retention periods". XID/YID name the refreshed feature/label objects;
// Replicate carries the re-coordinated imbalance factor.
type RefreshArgs struct {
	XID, YID  int64
	Replicate int
}

// udfPSRefresh swaps the session's training data for the current snapshot
// and reports the new (replicated) local row count so the server can adjust
// aggregation weights.
func udfPSRefresh(w *worker.Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	e, err := w.Get(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	sess, ok := e.Obj.(*session)
	if !ok {
		return fedrpc.Payload{}, fmt.Errorf("ps_refresh: object %d is not a PS session", call.Inputs[0])
	}
	var args RefreshArgs
	if err := worker.DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	x, err := w.Matrix(args.XID)
	if err != nil {
		return fedrpc.Payload{}, fmt.Errorf("ps_refresh features: %w", err)
	}
	y, err := w.Matrix(args.YID)
	if err != nil {
		return fedrpc.Payload{}, fmt.Errorf("ps_refresh labels: %w", err)
	}
	if y.Rows() != x.Rows() {
		return fedrpc.Payload{}, fmt.Errorf("ps_refresh: %d labels for %d rows", y.Rows(), x.Rows())
	}
	sess.x, sess.y = x, y
	if args.Replicate >= 1 {
		sess.replicate = args.Replicate
	}
	sess.idx, sess.pos = nil, 0 // force a reshuffle on the next epoch
	return fedrpc.ScalarPayload(float64(x.Rows() * sess.replicate)), nil
}

func udfPSRun(w *worker.Worker, call *fedrpc.UDFCall) (fedrpc.Payload, error) {
	e, err := w.Get(call.Inputs[0])
	if err != nil {
		return fedrpc.Payload{}, err
	}
	sess, ok := e.Obj.(*session)
	if !ok {
		return fedrpc.Payload{}, fmt.Errorf("ps_run: object %d is not a PS session", call.Inputs[0])
	}
	var args RunArgs
	if err := worker.DecodeArgs(call.Args, &args); err != nil {
		return fedrpc.Payload{}, err
	}
	base := fromWire(args.Params)
	if err := sess.net.SetParams(base); err != nil {
		return fedrpc.Payload{}, err
	}
	if args.NewEpoch || sess.idx == nil {
		// Local shuffling and replication only — the federated PS respects
		// data locality (§4.3).
		sess.idx = localShuffle(sess.rng, sess.x.Rows(), sess.replicate)
		sess.pos = 0
	}
	to := len(sess.idx)
	if args.MaxBatches > 0 && sess.pos+args.MaxBatches*sess.batchSize < to {
		to = sess.pos + args.MaxBatches*sess.batchSize
	}
	loss, batches := runBatches(sess.net, sess.opt, sess.x, sess.y, sess.idx, sess.pos, to, sess.batchSize)
	sess.pos = to
	reply := RunReply{
		Deltas:  toWire(deltas(sess.net.Params(), base)),
		Loss:    loss,
		Batches: batches,
		Done:    sess.pos >= len(sess.idx),
	}
	enc, err := worker.EncodeArgs(reply)
	if err != nil {
		return fedrpc.Payload{}, err
	}
	return fedrpc.BytesPayload(enc), nil
}
