// Package paramserv implements the data-parallel parameter server of ExDRa
// §4.3 in both its local multi-threaded and its federated mode. A central
// server holds the model; workers iterate mini-batches over disjoint data
// partitions with local per-batch updates and push accrued model deltas to
// the server for aggregation — synchronously (BSP) or asynchronously (ASP),
// at a configurable frequency (per epoch or every N batches). The federated
// mode respects data locality (only local shuffling and replication of the
// private partitions) and handles imbalance via replication with adjusted
// aggregation weights.
package paramserv

import (
	"fmt"
	"math/rand"

	"exdra/internal/matrix"
	"exdra/internal/nn"
)

// UpdateType selects the synchronization strategy.
type UpdateType int

// Update strategies (paper §4.3: utype=BSP|ASP).
const (
	// BSP is bulk-synchronous parallel: the server waits for all workers
	// at every synchronization point.
	BSP UpdateType = iota
	// ASP is asynchronous parallel: each worker's delta is applied as soon
	// as it arrives.
	ASP
)

// String returns the strategy name.
func (u UpdateType) String() string {
	if u == ASP {
		return "ASP"
	}
	return "BSP"
}

// Config mirrors the paramserv built-in function's arguments.
type Config struct {
	// Spec is the network architecture (the "model" list of weight/bias
	// matrices plus its wiring).
	Spec nn.Spec
	// Optimizer is the local update rule applied per mini-batch.
	Optimizer nn.OptimizerConfig
	// UpdateType is BSP or ASP.
	UpdateType UpdateType
	// Epochs over the (replicated) local data.
	Epochs int
	// BatchSize of local mini-batch updates (paper: 512 FFN, 128 CNN).
	BatchSize int
	// SyncEvery is the number of local batches between global
	// synchronizations; 0 synchronizes once per epoch (freq=EPOCH).
	SyncEvery int
	// Seed controls initialization and local shuffling.
	Seed int64
	// Balance replicates smaller partitions to the size of the largest
	// and adjusts aggregation weights (paper's imbalance handling).
	Balance bool
}

func (c *Config) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.BatchSize == 0 {
		c.BatchSize = 512
	}
	if c.Optimizer.LR == 0 {
		c.Optimizer.LR = 0.01
	}
}

// Result reports a finished training run.
type Result struct {
	Network *nn.Network
	// Losses is the mean training loss reported at each synchronization.
	Losses []float64
	// Syncs is the number of global model synchronizations.
	Syncs int
}

// server aggregates worker deltas into the global model.
type server struct {
	params []*matrix.Dense
}

func newServer(spec nn.Spec, seed int64) (*server, *nn.Network, error) {
	net, err := nn.NewNetwork(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	return &server{params: net.Params()}, net, nil
}

// apply adds weight * delta into the global model.
func (s *server) apply(delta []*matrix.Dense, weight float64) {
	for i, d := range delta {
		s.params[i].AxpyInPlace(weight, d)
	}
}

// snapshot deep-copies the global model for broadcast.
func (s *server) snapshot() []*matrix.Dense {
	out := make([]*matrix.Dense, len(s.params))
	for i, p := range s.params {
		out[i] = p.Clone()
	}
	return out
}

// deltas computes local - base parameter differences.
func deltas(local, base []*matrix.Dense) []*matrix.Dense {
	out := make([]*matrix.Dense, len(local))
	for i := range local {
		d := local[i].Clone()
		d.AxpyInPlace(-1, base[i])
		out[i] = d
	}
	return out
}

// replication returns per-partition replication factors and aggregation
// weights for the given partition sizes: without balancing, factors are 1
// and weights proportional to size; with balancing, small partitions
// replicate up to the largest and weights stay proportional to the
// original sizes (replication must not inflate a site's influence).
func replication(sizes []int, balance bool) (factors []int, weights []float64) {
	factors = make([]int, len(sizes))
	weights = make([]float64, len(sizes))
	total := 0
	maxSize := 0
	for _, s := range sizes {
		total += s
		if s > maxSize {
			maxSize = s
		}
	}
	for i, s := range sizes {
		factors[i] = 1
		if balance && s > 0 {
			factors[i] = (maxSize + s - 1) / s
		}
		weights[i] = float64(s) / float64(total)
	}
	return factors, weights
}

// localShuffle returns a replicated, shuffled index sequence over n rows.
func localShuffle(rng *rand.Rand, n, replicate int) []int {
	idx := make([]int, 0, n*replicate)
	for r := 0; r < replicate; r++ {
		idx = append(idx, rng.Perm(n)...)
	}
	return idx
}

// runBatches performs mini-batch updates over rows idx[from:to) of (x, y),
// returning the summed loss and the number of batches run.
func runBatches(net *nn.Network, opt nn.Optimizer, x, y *matrix.Dense, idx []int, from, to, batchSize int) (lossSum float64, batches int) {
	for b := from; b < to; b += batchSize {
		e := b + batchSize
		if e > to {
			e = to
		}
		bx := x.SelectRows(idx[b:e])
		by := y.SelectRows(idx[b:e])
		lossSum += net.Loss(bx, by)
		opt.Step(net.Params(), net.Grads())
		batches++
	}
	return lossSum, batches
}

func validate(cfg *Config, rows int) error {
	cfg.defaults()
	if rows == 0 {
		return fmt.Errorf("paramserv: empty training data")
	}
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		return fmt.Errorf("paramserv: invalid batch size or epochs")
	}
	return nil
}
