package transform

import (
	"fmt"
	"sort"

	"exdra/internal/frame"
)

// Missing-value imputation primitives of ExDRa §4.4, Example 4: NULLs in a
// categorical column can be imputed with the mode (most frequent value) or
// via robust functional dependencies (A -> C). Both are two-pass federated
// algorithms: workers compute aggregate counts, the coordinator derives the
// imputation rule, and workers apply it locally (see
// federated.Frame.ImputeMode / ImputeFD). MICE-style model-based imputation
// builds on the ML algorithms and lives in package pipeline.

// CategoryCounts counts the non-NULL values of a categorical column.
func CategoryCounts(f *frame.Frame, col string) (map[string]int, error) {
	c := f.ColumnByName(col)
	if c == nil {
		return nil, fmt.Errorf("transform: no column %q", col)
	}
	counts := map[string]int{}
	for i := 0; i < c.Len(); i++ {
		if c.IsNA(i) {
			continue
		}
		counts[c.AsString(i)]++
	}
	return counts, nil
}

// MergeCounts sums per-site category counts.
func MergeCounts(parts ...map[string]int) map[string]int {
	out := map[string]int{}
	for _, p := range parts {
		for k, v := range p {
			out[k] += v
		}
	}
	return out
}

// Mode returns the most frequent category (ties broken lexicographically
// for determinism across sites).
func Mode(counts map[string]int) (string, bool) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return "", false
	}
	sort.Strings(keys)
	best := keys[0]
	for _, k := range keys[1:] {
		if counts[k] > counts[best] {
			best = k
		}
	}
	return best, true
}

// PairCounts counts co-occurrences of (from, to) categories over rows where
// both are present — the evidence for a robust functional dependency
// from -> to.
func PairCounts(f *frame.Frame, from, to string) (map[string]map[string]int, error) {
	cf, ct := f.ColumnByName(from), f.ColumnByName(to)
	if cf == nil || ct == nil {
		return nil, fmt.Errorf("transform: missing column %q or %q", from, to)
	}
	out := map[string]map[string]int{}
	for i := 0; i < cf.Len(); i++ {
		if cf.IsNA(i) || ct.IsNA(i) {
			continue
		}
		a, c := cf.AsString(i), ct.AsString(i)
		if out[a] == nil {
			out[a] = map[string]int{}
		}
		out[a][c]++
	}
	return out, nil
}

// MergePairCounts sums per-site pair counts.
func MergePairCounts(parts ...map[string]map[string]int) map[string]map[string]int {
	out := map[string]map[string]int{}
	for _, p := range parts {
		for a, row := range p {
			if out[a] == nil {
				out[a] = map[string]int{}
			}
			for c, n := range row {
				out[a][c] += n
			}
		}
	}
	return out
}

// FDMapping derives the robust functional dependency from -> to: each left
// value maps to its majority right value, provided the majority covers at
// least minSupport of the left value's rows (robustness against noise;
// minSupport <= 0 defaults to 0.5).
func FDMapping(pairs map[string]map[string]int, minSupport float64) map[string]string {
	if minSupport <= 0 {
		minSupport = 0.5
	}
	out := map[string]string{}
	for a, row := range pairs {
		mode, ok := Mode(row)
		if !ok {
			continue
		}
		total := 0
		for _, n := range row {
			total += n
		}
		if float64(row[mode]) >= minSupport*float64(total) {
			out[a] = mode
		}
	}
	return out
}

// ImputeMode returns a copy of the frame with NULLs of col replaced by
// value.
func ImputeMode(f *frame.Frame, col, value string) (*frame.Frame, error) {
	return imputeWith(f, col, func(i int, _ *frame.Frame) (string, bool) {
		return value, true
	})
}

// ImputeFD returns a copy with NULLs of toCol filled from mapping applied
// to fromCol; rows whose left value has no mapping stay NULL.
func ImputeFD(f *frame.Frame, fromCol, toCol string, mapping map[string]string) (*frame.Frame, error) {
	from := f.ColumnByName(fromCol)
	if from == nil {
		return nil, fmt.Errorf("transform: no column %q", fromCol)
	}
	return imputeWith(f, toCol, func(i int, _ *frame.Frame) (string, bool) {
		if from.IsNA(i) {
			return "", false
		}
		v, ok := mapping[from.AsString(i)]
		return v, ok
	})
}

// imputeWith rebuilds the frame with NULLs of col replaced by fill(i).
func imputeWith(f *frame.Frame, col string, fill func(i int, f *frame.Frame) (string, bool)) (*frame.Frame, error) {
	target := f.ColumnByName(col)
	if target == nil {
		return nil, fmt.Errorf("transform: no column %q", col)
	}
	if target.Type != frame.String {
		return nil, fmt.Errorf("transform: imputation target %q is not categorical", col)
	}
	cols := make([]*frame.Column, f.NumCols())
	for j := 0; j < f.NumCols(); j++ {
		c := f.Column(j)
		if c.Name != col {
			cols[j] = c
			continue
		}
		vals := make([]string, c.Len())
		for i := 0; i < c.Len(); i++ {
			if c.IsNA(i) {
				if v, ok := fill(i, f); ok {
					vals[i] = v
				}
			} else {
				vals[i] = c.AsString(i)
			}
		}
		cols[j] = frame.StringColumn(col, vals)
	}
	return frame.New(cols...)
}
