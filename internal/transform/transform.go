// Package transform implements the feature transformations of ExDRa §4.4:
// recoding (categories to integers), equi-width binning (numeric values to
// integers), one-hot encoding (integers to sparse boolean vectors), feature
// hashing (categories to upper-bounded integers, potentially with
// collisions), and pass-through numeric columns.
//
// The API is deliberately split into the two passes the federated
// transformencode uses (Figure 3 of the paper): BuildPartial computes
// per-site metadata (distinct items, min/max), Merge consolidates and sorts
// it at the coordinator and assigns contiguous codes, and Apply encodes a
// frame under the global metadata. Encode composes all three for local use.
package transform

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"exdra/internal/frame"
	"exdra/internal/matrix"
)

// Method enumerates how a column is transformed.
type Method int

// Supported per-column transformation methods.
const (
	// PassThrough keeps a numeric column unmodified.
	PassThrough Method = iota
	// Recode maps categories to contiguous integer codes.
	Recode
	// Bin maps numeric values to equi-width bin indices.
	Bin
	// Hash maps categories to hash buckets 1..K (collisions possible).
	Hash
)

// ColumnSpec describes the transformation of one input column. OneHot
// additionally expands the integer codes into indicator columns; it is valid
// for Recode, Bin, and Hash columns.
type ColumnSpec struct {
	Name    string
	Method  Method
	OneHot  bool
	NumBins int // Bin only
	K       int // Hash only: number of buckets
}

// Spec describes a full transformencode over a frame. Columns of the input
// frame not mentioned in Columns are passed through as numeric features.
type Spec struct {
	Columns []ColumnSpec
}

// forCol returns the spec for a column name, defaulting to pass-through.
func (s Spec) forCol(name string) ColumnSpec {
	for _, c := range s.Columns {
		if c.Name == name {
			return c
		}
	}
	return ColumnSpec{Name: name, Method: PassThrough}
}

// PartialMeta is the per-site metadata of pass one: distinct categories for
// recoded columns and min/max for binned columns. It is gob-friendly so the
// federated runtime can ship it between workers and coordinator.
type PartialMeta struct {
	Distinct map[string][]string
	Mins     map[string]float64
	Maxs     map[string]float64
	Rows     int
}

// BuildPartial scans a frame and computes the partial metadata for spec.
// It fails when the spec asks for a numeric method (binning) on a
// non-numeric column — raw-data schema drift at a site must surface as an
// error, not crash the worker.
func BuildPartial(f *frame.Frame, spec Spec) (PartialMeta, error) {
	pm := PartialMeta{
		Distinct: map[string][]string{},
		Mins:     map[string]float64{},
		Maxs:     map[string]float64{},
		Rows:     f.NumRows(),
	}
	for j := 0; j < f.NumCols(); j++ {
		col := f.Column(j)
		cs := spec.forCol(col.Name)
		switch cs.Method {
		case Recode:
			set := map[string]bool{}
			for i := 0; i < col.Len(); i++ {
				if col.IsNA(i) {
					continue
				}
				set[col.AsString(i)] = true
			}
			items := make([]string, 0, len(set))
			for v := range set {
				items = append(items, v)
			}
			sort.Strings(items)
			pm.Distinct[col.Name] = items
		case Bin:
			mn, mx := math.Inf(1), math.Inf(-1)
			for i := 0; i < col.Len(); i++ {
				if col.IsNA(i) {
					continue
				}
				v, err := col.AsFloat(i)
				if err != nil {
					return PartialMeta{}, fmt.Errorf("transform: bin %q: %w", col.Name, err)
				}
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			pm.Mins[col.Name] = mn
			pm.Maxs[col.Name] = mx
		}
	}
	return pm, nil
}

// Meta is the consolidated, global encoder metadata: recode maps with
// contiguous codes, bin boundaries, and the derived output layout.
type Meta struct {
	Spec       Spec
	RecodeMaps map[string]map[string]int // column -> category -> 1-based code
	RecodeKeys map[string][]string       // column -> categories in code order
	BinMins    map[string]float64
	BinWidths  map[string]float64
	ColOrder   []string // input column order
}

// widthOf returns the number of output columns an input column expands to.
func (m *Meta) widthOf(name string) int {
	cs := m.Spec.forCol(name)
	if !cs.OneHot {
		return 1
	}
	switch cs.Method {
	case Recode:
		return len(m.RecodeKeys[name])
	case Bin:
		return m.numBinsOf(cs)
	case Hash:
		return cs.K
	default:
		return 1
	}
}

// Merge consolidates partial metadata from all sites: distinct items are
// merged and sorted before assigning contiguous codes (ensuring consistent
// feature positions at every site), and global bin boundaries are computed
// from the global min/max.
func Merge(spec Spec, colOrder []string, parts ...PartialMeta) *Meta {
	m := &Meta{
		Spec:       spec,
		RecodeMaps: map[string]map[string]int{},
		RecodeKeys: map[string][]string{},
		BinMins:    map[string]float64{},
		BinWidths:  map[string]float64{},
		ColOrder:   colOrder,
	}
	for _, name := range colOrder {
		cs := spec.forCol(name)
		switch cs.Method {
		case Recode:
			set := map[string]bool{}
			for _, p := range parts {
				for _, v := range p.Distinct[name] {
					set[v] = true
				}
			}
			keys := make([]string, 0, len(set))
			for v := range set {
				keys = append(keys, v)
			}
			sort.Strings(keys)
			codes := make(map[string]int, len(keys))
			for i, v := range keys {
				codes[v] = i + 1
			}
			m.RecodeMaps[name] = codes
			m.RecodeKeys[name] = keys
		case Bin:
			mn, mx := math.Inf(1), math.Inf(-1)
			for _, p := range parts {
				if v, ok := p.Mins[name]; ok && v < mn {
					mn = v
				}
				if v, ok := p.Maxs[name]; ok && v > mx {
					mx = v
				}
			}
			if mn > mx {
				// No site observed a finite value (all-NULL column): fall
				// back to a degenerate [0, 0] range instead of publishing
				// the ±Inf sentinels, which would poison every downstream
				// bin computation and render unusable decode bounds.
				mn, mx = 0, 0
			}
			nb := cs.NumBins
			if nb < 1 {
				nb = 1
			}
			width := (mx - mn) / float64(nb)
			if width <= 0 {
				width = 1
			}
			m.BinMins[name] = mn
			m.BinWidths[name] = width
		}
	}
	return m
}

// NumOutputCols returns the width of the encoded matrix.
func (m *Meta) NumOutputCols() int {
	total := 0
	for _, name := range m.ColOrder {
		total += m.widthOf(name)
	}
	return total
}

// outputOffsets returns the starting output column per input column.
func (m *Meta) outputOffsets() map[string]int {
	off := map[string]int{}
	cur := 0
	for _, name := range m.ColOrder {
		off[name] = cur
		cur += m.widthOf(name)
	}
	return off
}

// hashBucket returns the 1-based hash bucket of value for K buckets, using
// an agreed (FNV-1a) hash function so all sites encode identically without
// metadata exchange.
func hashBucket(value string, k int) int {
	h := fnv.New32a()
	h.Write([]byte(value))
	return int(h.Sum32()%uint32(k)) + 1
}

// code returns the 1-based integer code of cell i in col under the metadata,
// or 0 for NULLs and unseen categories (which one-hot to all-zero rows as in
// Figure 3 of the paper).
func (m *Meta) code(col *frame.Column, cs ColumnSpec, i int) (int, error) {
	if col.IsNA(i) {
		return 0, nil
	}
	switch cs.Method {
	case Recode:
		return m.RecodeMaps[col.Name][col.AsString(i)], nil
	case Bin:
		v, err := col.AsFloat(i)
		if err != nil {
			return 0, fmt.Errorf("transform: bin %q: %w", col.Name, err)
		}
		nb := m.numBinsOf(cs)
		// Clamp in the float domain before converting: converting a float
		// beyond the int range is implementation-defined in Go (it wraps to
		// minint on amd64), so an extreme outlier or NaN cell would
		// otherwise land in bin 1 instead of the boundary bin.
		f := (v - m.BinMins[col.Name]) / m.BinWidths[col.Name]
		if math.IsNaN(f) || f < 0 {
			f = 0
		} else if f > float64(nb-1) {
			f = float64(nb - 1)
		}
		return int(f) + 1, nil
	case Hash:
		return hashBucket(col.AsString(i), cs.K), nil
	}
	return 0, nil
}

func (m *Meta) numBinsOf(cs ColumnSpec) int {
	if cs.NumBins < 1 {
		return 1
	}
	return cs.NumBins
}

// Apply encodes a frame under global metadata, returning the numeric
// feature matrix (transformapply semantics).
func Apply(f *frame.Frame, m *Meta) (*matrix.Dense, error) {
	if f.NumCols() != len(m.ColOrder) {
		return nil, fmt.Errorf("transform: frame has %d columns, metadata %d", f.NumCols(), len(m.ColOrder))
	}
	offs := m.outputOffsets()
	out := matrix.NewDense(f.NumRows(), m.NumOutputCols())
	for j := 0; j < f.NumCols(); j++ {
		col := f.Column(j)
		if col.Name != m.ColOrder[j] {
			return nil, fmt.Errorf("transform: column %d is %q, metadata expects %q", j, col.Name, m.ColOrder[j])
		}
		cs := m.Spec.forCol(col.Name)
		off := offs[col.Name]
		switch {
		case cs.Method == PassThrough:
			for i := 0; i < col.Len(); i++ {
				v, err := col.AsFloat(i)
				if err != nil {
					return nil, fmt.Errorf("transform: pass-through %q: %w", col.Name, err)
				}
				out.Set(i, off, v)
			}
		case cs.OneHot:
			for i := 0; i < col.Len(); i++ {
				c, err := m.code(col, cs, i)
				if err != nil {
					return nil, err
				}
				if c > 0 {
					out.Set(i, off+c-1, 1)
				}
			}
		default:
			for i := 0; i < col.Len(); i++ {
				c, err := m.code(col, cs, i)
				if err != nil {
					return nil, err
				}
				out.Set(i, off, float64(c))
			}
		}
	}
	return out, nil
}

// Encode runs the full local transformencode: build, merge, apply. It
// returns the encoded matrix and the global metadata.
func Encode(f *frame.Frame, spec Spec) (*matrix.Dense, *Meta, error) {
	pm, err := BuildPartial(f, spec)
	if err != nil {
		return nil, nil, err
	}
	m := Merge(spec, f.Names(), pm)
	x, err := Apply(f, m)
	return x, m, err
}

// Decode inverts the encoding for recoded (and one-hot recoded) columns,
// reconstructing a frame of category strings and numeric values
// (transformdecode semantics). Hash and bin columns decode to their integer
// codes since the original values are not recoverable.
func Decode(x *matrix.Dense, m *Meta) (*frame.Frame, error) {
	if x.Cols() != m.NumOutputCols() {
		return nil, fmt.Errorf("transform: matrix has %d cols, metadata %d", x.Cols(), m.NumOutputCols())
	}
	offs := m.outputOffsets()
	cols := make([]*frame.Column, 0, len(m.ColOrder))
	for _, name := range m.ColOrder {
		cs := m.Spec.forCol(name)
		off := offs[name]
		n := x.Rows()
		switch cs.Method {
		case PassThrough:
			vals := make([]float64, n)
			for i := 0; i < n; i++ {
				vals[i] = x.At(i, off)
			}
			cols = append(cols, frame.FloatColumn(name, vals))
		case Recode:
			keys := m.RecodeKeys[name]
			vals := make([]string, n)
			for i := 0; i < n; i++ {
				code := m.readCode(x, i, off, cs)
				if code >= 1 && code <= len(keys) {
					vals[i] = keys[code-1]
				}
			}
			cols = append(cols, frame.StringColumn(name, vals))
		default: // Bin, Hash: decode to code integers
			vals := make([]int64, n)
			for i := 0; i < n; i++ {
				vals[i] = int64(m.readCode(x, i, off, cs))
			}
			cols = append(cols, frame.IntColumn(name, vals))
		}
	}
	return frame.New(cols...)
}

// readCode extracts the integer code from either the single code column or
// the one-hot block starting at off.
func (m *Meta) readCode(x *matrix.Dense, i, off int, cs ColumnSpec) int {
	if !cs.OneHot {
		return int(math.Round(x.At(i, off)))
	}
	width := m.widthOf(cs.Name)
	for k := 0; k < width; k++ {
		if x.At(i, off+k) != 0 {
			return k + 1
		}
	}
	return 0
}

// MetaFrame renders the metadata as a frame (column, kind, token, code) —
// the "local metadata frame" output of federated transformencode.
func (m *Meta) MetaFrame() *frame.Frame {
	var colNames, kinds, tokens []string
	var codes []int64
	for _, name := range m.ColOrder {
		cs := m.Spec.forCol(name)
		switch cs.Method {
		case Recode:
			for i, key := range m.RecodeKeys[name] {
				colNames = append(colNames, name)
				kinds = append(kinds, "recode")
				tokens = append(tokens, key)
				codes = append(codes, int64(i+1))
			}
		case Bin:
			nb := m.numBinsOf(cs)
			for b := 1; b <= nb; b++ {
				lo := m.BinMins[name] + float64(b-1)*m.BinWidths[name]
				hi := lo + m.BinWidths[name]
				colNames = append(colNames, name)
				kinds = append(kinds, "bin")
				tokens = append(tokens, fmt.Sprintf("[%g,%g)", lo, hi))
				codes = append(codes, int64(b))
			}
		case Hash:
			colNames = append(colNames, name)
			kinds = append(kinds, "hash")
			tokens = append(tokens, fmt.Sprintf("K=%d", cs.K))
			codes = append(codes, int64(cs.K))
		}
	}
	return frame.MustNew(
		frame.StringColumn("column", colNames),
		frame.StringColumn("kind", kinds),
		frame.StringColumn("token", tokens),
		frame.IntColumn("code", codes),
	)
}
