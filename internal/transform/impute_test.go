package transform

import (
	"testing"

	"exdra/internal/frame"
)

func imputeFrame() *frame.Frame {
	// Mirrors Example 4: A -> C dependency with NULLs in C.
	return frame.MustNew(
		frame.StringColumn("A", []string{"R101", "R101", "C7", "R101", "C3", "C3"}),
		frame.StringColumn("C", []string{"X", "", "Z", "X", "", "Y"}),
	)
}

func TestCategoryCountsAndMode(t *testing.T) {
	t.Parallel()
	f := imputeFrame()
	counts, err := CategoryCounts(f, "C")
	if err != nil {
		t.Fatal(err)
	}
	if counts["X"] != 2 || counts["Z"] != 1 || counts["Y"] != 1 {
		t.Fatalf("counts %v", counts)
	}
	mode, ok := Mode(counts)
	if !ok || mode != "X" {
		t.Fatalf("mode %q", mode)
	}
	if _, err := CategoryCounts(f, "missing"); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, ok := Mode(map[string]int{}); ok {
		t.Fatal("empty mode")
	}
	// Deterministic tie-break: lexicographically smallest wins.
	m, _ := Mode(map[string]int{"b": 2, "a": 2})
	if m != "a" {
		t.Fatalf("tie break %q", m)
	}
}

func TestMergeCounts(t *testing.T) {
	t.Parallel()
	merged := MergeCounts(map[string]int{"x": 1}, map[string]int{"x": 2, "y": 3})
	if merged["x"] != 3 || merged["y"] != 3 {
		t.Fatalf("merge %v", merged)
	}
}

func TestImputeMode(t *testing.T) {
	t.Parallel()
	f := imputeFrame()
	counts, _ := CategoryCounts(f, "C")
	mode, _ := Mode(counts)
	out, err := ImputeMode(f, "C", mode)
	if err != nil {
		t.Fatal(err)
	}
	c := out.ColumnByName("C")
	if c.AsString(1) != "X" || c.AsString(4) != "X" {
		t.Fatal("NULLs not filled with mode")
	}
	if c.AsString(0) != "X" || c.AsString(2) != "Z" {
		t.Fatal("present values changed")
	}
	// Original frame untouched.
	if !f.ColumnByName("C").IsNA(1) {
		t.Fatal("input mutated")
	}
	// Numeric target rejected.
	nf := frame.MustNew(frame.FloatColumn("v", []float64{1}))
	if _, err := ImputeMode(nf, "v", "x"); err == nil {
		t.Fatal("numeric target accepted")
	}
}

func TestPairCountsAndFDMapping(t *testing.T) {
	t.Parallel()
	f := imputeFrame()
	pairs, err := PairCounts(f, "A", "C")
	if err != nil {
		t.Fatal(err)
	}
	if pairs["R101"]["X"] != 2 || pairs["C3"]["Y"] != 1 {
		t.Fatalf("pairs %v", pairs)
	}
	mapping := FDMapping(MergePairCounts(pairs), 0.5)
	if mapping["R101"] != "X" || mapping["C7"] != "Z" || mapping["C3"] != "Y" {
		t.Fatalf("mapping %v", mapping)
	}
	// Low support drops noisy left values.
	noisy := map[string]map[string]int{"a": {"x": 1, "y": 1, "z": 1}}
	if m := FDMapping(noisy, 0.9); len(m) != 0 {
		t.Fatalf("noisy mapping kept: %v", m)
	}
}

func TestImputeFD(t *testing.T) {
	t.Parallel()
	f := imputeFrame()
	pairs, _ := PairCounts(f, "A", "C")
	mapping := FDMapping(pairs, 0.5)
	out, err := ImputeFD(f, "A", "C", mapping)
	if err != nil {
		t.Fatal(err)
	}
	c := out.ColumnByName("C")
	// Row 1 has A=R101 -> X; row 4 has A=C3 -> Y (per Example 4: the two
	// NULLs impute to different values under the dependency).
	if c.AsString(1) != "X" || c.AsString(4) != "Y" {
		t.Fatalf("FD imputation: %q %q", c.AsString(1), c.AsString(4))
	}
	// Unmapped left values leave the cell NULL.
	sparse, err := ImputeFD(f, "A", "C", map[string]string{})
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.ColumnByName("C").IsNA(1) {
		t.Fatal("unmapped value filled")
	}
}
